module strider

go 1.22
