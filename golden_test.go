package strider

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden decision logs")

// TestGoldenDecisionTraces locks down the full decision pipeline end to
// end: the quickstart workload (jess at the small size) is explained on
// both evaluation machines under every prediction source and the complete
// decision log — JIT compiles, loop verdicts, Sec. 3.3 filter decisions,
// prefetch-site attribution — is diffed against a checked-in golden. Any
// change to inspection, stride detection, the profitability filter, code
// generation, or the memory attribution shows up here as a readable diff.
// The static and pgo traces additionally pin the "[via static]"/"[via
// pgo]" reason-code markers that distinguish statically predicted and
// profile-replayed emits from dynamically inspected ones.
//
// The compiled execution backend replays every golden cell and must
// reproduce the exact same bytes — the decision trace is part of the
// semantic surface the threaded-code tier may not move. The compiled
// legs never write goldens (-update runs the interpreted legs only), so
// the assertion is always interp-authored bytes vs compiled-produced
// bytes.
//
// Regenerate after an intended change with:
//
//	go test -run TestGoldenDecisionTraces -update .
func TestGoldenDecisionTraces(t *testing.T) {
	predicts := []struct{ predict, suffix string }{
		{"", ""}, {"static", "_static"}, {"pgo", "_pgo"},
	}
	for _, machine := range []string{"Pentium4", "AthlonMP"} {
		for _, p := range predicts {
			for _, exec := range []string{"", "compiled"} {
				p, exec := p, exec
				name := machine
				if p.predict != "" {
					name += "/" + p.predict
				}
				if exec != "" {
					name += "/exec=" + exec
				}
				t.Run(name, func(t *testing.T) {
					log, err := Explain(Spec{
						Workload: "jess", Size: SizeSmall, Machine: machine, Mode: InterIntra,
						Predict: p.predict, Exec: exec,
					})
					if err != nil {
						t.Fatal(err)
					}
					golden := filepath.Join("testdata", "golden",
						fmt.Sprintf("jess_small_%s_interintra%s.log", strings.ToLower(machine), p.suffix))
					if *update {
						if exec != "" {
							return
						}
						if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
							t.Fatal(err)
						}
						if err := os.WriteFile(golden, []byte(log), 0o644); err != nil {
							t.Fatal(err)
						}
						return
					}
					want, err := os.ReadFile(golden)
					if err != nil {
						t.Fatalf("%v (run with -update to create it)", err)
					}
					if log != string(want) {
						t.Errorf("decision log diverged from %s (rerun with -update if intended):\n%s",
							golden, diffLines(string(want), log))
					}
				})
			}
		}
	}
}

// diffLines renders a minimal line diff: the first divergent line with
// context, enough to see what changed without a diff dependency.
func diffLines(want, got string) string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			var b strings.Builder
			fmt.Fprintf(&b, "first divergence at line %d:\n", i+1)
			for j := max(0, i-2); j <= i && j < n; j++ {
				fmt.Fprintf(&b, "  want: %s\n", w[j])
			}
			fmt.Fprintf(&b, "  got:  %s\n", g[i])
			return b.String()
		}
	}
	return fmt.Sprintf("line counts differ: want %d lines, got %d", len(w), len(g))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
