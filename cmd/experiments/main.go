// Command experiments regenerates every table and figure of the paper's
// evaluation section (Sec. 4).
//
// Usage:
//
//	experiments [-size small|full] [-only table1,fig6,...]
//
// Without -only it runs everything in paper order. Results are printed as
// text tables with the paper's reported numbers alongside for comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"strider/internal/harness"
	"strider/internal/workloads"
)

func main() {
	sizeFlag := flag.String("size", "full", "problem size: small or full")
	only := flag.String("only", "", "comma-separated subset: table1,table2,table3,fig6,fig7,fig8,fig9,fig10,fig11")
	chart := flag.Bool("chart", false, "render figures as ASCII bar charts instead of tables")
	flag.Parse()

	size := workloads.SizeFull
	if *sizeFlag == "small" {
		size = workloads.SizeSmall
	} else if *sizeFlag != "full" {
		fmt.Fprintf(os.Stderr, "experiments: bad -size %q\n", *sizeFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	if sel("table1") {
		s, err := harness.Table1()
		if err != nil {
			fail(err)
		}
		fmt.Println(s)
	}
	if sel("table2") {
		fmt.Println(harness.Table2())
	}
	if sel("table3") {
		rows, err := harness.Table3(size)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatTable3(rows))
	}
	speedupOut := harness.FormatSpeedups
	if *chart {
		speedupOut = harness.SpeedupChart
	}
	mpiOut := harness.FormatMPI
	if *chart {
		mpiOut = harness.MPIChart
	}
	if sel("fig6") {
		rows, err := harness.Figure6(size)
		if err != nil {
			fail(err)
		}
		fmt.Println(speedupOut("Figure 6: speedup ratios on the Pentium 4", rows))
	}
	if sel("fig7") {
		rows, err := harness.Figure7(size)
		if err != nil {
			fail(err)
		}
		fmt.Println(speedupOut("Figure 7: speedup ratios on the Athlon MP", rows))
	}
	if sel("fig8") {
		rows, err := harness.Figure8(size)
		if err != nil {
			fail(err)
		}
		fmt.Println(mpiOut("Figure 8: L1 cache load MPIs", rows))
	}
	if sel("fig9") {
		rows, err := harness.Figure9(size)
		if err != nil {
			fail(err)
		}
		fmt.Println(mpiOut("Figure 9: L2 cache load MPIs", rows))
	}
	if sel("fig10") {
		rows, err := harness.Figure10(size)
		if err != nil {
			fail(err)
		}
		fmt.Println(mpiOut("Figure 10: DTLB load MPIs", rows))
	}
	if sel("fig11") {
		rows, err := harness.Figure11(size)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatCompile(rows))
	}
}
