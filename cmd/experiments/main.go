// Command experiments regenerates every table and figure of the paper's
// evaluation section (Sec. 4).
//
// Usage:
//
//	experiments [-size small|full] [-only table1,fig6,...] [-parallel N] [-json]
//
// Without -only it runs everything in paper order. Results are printed as
// text tables with the paper's reported numbers alongside for comparison;
// -json emits one JSON object per row instead (machine-readable, for
// tracking benchmark trajectories across commits). Experiment cells are
// scheduled across a worker pool of -parallel simulations (default
// GOMAXPROCS); per-cell timing and progress lines go to stderr, so stdout
// is byte-identical at every parallelism level.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"strider/internal/harness"
	"strider/internal/workloads"
)

// artifacts is the known -only selector set, in paper order.
var artifacts = []string{
	"table1", "table2", "table3",
	"fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
}

func main() {
	sizeFlag := flag.String("size", "full", "problem size: small or full")
	only := flag.String("only", "", "comma-separated subset: "+strings.Join(artifacts, ","))
	chart := flag.Bool("chart", false, "render figures as ASCII bar charts instead of tables")
	parallel := flag.Int("parallel", 0, "worker-pool size for experiment cells (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit JSON rows instead of text tables")
	progress := flag.Bool("progress", true, "print per-cell progress and timing to stderr")
	flag.Parse()

	size := workloads.SizeFull
	if *sizeFlag == "small" {
		size = workloads.SizeSmall
	} else if *sizeFlag != "full" {
		fmt.Fprintf(os.Stderr, "experiments: bad -size %q\n", *sizeFlag)
		os.Exit(2)
	}

	known := map[string]bool{}
	for _, a := range artifacts {
		known[a] = true
	}
	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			name := strings.TrimSpace(s)
			if !known[name] {
				fmt.Fprintf(os.Stderr, "experiments: unknown -only selector %q (valid: %s)\n",
					name, strings.Join(artifacts, ","))
				os.Exit(2)
			}
			want[name] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	harness.SetParallelism(*parallel)
	if *progress {
		harness.SetProgress(os.Stderr)
	}
	start := time.Now()

	enc := json.NewEncoder(os.Stdout)
	emit := func(rows any) {
		if err := enc.Encode(rows); err != nil {
			fail(err)
		}
	}

	if sel("table1") {
		s, err := harness.Table1()
		if err != nil {
			fail(err)
		}
		if *jsonOut {
			emit(map[string]string{"artifact": "table1", "text": s})
		} else {
			fmt.Println(s)
		}
	}
	if sel("table2") {
		if *jsonOut {
			emit(map[string]string{"artifact": "table2", "text": harness.Table2()})
		} else {
			fmt.Println(harness.Table2())
		}
	}
	if sel("table3") {
		rows, err := harness.Table3(size)
		if err != nil {
			fail(err)
		}
		if *jsonOut {
			for _, r := range rows {
				emit(struct {
					Artifact         string  `json:"artifact"`
					Workload         string  `json:"workload"`
					Suite            string  `json:"suite"`
					CompiledPct      float64 `json:"compiled_pct"`
					PaperCompiledPct float64 `json:"paper_compiled_pct"`
				}{"table3", r.Workload, r.Suite, r.CompiledPct, r.PaperCompiledPct})
			}
		} else {
			fmt.Println(harness.FormatTable3(rows))
		}
	}
	speedupOut := harness.FormatSpeedups
	if *chart {
		speedupOut = harness.SpeedupChart
	}
	mpiOut := harness.FormatMPI
	if *chart {
		mpiOut = harness.MPIChart
	}
	speedupFig := func(name, title string, fig func(workloads.Size) ([]harness.SpeedupRow, error)) {
		if !sel(name) {
			return
		}
		rows, err := fig(size)
		if err != nil {
			fail(err)
		}
		if *jsonOut {
			for _, r := range rows {
				emit(struct {
					Artifact   string  `json:"artifact"`
					Workload   string  `json:"workload"`
					Inter      float64 `json:"inter_pct"`
					InterIntra float64 `json:"inter_intra_pct"`
					PaperInter float64 `json:"paper_inter_pct"`
					PaperBoth  float64 `json:"paper_inter_intra_pct"`
				}{name, r.Workload, r.Inter, r.InterIntra, r.PaperInter, r.PaperBoth})
			}
		} else {
			fmt.Println(speedupOut(title, rows))
		}
	}
	mpiFig := func(name, title string, fig func(workloads.Size) ([]harness.MPIRow, error)) {
		if !sel(name) {
			return
		}
		rows, err := fig(size)
		if err != nil {
			fail(err)
		}
		if *jsonOut {
			for _, r := range rows {
				emit(struct {
					Artifact string  `json:"artifact"`
					Workload string  `json:"workload"`
					Baseline float64 `json:"baseline_mpi"`
					Opt      float64 `json:"inter_intra_mpi"`
				}{name, r.Workload, r.Baseline, r.Opt})
			}
		} else {
			fmt.Println(mpiOut(title, rows))
		}
	}

	speedupFig("fig6", "Figure 6: speedup ratios on the Pentium 4", harness.Figure6)
	speedupFig("fig7", "Figure 7: speedup ratios on the Athlon MP", harness.Figure7)
	mpiFig("fig8", "Figure 8: L1 cache load MPIs", harness.Figure8)
	mpiFig("fig9", "Figure 9: L2 cache load MPIs", harness.Figure9)
	mpiFig("fig10", "Figure 10: DTLB load MPIs", harness.Figure10)
	if sel("fig11") {
		rows, err := harness.Figure11(size)
		if err != nil {
			fail(err)
		}
		if *jsonOut {
			for _, r := range rows {
				emit(struct {
					Artifact         string  `json:"artifact"`
					Workload         string  `json:"workload"`
					PrefetchOfJITPct float64 `json:"prefetch_of_jit_pct"`
					JITOfTotalPct    float64 `json:"jit_of_total_pct"`
				}{"fig11", r.Workload, r.PrefetchOfJITPct, r.JITOfTotalPct})
			}
		} else {
			fmt.Println(harness.FormatCompile(rows))
		}
	}

	if *progress {
		c := harness.EngineCounters()
		sels := make([]string, 0, len(want))
		for s := range want {
			sels = append(sels, s)
		}
		sort.Strings(sels)
		scope := "all artifacts"
		if len(sels) > 0 {
			scope = strings.Join(sels, ",")
		}
		fmt.Fprintf(os.Stderr, "experiments: %s in %s (%d VM executions, %d cache hits, %d deduped, %d workers)\n",
			scope, time.Since(start).Round(time.Millisecond),
			c.Executions, c.CacheHits, c.DedupHits, harness.Parallelism())
	}
}
