// Command experiments regenerates every table and figure of the paper's
// evaluation section (Sec. 4).
//
// Usage:
//
//	experiments [-size small|full] [-only table1,fig6,...] [-parallel N]
//	            [-json] [-trace out.json] [-metrics out.csv] [-hw model]
//	            [-predict source] [-exec backend]
//
// Without -only it runs everything in paper order (the opt-in hwcross
// and predict artifacts — the software×hardware prefetching cross-product
// and the static-vs-dynamic prediction comparison — run only when
// selected explicitly). -hw replays every cell under one
// hardware-prefetcher model instead of each machine's default; -predict
// replays every cell under one prediction source (dynamic inspection,
// the offline static analyzer, or PGO profile replay); -exec runs every
// cell on one execution backend (the interpreter's step loop or the
// threaded-code compiled tier — semantically identical, so stdout is
// byte-for-byte the same either way). Results are printed as
// text tables with the paper's reported numbers alongside for comparison;
// -json emits one JSON object per row instead (machine-readable, for
// tracking benchmark trajectories across commits). Experiment cells are
// scheduled across a worker pool of -parallel simulations (default
// GOMAXPROCS); per-cell timing and progress lines go to stderr, so stdout
// is byte-identical at every parallelism level.
//
// -trace records the full telemetry stream (JIT compile events,
// inspection verdicts, Sec. 3.3 filter decisions, per-site prefetch
// attribution, grid scheduling) as Chrome trace_event JSON for
// chrome://tracing / Perfetto; -metrics writes the same events as a flat
// CSV table. Flag combinations are validated up front: an output file
// that cannot be opened, or -chart together with -json, is a usage error
// (exit 2) — nothing runs half-configured.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"strider/internal/harness"
	"strider/internal/telemetry"
	"strider/internal/workloads"
)

// artifacts is the known -only selector set, in paper order. hwcross
// (the software×hardware prefetching cross-product) and predict (the
// static-vs-dynamic prediction comparison) are opt-in: they are not part
// of the paper's evaluation, and the default run's stdout must stay
// byte-identical across revisions.
var artifacts = []string{
	"table1", "table2", "table3",
	"fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
	"hwcross", "predict",
}

// defaultSkip lists artifacts excluded from a run without -only.
var defaultSkip = map[string]bool{"hwcross": true, "predict": true}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command, factored out of main so the CLI tests can
// drive flag combinations in-process. It returns the exit code: 0 on
// success, 1 on runtime failure, 2 on usage errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sizeFlag := fs.String("size", "full", "problem size: small or full")
	only := fs.String("only", "", "comma-separated subset: "+strings.Join(artifacts, ","))
	chart := fs.Bool("chart", false, "render figures as ASCII bar charts instead of tables")
	parallel := fs.Int("parallel", 0, "worker-pool size for experiment cells (0 = GOMAXPROCS)")
	jsonOut := fs.Bool("json", false, "emit JSON rows instead of text tables")
	progress := fs.Bool("progress", true, "print per-cell progress and timing to stderr")
	traceOut := fs.String("trace", "", "write telemetry as Chrome trace_event JSON to this file")
	metricsOut := fs.String("metrics", "", "write telemetry as CSV metric rows to this file")
	hwFlag := fs.String("hw", "", "hardware-prefetcher model for every cell (default: each machine's model)")
	predictFlag := fs.String("predict", "", "prediction source for every cell: dynamic, static, or pgo (default: dynamic)")
	execFlag := fs.String("exec", "", "execution backend for every cell: interp or compiled (default: interp)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	size := workloads.SizeFull
	if *sizeFlag == "small" {
		size = workloads.SizeSmall
	} else if *sizeFlag != "full" {
		fmt.Fprintf(stderr, "experiments: bad -size %q\n", *sizeFlag)
		return 2
	}
	if *chart && *jsonOut {
		fmt.Fprintf(stderr, "experiments: -chart and -json are mutually exclusive\n")
		return 2
	}
	if err := harness.SetHWModel(*hwFlag); err != nil {
		fmt.Fprintf(stderr, "experiments: %v\n", err)
		return 2
	}
	defer harness.SetHWModel("")
	if err := harness.SetPredict(*predictFlag); err != nil {
		fmt.Fprintf(stderr, "experiments: %v\n", err)
		return 2
	}
	defer harness.SetPredict("")
	if err := harness.SetExec(*execFlag); err != nil {
		fmt.Fprintf(stderr, "experiments: %v\n", err)
		return 2
	}
	defer harness.SetExec("")

	known := map[string]bool{}
	for _, a := range artifacts {
		known[a] = true
	}
	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			name := strings.TrimSpace(s)
			if !known[name] {
				fmt.Fprintf(stderr, "experiments: unknown -only selector %q (valid: %s)\n",
					name, strings.Join(artifacts, ","))
				return 2
			}
			want[name] = true
		}
	}

	// Open telemetry outputs before any simulation runs: a writer that
	// cannot be opened is a usage error, not something to discover after
	// minutes of compute (and never silently).
	var trace *telemetry.Trace
	var traceFile, metricsFile *os.File
	openOut := func(path string) (*os.File, bool) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			return nil, false
		}
		return f, true
	}
	if *traceOut != "" {
		f, ok := openOut(*traceOut)
		if !ok {
			return 2
		}
		traceFile = f
		defer traceFile.Close()
	}
	if *metricsOut != "" {
		f, ok := openOut(*metricsOut)
		if !ok {
			return 2
		}
		metricsFile = f
		defer metricsFile.Close()
	}
	if traceFile != nil || metricsFile != nil {
		trace = telemetry.NewTrace()
		harness.SetRecorder(trace)
		defer harness.SetRecorder(nil)
	}

	harness.SetParallelism(*parallel)
	if *progress {
		harness.SetProgress(stderr)
		defer harness.SetProgress(nil)
	}
	start := time.Now()

	sel := func(name string) bool {
		if len(want) > 0 {
			return want[name]
		}
		return !defaultSkip[name]
	}
	var runErr error
	fail := func(err error) { runErr = err }

	enc := json.NewEncoder(stdout)
	emit := func(rows any) {
		if err := enc.Encode(rows); err != nil {
			fail(err)
		}
	}

	if sel("table1") && runErr == nil {
		s, err := harness.Table1()
		if err != nil {
			fail(err)
		} else if *jsonOut {
			emit(map[string]string{"artifact": "table1", "text": s})
		} else {
			fmt.Fprintln(stdout, s)
		}
	}
	if sel("table2") && runErr == nil {
		if *jsonOut {
			emit(map[string]string{"artifact": "table2", "text": harness.Table2()})
		} else {
			fmt.Fprintln(stdout, harness.Table2())
		}
	}
	if sel("table3") && runErr == nil {
		rows, err := harness.Table3(size)
		if err != nil {
			fail(err)
		} else if *jsonOut {
			for _, r := range rows {
				emit(struct {
					Artifact         string  `json:"artifact"`
					Workload         string  `json:"workload"`
					Suite            string  `json:"suite"`
					CompiledPct      float64 `json:"compiled_pct"`
					PaperCompiledPct float64 `json:"paper_compiled_pct"`
				}{"table3", r.Workload, r.Suite, r.CompiledPct, r.PaperCompiledPct})
			}
		} else {
			fmt.Fprintln(stdout, harness.FormatTable3(rows))
		}
	}
	speedupOut := harness.FormatSpeedups
	if *chart {
		speedupOut = harness.SpeedupChart
	}
	mpiOut := harness.FormatMPI
	if *chart {
		mpiOut = harness.MPIChart
	}
	speedupFig := func(name, title string, fig func(workloads.Size) ([]harness.SpeedupRow, error)) {
		if !sel(name) || runErr != nil {
			return
		}
		rows, err := fig(size)
		if err != nil {
			fail(err)
			return
		}
		if *jsonOut {
			for _, r := range rows {
				emit(struct {
					Artifact   string  `json:"artifact"`
					Workload   string  `json:"workload"`
					Inter      float64 `json:"inter_pct"`
					InterIntra float64 `json:"inter_intra_pct"`
					PaperInter float64 `json:"paper_inter_pct"`
					PaperBoth  float64 `json:"paper_inter_intra_pct"`
				}{name, r.Workload, r.Inter, r.InterIntra, r.PaperInter, r.PaperBoth})
			}
		} else {
			fmt.Fprintln(stdout, speedupOut(title, rows))
		}
	}
	mpiFig := func(name, title string, fig func(workloads.Size) ([]harness.MPIRow, error)) {
		if !sel(name) || runErr != nil {
			return
		}
		rows, err := fig(size)
		if err != nil {
			fail(err)
			return
		}
		if *jsonOut {
			for _, r := range rows {
				emit(struct {
					Artifact string  `json:"artifact"`
					Workload string  `json:"workload"`
					Baseline float64 `json:"baseline_mpi"`
					Opt      float64 `json:"inter_intra_mpi"`
				}{name, r.Workload, r.Baseline, r.Opt})
			}
		} else {
			fmt.Fprintln(stdout, mpiOut(title, rows))
		}
	}

	speedupFig("fig6", "Figure 6: speedup ratios on the Pentium 4", harness.Figure6)
	speedupFig("fig7", "Figure 7: speedup ratios on the Athlon MP", harness.Figure7)
	mpiFig("fig8", "Figure 8: L1 cache load MPIs", harness.Figure8)
	mpiFig("fig9", "Figure 9: L2 cache load MPIs", harness.Figure9)
	mpiFig("fig10", "Figure 10: DTLB load MPIs", harness.Figure10)
	if sel("fig11") && runErr == nil {
		rows, err := harness.Figure11(size)
		if err != nil {
			fail(err)
		} else if *jsonOut {
			for _, r := range rows {
				emit(struct {
					Artifact         string  `json:"artifact"`
					Workload         string  `json:"workload"`
					PrefetchOfJITPct float64 `json:"prefetch_of_jit_pct"`
					JITOfTotalPct    float64 `json:"jit_of_total_pct"`
				}{"fig11", r.Workload, r.PrefetchOfJITPct, r.JITOfTotalPct})
			}
		} else {
			fmt.Fprintln(stdout, harness.FormatCompile(rows))
		}
	}

	if sel("hwcross") && runErr == nil {
		rows, err := harness.HWCross(size)
		if err != nil {
			fail(err)
		} else if *jsonOut {
			for _, r := range rows {
				emit(struct {
					Artifact       string  `json:"artifact"`
					Machine        string  `json:"machine"`
					HW             string  `json:"hw_model"`
					Workload       string  `json:"workload"`
					BaselineCycles uint64  `json:"baseline_cycles"`
					Inter          float64 `json:"inter_pct"`
					InterIntra     float64 `json:"inter_intra_pct"`
					HWTrains       uint64  `json:"hw_trains"`
					HWIssued       uint64  `json:"hw_issued"`
					HWSuppressed   uint64  `json:"hw_suppressed"`
				}{"hwcross", r.Machine, r.HW, r.Workload, r.BaselineCycles,
					r.InterPct, r.InterIntraPct, r.HWTrains, r.HWIssued, r.HWSuppressed})
			}
		} else {
			fmt.Fprintln(stdout, harness.FormatHWCross(rows))
		}
	}

	if sel("predict") && runErr == nil {
		rows, err := harness.PredictCross(size)
		if err != nil {
			fail(err)
		} else if *jsonOut {
			for _, r := range rows {
				emit(struct {
					Artifact       string  `json:"artifact"`
					Machine        string  `json:"machine"`
					Workload       string  `json:"workload"`
					BaselineCycles uint64  `json:"baseline_cycles"`
					Dynamic        float64 `json:"dynamic_pct"`
					Static         float64 `json:"static_pct"`
					PGO            float64 `json:"pgo_pct"`
					DynamicEmits   int     `json:"dynamic_emits"`
					StaticEmits    int     `json:"static_emits"`
					StaticMatch    bool    `json:"static_match"`
					PGOMatch       bool    `json:"pgo_match"`
				}{"predict", r.Machine, r.Workload, r.BaselineCycles,
					r.DynamicPct, r.StaticPct, r.PGOPct,
					r.DynamicEmits, r.StaticEmits, r.StaticMatch, r.PGOMatch})
			}
		} else {
			fmt.Fprintln(stdout, harness.FormatPredictCross(rows))
		}
	}

	if runErr != nil {
		fmt.Fprintf(stderr, "experiments: %v\n", runErr)
		return 1
	}

	if traceFile != nil {
		if err := trace.WriteChromeTrace(traceFile); err != nil {
			fmt.Fprintf(stderr, "experiments: writing %s: %v\n", *traceOut, err)
			return 1
		}
	}
	if metricsFile != nil {
		if err := trace.WriteCSV(metricsFile); err != nil {
			fmt.Fprintf(stderr, "experiments: writing %s: %v\n", *metricsOut, err)
			return 1
		}
	}

	if *progress {
		c := harness.EngineCounters()
		sels := make([]string, 0, len(want))
		for s := range want {
			sels = append(sels, s)
		}
		sort.Strings(sels)
		scope := "all artifacts"
		if len(sels) > 0 {
			scope = strings.Join(sels, ",")
		}
		fmt.Fprintf(stderr, "experiments: %s in %s (%d VM executions, %d cache hits, %d deduped, %d workers)\n",
			scope, time.Since(start).Round(time.Millisecond),
			c.Executions, c.CacheHits, c.DedupHits, harness.Parallelism())
	}
	return 0
}
