package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI drives run() in-process and returns (exit code, stdout, stderr).
func runCLI(args ...string) (int, string, string) {
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"bad size", []string{"-size", "tiny"}, "bad -size"},
		{"unknown selector", []string{"-only", "fig99"}, "unknown -only selector"},
		{"chart with json", []string{"-chart", "-json"}, "mutually exclusive"},
		{"bad predict", []string{"-predict", "psychic"}, `unknown prediction source "psychic"`},
		{"undefined flag", []string{"-bogus"}, "flag provided but not defined"},
		{"unopenable trace file", []string{"-trace", "/nonexistent-dir/t.json"}, "no such file"},
		{"unopenable metrics file", []string{"-metrics", "/nonexistent-dir/m.csv"}, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out, errw := runCLI(tc.args...)
			if code != 2 {
				t.Errorf("exit = %d, want 2", code)
			}
			if out != "" {
				t.Errorf("usage error wrote to stdout: %q", out)
			}
			if !strings.Contains(errw, tc.wantErr) {
				t.Errorf("stderr %q does not mention %q", errw, tc.wantErr)
			}
		})
	}
}

func TestRunSubsetWritesTraceAndMetrics(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.csv")

	// table2 is the static machine-parameter table: no simulations, so the
	// full CLI path (flags, recorder install, export, teardown) stays fast.
	code, out, errw := runCLI("-only", "table2", "-progress=false",
		"-trace", tracePath, "-metrics", metricsPath)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errw)
	}
	if !strings.Contains(out, "Table 2") {
		t.Errorf("stdout missing Table 2:\n%s", out)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid Chrome trace JSON: %v", err)
	}

	csvRaw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	header, _, _ := strings.Cut(string(csvRaw), "\n")
	for _, colName := range []string{"ts_us", "kind", "method", "reason", "cell"} {
		found := false
		for _, h := range strings.Split(header, ",") {
			if h == colName {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("metrics header missing column %q: %s", colName, header)
		}
	}
}

func TestJSONModeEmitsRows(t *testing.T) {
	code, out, errw := runCLI("-only", "table2", "-json", "-progress=false")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errw)
	}
	var row map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &row); err != nil {
		t.Fatalf("-json output is not a JSON row: %v\n%s", err, out)
	}
	if row["artifact"] != "table2" {
		t.Errorf("artifact = %v", row["artifact"])
	}
}
