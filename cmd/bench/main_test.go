package main

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"strider/internal/bench"
)

func writeReport(t *testing.T, name string, entries []bench.Measurement) string {
	t.Helper()
	r := &bench.Report{Schema: bench.Schema, Entries: entries}
	path := filepath.Join(t.TempDir(), name)
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiffGateFailsOnSyntheticRegression drives the exact command CI runs
// and asserts the exit codes the gate relies on: 1 for a regression, 0 for
// a clean comparison.
func TestDiffGateFailsOnSyntheticRegression(t *testing.T) {
	base := writeReport(t, "base.json", []bench.Measurement{
		{Name: "vm/x", Iters: 3, NsPerOp: 1000, AllocsPerOp: 10},
	})
	regressed := writeReport(t, "regressed.json", []bench.Measurement{
		{Name: "vm/x", Iters: 3, NsPerOp: 1500, AllocsPerOp: 10},
	})
	clean := writeReport(t, "clean.json", []bench.Measurement{
		{Name: "vm/x", Iters: 3, NsPerOp: 1050, AllocsPerOp: 10},
	})

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-diff", base, regressed}, &stdout, &stderr); code != 1 {
		t.Errorf("50%% regression: exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if !strings.Contains(stdout.String(), "REGRESSION") {
		t.Errorf("diff output lacks regression marker:\n%s", &stdout)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-diff", base, clean}, &stdout, &stderr); code != 0 {
		t.Errorf("5%% drift under 10%% threshold: exit = %d, want 0\nstderr:\n%s", code, &stderr)
	}

	// A tighter threshold flips the clean comparison into a failure.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-diff", "-threshold", "2", base, clean}, &stdout, &stderr); code != 1 {
		t.Errorf("5%% drift under 2%% threshold: exit = %d, want 1", code)
	}
}

func TestDiffGateAllocGrowth(t *testing.T) {
	base := writeReport(t, "base.json", []bench.Measurement{
		{Name: "vm/x", Iters: 3, NsPerOp: 1000, AllocsPerOp: 0},
	})
	alloc := writeReport(t, "alloc.json", []bench.Measurement{
		{Name: "vm/x", Iters: 3, NsPerOp: 1000, AllocsPerOp: 3},
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-diff", base, alloc}, &stdout, &stderr); code != 1 {
		t.Errorf("alloc growth: exit = %d, want 1", code)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-diff", "-allow-alloc-growth", base, alloc}, &stdout, &stderr); code != 0 {
		t.Errorf("alloc growth waived: exit = %d, want 0\nstderr:\n%s", code, &stderr)
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	cases := [][]string{
		{"-diff", "only-one.json"},
		{"-diff", "-threshold", "0", "a.json", "b.json"},
		{"-diff", "a-file-that-does-not-exist.json", "another.json"},
		{"unexpected-positional-arg"},
		{"-no-such-flag"},
		{"-run", "matches-no-entry-at-all", "-iters", "1", "-time", "1ns"},
		{"-diff", "-cpuprofile", "x.pprof", "a.json", "b.json"},
		{"-diff", "-memprofile", "x.pprof", "a.json", "b.json"},
		{"-cpuprofile", "/no/such/dir/cpu.pprof", "-run", "memsim/stride-sweep", "-iters", "1", "-time", "1ns"},
		{"-memprofile", "/no/such/dir/mem.pprof", "-run", "memsim/stride-sweep", "-iters", "1", "-time", "1ns"},
	}
	for _, args := range cases {
		stdout.Reset()
		stderr.Reset()
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

func TestListMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit = %d\nstderr:\n%s", code, &stderr)
	}
	for _, want := range []string{"vm/jess-small", "memsim/stride-sweep", "grid/compress-small-3modes",
		"exec/jess-small-interp", "exec/jess-small-compiled"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("-list output missing %s:\n%s", want, &stdout)
		}
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if !sort.StringsAreSorted(lines) {
		t.Errorf("-list output is not sorted:\n%s", &stdout)
	}
}

// TestProfileFlags runs one real (tiny) measurement with both profile
// flags and asserts the files come out non-empty. Profile content is
// pprof's business; existence and non-emptiness are ours.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	out := filepath.Join(dir, "report.json")
	var stdout, stderr bytes.Buffer
	args := []string{"-run", "memsim/stride-sweep", "-iters", "1", "-time", "1ns",
		"-cpuprofile", cpu, "-memprofile", mem, "-out", out}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, &stderr)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile file: %v", err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

// TestRunSelectorValidation pins the typo behavior: exit 2 with the valid
// entry set on stderr, before any measurement runs.
func TestRunSelectorValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "exec/jess-small-compield"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	for _, want := range []string{"matches no suite entries", "exec/jess-small-compiled", "vm/jess-small"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, &stderr)
		}
	}
}
