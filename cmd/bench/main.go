// Command bench runs the pinned benchmark suite and maintains the
// BENCH_<n>.json performance trajectory, or diffs two such reports with a
// regression threshold (the CI benchmark gate).
//
// Usage:
//
//	bench [-run substr] [-iters n] [-time dur] [-parallel n]
//	      [-out file] [-sha sha] [-timestamp ts] [-list]
//	      [-cpuprofile file] [-memprofile file]
//	bench -diff base.json new.json [-threshold pct] [-allow-alloc-growth]
//
// Run mode measures every suite entry (serial by default — reports meant
// for gating should stay serial) and writes a machine-readable report:
// ns/op, allocs/op, B/op, plus each entry's deterministic simulated-work
// signature. -sha and -timestamp are stamped verbatim so a report is a
// pure function of code and flags.
//
// Diff mode compares a new report against a baseline: ns/op growth beyond
// -threshold percent (default 10) on any pinned entry, any allocs/op
// growth (unless -allow-alloc-growth), or a missing entry fails with exit
// code 1. Usage errors exit 2.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"strider/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command, factored out of main so the CLI tests can
// drive it in-process. Exit codes: 0 ok, 1 regression/runtime failure,
// 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runFilter := fs.String("run", "", "only run suite entries whose name contains this substring")
	iters := fs.Int("iters", 3, "minimum timed iterations per entry")
	minTime := fs.Duration("time", time.Second, "minimum timed duration per entry")
	parallel := fs.Int("parallel", 1, "worker count for suite entries (timings are noisy when > 1)")
	out := fs.String("out", "", "write the JSON report to this file (default stdout)")
	sha := fs.String("sha", "", "git SHA to stamp into the report")
	timestamp := fs.String("timestamp", "", "timestamp string to stamp into the report")
	list := fs.Bool("list", false, "list pinned suite entries and exit")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the measured run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile taken after the measured run to this file")
	diff := fs.Bool("diff", false, "diff mode: compare two report files")
	threshold := fs.Float64("threshold", 10, "diff: ns/op regression threshold in percent")
	allowAllocs := fs.Bool("allow-alloc-growth", false, "diff: tolerate allocs/op increases")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *diff {
		if *cpuProfile != "" || *memProfile != "" {
			fmt.Fprintln(stderr, "bench: -cpuprofile/-memprofile apply to run mode, not -diff")
			return 2
		}
		if fs.NArg() != 2 {
			fmt.Fprintf(stderr, "bench: -diff wants exactly two report files, got %d args\n", fs.NArg())
			return 2
		}
		if *threshold <= 0 {
			fmt.Fprintf(stderr, "bench: -threshold must be positive, got %v\n", *threshold)
			return 2
		}
		base, err := bench.ReadFile(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "bench: %v\n", err)
			return 2
		}
		cur, err := bench.ReadFile(fs.Arg(1))
		if err != nil {
			fmt.Fprintf(stderr, "bench: %v\n", err)
			return 2
		}
		findings := bench.Diff(base, cur, bench.DiffOptions{
			NsThresholdPct:   *threshold,
			AllowAllocGrowth: *allowAllocs,
		})
		fmt.Fprint(stdout, bench.FormatDiff(findings))
		if regs := bench.Regressions(findings); len(regs) > 0 {
			fmt.Fprintf(stderr, "bench: %d regression(s) beyond the %.0f%% ns/op threshold (allocs/op gated at zero growth)\n",
				len(regs), *threshold)
			return 1
		}
		fmt.Fprintf(stdout, "no regressions (ns/op threshold %.0f%%)\n", *threshold)
		return 0
	}

	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "bench: unexpected arguments: %s\n", strings.Join(fs.Args(), " "))
		return 2
	}

	entries := bench.Suite()
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	sort.Strings(names)
	if *list {
		// Sorted, not suite order: the list is a lookup table for -run,
		// and suite order shuffles as entries are added between releases.
		for _, n := range names {
			fmt.Fprintln(stdout, n)
		}
		return 0
	}

	// Validate the selector before measuring anything, like the other
	// CLIs validate their enum flags: a typo costs an exit 2 and the
	// valid set, not a silent empty report.
	if *runFilter != "" {
		matched := false
		for _, n := range names {
			if strings.Contains(n, *runFilter) {
				matched = true
				break
			}
		}
		if !matched {
			fmt.Fprintf(stderr, "bench: -run %q matches no suite entries; valid entries:\n  %s\n",
				*runFilter, strings.Join(names, "\n  "))
			return 2
		}
	}

	// Profile files are opened before any measurement so a bad path is a
	// cheap exit 2, not a wasted suite run. The CPU profile covers exactly
	// the measured entries (setup included — setup cost is part of what a
	// hot-path investigation wants to see); the heap profile is taken after
	// the run, when steady-state retention is what remains.
	var cpuOut, memOut *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "bench: -cpuprofile: %v\n", err)
			return 2
		}
		cpuOut = f
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(stderr, "bench: -memprofile: %v\n", err)
			return 2
		}
		memOut = f
	}
	if cpuOut != nil {
		if err := pprof.StartCPUProfile(cpuOut); err != nil {
			fmt.Fprintf(stderr, "bench: -cpuprofile: %v\n", err)
			return 2
		}
	}

	opts := bench.Options{
		MinIters:  *iters,
		MinTime:   *minTime,
		Parallel:  *parallel,
		GitSHA:    *sha,
		Timestamp: *timestamp,
	}
	if *runFilter != "" {
		opts.Filter = func(name string) bool { return strings.Contains(name, *runFilter) }
	}
	report, err := bench.RunSuite(entries, opts)
	if cpuOut != nil {
		pprof.StopCPUProfile()
		if cerr := cpuOut.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if memOut != nil {
		runtime.GC() // flush unreachable setup garbage so the profile shows live state
		if perr := pprof.WriteHeapProfile(memOut); perr != nil && err == nil {
			err = perr
		}
		if cerr := memOut.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 1
	}
	for _, m := range report.Entries {
		fmt.Fprintf(stderr, "%-34s %5d iters  %14.0f ns/op  %10.1f allocs/op  %14.0f B/op\n",
			m.Name, m.Iters, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
	}
	if *out == "" {
		data, err := report.JSON()
		if err != nil {
			fmt.Fprintf(stderr, "bench: %v\n", err)
			return 1
		}
		stdout.Write(data)
		return 0
	}
	if err := report.WriteFile(*out); err != nil {
		fmt.Fprintf(stderr, "bench: %v\n", err)
		return 1
	}
	return 0
}
