package main

import (
	"bytes"
	"strings"
	"testing"
)

// runCLI drives run() in-process and returns (exit code, stdout, stderr).
func runCLI(args ...string) (int, string, string) {
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestFlagValidation: every enumerated flag is validated up front; a bad
// value exits 2 and names the valid set on stderr before anything runs.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr []string
	}{
		{"unknown workload", []string{"-workload", "quake"},
			[]string{`"quake"`, "jess", "db"}},
		{"unknown machine", []string{"-machine", "Itanium"},
			[]string{`"Itanium"`, "Pentium4", "AthlonMP"}},
		{"unknown mode", []string{"-mode", "turbo"},
			[]string{`"turbo"`, "baseline", "inter", "inter+intra"}},
		{"unknown size", []string{"-size", "tiny"},
			[]string{`"tiny"`, "small", "full"}},
		{"unknown gc", []string{"-gc", "generational"},
			[]string{`"generational"`, "compact", "freelist"}},
		{"unknown predict", []string{"-predict", "psychic"},
			[]string{`"psychic"`, "dynamic", "static", "pgo"}},
		{"undefined flag", []string{"-bogus"},
			[]string{"flag provided but not defined"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out, errw := runCLI(tc.args...)
			if code != 2 {
				t.Errorf("exit = %d, want 2 (stderr: %s)", code, errw)
			}
			if out != "" {
				t.Errorf("usage error wrote to stdout: %q", out)
			}
			for _, want := range tc.wantErr {
				if !strings.Contains(errw, want) {
					t.Errorf("stderr %q does not mention %q", errw, want)
				}
			}
		})
	}
}

func TestListWorkloads(t *testing.T) {
	code, out, errw := runCLI("-list")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errw)
	}
	for _, name := range []string{"jess", "db", "mtrt"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing workload %q", name)
		}
	}
}

func TestMetricSummary(t *testing.T) {
	code, out, errw := runCLI("-workload", "jess", "-machine", "AthlonMP",
		"-mode", "inter", "-size", "small", "-gc", "freelist")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errw)
	}
	for _, want := range []string{"workload     jess (AthlonMP", "cycles", "checksum", "prefetches"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestVerifyFlag runs the differential oracle end to end through the CLI.
func TestVerifyFlag(t *testing.T) {
	code, out, errw := runCLI("-workload", "compress", "-verify")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s\nstdout: %s", code, errw, out)
	}
	if !strings.Contains(out, "verified: 68 configurations reproduce the oracle fingerprint") {
		t.Errorf("verify output unexpected:\n%s", out)
	}
}

func TestVerifyRejectsUnknownWorkloadBeforeRunning(t *testing.T) {
	code, _, errw := runCLI("-workload", "nope", "-verify")
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (stderr: %s)", code, errw)
	}
}

func TestDotUnknownMethod(t *testing.T) {
	code, _, errw := runCLI("-workload", "jess", "-dot", "::noSuchMethod")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errw, "noSuchMethod") {
		t.Errorf("stderr %q does not name the missing method", errw)
	}
}

func TestExplainFlag(t *testing.T) {
	code, out, errw := runCLI("-workload", "db", "-explain")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errw)
	}
	if out == "" {
		t.Fatal("explain produced no decision log")
	}
}
