// Command striderun executes one benchmark analog on a simulated machine
// under a prefetching configuration and reports the paper's metrics.
//
// Usage:
//
//	striderun -workload db -machine Pentium4 -mode inter+intra -size full
//	striderun -workload jess -explain
//	striderun -list
//
// -explain replaces the metric summary with a human-readable decision
// log: every JIT compile, each loop's inspection verdict, each prefetch
// candidate's emit/filter decision with its Sec. 3.3 reason code, and the
// per-site memory attribution of the measured run.
package main

import (
	"flag"
	"fmt"
	"os"

	"strider/internal/arch"
	"strider/internal/core/jit"
	"strider/internal/harness"
	"strider/internal/heap"
	"strider/internal/vm"
	"strider/internal/workloads"
)

func main() {
	workload := flag.String("workload", "jess", "benchmark analog to run (-list to enumerate)")
	machine := flag.String("machine", "Pentium4", "Pentium4 or AthlonMP")
	modeFlag := flag.String("mode", "inter+intra", "baseline, inter, or inter+intra")
	sizeFlag := flag.String("size", "small", "small or full")
	gcFlag := flag.String("gc", "compact", "compact (sliding compaction) or freelist")
	list := flag.Bool("list", false, "list workloads and exit")
	dot := flag.String("dot", "", "print the annotated load dependence graphs of a compiled method (qualified name, e.g. ::findInMemory) in Graphviz dot format")
	explain := flag.Bool("explain", false, "print the per-loop prefetch decision log instead of the metric summary")
	flag.Parse()

	if *list {
		fmt.Printf("%-12s %-10s %s\n", "name", "suite", "description")
		for _, w := range workloads.All() {
			fmt.Printf("%-12s %-10s %s\n", w.Name, w.Suite, w.Description)
		}
		return
	}

	var mode jit.Mode
	switch *modeFlag {
	case "baseline":
		mode = jit.Baseline
	case "inter":
		mode = jit.Inter
	case "inter+intra":
		mode = jit.InterIntra
	default:
		fmt.Fprintf(os.Stderr, "striderun: bad -mode %q\n", *modeFlag)
		os.Exit(2)
	}
	size := workloads.SizeSmall
	if *sizeFlag == "full" {
		size = workloads.SizeFull
	}
	gc := heap.GCSlidingCompact
	if *gcFlag == "freelist" {
		gc = heap.GCMarkSweepFreeList
	}

	if *dot != "" {
		if err := dumpDot(*workload, *machine, mode, size, gc, *dot); err != nil {
			fmt.Fprintf(os.Stderr, "striderun: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *explain {
		log, err := harness.Explain(harness.Spec{
			Workload: *workload, Machine: *machine, Mode: mode, Size: size, GC: gc,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "striderun: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(log)
		return
	}

	s, err := harness.Run(harness.Spec{
		Workload: *workload, Machine: *machine, Mode: mode, Size: size, GC: gc,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "striderun: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("workload     %s (%s, %s, %s)\n", *workload, *machine, mode, size)
	fmt.Printf("cycles       %d\n", s.Cycles)
	fmt.Printf("instructions %d\n", s.Instructions)
	fmt.Printf("checksum     %016x\n", s.Checksum)
	fmt.Printf("compiled     %.1f%% of cycles (%d methods)\n", 100*s.CompiledFraction(), s.CompiledMethods)
	fmt.Printf("GCs          %d (%d cycles)\n", s.GCs, s.GCCycles)
	fmt.Printf("L1 load MPI  %.5f\n", s.L1LoadMPI())
	fmt.Printf("L2 load MPI  %.5f\n", s.L2LoadMPI())
	fmt.Printf("DTLB MPI     %.5f\n", s.DTLBLoadMPI())
	fmt.Printf("prefetches   issued=%d guarded=%d dropped=%d useless=%d hw=%d\n",
		s.Mem.PrefetchesIssued, s.Mem.PrefetchesGuarded, s.Mem.PrefetchesDropped,
		s.Mem.PrefetchesUseless, s.Mem.HWPrefetches)
	fmt.Printf("codegen      inter=%d specload=%d deref=%d intra=%d (filtered: line=%d dup=%d use=%d)\n",
		s.Prefetch.InterPrefetches, s.Prefetch.SpecLoads, s.Prefetch.DerefPrefetches,
		s.Prefetch.IntraPrefetches, s.Prefetch.FilteredLine, s.Prefetch.FilteredDup, s.Prefetch.FilteredUse)
	fmt.Printf("JIT ledger   total=%d units, prefetch phase=%d units (%.2f%%), inspection steps=%d\n",
		s.JITUnits, s.PrefetchUnits, 100*float64(s.PrefetchUnits)/float64(max64(s.JITUnits, 1)), s.InspectSteps)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// dumpDot runs the workload once and prints the requested method's
// annotated load dependence graphs in Graphviz format.
func dumpDot(workload, machine string, mode jit.Mode, size workloads.Size, gc heap.GCMode, qname string) error {
	w, err := workloads.ByName(workload)
	if err != nil {
		return err
	}
	m := arch.ByName(machine)
	if m == nil {
		return fmt.Errorf("unknown machine %q", machine)
	}
	prog := w.Build(size)
	v := vm.New(prog, vm.Config{Machine: m, Mode: mode, HeapBytes: w.HeapBytes, GC: gc})
	if _, err := v.Measure(nil, 1); err != nil {
		return err
	}
	method := prog.MethodByName(qname)
	if method == nil {
		return fmt.Errorf("no method %q in %s", qname, workload)
	}
	c := v.CompiledFor(method)
	if c == nil {
		return fmt.Errorf("method %q was never JIT-compiled", qname)
	}
	if len(c.Graphs) == 0 {
		return fmt.Errorf("method %q has no instrumented loops", qname)
	}
	for _, g := range c.Graphs {
		fmt.Print(g.Dot())
	}
	return nil
}
