// Command striderun executes one benchmark analog on a simulated machine
// under a prefetching configuration and reports the paper's metrics.
//
// Usage:
//
//	striderun -workload db -machine Pentium4 -mode inter+intra -size full
//	striderun -workload db -hw ipstride
//	striderun -workload jess -explain
//	striderun -workload jess -verify
//	striderun -list
//
// -explain replaces the metric summary with a human-readable decision
// log: every JIT compile, each loop's inspection verdict, each prefetch
// candidate's emit/filter decision with its Sec. 3.3 reason code, and the
// per-site memory attribution of the measured run.
//
// -verify runs the workload through the differential oracle instead: a
// prefetch-blind reference interpreter's architectural fingerprint must
// be reproduced by the full JIT+memsim stack under every prefetching
// configuration on both machines.
//
// -hw selects the simulated hardware-prefetcher model (none, nextline,
// stream, ipstride, tracker, multistride); the default is the machine's
// own model, the per-page stream detector.
//
// -predict selects the prediction source feeding prefetch decisions:
// dynamic (the paper's JIT-time object inspection, the default), static
// (the offline analyzer, no execution), or pgo (replay a recorded
// profile of a dynamic run of the same cell).
//
// -exec selects the execution backend for JIT-compiled methods: interp
// (the step loop, the default) or compiled (the threaded-code tier).
// The backends are semantically identical — same cycles, checksums, and
// traces — and differ only in host-side speed.
//
// Exit status: 0 on success, 1 on execution or verification failure,
// 2 on a usage error (unknown workload, machine, mode, size, gc, hw
// model, prediction source, or exec backend).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"strider/internal/arch"
	"strider/internal/core/jit"
	"strider/internal/harness"
	"strider/internal/heap"
	"strider/internal/memsim"
	"strider/internal/vm"
	"strider/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI; main only binds it to the process. All flag
// values are validated up front — an unknown workload, machine, mode,
// size, or gc prints the valid set and returns 2 before anything runs.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("striderun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "jess", "benchmark analog to run (-list to enumerate)")
	machine := fs.String("machine", "Pentium4", "Pentium4 or AthlonMP")
	modeFlag := fs.String("mode", "inter+intra", "baseline, inter, or inter+intra")
	sizeFlag := fs.String("size", "small", "small or full")
	gcFlag := fs.String("gc", "compact", "compact (sliding compaction) or freelist")
	hwFlag := fs.String("hw", "", "hardware-prefetcher model: "+strings.Join(memsim.HWModels(), ", ")+" (default: the machine's model)")
	predictFlag := fs.String("predict", "", "prediction source: "+strings.Join(jit.PredictSources(), ", ")+" (default: dynamic)")
	execFlag := fs.String("exec", "", "execution backend: "+strings.Join(vm.ExecNames(), ", ")+" (default: interp)")
	list := fs.Bool("list", false, "list workloads and exit")
	dot := fs.String("dot", "", "print the annotated load dependence graphs of a compiled method (qualified name, e.g. ::findInMemory) in Graphviz dot format")
	explain := fs.Bool("explain", false, "print the per-loop prefetch decision log instead of the metric summary")
	verify := fs.Bool("verify", false, "differentially verify the workload against the prefetch-blind oracle instead of measuring it")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintf(stdout, "%-12s %-10s %s\n", "name", "suite", "description")
		for _, w := range workloads.All() {
			fmt.Fprintf(stdout, "%-12s %-10s %s\n", w.Name, w.Suite, w.Description)
		}
		return 0
	}

	// Upfront validation of every enumerated flag.
	if _, err := workloads.ByName(*workload); err != nil {
		fmt.Fprintf(stderr, "striderun: %v\n", err)
		return 2
	}
	if arch.ByName(*machine) == nil {
		fmt.Fprintf(stderr, "striderun: unknown machine %q (valid: %s)\n", *machine, strings.Join(machineNames(), ", "))
		return 2
	}
	var mode jit.Mode
	switch *modeFlag {
	case "baseline":
		mode = jit.Baseline
	case "inter":
		mode = jit.Inter
	case "inter+intra":
		mode = jit.InterIntra
	default:
		fmt.Fprintf(stderr, "striderun: unknown mode %q (valid: baseline, inter, inter+intra)\n", *modeFlag)
		return 2
	}
	var size workloads.Size
	switch *sizeFlag {
	case "small":
		size = workloads.SizeSmall
	case "full":
		size = workloads.SizeFull
	default:
		fmt.Fprintf(stderr, "striderun: unknown size %q (valid: small, full)\n", *sizeFlag)
		return 2
	}
	var gc heap.GCMode
	switch *gcFlag {
	case "compact":
		gc = heap.GCSlidingCompact
	case "freelist":
		gc = heap.GCMarkSweepFreeList
	default:
		fmt.Fprintf(stderr, "striderun: unknown gc %q (valid: compact, freelist)\n", *gcFlag)
		return 2
	}
	if !memsim.ValidHWModel(*hwFlag) {
		fmt.Fprintf(stderr, "striderun: unknown hardware-prefetcher model %q (valid: %s)\n",
			*hwFlag, strings.Join(memsim.HWModels(), ", "))
		return 2
	}
	if _, err := jit.ParsePredict(*predictFlag); err != nil {
		fmt.Fprintf(stderr, "striderun: unknown prediction source %q (valid: %s)\n",
			*predictFlag, strings.Join(jit.PredictSources(), ", "))
		return 2
	}
	if _, err := vm.ParseExec(*execFlag); err != nil {
		fmt.Fprintf(stderr, "striderun: unknown exec backend %q (valid: %s)\n",
			*execFlag, strings.Join(vm.ExecNames(), ", "))
		return 2
	}

	if *verify {
		rep, err := harness.Verify(*workload, size, gc)
		if err != nil {
			fmt.Fprintf(stderr, "striderun: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, rep.Summary())
		if !rep.OK() {
			return 1
		}
		return 0
	}

	if *dot != "" {
		if err := dumpDot(stdout, *workload, *machine, mode, size, gc, *dot); err != nil {
			fmt.Fprintf(stderr, "striderun: %v\n", err)
			return 1
		}
		return 0
	}

	if *explain {
		log, err := harness.Explain(harness.Spec{
			Workload: *workload, Machine: *machine, Mode: mode, Size: size, GC: gc, HW: *hwFlag,
			Predict: *predictFlag, Exec: *execFlag,
		})
		if err != nil {
			fmt.Fprintf(stderr, "striderun: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, log)
		return 0
	}

	s, err := harness.Run(harness.Spec{
		Workload: *workload, Machine: *machine, Mode: mode, Size: size, GC: gc, HW: *hwFlag,
		Predict: *predictFlag, Exec: *execFlag,
	})
	if err != nil {
		fmt.Fprintf(stderr, "striderun: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "workload     %s (%s, %s, %s)\n", *workload, *machine, mode, size)
	fmt.Fprintf(stdout, "cycles       %d\n", s.Cycles)
	fmt.Fprintf(stdout, "instructions %d\n", s.Instructions)
	fmt.Fprintf(stdout, "checksum     %016x\n", s.Checksum)
	fmt.Fprintf(stdout, "compiled     %.1f%% of cycles (%d methods)\n", 100*s.CompiledFraction(), s.CompiledMethods)
	fmt.Fprintf(stdout, "GCs          %d (%d cycles)\n", s.GCs, s.GCCycles)
	fmt.Fprintf(stdout, "L1 load MPI  %.5f\n", s.L1LoadMPI())
	fmt.Fprintf(stdout, "L2 load MPI  %.5f\n", s.L2LoadMPI())
	fmt.Fprintf(stdout, "DTLB MPI     %.5f\n", s.DTLBLoadMPI())
	fmt.Fprintf(stdout, "prefetches   issued=%d guarded=%d dropped=%d useless=%d hw=%d\n",
		s.Mem.PrefetchesIssued, s.Mem.PrefetchesGuarded, s.Mem.PrefetchesDropped,
		s.Mem.PrefetchesUseless, s.Mem.HWPrefetches)
	fmt.Fprintf(stdout, "hw prefetch  model=%s trains=%d hits=%d issued=%d suppressed=%d\n",
		s.HWModel, s.HW.Trains, s.HW.Hits, s.HW.Issued, s.HW.Suppressed)
	fmt.Fprintf(stdout, "codegen      inter=%d specload=%d deref=%d intra=%d (filtered: line=%d dup=%d use=%d)\n",
		s.Prefetch.InterPrefetches, s.Prefetch.SpecLoads, s.Prefetch.DerefPrefetches,
		s.Prefetch.IntraPrefetches, s.Prefetch.FilteredLine, s.Prefetch.FilteredDup, s.Prefetch.FilteredUse)
	fmt.Fprintf(stdout, "JIT ledger   total=%d units, prefetch phase=%d units (%.2f%%), inspection steps=%d\n",
		s.JITUnits, s.PrefetchUnits, 100*float64(s.PrefetchUnits)/float64(max64(s.JITUnits, 1)), s.InspectSteps)
	return 0
}

func machineNames() []string {
	var names []string
	for _, m := range arch.Machines() {
		names = append(names, m.Name)
	}
	return names
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// dumpDot runs the workload once and prints the requested method's
// annotated load dependence graphs in Graphviz format.
func dumpDot(stdout io.Writer, workload, machine string, mode jit.Mode, size workloads.Size, gc heap.GCMode, qname string) error {
	w, err := workloads.ByName(workload)
	if err != nil {
		return err
	}
	m := arch.ByName(machine)
	if m == nil {
		return fmt.Errorf("unknown machine %q", machine)
	}
	prog := w.Build(size)
	v := vm.New(prog, vm.Config{Machine: m, Mode: mode, HeapBytes: w.HeapBytes, GC: gc})
	if _, err := v.Measure(nil, 1); err != nil {
		return err
	}
	method := prog.MethodByName(qname)
	if method == nil {
		return fmt.Errorf("no method %q in %s", qname, workload)
	}
	c := v.CompiledFor(method)
	if c == nil {
		return fmt.Errorf("method %q was never JIT-compiled", qname)
	}
	if len(c.Graphs) == 0 {
		return fmt.Errorf("method %q has no instrumented loops", qname)
	}
	for _, g := range c.Graphs {
		fmt.Fprint(stdout, g.Dot())
	}
	return nil
}
