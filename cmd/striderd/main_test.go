package main

import (
	"bytes"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"strider/internal/server"
)

// TestDaemonServesAndDrains boots the daemon on an ephemeral port, drives
// it with the load-generator engine, then delivers SIGTERM and expects a
// clean drain with exit status 0.
func TestDaemonServesAndDrains(t *testing.T) {
	ready := make(chan string, 1)
	var out, errOut bytes.Buffer
	code := make(chan int, 1)
	go func() {
		code <- run([]string{"-addr", "127.0.0.1:0", "-shards", "2"}, &out, &errOut, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not come up: %s", errOut.String())
	}

	url := "http://" + addr
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	jobs := []server.Job{{Workload: "fuzz:0x3"}, {Workload: "jess"}}
	want, err := server.SerialBaseline(jobs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := server.RunLoad(server.LoadOptions{
		URL: url, Jobs: jobs, Requests: 16, Concurrency: 4, Verify: want,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.OK != 16 || st.Errors != 0 || st.Mismatches != 0 {
		t.Fatalf("load against daemon: %+v", st)
	}

	// SIGTERM → graceful drain → exit 0.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("exit code %d after SIGTERM, want 0\nstderr: %s", c, errOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if !strings.Contains(out.String(), "draining") || !strings.Contains(out.String(), "drained") {
		t.Errorf("drain not reported:\n%s", out.String())
	}
}

// TestDaemonUsageErrors pins the exit-2 contract.
func TestDaemonUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if c := run([]string{"-bogus"}, &out, &errOut, nil); c != 2 {
		t.Errorf("unknown flag: exit %d, want 2", c)
	}
	if c := run([]string{"positional"}, &out, &errOut, nil); c != 2 {
		t.Errorf("positional arg: exit %d, want 2", c)
	}
	if c := run([]string{"-addr", "256.256.256.256:99999"}, &out, &errOut, nil); c != 1 {
		t.Errorf("unlistenable address: exit %d, want 1", c)
	}
}
