// Command striderd runs the strider execution service: a long-running
// HTTP/JSON server that accepts experiment-cell jobs, schedules them
// across per-core worker shards with bounded queues, and serves results
// from a singleflight cache backed by a pool of recycled VMs.
//
// Usage:
//
//	striderd -addr 127.0.0.1:8120
//	striderd -addr 127.0.0.1:0 -shards 8 -queue 128 -cache 4096 -pool 512
//	striderd -exec compiled
//
// -exec sets the process-default execution backend (interp or compiled)
// applied to jobs that leave their exec field empty. Responses are
// byte-identical either way — the backends are semantically equivalent —
// but the compiled tier serves cells faster.
//
// Endpoints:
//
//	POST /run      submit one job; ?nocache=1 bypasses the result cache,
//	               ?explain=1 returns the per-loop decision log
//	GET  /stats    queue depths, shard utilization, cache and pool counters
//	GET  /healthz  200 while serving, 503 + Retry-After while draining
//
// A full queue is explicit backpressure: 429 with a Retry-After hint.
// SIGINT/SIGTERM starts a graceful drain — new jobs are refused with 503
// while everything already accepted runs to completion, then the process
// exits 0.
//
// Exit status: 0 after a clean drain, 1 if the listener fails, 2 on a
// usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"strider/internal/harness"
	"strider/internal/server"
	"strider/internal/vm"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the whole daemon; main binds it to the process. ready, when
// non-nil, receives the bound address once the listener is serving —
// tests and the CI smoke script use -addr 127.0.0.1:0 and read it from
// stdout.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("striderd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8120", "listen address (host:port; port 0 picks a free port)")
	shards := fs.Int("shards", 0, "worker shards (0 = one per core)")
	queue := fs.Int("queue", 0, "per-shard queue depth (0 = default 64)")
	cache := fs.Int("cache", 0, "cached results per shard (0 = default 1024, negative disables)")
	pool := fs.Int("pool", 0, "max cells with a parked VM (0 = default 256, negative disables)")
	drainTimeout := fs.Duration("drain-timeout", time.Minute, "bound on the shutdown drain")
	execFlag := fs.String("exec", "", "default execution backend for jobs that leave exec empty: interp or compiled")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "striderd: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if _, err := vm.ParseExec(*execFlag); err != nil {
		fmt.Fprintf(stderr, "striderd: %v\n", err)
		return 2
	}
	if err := harness.SetExec(*execFlag); err != nil {
		fmt.Fprintf(stderr, "striderd: %v\n", err)
		return 2
	}
	defer harness.SetExec("")

	srv := server.New(server.Config{
		Shards:       *shards,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		PoolKeys:     *pool,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "striderd: listen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "striderd listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(stdout, "striderd: %v — draining\n", s)
	case err := <-serveErr:
		fmt.Fprintf(stderr, "striderd: serve: %v\n", err)
		return 1
	}

	// Graceful drain: refuse new jobs (503), finish everything accepted,
	// then stop the HTTP listener.
	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(*drainTimeout):
		fmt.Fprintf(stderr, "striderd: drain timed out after %s\n", *drainTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(ctx)
	st := srv.StatsSnapshot()
	fmt.Fprintf(stdout, "striderd: drained — %d accepted, %d completed, %d cache hits\n",
		st.Accepted, st.Completed, st.Cache.Hits)
	return 0
}
