package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"strider/internal/server"
)

func testService(t *testing.T) *httptest.Server {
	t.Helper()
	srv := server.New(server.Config{Shards: 2})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

// TestLoadVerifiedRun drives a live service with -verify: every response
// must match the serial in-process baseline, exit 0.
func TestLoadVerifiedRun(t *testing.T) {
	ts := testService(t)
	var out, errOut bytes.Buffer
	code := run([]string{
		"-addr", ts.URL,
		"-cells", "jess,db/baseline,fuzz:0x3",
		"-n", "24", "-c", "4", "-verify", "-min-rate", "1",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"mismatches    0", "errors        0", "ok            24"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in report:\n%s", want, out.String())
		}
	}
}

// TestLoadNocacheRun exercises the pooled-execution path end to end.
func TestLoadNocacheRun(t *testing.T) {
	ts := testService(t)
	var out, errOut bytes.Buffer
	code := run([]string{"-addr", ts.URL, "-cells", "search/inter", "-n", "6", "-nocache", "-verify"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "mismatches    0") {
		t.Errorf("nocache run mismatched:\n%s", out.String())
	}
}

// TestLoadUsageErrors pins the exit-2 contract, including cell validation
// before any request is sent.
func TestLoadUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if c := run([]string{"-bogus"}, &out, &errOut); c != 2 {
		t.Errorf("unknown flag: exit %d, want 2", c)
	}
	if c := run([]string{"positional"}, &out, &errOut); c != 2 {
		t.Errorf("positional arg: exit %d, want 2", c)
	}
	if c := run([]string{"-cells", "no-such-workload"}, &out, &errOut); c != 2 {
		t.Errorf("invalid cell: exit %d, want 2", c)
	}
	if c := run([]string{"-cells", "a/b/c/d"}, &out, &errOut); c != 2 {
		t.Errorf("malformed cell: exit %d, want 2", c)
	}
	if c := run([]string{"-cells", " , "}, &out, &errOut); c != 2 {
		t.Errorf("empty cells: exit %d, want 2", c)
	}
	if !strings.Contains(errOut.String(), "valid") {
		t.Errorf("usage error does not list valid values:\n%s", errOut.String())
	}
}

// TestLoadRateGate pins -min-rate: an impossible floor fails with exit 1.
func TestLoadRateGate(t *testing.T) {
	ts := testService(t)
	var out, errOut bytes.Buffer
	code := run([]string{"-addr", ts.URL, "-cells", "jess", "-n", "4", "-min-rate", "1e12"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "below required") {
		t.Errorf("rate failure not reported:\n%s", errOut.String())
	}
}
