// Command striderload load-tests a running striderd service.
//
// Usage:
//
//	striderload -addr http://127.0.0.1:8120 -n 20000 -c 16
//	striderload -addr http://127.0.0.1:8120 -cells jess,db/baseline,fuzz:0x3 -verify
//	striderload -addr http://127.0.0.1:8120 -duration 5s -nocache -min-rate 10000
//
// -cells is a comma-separated list of cells, each
// workload[/mode[/machine]] (the separator is "/" because fuzz workloads
// spell their seed as fuzz:<seed>). Requests cycle through the cells
// round-robin. -verify first computes each cell's checksum serially
// in-process and fails the run if any service response diverges.
//
// Exit status: 0 on success, 1 when the run saw transport errors,
// undocumented statuses, checksum mismatches, or a rate below -min-rate,
// 2 on a usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"strider/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("striderload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:8120", "service base URL")
	cells := fs.String("cells", "jess,db,search/baseline,fuzz:0x3", "comma-separated cells, each workload[/mode[/machine]]")
	concurrency := fs.Int("c", 8, "concurrent client workers")
	requests := fs.Int("n", 0, "total requests (0 = 256, unless -duration is set)")
	duration := fs.Duration("duration", 0, "bound the run by wall clock instead of request count")
	nocache := fs.Bool("nocache", false, "submit with ?nocache=1 (forces execution on pooled VMs)")
	verify := fs.Bool("verify", false, "check every response checksum against a serial in-process run")
	minRate := fs.Float64("min-rate", 0, "fail when sustained requests/sec falls below this")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "striderload: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	jobs, err := parseCells(*cells)
	if err != nil {
		fmt.Fprintf(stderr, "striderload: %v\n", err)
		return 2
	}
	for _, jb := range jobs {
		if verr := jb.Validate(); verr != nil {
			fmt.Fprintf(stderr, "striderload: invalid cell: %v\n", verr)
			return 2
		}
	}

	opts := server.LoadOptions{
		URL:         strings.TrimRight(*addr, "/"),
		Jobs:        jobs,
		Concurrency: *concurrency,
		Requests:    *requests,
		Duration:    *duration,
		NoCache:     *nocache,
	}
	if *verify {
		want, err := server.SerialBaseline(jobs)
		if err != nil {
			fmt.Fprintf(stderr, "striderload: %v\n", err)
			return 1
		}
		opts.Verify = want
	}

	st, err := server.RunLoad(opts)
	if err != nil {
		fmt.Fprintf(stderr, "striderload: %v\n", err)
		return 2
	}

	fmt.Fprintf(stdout, "requests      %d\n", st.Requests)
	fmt.Fprintf(stdout, "ok            %d\n", st.OK)
	fmt.Fprintf(stdout, "traps         %d\n", st.Traps)
	fmt.Fprintf(stdout, "backpressure  %d\n", st.Backpressure)
	fmt.Fprintf(stdout, "errors        %d\n", st.Errors)
	fmt.Fprintf(stdout, "mismatches    %d\n", st.Mismatches)
	fmt.Fprintf(stdout, "checksum      %016x\n", st.Checksum)
	fmt.Fprintf(stdout, "elapsed       %s\n", st.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(stdout, "rate          %.0f req/s\n", st.Rate())
	fmt.Fprintf(stdout, "latency p50   %s\n", st.Percentile(50))
	fmt.Fprintf(stdout, "latency p99   %s\n", st.Percentile(99))

	fail := false
	if st.Errors > 0 {
		fmt.Fprintf(stderr, "striderload: %d requests failed outside the documented status set\n", st.Errors)
		fail = true
	}
	if st.Mismatches > 0 {
		fmt.Fprintf(stderr, "striderload: %d responses diverged from the serial baseline\n", st.Mismatches)
		fail = true
	}
	if *minRate > 0 && st.Rate() < *minRate {
		fmt.Fprintf(stderr, "striderload: rate %.0f req/s below required %.0f\n", st.Rate(), *minRate)
		fail = true
	}
	if fail {
		return 1
	}
	return 0
}

// parseCells expands the -cells spelling into jobs.
func parseCells(s string) ([]server.Job, error) {
	var jobs []server.Job
	for _, cell := range strings.Split(s, ",") {
		cell = strings.TrimSpace(cell)
		if cell == "" {
			continue
		}
		parts := strings.Split(cell, "/")
		if len(parts) > 3 {
			return nil, fmt.Errorf("bad cell %q (want workload[/mode[/machine]])", cell)
		}
		jb := server.Job{Workload: parts[0]}
		if len(parts) > 1 {
			jb.Mode = parts[1]
		}
		if len(parts) > 2 {
			jb.Machine = parts[2]
		}
		jobs = append(jobs, jb)
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("no cells in %q", s)
	}
	return jobs, nil
}
