package oracle

// The differ: run one program through the full JIT+memsim stack under
// every prefetching configuration on both machine models, and assert that
// each run's architectural fingerprint equals the reference
// interpreter's. This is the only file in the package that imports the
// real execution stack.

import (
	"errors"
	"fmt"

	"strider/internal/arch"
	"strider/internal/core/jit"
	"strider/internal/heap"
	"strider/internal/interp"
	"strider/internal/ir"
	"strider/internal/memsim"
	"strider/internal/static"
	"strider/internal/telemetry"
	"strider/internal/value"
	"strider/internal/vm"
)

// Configuration is one cell of the verification matrix: a machine and a
// prefetching mode (the paper's evaluation axes plus the interprocedural
// inspection extension).
type Configuration struct {
	Machine *arch.Machine
	Mode    jit.Mode
	// Interprocedural toggles the inspection extension that steps into
	// direct calls (Sec. 3.2 leaves it as a trade-off). Inspection must
	// be side-effect free either way.
	Interprocedural bool
	// HW selects the hardware-prefetcher model memsim simulates ("" = the
	// default stream detector). Hardware prefetching only moves lines
	// between cache levels, so every model must reproduce the same
	// fingerprint — the axis is prefetch-blind by construction and this
	// matrix proves it stays that way.
	HW string
	// Predict selects the prediction source feeding the prefetch decisions
	// (dynamic inspection, the static analyzer, or a PGO replay). A
	// mispredicted static prefetch touches the wrong line early — it must
	// never change what the program computes, and this axis proves it.
	Predict jit.PredictSource
	// Exec selects the execution backend for JIT-compiled methods (the
	// interpreter's step loop or the threaded-code tier). The compiled
	// tier claims exact semantic equivalence — same fingerprint, same
	// traps, same load stream — and this axis proves it against the
	// prefetch-blind reference.
	Exec vm.Exec
}

// Label renders the configuration compactly, e.g. "Pentium4/inter+intra+ip"
// or "AthlonMP/inter+hw:ipstride" (the default hardware model carries no
// suffix, so pre-existing labels are unchanged).
func (c Configuration) Label() string {
	l := c.Machine.Name + "/" + c.Mode.String()
	if c.Interprocedural {
		l += "+ip"
	}
	if c.HW != "" && c.HW != memsim.DefaultHWModel {
		l += "+hw:" + c.HW
	}
	if c.Predict != jit.PredictDynamic {
		l += "+p:" + c.Predict.String()
	}
	if c.Exec != vm.ExecInterp {
		l += "+x:" + c.Exec.String()
	}
	return l
}

// Configurations returns the software-prefetch verification matrix for the
// given machines: no-prefetch, inter, inter+intra, and inter+intra with
// interprocedural inspection — four configurations per machine, all on the
// default hardware model.
func Configurations(machines []*arch.Machine) []Configuration {
	return ConfigurationsHW(machines, []string{memsim.DefaultHWModel})
}

// ConfigurationsHW returns the full software×hardware cross-product: the
// four software configurations of Configurations under each named
// hardware-prefetcher model, per machine.
func ConfigurationsHW(machines []*arch.Machine, hwModels []string) []Configuration {
	var cs []Configuration
	for _, m := range machines {
		for _, hw := range hwModels {
			cs = append(cs,
				Configuration{Machine: m, Mode: jit.Baseline, HW: hw},
				Configuration{Machine: m, Mode: jit.Inter, HW: hw},
				Configuration{Machine: m, Mode: jit.InterIntra, HW: hw},
				Configuration{Machine: m, Mode: jit.InterIntra, Interprocedural: true, HW: hw},
			)
		}
	}
	return cs
}

// PredictConfigurations returns the prediction-source verification matrix:
// every prefetch-emitting software configuration under the static analyzer
// and under a PGO replay, per machine, on the default hardware model.
// (Baseline emits no prefetches, so the axis has nothing to move there.)
func PredictConfigurations(machines []*arch.Machine) []Configuration {
	var cs []Configuration
	for _, m := range machines {
		for _, p := range []jit.PredictSource{jit.PredictStatic, jit.PredictPGO} {
			cs = append(cs,
				Configuration{Machine: m, Mode: jit.Inter, Predict: p},
				Configuration{Machine: m, Mode: jit.InterIntra, Predict: p},
				Configuration{Machine: m, Mode: jit.InterIntra, Interprocedural: true, Predict: p},
			)
		}
	}
	return cs
}

// ExecConfigurations returns the execution-backend verification matrix:
// the four software configurations of Configurations per machine, all on
// the default hardware model, run on the threaded-code compiled tier.
// (The interpreted backend is what every other cell of the matrix already
// runs; these cells pin the compiled tier to the same fingerprints.)
func ExecConfigurations(machines []*arch.Machine) []Configuration {
	var cs []Configuration
	for _, m := range machines {
		cs = append(cs,
			Configuration{Machine: m, Mode: jit.Baseline, Exec: vm.ExecCompiled},
			Configuration{Machine: m, Mode: jit.Inter, Exec: vm.ExecCompiled},
			Configuration{Machine: m, Mode: jit.InterIntra, Exec: vm.ExecCompiled},
			Configuration{Machine: m, Mode: jit.InterIntra, Interprocedural: true, Exec: vm.ExecCompiled},
		)
	}
	return cs
}

// Cell is the outcome of one configuration's run.
type Cell struct {
	Config      string
	Fingerprint Fingerprint
	// MemViolations are memory-model invariant violations observed during
	// the run (counter conservation, fill-time inclusion, stall bounds).
	MemViolations []string
}

// Report is the outcome of one differential verification.
type Report struct {
	// Reference is the oracle's fingerprint.
	Reference Fingerprint
	// Cells holds one entry per configuration.
	Cells []Cell
	// Mismatches lists every disagreement: fingerprint deviations from
	// the reference, memory-model violations, and inspection leaks. Empty
	// means the program's semantics are provably prefetch-invariant for
	// this matrix.
	Mismatches []string
}

// OK reports whether verification passed.
func (r *Report) OK() bool { return len(r.Mismatches) == 0 }

// Summary renders a short human-readable verdict.
func (r *Report) Summary() string {
	if r.OK() {
		return fmt.Sprintf("verified: %d configurations reproduce the oracle fingerprint\n  oracle: %s",
			len(r.Cells), r.Reference)
	}
	s := fmt.Sprintf("FAILED: %d mismatches across %d configurations", len(r.Mismatches), len(r.Cells))
	for _, m := range r.Mismatches {
		s += "\n  " + m
	}
	return s
}

// Options configures a verification.
type Options struct {
	// HeapBytes sizes every heap (0 = the VM default, 64 MiB). The oracle
	// and every cell must agree, or addresses diverge trivially.
	HeapBytes uint32
	// GC selects the collector mode for oracle and cells.
	GC heap.GCMode
	// Machines defaults to both evaluation machines.
	Machines []*arch.Machine
	// HWModels lists the hardware-prefetcher models to replay every
	// software configuration under; it defaults to every model in the zoo
	// (memsim.HWModels), so a default Verify proves the entire
	// software×hardware matrix prefetch-blind.
	HWModels []string
	// SkipLeakCheck disables the per-machine compile-time inspection leak
	// check (used by callers that run it separately).
	SkipLeakCheck bool
}

// Verify runs build()'s program through the reference interpreter and
// through the full stack under every configuration, and returns the
// differential report. build must return a fresh, structurally identical
// program on each call (each cell needs private statics and heap).
func Verify(build func() *ir.Program, opts Options) (*Report, error) {
	if len(opts.Machines) == 0 {
		opts.Machines = arch.Machines()
	}
	if len(opts.HWModels) == 0 {
		opts.HWModels = memsim.HWModels()
	}
	for _, hw := range opts.HWModels {
		if !memsim.ValidHWModel(hw) {
			return nil, fmt.Errorf("oracle: unknown hardware-prefetcher model %q (valid: %v)",
				hw, memsim.HWModels())
		}
	}
	ref, err := Run(build(), nil, Config{HeapBytes: opts.HeapBytes, GC: opts.GC})
	if err != nil {
		return nil, fmt.Errorf("oracle reference run: %w", err)
	}
	r := &Report{Reference: ref}
	configs := ConfigurationsHW(opts.Machines, opts.HWModels)
	configs = append(configs, PredictConfigurations(opts.Machines)...)
	configs = append(configs, ExecConfigurations(opts.Machines)...)
	for _, c := range configs {
		cell := runCell(build, c, opts.HeapBytes, opts.GC)
		r.Cells = append(r.Cells, cell)
		for _, d := range ref.Diff(cell.Fingerprint) {
			r.Mismatches = append(r.Mismatches, cell.Config+": "+d)
		}
		for _, v := range cell.MemViolations {
			r.Mismatches = append(r.Mismatches, cell.Config+": memsim: "+v)
		}
	}
	if !opts.SkipLeakCheck {
		for _, m := range opts.Machines {
			for _, leak := range CompileLeakCheck(build, m, opts.HeapBytes, opts.GC) {
				r.Mismatches = append(r.Mismatches, m.Name+": "+leak)
			}
		}
	}
	return r, nil
}

// loadTap wraps the cell's memory model and digests the demand-load
// address stream exactly as the oracle does. Prefetches pass through
// untapped: they must be architecturally invisible.
//
// Installing the tap (via SetMem) unpins the engine's devirtualized fast
// lane — the engine must dispatch through the tap so no load escapes the
// digest. To keep the 68-cell matrix exercising the hit-lane probes
// anyway, the tap carries the pinning the engine gave up: after recording,
// it routes the access through LoadHit/StoreHit with the full call as
// fallback, exactly like a specialized engine site. fast is nil when the
// engine itself had none (foreign model, ineligible configuration, or
// STRIDER_NO_FASTLANE), which is how the differ proves cells pass with
// the lane on and off.
type loadTap struct {
	inner interp.MemModel
	fast  *memsim.Memory
	loads loadAccum
}

func (t *loadTap) LoadAt(addr, size uint32, now uint64, pc uint64) uint64 {
	t.loads.record(addr, size)
	if fm := t.fast; fm != nil {
		if stall, hit := fm.LoadHit(addr, now); hit {
			return stall
		}
		return fm.LoadAt(addr, size, now, pc)
	}
	return t.inner.LoadAt(addr, size, now, pc)
}

func (t *loadTap) Store(addr, size uint32, now uint64) uint64 {
	if fm := t.fast; fm != nil {
		if stall, hit := fm.StoreHit(addr, now); hit {
			return stall
		}
		return fm.Store(addr, size, now)
	}
	return t.inner.Store(addr, size, now)
}

func (t *loadTap) Prefetch(addr uint32, guarded bool, now uint64) telemetry.PrefetchOutcome {
	return t.inner.Prefetch(addr, guarded, now)
}

// runCell executes one configuration: a warmup run (during which the JIT
// compiles hot methods with live argument values) followed by a measured
// run, mirroring vm.Measure's methodology, and fingerprints the measured
// run's architectural state.
func runCell(build func() *ir.Program, c Configuration, heapBytes uint32, gc heap.GCMode) Cell {
	prog := build()
	// Configurations share machine pointers; run on a private copy so the
	// hardware-model selection of one cell cannot leak into another.
	m := *c.Machine
	m.HWPrefetcher = c.HW
	jo := jit.DefaultOptions(&m, c.Mode)
	jo.Inspect.Interprocedural = c.Interprocedural
	jo.Predict = c.Predict
	if c.Predict == jit.PredictPGO {
		// A PGO cell replays a profile recorded by a dynamic run of the
		// same configuration — on its own private program and heap, like
		// every other cell.
		jo.Profile = recordProfile(build, c, heapBytes, gc)
	}
	v := vm.New(prog, vm.Config{
		Machine: &m, Mode: c.Mode, HeapBytes: heapBytes, GC: gc, Exec: c.Exec, JIT: &jo,
	})
	v.Mem.EnableSelfCheck()
	// Inherit the engine's fast-lane pinning (nil under the escape hatch or
	// an ineligible configuration) before SetMem re-derives it away.
	tap := &loadTap{inner: v.Engine.Mem, fast: v.Engine.FastMem()}
	v.Engine.SetMem(tap)

	stats, err := v.Run(nil)
	if err == nil {
		// Warmup succeeded: measure the steady (all-compiled) run.
		v.ResetRun()
		tap.loads.reset()
		stats, err = v.Run(nil)
	}
	fp := Fingerprint{
		Result:        stats.Result,
		Checksum:      stats.Checksum,
		LoadDigest:    tap.loads.digest,
		Loads:         tap.loads.count,
		HeapDigest:    RawHeapDigest(v.Heap),
		GraphDigest:   GraphDigest(v.Heap, prog.Universe, stats.Result),
		StaticsDigest: StaticsDigest(prog.Universe),
		GCs:           stats.GCs,
		Trap:          TrapClass(err),
	}
	return Cell{
		Config:        c.Label(),
		Fingerprint:   fp,
		MemViolations: append(v.Mem.Violations(), v.Mem.CheckInvariants()...),
	}
}

// recordProfile runs one dynamic warmup+measure pair of the configuration
// with profile recording on, producing the profile its PGO cell replays.
// A trapping program still records whatever compiled before the trap.
func recordProfile(build func() *ir.Program, c Configuration, heapBytes uint32, gc heap.GCMode) *static.Profile {
	prog := build()
	m := *c.Machine
	m.HWPrefetcher = c.HW
	jo := jit.DefaultOptions(&m, c.Mode)
	jo.Inspect.Interprocedural = c.Interprocedural
	jo.RecordProfile = static.NewProfile(c.Label())
	v := vm.New(prog, vm.Config{
		Machine: &m, Mode: c.Mode, HeapBytes: heapBytes, GC: gc, JIT: &jo,
	})
	if _, err := v.Run(nil); err == nil {
		v.ResetRun()
		_, _ = v.Run(nil)
	}
	return jo.RecordProfile
}

// TrapClass maps an engine runtime error onto the oracle's trap
// classes (TrapNone for nil); unrecognized errors map to their own text.
func TrapClass(err error) string {
	switch {
	case err == nil:
		return TrapNone
	case errors.Is(err, interp.ErrNullDeref):
		return TrapNullDeref
	case errors.Is(err, interp.ErrBounds):
		return TrapBounds
	case errors.Is(err, interp.ErrNegativeSize):
		return TrapNegativeSize
	case errors.Is(err, ir.ErrDivZero):
		return TrapDivZero
	case errors.Is(err, interp.ErrBadValue), errors.Is(err, ir.ErrBadOperand):
		return TrapBadOperand
	case errors.Is(err, interp.ErrStackOverflow):
		return TrapStackOverflow
	case errors.Is(err, interp.ErrNoMethod):
		return TrapNoMethod
	case errors.Is(err, heap.ErrOutOfMemory):
		return TrapOutOfMemory
	case errors.Is(err, interp.ErrBudget):
		return TrapBudget
	}
	return err.Error()
}

// CompileLeakCheck verifies the "no side effects" contract of object
// inspection (Sec. 2) directly: it populates a heap by running the
// program once without prefetching, then JIT-compiles every method —
// inter+intra mode, interprocedural inspection on, against the live heap
// — and reports any mutation of the heap bytes or statics. Inspection's
// store hash table and private heap must swallow every write.
func CompileLeakCheck(build func() *ir.Program, m *arch.Machine, heapBytes uint32, gc heap.GCMode) []string {
	prog := build()
	v := vm.New(prog, vm.Config{Machine: m, Mode: jit.Baseline, HeapBytes: heapBytes, GC: gc})
	if _, err := v.Run(nil); err != nil {
		// A trapping program still leaves a populated heap to inspect.
		_ = err
	}
	before := RawHeapDigest(v.Heap)
	beforeStatics := StaticsDigest(prog.Universe)

	jo := jit.DefaultOptions(m, jit.InterIntra)
	jo.Inspect.Interprocedural = true
	var leaks []string
	for _, mth := range prog.Methods() {
		args := make([]value.Value, len(mth.Params))
		for i, k := range mth.Params {
			if k == value.KindRef {
				args[i] = value.Null
			} else {
				args[i] = value.Value{K: k}
			}
		}
		jit.Compile(prog, v.Heap, mth, args, jo)
		if got := RawHeapDigest(v.Heap); got != before {
			leaks = append(leaks, fmt.Sprintf(
				"inspection leak: compiling %s changed heap bytes (%016x -> %016x)",
				mth.QName(), before, got))
			before = got
		}
		if got := StaticsDigest(prog.Universe); got != beforeStatics {
			leaks = append(leaks, fmt.Sprintf(
				"inspection leak: compiling %s changed statics (%016x -> %016x)",
				mth.QName(), beforeStatics, got))
			beforeStatics = got
		}
	}
	return leaks
}
