package oracle

import (
	"strider/internal/classfile"
	"strider/internal/heap"
	"strider/internal/value"
)

// FNV-1a (64-bit) parameters for all oracle digests.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fold64 folds an 8-byte value into an FNV-1a accumulator.
func fold64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (x >> (8 * i)) & 0xFF
		h *= fnvPrime
	}
	return h
}

// foldLoad folds one (address, size) demand-load event.
func foldLoad(h uint64, addr, size uint32) uint64 {
	return fold64(fold64(h, uint64(addr)), uint64(size))
}

// loadAccum accumulates the ordered demand-load address stream. The
// reference interpreter and the differ's memory tap both use it, so their
// digests are comparable by construction.
type loadAccum struct {
	digest uint64
	count  uint64
}

func (l *loadAccum) record(addr, size uint32) {
	if l.count == 0 {
		l.digest = fnvOffset
	}
	l.digest = foldLoad(l.digest, addr, size)
	l.count++
}

func (l *loadAccum) reset() { *l = loadAccum{} }

// RawHeapDigest digests the raw bytes of the allocated heap region
// [base, top). Two runs with identical allocation, GC, and store activity
// produce identical digests; any stray write — a prefetch that mutated
// memory, an inspection store that escaped its hash table — changes it.
func RawHeapDigest(h *heap.Heap) uint64 {
	d := fnvOffset
	top := h.Top()
	d = fold64(d, uint64(top))
	for addr := uint32(classfile.HeaderBytes); addr < top; addr += 4 {
		d = fold64(d, uint64(h.Load4(addr)))
	}
	return d
}

// StaticsDigest folds every static field's kind and payload in
// declaration order.
func StaticsDigest(u *classfile.Universe) uint64 {
	d := fnvOffset
	u.EachStatic(func(f *classfile.Field, v value.Value) {
		d = fold64(d, uint64(f.Kind))
		d = fold64(d, v.B)
	})
	return d
}

// GraphDigest digests the live object graph reachable from the statics
// (in declaration order) and any extra roots (typically the run result).
// References are canonicalised to first-visit ordinals, so the digest is
// independent of heap addresses: it is stable across collector modes and
// placement changes, and catches semantic divergence that raw byte
// comparison would conflate with layout differences.
func GraphDigest(h *heap.Heap, u *classfile.Universe, extra ...value.Value) uint64 {
	d := fnvOffset
	ids := make(map[uint32]uint64)
	var queue []uint32
	canon := func(ref uint32) uint64 {
		if ref == 0 {
			return 0
		}
		id, ok := ids[ref]
		if !ok {
			id = uint64(len(ids) + 1)
			ids[ref] = id
			queue = append(queue, ref)
		}
		return id
	}
	foldVal := func(k value.Kind, b uint64) {
		d = fold64(d, uint64(k))
		if k == value.KindRef {
			d = fold64(d, canon(uint32(b)))
		} else {
			d = fold64(d, b)
		}
	}
	u.EachStatic(func(f *classfile.Field, v value.Value) { foldVal(f.Kind, v.B) })
	for _, v := range extra {
		foldVal(v.K, v.B)
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		if !h.Valid(obj, classfile.HeaderBytes) {
			d = fold64(d, 0xDEAD)
			continue
		}
		c := h.ClassOf(obj)
		if c == nil {
			d = fold64(d, 0xDEAD)
			continue
		}
		d = foldString(d, c.Name)
		if c.IsArray {
			n := h.ArrayLen(obj)
			d = fold64(d, uint64(n))
			for i := uint32(0); i < n; i++ {
				ea := h.ElemAddr(obj, i)
				switch {
				case c.Elem == value.KindRef:
					d = fold64(d, canon(h.Load4(ea)))
				case c.ElemSize == 8:
					d = fold64(d, h.Load8(ea))
				default:
					d = fold64(d, uint64(h.Load4(ea)))
				}
			}
			continue
		}
		for _, f := range c.Fields {
			switch {
			case f.Kind == value.KindRef:
				d = fold64(d, canon(h.Load4(obj+f.Offset)))
			case f.Kind.Size() == 8:
				d = fold64(d, h.Load8(obj+f.Offset))
			default:
				d = fold64(d, uint64(h.Load4(obj+f.Offset)))
			}
		}
	}
	return d
}

func foldString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}
