package oracle

import (
	"fmt"
	"strings"
	"testing"

	"strider/internal/arch"
	"strider/internal/classfile"
	"strider/internal/heap"
	"strider/internal/interp"
	"strider/internal/ir"
	"strider/internal/memsim"
	"strider/internal/value"
	"strider/internal/workloads"
)

// TestVerifyAllWorkloads is the headline differential suite: every
// registered workload, four software-prefetching configurations, every
// hardware-prefetcher model, plus the prediction-source matrix (three
// prefetch-emitting configurations under static and PGO prediction), both
// machines, leak checks and memory-model invariants included. Any semantic
// effect of prefetching — software or hardware, dynamically inspected or
// statically mispredicted — anywhere in the stack fails here.
func TestVerifyAllWorkloads(t *testing.T) {
	wantCells := 4*len(memsim.HWModels())*2 + 3*2*2 + 4*2 // hw matrix + predict matrix + exec matrix
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			build := func() *ir.Program { return w.Build(workloads.SizeSmall) }
			rep, err := Verify(build, Options{HeapBytes: w.HeapBytes})
			if err != nil {
				t.Fatalf("verify: %v", err)
			}
			if !rep.OK() {
				t.Fatalf("%s", rep.Summary())
			}
			if len(rep.Cells) != wantCells {
				t.Fatalf("got %d cells, want %d (4 sw configs x %d hw models x 2 machines + 12 predict + 8 exec cells)",
					len(rep.Cells), wantCells, len(memsim.HWModels()))
			}
			if rep.Reference.Loads == 0 {
				t.Fatalf("workload performed no demand loads; fingerprint is vacuous")
			}
		})
	}
}

// trapProgram builds a tiny program that traps in the given way. The
// differ must agree with the oracle on the trap class for every
// configuration: prefetching must not change *how* a program fails.
func trapProgram(kind string) *ir.Program {
	u := classfile.NewUniverse()
	box := u.MustDefineClass("Box", nil, classfile.FieldSpec{Name: "v", Kind: value.KindInt})
	fV := box.FieldByName("v")
	p := ir.NewProgram(u)
	b := ir.NewBuilder(p, nil, "main", value.KindInt)
	switch kind {
	case TrapNullDeref:
		n := b.ConstNull()
		b.Return(b.GetField(n, fV))
	case TrapBounds:
		arr := b.NewArray(value.KindInt, b.ConstInt(4))
		b.Return(b.ArrayLoad(value.KindInt, arr, b.ConstInt(9)))
	case TrapNegativeSize:
		arr := b.NewArray(value.KindInt, b.ConstInt(-3))
		b.Return(b.ArrayLen(arr))
	case TrapDivZero:
		b.Return(b.Arith(ir.OpDiv, value.KindInt, b.ConstInt(1), b.ConstInt(0)))
	case TrapStackOverflow:
		b.Return(b.Call(b.Self()))
	case TrapOutOfMemory:
		// Heap in the differ options is 64 KiB; this wants 4 MiB.
		arr := b.NewArray(value.KindInt, b.ConstInt(1<<20))
		b.Return(b.ArrayLen(arr))
	default:
		panic("unknown trap kind " + kind)
	}
	p.Entry = b.Finish()
	return p
}

func TestVerifyTrappingPrograms(t *testing.T) {
	for _, class := range []string{
		TrapNullDeref, TrapBounds, TrapNegativeSize,
		TrapDivZero, TrapStackOverflow, TrapOutOfMemory,
	} {
		class := class
		t.Run(class, func(t *testing.T) {
			opts := Options{Machines: []*arch.Machine{arch.Pentium4()}}
			if class == TrapOutOfMemory {
				opts.HeapBytes = 1 << 16
			}
			rep, err := Verify(func() *ir.Program { return trapProgram(class) }, opts)
			if err != nil {
				t.Fatalf("verify: %v", err)
			}
			if rep.Reference.Trap != class {
				t.Fatalf("oracle trapped %q, want %q", rep.Reference.Trap, class)
			}
			if !rep.OK() {
				t.Fatalf("%s", rep.Summary())
			}
		})
	}
}

func TestTrapClassMapping(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, TrapNone},
		{fmt.Errorf("x: %w", interp.ErrNullDeref), TrapNullDeref},
		{fmt.Errorf("x: %w", interp.ErrBounds), TrapBounds},
		{fmt.Errorf("x: %w", interp.ErrNegativeSize), TrapNegativeSize},
		{fmt.Errorf("x: %w", ir.ErrDivZero), TrapDivZero},
		{fmt.Errorf("x: %w", interp.ErrBadValue), TrapBadOperand},
		{fmt.Errorf("x: %w", ir.ErrBadOperand), TrapBadOperand},
		{fmt.Errorf("x: %w", interp.ErrStackOverflow), TrapStackOverflow},
		{fmt.Errorf("x: %w", interp.ErrNoMethod), TrapNoMethod},
		{fmt.Errorf("x: %w", heap.ErrOutOfMemory), TrapOutOfMemory},
		{fmt.Errorf("x: %w", interp.ErrBudget), TrapBudget},
		{fmt.Errorf("something else"), "something else"},
	}
	for _, tc := range cases {
		if got := TrapClass(tc.err); got != tc.want {
			t.Errorf("TrapClass(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

func TestConfigurations(t *testing.T) {
	cs := Configurations(arch.Machines())
	if len(cs) != 8 {
		t.Fatalf("got %d configurations, want 8", len(cs))
	}
	labels := make(map[string]bool)
	var ip int
	for _, c := range cs {
		labels[c.Label()] = true
		if c.Interprocedural {
			ip++
		}
		// The default matrix runs the default hardware model, so its labels
		// carry no hw suffix — they must match the pre-zoo label format.
		if strings.Contains(c.Label(), "+hw:") {
			t.Fatalf("default configuration label %q carries a hw suffix", c.Label())
		}
	}
	if len(labels) != 8 {
		t.Fatalf("labels not unique: %v", labels)
	}
	if ip != 2 {
		t.Fatalf("want one interprocedural configuration per machine, got %d", ip)
	}
}

func TestConfigurationsHW(t *testing.T) {
	models := memsim.HWModels()
	cs := ConfigurationsHW(arch.Machines(), models)
	want := 4 * len(models) * 2
	if len(cs) != want {
		t.Fatalf("got %d configurations, want %d", len(cs), want)
	}
	labels := make(map[string]bool)
	for _, c := range cs {
		labels[c.Label()] = true
	}
	if len(labels) != want {
		t.Fatalf("labels not unique: %d labels for %d configurations", len(labels), want)
	}
}

func TestVerifyRejectsUnknownHWModel(t *testing.T) {
	build := func() *ir.Program { return trapProgram(TrapDivZero) }
	_, err := Verify(build, Options{HWModels: []string{"stream", "sdram"}})
	if err == nil || !strings.Contains(err.Error(), "sdram") {
		t.Fatalf("want unknown-model error naming the model, got %v", err)
	}
}

func TestReportSummary(t *testing.T) {
	ok := &Report{Cells: make([]Cell, 8)}
	if !ok.OK() || !strings.Contains(ok.Summary(), "verified") {
		t.Fatalf("Summary() = %q", ok.Summary())
	}
	bad := &Report{Mismatches: []string{"P4/inter: heap bytes: 1 vs 2"}}
	if bad.OK() {
		t.Fatalf("report with mismatches reported OK")
	}
	if s := bad.Summary(); !strings.Contains(s, "FAILED") || !strings.Contains(s, "heap bytes") {
		t.Fatalf("Summary() = %q", s)
	}
}

// TestCompileLeakCheck runs the inspection-leak check directly on the
// paper's motivating workload for both machines.
func TestCompileLeakCheck(t *testing.T) {
	w, err := workloads.ByName("jess")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range arch.Machines() {
		build := func() *ir.Program { return w.Build(workloads.SizeSmall) }
		if leaks := CompileLeakCheck(build, m, w.HeapBytes, heap.GCSlidingCompact); len(leaks) > 0 {
			t.Fatalf("%s: %v", m.Name, leaks)
		}
	}
}

// TestVerifyVirtualDispatch covers the oracle's virtual-call resolution
// against the engine's: a small class hierarchy where the hot loop's
// behaviour depends on each receiver's dynamic class.
func TestVerifyVirtualDispatch(t *testing.T) {
	build := func() *ir.Program {
		u := classfile.NewUniverse()
		base := u.MustDefineClass("Base", nil, classfile.FieldSpec{Name: "k", Kind: value.KindInt})
		derived := u.MustDefineClass("Derived", base)
		fK := base.FieldByName("k")
		p := ir.NewProgram(u)

		bb := ir.NewBuilder(p, base, "tag", value.KindInt, value.KindRef)
		bb.Return(bb.GetField(bb.Param(0), fK))
		bb.Finish()

		db := ir.NewBuilder(p, derived, "tag", value.KindInt, value.KindRef)
		v := db.GetField(db.Param(0), fK)
		db.Return(db.Arith(ir.OpMul, value.KindInt, v, db.ConstInt(3)))
		db.Finish()

		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		n := b.ConstInt(64)
		arr := b.NewArray(value.KindRef, n)
		i := b.ConstInt(0)
		two := b.ConstInt(2)
		cond, body, isOdd, store := b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel()
		b.Goto(cond)
		b.Bind(body)
		rem := b.Arith(ir.OpRem, value.KindInt, i, two)
		b.BrIntZero(ir.CondNE, rem, isOdd)
		o1 := b.New(base)
		b.PutField(o1, fK, i)
		b.ArrayStore(value.KindRef, arr, i, o1)
		b.Goto(store)
		b.Bind(isOdd)
		o2 := b.New(derived)
		b.PutField(o2, fK, i)
		b.ArrayStore(value.KindRef, arr, i, o2)
		b.Bind(store)
		b.IncInt(i, 1)
		b.Bind(cond)
		b.Br(value.KindInt, ir.CondLT, i, n, body)

		sum := b.ConstInt(0)
		b.SetInt(i, 0)
		c2, b2 := b.NewLabel(), b.NewLabel()
		b.Goto(c2)
		b.Bind(b2)
		o := b.ArrayLoad(value.KindRef, arr, i)
		tg := b.CallVirt("tag", true, o)
		b.ArithTo(sum, ir.OpAdd, value.KindInt, sum, tg)
		b.IncInt(i, 1)
		b.Bind(c2)
		b.Br(value.KindInt, ir.CondLT, i, n, b2)
		b.Sink(sum)
		b.Return(sum)
		p.Entry = b.Finish()
		return p
	}
	rep, err := Verify(build, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("%s", rep.Summary())
	}
	// even i: k=i, odd i: 3i -> sum = sum(even i) + 3*sum(odd i)
	want := int32(0)
	for i := int32(0); i < 64; i++ {
		if i%2 == 0 {
			want += i
		} else {
			want += 3 * i
		}
	}
	if !rep.Reference.Result.Equal(value.Int(want)) {
		t.Fatalf("result %v, want %d", rep.Reference.Result, want)
	}
}

// TestVerifyMixedKinds exercises long/float/double arithmetic, wide
// array elements, conversions and negation through the whole matrix.
func TestVerifyMixedKinds(t *testing.T) {
	build := func() *ir.Program {
		u := classfile.NewUniverse()
		p := ir.NewProgram(u)
		b := ir.NewBuilder(p, nil, "main", value.KindLong)
		n := b.ConstInt(128)
		da := b.NewArray(value.KindDouble, n)
		la := b.NewArray(value.KindLong, n)
		i := b.ConstInt(0)
		cond, body := b.NewLabel(), b.NewLabel()
		b.Goto(cond)
		b.Bind(body)
		d := b.Conv(value.KindDouble, i)
		d2 := b.Arith(ir.OpMul, value.KindDouble, d, b.ConstDouble(1.5))
		b.ArrayStore(value.KindDouble, da, i, d2)
		l := b.Conv(value.KindLong, i)
		l2 := b.Arith(ir.OpShl, value.KindLong, l, b.ConstLong(3))
		b.ArrayStore(value.KindLong, la, i, l2)
		b.IncInt(i, 1)
		b.Bind(cond)
		b.Br(value.KindInt, ir.CondLT, i, n, body)

		acc := b.ConstLong(0)
		facc := b.ConstDouble(0)
		b.SetInt(i, 0)
		c2, b2 := b.NewLabel(), b.NewLabel()
		b.Goto(c2)
		b.Bind(b2)
		dv := b.ArrayLoad(value.KindDouble, da, i)
		b.ArithTo(facc, ir.OpAdd, value.KindDouble, facc, dv)
		lv := b.ArrayLoad(value.KindLong, la, i)
		nl := b.Neg(value.KindLong, lv)
		b.ArithTo(acc, ir.OpSub, value.KindLong, acc, nl)
		b.IncInt(i, 1)
		b.Bind(c2)
		b.Br(value.KindInt, ir.CondLT, i, n, b2)
		b.Sink(facc)
		fl := b.Conv(value.KindLong, facc)
		b.ArithTo(acc, ir.OpAdd, value.KindLong, acc, fl)
		b.Sink(acc)
		b.Return(acc)
		p.Entry = b.Finish()
		return p
	}
	rep, err := Verify(build, Options{Machines: []*arch.Machine{arch.AthlonMP()}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("%s", rep.Summary())
	}
}
