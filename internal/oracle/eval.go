package oracle

// Independent re-implementation of the IR's Java-style evaluation
// semantics. This deliberately does NOT call ir.EvalBinary and friends:
// the whole point of the oracle is that the engine's semantics are
// checked against a second, separately written implementation. The
// behaviours that matter and must agree:
//
//   - operands are reinterpreted through the instruction's static Kind
//     (the IR is dynamically checked only at heap/branch boundaries);
//   - int/long division and remainder by zero trap;
//   - shift counts are masked to 5/6 bits (Java semantics);
//   - float/double support only add/sub/mul/div, and division by zero
//     produces IEEE infinities/NaNs, not traps;
//   - conversions dispatch on the operand's dynamic kind and route
//     through float64, with double→int as int32(int64(d));
//   - NaN comparisons: only != is true;
//   - reference comparisons are unsigned 32-bit address comparisons.

import (
	"math"

	"strider/internal/ir"
	"strider/internal/value"
)

// i32 reinterprets a payload as a Java int.
func i32(v value.Value) int32 { return int32(uint32(v.B)) }

// i64 reinterprets a payload as a Java long.
func i64(v value.Value) int64 { return int64(v.B) }

// f32 reinterprets a payload as a Java float.
func f32(v value.Value) float32 { return math.Float32frombits(uint32(v.B)) }

// f64 reinterprets a payload as a Java double.
func f64(v value.Value) float64 { return math.Float64frombits(v.B) }

func badOp(what string) *trap { return &trap{TrapBadOperand, what} }

// arith2 evaluates a two-operand arithmetic/logic instruction.
func arith2(op ir.Op, k value.Kind, a, b value.Value) (value.Value, *trap) {
	switch k {
	case value.KindInt:
		x, y := i32(a), i32(b)
		var r int32
		switch op {
		case ir.OpAdd:
			r = x + y
		case ir.OpSub:
			r = x - y
		case ir.OpMul:
			r = x * y
		case ir.OpDiv:
			if y == 0 {
				return value.Value{}, &trap{TrapDivZero, "int div"}
			}
			r = x / y
		case ir.OpRem:
			if y == 0 {
				return value.Value{}, &trap{TrapDivZero, "int rem"}
			}
			r = x % y
		case ir.OpAnd:
			r = x & y
		case ir.OpOr:
			r = x | y
		case ir.OpXor:
			r = x ^ y
		case ir.OpShl:
			r = x << (uint32(y) & 31)
		case ir.OpShr:
			r = x >> (uint32(y) & 31)
		case ir.OpUshr:
			r = int32(uint32(x) >> (uint32(y) & 31))
		default:
			return value.Value{}, badOp("int " + op.String())
		}
		return value.Int(r), nil

	case value.KindLong:
		x, y := i64(a), i64(b)
		var r int64
		switch op {
		case ir.OpAdd:
			r = x + y
		case ir.OpSub:
			r = x - y
		case ir.OpMul:
			r = x * y
		case ir.OpDiv:
			if y == 0 {
				return value.Value{}, &trap{TrapDivZero, "long div"}
			}
			r = x / y
		case ir.OpRem:
			if y == 0 {
				return value.Value{}, &trap{TrapDivZero, "long rem"}
			}
			r = x % y
		case ir.OpAnd:
			r = x & y
		case ir.OpOr:
			r = x | y
		case ir.OpXor:
			r = x ^ y
		case ir.OpShl:
			r = x << (uint64(y) & 63)
		case ir.OpShr:
			r = x >> (uint64(y) & 63)
		case ir.OpUshr:
			r = int64(uint64(x) >> (uint64(y) & 63))
		default:
			return value.Value{}, badOp("long " + op.String())
		}
		return value.Long(r), nil

	case value.KindFloat:
		x, y := f32(a), f32(b)
		var r float32
		switch op {
		case ir.OpAdd:
			r = x + y
		case ir.OpSub:
			r = x - y
		case ir.OpMul:
			r = x * y
		case ir.OpDiv:
			r = x / y
		default:
			return value.Value{}, badOp("float " + op.String())
		}
		return value.Float(r), nil

	case value.KindDouble:
		x, y := f64(a), f64(b)
		var r float64
		switch op {
		case ir.OpAdd:
			r = x + y
		case ir.OpSub:
			r = x - y
		case ir.OpMul:
			r = x * y
		case ir.OpDiv:
			r = x / y
		default:
			return value.Value{}, badOp("double " + op.String())
		}
		return value.Double(r), nil
	}
	return value.Value{}, badOp("arith kind " + k.String())
}

// negate evaluates OpNeg.
func negate(k value.Kind, a value.Value) (value.Value, *trap) {
	switch k {
	case value.KindInt:
		return value.Int(-i32(a)), nil
	case value.KindLong:
		return value.Long(-i64(a)), nil
	case value.KindFloat:
		return value.Float(-f32(a)), nil
	case value.KindDouble:
		return value.Double(-f64(a)), nil
	}
	return value.Value{}, badOp("neg kind " + k.String())
}

// convert evaluates OpConv: identity when the dynamic kind already
// matches, otherwise a numeric conversion routed through float64.
func convert(k value.Kind, a value.Value) (value.Value, *trap) {
	if a.K == k {
		return a, nil
	}
	var d float64
	switch a.K {
	case value.KindInt:
		d = float64(i32(a))
	case value.KindLong:
		d = float64(i64(a))
	case value.KindFloat:
		d = float64(f32(a))
	case value.KindDouble:
		d = f64(a)
	default:
		return value.Value{}, badOp("conv from " + a.K.String())
	}
	switch k {
	case value.KindInt:
		return value.Int(int32(int64(d))), nil
	case value.KindLong:
		return value.Long(int64(d)), nil
	case value.KindFloat:
		return value.Float(float32(d)), nil
	case value.KindDouble:
		return value.Double(d), nil
	}
	return value.Value{}, badOp("conv to " + k.String())
}

// compare evaluates an OpBr condition.
func compare(cond ir.Cond, k value.Kind, a, b value.Value) (bool, *trap) {
	var less, equal bool
	switch k {
	case value.KindInt:
		less, equal = i32(a) < i32(b), i32(a) == i32(b)
	case value.KindLong:
		less, equal = i64(a) < i64(b), i64(a) == i64(b)
	case value.KindFloat:
		x, y := float64(f32(a)), float64(f32(b))
		if math.IsNaN(x) || math.IsNaN(y) {
			return cond == ir.CondNE, nil
		}
		less, equal = x < y, x == y
	case value.KindDouble:
		x, y := f64(a), f64(b)
		if math.IsNaN(x) || math.IsNaN(y) {
			return cond == ir.CondNE, nil
		}
		less, equal = x < y, x == y
	case value.KindRef:
		less, equal = uint32(a.B) < uint32(b.B), uint32(a.B) == uint32(b.B)
	default:
		return false, badOp("branch kind " + k.String())
	}
	switch cond {
	case ir.CondEQ:
		return equal, nil
	case ir.CondNE:
		return !equal, nil
	case ir.CondLT:
		return less, nil
	case ir.CondLE:
		return less || equal, nil
	case ir.CondGT:
		return !less && !equal, nil
	case ir.CondGE:
		return !less, nil
	}
	return false, badOp("cond " + cond.String())
}
