// Package oracle is the differential-testing reference for the simulated
// VM: a deliberately naive, prefetch-blind interpreter over the same IR,
// producing an architectural fingerprint (result, sink checksum, ordered
// demand-load address stream, final heap and statics digests) that the
// full JIT+memsim stack must reproduce under every prefetching
// configuration.
//
// The paper's mechanisms are only sound if they are free of side effects:
// object inspection "partially interprets the method ... without
// generating any side effects" (Sec. 2) and the guarded spec_load must
// never alter architectural state (Sec. 3.3). This package makes that
// invariant executable.
//
// Independence contract: this file and digest.go import only the passive
// substrate (ir for the instruction encoding, classfile for layout, heap
// for the memory image, value for tagged values). They share no execution
// code with internal/interp — every instruction's semantics is
// re-implemented here, so a bug in the engine's evaluation cannot hide by
// being mirrored in the oracle. The differ (differ.go) is the only file
// that touches the real stack.
package oracle

import (
	"fmt"

	"strider/internal/classfile"
	"strider/internal/heap"
	"strider/internal/ir"
	"strider/internal/value"
)

// Trap classes. The differ maps engine runtime errors onto the same
// classes, so a trapping program still has a comparable fingerprint.
const (
	TrapNone          = ""
	TrapNullDeref     = "null-deref"
	TrapBounds        = "out-of-bounds"
	TrapNegativeSize  = "negative-size"
	TrapDivZero       = "div-by-zero"
	TrapBadOperand    = "bad-operand"
	TrapStackOverflow = "stack-overflow"
	TrapNoMethod      = "no-method"
	TrapOutOfMemory   = "out-of-memory"
	// TrapBudget is the step-budget backstop. Budgets count retired
	// instructions, and prefetch-augmented code retires extra
	// instructions, so two sides that both hit their budget are NOT at
	// the same architectural point; the differ treats budget traps as
	// incomparable.
	TrapBudget = "budget"
)

// trap is an architectural trap raised by the reference interpreter.
type trap struct {
	class  string
	detail string
}

func (t *trap) Error() string {
	if t.detail == "" {
		return t.class
	}
	return t.class + ": " + t.detail
}

// Fingerprint is the architectural outcome of one program execution:
// everything the paper requires prefetching to preserve, and nothing that
// is allowed to change (cycles, cache contents, stall times).
type Fingerprint struct {
	// Result is the entry method's return value.
	Result value.Value
	// Checksum is the OpSink FNV accumulator (the program's output).
	Checksum uint64
	// LoadDigest folds the ordered (address, size) stream of demand heap
	// loads — getfield, arrayload, arraylen. Prefetches and speculative
	// loads are excluded: they must be invisible here.
	LoadDigest uint64
	// Loads is the demand-load count.
	Loads uint64
	// HeapDigest is the raw byte digest of the allocated heap region.
	HeapDigest uint64
	// GraphDigest is the address-independent digest of the live object
	// graph reachable from statics and the result.
	GraphDigest uint64
	// StaticsDigest folds every static field's kind and payload.
	StaticsDigest uint64
	// GCs is the number of collections the run triggered. Prefetching
	// must not change allocation behaviour, so it is part of the
	// fingerprint.
	GCs uint64
	// Trap is TrapNone for a normal completion, else the trap class.
	Trap string
}

// Equal reports whether two fingerprints describe the same architectural
// outcome. Budget traps are incomparable (see TrapBudget) and match only
// by class.
func (f Fingerprint) Equal(o Fingerprint) bool { return len(f.Diff(o)) == 0 }

// Diff describes every component where o deviates from f (empty when
// architecturally identical).
func (f Fingerprint) Diff(o Fingerprint) []string {
	var d []string
	if f.Trap != o.Trap {
		d = append(d, fmt.Sprintf("trap: %q vs %q", f.Trap, o.Trap))
		return d
	}
	if f.Trap == TrapBudget {
		return d // same class, rest incomparable
	}
	if !f.Result.Equal(o.Result) {
		d = append(d, fmt.Sprintf("result: %v vs %v", f.Result, o.Result))
	}
	if f.Checksum != o.Checksum {
		d = append(d, fmt.Sprintf("checksum: %016x vs %016x", f.Checksum, o.Checksum))
	}
	if f.Loads != o.Loads || f.LoadDigest != o.LoadDigest {
		d = append(d, fmt.Sprintf("demand loads: %d/%016x vs %d/%016x",
			f.Loads, f.LoadDigest, o.Loads, o.LoadDigest))
	}
	if f.HeapDigest != o.HeapDigest {
		d = append(d, fmt.Sprintf("heap bytes: %016x vs %016x", f.HeapDigest, o.HeapDigest))
	}
	if f.GraphDigest != o.GraphDigest {
		d = append(d, fmt.Sprintf("object graph: %016x vs %016x", f.GraphDigest, o.GraphDigest))
	}
	if f.StaticsDigest != o.StaticsDigest {
		d = append(d, fmt.Sprintf("statics: %016x vs %016x", f.StaticsDigest, o.StaticsDigest))
	}
	if f.GCs != o.GCs {
		d = append(d, fmt.Sprintf("GCs: %d vs %d", f.GCs, o.GCs))
	}
	return d
}

// String renders the fingerprint compactly.
func (f Fingerprint) String() string {
	if f.Trap != TrapNone {
		return fmt.Sprintf("trap(%s)", f.Trap)
	}
	return fmt.Sprintf("result=%v sink=%016x loads=%d/%016x heap=%016x graph=%016x statics=%016x gcs=%d",
		f.Result, f.Checksum, f.Loads, f.LoadDigest, f.HeapDigest, f.GraphDigest, f.StaticsDigest, f.GCs)
}

// Config configures a reference run. The defaults mirror the VM's so that
// allocation and GC behaviour — and hence every heap address — coincide.
type Config struct {
	// HeapBytes sizes the heap (default 64 MiB, the VM default).
	HeapBytes uint32
	// GC selects the collector mode.
	GC heap.GCMode
	// MaxSteps bounds the run (default 4e9, the engine's default budget).
	MaxSteps uint64
}

// maxFrames mirrors the engine's recursion bound so stack-overflow traps
// fire at the same call depth.
const maxFrames = 1024

const defaultMaxSteps = 4_000_000_000

// oframe is one activation of the reference interpreter.
type oframe struct {
	m      *ir.Method
	pc     int
	regs   []value.Value
	retReg ir.Reg
}

// oracleVM is the reference interpreter state.
type oracleVM struct {
	prog     *ir.Program
	h        *heap.Heap
	frames   []*oframe
	steps    uint64
	maxSteps uint64
	loads    loadAccum
	fp       *Fingerprint
}

// Run executes the program's entry method on a fresh heap and fresh
// statics and returns its architectural fingerprint. Runtime traps are
// reported in the fingerprint (Trap field), not as an error; the error
// return covers misuse only (no entry, wrong argument count).
func Run(p *ir.Program, args []value.Value, cfg Config) (Fingerprint, error) {
	if p.Entry == nil {
		return Fingerprint{}, fmt.Errorf("oracle: program has no entry method")
	}
	if len(args) != len(p.Entry.Params) {
		return Fingerprint{}, fmt.Errorf("oracle: entry %s wants %d args, got %d",
			p.Entry.QName(), len(p.Entry.Params), len(args))
	}
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 64 << 20
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = defaultMaxSteps
	}
	p.Universe.ResetStatics()
	h := heap.New(cfg.HeapBytes, p.Universe)
	h.SetGCMode(cfg.GC)

	var fp Fingerprint
	o := &oracleVM{prog: p, h: h, maxSteps: cfg.MaxSteps, fp: &fp}
	res, t := o.exec(p.Entry, args)
	fp.Result = res
	if t != nil {
		fp.Trap = t.class
	}
	fp.LoadDigest, fp.Loads = o.loads.digest, o.loads.count
	fp.HeapDigest = RawHeapDigest(h)
	fp.GraphDigest = GraphDigest(h, p.Universe, res)
	fp.StaticsDigest = StaticsDigest(p.Universe)
	return fp, nil
}

// record folds one demand load into the address-stream digest.
func (o *oracleVM) record(addr, size uint32) { o.loads.record(addr, size) }

// sink folds a value into the output checksum. This replicates the
// engine's accumulator bit-for-bit (including its seeded-on-first-use
// convention) so checksums are directly comparable.
func (o *oracleVM) sink(v value.Value) {
	h := o.fp.Checksum
	if h == 0 {
		h = 1469598103934665603
	}
	for i := 0; i < 8; i++ {
		h ^= (v.B >> (8 * i)) & 0xFF
		h *= 1099511628211
	}
	o.fp.Checksum = h
}

// roots enumerates the reference registers of all live frames.
func (o *oracleVM) roots(visit func(*value.Value)) {
	for _, f := range o.frames {
		for i := range f.regs {
			if f.regs[i].K == value.KindRef {
				visit(&f.regs[i])
			}
		}
	}
}

func (o *oracleVM) collect() {
	o.h.Collect(o.roots)
	o.fp.GCs++
}

// allocObject allocates with one GC retry, like the mutator.
func (o *oracleVM) allocObject(c *classfile.Class) (uint32, *trap) {
	addr, err := o.h.AllocObject(c)
	if err != nil {
		o.collect()
		addr, err = o.h.AllocObject(c)
		if err != nil {
			return 0, &trap{TrapOutOfMemory, err.Error()}
		}
	}
	return addr, nil
}

func (o *oracleVM) allocArray(k value.Kind, n uint32) (uint32, *trap) {
	addr, err := o.h.AllocArray(k, n)
	if err != nil {
		o.collect()
		addr, err = o.h.AllocArray(k, n)
		if err != nil {
			return 0, &trap{TrapOutOfMemory, err.Error()}
		}
	}
	return addr, nil
}

func (o *oracleVM) push(m *ir.Method, args []value.Value, retReg ir.Reg) *trap {
	if len(o.frames) >= maxFrames {
		return &trap{TrapStackOverflow, m.QName()}
	}
	f := &oframe{m: m, regs: make([]value.Value, m.NumRegs), retReg: retReg}
	copy(f.regs, args)
	o.frames = append(o.frames, f)
	return nil
}

// exec runs the entry to completion, one instruction at a time.
func (o *oracleVM) exec(entry *ir.Method, args []value.Value) (value.Value, *trap) {
	o.frames = o.frames[:0]
	if t := o.push(entry, args, ir.NoReg); t != nil {
		return value.Value{}, t
	}
	var result value.Value
	for len(o.frames) > 0 {
		f := o.frames[len(o.frames)-1]
		ret, done, t := o.stepOne(f)
		if t != nil {
			t.detail = fmt.Sprintf("%s@%d: %s", f.m.QName(), f.pc, t.detail)
			return value.Value{}, t
		}
		if done {
			o.frames = o.frames[:len(o.frames)-1]
			if len(o.frames) == 0 {
				result = ret
			} else if f.retReg != ir.NoReg {
				o.frames[len(o.frames)-1].regs[f.retReg] = ret
			}
		}
	}
	return result, nil
}

// stepOne executes exactly one instruction of the top frame. done=true
// pops the frame with the returned value.
func (o *oracleVM) stepOne(f *oframe) (value.Value, bool, *trap) {
	if o.steps >= o.maxSteps {
		return value.Value{}, false, &trap{TrapBudget, ""}
	}
	o.steps++
	in := &f.m.Code[f.pc]
	regs := f.regs
	next := f.pc + 1

	switch in.Op {
	case ir.OpNop:

	case ir.OpConst:
		regs[in.Dst] = o.constant(in)
	case ir.OpMove:
		regs[in.Dst] = regs[in.A]

	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpUshr:
		v, t := arith2(in.Op, in.Kind, regs[in.A], regs[in.B])
		if t != nil {
			return value.Value{}, false, t
		}
		regs[in.Dst] = v
	case ir.OpNeg:
		v, t := negate(in.Kind, regs[in.A])
		if t != nil {
			return value.Value{}, false, t
		}
		regs[in.Dst] = v
	case ir.OpConv:
		v, t := convert(in.Kind, regs[in.A])
		if t != nil {
			return value.Value{}, false, t
		}
		regs[in.Dst] = v

	case ir.OpGoto:
		next = in.Target
	case ir.OpBr:
		taken, t := compare(in.Cond, in.Kind, regs[in.A], regs[in.B])
		if t != nil {
			return value.Value{}, false, t
		}
		if taken {
			next = in.Target
		}
	case ir.OpReturn:
		if in.A == ir.NoReg {
			return value.Value{}, true, nil
		}
		return regs[in.A], true, nil

	case ir.OpGetField:
		obj := regs[in.A]
		if obj.K != value.KindRef {
			return value.Value{}, false, &trap{TrapBadOperand, "getfield base " + obj.String()}
		}
		if obj.B == 0 {
			return value.Value{}, false, &trap{TrapNullDeref, in.Field.QName()}
		}
		addr := uint32(obj.B) + in.Field.Offset
		o.record(addr, in.Field.Kind.Size())
		regs[in.Dst] = o.loadVal(in.Field.Kind, addr)
	case ir.OpPutField:
		obj := regs[in.A]
		if obj.K != value.KindRef {
			return value.Value{}, false, &trap{TrapBadOperand, "putfield base " + obj.String()}
		}
		if obj.B == 0 {
			return value.Value{}, false, &trap{TrapNullDeref, in.Field.QName()}
		}
		o.storeVal(uint32(obj.B)+in.Field.Offset, regs[in.B])
	case ir.OpGetStatic:
		regs[in.Dst] = o.prog.Universe.GetStatic(in.Field)
	case ir.OpPutStatic:
		o.prog.Universe.SetStatic(in.Field, regs[in.A])

	case ir.OpArrayLoad:
		addr, size, t := o.element(regs[in.A], regs[in.B], in.Kind)
		if t != nil {
			return value.Value{}, false, t
		}
		o.record(addr, size)
		regs[in.Dst] = o.loadVal(in.Kind, addr)
	case ir.OpArrayStore:
		addr, _, t := o.element(regs[in.A], regs[in.B], in.Kind)
		if t != nil {
			return value.Value{}, false, t
		}
		o.storeVal(addr, regs[in.C])
	case ir.OpArrayLen:
		arr := regs[in.A]
		if arr.K != value.KindRef {
			return value.Value{}, false, &trap{TrapBadOperand, "arraylen base " + arr.String()}
		}
		if arr.B == 0 {
			return value.Value{}, false, &trap{TrapNullDeref, "arraylen"}
		}
		addr := uint32(arr.B) + classfile.AuxOffset
		o.record(addr, 4)
		regs[in.Dst] = value.Int(int32(o.h.Load4(addr)))

	case ir.OpNew:
		addr, t := o.allocObject(in.Class)
		if t != nil {
			return value.Value{}, false, t
		}
		regs[in.Dst] = value.Ref(addr)
	case ir.OpNewArray:
		n := regs[in.A]
		if n.K != value.KindInt {
			return value.Value{}, false, &trap{TrapBadOperand, "newarray length " + n.String()}
		}
		if int32(uint32(n.B)) < 0 {
			return value.Value{}, false, &trap{TrapNegativeSize, n.String()}
		}
		addr, t := o.allocArray(in.Kind, uint32(n.B))
		if t != nil {
			return value.Value{}, false, t
		}
		regs[in.Dst] = value.Ref(addr)

	case ir.OpCall, ir.OpCallVirt:
		callee := in.Callee
		if in.Op == ir.OpCallVirt {
			recv := regs[in.Args[0]]
			if recv.K != value.KindRef {
				return value.Value{}, false, &trap{TrapBadOperand, "receiver " + recv.String()}
			}
			if recv.B == 0 {
				return value.Value{}, false, &trap{TrapNullDeref, "callvirt " + in.Name}
			}
			c := o.h.ClassOf(uint32(recv.B))
			callee = o.prog.LookupVirtual(c, in.Name)
			if callee == nil {
				return value.Value{}, false, &trap{TrapNoMethod, in.Name + " on " + c.Name}
			}
		}
		cargs := make([]value.Value, len(in.Args))
		for i, r := range in.Args {
			cargs[i] = regs[r]
		}
		f.pc = next
		if t := o.push(callee, cargs, in.Dst); t != nil {
			return value.Value{}, false, t
		}
		return value.Value{}, false, nil

	case ir.OpSink:
		o.sink(regs[in.A])

	case ir.OpPrefetch:
		// Prefetch-blind: a prefetch has no architectural effect.
	case ir.OpSpecLoad:
		// Prefetch-blind: the oracle does not model the speculative load;
		// its destination must only ever feed prefetch addresses, so a
		// zero maybe-pointer (which every prefetch guard rejects) is the
		// reference semantics of "nothing was prefetched".
		regs[in.Dst] = value.SpecRef(0)

	default:
		return value.Value{}, false, &trap{TrapBadOperand, "unimplemented op " + in.Op.String()}
	}

	f.pc = next
	return value.Value{}, false, nil
}

// element resolves one array access, mirroring the mutator's check order:
// operand kinds, null, bounds.
func (o *oracleVM) element(arr, idx value.Value, k value.Kind) (addr, size uint32, t *trap) {
	if arr.K != value.KindRef || idx.K != value.KindInt {
		return 0, 0, &trap{TrapBadOperand, "array access " + arr.String() + "[" + idx.String() + "]"}
	}
	if arr.B == 0 {
		return 0, 0, &trap{TrapNullDeref, "array access"}
	}
	a := uint32(arr.B)
	n := o.h.ArrayLen(a)
	i := int32(uint32(idx.B))
	if i < 0 || uint32(i) >= n {
		return 0, 0, &trap{TrapBounds, fmt.Sprintf("%d of %d", i, n)}
	}
	c := o.h.ClassOf(a)
	return a + classfile.HeaderBytes + uint32(i)*c.ElemSize, k.Size(), nil
}

func (o *oracleVM) loadVal(k value.Kind, addr uint32) value.Value {
	if k == value.KindLong || k == value.KindDouble {
		return value.Value{K: k, B: o.h.Load8(addr)}
	}
	return value.Value{K: k, B: uint64(o.h.Load4(addr))}
}

func (o *oracleVM) storeVal(addr uint32, v value.Value) {
	if v.K == value.KindLong || v.K == value.KindDouble {
		o.h.Store8(addr, v.B)
		return
	}
	o.h.Store4(addr, uint32(v.B))
}

func (o *oracleVM) constant(in *ir.Instr) value.Value {
	switch in.Kind {
	case value.KindInt:
		return value.Int(int32(in.Imm))
	case value.KindLong:
		return value.Long(in.Imm)
	case value.KindFloat:
		return value.Float(float32(in.F))
	case value.KindDouble:
		return value.Double(in.F)
	case value.KindRef:
		return value.Null
	}
	return value.Value{}
}
