package oracle

import (
	"math"
	"strings"
	"testing"

	"strider/internal/classfile"
	"strider/internal/ir"
	"strider/internal/value"
)

// buildListSum constructs a small but representative program: builds a
// linked list, walks it summing a field, stores the head in a static, and
// sinks the sum. extraGarbage allocates dead objects first, which shifts
// every later heap address without changing the live graph.
func buildListSum(n int32, extraGarbage int32) *ir.Program {
	u := classfile.NewUniverse()
	node := u.MustDefineClass("Node", nil,
		classfile.FieldSpec{Name: "val", Kind: value.KindInt},
		classfile.FieldSpec{Name: "next", Kind: value.KindRef},
		classfile.FieldSpec{Name: "head", Kind: value.KindRef, Static: true},
	)
	fVal, fNext, fHead := node.FieldByName("val"), node.FieldByName("next"), node.FieldByName("head")
	p := ir.NewProgram(u)

	b := ir.NewBuilder(p, nil, "main", value.KindInt)
	if extraGarbage > 0 {
		g := b.ConstInt(0)
		lim := b.ConstInt(extraGarbage)
		cond, body := b.NewLabel(), b.NewLabel()
		b.Goto(cond)
		b.Bind(body)
		b.New(node) // dead immediately
		b.IncInt(g, 1)
		b.Bind(cond)
		b.Br(value.KindInt, ir.CondLT, g, lim, body)
	}
	head := b.ConstNull()
	i := b.ConstInt(0)
	lim := b.ConstInt(n)
	cond, body := b.NewLabel(), b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	nd := b.New(node)
	b.PutField(nd, fVal, i)
	b.PutField(nd, fNext, head)
	b.MoveTo(head, nd)
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, lim, body)
	b.PutStatic(fHead, head)

	sum := b.ConstInt(0)
	cur := b.NewReg()
	b.MoveTo(cur, head)
	wcond, wbody := b.NewLabel(), b.NewLabel()
	null := b.ConstNull()
	b.Goto(wcond)
	b.Bind(wbody)
	v := b.GetField(cur, fVal)
	b.ArithTo(sum, ir.OpAdd, value.KindInt, sum, v)
	nx := b.GetField(cur, fNext)
	b.MoveTo(cur, nx)
	b.Bind(wcond)
	b.Br(value.KindRef, ir.CondNE, cur, null, wbody)
	b.Sink(sum)
	b.Return(sum)
	p.Entry = b.Finish()
	return p
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(buildListSum(100, 0), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(buildListSum(100, 0), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("oracle not deterministic:\n  %s\n  %s\n  diff: %v", a, b, a.Diff(b))
	}
	if a.Trap != TrapNone {
		t.Fatalf("unexpected trap %q", a.Trap)
	}
	if want := value.Int(100 * 99 / 2); !a.Result.Equal(want) {
		t.Fatalf("result %v, want %v", a.Result, want)
	}
	if a.Loads == 0 || a.Checksum == 0 {
		t.Fatalf("fingerprint missing loads/checksum: %s", a)
	}
}

// TestGraphDigestAddressIndependence: dead allocations move every live
// object, so the raw byte digest and load stream change — but the
// canonicalised live graph must not.
func TestGraphDigestAddressIndependence(t *testing.T) {
	a, err := Run(buildListSum(50, 0), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(buildListSum(50, 7), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.HeapDigest == b.HeapDigest {
		t.Fatalf("garbage variant unexpectedly byte-identical (test is vacuous)")
	}
	if a.GraphDigest != b.GraphDigest {
		t.Fatalf("live graph digest is address-dependent: %016x vs %016x", a.GraphDigest, b.GraphDigest)
	}
	if !a.Result.Equal(b.Result) || a.Checksum != b.Checksum {
		t.Fatalf("semantic outcome changed with placement: %s vs %s", a, b)
	}
}

// TestGCPreservesGraphDigest: a heap small enough to force collections
// must still yield the same live graph and outputs as an uncollected run.
func TestGCPreservesGraphDigest(t *testing.T) {
	big, err := Run(buildListSum(40, 5000), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Run(buildListSum(40, 5000), nil, Config{HeapBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if small.GCs == 0 {
		t.Fatalf("small heap did not trigger GC (test is vacuous)")
	}
	if big.GCs != 0 {
		t.Fatalf("big heap unexpectedly collected")
	}
	if big.GraphDigest != small.GraphDigest {
		t.Fatalf("GC changed live graph: %016x vs %016x", big.GraphDigest, small.GraphDigest)
	}
	if !big.Result.Equal(small.Result) || big.Checksum != small.Checksum {
		t.Fatalf("GC changed outputs: %s vs %s", big, small)
	}
}

func TestRunMisuse(t *testing.T) {
	u := classfile.NewUniverse()
	p := ir.NewProgram(u)
	if _, err := Run(p, nil, Config{}); err == nil {
		t.Fatalf("expected error for program without entry")
	}
	b := ir.NewBuilder(p, nil, "main", value.KindInt, value.KindInt)
	b.Return(b.Param(0))
	p.Entry = b.Finish()
	if _, err := Run(p, nil, Config{}); err == nil {
		t.Fatalf("expected error for wrong argument count")
	}
	if fp, err := Run(p, []value.Value{value.Int(7)}, Config{}); err != nil {
		t.Fatal(err)
	} else if !fp.Result.Equal(value.Int(7)) {
		t.Fatalf("result %v", fp.Result)
	}
}

func TestBudgetTrapIncomparable(t *testing.T) {
	a, err := Run(buildListSum(1000, 0), nil, Config{MaxSteps: 50})
	if err != nil {
		t.Fatal(err)
	}
	if a.Trap != TrapBudget {
		t.Fatalf("trap %q, want %q", a.Trap, TrapBudget)
	}
	// A different budget stops at a different architectural point; only the
	// class is comparable.
	b, err := Run(buildListSum(1000, 0), nil, Config{MaxSteps: 90})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("budget traps must compare by class only: %v", a.Diff(b))
	}
	if a.Equal(Fingerprint{Trap: TrapNullDeref}) {
		t.Fatalf("different trap classes must not compare equal")
	}
}

func TestFingerprintDiffBranches(t *testing.T) {
	base, err := Run(buildListSum(10, 0), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tamper := []struct {
		name string
		mut  func(*Fingerprint)
	}{
		{"result", func(f *Fingerprint) { f.Result = value.Int(0) }},
		{"checksum", func(f *Fingerprint) { f.Checksum++ }},
		{"demand loads", func(f *Fingerprint) { f.Loads++ }},
		{"heap bytes", func(f *Fingerprint) { f.HeapDigest++ }},
		{"object graph", func(f *Fingerprint) { f.GraphDigest++ }},
		{"statics", func(f *Fingerprint) { f.StaticsDigest++ }},
		{"GCs", func(f *Fingerprint) { f.GCs++ }},
		{"trap", func(f *Fingerprint) { f.Trap = TrapBounds }},
	}
	for _, tc := range tamper {
		o := base
		tc.mut(&o)
		d := base.Diff(o)
		if len(d) == 0 {
			t.Errorf("%s: tampering not detected", tc.name)
			continue
		}
		if !strings.Contains(d[0], tc.name) {
			t.Errorf("%s: diff %q does not name the component", tc.name, d[0])
		}
		if tc.name == "trap" && len(d) != 1 {
			t.Errorf("trap mismatch must short-circuit, got %v", d)
		}
	}
	if s := base.String(); !strings.Contains(s, "result=") {
		t.Errorf("String() = %q", s)
	}
	if s := (Fingerprint{Trap: TrapBounds}).String(); !strings.Contains(s, TrapBounds) {
		t.Errorf("trap String() = %q", s)
	}
}

// TestEvalAgreesWithEngine cross-checks the oracle's independent evaluator
// against the engine's (ir.Eval*) over an operand corpus. The two were
// written separately; this pins down that they define the same language.
func TestEvalAgreesWithEngine(t *testing.T) {
	corpus := map[value.Kind][]value.Value{
		value.KindInt: {
			value.Int(0), value.Int(1), value.Int(-1), value.Int(7),
			value.Int(-13), value.Int(31), value.Int(32), value.Int(math.MinInt32), value.Int(math.MaxInt32),
		},
		value.KindLong: {
			value.Long(0), value.Long(1), value.Long(-1), value.Long(63), value.Long(64),
			value.Long(math.MinInt64), value.Long(math.MaxInt64), value.Long(1 << 40),
		},
		value.KindFloat: {
			value.Float(0), value.Float(1.5), value.Float(-2.25),
			value.Float(float32(math.Inf(1))), value.Float(float32(math.NaN())),
		},
		value.KindDouble: {
			value.Double(0), value.Double(3.75), value.Double(-0.5),
			value.Double(math.Inf(-1)), value.Double(math.NaN()), value.Double(1e300),
		},
	}
	binOps := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpUshr}
	for k, vals := range corpus {
		for _, op := range binOps {
			for _, a := range vals {
				for _, b := range vals {
					ev, eerr := ir.EvalBinary(op, k, a, b)
					ov, otr := arith2(op, k, a, b)
					if (eerr != nil) != (otr != nil) {
						t.Fatalf("%v %v (%v, %v): engine err=%v oracle trap=%v", op, k, a, b, eerr, otr)
					}
					if eerr == nil && !ev.Equal(ov) && !(nanEqual(k, ev, ov)) {
						t.Fatalf("%v %v (%v, %v): engine %v oracle %v", op, k, a, b, ev, ov)
					}
				}
			}
		}
		for _, a := range vals {
			ev, eerr := ir.EvalUnary(ir.OpNeg, k, a)
			ov, otr := negate(k, a)
			if (eerr != nil) != (otr != nil) || (eerr == nil && !ev.Equal(ov) && !nanEqual(k, ev, ov)) {
				t.Fatalf("neg %v %v: engine %v/%v oracle %v/%v", k, a, ev, eerr, ov, otr)
			}
			for _, dst := range []value.Kind{value.KindInt, value.KindLong, value.KindFloat, value.KindDouble} {
				ev, eerr := ir.Convert(dst, a)
				ov, otr := convert(dst, a)
				if (eerr != nil) != (otr != nil) || (eerr == nil && !ev.Equal(ov) && !nanEqual(dst, ev, ov)) {
					t.Fatalf("conv %v->%v %v: engine %v/%v oracle %v/%v", k, dst, a, ev, eerr, ov, otr)
				}
			}
			for _, b := range vals {
				for _, c := range []ir.Cond{ir.CondEQ, ir.CondNE, ir.CondLT, ir.CondLE, ir.CondGT, ir.CondGE} {
					et, eerr := ir.EvalCond(c, k, a, b)
					ot, otr := compare(c, k, a, b)
					if (eerr != nil) != (otr != nil) || (eerr == nil && et != ot) {
						t.Fatalf("cond %v %v (%v, %v): engine %v/%v oracle %v/%v", c, k, a, b, et, eerr, ot, otr)
					}
				}
			}
		}
	}
	// Reference comparisons: unsigned 32-bit addresses.
	refs := []value.Value{value.Null, value.Ref(16), value.Ref(0x8000_0000), value.Ref(0xFFFF_FFF0)}
	for _, a := range refs {
		for _, b := range refs {
			for _, c := range []ir.Cond{ir.CondEQ, ir.CondNE, ir.CondLT, ir.CondGE} {
				et, eerr := ir.EvalCond(c, value.KindRef, a, b)
				ot, otr := compare(c, value.KindRef, a, b)
				if (eerr != nil) != (otr != nil) || (eerr == nil && et != ot) {
					t.Fatalf("ref cond %v (%v, %v): engine %v oracle %v", c, a, b, et, ot)
				}
			}
		}
	}
}

// nanEqual treats two NaN payloads of the same kind as equal: Go does not
// guarantee which NaN bit pattern an operation produces, and the IR only
// guarantees "a NaN".
func nanEqual(k value.Kind, a, b value.Value) bool {
	switch k {
	case value.KindFloat:
		return a.K == b.K && math.IsNaN(float64(math.Float32frombits(uint32(a.B)))) &&
			math.IsNaN(float64(math.Float32frombits(uint32(b.B))))
	case value.KindDouble:
		return a.K == b.K && math.IsNaN(math.Float64frombits(a.B)) && math.IsNaN(math.Float64frombits(b.B))
	}
	return false
}
