package oracle

// Tests for the oracle's defensive edges: dynamic-typing traps, the
// prefetch ops it must ignore, digest corner cases, and error plumbing.

import (
	"strings"
	"testing"

	"strider/internal/arch"
	"strider/internal/classfile"
	"strider/internal/heap"
	"strider/internal/ir"
	"strider/internal/value"
)

func TestTrapError(t *testing.T) {
	if got := (&trap{TrapBounds, "9 of 4"}).Error(); got != "out-of-bounds: 9 of 4" {
		t.Errorf("Error() = %q", got)
	}
	if got := (&trap{class: TrapBudget}).Error(); got != "budget" {
		t.Errorf("Error() = %q", got)
	}
}

// TestEvalRejectsWrongKinds pins down the evaluator's defensive paths:
// kinds an instruction can never legally carry must trap, not compute.
func TestEvalRejectsWrongKinds(t *testing.T) {
	r := value.Ref(32)
	if _, tr := arith2(ir.OpAdd, value.KindRef, r, r); tr == nil {
		t.Error("arith2 on refs did not trap")
	}
	if _, tr := arith2(ir.OpShl, value.KindFloat, value.Float(1), value.Float(2)); tr == nil {
		t.Error("float shift did not trap")
	}
	if _, tr := arith2(ir.OpRem, value.KindDouble, value.Double(1), value.Double(2)); tr == nil {
		t.Error("double rem did not trap")
	}
	if _, tr := negate(value.KindRef, r); tr == nil {
		t.Error("negating a ref did not trap")
	}
	if _, tr := convert(value.KindInt, r); tr == nil {
		t.Error("converting from ref did not trap")
	}
	if _, tr := convert(value.KindRef, value.Int(5)); tr == nil {
		t.Error("converting to ref did not trap")
	}
	if _, tr := compare(ir.CondEQ, value.KindUnknown, value.Int(1), value.Int(1)); tr == nil {
		t.Error("comparing unknowns did not trap")
	}
	if _, tr := compare(ir.Cond(99), value.KindInt, value.Int(1), value.Int(1)); tr == nil {
		t.Error("bogus condition did not trap")
	}
}

// badOperandProgram builds programs whose dynamic types are wrong in ways
// the static validator cannot see. The oracle must classify each as a
// bad-operand (or the specific) trap exactly like the engine.
func badOperandProgram(which string) *ir.Program {
	u := classfile.NewUniverse()
	box := u.MustDefineClass("Box", nil, classfile.FieldSpec{Name: "v", Kind: value.KindInt})
	fV := box.FieldByName("v")
	p := ir.NewProgram(u)
	b := ir.NewBuilder(p, nil, "main", value.KindInt)
	i := b.ConstInt(5)
	switch which {
	case "getfield-int-base":
		b.Return(b.GetField(i, fV))
	case "putfield-int-base":
		b.PutField(i, fV, i)
		b.Return(i)
	case "arrayload-int-base":
		b.Return(b.ArrayLoad(value.KindInt, i, i))
	case "arrayindex-ref":
		arr := b.NewArray(value.KindInt, b.ConstInt(4))
		b.Return(b.ArrayLoad(value.KindInt, arr, arr))
	case "arraylen-int-base":
		b.Return(b.ArrayLen(i))
	case "arraylen-null":
		n := b.ConstNull()
		b.Return(b.ArrayLen(n))
	case "newarray-ref-len":
		n := b.ConstNull()
		arr := b.NewArray(value.KindInt, n)
		b.Return(b.ArrayLen(arr))
	case "callvirt-int-recv":
		b.Return(b.CallVirt("tag", true, i))
	case "callvirt-null-recv":
		n := b.ConstNull()
		b.Return(b.CallVirt("tag", true, n))
	case "callvirt-no-method":
		o := b.New(box)
		b.Return(b.CallVirt("missing", true, o))
	default:
		panic("unknown case " + which)
	}
	p.Entry = b.Finish()
	return p
}

func TestDynamicTrapAgreement(t *testing.T) {
	cases := []struct {
		name string
		want string
	}{
		{"getfield-int-base", TrapBadOperand},
		{"putfield-int-base", TrapBadOperand},
		{"arrayload-int-base", TrapBadOperand},
		{"arrayindex-ref", TrapBadOperand},
		{"arraylen-int-base", TrapBadOperand},
		{"arraylen-null", TrapNullDeref},
		{"newarray-ref-len", TrapBadOperand},
		{"callvirt-int-recv", TrapBadOperand},
		{"callvirt-null-recv", TrapNullDeref},
		{"callvirt-no-method", TrapNoMethod},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Verify(func() *ir.Program { return badOperandProgram(tc.name) },
				Options{Machines: []*arch.Machine{arch.Pentium4()}, SkipLeakCheck: true})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Reference.Trap != tc.want {
				t.Fatalf("oracle trapped %q, want %q", rep.Reference.Trap, tc.want)
			}
			if !rep.OK() {
				t.Fatalf("%s", rep.Summary())
			}
		})
	}
}

// TestOraclePrefetchBlind: a hand-assembled method carrying the
// JIT-private ops must execute as if they were absent — no loads recorded,
// register contents only ever feeding prefetch addresses.
func TestOraclePrefetchBlind(t *testing.T) {
	u := classfile.NewUniverse()
	box := u.MustDefineClass("Box", nil, classfile.FieldSpec{Name: "v", Kind: value.KindInt})
	fV := box.FieldByName("v")
	p := ir.NewProgram(u)
	m := &ir.Method{Name: "main", Returns: value.KindInt, NumRegs: 4, Code: []ir.Instr{
		{Op: ir.OpNew, Dst: 0, Class: box},
		{Op: ir.OpConst, Dst: 1, Kind: value.KindInt, Imm: 41},
		{Op: ir.OpPutField, A: 0, B: 1, Field: fV},
		{Op: ir.OpSpecLoad, Dst: 2, Addr: ir.AddrExpr{Base: 0, Index: ir.NoReg}, A: ir.NoReg},
		{Op: ir.OpPrefetch, Addr: ir.AddrExpr{Base: 2, Index: ir.NoReg, Disp: 64}, A: ir.NoReg, Dst: ir.NoReg},
		{Op: ir.OpReturn, A: 1},
	}}
	if err := ir.Validate(m); err != nil {
		t.Fatalf("validate: %v", err)
	}
	p.Entry = p.Define(m)
	fp, err := Run(p, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if fp.Trap != TrapNone {
		t.Fatalf("trap %q", fp.Trap)
	}
	if !fp.Result.Equal(value.Int(41)) {
		t.Fatalf("result %v", fp.Result)
	}
	if fp.Loads != 0 {
		t.Fatalf("prefetch ops recorded %d demand loads", fp.Loads)
	}
}

// TestOracleObjectOOM drives allocObject through its collect-and-retry
// path to exhaustion: the whole list stays live, so no amount of GC helps.
func TestOracleObjectOOM(t *testing.T) {
	fp, err := Run(buildListSum(5000, 0), nil, Config{HeapBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if fp.Trap != TrapOutOfMemory {
		t.Fatalf("trap %q, want %q", fp.Trap, TrapOutOfMemory)
	}
	if fp.GCs == 0 {
		t.Fatalf("expected collections before giving up")
	}
}

// TestGraphDigestWideAndInvalid covers wide fields and elements, ref
// arrays, and the sentinel for refs that do not point at a live object.
func TestGraphDigestWideAndInvalid(t *testing.T) {
	u := classfile.NewUniverse()
	wide := u.MustDefineClass("Wide", nil,
		classfile.FieldSpec{Name: "l", Kind: value.KindLong},
		classfile.FieldSpec{Name: "d", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "self", Kind: value.KindRef},
		classfile.FieldSpec{Name: "obj", Kind: value.KindRef, Static: true},
		classfile.FieldSpec{Name: "arr", Kind: value.KindRef, Static: true},
	)
	fL, fD, fSelf := wide.FieldByName("l"), wide.FieldByName("d"), wide.FieldByName("self")
	sObj, sArr := wide.FieldByName("obj"), wide.FieldByName("arr")
	p := ir.NewProgram(u)
	b := ir.NewBuilder(p, nil, "main", value.KindInt)
	o := b.New(wide)
	b.PutField(o, fL, b.ConstLong(1<<40))
	b.PutField(o, fD, b.ConstDouble(2.5))
	b.PutField(o, fSelf, o) // a cycle: canonicalisation must terminate
	b.PutStatic(sObj, o)
	n := b.ConstInt(3)
	da := b.NewArray(value.KindDouble, n)
	b.ArrayStore(value.KindDouble, da, b.ConstInt(1), b.ConstDouble(9.25))
	ra := b.NewArray(value.KindRef, n)
	b.ArrayStore(value.KindRef, ra, b.ConstInt(0), o)
	b.ArrayStore(value.KindRef, ra, b.ConstInt(2), da)
	b.PutStatic(sArr, ra)
	z := b.ConstInt(0)
	b.Return(z)
	p.Entry = b.Finish()

	fp, err := Run(p, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if fp.Trap != TrapNone {
		t.Fatalf("trap %q", fp.Trap)
	}
	// Re-create the final heap to probe GraphDigest directly with a bogus
	// extra root: it must fold the sentinel, not crash, and must change
	// the digest.
	h := heap.New(1<<20, u)
	o2 := &oracleVM{prog: p, h: h, maxSteps: 1 << 20, fp: &Fingerprint{}}
	res, tr := o2.exec(p.Entry, nil)
	if tr != nil {
		t.Fatal(tr)
	}
	clean := GraphDigest(h, u, res)
	bogus := GraphDigest(h, u, res, value.Ref(12)) // below heap base: invalid
	if clean == bogus {
		t.Fatalf("invalid ref did not perturb the digest")
	}
	if clean != fp.GraphDigest {
		t.Fatalf("replayed digest %016x != fingerprint %016x", clean, fp.GraphDigest)
	}
}

func TestVerifyPropagatesOracleMisuse(t *testing.T) {
	build := func() *ir.Program { return ir.NewProgram(classfile.NewUniverse()) }
	_, err := Verify(build, Options{})
	if err == nil || !strings.Contains(err.Error(), "no entry") {
		t.Fatalf("err = %v", err)
	}
}

// TestCompileLeakCheckOnTrappingProgram: a program that traps still leaves
// a populated heap worth inspecting; the check must run, not bail.
func TestCompileLeakCheckOnTrappingProgram(t *testing.T) {
	build := func() *ir.Program { return trapProgram(TrapBounds) }
	if leaks := CompileLeakCheck(build, arch.AthlonMP(), 0, heap.GCSlidingCompact); len(leaks) > 0 {
		t.Fatalf("leaks: %v", leaks)
	}
}
