package classfile

import (
	"testing"
	"testing/quick"

	"strider/internal/value"
)

func TestDefineClassLayout(t *testing.T) {
	u := NewUniverse()
	c := u.MustDefineClass("Point", nil,
		FieldSpec{Name: "x", Kind: value.KindInt},
		FieldSpec{Name: "y", Kind: value.KindInt},
		FieldSpec{Name: "next", Kind: value.KindRef},
	)
	if c.ID == 0 {
		t.Error("class IDs must start at 1")
	}
	if got := c.FieldByName("x").Offset; got != HeaderBytes {
		t.Errorf("first field offset = %d, want %d", got, HeaderBytes)
	}
	if got := c.FieldByName("y").Offset; got != HeaderBytes+4 {
		t.Errorf("y offset = %d", got)
	}
	if got := c.FieldByName("next").Offset; got != HeaderBytes+8 {
		t.Errorf("next offset = %d", got)
	}
	if c.InstanceSize != 32 { // 16 header + 12 fields, aligned to 8
		t.Errorf("InstanceSize = %d, want 32", c.InstanceSize)
	}
	if len(c.RefOffsets) != 1 || c.RefOffsets[0] != HeaderBytes+8 {
		t.Errorf("RefOffsets = %v", c.RefOffsets)
	}
}

func TestWideFieldAlignment(t *testing.T) {
	u := NewUniverse()
	c := u.MustDefineClass("W", nil,
		FieldSpec{Name: "a", Kind: value.KindInt},
		FieldSpec{Name: "d", Kind: value.KindDouble},
		FieldSpec{Name: "l", Kind: value.KindLong},
	)
	if off := c.FieldByName("d").Offset; off%8 != 0 {
		t.Errorf("double offset %d not 8-aligned", off)
	}
	if off := c.FieldByName("l").Offset; off%8 != 0 {
		t.Errorf("long offset %d not 8-aligned", off)
	}
	if c.InstanceSize%8 != 0 {
		t.Errorf("instance size %d not 8-aligned", c.InstanceSize)
	}
}

func TestInheritance(t *testing.T) {
	u := NewUniverse()
	base := u.MustDefineClass("Base", nil,
		FieldSpec{Name: "a", Kind: value.KindInt},
		FieldSpec{Name: "r", Kind: value.KindRef},
	)
	sub := u.MustDefineClass("Sub", base,
		FieldSpec{Name: "b", Kind: value.KindInt},
	)
	if sub.FieldByName("a") == nil {
		t.Fatal("inherited field not visible")
	}
	if sub.FieldByName("a").Offset != base.FieldByName("a").Offset {
		t.Error("inherited field offset changed")
	}
	if sub.FieldByName("b").Offset < base.InstanceSize {
		t.Error("subclass fields must follow superclass fields")
	}
	if !sub.IsSubclassOf(base) || !sub.IsSubclassOf(sub) {
		t.Error("IsSubclassOf broken")
	}
	if base.IsSubclassOf(sub) {
		t.Error("base is not a subclass of sub")
	}
	if len(sub.RefOffsets) != 1 {
		t.Errorf("ref offsets must be inherited: %v", sub.RefOffsets)
	}
}

func TestDuplicateErrors(t *testing.T) {
	u := NewUniverse()
	u.MustDefineClass("A", nil)
	if _, err := u.DefineClass("A", nil); err == nil {
		t.Error("duplicate class name must fail")
	}
	if _, err := u.DefineClass("B", nil,
		FieldSpec{Name: "x", Kind: value.KindInt},
		FieldSpec{Name: "x", Kind: value.KindInt},
	); err == nil {
		t.Error("duplicate field must fail")
	}
	if _, err := u.DefineClass("C", nil, FieldSpec{Name: "x", Kind: value.KindUnknown}); err == nil {
		t.Error("unknown-kind field must fail")
	}
}

func TestArrayClasses(t *testing.T) {
	u := NewUniverse()
	ri := u.ArrayClass(value.KindInt)
	if !ri.IsArray || ri.Elem != value.KindInt || ri.ElemSize != 4 {
		t.Errorf("int[] broken: %+v", ri)
	}
	if u.ArrayClass(value.KindInt) != ri {
		t.Error("array classes must be interned")
	}
	rd := u.ArrayClass(value.KindDouble)
	if rd.ElemSize != 8 {
		t.Error("double[] element size must be 8")
	}
	if ri.ArraySize(0) != HeaderBytes {
		t.Errorf("empty array size = %d", ri.ArraySize(0))
	}
	if got := ri.ArraySize(3); got != ArrayAlign(HeaderBytes+12) {
		t.Errorf("int[3] size = %d", got)
	}
	if u.ByName(ArrayClassName(value.KindInt)) != ri {
		t.Error("array class not registered by name")
	}
}

func TestByID(t *testing.T) {
	u := NewUniverse()
	a := u.MustDefineClass("A", nil)
	b := u.ArrayClass(value.KindRef)
	if u.ByID(a.ID) != a || u.ByID(b.ID) != b {
		t.Error("ByID lookup broken")
	}
	if u.ByID(0) != nil || u.ByID(99) != nil {
		t.Error("ByID must return nil out of range")
	}
	if u.NumClasses() != 2 || len(u.Classes()) != 2 {
		t.Error("class registry count wrong")
	}
}

func TestStatics(t *testing.T) {
	u := NewUniverse()
	c := u.MustDefineClass("S", nil,
		FieldSpec{Name: "count", Kind: value.KindInt, Static: true},
		FieldSpec{Name: "head", Kind: value.KindRef, Static: true},
		FieldSpec{Name: "x", Kind: value.KindInt},
	)
	fc := c.FieldByName("count")
	fh := c.FieldByName("head")
	if !fc.Static || !fh.Static {
		t.Fatal("static flags lost")
	}
	if got := u.GetStatic(fc); got.K != value.KindInt || got.Int() != 0 {
		t.Errorf("static int zero value = %v", got)
	}
	if got := u.GetStatic(fh); !got.IsNull() {
		t.Errorf("static ref zero value = %v", got)
	}
	u.SetStatic(fc, value.Int(7))
	if u.GetStatic(fc).Int() != 7 {
		t.Error("SetStatic lost the value")
	}
	u.SetStatic(fh, value.Ref(0x40))
	var visited int
	u.StaticRoots(func(v *value.Value) {
		visited++
		if v.Ref() != 0x40 {
			t.Errorf("root value = %v", *v)
		}
		*v = value.Ref(0x80) // the GC updates roots in place
	})
	if visited != 1 {
		t.Errorf("StaticRoots visited %d slots, want 1 (only refs)", visited)
	}
	if u.GetStatic(fh).Ref() != 0x80 {
		t.Error("root update not visible")
	}
	u.ResetStatics()
	if u.GetStatic(fc).Int() != 0 || !u.GetStatic(fh).IsNull() {
		t.Error("ResetStatics failed")
	}
}

func TestStaticPanicsOnInstanceField(t *testing.T) {
	u := NewUniverse()
	c := u.MustDefineClass("P", nil, FieldSpec{Name: "x", Kind: value.KindInt})
	defer func() {
		if recover() == nil {
			t.Error("GetStatic on instance field must panic")
		}
	}()
	u.GetStatic(c.FieldByName("x"))
}

// Property: for any random mix of field kinds, offsets never overlap and
// every field lies within the instance size.
func TestQuickLayoutNonOverlapping(t *testing.T) {
	kinds := []value.Kind{value.KindInt, value.KindLong, value.KindFloat, value.KindDouble, value.KindRef}
	counter := 0
	f := func(pick []byte) bool {
		if len(pick) > 30 {
			pick = pick[:30]
		}
		u := NewUniverse()
		specs := make([]FieldSpec, len(pick))
		for i, p := range pick {
			specs[i] = FieldSpec{Name: string(rune('a' + i)), Kind: kinds[int(p)%len(kinds)]}
		}
		counter++
		c, err := u.DefineClass("T", nil, specs...)
		if err != nil {
			return false
		}
		type span struct{ lo, hi uint32 }
		var spans []span
		for _, fl := range c.Fields {
			lo, hi := fl.Offset, fl.Offset+fl.Kind.Size()
			if lo < HeaderBytes || hi > c.InstanceSize {
				return false
			}
			for _, s := range spans {
				if lo < s.hi && s.lo < hi {
					return false // overlap
				}
			}
			spans = append(spans, span{lo, hi})
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
