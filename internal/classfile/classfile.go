// Package classfile defines the class universe of the simulated runtime:
// object classes with typed fields, array classes, static fields, and the
// layout metadata (field offsets and reference maps) that both the heap
// (for GC) and the JIT compiler (for prefetch offsets) consume.
//
// Object layout (see DESIGN.md):
//
//	offset 0  classID  uint32
//	offset 4  aux      uint32   (array length; 0 for plain objects)
//	offset 8  fwd      uint32   (GC forwarding pointer, 0 outside GC)
//	offset 12 pad      uint32
//	offset 16 first field slot / first array element
//
// Field slots are 4 bytes; long and double fields take two consecutive
// slots. References are 4-byte heap addresses (IA-32 analog).
package classfile

import (
	"fmt"
	"sort"

	"strider/internal/value"
)

// HeaderBytes is the size of every object header.
const HeaderBytes = 16

// Offsets of the header words.
const (
	ClassIDOffset = 0
	AuxOffset     = 4
	FwdOffset     = 8
)

// Field describes one instance or static field.
type Field struct {
	Class  *Class
	Name   string
	Kind   value.Kind
	Offset uint32 // byte offset from object base (instance fields only)
	Static bool
	Index  int // declaration index within the class
}

// QName returns "Class.field" for diagnostics.
func (f *Field) QName() string { return f.Class.Name + "." + f.Name }

// Class describes an object class or an array class.
type Class struct {
	ID    uint32
	Name  string
	Super *Class

	// Object classes.
	Fields       []*Field // instance fields, declaration order (incl. inherited, prefix)
	InstanceSize uint32   // header + field slots, 8-byte aligned
	RefOffsets   []uint32 // byte offsets of reference-kind instance fields

	// Array classes.
	IsArray  bool
	Elem     value.Kind // element kind for arrays
	ElemSize uint32     // element byte size for arrays

	fieldsByName map[string]*Field
}

// FieldByName returns the instance or static field with the given name,
// searching superclasses, or nil.
func (c *Class) FieldByName(name string) *Field {
	for k := c; k != nil; k = k.Super {
		if f, ok := k.fieldsByName[name]; ok {
			return f
		}
	}
	return nil
}

// IsSubclassOf reports whether c is k or a subclass of k.
func (c *Class) IsSubclassOf(k *Class) bool {
	for x := c; x != nil; x = x.Super {
		if x == k {
			return true
		}
	}
	return false
}

// ArrayAlign aligns a byte size up to 8.
func ArrayAlign(n uint32) uint32 { return (n + 7) &^ 7 }

// ArraySize returns the total heap size of an array of the class with the
// given length.
func (c *Class) ArraySize(length uint32) uint32 {
	if !c.IsArray {
		panic("classfile: ArraySize on non-array class " + c.Name)
	}
	return ArrayAlign(HeaderBytes + length*c.ElemSize)
}

// Universe is the set of classes of one program. Class IDs are dense and
// start at 1 (ID 0 is reserved so a zeroed header word is invalid).
type Universe struct {
	classes []*Class // index = ID-1
	byName  map[string]*Class

	statics      []*Field // all static fields, in declaration order
	staticVals   []value.Value
	staticsByKey map[*Field]int

	// arrayByKind memoizes ArrayClass per element kind so the allocation
	// hot path never rebuilds the "<kind>[]" name string.
	arrayByKind [8]*Class
}

// NewUniverse returns an empty universe.
func NewUniverse() *Universe {
	return &Universe{
		byName:       make(map[string]*Class),
		staticsByKey: make(map[*Field]int),
	}
}

// FieldSpec declares a field when defining a class.
type FieldSpec struct {
	Name   string
	Kind   value.Kind
	Static bool
}

// DefineClass creates an object class. Instance fields of the superclass
// are inherited; offsets continue after them.
func (u *Universe) DefineClass(name string, super *Class, specs ...FieldSpec) (*Class, error) {
	if _, dup := u.byName[name]; dup {
		return nil, fmt.Errorf("classfile: duplicate class %q", name)
	}
	if super != nil && super.IsArray {
		return nil, fmt.Errorf("classfile: class %q cannot extend array class", name)
	}
	c := &Class{
		ID:           uint32(len(u.classes) + 1),
		Name:         name,
		Super:        super,
		fieldsByName: make(map[string]*Field),
	}
	next := uint32(HeaderBytes)
	if super != nil {
		c.Fields = append(c.Fields, super.Fields...)
		next = super.InstanceSize
		c.RefOffsets = append(c.RefOffsets, super.RefOffsets...)
	}
	for i, s := range specs {
		if s.Kind == value.KindInvalid || s.Kind == value.KindUnknown {
			return nil, fmt.Errorf("classfile: field %s.%s has invalid kind", name, s.Name)
		}
		f := &Field{Class: c, Name: s.Name, Kind: s.Kind, Static: s.Static, Index: i}
		if _, dup := c.fieldsByName[s.Name]; dup {
			return nil, fmt.Errorf("classfile: duplicate field %s.%s", name, s.Name)
		}
		c.fieldsByName[s.Name] = f
		if s.Static {
			u.staticsByKey[f] = len(u.statics)
			u.statics = append(u.statics, f)
			u.staticVals = append(u.staticVals, zeroOf(s.Kind))
			continue
		}
		if s.Kind == value.KindLong || s.Kind == value.KindDouble {
			next = (next + 7) &^ 7 // 8-byte align wide fields
		}
		f.Offset = next
		next += s.Kind.Size()
		c.Fields = append(c.Fields, f)
		if s.Kind == value.KindRef {
			c.RefOffsets = append(c.RefOffsets, f.Offset)
		}
	}
	c.InstanceSize = ArrayAlign(next)
	sort.Slice(c.RefOffsets, func(i, j int) bool { return c.RefOffsets[i] < c.RefOffsets[j] })
	u.classes = append(u.classes, c)
	u.byName[name] = c
	return c, nil
}

// MustDefineClass is DefineClass, panicking on error. Workload builders use
// it; malformed class sets are programming errors.
func (u *Universe) MustDefineClass(name string, super *Class, specs ...FieldSpec) *Class {
	c, err := u.DefineClass(name, super, specs...)
	if err != nil {
		panic(err)
	}
	return c
}

// ArrayClassName returns the canonical name of the array class with the
// given element kind, e.g. "ref[]" or "int[]".
func ArrayClassName(elem value.Kind) string { return elem.String() + "[]" }

// ArrayClass returns (creating on first use) the array class for the given
// element kind.
func (u *Universe) ArrayClass(elem value.Kind) *Class {
	if int(elem) < len(u.arrayByKind) {
		if c := u.arrayByKind[elem]; c != nil {
			return c
		}
	}
	name := ArrayClassName(elem)
	if c, ok := u.byName[name]; ok {
		if int(elem) < len(u.arrayByKind) {
			u.arrayByKind[elem] = c
		}
		return c
	}
	c := &Class{
		ID:           uint32(len(u.classes) + 1),
		Name:         name,
		IsArray:      true,
		Elem:         elem,
		ElemSize:     elemByteSize(elem),
		fieldsByName: map[string]*Field{},
	}
	u.classes = append(u.classes, c)
	u.byName[name] = c
	if int(elem) < len(u.arrayByKind) {
		u.arrayByKind[elem] = c
	}
	return c
}

func elemByteSize(k value.Kind) uint32 {
	switch k {
	case value.KindLong, value.KindDouble:
		return 8
	default:
		return 4
	}
}

// ByName returns the class with the given name, or nil.
func (u *Universe) ByName(name string) *Class { return u.byName[name] }

// ByID returns the class with the given ID, or nil.
func (u *Universe) ByID(id uint32) *Class {
	if id == 0 || int(id) > len(u.classes) {
		return nil
	}
	return u.classes[id-1]
}

// NumClasses returns the number of defined classes.
func (u *Universe) NumClasses() int { return len(u.classes) }

// Classes returns the classes in ID order. The slice is shared; callers
// must not modify it.
func (u *Universe) Classes() []*Class { return u.classes }

// GetStatic returns the current value of a static field.
func (u *Universe) GetStatic(f *Field) value.Value {
	i, ok := u.staticsByKey[f]
	if !ok {
		panic("classfile: not a static field: " + f.QName())
	}
	return u.staticVals[i]
}

// StaticIndex returns the dense slot index of a static field (panicking
// for non-statics). Slot indices are assigned at class-definition time and
// stable for the life of the universe, so a compile-time resolution of a
// static access can skip the map on every execution.
func (u *Universe) StaticIndex(f *Field) int {
	i, ok := u.staticsByKey[f]
	if !ok {
		panic("classfile: not a static field: " + f.QName())
	}
	return i
}

// StaticAt returns the value of the static slot at index i (see
// StaticIndex).
func (u *Universe) StaticAt(i int) value.Value { return u.staticVals[i] }

// SetStaticAt sets the static slot at index i (see StaticIndex).
func (u *Universe) SetStaticAt(i int, v value.Value) { u.staticVals[i] = v }

// SetStatic sets the value of a static field.
func (u *Universe) SetStatic(f *Field, v value.Value) {
	i, ok := u.staticsByKey[f]
	if !ok {
		panic("classfile: not a static field: " + f.QName())
	}
	u.staticVals[i] = v
}

// StaticRoots calls fn with a pointer to every reference-kind static slot,
// letting the GC treat statics as roots and update them after compaction.
func (u *Universe) StaticRoots(fn func(*value.Value)) {
	for i, f := range u.statics {
		if f.Kind == value.KindRef {
			fn(&u.staticVals[i])
		}
	}
}

// EachStatic calls fn for every static field with its current value, in
// declaration order. The differential oracle uses it to fingerprint the
// statics as part of the architectural state.
func (u *Universe) EachStatic(fn func(f *Field, v value.Value)) {
	for i, f := range u.statics {
		fn(f, u.staticVals[i])
	}
}

// ResetStatics restores every static field to its zero value. Harness runs
// use it to reuse one universe across repeated executions.
func (u *Universe) ResetStatics() {
	for i, f := range u.statics {
		u.staticVals[i] = zeroOf(f.Kind)
	}
}

func zeroOf(k value.Kind) value.Value {
	switch k {
	case value.KindRef:
		return value.Null
	default:
		return value.Value{K: k}
	}
}
