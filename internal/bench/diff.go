package bench

import (
	"fmt"
	"strings"
)

// Finding is one entry-level comparison outcome of Diff.
type Finding struct {
	Name   string  `json:"name"`
	Metric string  `json:"metric"` // "ns/op", "allocs/op", or "presence"
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// DeltaPct is the relative change in percent (positive = worse).
	DeltaPct float64 `json:"delta_pct"`
	// Regression marks findings that should fail a gated comparison.
	Regression bool   `json:"regression"`
	Note       string `json:"note,omitempty"`
}

// DiffOptions configures the regression gate.
type DiffOptions struct {
	// NsThresholdPct fails ns/op growth beyond this percentage (default 10).
	NsThresholdPct float64
	// AllowAllocGrowth disables the (default) hard gate on any increase of
	// allocs/op. Wall-clock time is noisy; allocation counts are exact, so
	// they are gated at zero tolerance unless explicitly waived.
	AllowAllocGrowth bool
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.NsThresholdPct <= 0 {
		o.NsThresholdPct = 10
	}
	return o
}

// Diff compares a new report against a baseline and returns per-entry
// findings, ordered by the baseline's entry order (new-only entries last).
// A finding with Regression set means the gate should fail.
func Diff(base, cur *Report, opts DiffOptions) []Finding {
	opts = opts.withDefaults()
	curBy := cur.ByName()
	var out []Finding

	for _, b := range base.Entries {
		c, ok := curBy[b.Name]
		if !ok {
			out = append(out, Finding{
				Name: b.Name, Metric: "presence", Old: 1, New: 0,
				Regression: true,
				Note:       "entry missing from new report (pinned suite must not shrink)",
			})
			continue
		}
		delete(curBy, b.Name)

		if b.NsPerOp > 0 {
			d := 100 * (c.NsPerOp - b.NsPerOp) / b.NsPerOp
			out = append(out, Finding{
				Name: b.Name, Metric: "ns/op", Old: b.NsPerOp, New: c.NsPerOp,
				DeltaPct:   d,
				Regression: d > opts.NsThresholdPct,
			})
		}
		allocDelta := 0.0
		if b.AllocsPerOp > 0 {
			allocDelta = 100 * (c.AllocsPerOp - b.AllocsPerOp) / b.AllocsPerOp
		} else if c.AllocsPerOp > 0 {
			allocDelta = 100
		}
		out = append(out, Finding{
			Name: b.Name, Metric: "allocs/op", Old: b.AllocsPerOp, New: c.AllocsPerOp,
			DeltaPct: allocDelta,
			// Allocation counts include setup amortized over iterations and
			// the runtime's own background activity (linking net into the
			// binary adds sub-percent per-GC-cycle allocations that scale
			// with op duration), so growth below half an alloc per op — or
			// below half a percent on alloc-heavy entries — is measurement
			// noise, not a new allocation in the loop. Any real leak adds at
			// least one alloc per op and clears both bars.
			Regression: !opts.AllowAllocGrowth &&
				c.AllocsPerOp > b.AllocsPerOp+allocSlack(b.AllocsPerOp),
		})
	}
	for _, c := range cur.Entries {
		if _, stillNew := curBy[c.Name]; stillNew {
			out = append(out, Finding{
				Name: c.Name, Metric: "presence", Old: 0, New: 1,
				Note: "new entry (no baseline; informational)",
			})
		}
	}
	return out
}

// allocSlack is the tolerated allocs/op growth: half an alloc, or half a
// percent of the baseline, whichever is larger.
func allocSlack(base float64) float64 {
	if rel := base * 0.005; rel > 0.5 {
		return rel
	}
	return 0.5
}

// Regressions filters findings down to gate failures.
func Regressions(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Regression {
			out = append(out, f)
		}
	}
	return out
}

// FormatDiff renders the comparison as an aligned text table.
func FormatDiff(fs []Finding) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-34s %-10s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	for _, f := range fs {
		mark := ""
		if f.Regression {
			mark = "  << REGRESSION"
		}
		switch f.Metric {
		case "presence":
			fmt.Fprintf(&sb, "%-34s %-10s %14s %14s %9s%s\n",
				f.Name, f.Metric, presence(f.Old), presence(f.New), "", mark)
		default:
			fmt.Fprintf(&sb, "%-34s %-10s %14.1f %14.1f %+8.2f%%%s\n",
				f.Name, f.Metric, f.Old, f.New, f.DeltaPct, mark)
		}
		if f.Note != "" {
			fmt.Fprintf(&sb, "    (%s)\n", f.Note)
		}
	}
	return sb.String()
}

func presence(v float64) string {
	if v > 0 {
		return "present"
	}
	return "absent"
}
