// Package bench is the continuous-benchmarking subsystem: a pinned suite
// of performance benchmarks over the simulation hot path (VM, oracle,
// interpreter, memory model, experiment grid), a runner that measures them
// without the testing package's global flag state, machine-readable
// reports (the BENCH_<n>.json trajectory committed at the repo root), and
// a differ with a configurable regression threshold that CI uses to gate
// pull requests against the main-branch baseline.
//
// Every entry returns a deterministic Work signature (simulated cycles,
// instructions, checksum) alongside its timings: wall-clock numbers vary
// with the machine, but the simulated work of a pinned entry is exact, so
// the suite double-checks that an "optimization" did not change what is
// being simulated — and the serial-vs-parallel determinism test holds the
// runner itself to that standard.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"
)

// Work is the deterministic signature of one suite entry's iteration: it
// must be byte-for-byte reproducible across runs, machines, and runner
// parallelism. NsPerOp may drift; Work may not.
type Work struct {
	Cycles       uint64 `json:"cycles,omitempty"`
	Instructions uint64 `json:"instructions,omitempty"`
	Checksum     uint64 `json:"checksum,omitempty"`
}

// Entry is one pinned benchmark. Make performs the entry's one-time setup
// and returns the iteration function; the runner times only iterations.
type Entry struct {
	Name string
	Make func() (func() (Work, error), error)
}

// Measurement is the measured outcome of one entry.
type Measurement struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Work        Work    `json:"work"`
}

// Report is one suite run — the schema of the BENCH_<n>.json files.
type Report struct {
	Schema    int           `json:"schema"`
	GitSHA    string        `json:"git_sha,omitempty"`
	Timestamp string        `json:"timestamp,omitempty"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	MinIters  int           `json:"min_iters"`
	MinTime   string        `json:"min_time"`
	Entries   []Measurement `json:"benchmarks"`
}

// Schema is the current report schema version.
const Schema = 1

// Options configures a suite run.
type Options struct {
	// MinIters is the minimum timed iterations per entry (default 3).
	MinIters int
	// MinTime is the minimum total timed duration per entry (default 1s).
	// An entry stops after MinIters iterations once MinTime has elapsed.
	MinTime time.Duration
	// Parallel runs entries across this many workers (default 1, serial).
	// Timings under parallelism are noisy — it exists for the determinism
	// test and for quick smoke runs; reports meant for BENCH_<n>.json or
	// CI gating should use the serial default.
	Parallel int
	// GitSHA and Timestamp are stamped into the report verbatim. They are
	// inputs, not measurements, so reports stay reproducible: the runner
	// never reads a clock or the repository itself for metadata.
	GitSHA    string
	Timestamp string
	// Filter, when non-nil, selects the entries to run by name.
	Filter func(name string) bool
}

func (o Options) withDefaults() Options {
	if o.MinIters <= 0 {
		o.MinIters = 3
	}
	if o.MinTime <= 0 {
		o.MinTime = time.Second
	}
	if o.Parallel <= 0 {
		o.Parallel = 1
	}
	return o
}

// measure runs one entry: setup, one untimed warmup iteration, then timed
// iterations until both MinIters and MinTime are satisfied.
func measure(e Entry, opts Options) (Measurement, error) {
	iter, err := e.Make()
	if err != nil {
		return Measurement{}, fmt.Errorf("bench: %s: setup: %w", e.Name, err)
	}
	work, err := iter() // warmup: JIT state, lazily-grown buffers, caches
	if err != nil {
		return Measurement{}, fmt.Errorf("bench: %s: warmup: %w", e.Name, err)
	}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	var elapsed time.Duration
	iters := 0
	for iters < opts.MinIters || elapsed < opts.MinTime {
		start := time.Now()
		w, err := iter()
		elapsed += time.Since(start)
		if err != nil {
			return Measurement{}, fmt.Errorf("bench: %s: iteration %d: %w", e.Name, iters, err)
		}
		if w != work {
			return Measurement{}, fmt.Errorf("bench: %s: nondeterministic work: iteration %d produced %+v, warmup produced %+v",
				e.Name, iters, w, work)
		}
		iters++
	}
	runtime.ReadMemStats(&ms1)

	n := float64(iters)
	return Measurement{
		Name:        e.Name,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / n,
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / n,
		BytesPerOp:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / n,
		Work:        work,
	}, nil
}

// RunSuite measures the given entries and assembles a report. Entries are
// reported in suite order regardless of runner parallelism.
func RunSuite(entries []Entry, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	selected := make([]Entry, 0, len(entries))
	for _, e := range entries {
		if opts.Filter == nil || opts.Filter(e.Name) {
			selected = append(selected, e)
		}
	}
	results := make([]Measurement, len(selected))
	errs := make([]error, len(selected))

	if opts.Parallel == 1 {
		for i, e := range selected {
			results[i], errs[i] = measure(e, opts)
		}
	} else {
		idx := make(chan int)
		done := make(chan struct{})
		workers := opts.Parallel
		if workers > len(selected) {
			workers = len(selected)
		}
		for w := 0; w < workers; w++ {
			go func() {
				for i := range idx {
					results[i], errs[i] = measure(selected[i], opts)
				}
				done <- struct{}{}
			}()
		}
		for i := range selected {
			idx <- i
		}
		close(idx)
		for w := 0; w < workers; w++ {
			<-done
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Report{
		Schema:    Schema,
		GitSHA:    opts.GitSHA,
		Timestamp: opts.Timestamp,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		MinIters:  opts.MinIters,
		MinTime:   opts.MinTime.String(),
		Entries:   results,
	}, nil
}

// JSON renders the report as indented JSON with a trailing newline.
func (r *Report) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := r.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile loads a report written by WriteFile.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("bench: %s: schema %d, want %d", path, r.Schema, Schema)
	}
	return &r, nil
}

// ByName indexes the report's measurements.
func (r *Report) ByName() map[string]Measurement {
	m := make(map[string]Measurement, len(r.Entries))
	for _, e := range r.Entries {
		m[e.Name] = e
	}
	return m
}

// Names returns the sorted entry names of the report.
func (r *Report) Names() []string {
	names := make([]string, 0, len(r.Entries))
	for _, e := range r.Entries {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return names
}
