package bench

import (
	"errors"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeEntry returns an entry whose iteration is instantaneous and whose
// Work signature is fixed.
func fakeEntry(name string, w Work) Entry {
	return Entry{Name: name, Make: func() (func() (Work, error), error) {
		return func() (Work, error) { return w, nil }, nil
	}}
}

func fastOpts() Options {
	return Options{MinIters: 2, MinTime: time.Nanosecond}
}

func TestRunSuiteOrderAndWork(t *testing.T) {
	entries := []Entry{
		fakeEntry("b", Work{Cycles: 2}),
		fakeEntry("a", Work{Cycles: 1}),
		fakeEntry("c", Work{Cycles: 3}),
	}
	r, err := RunSuite(entries, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, m := range r.Entries {
		names = append(names, m.Name)
	}
	if got, want := strings.Join(names, ","), "b,a,c"; got != want {
		t.Errorf("entry order = %s, want %s (suite order, not sorted)", got, want)
	}
	if r.Entries[0].Work.Cycles != 2 || r.Entries[2].Work.Cycles != 3 {
		t.Error("work signatures misattributed")
	}
	if r.Schema != Schema {
		t.Errorf("schema = %d, want %d", r.Schema, Schema)
	}
}

func TestRunSuiteFilter(t *testing.T) {
	entries := []Entry{fakeEntry("vm/x", Work{}), fakeEntry("oracle/y", Work{})}
	opts := fastOpts()
	opts.Filter = func(name string) bool { return strings.HasPrefix(name, "vm/") }
	r, err := RunSuite(entries, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 1 || r.Entries[0].Name != "vm/x" {
		t.Errorf("filter selected %v", r.Entries)
	}
}

// TestRunSuiteNondeterministicWorkFails asserts the runner's built-in
// drift check: an entry whose Work changes between iterations is an error,
// not a report.
func TestRunSuiteNondeterministicWorkFails(t *testing.T) {
	var n atomic.Uint64
	drifting := Entry{Name: "drift", Make: func() (func() (Work, error), error) {
		return func() (Work, error) { return Work{Cycles: n.Add(1)}, nil }, nil
	}}
	_, err := RunSuite([]Entry{drifting}, fastOpts())
	if err == nil || !strings.Contains(err.Error(), "nondeterministic work") {
		t.Errorf("want nondeterministic-work error, got %v", err)
	}
}

func TestRunSuiteSetupAndIterationErrors(t *testing.T) {
	boom := errors.New("boom")
	setupFail := Entry{Name: "s", Make: func() (func() (Work, error), error) { return nil, boom }}
	if _, err := RunSuite([]Entry{setupFail}, fastOpts()); !errors.Is(err, boom) {
		t.Errorf("setup error not surfaced: %v", err)
	}
	iterFail := Entry{Name: "i", Make: func() (func() (Work, error), error) {
		return func() (Work, error) { return Work{}, boom }, nil
	}}
	if _, err := RunSuite([]Entry{iterFail}, fastOpts()); !errors.Is(err, boom) {
		t.Errorf("iteration error not surfaced: %v", err)
	}
}

func TestReportRoundTrip(t *testing.T) {
	r, err := RunSuite([]Entry{fakeEntry("x", Work{Checksum: 7})}, Options{
		MinIters: 1, MinTime: time.Nanosecond, GitSHA: "abc123", Timestamp: "2026-08-06T00:00:00Z",
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "r.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.GitSHA != "abc123" || got.Timestamp != "2026-08-06T00:00:00Z" {
		t.Errorf("metadata lost in round trip: %+v", got)
	}
	if m := got.ByName()["x"]; m.Work.Checksum != 7 {
		t.Errorf("work lost in round trip: %+v", m)
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	r := &Report{Schema: Schema + 1}
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("want schema error, got %v", err)
	}
}

// report builds a one-entry report for diff tests.
func report(name string, ns, allocs float64) *Report {
	return &Report{Schema: Schema, Entries: []Measurement{
		{Name: name, Iters: 1, NsPerOp: ns, AllocsPerOp: allocs},
	}}
}

// TestDiffSyntheticRegression is the gate's own acceptance test: a
// synthetic ns/op regression beyond the threshold must fail, one inside
// the threshold must pass.
func TestDiffSyntheticRegression(t *testing.T) {
	base := report("vm/x", 1000, 10)

	over := Diff(base, report("vm/x", 1200, 10), DiffOptions{NsThresholdPct: 10})
	if len(Regressions(over)) != 1 {
		t.Errorf("+20%% ns/op with 10%% threshold: regressions = %v", Regressions(over))
	}
	under := Diff(base, report("vm/x", 1050, 10), DiffOptions{NsThresholdPct: 10})
	if len(Regressions(under)) != 0 {
		t.Errorf("+5%% ns/op with 10%% threshold: regressions = %v", Regressions(under))
	}
	improved := Diff(base, report("vm/x", 500, 0), DiffOptions{NsThresholdPct: 10})
	if len(Regressions(improved)) != 0 {
		t.Errorf("improvement flagged as regression: %v", Regressions(improved))
	}
}

func TestDiffAllocGrowthGatedAtZero(t *testing.T) {
	base := report("vm/x", 1000, 10)
	grown := Diff(base, report("vm/x", 1000, 12), DiffOptions{})
	if len(Regressions(grown)) != 1 {
		t.Errorf("alloc growth not gated: %v", Regressions(grown))
	}
	waived := Diff(base, report("vm/x", 1000, 12), DiffOptions{AllowAllocGrowth: true})
	if len(Regressions(waived)) != 0 {
		t.Errorf("alloc waiver ignored: %v", Regressions(waived))
	}
	// Sub-half-alloc drift is amortized-setup noise, not a regression.
	noise := Diff(base, report("vm/x", 1000, 10.3), DiffOptions{})
	if len(Regressions(noise)) != 0 {
		t.Errorf("fractional alloc noise flagged: %v", Regressions(noise))
	}
	// On alloc-heavy entries the slack is relative (0.5%): runtime
	// background allocations scale with op duration, so fractional drift
	// grows with the baseline while a real leak still adds whole allocs.
	heavy := report("vm/x", 1000, 1000)
	if fs := Regressions(Diff(heavy, report("vm/x", 1000, 1004), DiffOptions{})); len(fs) != 0 {
		t.Errorf("sub-percent alloc drift flagged on heavy entry: %v", fs)
	}
	if fs := Regressions(Diff(heavy, report("vm/x", 1000, 1006), DiffOptions{})); len(fs) != 1 {
		t.Errorf("alloc growth beyond relative slack not gated: %v", fs)
	}
}

func TestDiffMissingAndNewEntries(t *testing.T) {
	base := &Report{Schema: Schema, Entries: []Measurement{
		{Name: "vm/x", NsPerOp: 1000},
		{Name: "vm/y", NsPerOp: 1000},
	}}
	cur := &Report{Schema: Schema, Entries: []Measurement{
		{Name: "vm/x", NsPerOp: 1000},
		{Name: "vm/z", NsPerOp: 1000},
	}}
	fs := Diff(base, cur, DiffOptions{})
	regs := Regressions(fs)
	if len(regs) != 1 || regs[0].Name != "vm/y" || regs[0].Metric != "presence" {
		t.Errorf("missing entry not flagged: %v", regs)
	}
	var sawNew bool
	for _, f := range fs {
		if f.Name == "vm/z" && f.Metric == "presence" && !f.Regression {
			sawNew = true
		}
	}
	if !sawNew {
		t.Error("new entry should appear as informational, not regression")
	}
	out := FormatDiff(fs)
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("formatted diff lacks regression marker:\n%s", out)
	}
}

// TestSuiteSerialParallelDeterminism runs the real pinned suite twice —
// serial and with a wide worker pool — and asserts every entry's Work
// signature is identical: runner parallelism must not leak into simulated
// results (per-entry VMs share no state, and the harness-backed entries
// dedup through the singleflight layer without changing outcomes).
func TestSuiteSerialParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pinned suite twice")
	}
	opts := Options{MinIters: 1, MinTime: time.Nanosecond}
	serial, err := RunSuite(Suite(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = 4
	parallel, err := RunSuite(Suite(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(parallel.Entries), len(serial.Entries); got != want {
		t.Fatalf("parallel entries = %d, serial = %d", got, want)
	}
	pb := parallel.ByName()
	for _, s := range serial.Entries {
		p, ok := pb[s.Name]
		if !ok {
			t.Errorf("%s missing from parallel run", s.Name)
			continue
		}
		if p.Work != s.Work {
			t.Errorf("%s: parallel work %+v != serial work %+v", s.Name, p.Work, s.Work)
		}
	}
	for i := range serial.Entries {
		if parallel.Entries[i].Name != serial.Entries[i].Name {
			t.Errorf("entry %d order differs: %s vs %s", i, parallel.Entries[i].Name, serial.Entries[i].Name)
		}
	}
}
