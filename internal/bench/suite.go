package bench

import (
	"fmt"
	"net"
	"net/http"

	"strider/internal/arch"
	"strider/internal/cfg"
	"strider/internal/core/jit"
	"strider/internal/core/ldg"
	"strider/internal/dataflow"
	"strider/internal/harness"
	"strider/internal/memsim"
	"strider/internal/oracle"
	"strider/internal/server"
	"strider/internal/static"
	"strider/internal/telemetry"
	"strider/internal/vm"
	"strider/internal/workloads"
)

// Suite returns the pinned benchmark suite. The entries are fixed: CI and
// the committed BENCH_<n>.json trajectory compare runs by name, so renaming
// or removing an entry is itself flagged as a regression by Diff. All
// entries use the small problem size — the point is a stable, fast signal
// on the hot path, not a re-run of the paper's evaluation.
func Suite() []Entry {
	return []Entry{
		// The full stack end to end: program build, JIT with object
		// inspection, memory simulation — the exact loop every grid cell,
		// oracle replay, and fuzz iteration pays.
		vmEntry("vm/jess-small", "jess"),
		vmEntry("vm/db-small", "db"),

		// The differential suite's reference side: the prefetch-blind naive
		// interpreter, fingerprint included.
		{Name: "oracle/jess-small", Make: func() (func() (Work, error), error) {
			w, err := workloads.ByName("jess")
			if err != nil {
				return nil, err
			}
			return func() (Work, error) {
				// Rebuilt each iteration: the oracle runs over the program's
				// own universe, so statics carry state between runs.
				prog := w.Build(workloads.SizeSmall)
				fp, err := oracle.Run(prog, nil, oracle.Config{HeapBytes: w.HeapBytes})
				if err != nil {
					return Work{}, err
				}
				if fp.Trap != oracle.TrapNone {
					return Work{}, fmt.Errorf("oracle trapped: %s", fp.Trap)
				}
				return Work{Instructions: fp.Loads, Checksum: fp.Checksum}, nil
			}, nil
		}},

		// Steady-state engine speed: one VM reused across iterations
		// (ResetRun between runs), so this isolates the interpreter +
		// memory-model loop from build and JIT costs. After the first
		// (warmup) iteration this path performs zero heap allocations.
		{Name: "interp/search-small-steady", Make: func() (func() (Work, error), error) {
			w, err := workloads.ByName("search")
			if err != nil {
				return nil, err
			}
			prog := w.Build(workloads.SizeSmall)
			v := vm.New(prog, vm.Config{Machine: arch.Pentium4(), Mode: jit.Baseline, HeapBytes: w.HeapBytes})
			// One untimed run so the JIT reaches steady state: the first
			// run compiles methods as they cross the invocation threshold
			// and so retires different (interpreted) cycle counts.
			if _, err := v.Run(nil); err != nil {
				return nil, err
			}
			return func() (Work, error) {
				v.ResetRun()
				s, err := v.Run(nil)
				if err != nil {
					return Work{}, err
				}
				return Work{Cycles: s.Cycles, Instructions: s.Instructions, Checksum: s.Checksum}, nil
			}, nil
		}},

		// The execution tier isolated: the same steady-state jess run on
		// the interpreter's step loop and on the threaded-code compiled
		// tier (internal/compile), with the memory hierarchy replaced by a
		// zero-latency model so host time measures instruction execution
		// rather than cache simulation (which both backends share
		// unchanged). The pair's Work signatures must be identical — the
		// backends simulate the same machine-level work — and the compiled
		// entry's ns/op is the tentpole's headline: the threaded tier must
		// hold a >=2x step over the interpreted twin.
		execEntry("exec/jess-small-interp", vm.ExecInterp),
		execEntry("exec/jess-small-compiled", vm.ExecCompiled),

		// The cache/TLB model alone: a strided load/store sweep with a
		// pointer-chase-like reuse pattern, no interpreter in the loop.
		// Deliberately pc-less (mem.Load): the default machine's hw model
		// is the pc-blind stream detector, which this entry is pinning;
		// the pc-indexed trainers get their own sites in hwEntry below.
		// Threading a site pc here would change the committed Work
		// signature for no extra coverage.
		{Name: "memsim/stride-sweep", Make: func() (func() (Work, error), error) {
			machine := arch.Pentium4()
			return func() (Work, error) {
				mem := memsim.New(machine)
				var now, sum uint64
				const n = 200_000
				addr := uint32(64)
				for i := 0; i < n; i++ {
					now += mem.Load(addr, 4, now)
					if i%4 == 0 {
						now += mem.Store(addr+16, 4, now)
					}
					if i%8 == 0 {
						mem.Prefetch(addr+512, i%16 == 0, now)
					}
					addr += 72 // object-sized stride, crosses lines and pages
					if addr >= 1<<24 {
						addr = 64
					}
				}
				sum = mem.C.LoadStallCycles + mem.C.StoreStallCycles
				return Work{Cycles: now, Instructions: mem.C.Loads + mem.C.Stores, Checksum: sum}, nil
			}, nil
		}},

		// The tentpole's inline hit lane in isolation: the same hierarchy
		// as stride-sweep, driven the way a specialized engine drives it —
		// LoadHit/StoreHit probe first, full LoadAt/Store only on a bail —
		// over a dense walk (sixteen 4-byte touches per 64-byte line) so
		// the probes' completed path dominates. One Memory is reused across
		// iterations (Reset, like an engine between runs), so after warmup
		// the loop allocates nothing — the alloc gate pins the lane itself
		// at zero. The checksum folds probe hits ^ probe bails ^ prefetch
		// arrivals, so the lane/fallback split and the prefetch machinery's
		// visibility are pinned by the diff gate, not just the speed.
		{Name: "memsim/hitlane", Make: func() (func() (Work, error), error) {
			mem := memsim.New(arch.Pentium4())
			return func() (Work, error) {
				mem.Reset()
				var now, hits, bails, arrivals uint64
				const n = 200_000
				addr := uint32(64)
				for i := 0; i < n; i++ {
					if stall, ok := mem.LoadHit(addr, now); ok {
						now, hits = now+stall, hits+1
					} else {
						now += mem.LoadAt(addr, 4, now, 7)
						bails++
					}
					if i%2 == 0 {
						if stall, ok := mem.StoreHit(addr+8, now); ok {
							now, hits = now+stall, hits+1
						} else {
							now += mem.Store(addr+8, 4, now)
							bails++
						}
					}
					if i%64 == 0 {
						if mem.Prefetch(addr+1024, false, now) == telemetry.PrefetchFetched {
							arrivals++
						}
					}
					addr += 4
					if addr >= 1<<22 {
						addr = 64
					}
				}
				return Work{Cycles: now, Instructions: mem.C.Loads + mem.C.Stores,
					Checksum: hits ^ bails ^ arrivals}, nil
			}, nil
		}},

		// The pc-indexed hardware-prefetcher trainers on the same sweep:
		// every L1 miss trains the model, so trainer overhead lands directly
		// on the simulation hot path. Checksum pins the model's issue count,
		// so a behaviour change fails before the diff gate is reached.
		hwEntry("memsim/ipstride-train", "ipstride"),
		hwEntry("memsim/multistride-train", "multistride"),

		// The experiment engine: one three-mode grid (BASELINE, INTER,
		// INTER+INTRA) scheduled through the harness worker pool. The
		// process cache is cleared each iteration so every cell really
		// executes; Work folds all three cells' cycles.
		{Name: "grid/compress-small-3modes", Make: func() (func() (Work, error), error) {
			specs := []harness.Spec{
				{Workload: "compress", Size: workloads.SizeSmall, Mode: jit.Baseline},
				{Workload: "compress", Size: workloads.SizeSmall, Mode: jit.Inter},
				{Workload: "compress", Size: workloads.SizeSmall, Mode: jit.InterIntra},
			}
			return func() (Work, error) {
				harness.ClearCache()
				results, err := harness.RunAll(specs)
				if err != nil {
					return Work{}, err
				}
				var w Work
				for _, r := range results {
					w.Cycles += r.Stats.Cycles
					w.Instructions += r.Stats.Instructions
					w.Checksum ^= r.Stats.Checksum
				}
				return w, nil
			}, nil
		}},

		// The execution service end to end: an in-process striderd (real TCP
		// listener, real HTTP client) driven by the load-generator engine.
		// A fixed request count over a fixed cell rotation makes the Work
		// signature deterministic — the checksum is an order-independent
		// sum-fold of every response's result checksum, so a single wrong
		// byte anywhere on the serving path (cache, singleflight, VM pool)
		// fails the run before the diff gate is reached.
		{Name: "server/throughput", Make: func() (func() (Work, error), error) {
			srv := server.New(server.Config{Shards: 4})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			go http.Serve(ln, srv)
			jobs := []server.Job{
				{Workload: "jess"},
				{Workload: "db", Mode: "baseline"},
				{Workload: "search", Mode: "inter"},
				{Workload: "fuzz:0x3"},
			}
			url := "http://" + ln.Addr().String()
			return func() (Work, error) {
				st, err := server.RunLoad(server.LoadOptions{
					URL: url, Jobs: jobs, Concurrency: 8, Requests: 512,
				})
				if err != nil {
					return Work{}, err
				}
				if st.Errors > 0 || st.Traps > 0 || st.Backpressure > 0 {
					return Work{}, fmt.Errorf("bench: load run degraded: %+v", st)
				}
				return Work{Instructions: st.Requests, Checksum: st.Checksum}, nil
			}, nil
		}},

		// The offline analyzer alone: the CFG/dataflow/LDG pipeline plus
		// static.Annotate over every loop of every jess method, no
		// execution. This is the compile-time cost a static-prediction
		// cell pays instead of inspection; the checksum folds every
		// predicted stride and co-allocation offset, so a prediction
		// change fails the diff gate even when the runtime is flat.
		{Name: "jit/static-analyze", Make: func() (func() (Work, error), error) {
			w, err := workloads.ByName("jess")
			if err != nil {
				return nil, err
			}
			prog := w.Build(workloads.SizeSmall)
			return func() (Work, error) {
				var work Work
				for _, m := range prog.Methods() {
					g := cfg.Build(m)
					f := cfg.BuildLoops(g)
					if len(f.Loops) == 0 {
						continue
					}
					df := dataflow.Reach(g)
					for _, loop := range f.Loops {
						lg := ldg.Build(m, g, df, loop, nil)
						if len(lg.Nodes) == 0 {
							continue
						}
						work.Cycles += static.Annotate(g, df, lg, nil)
						for _, n := range lg.Nodes {
							work.Instructions++
							if n.HasInter {
								work.Checksum = work.Checksum*1099511628211 + uint64(n.Inter)
							}
							for _, e := range n.Succs {
								if e.HasIntra {
									work.Checksum = work.Checksum*1099511628211 + uint64(e.Intra)
								}
							}
						}
					}
				}
				return work, nil
			}, nil
		}},

		// Per-workload cells under the paper's full algorithm — the list
		// mixes pointer-chasing, array-striding, and allocation-heavy
		// behaviour so a regression in any hot-path layer moves at least one.
		cellEntry("cell/mtrt-small-interintra", "mtrt", "Pentium4"),
		cellEntry("cell/euler-small-interintra", "euler", "AthlonMP"),
	}
}

// hwEntry builds a memory-model entry with the named hardware-prefetcher
// model: a deterministic multi-site load sweep (two strided walks and a
// compound +1/+3-line pattern) that keeps the trainer busy on every miss.
func hwEntry(name, model string) Entry {
	return Entry{Name: name, Make: func() (func() (Work, error), error) {
		m := *arch.Pentium4()
		m.HWPrefetcher = model
		return func() (Work, error) {
			mem := memsim.New(&m)
			var now uint64
			const n = 200_000
			for i := 0; i < n; i++ {
				step := uint32(i % 50_000)
				switch i % 4 {
				case 0: // dense ascending walk
					now += mem.LoadAt(64*step, 4, now, 1)
				case 1: // two-line stride
					now += mem.LoadAt(1<<26+256*step, 4, now, 2)
				case 2: // compound stride: lines +1, +3 alternating
					now += mem.LoadAt(1<<27+128*(step+2*(step/2)), 4, now, 3)
				case 3: // no stable site (the pc==0 fast path)
					now += mem.LoadAt(1<<28+8192*step, 4, now, 0)
				}
			}
			hw := mem.HWStats()
			return Work{Cycles: now, Instructions: mem.C.Loads, Checksum: hw.Issued ^ hw.Trains<<32}, nil
		}, nil
	}}
}

// flatMem is the zero-latency memory model the exec/* pair runs over:
// loads and stores complete instantly and prefetches report a fill. It
// keeps the architectural semantics (same values, same control flow,
// same retirement counts) while taking the — backend-independent —
// cache simulation out of the timed loop.
type flatMem struct{}

func (flatMem) LoadAt(addr, size uint32, now uint64, pc uint64) uint64 { return 0 }
func (flatMem) Store(addr, size uint32, now uint64) uint64             { return 0 }
func (flatMem) Prefetch(addr uint32, guarded bool, now uint64) telemetry.PrefetchOutcome {
	return telemetry.PrefetchFetched
}

// execEntry builds one side of the execution-tier pair: a steady-state
// jess run (one VM, JIT warmed, ResetRun between iterations) on the
// given backend over the zero-latency memory model.
func execEntry(name string, exec vm.Exec) Entry {
	return Entry{Name: name, Make: func() (func() (Work, error), error) {
		w, err := workloads.ByName("jess")
		if err != nil {
			return nil, err
		}
		prog := w.Build(workloads.SizeSmall)
		v := vm.New(prog, vm.Config{Machine: arch.Pentium4(), Mode: jit.InterIntra, HeapBytes: w.HeapBytes, Exec: exec})
		// SetMem, not a field write: it unpins the engine's devirtualized
		// fast lane along with the model, so every access really dispatches
		// through flatMem.
		v.Engine.SetMem(flatMem{})
		// One untimed run so the JIT reaches steady state.
		if _, err := v.Run(nil); err != nil {
			return nil, err
		}
		return func() (Work, error) {
			v.ResetRun()
			s, err := v.Run(nil)
			if err != nil {
				return Work{}, err
			}
			return Work{Cycles: s.Cycles, Instructions: s.Instructions, Checksum: s.Checksum}, nil
		}, nil
	}}
}

// vmEntry builds a full-stack entry: fresh program, fresh VM, one run.
func vmEntry(name, workload string) Entry {
	return Entry{Name: name, Make: func() (func() (Work, error), error) {
		w, err := workloads.ByName(workload)
		if err != nil {
			return nil, err
		}
		return func() (Work, error) {
			prog := w.Build(workloads.SizeSmall)
			v := vm.New(prog, vm.Config{Machine: arch.Pentium4(), Mode: jit.InterIntra, HeapBytes: w.HeapBytes})
			s, err := v.Run(nil)
			if err != nil {
				return Work{}, err
			}
			return Work{Cycles: s.Cycles, Instructions: s.Instructions, Checksum: s.Checksum}, nil
		}, nil
	}}
}

// cellEntry builds a measured-run entry (warmup + measured, the paper's
// methodology) on a fresh VM each iteration, bypassing the harness cache.
func cellEntry(name, workload, machine string) Entry {
	return Entry{Name: name, Make: func() (func() (Work, error), error) {
		w, err := workloads.ByName(workload)
		if err != nil {
			return nil, err
		}
		m := arch.ByName(machine)
		if m == nil {
			return nil, fmt.Errorf("bench: unknown machine %q", machine)
		}
		return func() (Work, error) {
			prog := w.Build(workloads.SizeSmall)
			v := vm.New(prog, vm.Config{Machine: m, Mode: jit.InterIntra, HeapBytes: w.HeapBytes})
			s, err := v.Measure(nil, 1)
			if err != nil {
				return Work{}, err
			}
			return Work{Cycles: s.Cycles, Instructions: s.Instructions, Checksum: s.Checksum}, nil
		}, nil
	}}
}
