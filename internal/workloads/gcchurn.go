// gcchurn is the dedicated workload of the garbage-collection ablation.
// It is not part of the Table 3 suite (it is registered separately via
// GCChurn) — it exists to demonstrate the paper's observation that the
// collector's *sliding compaction* is what keeps intra-iteration strides
// alive (Sec. 4):
//
//	"Live objects are packed by sliding compaction, which does not change
//	their internal order on the heap. Thus, the garbage collector usually
//	preserves constant strides among the live objects."
//
// The program allocates record clusters interleaved with short-lived
// garbage, runs through a collection, allocates a second batch of
// clusters, and then repeatedly scans all records through their payload
// arrays. Under sliding compaction the second batch is allocated from the
// compacted frontier, so every cluster stays contiguous and INTER+INTRA
// prefetching fires; under the non-moving free-list collector the second
// batch is carved from fragmented holes, the record-to-payload distances
// become irregular, the 75% majority test fails, and intra-iteration
// prefetching evaporates.
package workloads

import (
	"strider/internal/classfile"
	"strider/internal/ir"
	"strider/internal/value"
)

// GCChurn is the ablation workload. HeapBytes is sized so the build phase
// triggers at least one collection between the two batches.
var GCChurn = &Workload{
	Name:        "gcchurn",
	Suite:       "ablation",
	Description: "stride survival across garbage collection",
	HeapBytes:   800 << 10,
	Build:       buildGCChurn,
}

func gcChurnParams(size Size) (int32, int32) {
	if size == SizeFull {
		return 2600, 12 // records per batch, scan rounds
	}
	return 2600, 4
}

func buildGCChurn(size Size) *ir.Program {
	batch, rounds := gcChurnParams(size)

	u := classfile.NewUniverse()
	// 72-byte records so the record-to-payload distance exceeds the cache
	// line (otherwise the intra prefetch would be line-deduped anyway).
	recClass := u.MustDefineClass("Rec", nil,
		classfile.FieldSpec{Name: "key", Kind: value.KindInt},
		classfile.FieldSpec{Name: "data", Kind: value.KindRef},
		classfile.FieldSpec{Name: "p0", Kind: value.KindLong},
		classfile.FieldSpec{Name: "p1", Kind: value.KindLong},
		classfile.FieldSpec{Name: "p2", Kind: value.KindLong},
		classfile.FieldSpec{Name: "p3", Kind: value.KindLong},
		classfile.FieldSpec{Name: "p4", Kind: value.KindLong},
		classfile.FieldSpec{Name: "p5", Kind: value.KindLong},
	)
	fKey := recClass.FieldByName("key")
	fData := recClass.FieldByName("data")

	p := ir.NewProgram(u)

	// ::newRec(k) -> Rec — cluster: Rec then its int[20] payload (96 B).
	newRec := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "newRec", value.KindRef, value.KindInt)
		k := b.Param(0)
		r := b.New(recClass)
		b.PutField(r, fKey, k)
		twenty := b.ConstInt(20)
		d := b.NewArray(value.KindInt, twenty)
		b.PutField(r, fData, d)
		zero := b.ConstInt(0)
		b.ArrayStore(value.KindInt, d, zero, k)
		b.Return(r)
		return b.Finish()
	}()

	// ::scan(arr, start, n) -> int — the prefetchable loop over
	// arr[start..n): the window holding equal parts pre- and post-GC
	// clusters. The array is shuffled, so only dereference-based +
	// intra-iteration prefetching can help.
	scan := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "scan", value.KindInt,
			value.KindRef, value.KindInt, value.KindInt)
		arr, start, n := b.Param(0), b.Param(1), b.Param(2)
		acc := b.ConstInt(0)
		zero := b.ConstInt(0)
		i := b.NewReg()
		b.MoveTo(i, start)
		cond := b.NewLabel()
		body := b.NewLabel()
		b.Goto(cond)
		b.Bind(body)
		endI := func() {
			b.IncInt(i, 1)
			b.Bind(cond)
			b.Br(value.KindInt, ir.CondLT, i, n, body)
		}
		r := b.ArrayLoad(value.KindRef, arr, i) // Lx: inter stride 4
		d := b.GetField(r, fData)               // Ly: no inter
		x := b.ArrayLoad(value.KindInt, d, zero)
		k := b.GetField(r, fKey)
		s := b.Arith(ir.OpAdd, value.KindInt, x, k)
		b.ArithTo(acc, ir.OpXor, value.KindInt, acc, s)
		endI()
		b.Return(acc)
		return b.Finish()
	}()

	// ::main() -> int
	{
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		// All batch-1 records stay live (so the collector's holes are
		// exactly the garbage chunks); the scanned window [batch/2, 3/2
		// batch) holds equal parts pre-GC and post-GC clusters — under
		// the free-list collector the intra-stride samples then fail the
		// 75% majority decisively.
		n := b.ConstInt(batch + batch/2)
		arr := b.NewArray(value.KindRef, n)
		half := b.ConstInt(batch)
		quarter := b.ConstInt(batch / 2)

		// Batch 1: clusters with interleaved short-lived garbage of
		// varying size (88..160 bytes). The garbage is what the collection
		// reclaims; the varying hole sizes guarantee that the free-list
		// collector cannot place a whole cluster in one hole, so batch 2's
		// record-to-payload distances become irregular.
		i, end1 := forInt(b, 0, half)
		r := b.Call(newRec, i)
		b.ArrayStore(value.KindRef, arr, i, r)
		three := b.ConstInt(3)
		six := b.ConstInt(6)
		base18 := b.ConstInt(18)
		m0 := b.Arith(ir.OpAnd, value.KindInt, i, three)
		m1 := b.Arith(ir.OpMul, value.KindInt, m0, six)
		gsz := b.Arith(ir.OpAdd, value.KindInt, base18, m1)
		g := b.NewArray(value.KindInt, gsz)
		zero := b.ConstInt(0)
		b.ArrayStore(value.KindInt, g, zero, i)
		end1()

		// Batch 2: allocated after the collection that the garbage
		// forced (heap sizing guarantees it).
		j, end2 := forInt(b, 0, quarter)
		k2 := b.AddInt(j, half)
		r2 := b.Call(newRec, k2)
		b.ArrayStore(value.KindRef, arr, k2, r2)
		end2()

		// Shuffle within the scan window [batch/2, n) so the scan's
		// record loads have no inter-iteration stride.
		seed := b.ConstInt(31415)
		s2, endS := forInt(b, 0, half)
		sIdx := b.AddInt(s2, quarter)
		rr := emitLCGStep(b, seed, 0x7FFFFFF)
		kk0 := b.Arith(ir.OpRem, value.KindInt, rr, half)
		kk := b.AddInt(kk0, quarter)
		a0 := b.ArrayLoad(value.KindRef, arr, sIdx)
		a1 := b.ArrayLoad(value.KindRef, arr, kk)
		b.ArrayStore(value.KindRef, arr, sIdx, a1)
		b.ArrayStore(value.KindRef, arr, kk, a0)
		endS()

		total := b.ConstInt(0)
		nr := b.ConstInt(rounds)
		q, endQ := forInt(b, 0, nr)
		_ = q
		v := b.Call(scan, arr, quarter, n)
		b.ArithTo(total, ir.OpXor, value.KindInt, total, v)
		endQ()
		b.Sink(total)
		b.Return(total)
		p.Entry = b.Finish()
	}
	return p
}

func init() {
	registerExtra(GCChurn)
}
