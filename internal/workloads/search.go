// The JavaGrande Search analog: alpha-beta pruned game-tree search over a
// small board with a transposition table.
//
// Like compress and javac, Search "does not contain code fragments where
// either intra- or inter-iteration stride prefetching are applicable"
// (Sec. 4): its state is a small board (cache resident), its recursion
// keeps loads out of loops, and its transposition-table probes are at
// hash-distributed (pattern-free) addresses.
package workloads

import (
	"strider/internal/classfile"
	"strider/internal/ir"
	"strider/internal/value"
)

func searchParams(size Size) (int32, int32) {
	if size == SizeFull {
		return 9, 1 << 15 // search depth, transposition table entries
	}
	return 7, 1 << 12
}

func buildSearch(size Size) *ir.Program {
	depth, ttSize := searchParams(size)
	const cols = 7

	u := classfile.NewUniverse()
	gameClass := u.MustDefineClass("Game", nil,
		classfile.FieldSpec{Name: "heights", Kind: value.KindRef},
		classfile.FieldSpec{Name: "tt", Kind: value.KindRef},
		classfile.FieldSpec{Name: "nodes", Kind: value.KindInt, Static: true},
	)
	fHeights := gameClass.FieldByName("heights")
	fTT := gameClass.FieldByName("tt")
	fNodes := gameClass.FieldByName("nodes")

	p := ir.NewProgram(u)

	// ::negamax(g, depth, hash, alpha) -> int
	var negamax *ir.Method
	{
		b := ir.NewBuilder(p, nil, "negamax", value.KindInt,
			value.KindRef, value.KindInt, value.KindInt, value.KindInt)
		g, d, hash, alpha := b.Param(0), b.Param(1), b.Param(2), b.Param(3)
		nodes := b.GetStatic(fNodes)
		one := b.ConstInt(1)
		n2 := b.Arith(ir.OpAdd, value.KindInt, nodes, one)
		b.PutStatic(fNodes, n2)

		leaf := b.NewLabel()
		zero := b.ConstInt(0)
		b.Br(value.KindInt, ir.CondLE, d, zero, leaf)

		// Transposition-table probe at a hash-distributed address.
		tt := b.GetField(g, fTT)
		mask := b.ConstInt(ttSize - 1)
		idx := b.Arith(ir.OpAnd, value.KindInt, hash, mask)
		hit := b.ArrayLoad(value.KindInt, tt, idx) // pattern-free
		useHit := b.NewLabel()
		b.Br(value.KindInt, ir.CondEQ, hit, hash, useHit)

		heights := b.GetField(g, fHeights)
		best := b.NewReg()
		b.SetInt(best, -30000)
		// Pruned width: deep plies explore two candidate moves, shallow
		// plies four (the effect of alpha-beta move ordering).
		width := b.NewReg()
		b.SetInt(width, 4)
		fourW := b.NewLabel()
		b.Br(value.KindInt, ir.CondLE, d, b.ConstInt(4), fourW)
		b.SetInt(width, 2)
		b.Bind(fourW)
		c, endC := forInt(b, 0, width)
		h := b.ArrayLoad(value.KindInt, heights, c) // small board: cache hot
		full := b.NewLabel()
		six := b.ConstInt(6)
		b.Br(value.KindInt, ir.CondGE, h, six, full)
		// make move
		h1 := b.Arith(ir.OpAdd, value.KindInt, h, one)
		b.ArrayStore(value.KindInt, heights, c, h1)
		dm1 := b.Arith(ir.OpSub, value.KindInt, d, one)
		m1 := b.ConstInt(31)
		hh0 := b.Arith(ir.OpMul, value.KindInt, hash, m1)
		cc := b.Arith(ir.OpAdd, value.KindInt, c, h1)
		hh := b.Arith(ir.OpXor, value.KindInt, hh0, cc)
		na := b.Neg(value.KindInt, alpha)
		sub := b.Call(b.Self(), g, dm1, hh, na)
		score := b.Neg(value.KindInt, sub)
		// unmake move
		b.ArrayStore(value.KindInt, heights, c, h)
		keep := b.NewLabel()
		b.Br(value.KindInt, ir.CondLE, score, best, keep)
		b.MoveTo(best, score)
		b.Bind(keep)
		b.Bind(full)
		endC()
		b.ArrayStore(value.KindInt, tt, idx, hash)
		b.Return(best)

		b.Bind(useHit)
		m2 := b.ConstInt(255)
		ev0 := b.Arith(ir.OpAnd, value.KindInt, hash, m2)
		b.Return(ev0)

		b.Bind(leaf)
		m3 := b.ConstInt(127)
		ev := b.Arith(ir.OpAnd, value.KindInt, hash, m3)
		b.Return(ev)
		negamax = b.Finish()
	}

	// ::main() -> int
	{
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		g := b.New(gameClass)
		nc := b.ConstInt(cols)
		heights := b.NewArray(value.KindInt, nc)
		b.PutField(g, fHeights, heights)
		ts := b.ConstInt(ttSize)
		tt := b.NewArray(value.KindInt, ts)
		b.PutField(g, fTT, tt)

		total := b.ConstInt(0)
		d := b.ConstInt(depth)
		four := b.ConstInt(4)
		i, endI := forInt(b, 0, four)
		h0 := b.Arith(ir.OpMul, value.KindInt, i, b.ConstInt(7907))
		alpha := b.ConstInt(-29000)
		v := b.Call(negamax, g, d, h0, alpha)
		b.ArithTo(total, ir.OpXor, value.KindInt, total, v)
		endI()
		nodes := b.GetStatic(fNodes)
		b.Sink(nodes)
		b.Sink(total)
		b.Return(total)
		p.Entry = b.Finish()
	}
	return p
}

func init() {
	register(&Workload{
		Name:             "search",
		Suite:            "JavaGrande",
		Description:      "Alpha-beta pruned search",
		PaperCompiledPct: 73.4,
		Build:            buildSearch,
	})
}
