// The JavaGrande MolDyn analog: molecular dynamics over a one-dimensional
// array of molecule objects.
//
// The paper's key observation (Sec. 4): "the main data structure of MolDyn
// is a one-dimensional array of molecule objects that fits in the L2 cache
// given the problem size in this experiment", so prefetching into the L2
// (the Pentium 4's prefetch target) buys nothing, while on the Athlon MP —
// where software prefetch fills the L1 — "both algorithms achieved small
// speedups, since the molecule objects are prefetched into the L1 cache."
// The molecule array is sized between the two machines' L1 and L2
// capacities to reproduce exactly that asymmetry.
package workloads

import (
	"strider/internal/classfile"
	"strider/internal/ir"
	"strider/internal/value"
)

func moldynParams(size Size) (int32, int32) {
	if size == SizeFull {
		return 1100, 2 // molecules (1100 * 80 B = 88 KB: > 64 KB L1, < 256 KB L2), timesteps
	}
	return 300, 1
}

func buildMoldyn(size Size) *ir.Program {
	nMol, nSteps := moldynParams(size)

	u := classfile.NewUniverse()
	molClass := u.MustDefineClass("Molecule", nil,
		classfile.FieldSpec{Name: "x", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "y", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "z", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "fx", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "fy", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "fz", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "m", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "q", Kind: value.KindDouble},
	) // 80-byte molecules
	fX := molClass.FieldByName("x")
	fY := molClass.FieldByName("y")
	fZ := molClass.FieldByName("z")
	fFX := molClass.FieldByName("fx")

	p := ir.NewProgram(u)

	// ::forces(mols, n, i) -> double — the pairwise force inner loop for
	// particle i against all j > i. Molecule objects are consecutive in
	// allocation order, so the field loads stride by 80 bytes.
	forces := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "forces", value.KindDouble,
			value.KindRef, value.KindInt, value.KindInt)
		mols, n, iIdx := b.Param(0), b.Param(1), b.Param(2)
		mi := b.ArrayLoad(value.KindRef, mols, iIdx)
		xi := b.GetField(mi, fX)
		yi := b.GetField(mi, fY)
		zi := b.GetField(mi, fZ)
		acc := b.ConstDouble(0)
		one := b.ConstDouble(1)

		j := b.Arith(ir.OpAdd, value.KindInt, iIdx, b.ConstInt(1))
		cond := b.NewLabel()
		body := b.NewLabel()
		b.Goto(cond)
		b.Bind(body)
		mj := b.ArrayLoad(value.KindRef, mols, j)
		xj := b.GetField(mj, fX) // inter stride 80: prefetched
		yj := b.GetField(mj, fY)
		zj := b.GetField(mj, fZ)
		dx := b.Arith(ir.OpSub, value.KindDouble, xi, xj)
		dy := b.Arith(ir.OpSub, value.KindDouble, yi, yj)
		dz := b.Arith(ir.OpSub, value.KindDouble, zi, zj)
		dx2 := b.Arith(ir.OpMul, value.KindDouble, dx, dx)
		dy2 := b.Arith(ir.OpMul, value.KindDouble, dy, dy)
		dz2 := b.Arith(ir.OpMul, value.KindDouble, dz, dz)
		r0 := b.Arith(ir.OpAdd, value.KindDouble, dx2, dy2)
		r1 := b.Arith(ir.OpAdd, value.KindDouble, r0, dz2)
		r2 := b.Arith(ir.OpAdd, value.KindDouble, r1, one)
		f := b.Arith(ir.OpDiv, value.KindDouble, one, r2)
		b.ArithTo(acc, ir.OpAdd, value.KindDouble, acc, f)
		b.IncInt(j, 1)
		b.Bind(cond)
		b.Br(value.KindInt, ir.CondLT, j, n, body)
		b.PutField(mi, fFX, acc)
		b.Return(acc)
		return b.Finish()
	}()

	// ::main() -> int
	{
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		n := b.ConstInt(nMol)
		mols := b.NewArray(value.KindRef, n)

		scale := b.ConstDouble(0.001)
		i, endBuild := forInt(b, 0, n)
		m := b.New(molClass)
		fi := b.Conv(value.KindDouble, i)
		x := b.Arith(ir.OpMul, value.KindDouble, fi, scale)
		b.PutField(m, fX, x)
		y := b.Arith(ir.OpMul, value.KindDouble, x, x)
		b.PutField(m, fY, y)
		z := b.Arith(ir.OpAdd, value.KindDouble, x, y)
		b.PutField(m, fZ, z)
		b.ArrayStore(value.KindRef, mols, i, m)
		endBuild()

		total := b.ConstDouble(0)
		ns := b.ConstInt(nSteps)
		s, endS := forInt(b, 0, ns)
		_ = s
		ii, endII := forInt(b, 0, n)
		f := b.Call(forces, mols, n, ii)
		b.ArithTo(total, ir.OpAdd, value.KindDouble, total, f)
		endII()
		endS()
		b.Sink(total)
		zero := b.ConstInt(0)
		b.Return(zero)
		p.Entry = b.Finish()
	}
	return p
}

func init() {
	register(&Workload{
		Name:             "moldyn",
		Suite:            "JavaGrande",
		Description:      "Molecular dynamics simulation",
		PaperCompiledPct: 85.4,
		Build:            buildMoldyn,
	})
}
