// The _228_jack analog: a parser generator — token interning into hash
// chains with heavy short-lived allocation.
//
// jack's time is dominated by parsing machinery and allocation, with only
// 36.2% of it in compiled code (Table 3); its pointer chasing follows hash
// chains whose node order is effectively random, so no stride patterns
// pass the 75% majority test and stride prefetching leaves it unchanged.
// The analog interns pseudo-random tokens into buckets (chains in random
// interleaving), allocates parser scratch per token (garbage that forces
// collections on a small heap), and then sums over the chains.
package workloads

import (
	"strider/internal/classfile"
	"strider/internal/ir"
	"strider/internal/value"
)

func jackParams(size Size) (int32, int32) {
	if size == SizeFull {
		return 60000, 1 << 10 // tokens, buckets
	}
	return 6000, 1 << 8
}

func buildJack(size Size) *ir.Program {
	nTokens, nBuckets := jackParams(size)

	u := classfile.NewUniverse()
	nodeClass := u.MustDefineClass("TokenNode", nil,
		classfile.FieldSpec{Name: "val", Kind: value.KindInt},
		classfile.FieldSpec{Name: "count", Kind: value.KindInt},
		classfile.FieldSpec{Name: "next", Kind: value.KindRef},
	)
	fVal := nodeClass.FieldByName("val")
	fCount := nodeClass.FieldByName("count")
	fNext := nodeClass.FieldByName("next")

	p := ir.NewProgram(u)

	// ::intern(buckets, h, val) -> void — find val in chain h or prepend a
	// new node. The chain walk is pattern-free pointer chasing.
	intern := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "intern", value.KindInvalid,
			value.KindRef, value.KindInt, value.KindInt)
		buckets, h, val := b.Param(0), b.Param(1), b.Param(2)
		head := b.ArrayLoad(value.KindRef, buckets, h)
		cur := b.NewReg()
		b.MoveTo(cur, head)
		null := b.ConstNull()
		loop := b.Here()
		miss := b.NewLabel()
		found := b.NewLabel()
		next := b.NewLabel()
		b.Br(value.KindRef, ir.CondEQ, cur, null, miss)
		v := b.GetField(cur, fVal) // chain chase: no stride pattern
		b.Br(value.KindInt, ir.CondEQ, v, val, found)
		nx := b.GetField(cur, fNext)
		b.MoveTo(cur, nx)
		b.Goto(loop)
		b.Bind(found)
		c := b.GetField(cur, fCount)
		one := b.ConstInt(1)
		c2 := b.Arith(ir.OpAdd, value.KindInt, c, one)
		b.PutField(cur, fCount, c2)
		b.Goto(next)
		b.Bind(miss)
		n := b.New(nodeClass)
		b.PutField(n, fVal, val)
		one2 := b.ConstInt(1)
		b.PutField(n, fCount, one2)
		b.PutField(n, fNext, head)
		b.ArrayStore(value.KindRef, buckets, h, n)
		b.Bind(next)
		b.ReturnVoid()
		return b.Finish()
	}()

	// ::scanChains(buckets, nb) -> int — fold counts over all chains.
	scanChains := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "scanChains", value.KindInt,
			value.KindRef, value.KindInt)
		buckets, nb := b.Param(0), b.Param(1)
		acc := b.ConstInt(0)
		null := b.ConstNull()
		h, endH := forInt(b, 0, nb)
		cur := b.NewReg()
		b.ArrayLoadTo(cur, value.KindRef, buckets, h)
		walk := b.Here()
		done := b.NewLabel()
		b.Br(value.KindRef, ir.CondEQ, cur, null, done)
		v := b.GetField(cur, fVal)
		c := b.GetField(cur, fCount)
		vc := b.Arith(ir.OpMul, value.KindInt, v, c)
		b.ArithTo(acc, ir.OpXor, value.KindInt, acc, vc)
		nx := b.GetField(cur, fNext)
		b.MoveTo(cur, nx)
		b.Goto(walk)
		b.Bind(done)
		endH()
		b.Return(acc)
		return b.Finish()
	}()

	// ::main() -> int
	{
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		nb := b.ConstInt(nBuckets)
		buckets := b.NewArray(value.KindRef, nb)
		mask := nBuckets - 1

		seed := b.ConstInt(777)
		scratchLen := b.ConstInt(24)
		n := b.ConstInt(nTokens)
		i, endI := forInt(b, 0, n)
		tok := emitLCGStep(b, seed, 0x3FFF)
		h := b.Arith(ir.OpAnd, value.KindInt, tok, b.ConstInt(mask))
		// Parser scratch: garbage that pressures the collector.
		scratch := b.NewArray(value.KindInt, scratchLen)
		zero := b.ConstInt(0)
		b.ArrayStore(value.KindInt, scratch, zero, tok)
		b.Call(intern, buckets, h, tok)
		endI()
		_ = i

		sum := b.Call(scanChains, buckets, nb)
		b.Sink(sum)
		b.Return(sum)
		p.Entry = b.Finish()
	}
	return p
}

func init() {
	register(&Workload{
		Name:             "jack",
		Suite:            "SPECjvm98",
		Description:      "Java parser generator",
		PaperCompiledPct: 36.2,
		HeapBytes:        3 << 20,
		Build:            buildJack,
	})
}
