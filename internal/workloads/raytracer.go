// The JavaGrande RayTracer analog: a 3-D ray tracer whose spheres hold
// *references* to co-allocated vector objects — the intra-iteration
// opportunity mtrt (inlined fields) does not have.
//
// The scene array is shuffled after construction (spatial sorting in the
// real tracer), so sphere field loads have no inter-iteration stride; only
// the scene aaload does. INTER therefore finds nothing effective, while
// INTER+INTRA performs dereference-based prefetching through the scene
// array plus intra-iteration prefetches of each sphere's co-allocated
// center and colour vectors. The paper observes an asymmetric outcome —
// improvement on the Pentium 4, slight degradation on the Athlon MP
// (Sec. 4, "an anomaly").
package workloads

import (
	"strider/internal/classfile"
	"strider/internal/ir"
	"strider/internal/value"
)

func raytracerParams(size Size) (int32, int32) {
	if size == SizeFull {
		return 4200, 55 // spheres, rays
	}
	return 800, 10
}

func buildRaytracer(size Size) *ir.Program {
	nSpheres, nRays := raytracerParams(size)

	u := classfile.NewUniverse()
	vecClass := u.MustDefineClass("Vec3", nil,
		classfile.FieldSpec{Name: "x", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "y", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "z", Kind: value.KindDouble},
	) // 40 bytes
	sphClass := u.MustDefineClass("Sphere", nil,
		classfile.FieldSpec{Name: "center", Kind: value.KindRef},
		classfile.FieldSpec{Name: "color", Kind: value.KindRef},
		classfile.FieldSpec{Name: "r2", Kind: value.KindDouble},
	) // 32 bytes; cluster = 32 + 40 + 40 = 112 bytes
	fX := vecClass.FieldByName("x")
	fY := vecClass.FieldByName("y")
	fZ := vecClass.FieldByName("z")
	fCenter := sphClass.FieldByName("center")
	fColor := sphClass.FieldByName("color")
	fR2 := sphClass.FieldByName("r2")

	p := ir.NewProgram(u)

	// ::bounce(table, idx, depth) -> double — the recursive method invoked
	// from the target loop. The paper attributes RayTracer's asymmetric
	// result to exactly this shape: "One of the target loops of RayTracer
	// contains an invocation of a recursive method" (Sec. 4). The
	// recursion has its own working set (the radiance table), which
	// competes with the prefetched scene data in the L1.
	var bounce *ir.Method
	{
		const tblMask = 4095 // 4096 doubles = 32 KB
		b := ir.NewBuilder(p, nil, "bounce", value.KindDouble,
			value.KindRef, value.KindInt, value.KindInt)
		table, idx, depth := b.Param(0), b.Param(1), b.Param(2)
		mask := b.ConstInt(tblMask)
		i := b.Arith(ir.OpAnd, value.KindInt, idx, mask)
		x := b.ArrayLoad(value.KindDouble, table, i)
		leaf := b.NewLabel()
		zero := b.ConstInt(0)
		b.Br(value.KindInt, ir.CondLE, depth, zero, leaf)
		m := b.ConstInt(31)
		i2a := b.Arith(ir.OpMul, value.KindInt, idx, m)
		seven := b.ConstInt(7)
		i2 := b.Arith(ir.OpAdd, value.KindInt, i2a, seven)
		one := b.ConstInt(1)
		d2 := b.Arith(ir.OpSub, value.KindInt, depth, one)
		sub := b.Call(b.Self(), table, i2, d2)
		half := b.ConstDouble(0.5)
		att := b.Arith(ir.OpMul, value.KindDouble, sub, half)
		r := b.Arith(ir.OpAdd, value.KindDouble, x, att)
		b.Return(r)
		b.Bind(leaf)
		b.Return(x)
		bounce = b.Finish()
	}

	// ::newSphere(i) -> Sphere — co-allocates Sphere, center, colour.
	newSphere := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "newSphere", value.KindRef, value.KindInt)
		i := b.Param(0)
		s := b.New(sphClass)
		c := b.New(vecClass)
		b.PutField(s, fCenter, c)
		col := b.New(vecClass)
		b.PutField(s, fColor, col)
		fi := b.Conv(value.KindDouble, i)
		scale := b.ConstDouble(0.05)
		x := b.Arith(ir.OpMul, value.KindDouble, fi, scale)
		b.PutField(c, fX, x)
		y := b.Arith(ir.OpMul, value.KindDouble, x, scale)
		b.PutField(c, fY, y)
		b.PutField(c, fZ, fi)
		one := b.ConstDouble(1)
		cr := b.Arith(ir.OpDiv, value.KindDouble, one, b.Arith(ir.OpAdd, value.KindDouble, fi, one))
		b.PutField(col, fX, cr)
		b.PutField(col, fY, cr)
		b.PutField(col, fZ, cr)
		r2 := b.ConstDouble(4000)
		b.PutField(s, fR2, r2)
		b.Return(s)
		return b.Finish()
	}()

	// ::shade(scene, n, table, ox, oy) -> double — scan the scene,
	// accumulate shading for hits through the co-allocated center/colour
	// vectors, with a recursive bounce per hit.
	shade := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "shade", value.KindDouble,
			value.KindRef, value.KindInt, value.KindRef,
			value.KindDouble, value.KindDouble)
		scene, n, table := b.Param(0), b.Param(1), b.Param(2)
		ox, oy := b.Param(3), b.Param(4)
		acc := b.ConstDouble(0)
		one := b.ConstDouble(1)

		s, endS := forInt(b, 0, n)
		sp := b.ArrayLoad(value.KindRef, scene, s) // Lx: inter stride 4
		c := b.GetField(sp, fCenter)               // Ly: no inter (shuffled scene)
		cx := b.GetField(c, fX)                    // Lz: intra +? within cluster
		cy := b.GetField(c, fY)
		dx := b.Arith(ir.OpSub, value.KindDouble, cx, ox)
		dy := b.Arith(ir.OpSub, value.KindDouble, cy, oy)
		dx2 := b.Arith(ir.OpMul, value.KindDouble, dx, dx)
		dy2 := b.Arith(ir.OpMul, value.KindDouble, dy, dy)
		d2 := b.Arith(ir.OpAdd, value.KindDouble, dx2, dy2)
		r2 := b.GetField(sp, fR2)
		miss := b.NewLabel()
		b.Br(value.KindDouble, ir.CondGT, d2, r2, miss)
		col := b.GetField(sp, fColor) // intra with Ly (colour vec co-allocated)
		cr := b.GetField(col, fX)
		cg := b.GetField(col, fY)
		den := b.Arith(ir.OpAdd, value.KindDouble, d2, one)
		lum := b.Arith(ir.OpAdd, value.KindDouble, cr, cg)
		sc := b.Arith(ir.OpDiv, value.KindDouble, lum, den)
		depth := b.ConstInt(8)
		seed := b.Arith(ir.OpMul, value.KindInt, s, b.ConstInt(2654435))
		ind := b.Call(bounce, table, seed, depth)
		lit := b.Arith(ir.OpMul, value.KindDouble, sc, ind)
		b.ArithTo(acc, ir.OpAdd, value.KindDouble, acc, lit)
		b.Bind(miss)
		endS()
		b.Return(acc)
		return b.Finish()
	}()

	// ::main() -> int
	{
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		n := b.ConstInt(nSpheres)
		scene := b.NewArray(value.KindRef, n)

		i, endBuild := forInt(b, 0, n)
		sp := b.Call(newSphere, i)
		b.ArrayStore(value.KindRef, scene, i, sp)
		endBuild()

		// Spatial shuffle: the tracer orders objects by bounding volume,
		// not allocation order.
		seed := b.ConstInt(424242)
		j, endShuffle := forInt(b, 0, n)
		r1 := emitLCGStep(b, seed, 0x7FFFFFF)
		k := b.Arith(ir.OpRem, value.KindInt, r1, n)
		a0 := b.ArrayLoad(value.KindRef, scene, j)
		a1 := b.ArrayLoad(value.KindRef, scene, k)
		b.ArrayStore(value.KindRef, scene, j, a1)
		b.ArrayStore(value.KindRef, scene, k, a0)
		endShuffle()

		// Radiance table for the recursive bounces.
		tlen := b.ConstInt(4096)
		table := b.NewArray(value.KindDouble, tlen)
		dot1 := b.ConstDouble(0.001)
		ti, endTI := forInt(b, 0, tlen)
		fti := b.Conv(value.KindDouble, ti)
		tv := b.Arith(ir.OpMul, value.KindDouble, fti, dot1)
		b.ArrayStore(value.KindDouble, table, ti, tv)
		endTI()

		total := b.ConstDouble(0)
		nr := b.ConstInt(nRays)
		q, endQ := forInt(b, 0, nr)
		fq := b.Conv(value.KindDouble, q)
		half := b.ConstDouble(0.5)
		oy := b.Arith(ir.OpMul, value.KindDouble, fq, half)
		v := b.Call(shade, scene, n, table, fq, oy)
		b.ArithTo(total, ir.OpAdd, value.KindDouble, total, v)
		endQ()
		b.Sink(total)
		zero := b.ConstInt(0)
		b.Return(zero)
		p.Entry = b.Finish()
	}
	return p
}

func init() {
	register(&Workload{
		Name:             "raytracer",
		Suite:            "JavaGrande",
		Description:      "3D ray tracer",
		PaperCompiledPct: 79.8,
		Build:            buildRaytracer,
	})
}
