// Package workloads defines the benchmark programs of the evaluation:
// IR analogs of the SPECjvm98 suite and Section 3 of the JavaGrande v2.0
// suite (Table 3 of the paper). Each analog reproduces the memory-access
// structure Sec. 4 attributes the corresponding benchmark's behaviour to —
// see the per-file comments — at a scaled-down size that exceeds the
// simulated caches where the paper's analysis requires it.
package workloads

import (
	"fmt"
	"sort"

	"strider/internal/ir"
)

// Size selects the problem scale.
type Size int

// The problem scales.
const (
	// SizeSmall keeps unit/integration tests fast.
	SizeSmall Size = iota
	// SizeFull is the evaluation scale used by the benchmark harness.
	SizeFull
)

// String returns "small" or "full".
func (s Size) String() string {
	if s == SizeFull {
		return "full"
	}
	return "small"
}

// Workload is one benchmark program.
type Workload struct {
	Name        string
	Suite       string // "SPECjvm98" or "JavaGrande"
	Description string // Table 3 description

	// PaperCompiledPct is Table 3's "Compiled code (%)" column.
	PaperCompiledPct float64

	// HeapBytes, when non-zero, is the simulated heap size the workload
	// wants (allocation-heavy analogs use a small heap so the collector
	// runs, reproducing their lower compiled-code fractions).
	HeapBytes uint32

	// Build constructs a fresh program (universe + methods) at the given
	// size. Programs are single-entry and take no arguments.
	Build func(size Size) *ir.Program
}

var registry []*Workload
var byName = map[string]*Workload{}

func register(w *Workload) *Workload {
	registerExtra(w)
	registry = append(registry, w)
	return w
}

// registerExtra makes a workload addressable by name without adding it to
// the Table 3 suite (used by ablation-only workloads).
func registerExtra(w *Workload) *Workload {
	if _, dup := byName[w.Name]; dup {
		panic("workloads: duplicate " + w.Name)
	}
	byName[w.Name] = w
	return w
}

// All returns the workloads in Table 3 order.
func All() []*Workload { return registry }

// Names returns all workload names in Table 3 order.
func Names() []string {
	out := make([]string, len(registry))
	for i, w := range registry {
		out[i] = w.Name
	}
	return out
}

// ByName returns a workload, or an error listing valid names.
func ByName(name string) (*Workload, error) {
	if w, ok := byName[name]; ok {
		return w, nil
	}
	names := Names()
	sort.Strings(names)
	return nil, fmt.Errorf("workloads: unknown workload %q (valid: %v)", name, names)
}
