// The JavaGrande Euler analog: computational fluid dynamics over a large
// grid of state-vector cells.
//
// "Since the benchmark Euler has inter-iteration constant strides in its
// main data structures, large two-dimensional arrays of vectors, both
// algorithms achieved similar speedups on the Pentium 4 and the Athlon MP"
// (Sec. 4). The cells are allocated consecutively and never reordered, so
// every field load in the sweep has an inter-iteration stride equal to the
// cell size (80 bytes — larger than half a line on both machines), and
// plain inter-iteration prefetching captures all of them: INTER and
// INTER+INTRA should perform alike, and both should win.
package workloads

import (
	"strider/internal/classfile"
	"strider/internal/ir"
	"strider/internal/value"
)

func eulerParams(size Size) (int32, int32) {
	if size == SizeFull {
		return 9000, 8 // cells, sweeps
	}
	return 1500, 3
}

func buildEuler(size Size) *ir.Program {
	nCells, nSweeps := eulerParams(size)

	u := classfile.NewUniverse()
	// 8 doubles -> 16 + 64 = 80-byte cells.
	cellClass := u.MustDefineClass("Statevector", nil,
		classfile.FieldSpec{Name: "a", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "b", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "c", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "d", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "fa", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "fb", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "fc", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "fd", Kind: value.KindDouble},
	)
	fA := cellClass.FieldByName("a")
	fB := cellClass.FieldByName("b")
	fC := cellClass.FieldByName("c")
	fD := cellClass.FieldByName("d")
	fFA := cellClass.FieldByName("fa")
	fFB := cellClass.FieldByName("fb")

	p := ir.NewProgram(u)

	// ::sweep(cells, n) -> double — one relaxation sweep: each cell reads
	// its left neighbour and updates its fluxes.
	sweep := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "sweep", value.KindDouble, value.KindRef, value.KindInt)
		cells, n := b.Param(0), b.Param(1)
		res := b.ConstDouble(0)
		one := b.ConstInt(1)
		half := b.ConstDouble(0.5)

		i, endI := forInt(b, 1, n)
		im1 := b.Arith(ir.OpSub, value.KindInt, i, one)
		cl := b.ArrayLoad(value.KindRef, cells, im1)
		cr := b.ArrayLoad(value.KindRef, cells, i)
		la := b.GetField(cl, fA) // inter stride 80: prefetched
		lb := b.GetField(cl, fB)
		ra := b.GetField(cr, fA)
		rb := b.GetField(cr, fB)
		rc := b.GetField(cr, fC)
		rd := b.GetField(cr, fD)
		d0 := b.Arith(ir.OpSub, value.KindDouble, la, ra)
		d1 := b.Arith(ir.OpSub, value.KindDouble, lb, rb)
		f0 := b.Arith(ir.OpMul, value.KindDouble, d0, half)
		f1 := b.Arith(ir.OpMul, value.KindDouble, d1, half)
		s0 := b.Arith(ir.OpAdd, value.KindDouble, rc, f0)
		s1 := b.Arith(ir.OpAdd, value.KindDouble, rd, f1)
		b.PutField(cr, fFA, s0)
		b.PutField(cr, fFB, s1)
		b.ArithTo(res, ir.OpAdd, value.KindDouble, res, f0)
		endI()
		b.Return(res)
		return b.Finish()
	}()

	// ::apply(cells, n) -> void — fold the fluxes back into the state.
	apply := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "apply", value.KindInvalid, value.KindRef, value.KindInt)
		cells, n := b.Param(0), b.Param(1)
		i, endI := forInt(b, 0, n)
		c := b.ArrayLoad(value.KindRef, cells, i)
		a := b.GetField(c, fA)
		fa := b.GetField(c, fFA)
		bb := b.GetField(c, fB)
		fb2 := b.GetField(c, fFB)
		na := b.Arith(ir.OpAdd, value.KindDouble, a, fa)
		nb := b.Arith(ir.OpAdd, value.KindDouble, bb, fb2)
		b.PutField(c, fA, na)
		b.PutField(c, fB, nb)
		endI()
		b.ReturnVoid()
		return b.Finish()
	}()

	// ::main() -> int
	{
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		n := b.ConstInt(nCells)
		cells := b.NewArray(value.KindRef, n)

		thousand := b.ConstDouble(1000)
		i, endBuild := forInt(b, 0, n)
		c := b.New(cellClass)
		fi := b.Conv(value.KindDouble, i)
		va := b.Arith(ir.OpDiv, value.KindDouble, fi, thousand)
		b.PutField(c, fA, va)
		vb := b.Arith(ir.OpSub, value.KindDouble, thousand, va)
		b.PutField(c, fB, vb)
		b.PutField(c, fC, va)
		b.PutField(c, fD, vb)
		b.ArrayStore(value.KindRef, cells, i, c)
		endBuild()

		total := b.ConstDouble(0)
		ns := b.ConstInt(nSweeps)
		s, endS := forInt(b, 0, ns)
		_ = s
		r := b.Call(sweep, cells, n)
		b.Call(apply, cells, n)
		b.ArithTo(total, ir.OpAdd, value.KindDouble, total, r)
		endS()
		b.Sink(total)
		zero := b.ConstInt(0)
		b.Return(zero)
		p.Entry = b.Finish()
	}
	return p
}

func init() {
	register(&Workload{
		Name:             "euler",
		Suite:            "JavaGrande",
		Description:      "Computational fluid dynamics",
		PaperCompiledPct: 79.5,
		Build:            buildEuler,
	})
}
