package workloads_test

import (
	"testing"

	"strider/internal/arch"
	"strider/internal/core/jit"
	"strider/internal/vm"
	"strider/internal/workloads"
)

func runSmall(t *testing.T, name string, machine *arch.Machine, mode jit.Mode) vm.RunStats {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog := w.Build(workloads.SizeSmall)
	if err := prog.Validate(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	v := vm.New(prog, vm.Config{Machine: machine, Mode: mode, HeapBytes: w.HeapBytes})
	stats, err := v.Measure(nil, 1)
	if err != nil {
		t.Fatalf("%s/%s/%s: %v", name, machine.Name, mode, err)
	}
	return stats
}

func TestRegistryComplete(t *testing.T) {
	names := workloads.Names()
	if len(names) != 12 {
		t.Fatalf("Table 3 has 12 benchmarks, registry has %d: %v", len(names), names)
	}
	for _, want := range []string{"mtrt", "jess", "compress", "db", "mpegaudio",
		"jack", "javac", "euler", "moldyn", "montecarlo", "raytracer", "search"} {
		if _, err := workloads.ByName(want); err != nil {
			t.Errorf("missing workload %q", want)
		}
	}
	if _, err := workloads.ByName("doom"); err == nil {
		t.Error("unknown workload must error")
	}
	for _, w := range workloads.All() {
		if w.Description == "" || w.Suite == "" || w.PaperCompiledPct == 0 {
			t.Errorf("%s: incomplete Table 3 metadata", w.Name)
		}
	}
}

// TestSemanticsPreservedEverywhere is the central safety property: stride
// prefetching must never change program results — on either machine, under
// either algorithm.
func TestSemanticsPreservedEverywhere(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			var chk uint64
			first := true
			for _, machine := range arch.Machines() {
				for _, mode := range []jit.Mode{jit.Baseline, jit.Inter, jit.InterIntra} {
					s := runSmall(t, w.Name, machine, mode)
					if s.Checksum == 0 {
						t.Fatalf("%s sinks nothing", w.Name)
					}
					if first {
						chk = s.Checksum
						first = false
					} else if s.Checksum != chk {
						t.Errorf("%s/%s: checksum %x != %x", machine.Name, mode, s.Checksum, chk)
					}
				}
			}
		})
	}
}

func TestBuildDeterministic(t *testing.T) {
	for _, w := range workloads.All() {
		a := runSmall(t, w.Name, arch.Pentium4(), jit.Baseline)
		b := runSmall(t, w.Name, arch.Pentium4(), jit.Baseline)
		if a.Checksum != b.Checksum || a.Cycles != b.Cycles {
			t.Errorf("%s not deterministic", w.Name)
		}
	}
}

// TestPaperClaimDB: "INTER was ineffective on both processors" while
// INTER+INTRA prefetches through the record clusters and wins (Sec. 4).
func TestPaperClaimDB(t *testing.T) {
	for _, machine := range arch.Machines() {
		base := runSmall(t, "db", machine, jit.Baseline)
		inter := runSmall(t, "db", machine, jit.Inter)
		both := runSmall(t, "db", machine, jit.InterIntra)
		if inter.Prefetch.InterPrefetches != 0 {
			t.Errorf("%s: INTER generated %d prefetches for db (stride 4 must be filtered)",
				machine.Name, inter.Prefetch.InterPrefetches)
		}
		if both.Prefetch.SpecLoads == 0 || both.Prefetch.IntraPrefetches == 0 {
			t.Errorf("%s: INTER+INTRA must use deref+intra prefetching: %+v", machine.Name, both.Prefetch)
		}
		if both.Cycles >= base.Cycles {
			t.Errorf("%s: INTER+INTRA must speed db up (%d vs %d cycles)",
				machine.Name, both.Cycles, base.Cycles)
		}
	}
}

// TestPaperClaimJess: only L4 has an inter-iteration stride (4 bytes,
// filtered), so INTER does nothing; INTER+INTRA adds dereference-based
// prefetching via the load dependence graph.
func TestPaperClaimJess(t *testing.T) {
	inter := runSmall(t, "jess", arch.Pentium4(), jit.Inter)
	both := runSmall(t, "jess", arch.Pentium4(), jit.InterIntra)
	if inter.Prefetch.Total() != 0 {
		t.Errorf("INTER generated code for jess: %+v", inter.Prefetch)
	}
	if both.Prefetch.SpecLoads == 0 || both.Prefetch.DerefPrefetches == 0 {
		t.Errorf("INTER+INTRA must generate deref prefetching for jess: %+v", both.Prefetch)
	}
	// The paper's explanation for the small gain: the co-allocated facts
	// array shares the cache line, so the intra prefetches are deduped.
	if both.Prefetch.FilteredDup == 0 {
		t.Error("intra prefetches should be line-deduped in jess")
	}
}

// TestPaperClaimNoApplicableFragments: compress, javac, and Search
// "do not contain code fragments where either intra- or inter-iteration
// stride prefetching are applicable" (Sec. 4); jack and MonteCarlo show
// no change either.
func TestPaperClaimNoApplicableFragments(t *testing.T) {
	for _, name := range []string{"compress", "javac", "search", "jack", "montecarlo"} {
		s := runSmall(t, name, arch.Pentium4(), jit.InterIntra)
		if s.Prefetch.Total() != 0 {
			t.Errorf("%s: expected no prefetch sites, got %+v", name, s.Prefetch)
		}
	}
}

// TestPaperClaimEuler: inter-iteration strides in the main data structure;
// INTER and INTER+INTRA generate the same code.
func TestPaperClaimEuler(t *testing.T) {
	inter := runSmall(t, "euler", arch.AthlonMP(), jit.Inter)
	both := runSmall(t, "euler", arch.AthlonMP(), jit.InterIntra)
	if inter.Prefetch.InterPrefetches == 0 {
		t.Errorf("euler must get inter prefetches: %+v", inter.Prefetch)
	}
	if inter.Prefetch != both.Prefetch {
		t.Errorf("euler: INTER and INTER+INTRA must coincide: %+v vs %+v",
			inter.Prefetch, both.Prefetch)
	}
	base := runSmall(t, "euler", arch.AthlonMP(), jit.Baseline)
	if both.Cycles >= base.Cycles {
		t.Error("euler must speed up on the Athlon MP")
	}
}

// TestPaperClaimMoldynAsymmetry: prefetch-to-L2 on the Pentium 4 cannot
// help an L2-resident working set; prefetch-to-L1 on the Athlon MP can.
// (At the small size the array is L1-resident on the Athlon too, so only
// the P4 no-gain half is asserted here; the full-size asymmetry is
// exercised by the benchmark harness.)
func TestPaperClaimMoldynP4NoGain(t *testing.T) {
	base := runSmall(t, "moldyn", arch.Pentium4(), jit.Baseline)
	both := runSmall(t, "moldyn", arch.Pentium4(), jit.InterIntra)
	if both.Prefetch.InterPrefetches == 0 {
		t.Error("moldyn must generate prefetches")
	}
	speedup := float64(base.Cycles)/float64(both.Cycles) - 1
	if speedup > 0.01 {
		t.Errorf("moldyn must not improve on the Pentium 4 (L2-resident): %+.2f%%", 100*speedup)
	}
}

// TestPaperClaimMpegaudioOverhead: prefetchable strides over cache-resident
// data are pure overhead ("slightly degraded").
func TestPaperClaimMpegaudioOverhead(t *testing.T) {
	base := runSmall(t, "mpegaudio", arch.Pentium4(), jit.Baseline)
	both := runSmall(t, "mpegaudio", arch.Pentium4(), jit.InterIntra)
	if both.Prefetch.Total() == 0 {
		t.Error("mpegaudio's filterbank strides must be prefetched")
	}
	if both.Cycles < base.Cycles {
		t.Error("mpegaudio should not improve (cache-resident data)")
	}
	if float64(both.Cycles) > float64(base.Cycles)*1.10 {
		t.Errorf("mpegaudio degradation too large: %d vs %d", both.Cycles, base.Cycles)
	}
}

// TestPaperClaimRaytracerIntra: the scene is spatially shuffled, so only
// INTER+INTRA (deref + co-allocated vectors) generates prefetching.
func TestPaperClaimRaytracerIntra(t *testing.T) {
	inter := runSmall(t, "raytracer", arch.Pentium4(), jit.Inter)
	both := runSmall(t, "raytracer", arch.Pentium4(), jit.InterIntra)
	if inter.Prefetch.Total() != 0 {
		t.Errorf("raytracer INTER must find nothing: %+v", inter.Prefetch)
	}
	if both.Prefetch.SpecLoads == 0 {
		t.Errorf("raytracer INTER+INTRA must use deref prefetching: %+v", both.Prefetch)
	}
}

// TestGCWorkloadsCollect: the allocation-heavy analogs actually exercise
// the collector at full size (their lower compiled fractions in Table 3
// come from GC time).
func TestGCWorkloadsCollect(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size run")
	}
	for _, name := range []string{"jack", "montecarlo", "javac"} {
		w, _ := workloads.ByName(name)
		prog := w.Build(workloads.SizeFull)
		v := vm.New(prog, vm.Config{Machine: arch.Pentium4(), Mode: jit.Baseline, HeapBytes: w.HeapBytes})
		s, err := v.Measure(nil, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.GCs == 0 {
			t.Errorf("%s: expected collections at full size", name)
		}
	}
}
