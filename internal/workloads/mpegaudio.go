// The _222_mpegaudio analog: MPEG Layer-3 decoding's synthesis filterbank.
//
// The hot loop accumulates window * subband products with a 32-element
// (256-byte) stride through small coefficient arrays. The stride is large
// enough to pass the profitability filter, so stride prefetching *is*
// applied — but the arrays fit comfortably in cache, so the prefetches are
// pure overhead. The paper observes exactly this: "Both algorithms
// slightly degraded the mpegaudio benchmark on the Pentium 4 ... because
// the cache miss ratios and the DTLB miss ratio were quite small" (Sec. 4).
package workloads

import (
	"strider/internal/classfile"
	"strider/internal/ir"
	"strider/internal/value"
)

func mpegParams(size Size) (int32, int32) {
	if size == SizeFull {
		return 2600, 1200 // frames, bitstream words per frame
	}
	return 260, 1200
}

func buildMpegaudio(size Size) *ir.Program {
	frames, streamWords := mpegParams(size)
	const bands = 32
	const taps = 8
	const vlen = bands * taps // 256 doubles = 2 KB

	u := classfile.NewUniverse()
	fbClass := u.MustDefineClass("Filterbank", nil,
		classfile.FieldSpec{Name: "v", Kind: value.KindRef},
		classfile.FieldSpec{Name: "win", Kind: value.KindRef},
		classfile.FieldSpec{Name: "stream", Kind: value.KindRef},
	)
	fV := fbClass.FieldByName("v")
	fWin := fbClass.FieldByName("win")
	fStream := fbClass.FieldByName("stream")

	p := ir.NewProgram(u)

	// ::synth(fb, frame) -> double — one frame of the filterbank: for each
	// band, accumulate taps spaced 32 doubles (256 bytes) apart.
	synth := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "synth", value.KindDouble, value.KindRef, value.KindInt)
		fb, frame := b.Param(0), b.Param(1)
		v := b.GetField(fb, fV)
		win := b.GetField(fb, fWin)
		out := b.ConstDouble(0)
		nb := b.ConstInt(bands)
		nv := b.ConstInt(vlen)
		stride := b.ConstInt(bands)

		k, endK := forInt(b, 0, nb)
		acc := b.NewReg()
		b.SetDouble(acc, 0)
		idx := b.NewReg()
		off := b.Arith(ir.OpAdd, value.KindInt, k, frame)
		rem := b.Arith(ir.OpRem, value.KindInt, off, stride)
		b.MoveTo(idx, rem)
		innerCond := b.NewLabel()
		innerBody := b.NewLabel()
		b.Goto(innerCond)
		b.Bind(innerBody)
		a := b.ArrayLoad(value.KindDouble, v, idx)   // 256-byte stride: prefetched
		w := b.ArrayLoad(value.KindDouble, win, idx) // 256-byte stride: prefetched
		m := b.Arith(ir.OpMul, value.KindDouble, a, w)
		b.ArithTo(acc, ir.OpAdd, value.KindDouble, acc, m)
		b.ArithTo(idx, ir.OpAdd, value.KindInt, idx, stride)
		b.Bind(innerCond)
		b.Br(value.KindInt, ir.CondLT, idx, nv, innerBody)
		b.ArithTo(out, ir.OpAdd, value.KindDouble, out, acc)
		endK()
		b.Return(out)
		return b.Finish()
	}()

	// ::decode(fb, n, frame) -> int — Huffman-style bit unpacking over the
	// frame's bitstream: sequential small-stride scan plus table-free bit
	// twiddling; no prefetchable patterns. Decoding dominates the decoder's
	// profile, so the filterbank's prefetch overhead stays slight.
	decode := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "decode", value.KindInt,
			value.KindRef, value.KindInt, value.KindInt)
		fb, n, frame := b.Param(0), b.Param(1), b.Param(2)
		stream := b.GetField(fb, fStream)
		acc := b.NewReg()
		b.MoveTo(acc, frame)
		i, endI := forInt(b, 0, n)
		w := b.ArrayLoad(value.KindInt, stream, i) // stride 4: rejected
		sh := b.ConstInt(7)
		hi := b.Arith(ir.OpShr, value.KindInt, w, sh)
		x0 := b.Arith(ir.OpXor, value.KindInt, acc, w)
		x1 := b.Arith(ir.OpAdd, value.KindInt, x0, hi)
		five := b.ConstInt(5)
		x2 := b.Arith(ir.OpShl, value.KindInt, x1, five)
		x3 := b.Arith(ir.OpUshr, value.KindInt, x1, b.ConstInt(27))
		x4 := b.Arith(ir.OpOr, value.KindInt, x2, x3)
		b.MoveTo(acc, x4)
		endI()
		b.Return(acc)
		return b.Finish()
	}()

	// ::main() -> int
	{
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		fb := b.New(fbClass)
		nv := b.ConstInt(vlen)
		v := b.NewArray(value.KindDouble, nv)
		b.PutField(fb, fV, v)
		win := b.NewArray(value.KindDouble, nv)
		b.PutField(fb, fWin, win)
		sw := b.ConstInt(streamWords)
		stream := b.NewArray(value.KindInt, sw)
		b.PutField(fb, fStream, stream)
		seedS := b.ConstInt(31337)
		si, endSI := forInt(b, 0, sw)
		sv := emitLCGStep(b, seedS, 0xFFFF)
		b.ArrayStore(value.KindInt, stream, si, sv)
		endSI()

		// Coefficients: i/(i+1)-style deterministic doubles.
		one := b.ConstDouble(1)
		i, endInit := forInt(b, 0, nv)
		fi := b.Conv(value.KindDouble, i)
		fp := b.Arith(ir.OpAdd, value.KindDouble, fi, one)
		c := b.Arith(ir.OpDiv, value.KindDouble, fi, fp)
		b.ArrayStore(value.KindDouble, v, i, c)
		h := b.Arith(ir.OpSub, value.KindDouble, one, c)
		b.ArrayStore(value.KindDouble, win, i, h)
		endInit()

		total := b.ConstDouble(0)
		bits := b.ConstInt(0)
		nf := b.ConstInt(frames)
		f, endF := forInt(b, 0, nf)
		d := b.Call(decode, fb, sw, f)
		b.ArithTo(bits, ir.OpXor, value.KindInt, bits, d)
		s := b.Call(synth, fb, f)
		b.ArithTo(total, ir.OpAdd, value.KindDouble, total, s)
		endF()
		b.Sink(total)
		b.Sink(bits)
		zero := b.ConstInt(0)
		b.Return(zero)
		p.Entry = b.Finish()
	}
	return p
}

func init() {
	register(&Workload{
		Name:             "mpegaudio",
		Suite:            "SPECjvm98",
		Description:      "MPEG Layer-3 audio decompression",
		PaperCompiledPct: 87.0,
		Build:            buildMpegaudio,
	})
}
