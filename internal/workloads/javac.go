// The _213_javac analog: a compiler front end — AST construction and
// recursive evaluation.
//
// javac's hot code walks trees *recursively*: its loads are out-of-loop
// loads, which the paper's algorithm deliberately does not handle
// ("handling out-of-loop loads in recursive methods ... remains as an open
// problem", Sec. 6), so stride prefetching finds nothing applicable. The
// analog builds expression trees recursively per compilation unit and
// folds them recursively, discarding each tree afterwards (allocation
// pressure lowers the compiled-code fraction toward Table 3's 51.9%).
package workloads

import (
	"strider/internal/classfile"
	"strider/internal/ir"
	"strider/internal/value"
)

func javacParams(size Size) (int32, int32) {
	if size == SizeFull {
		return 110, 11 // compilation units, tree depth
	}
	return 16, 9
}

func buildJavac(size Size) *ir.Program {
	nUnits, depth := javacParams(size)

	u := classfile.NewUniverse()
	nodeClass := u.MustDefineClass("TreeNode", nil,
		classfile.FieldSpec{Name: "op", Kind: value.KindInt},
		classfile.FieldSpec{Name: "left", Kind: value.KindRef},
		classfile.FieldSpec{Name: "right", Kind: value.KindRef},
	)
	fOp := nodeClass.FieldByName("op")
	fLeft := nodeClass.FieldByName("left")
	fRight := nodeClass.FieldByName("right")

	p := ir.NewProgram(u)

	// ::build(depth, seed) -> TreeNode — recursive descent "parsing".
	var build *ir.Method
	{
		b := ir.NewBuilder(p, nil, "build", value.KindRef, value.KindInt, value.KindInt)
		d, seed := b.Param(0), b.Param(1)
		leaf := b.NewLabel()
		zero := b.ConstInt(0)
		b.Br(value.KindInt, ir.CondLE, d, zero, leaf)
		n := b.New(nodeClass)
		op := b.Arith(ir.OpAnd, value.KindInt, seed, b.ConstInt(3))
		b.PutField(n, fOp, op)
		one := b.ConstInt(1)
		dm1 := b.Arith(ir.OpSub, value.KindInt, d, one)
		s2 := b.Arith(ir.OpMul, value.KindInt, seed, b.ConstInt(1103515245))
		s3 := b.Arith(ir.OpAdd, value.KindInt, s2, b.ConstInt(12345))
		lRes := b.Call(b.Self(), dm1, s3)
		b.PutField(n, fLeft, lRes)
		s4 := b.Arith(ir.OpXor, value.KindInt, s3, d)
		rRes := b.Call(b.Self(), dm1, s4)
		b.PutField(n, fRight, rRes)
		b.Return(n)
		b.Bind(leaf)
		nl := b.ConstNull()
		b.Return(nl)
		build = b.Finish()
	}

	// ::eval(node) -> int — recursive folding (out-of-loop loads).
	var eval *ir.Method
	{
		b := ir.NewBuilder(p, nil, "eval", value.KindInt, value.KindRef)
		n := b.Param(0)
		null := b.ConstNull()
		leaf := b.NewLabel()
		b.Br(value.KindRef, ir.CondEQ, n, null, leaf)
		op := b.GetField(n, fOp)
		l := b.GetField(n, fLeft)
		r := b.GetField(n, fRight)
		lv := b.Call(b.Self(), l)
		rv := b.Call(b.Self(), r)
		s := b.Arith(ir.OpAdd, value.KindInt, lv, rv)
		t := b.Arith(ir.OpXor, value.KindInt, s, op)
		three := b.ConstInt(3)
		t2 := b.Arith(ir.OpMul, value.KindInt, t, three)
		b.Return(t2)
		b.Bind(leaf)
		one := b.ConstInt(1)
		b.Return(one)
		eval = b.Finish()
	}

	// ::main() -> int
	{
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		total := b.ConstInt(0)
		nu := b.ConstInt(nUnits)
		d := b.ConstInt(depth)
		i, endI := forInt(b, 0, nu)
		seed := b.Arith(ir.OpMul, value.KindInt, i, b.ConstInt(7919))
		root := b.Call(build, d, seed)
		v := b.Call(eval, root)
		b.ArithTo(total, ir.OpXor, value.KindInt, total, v)
		endI()
		b.Sink(total)
		b.Return(total)
		p.Entry = b.Finish()
	}
	return p
}

func init() {
	register(&Workload{
		Name:             "javac",
		Suite:            "SPECjvm98",
		Description:      "Java compiler from JDK 1.0.2",
		PaperCompiledPct: 51.9,
		HeapBytes:        6 << 20,
		Build:            buildJavac,
	})
}
