// The _209_db analog: the paper's headline result (18.9% on the Pentium 4,
// 25.1% on the Athlon MP, while INTER alone was ineffective).
//
// "This program spends more than 85% of its execution time in a shell sort
// loop that reorders a number of large records and frequently causes cache
// misses and DTLB misses. Each record contains a number of Vector and
// String objects, and they only have intra-iteration constant strides
// between the containing records in the sorting loop." (Sec. 4)
//
// Our analog allocates each record as a cluster — Record, then its String
// character array, then its Vector, then the Vector's data array — so the
// distances from a record to its children are compile-time constants
// (intra-iteration strides), while the sort permutes the record references
// so the records themselves have no inter-iteration stride. The record
// cluster is larger than even the Pentium 4's 128-byte L2 line, so the
// intra-iteration prefetches survive the cache-line dedup filter.
//
// The sort key is reached through record.vec.data[0]: three dependent
// loads per comparison, each a cache and DTLB miss on a cold record —
// which is what dereference-based + intra-iteration prefetching attacks.
package workloads

import (
	"strider/internal/classfile"
	"strider/internal/ir"
	"strider/internal/value"
)

// dbParams returns (records, name chars as ints, vector payload ints).
func dbParams(size Size) (int32, int32, int32) {
	if size == SizeFull {
		return 3000, 24, 6
	}
	return 700, 24, 6
}

func buildDB(size Size) *ir.Program {
	nRecords, nameLen, vecLen := dbParams(size)

	u := classfile.NewUniverse()
	vecClass := u.MustDefineClass("Vector", nil,
		classfile.FieldSpec{Name: "data", Kind: value.KindRef},
		classfile.FieldSpec{Name: "size", Kind: value.KindInt},
	)
	recClass := u.MustDefineClass("Record", nil,
		classfile.FieldSpec{Name: "id", Kind: value.KindInt},
		classfile.FieldSpec{Name: "name", Kind: value.KindRef},
		classfile.FieldSpec{Name: "vec", Kind: value.KindRef},
	)
	dbClass := u.MustDefineClass("Database", nil,
		classfile.FieldSpec{Name: "entries", Kind: value.KindRef},
		classfile.FieldSpec{Name: "n", Kind: value.KindInt},
	)
	fData := vecClass.FieldByName("data")
	fSize := vecClass.FieldByName("size")
	fID := recClass.FieldByName("id")
	fName := recClass.FieldByName("name")
	fVec := recClass.FieldByName("vec")
	fEntries := dbClass.FieldByName("entries")
	fN := dbClass.FieldByName("n")

	p := ir.NewProgram(u)

	// ::newRecord(id, key) -> Record — the co-allocating constructor:
	// Record, name chars, Vector, vector data, in one cluster.
	newRecord := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "newRecord", value.KindRef, value.KindInt, value.KindInt)
		id, key := b.Param(0), b.Param(1)
		r := b.New(recClass)
		b.PutField(r, fID, id)
		nl := b.ConstInt(nameLen)
		name := b.NewArray(value.KindInt, nl)
		b.PutField(r, fName, name)
		// Fill the name with derived characters.
		i, endName := forInt(b, 0, nl)
		ch := b.AddInt(id, i)
		b.ArrayStore(value.KindInt, name, i, ch)
		endName()
		v := b.New(vecClass)
		b.PutField(r, fVec, v)
		vl := b.ConstInt(vecLen)
		data := b.NewArray(value.KindInt, vl)
		b.PutField(v, fData, data)
		b.PutField(v, fSize, vl)
		zero := b.ConstInt(0)
		b.ArrayStore(value.KindInt, data, zero, key)
		j, endVec := forInt(b, 1, vl)
		x := b.AddInt(key, j)
		b.ArrayStore(value.KindInt, data, j, x)
		endVec()
		b.Return(r)
		return b.Finish()
	}()

	// ::sortPass(entries, n) -> int — insertion sort (the dominant final
	// pass of 209_db's shell sort) keyed on entries[j].vec.data[0].
	// Returns the number of element moves (sunk for the checksum).
	sortPass := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "sortPass", value.KindInt, value.KindRef, value.KindInt)
		e, n := b.Param(0), b.Param(1)
		moves := b.ConstInt(0)
		one := b.ConstInt(1)
		zero := b.ConstInt(0)

		i, endI := forInt(b, 1, n)
		cur := b.ArrayLoad(value.KindRef, e, i)
		cv := b.GetField(cur, fVec)
		cd := b.GetField(cv, fData)
		ckey := b.ArrayLoad(value.KindInt, cd, zero)

		j := b.NewReg()
		b.MoveTo(j, i)
		innerCond := b.NewLabel()
		innerBody := b.NewLabel()
		innerDone := b.NewLabel()
		b.Goto(innerCond)

		b.Bind(innerBody)
		// prev = e[j-1]; key(prev) via the dependent-load chain.
		jm1 := b.Arith(ir.OpSub, value.KindInt, j, one)
		prev := b.ArrayLoad(value.KindRef, e, jm1) // Lx: inter stride -4
		pv := b.GetField(prev, fVec)               // Ly: no inter (permuted records)
		pd := b.GetField(pv, fData)                // Lz: intra with Ly
		pkey := b.ArrayLoad(value.KindInt, pd, zero)
		b.Br(value.KindInt, ir.CondLE, pkey, ckey, innerDone)
		b.ArrayStore(value.KindRef, e, j, prev)
		b.ArithTo(j, ir.OpSub, value.KindInt, j, one)
		b.ArithTo(moves, ir.OpAdd, value.KindInt, moves, one)
		b.Bind(innerCond)
		b.Br(value.KindInt, ir.CondGE, j, one, innerBody)
		b.Bind(innerDone)
		b.ArrayStore(value.KindRef, e, j, cur)
		endI()
		b.Return(moves)
		return b.Finish()
	}()

	// ::checkSorted(entries, n) -> int — returns the number of adjacent
	// inversions left (must be 0) xor a key sample; used as the oracle.
	checkSorted := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "checkSorted", value.KindInt, value.KindRef, value.KindInt)
		e, n := b.Param(0), b.Param(1)
		zero := b.ConstInt(0)
		bad := b.ConstInt(0)
		acc := b.ConstInt(0)
		i, endI := forInt(b, 1, n)
		one := b.ConstInt(1)
		im1 := b.Arith(ir.OpSub, value.KindInt, i, one)
		ra := b.ArrayLoad(value.KindRef, e, im1)
		rb := b.ArrayLoad(value.KindRef, e, i)
		va := b.GetField(ra, fVec)
		vb := b.GetField(rb, fVec)
		da := b.GetField(va, fData)
		db := b.GetField(vb, fData)
		ka := b.ArrayLoad(value.KindInt, da, zero)
		kb := b.ArrayLoad(value.KindInt, db, zero)
		skip := b.NewLabel()
		b.Br(value.KindInt, ir.CondLE, ka, kb, skip)
		b.IncInt(bad, 1)
		b.Bind(skip)
		b.ArithTo(acc, ir.OpXor, value.KindInt, acc, kb)
		endI()
		sh := b.ConstInt(16)
		hi := b.Arith(ir.OpShl, value.KindInt, bad, sh)
		out := b.Arith(ir.OpXor, value.KindInt, hi, acc)
		b.Return(out)
		return b.Finish()
	}()

	// ::main() -> int
	{
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		db := b.New(dbClass)
		n := b.ConstInt(nRecords)
		arr := b.NewArray(value.KindRef, n)
		b.PutField(db, fEntries, arr)
		b.PutField(db, fN, n)

		seed := b.ConstInt(12345)
		i, endBuild := forInt(b, 0, n)
		key := emitLCGStep(b, seed, 0x7FFF)
		r := b.Call(newRecord, i, key)
		b.ArrayStore(value.KindRef, arr, i, r)
		endBuild()

		// Shuffle phase: the real 209_db performs adds, deletes, and finds
		// before sorting, so the record references are thoroughly permuted
		// by the time the sort runs — the reason the records "only have
		// intra-iteration constant strides" (Sec. 4). Random swaps model
		// that churn.
		j, endShuffle := forInt(b, 0, n)
		r1 := emitLCGStep(b, seed, 0x7FFFFFF)
		k := b.Arith(ir.OpRem, value.KindInt, r1, n)
		a0 := b.ArrayLoad(value.KindRef, arr, j)
		a1 := b.ArrayLoad(value.KindRef, arr, k)
		b.ArrayStore(value.KindRef, arr, j, a1)
		b.ArrayStore(value.KindRef, arr, k, a0)
		endShuffle()

		moves := b.Call(sortPass, arr, n)
		b.Sink(moves)
		chk := b.Call(checkSorted, arr, n)
		b.Sink(chk)
		b.Return(chk)
		p.Entry = b.Finish()
	}
	return p
}

func init() {
	register(&Workload{
		Name:             "db",
		Suite:            "SPECjvm98",
		Description:      "Memory resident database",
		PaperCompiledPct: 92.3,
		Build:            buildDB,
	})
}
