package workloads_test

import (
	"testing"

	"strider/internal/arch"
	"strider/internal/core/jit"
	"strider/internal/heap"
	"strider/internal/vm"
	"strider/internal/workloads"
)

// TestGCChurnAblation formalizes the compaction ablation: sliding
// compaction preserves the co-allocation stride across a collection
// (intra prefetch generated), the free-list collector destroys it (no
// intra prefetch), and semantics are identical either way.
func TestGCChurnAblation(t *testing.T) {
	type result struct {
		chk   uint64
		gcs   uint64
		intra int
	}
	run := func(gc heap.GCMode, mode jit.Mode) result {
		t.Helper()
		prog := workloads.GCChurn.Build(workloads.SizeSmall)
		v := vm.New(prog, vm.Config{
			Machine: arch.AthlonMP(), Mode: mode,
			HeapBytes: workloads.GCChurn.HeapBytes, GC: gc,
		})
		s, err := v.Measure(nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		return result{s.Checksum, s.GCs, s.Prefetch.IntraPrefetches}
	}

	compact := run(heap.GCSlidingCompact, jit.InterIntra)
	freelist := run(heap.GCMarkSweepFreeList, jit.InterIntra)
	if compact.gcs == 0 || freelist.gcs == 0 {
		t.Fatalf("the scenario must collect at least once (%d/%d)", compact.gcs, freelist.gcs)
	}
	if compact.intra == 0 {
		t.Error("sliding compaction must preserve the intra-iteration stride")
	}
	if freelist.intra != 0 {
		t.Error("the free-list collector must destroy the intra-iteration stride")
	}
	if compact.chk != freelist.chk {
		t.Error("collector choice must not change semantics")
	}
	base := run(heap.GCSlidingCompact, jit.Baseline)
	if base.chk != compact.chk {
		t.Error("prefetching must not change semantics")
	}
	if _, err := workloads.ByName("gcchurn"); err != nil {
		t.Error("gcchurn must be addressable by name")
	}
	for _, w := range workloads.All() {
		if w.Name == "gcchurn" {
			t.Error("gcchurn must not be part of the Table 3 suite")
		}
	}
}
