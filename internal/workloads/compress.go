// The _201_compress analog: modified Lempel-Ziv coding over a byte stream.
//
// The paper reports that compress "does not contain code fragments where
// either intra- or inter-iteration stride prefetching are applicable"
// (Sec. 4): its loops scan arrays with element-size strides (far below
// half a cache line, so the profitability analysis rejects them — hardware
// prefetching already covers small strides) and probe a hash table at
// pattern-free addresses. The analog reproduces exactly that profile.
package workloads

import (
	"strider/internal/classfile"
	"strider/internal/ir"
	"strider/internal/value"
)

func compressParams(size Size) (int32, int32) {
	if size == SizeFull {
		return 180000, 1 << 14 // text length, hash table size
	}
	return 20000, 1 << 12
}

func buildCompress(size Size) *ir.Program {
	textLen, htSize := compressParams(size)

	u := classfile.NewUniverse()
	czClass := u.MustDefineClass("Compressor", nil,
		classfile.FieldSpec{Name: "text", Kind: value.KindRef},
		classfile.FieldSpec{Name: "table", Kind: value.KindRef},
		classfile.FieldSpec{Name: "codes", Kind: value.KindRef},
	)
	fText := czClass.FieldByName("text")
	fTable := czClass.FieldByName("table")
	fCodes := czClass.FieldByName("codes")

	p := ir.NewProgram(u)

	// ::compress(cz, n) -> int — the hot scan: hash consecutive symbol
	// pairs, probe the table, emit codes.
	compress := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "compress", value.KindInt, value.KindRef, value.KindInt)
		cz, n := b.Param(0), b.Param(1)
		text := b.GetField(cz, fText)
		table := b.GetField(cz, fTable)
		codes := b.GetField(cz, fCodes)
		mask := b.ConstInt(htSize - 1)
		emitted := b.ConstInt(0)
		prev := b.ConstInt(0)

		i, endI := forInt(b, 0, n)
		cur := b.ArrayLoad(value.KindInt, text, i) // stride 4: rejected by profitability
		sh := b.ConstInt(5)
		h0 := b.Arith(ir.OpShl, value.KindInt, prev, sh)
		h1 := b.Arith(ir.OpXor, value.KindInt, h0, cur)
		h := b.Arith(ir.OpAnd, value.KindInt, h1, mask)
		entry := b.ArrayLoad(value.KindInt, table, h) // pattern-free addresses
		hit := b.NewLabel()
		cont := b.NewLabel()
		b.Br(value.KindInt, ir.CondEQ, entry, cur, hit)
		b.ArrayStore(value.KindInt, table, h, cur)
		b.ArrayStore(value.KindInt, codes, h, i)
		b.IncInt(emitted, 1)
		b.Goto(cont)
		b.Bind(hit)
		old := b.ArrayLoad(value.KindInt, codes, h)
		d := b.Arith(ir.OpSub, value.KindInt, i, old)
		b.ArithTo(emitted, ir.OpXor, value.KindInt, emitted, d)
		b.Bind(cont)
		b.MoveTo(prev, cur)
		endI()
		b.Return(emitted)
		return b.Finish()
	}()

	// ::main() -> int
	{
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		cz := b.New(czClass)
		tl := b.ConstInt(textLen)
		text := b.NewArray(value.KindInt, tl)
		b.PutField(cz, fText, text)
		hs := b.ConstInt(htSize)
		table := b.NewArray(value.KindInt, hs)
		b.PutField(cz, fTable, table)
		codes := b.NewArray(value.KindInt, hs)
		b.PutField(cz, fCodes, codes)

		// Synthesize a compressible text: LCG symbols with repetition.
		seed := b.ConstInt(99)
		i, endGen := forInt(b, 0, tl)
		r := emitLCGStep(b, seed, 255)
		b.ArrayStore(value.KindInt, text, i, r)
		endGen()

		// Two passes over the text (auto-run repetition).
		total := b.ConstInt(0)
		two := b.ConstInt(2)
		q, endQ := forInt(b, 0, two)
		_ = q
		c := b.Call(compress, cz, tl)
		b.ArithTo(total, ir.OpXor, value.KindInt, total, c)
		endQ()
		b.Sink(total)
		b.Return(total)
		p.Entry = b.Finish()
	}
	return p
}

func init() {
	register(&Workload{
		Name:             "compress",
		Suite:            "SPECjvm98",
		Description:      "Modified Lempel-Ziv method",
		PaperCompiledPct: 93.6,
		Build:            buildCompress,
	})
}
