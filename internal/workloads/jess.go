// The _202_jess analog: the paper's motivating example (Sec. 2, Figure 1).
//
// A TokenVector holds Token objects; each Token's constructor allocates its
// facts array and ValueVector facts immediately after the Token itself
// (the co-allocation that produces intra-iteration strides). Tokens are
// appended and then partially removed with removeElement's move-the-last-
// element-into-the-hole trick, which destroys any inter-iteration stride
// of the Token references themselves — only L4 (&tv.v[i]) retains an
// inter-iteration stride, exactly as the paper reports for this benchmark.
// findInMemory is the doubly nested query loop of Figure 1 with all eleven
// loads of Table 1, including the array-bound-check arraylength loads.
package workloads

import (
	"strider/internal/classfile"
	"strider/internal/ir"
	"strider/internal/value"
)

// jessParams returns (tokens, facts per token, queries).
//
// The query count is deliberately low relative to the rule-base build:
// the paper notes that findInMemory "is hot, but not dominant. The hottest
// method ... uses only about 25% of the compiled code execution time"
// (Sec. 4), which is why jess's overall speedup is small even though the
// prefetching works.
func jessParams(size Size) (int32, int32, int32) {
	if size == SizeFull {
		return 20000, 3, 2
	}
	return 1200, 3, 4
}

func buildJess(size Size) *ir.Program {
	nTokens, nFacts, nQueries := jessParams(size)

	u := classfile.NewUniverse()
	vvClass := u.MustDefineClass("ValueVector", nil,
		classfile.FieldSpec{Name: "v0", Kind: value.KindInt},
		classfile.FieldSpec{Name: "v1", Kind: value.KindInt},
	)
	tokClass := u.MustDefineClass("Token", nil,
		classfile.FieldSpec{Name: "size", Kind: value.KindInt},
		classfile.FieldSpec{Name: "facts", Kind: value.KindRef},
	)
	tvClass := u.MustDefineClass("TokenVector", nil,
		classfile.FieldSpec{Name: "v", Kind: value.KindRef},
		classfile.FieldSpec{Name: "ptr", Kind: value.KindInt},
	)
	fV0 := vvClass.FieldByName("v0")
	fV1 := vvClass.FieldByName("v1")
	fSize := tokClass.FieldByName("size")
	fFacts := tokClass.FieldByName("facts")
	fV := tvClass.FieldByName("v")
	fPtr := tvClass.FieldByName("ptr")

	p := ir.NewProgram(u)

	// ValueVector::equals(this, other) -> int (0/1)
	{
		b := ir.NewBuilder(p, vvClass, "equals", value.KindInt, value.KindRef, value.KindRef)
		this, other := b.Param(0), b.Param(1)
		fail := b.NewLabel()
		a0 := b.GetField(this, fV0)
		b0 := b.GetField(other, fV0)
		b.Br(value.KindInt, ir.CondNE, a0, b0, fail)
		a1 := b.GetField(this, fV1)
		b1 := b.GetField(other, fV1)
		b.Br(value.KindInt, ir.CondNE, a1, b1, fail)
		one := b.ConstInt(1)
		b.Return(one)
		b.Bind(fail)
		zero := b.ConstInt(0)
		b.Return(zero)
		b.Finish()
	}

	// ::newToken(nfacts, tag) -> Token
	// Token constructor pattern: Token, then facts array, then the
	// ValueVector facts, all co-allocated.
	newToken := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "newToken", value.KindRef, value.KindInt, value.KindInt)
		nf, tag := b.Param(0), b.Param(1)
		t := b.New(tokClass)
		b.PutField(t, fSize, nf)
		five := b.ConstInt(5)
		arr := b.NewArray(value.KindRef, five)
		b.PutField(t, fFacts, arr)
		i := b.ConstInt(0)
		cond := b.NewLabel()
		body := b.NewLabel()
		done := b.NewLabel()
		b.Goto(cond)
		b.Bind(body)
		vv := b.New(vvClass)
		b.PutField(vv, fV0, tag)
		sum := b.AddInt(tag, i)
		b.PutField(vv, fV1, sum)
		b.ArrayStore(value.KindRef, arr, i, vv)
		b.IncInt(i, 1)
		b.Bind(cond)
		b.Br(value.KindInt, ir.CondLT, i, nf, body)
		b.Goto(done)
		b.Bind(done)
		b.Return(t)
		return b.Finish()
	}()

	// ::addElement(tv, tok)
	addElement := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "addElement", value.KindInvalid, value.KindRef, value.KindRef)
		tv, tok := b.Param(0), b.Param(1)
		v := b.GetField(tv, fV)
		ptr := b.GetField(tv, fPtr)
		n := b.ArrayLen(v)
		store := b.NewLabel()
		b.Br(value.KindInt, ir.CondLT, ptr, n, store)
		// grow: nv = new ref[2n]; copy; tv.v = nv
		two := b.ConstInt(2)
		nn := b.Arith(ir.OpMul, value.KindInt, n, two)
		nv := b.NewArray(value.KindRef, nn)
		i := b.ConstInt(0)
		ccond := b.NewLabel()
		cbody := b.NewLabel()
		b.Goto(ccond)
		b.Bind(cbody)
		x := b.NewReg()
		b.ArrayLoadTo(x, value.KindRef, v, i)
		b.ArrayStore(value.KindRef, nv, i, x)
		b.IncInt(i, 1)
		b.Bind(ccond)
		b.Br(value.KindInt, ir.CondLT, i, n, cbody)
		b.PutField(tv, fV, nv)
		b.MoveTo(v, nv)
		b.Bind(store)
		b.ArrayStore(value.KindRef, v, ptr, tok)
		b.IncInt(ptr, 1)
		b.PutField(tv, fPtr, ptr)
		b.ReturnVoid()
		return b.Finish()
	}()

	// ::removeAt(tv, idx) — removeElement's core: move the last element
	// into the hole (paper Sec. 2).
	removeAt := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "removeAt", value.KindInvalid, value.KindRef, value.KindInt)
		tv, idx := b.Param(0), b.Param(1)
		v := b.GetField(tv, fV)
		ptr := b.GetField(tv, fPtr)
		b.IncInt(ptr, -1)
		last := b.ArrayLoad(value.KindRef, v, ptr)
		b.ArrayStore(value.KindRef, v, idx, last)
		null := b.ConstNull()
		b.ArrayStore(value.KindRef, v, ptr, null)
		b.PutField(tv, fPtr, ptr)
		b.ReturnVoid()
		return b.Finish()
	}()

	// ::findInMemory(tv, t) -> Token — Figure 1, with the eleven loads of
	// Table 1 (including the bound-check arraylength loads L3, L7, L10).
	findInMemory := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "findInMemory", value.KindRef, value.KindRef, value.KindRef)
		tv, t := b.Param(0), b.Param(1)
		i := b.ConstInt(0)
		j := b.NewReg()
		outerCond := b.NewLabel()
		outerBody := b.NewLabel()
		outerCont := b.NewLabel()
		innerCond := b.NewLabel()
		innerBody := b.NewLabel()
		retNull := b.NewLabel()
		b.Goto(outerCond)

		b.Bind(outerBody)
		v := b.GetField(tv, fV) // L2  &tv.v
		vl := b.ArrayLen(v)     // L3  &tv.v.length (bound check)
		b.Br(value.KindInt, ir.CondGE, i, vl, retNull)
		tmp := b.ArrayLoad(value.KindRef, v, i) // L4  &tv.v[i]
		b.SetInt(j, 0)
		b.Goto(innerCond)

		b.Bind(innerBody)
		tf := b.GetField(t, fFacts) // L6  &t.facts
		tfl := b.ArrayLen(tf)       // L7  &t.facts.length (bound check)
		b.Br(value.KindInt, ir.CondGE, j, tfl, outerCont)
		a := b.ArrayLoad(value.KindRef, tf, j) // L8  &t.facts[j]
		mf := b.GetField(tmp, fFacts)          // L9  &tmp.facts
		mfl := b.ArrayLen(mf)                  // L10 &tmp.facts.length (bound check)
		b.Br(value.KindInt, ir.CondGE, j, mfl, outerCont)
		bb := b.ArrayLoad(value.KindRef, mf, j) // L11 &tmp.facts[j]
		eq := b.CallVirt("equals", true, a, bb)
		zero := b.ConstInt(0)
		b.Br(value.KindInt, ir.CondEQ, eq, zero, outerCont) // continue TokenLoop
		b.IncInt(j, 1)

		b.Bind(innerCond)
		sz := b.GetField(t, fSize) // L5  &t.size
		b.Br(value.KindInt, ir.CondLT, j, sz, innerBody)
		b.Return(tmp) // all facts matched

		b.Bind(outerCont)
		b.IncInt(i, 1)
		b.Bind(outerCond)
		ptr := b.GetField(tv, fPtr) // L1  &tv.ptr
		b.Br(value.KindInt, ir.CondLT, i, ptr, outerBody)
		b.Bind(retNull)
		null := b.ConstNull()
		b.Return(null)
		return b.Finish()
	}()

	// ::main() -> int
	{
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		tv := b.New(tvClass)
		cap0 := b.ConstInt(16)
		v0 := b.NewArray(value.KindRef, cap0)
		b.PutField(tv, fV, v0)
		zero := b.ConstInt(0)
		b.PutField(tv, fPtr, zero)

		nf := b.ConstInt(nFacts)
		n := b.ConstInt(nTokens)

		// Build phase: append nTokens tokens.
		k := b.ConstInt(0)
		bCond := b.NewLabel()
		bBody := b.NewLabel()
		b.Goto(bCond)
		b.Bind(bBody)
		tok := b.Call(newToken, nf, k)
		b.Call(addElement, tv, tok)
		b.IncInt(k, 1)
		b.Bind(bCond)
		b.Br(value.KindInt, ir.CondLT, k, n, bBody)

		// Churn phase: remove every third element, shuffling order.
		i := b.ConstInt(0)
		three := b.ConstInt(3)
		cCond := b.NewLabel()
		cBody := b.NewLabel()
		cSkip := b.NewLabel()
		cDone := b.NewLabel()
		b.Goto(cCond)
		b.Bind(cBody)
		rem := b.Arith(ir.OpRem, value.KindInt, i, three)
		b.BrIntZero(ir.CondNE, rem, cSkip)
		b.Call(removeAt, tv, i)
		b.Bind(cSkip)
		b.IncInt(i, 1)
		b.Bind(cCond)
		ptr := b.GetField(tv, fPtr)
		b.Br(value.KindInt, ir.CondLT, i, ptr, cBody)
		b.Goto(cDone)
		b.Bind(cDone)

		// Query phase: Q lookups by content.
		found := b.ConstInt(0)
		q := b.ConstInt(0)
		nq := b.ConstInt(nQueries)
		step := b.ConstInt(2377)
		qCond := b.NewLabel()
		qBody := b.NewLabel()
		qMiss := b.NewLabel()
		qNext := b.NewLabel()
		b.Goto(qCond)
		b.Bind(qBody)
		tag0 := b.Arith(ir.OpMul, value.KindInt, q, step)
		tag := b.Arith(ir.OpRem, value.KindInt, tag0, n)
		t := b.Call(newToken, nf, tag)
		r := b.Call(findInMemory, tv, t)
		nullR := b.ConstNull()
		b.Br(value.KindRef, ir.CondEQ, r, nullR, qMiss)
		sz := b.GetField(r, fSize)
		b.ArithTo(found, ir.OpAdd, value.KindInt, found, sz)
		b.Goto(qNext)
		b.Bind(qMiss)
		b.IncInt(found, -1)
		b.Bind(qNext)
		b.Sink(found)
		b.IncInt(q, 1)
		b.Bind(qCond)
		b.Br(value.KindInt, ir.CondLT, q, nq, qBody)

		fp := b.GetField(tv, fPtr)
		b.Sink(fp)
		b.Return(found)
		p.Entry = b.Finish()
	}
	return p
}

func init() {
	register(&Workload{
		Name:             "jess",
		Suite:            "SPECjvm98",
		Description:      "Java expert shell system",
		PaperCompiledPct: 70.3,
		Build:            buildJess,
	})
}
