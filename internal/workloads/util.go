package workloads

import (
	"strider/internal/ir"
	"strider/internal/value"
)

// emitLCGStep emits a linear-congruential step on the int register seed
// (seed = seed*1103515245 + 12345) and returns a fresh register holding
// (seed >>> 16) & mask — the deterministic pseudo-random source every
// workload uses.
func emitLCGStep(b *ir.Builder, seed ir.Reg, mask int32) ir.Reg {
	m := b.ConstInt(1103515245)
	c := b.ConstInt(12345)
	t := b.Arith(ir.OpMul, value.KindInt, seed, m)
	b.ArithTo(seed, ir.OpAdd, value.KindInt, t, c)
	sh := b.ConstInt(16)
	u := b.Arith(ir.OpUshr, value.KindInt, seed, sh)
	mk := b.ConstInt(mask)
	return b.Arith(ir.OpAnd, value.KindInt, u, mk)
}

// forInt opens a canonical counted loop `for i = start; i < limit; i += 1`
// and returns the loop variable plus a closer. Usage:
//
//	i, end := forInt(b, 0, limitReg)
//	... body using i ...
//	end()
func forInt(b *ir.Builder, start int32, limit ir.Reg) (ir.Reg, func()) {
	i := b.ConstInt(start)
	cond := b.NewLabel()
	body := b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	return i, func() {
		b.IncInt(i, 1)
		b.Bind(cond)
		b.Br(value.KindInt, ir.CondLT, i, limit, body)
	}
}
