// The _227_mtrt analog: ray tracing against a large scene of sphere
// objects with inlined coordinate fields.
//
// The spheres are allocated consecutively and scanned in order per ray, so
// their field loads carry an inter-iteration stride of the object size
// (72 bytes — above half a line on both machines). Plain inter-iteration
// prefetching therefore applies; the paper reports a modest L2-MPI
// reduction and small speedups for mtrt.
package workloads

import (
	"strider/internal/classfile"
	"strider/internal/ir"
	"strider/internal/value"
)

func mtrtParams(size Size) (int32, int32) {
	if size == SizeFull {
		return 5200, 60 // spheres, rays
	}
	return 900, 12
}

func buildMtrt(size Size) *ir.Program {
	nSpheres, nRays := mtrtParams(size)

	u := classfile.NewUniverse()
	// 7 doubles -> 16 + 56 = 72-byte spheres.
	sphClass := u.MustDefineClass("Sphere", nil,
		classfile.FieldSpec{Name: "cx", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "cy", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "cz", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "r2", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "kd", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "ks", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "em", Kind: value.KindDouble},
	)
	fCX := sphClass.FieldByName("cx")
	fCY := sphClass.FieldByName("cy")
	fCZ := sphClass.FieldByName("cz")
	fR2 := sphClass.FieldByName("r2")
	fKD := sphClass.FieldByName("kd")

	p := ir.NewProgram(u)

	// ::trace(scene, n, ox, oy, oz) -> double — find the best
	// ray-sphere intersection score scanning the whole scene.
	trace := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "trace", value.KindDouble,
			value.KindRef, value.KindInt,
			value.KindDouble, value.KindDouble, value.KindDouble)
		scene, n := b.Param(0), b.Param(1)
		ox, oy, oz := b.Param(2), b.Param(3), b.Param(4)
		best := b.ConstDouble(0)
		one := b.ConstDouble(1)

		s, endS := forInt(b, 0, n)
		sp := b.ArrayLoad(value.KindRef, scene, s)
		cx := b.GetField(sp, fCX) // inter stride 72: prefetched
		cy := b.GetField(sp, fCY)
		cz := b.GetField(sp, fCZ)
		r2 := b.GetField(sp, fR2)
		kd := b.GetField(sp, fKD)
		dx := b.Arith(ir.OpSub, value.KindDouble, cx, ox)
		dy := b.Arith(ir.OpSub, value.KindDouble, cy, oy)
		dz := b.Arith(ir.OpSub, value.KindDouble, cz, oz)
		dx2 := b.Arith(ir.OpMul, value.KindDouble, dx, dx)
		dy2 := b.Arith(ir.OpMul, value.KindDouble, dy, dy)
		dz2 := b.Arith(ir.OpMul, value.KindDouble, dz, dz)
		t0 := b.Arith(ir.OpAdd, value.KindDouble, dx2, dy2)
		d2 := b.Arith(ir.OpAdd, value.KindDouble, t0, dz2)
		miss := b.NewLabel()
		b.Br(value.KindDouble, ir.CondGT, d2, r2, miss)
		den := b.Arith(ir.OpAdd, value.KindDouble, d2, one)
		sc := b.Arith(ir.OpDiv, value.KindDouble, kd, den)
		b.ArithTo(best, ir.OpAdd, value.KindDouble, best, sc)
		b.Bind(miss)
		endS()
		b.Return(best)
		return b.Finish()
	}()

	// ::main() -> int
	{
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		n := b.ConstInt(nSpheres)
		scene := b.NewArray(value.KindRef, n)

		scale := b.ConstDouble(0.01)
		big := b.ConstDouble(400)
		i, endBuild := forInt(b, 0, n)
		sp := b.New(sphClass)
		fi := b.Conv(value.KindDouble, i)
		x := b.Arith(ir.OpMul, value.KindDouble, fi, scale)
		b.PutField(sp, fCX, x)
		y := b.Arith(ir.OpSub, value.KindDouble, big, x)
		b.PutField(sp, fCY, y)
		b.PutField(sp, fCZ, fi)
		r2 := b.ConstDouble(2500)
		b.PutField(sp, fR2, r2)
		kd := b.Arith(ir.OpAdd, value.KindDouble, x, scale)
		b.PutField(sp, fKD, kd)
		b.ArrayStore(value.KindRef, scene, i, sp)
		endBuild()

		total := b.ConstDouble(0)
		nr := b.ConstInt(nRays)
		q, endQ := forInt(b, 0, nr)
		fq := b.Conv(value.KindDouble, q)
		oy := b.Arith(ir.OpMul, value.KindDouble, fq, scale)
		r := b.Call(trace, scene, n, fq, oy, scale)
		b.ArithTo(total, ir.OpAdd, value.KindDouble, total, r)
		endQ()
		b.Sink(total)
		zero := b.ConstInt(0)
		b.Return(zero)
		p.Entry = b.Finish()
	}
	return p
}

func init() {
	register(&Workload{
		Name:             "mtrt",
		Suite:            "SPECjvm98",
		Description:      "Two threaded ray tracing",
		PaperCompiledPct: 75.1,
		Build:            buildMtrt,
	})
}
