package workloads_test

import (
	"testing"

	"strider/internal/harness"
	"strider/internal/oracle"
	"strider/internal/workloads"
)

// TestOracleFingerprintDeterministic: every workload must produce a
// byte-identical architectural fingerprint — result, output checksum,
// demand-load stream, final heap image, live object graph, statics, GC
// count — on two independent oracle runs. This is stronger than checksum
// determinism: it pins the entire observable machine state.
func TestOracleFingerprintDeterministic(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			cfg := oracle.Config{HeapBytes: w.HeapBytes}
			a, err := oracle.Run(w.Build(workloads.SizeSmall), nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := oracle.Run(w.Build(workloads.SizeSmall), nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Equal(b) {
				t.Fatalf("fingerprints diverge across runs:\n%v", a.Diff(b))
			}
			if a.Trap != oracle.TrapNone {
				t.Fatalf("workload traps in the oracle: %s", a.Trap)
			}
		})
	}
}

// TestSerialMatchesRunAll: executing the full workload matrix serially
// and through the deduplicating parallel grid must produce identical
// stats — parallelism and cache state must be invisible in results.
func TestSerialMatchesRunAll(t *testing.T) {
	var specs []harness.Spec
	for _, w := range workloads.All() {
		specs = append(specs, harness.Spec{Workload: w.Name, Size: workloads.SizeSmall})
	}

	harness.ClearCache()
	serial := make([]struct {
		checksum uint64
		cycles   uint64
	}, len(specs))
	for i, s := range specs {
		st, err := harness.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", s.String(), err)
		}
		serial[i].checksum, serial[i].cycles = st.Checksum, st.Cycles
	}

	harness.ClearCache()
	results, err := harness.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Stats.Checksum != serial[i].checksum || r.Stats.Cycles != serial[i].cycles {
			t.Errorf("%s: parallel (checksum %x, cycles %d) != serial (checksum %x, cycles %d)",
				specs[i].String(), r.Stats.Checksum, r.Stats.Cycles,
				serial[i].checksum, serial[i].cycles)
		}
	}
}
