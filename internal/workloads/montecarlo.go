// The JavaGrande MonteCarlo analog: repeated stochastic walks, each
// allocating a fresh result object and sample path.
//
// MonteCarlo runs only 48% of its time in compiled code (Table 3) — the
// rest is allocation and collection. Its sample paths are walked with an
// 8-byte stride (below half a cache line on every configuration), so the
// profitability analysis rejects prefetching and the benchmark is
// unchanged under both algorithms.
package workloads

import (
	"strider/internal/classfile"
	"strider/internal/ir"
	"strider/internal/value"
)

func montecarloParams(size Size) (int32, int32) {
	if size == SizeFull {
		return 18000, 64 // samples, path length
	}
	return 1600, 64
}

func buildMontecarlo(size Size) *ir.Program {
	nSamples, pathLen := montecarloParams(size)

	u := classfile.NewUniverse()
	resClass := u.MustDefineClass("Result", nil,
		classfile.FieldSpec{Name: "sum", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "path", Kind: value.KindRef},
	)
	fSum := resClass.FieldByName("sum")
	fPath := resClass.FieldByName("path")

	p := ir.NewProgram(u)

	// ::walk(seed) -> Result — one stochastic path: allocate, fill, fold.
	walk := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "walk", value.KindRef, value.KindInt)
		seed := b.NewReg()
		b.MoveTo(seed, b.Param(0))
		r := b.New(resClass)
		pl := b.ConstInt(pathLen)
		path := b.NewArray(value.KindDouble, pl)
		b.PutField(r, fPath, path)
		scale := b.ConstDouble(1.0 / 32768.0)
		level := b.ConstDouble(0)

		i, endFill := forInt(b, 0, pl)
		rv := emitLCGStep(b, seed, 0x7FFF)
		fv := b.Conv(value.KindDouble, rv)
		d := b.Arith(ir.OpMul, value.KindDouble, fv, scale)
		b.ArithTo(level, ir.OpAdd, value.KindDouble, level, d)
		b.ArrayStore(value.KindDouble, path, i, level)
		endFill()

		// Fold the path (8-byte stride: rejected by profitability).
		acc := b.ConstDouble(0)
		j, endFold := forInt(b, 0, pl)
		x := b.ArrayLoad(value.KindDouble, path, j)
		b.ArithTo(acc, ir.OpAdd, value.KindDouble, acc, x)
		endFold()
		_ = j
		b.PutField(r, fSum, acc)
		b.Return(r)
		return b.Finish()
	}()

	// ::main() -> int
	{
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		total := b.ConstDouble(0)
		ns := b.ConstInt(nSamples)
		s, endS := forInt(b, 0, ns)
		seed0 := b.Arith(ir.OpMul, value.KindInt, s, b.ConstInt(1640531527))
		r := b.Call(walk, seed0)
		v := b.GetField(r, fSum)
		b.ArithTo(total, ir.OpAdd, value.KindDouble, total, v)
		endS()
		b.Sink(total)
		zero := b.ConstInt(0)
		b.Return(zero)
		p.Entry = b.Finish()
	}
	return p
}

func init() {
	register(&Workload{
		Name:             "montecarlo",
		Suite:            "JavaGrande",
		Description:      "Monte Carlo simulation",
		PaperCompiledPct: 48.0,
		HeapBytes:        3 << 20,
		Build:            buildMontecarlo,
	})
}
