package harness

import (
	"strings"
	"testing"
)

func TestRenderBars(t *testing.T) {
	out := RenderBars("t", "u", []BarGroup{
		{Label: "g1", Bars: []Bar{{"a", 10}, {"b", -5}}},
		{Label: "g2", Bars: []Bar{{"a", 0}}},
	}, 20)
	if !strings.Contains(out, "g1") || !strings.Contains(out, "g2") {
		t.Error("labels missing")
	}
	if !strings.Contains(out, "█") {
		t.Error("positive bar missing")
	}
	if !strings.Contains(out, "▒") {
		t.Error("negative bar missing")
	}
	if !strings.Contains(out, "10.00") || !strings.Contains(out, "-5.00") {
		t.Error("values missing")
	}
}

func TestRenderBarsAllZero(t *testing.T) {
	out := RenderBars("t", "u", []BarGroup{{Label: "g", Bars: []Bar{{"a", 0}}}}, 0)
	if out == "" || strings.Contains(out, "NaN") {
		t.Error("zero chart must render without NaN")
	}
}

func TestSpeedupChartAndMPIChart(t *testing.T) {
	s := SpeedupChart("f", []SpeedupRow{{Workload: "db", Inter: 0, InterIntra: 18.9, PaperBoth: 18.9}})
	if !strings.Contains(s, "db") || !strings.Contains(s, "INTER+INTRA") {
		t.Error("speedup chart incomplete")
	}
	m := MPIChart("f", []MPIRow{{Workload: "db", Baseline: 3, Opt: 1}})
	if !strings.Contains(m, "BASELINE") {
		t.Error("MPI chart incomplete")
	}
}

func TestBarsClampToWidth(t *testing.T) {
	out := RenderBars("t", "u", []BarGroup{
		{Label: "g", Bars: []Bar{{"a", 1e9}, {"b", 1}}},
	}, 10)
	for _, line := range strings.Split(out, "\n") {
		if strings.Count(line, "█") > 10 {
			t.Error("bar exceeds width")
		}
	}
}
