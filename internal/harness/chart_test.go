package harness

import (
	"strings"
	"testing"
)

func TestRenderBars(t *testing.T) {
	out := RenderBars("t", "u", []BarGroup{
		{Label: "g1", Bars: []Bar{{"a", 10}, {"b", -5}}},
		{Label: "g2", Bars: []Bar{{"a", 0}}},
	}, 20)
	if !strings.Contains(out, "g1") || !strings.Contains(out, "g2") {
		t.Error("labels missing")
	}
	if !strings.Contains(out, "█") {
		t.Error("positive bar missing")
	}
	if !strings.Contains(out, "▒") {
		t.Error("negative bar missing")
	}
	if !strings.Contains(out, "10.00") || !strings.Contains(out, "-5.00") {
		t.Error("values missing")
	}
}

func TestRenderBarsAllZero(t *testing.T) {
	out := RenderBars("t", "u", []BarGroup{{Label: "g", Bars: []Bar{{"a", 0}}}}, 0)
	if out == "" || strings.Contains(out, "NaN") {
		t.Error("zero chart must render without NaN")
	}
}

func TestSpeedupChartAndMPIChart(t *testing.T) {
	s := SpeedupChart("f", []SpeedupRow{{Workload: "db", Inter: 0, InterIntra: 18.9, PaperBoth: 18.9}})
	if !strings.Contains(s, "db") || !strings.Contains(s, "INTER+INTRA") {
		t.Error("speedup chart incomplete")
	}
	m := MPIChart("f", []MPIRow{{Workload: "db", Baseline: 3, Opt: 1}})
	if !strings.Contains(m, "BASELINE") {
		t.Error("MPI chart incomplete")
	}
}

// TestRenderBarsLargeNegativeAlignment is the regression test for the
// negative-bar overflow: bars are scaled against `width` cells but used to
// render into a width/2-wide left field, so any negative value above half
// the maximum magnitude overflowed the field and pushed the axis column
// out of alignment.
func TestRenderBarsLargeNegativeAlignment(t *testing.T) {
	const width = 20
	out := RenderBars("t", "u", []BarGroup{
		{Label: "g", Bars: []Bar{{"pos", 100}, {"neg", -90}, {"tiny", 1}}},
	}, width)
	axisCol := -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "|") {
			continue
		}
		// Measure the column in runes so bar cells count like spaces.
		col := len([]rune(line[:strings.Index(line, "|")]))
		if axisCol == -1 {
			axisCol = col
		} else if col != axisCol {
			t.Errorf("axis misaligned: %d vs %d in %q", col, axisCol, line)
		}
	}
	// The -90 bar must keep its full proportional length (18 of 20 cells),
	// not be truncated to the old width/2 field.
	wantNeg := strings.Repeat("▒", 18)
	if !strings.Contains(out, wantNeg) {
		t.Errorf("negative bar truncated:\n%s", out)
	}
}

// TestRenderBarsGolden pins the exact rendering of a mixed-sign chart.
func TestRenderBarsGolden(t *testing.T) {
	out := RenderBars("Fig", "pct", []BarGroup{
		{Label: "w", Bars: []Bar{{"a", 10}, {"b", -8}}},
	}, 10)
	want := "" +
		"Fig (unit: pct, full bar = 10.00)\n" +
		"w\n" +
		"  a           |██████████    10.00\n" +
		"  b   ▒▒▒▒▒▒▒▒|              -8.00\n"
	if out != want {
		t.Errorf("golden mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

func TestBarsClampToWidth(t *testing.T) {
	out := RenderBars("t", "u", []BarGroup{
		{Label: "g", Bars: []Bar{{"a", 1e9}, {"b", 1}}},
	}, 10)
	for _, line := range strings.Split(out, "\n") {
		if strings.Count(line, "█") > 10 {
			t.Error("bar exceeds width")
		}
	}
}
