package harness

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"strider/internal/telemetry"
	"strider/internal/vm"
)

// Result is the outcome of one grid cell.
type Result struct {
	Spec  Spec
	Stats vm.RunStats
	Err   error
	// Wall is the wall-clock time this cell took from the caller's point
	// of view (near zero for cache hits).
	Wall time.Duration
	// Shared is true when the cell was served from the result cache or
	// joined an execution already in flight instead of running its own VM.
	Shared bool
}

// Grid is a batch of experiment cells scheduled across a bounded worker
// pool. Cells are independent deterministic simulations, so any subset may
// run concurrently; duplicate specs (within the grid or across concurrent
// grids) collapse onto one execution via the engine's singleflight layer.
type Grid struct {
	Specs []Spec
	// Parallel is the worker count; 0 uses the package default
	// (SetParallelism, itself defaulting to GOMAXPROCS).
	Parallel int
	// Progress, when non-nil, is called after each cell completes with the
	// number of completed cells so far. Calls are serialized.
	Progress func(done, total int, r Result)
}

var (
	parallelMu      sync.Mutex
	defaultParallel int       // 0 = GOMAXPROCS
	progressW       io.Writer // nil = no progress lines
)

// SetParallelism sets the default worker-pool size for grids that do not
// specify one. n <= 0 restores the default (GOMAXPROCS).
func SetParallelism(n int) {
	parallelMu.Lock()
	defer parallelMu.Unlock()
	if n < 0 {
		n = 0
	}
	defaultParallel = n
}

// Parallelism returns the current default worker-pool size.
func Parallelism() int {
	parallelMu.Lock()
	defer parallelMu.Unlock()
	if defaultParallel > 0 {
		return defaultParallel
	}
	return runtime.GOMAXPROCS(0)
}

// SetProgress directs per-cell progress lines (cell name, wall-clock, and
// running counts) to w; nil disables them. Progress goes to its own writer
// precisely so that table/figure output stays byte-identical regardless of
// parallelism.
func SetProgress(w io.Writer) {
	parallelMu.Lock()
	defer parallelMu.Unlock()
	progressW = w
}

func progressWriter() io.Writer {
	parallelMu.Lock()
	defer parallelMu.Unlock()
	return progressW
}

// printMu serializes all progress-line writes process-wide. The per-Run
// bookkeeping mutex is not enough: concurrent Grids (the differ, nested
// figure batches, tests with -parallel) share one progress writer, and
// unserialized Write calls from two pools race and interleave lines.
var printMu sync.Mutex

// printProgress writes one complete progress line under the process-wide
// printer lock.
func printProgress(w io.Writer, line string) {
	printMu.Lock()
	defer printMu.Unlock()
	io.WriteString(w, line)
}

// Run executes every cell and returns results in Specs order.
func (g Grid) Run() []Result {
	results := make([]Result, len(g.Specs))
	if len(g.Specs) == 0 {
		return results
	}
	workers := g.Parallel
	if workers <= 0 {
		workers = Parallelism()
	}
	if workers > len(g.Specs) {
		workers = len(g.Specs)
	}

	var (
		progressMu sync.Mutex
		done       int
	)
	w := progressWriter()
	rec := Recorder()
	report := func(r Result) {
		if rec != nil {
			ev := telemetry.CellEvent{
				Cell:   r.Spec.withDefaults().String(),
				Wall:   r.Wall,
				Shared: r.Shared,
			}
			if r.Err != nil {
				ev.Err = r.Err.Error()
			}
			rec.Cell(ev)
		}
		if g.Progress == nil && w == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		done++
		if w != nil {
			note := ""
			if r.Shared {
				note = " (shared)"
			}
			if r.Err != nil {
				note = " ERROR: " + r.Err.Error()
			}
			line := fmt.Sprintf("[%*d/%d] %-40s %10s%s\n",
				len(fmt.Sprint(len(g.Specs))), done, len(g.Specs),
				r.Spec.withDefaults().String(), r.Wall.Round(time.Millisecond), note)
			printProgress(w, line)
		}
		if g.Progress != nil {
			g.Progress(done, len(g.Specs), r)
		}
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				start := time.Now()
				stats, fresh, err := run(g.Specs[i])
				results[i] = Result{
					Spec:   g.Specs[i],
					Stats:  stats,
					Err:    err,
					Wall:   time.Since(start),
					Shared: !fresh,
				}
				report(results[i])
			}
		}()
	}
	for i := range g.Specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// RunAll executes specs with the default worker pool and returns results
// in order; the error is the first cell error in spec order, if any.
func RunAll(specs []Spec) ([]Result, error) {
	results := Grid{Specs: specs}.Run()
	for _, r := range results {
		if r.Err != nil {
			return results, r.Err
		}
	}
	return results, nil
}

// runBatch executes specs and returns just their stats in order, failing
// on the first cell error.
func runBatch(specs []Spec) ([]vm.RunStats, error) {
	results, err := RunAll(specs)
	if err != nil {
		return nil, err
	}
	stats := make([]vm.RunStats, len(results))
	for i, r := range results {
		stats[i] = r.Stats
	}
	return stats, nil
}
