// Package harness runs the paper's experiments: it executes workloads on
// configured VMs (warmup run + measured run, mirroring the paper's
// best-run-under-continuous-execution methodology), caches results within
// the process, and regenerates every table and figure of the evaluation
// section.
package harness

import (
	"fmt"
	"sync"

	"strider/internal/arch"
	"strider/internal/core/jit"
	"strider/internal/heap"
	"strider/internal/vm"
	"strider/internal/workloads"
)

// Spec identifies one experimental run.
type Spec struct {
	Workload string
	Size     workloads.Size
	Machine  string // "Pentium4" or "AthlonMP"
	Mode     jit.Mode
	GC       heap.GCMode

	// Warmups is the number of discarded runs before the measured run
	// (default 1 — enough for every method to be JIT-compiled).
	Warmups int
	// HeapBytes overrides the workload's heap hint when non-zero.
	HeapBytes uint32
	// JIT overrides the paper-default compiler options when non-nil.
	JIT *jit.Options
}

func (s Spec) withDefaults() Spec {
	if s.Machine == "" {
		s.Machine = "Pentium4"
	}
	if s.Warmups == 0 {
		s.Warmups = 1
	}
	return s
}

func (s Spec) key() string {
	j := ""
	if s.JIT != nil {
		j = fmt.Sprintf("|c%d|k%d|t%.2f|st%d|ip%v|ac%v",
			s.JIT.C, s.JIT.Inspect.Iterations, s.JIT.Threshold,
			s.JIT.SmallTrip, s.JIT.Inspect.Interprocedural, s.JIT.AdaptiveC)
	}
	return fmt.Sprintf("%s|%s|%s|%s|gc%d|w%d|h%d%s",
		s.Workload, s.Size, s.Machine, s.Mode, s.GC, s.Warmups, s.HeapBytes, j)
}

var (
	cacheMu sync.Mutex
	cache   = map[string]vm.RunStats{}
)

// ClearCache drops all cached results (tests use it for isolation).
func ClearCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	cache = map[string]vm.RunStats{}
}

// Run executes a spec (or returns the process-cached result).
func Run(s Spec) (vm.RunStats, error) {
	s = s.withDefaults()
	k := s.key()
	cacheMu.Lock()
	if r, ok := cache[k]; ok {
		cacheMu.Unlock()
		return r, nil
	}
	cacheMu.Unlock()

	w, err := workloads.ByName(s.Workload)
	if err != nil {
		return vm.RunStats{}, err
	}
	m := arch.ByName(s.Machine)
	if m == nil {
		return vm.RunStats{}, fmt.Errorf("harness: unknown machine %q", s.Machine)
	}
	heapBytes := s.HeapBytes
	if heapBytes == 0 {
		heapBytes = w.HeapBytes
	}
	prog := w.Build(s.Size)
	if err := prog.Validate(); err != nil {
		return vm.RunStats{}, fmt.Errorf("harness: %s: %w", s.Workload, err)
	}
	var jitOpts *jit.Options
	if s.JIT != nil {
		o := *s.JIT
		o.Mode = s.Mode
		o.Machine = m
		jitOpts = &o
	}
	v := vm.New(prog, vm.Config{
		Machine:   m,
		Mode:      s.Mode,
		HeapBytes: heapBytes,
		GC:        s.GC,
		JIT:       jitOpts,
	})
	stats, err := v.Measure(nil, s.Warmups)
	if err != nil {
		return vm.RunStats{}, fmt.Errorf("harness: %s/%s/%s: %w", s.Workload, s.Machine, s.Mode, err)
	}
	cacheMu.Lock()
	cache[k] = stats
	cacheMu.Unlock()
	return stats, nil
}

// SpeedupPct returns the percentage speedup of opt over base
// (positive = faster, the paper's Figure 6/7 metric).
func SpeedupPct(base, opt vm.RunStats) float64 {
	if opt.Cycles == 0 {
		return 0
	}
	return 100 * (float64(base.Cycles)/float64(opt.Cycles) - 1)
}

// Speedups runs BASELINE, INTER, and INTER+INTRA for one workload on one
// machine and returns (interPct, interIntraPct).
func Speedups(name, machine string, size workloads.Size) (float64, float64, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return 0, 0, err
	}
	base, err := Run(Spec{Workload: name, Size: size, Machine: machine, Mode: jit.Baseline, HeapBytes: w.HeapBytes})
	if err != nil {
		return 0, 0, err
	}
	inter, err := Run(Spec{Workload: name, Size: size, Machine: machine, Mode: jit.Inter, HeapBytes: w.HeapBytes})
	if err != nil {
		return 0, 0, err
	}
	both, err := Run(Spec{Workload: name, Size: size, Machine: machine, Mode: jit.InterIntra, HeapBytes: w.HeapBytes})
	if err != nil {
		return 0, 0, err
	}
	return SpeedupPct(base, inter), SpeedupPct(base, both), nil
}
