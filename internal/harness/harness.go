// Package harness runs the paper's experiments: it executes workloads on
// configured VMs (warmup run + measured run, mirroring the paper's
// best-run-under-continuous-execution methodology), caches results within
// the process, and regenerates every table and figure of the evaluation
// section.
//
// Every run is an independent, deterministic simulation, so the harness
// schedules batches of runs across a bounded worker pool (see grid.go) and
// deduplicates concurrent requests for the same cell with singleflight
// semantics layered on the result cache: N callers asking for the same Spec
// share one VM execution.
package harness

import (
	"fmt"
	"sync"
	"sync/atomic"

	"strider/internal/arch"
	"strider/internal/core/jit"
	"strider/internal/heap"
	"strider/internal/memsim"
	"strider/internal/static"
	"strider/internal/telemetry"
	"strider/internal/vm"
	"strider/internal/workloads"
)

// Spec identifies one experimental run.
type Spec struct {
	Workload string
	Size     workloads.Size
	Machine  string // "Pentium4" or "AthlonMP"
	Mode     jit.Mode
	GC       heap.GCMode

	// Warmups is the number of discarded runs before the measured run
	// (default 1 — enough for every method to be JIT-compiled).
	Warmups int
	// HeapBytes overrides the workload's heap hint when non-zero.
	HeapBytes uint32
	// JIT overrides the paper-default compiler options when non-nil.
	JIT *jit.Options
	// HW selects the hardware-prefetcher model memsim simulates. Empty
	// means the process default (SetHWModel), which itself defaults to the
	// machine's model (the stream detector).
	HW string
	// Predict selects the prediction source feeding prefetch decisions:
	// "dynamic" (the paper's object inspection), "static" (the offline
	// analyzer), or "pgo" (replay a recorded profile; the harness builds
	// and caches the profile from a dynamic run of the same cell). Empty
	// means the process default (SetPredict), which defaults to dynamic.
	Predict string
	// Exec selects the execution backend for JIT-compiled methods:
	// "interp" (the step loop) or "compiled" (the threaded-code tier).
	// Empty means the process default (SetExec), which defaults to
	// interp. The backends are semantically identical, so this axis only
	// changes host-side speed — but it is part of the cell key, because
	// pooled VMs and cached artifacts are backend-specific.
	Exec string
}

func (s Spec) withDefaults() Spec {
	if s.Machine == "" {
		s.Machine = "Pentium4"
	}
	if s.Warmups == 0 {
		s.Warmups = 1
	}
	if s.HW == "" {
		s.HW = HWModel()
	}
	if s.Predict == "" {
		s.Predict = PredictSource()
	}
	if s.Predict == "" {
		s.Predict = "dynamic"
	}
	if s.Exec == "" {
		s.Exec = ExecBackend()
	}
	if s.Exec == "" {
		s.Exec = "interp"
	}
	return s
}

func (s Spec) key() string {
	j := ""
	if s.JIT != nil {
		j = fmt.Sprintf("|c%d|k%d|t%.2f|st%d|ip%v|ac%v",
			s.JIT.C, s.JIT.Inspect.Iterations, s.JIT.Threshold,
			s.JIT.SmallTrip, s.JIT.Inspect.Interprocedural, s.JIT.AdaptiveC)
	}
	if s.HW != "" {
		j += "|hw:" + s.HW
	}
	// Dynamic prediction is the identity every pre-existing key encoded;
	// only the new sources extend the key.
	if s.Predict != "" && s.Predict != "dynamic" {
		j += "|pr:" + s.Predict
	}
	// Likewise, the interpreted backend is the identity pre-existing keys
	// encoded.
	if s.Exec != "" && s.Exec != "interp" {
		j += "|ex:" + s.Exec
	}
	return fmt.Sprintf("%s|%s|%s|%s|gc%d|w%d|h%d%s",
		s.Workload, s.Size, s.Machine, s.Mode, s.GC, s.Warmups, s.HeapBytes, j)
}

// String renders the cell for progress lines and error messages.
func (s Spec) String() string {
	return fmt.Sprintf("%s/%s/%s/%s", s.Workload, s.Size, s.Machine, s.Mode)
}

// Canonical returns the spec with the engine defaults applied (machine,
// warmup count, process-wide hardware-prefetcher model).
func (s Spec) Canonical() Spec { return s.withDefaults() }

// Key returns the engine's canonical cache key for the spec, defaults
// applied. Two specs with the same key are the same cell: the result
// cache, the singleflight layer, and the execution server's shard and
// pool maps all hash this identity.
func (s Spec) Key() string { return s.withDefaults().key() }

// call is one in-flight execution other callers of the same key block on.
type call struct {
	done  chan struct{}
	stats vm.RunStats
	err   error
}

var (
	cacheMu  sync.Mutex
	cache    = map[string]vm.RunStats{}
	inflight = map[string]*call{}

	recorderMu sync.Mutex
	recorder   telemetry.Recorder

	hwMu      sync.Mutex
	hwDefault string

	predictMu      sync.Mutex
	predictDefault string

	execMu      sync.Mutex
	execDefault string
)

// SetHWModel installs the process-wide default hardware-prefetcher model
// applied to specs that leave HW empty (the experiments CLI's -hw flag).
// Empty restores the built-in default (the machine's stream detector).
// Returns an error for a model memsim does not know.
func SetHWModel(name string) error {
	if !memsim.ValidHWModel(name) {
		return fmt.Errorf("harness: unknown hardware-prefetcher model %q (valid: %v)",
			name, memsim.HWModels())
	}
	hwMu.Lock()
	defer hwMu.Unlock()
	hwDefault = name
	return nil
}

// HWModel returns the process-wide default hardware-prefetcher model
// ("" when unset).
func HWModel() string {
	hwMu.Lock()
	defer hwMu.Unlock()
	return hwDefault
}

// SetPredict installs the process-wide default prediction source applied
// to specs that leave Predict empty (the experiments CLI's -predict
// flag). Empty restores the built-in default (dynamic inspection).
// Returns an error for a source jit does not know.
func SetPredict(name string) error {
	if _, err := jit.ParsePredict(name); err != nil {
		return fmt.Errorf("harness: %w", err)
	}
	predictMu.Lock()
	defer predictMu.Unlock()
	predictDefault = name
	return nil
}

// PredictSource returns the process-wide default prediction source
// ("" when unset).
func PredictSource() string {
	predictMu.Lock()
	defer predictMu.Unlock()
	return predictDefault
}

// SetExec installs the process-wide default execution backend applied to
// specs that leave Exec empty (the experiments CLI's -exec flag). Empty
// restores the built-in default (the interpreter's step loop). Returns
// an error for a backend vm does not know.
func SetExec(name string) error {
	if _, err := vm.ParseExec(name); err != nil {
		return fmt.Errorf("harness: %w", err)
	}
	execMu.Lock()
	defer execMu.Unlock()
	execDefault = name
	return nil
}

// ExecBackend returns the process-wide default execution backend
// ("" when unset).
func ExecBackend() string {
	execMu.Lock()
	defer execMu.Unlock()
	return execDefault
}

// SetRecorder installs a process-wide telemetry Recorder: every fresh VM
// execution threads it through the VM (compile/loop/decision/site events)
// and every grid cell reports a CellEvent. nil disables telemetry. The
// Recorder must be safe for concurrent use — grid workers all emit into
// it. Cached or deduplicated cells emit only their CellEvent: the
// compile-time events of a spec are recorded once, by the execution that
// actually ran.
func SetRecorder(r telemetry.Recorder) {
	recorderMu.Lock()
	defer recorderMu.Unlock()
	recorder = r
}

// Recorder returns the installed process-wide recorder (nil when unset).
func Recorder() telemetry.Recorder {
	recorderMu.Lock()
	defer recorderMu.Unlock()
	return recorder
}

// Counters reports how the engine satisfied Run requests since the last
// ClearCache: fresh VM executions, completed-result cache hits, requests
// that joined an execution already in flight (singleflight), and PGO
// profile-cache hits and misses (a miss is one profiling run).
type Counters struct {
	Executions    uint64
	CacheHits     uint64
	DedupHits     uint64
	ProfileHits   uint64
	ProfileMisses uint64
}

var counters struct {
	executions    atomic.Uint64
	cacheHits     atomic.Uint64
	dedupHits     atomic.Uint64
	profileHits   atomic.Uint64
	profileMisses atomic.Uint64
}

// EngineCounters returns a snapshot of the engine's request counters.
func EngineCounters() Counters {
	return Counters{
		Executions:    counters.executions.Load(),
		CacheHits:     counters.cacheHits.Load(),
		DedupHits:     counters.dedupHits.Load(),
		ProfileHits:   counters.profileHits.Load(),
		ProfileMisses: counters.profileMisses.Load(),
	}
}

// ClearCache drops all cached results (including cached PGO profiles) and
// resets the engine counters (tests use it for isolation). In-flight
// executions are unaffected: they publish into the new cache when they
// complete.
func ClearCache() {
	cacheMu.Lock()
	cache = map[string]vm.RunStats{}
	counters.executions.Store(0)
	counters.cacheHits.Store(0)
	counters.dedupHits.Store(0)
	counters.profileHits.Store(0)
	counters.profileMisses.Store(0)
	cacheMu.Unlock()
	profMu.Lock()
	profiles = map[string]*static.Profile{}
	profMu.Unlock()
}

// Run executes a spec (or returns the process-cached result). Concurrent
// callers with the same spec share a single underlying VM execution.
func Run(s Spec) (vm.RunStats, error) {
	stats, _, err := run(s)
	return stats, err
}

// run is Run plus a flag reporting whether this call performed the
// execution itself (false: served from cache or joined an in-flight run).
func run(s Spec) (vm.RunStats, bool, error) {
	s = s.withDefaults()
	k := s.key()
	cacheMu.Lock()
	if r, ok := cache[k]; ok {
		counters.cacheHits.Add(1)
		cacheMu.Unlock()
		return r, false, nil
	}
	if c, ok := inflight[k]; ok {
		counters.dedupHits.Add(1)
		cacheMu.Unlock()
		<-c.done
		return c.stats, false, c.err
	}
	c := &call{done: make(chan struct{})}
	inflight[k] = c
	cacheMu.Unlock()

	counters.executions.Add(1)
	c.stats, c.err = execute(s)

	cacheMu.Lock()
	if c.err == nil {
		cache[k] = c.stats
	}
	delete(inflight, k)
	cacheMu.Unlock()
	close(c.done)
	return c.stats, true, c.err
}

// execute performs one isolated run: a fresh program build, a fresh VM,
// and (inside vm.New) a fresh memory simulation — cells share nothing, so
// any number may run concurrently.
func execute(s Spec) (vm.RunStats, error) {
	v, err := NewVM(s, Recorder())
	if err != nil {
		return vm.RunStats{}, err
	}
	stats, err := v.Measure(nil, s.Warmups)
	if err != nil {
		return vm.RunStats{}, fmt.Errorf("harness: %s/%s/%s: %w", s.Workload, s.Machine, s.Mode, err)
	}
	v.FlushTelemetry()
	return stats, nil
}

// NewVM constructs the fresh VM one execution of the spec uses: the
// workload's program built at the spec's size on the configured machine,
// heap, and JIT options, with rec (which may be nil) threaded through as
// the VM's telemetry recorder. Run, Explain, and the execution server's
// pooled executor all build VMs here, so a cell means exactly the same
// simulation everywhere. The spec should be Canonical; NewVM does not
// apply defaults.
func NewVM(s Spec, rec telemetry.Recorder) (*vm.VM, error) {
	w, err := workloads.ByName(s.Workload)
	if err != nil {
		return nil, err
	}
	m := arch.ByName(s.Machine)
	if m == nil {
		return nil, fmt.Errorf("harness: unknown machine %q", s.Machine)
	}
	m, err = machineWithHW(m, s.HW)
	if err != nil {
		return nil, err
	}
	heapBytes := s.HeapBytes
	if heapBytes == 0 {
		heapBytes = w.HeapBytes
	}
	prog := w.Build(s.Size)
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("harness: %s: %w", s.Workload, err)
	}
	var jitOpts *jit.Options
	if s.JIT != nil {
		o := *s.JIT
		o.Mode = s.Mode
		o.Machine = m
		jitOpts = &o
	}
	ps, err := jit.ParsePredict(s.Predict)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	if ps != jit.PredictDynamic {
		if jitOpts == nil {
			o := jit.DefaultOptions(m, s.Mode)
			jitOpts = &o
		}
		jitOpts.Predict = ps
		if ps == jit.PredictPGO {
			prof, err := ProfileFor(s)
			if err != nil {
				return nil, err
			}
			jitOpts.Profile = prof
		}
	}
	xb, err := vm.ParseExec(s.Exec)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	return vm.New(prog, vm.Config{
		Machine:   m,
		Mode:      s.Mode,
		HeapBytes: heapBytes,
		GC:        s.GC,
		Exec:      xb,
		JIT:       jitOpts,
		Recorder:  rec,
	}), nil
}

// Explain runs one spec on a fresh, uncached VM with a private trace
// recorder and returns the human-readable per-loop decision log: every
// JIT compilation, inspection verdict, and Sec. 3.3 filter decision, plus
// the measured run's per-site prefetch attribution. The process cache is
// bypassed (and left untouched) so the log is always complete.
func Explain(s Spec) (string, error) {
	s = s.withDefaults()
	tr := telemetry.NewTrace()
	v, err := NewVM(s, tr)
	if err != nil {
		return "", err
	}
	if _, err := v.Measure(nil, s.Warmups); err != nil {
		return "", fmt.Errorf("harness: %s/%s/%s: %w", s.Workload, s.Machine, s.Mode, err)
	}
	v.FlushTelemetry()
	return tr.DecisionLog(), nil
}

// machineWithHW applies a spec's hardware-prefetcher selection to the
// machine. Registry machines are shared pointers, so a non-empty
// selection runs on a private copy; an empty selection returns the
// machine untouched (its own default model).
func machineWithHW(m *arch.Machine, hw string) (*arch.Machine, error) {
	if !memsim.ValidHWModel(hw) {
		return nil, fmt.Errorf("harness: unknown hardware-prefetcher model %q (valid: %v)",
			hw, memsim.HWModels())
	}
	if hw == "" {
		return m, nil
	}
	mc := *m
	mc.HWPrefetcher = hw
	return &mc, nil
}

// SpeedupPct returns the percentage speedup of opt over base
// (positive = faster, the paper's Figure 6/7 metric).
func SpeedupPct(base, opt vm.RunStats) float64 {
	if opt.Cycles == 0 {
		return 0
	}
	return 100 * (float64(base.Cycles)/float64(opt.Cycles) - 1)
}

// Speedups runs BASELINE, INTER, and INTER+INTRA for one workload on one
// machine and returns (interPct, interIntraPct). The three cells run as
// one batch across the worker pool.
func Speedups(name, machine string, size workloads.Size) (float64, float64, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return 0, 0, err
	}
	stats, err := runBatch(modeSpecs(w, machine, size))
	if err != nil {
		return 0, 0, err
	}
	return SpeedupPct(stats[0], stats[1]), SpeedupPct(stats[0], stats[2]), nil
}

// modeSpecs builds the three evaluation cells (BASELINE, INTER,
// INTER+INTRA) of one workload on one machine.
func modeSpecs(w *workloads.Workload, machine string, size workloads.Size) []Spec {
	specs := make([]Spec, 0, 3)
	for _, mode := range []jit.Mode{jit.Baseline, jit.Inter, jit.InterIntra} {
		specs = append(specs, Spec{Workload: w.Name, Size: size, Machine: machine, Mode: mode, HeapBytes: w.HeapBytes})
	}
	return specs
}
