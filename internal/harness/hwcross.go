package harness

import (
	"fmt"
	"strings"

	"strider/internal/core/jit"
	"strider/internal/memsim"
	"strider/internal/workloads"
)

// hwCrossWorkloads are the workloads of the software×hardware ablation:
// the paper's three headline benchmarks (db, jess, euler — the ones with
// stated speedups) plus mtrt, the pointer-chasing stress case where
// hardware stride detection has the least to work with.
var hwCrossWorkloads = []string{"jess", "db", "euler", "mtrt"}

// HWCrossRow is one (machine, hardware model, workload) group of the
// software×hardware cross-product: the software-prefetching speedups
// measured with that hardware prefetcher underneath, plus what the
// hardware unit itself did during the BASELINE run.
type HWCrossRow struct {
	Machine  string
	HW       string
	Workload string

	BaselineCycles uint64
	InterPct       float64 // INTER speedup over BASELINE, %
	InterIntraPct  float64 // INTER+INTRA speedup over BASELINE, %

	// Hardware-prefetcher statistics of the BASELINE cell (no software
	// prefetching — the unit sees the raw demand-miss stream).
	HWTrains     uint64
	HWIssued     uint64
	HWSuppressed uint64
}

// HWCross measures the software×hardware cross-product: for every
// machine, every hardware-prefetcher model in the zoo, and every ablation
// workload, it runs BASELINE, INTER, and INTER+INTRA and reports the
// software speedups under that hardware model. All cells run as one batch
// across the worker pool.
func HWCross(size workloads.Size) ([]HWCrossRow, error) {
	machines := []string{"Pentium4", "AthlonMP"}
	models := memsim.HWModels()

	var specs []Spec
	for _, machine := range machines {
		for _, hw := range models {
			for _, name := range hwCrossWorkloads {
				w, err := workloads.ByName(name)
				if err != nil {
					return nil, err
				}
				for _, mode := range []jit.Mode{jit.Baseline, jit.Inter, jit.InterIntra} {
					specs = append(specs, Spec{
						Workload: name, Size: size, Machine: machine,
						Mode: mode, HeapBytes: w.HeapBytes, HW: hw,
					})
				}
			}
		}
	}
	stats, err := runBatch(specs)
	if err != nil {
		return nil, err
	}

	var rows []HWCrossRow
	i := 0
	for _, machine := range machines {
		for _, hw := range models {
			for _, name := range hwCrossWorkloads {
				base, inter, both := stats[i], stats[i+1], stats[i+2]
				i += 3
				rows = append(rows, HWCrossRow{
					Machine:        machine,
					HW:             hw,
					Workload:       name,
					BaselineCycles: base.Cycles,
					InterPct:       SpeedupPct(base, inter),
					InterIntraPct:  SpeedupPct(base, both),
					HWTrains:       base.HW.Trains,
					HWIssued:       base.HW.Issued,
					HWSuppressed:   base.HW.Suppressed,
				})
			}
		}
	}
	return rows, nil
}

// FormatHWCross renders the cross-product as one table per machine.
func FormatHWCross(rows []HWCrossRow) string {
	var sb strings.Builder
	sb.WriteString("Software x hardware prefetching cross-product\n")
	sb.WriteString("(software speedup over BASELINE under each hardware-prefetcher model;\n")
	sb.WriteString(" hw columns are the unit's activity during the BASELINE run)\n")
	machine := ""
	for _, r := range rows {
		if r.Machine != machine {
			machine = r.Machine
			fmt.Fprintf(&sb, "\n%s\n", machine)
			fmt.Fprintf(&sb, "%-12s %-11s %14s %9s %9s %10s %10s %10s\n",
				"hw model", "benchmark", "base cycles", "INTER", "I+I",
				"hw trains", "hw issued", "hw suppr")
		}
		fmt.Fprintf(&sb, "%-12s %-11s %14d %+8.2f%% %+8.2f%% %10d %10d %10d\n",
			r.HW, r.Workload, r.BaselineCycles, r.InterPct, r.InterIntraPct,
			r.HWTrains, r.HWIssued, r.HWSuppressed)
	}
	return sb.String()
}
