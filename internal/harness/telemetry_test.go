package harness

import (
	"strings"
	"testing"

	"strider/internal/core/jit"
	"strider/internal/telemetry"
	"strider/internal/workloads"
)

// TestRecorderUnderParallelGrid hammers one shared Trace from parallel
// grid workers (the -race CI job makes this a data-race detector): a mix
// of distinct and duplicate cells, so fresh executions, singleflight
// joins, and cache hits all emit into the same recorder concurrently.
func TestRecorderUnderParallelGrid(t *testing.T) {
	ClearCache()
	tr := telemetry.NewTrace()
	SetRecorder(tr)
	defer SetRecorder(nil)

	var specs []Spec
	for i := 0; i < 4; i++ { // duplicates on purpose
		for _, mode := range []jit.Mode{jit.Baseline, jit.InterIntra} {
			for _, machine := range []string{"Pentium4", "AthlonMP"} {
				specs = append(specs, Spec{
					Workload: "search", Size: workloads.SizeSmall,
					Machine: machine, Mode: mode,
				})
			}
		}
	}
	results := Grid{Specs: specs, Parallel: 8}.Run()
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Spec, r.Err)
		}
	}

	var cells, compiles, sites int
	for _, ev := range tr.Events() {
		switch ev.(type) {
		case telemetry.CellEvent:
			cells++
		case telemetry.CompileEvent:
			compiles++
		case telemetry.SiteEvent:
			sites++
		}
	}
	if cells != len(specs) {
		t.Errorf("cell events = %d, want %d (one per grid cell)", cells, len(specs))
	}
	// Only the 4 distinct specs execute; duplicates join or hit the cache
	// and contribute cell events only.
	if compiles == 0 {
		t.Error("no compile events reached the shared recorder")
	}
	if sites == 0 {
		t.Error("no site events reached the shared recorder")
	}
}

// TestExplainIsDeterministicAndComplete runs Explain twice for the same
// spec: the logs must be byte-identical (the golden-trace suite depends on
// this) and carry each layer of the decision trace.
func TestExplainIsDeterministicAndComplete(t *testing.T) {
	spec := Spec{Workload: "search", Size: workloads.SizeSmall,
		Machine: "Pentium4", Mode: jit.InterIntra}
	a, err := Explain(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explain(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("Explain is not deterministic:\n--- first\n%s\n--- second\n%s", a, b)
	}
	for _, want := range []string{"method ", "ledger:", "loop @B", "LOOP_"} {
		if !strings.Contains(a, want) {
			t.Errorf("decision log missing %q:\n%s", want, a)
		}
	}
}

// TestExplainLeavesCacheUntouched: Explain must bypass the result cache
// in both directions — no hit taken, no entry published.
func TestExplainLeavesCacheUntouched(t *testing.T) {
	ClearCache()
	spec := Spec{Workload: "search", Size: workloads.SizeSmall,
		Machine: "AthlonMP", Mode: jit.Inter}
	if _, err := Explain(spec); err != nil {
		t.Fatal(err)
	}
	c := EngineCounters()
	if c.Executions != 0 || c.CacheHits != 0 {
		t.Errorf("Explain touched the engine: %+v", c)
	}
	if _, _, err := run(spec); err != nil {
		t.Fatal(err)
	}
	if got := EngineCounters().Executions; got != 1 {
		t.Errorf("spec should still execute fresh after Explain, executions = %d", got)
	}
}
