package harness

import (
	"fmt"
	"strings"

	"strider/internal/arch"
	"strider/internal/core/jit"
	"strider/internal/vm"
	"strider/internal/workloads"
)

// paperFig6 and paperFig7 hold the paper's reported speedups in percent
// (INTER, INTER+INTRA). Values stated in the text (Sec. 4) are exact:
// db 18.9/25.1, jess 2.0/2.9, euler 15.4/14.0; the rest are read off
// Figures 6 and 7 and are approximate.
var paperFig6 = map[string][2]float64{
	"mtrt": {0.5, 1.5}, "jess": {0.2, 2.0}, "compress": {0, 0},
	"db": {0, 18.9}, "mpegaudio": {-1, -1}, "jack": {0, 0},
	"javac": {0, 0}, "euler": {15, 15.4}, "moldyn": {0, 0},
	"montecarlo": {0, 0}, "raytracer": {0, 5}, "search": {0, 0},
}

var paperFig7 = map[string][2]float64{
	"mtrt": {0.5, 1.5}, "jess": {0.3, 2.9}, "compress": {0, 0},
	"db": {0, 25.1}, "mpegaudio": {0, 0}, "jack": {0, 0},
	"javac": {0, 0}, "euler": {13, 14.0}, "moldyn": {2, 3},
	"montecarlo": {0, 0}, "raytracer": {0, -2}, "search": {0, 0},
}

// SpeedupRow is one bar group of Figure 6 or 7.
type SpeedupRow struct {
	Workload   string
	Inter      float64 // measured INTER speedup, %
	InterIntra float64 // measured INTER+INTRA speedup, %
	PaperInter float64
	PaperBoth  float64
}

func speedupFigure(machine string, size workloads.Size, paper map[string][2]float64) ([]SpeedupRow, error) {
	all := workloads.All()
	var specs []Spec
	for _, w := range all {
		specs = append(specs, modeSpecs(w, machine, size)...)
	}
	stats, err := runBatch(specs)
	if err != nil {
		return nil, err
	}
	rows := make([]SpeedupRow, len(all))
	for i, w := range all {
		base, inter, both := stats[3*i], stats[3*i+1], stats[3*i+2]
		pv := paper[w.Name]
		rows[i] = SpeedupRow{w.Name, SpeedupPct(base, inter), SpeedupPct(base, both), pv[0], pv[1]}
	}
	return rows, nil
}

// Figure6 regenerates the Pentium 4 speedup figure.
func Figure6(size workloads.Size) ([]SpeedupRow, error) {
	return speedupFigure("Pentium4", size, paperFig6)
}

// Figure7 regenerates the Athlon MP speedup figure.
func Figure7(size workloads.Size) ([]SpeedupRow, error) {
	return speedupFigure("AthlonMP", size, paperFig7)
}

// FormatSpeedups renders a speedup figure as a text table.
func FormatSpeedups(title string, rows []SpeedupRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-11s %12s %12s | %12s %12s\n",
		"benchmark", "INTER", "INTER+INTRA", "paper INTER", "paper I+I")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-11s %+11.2f%% %+11.2f%% | %+11.1f%% %+11.1f%%\n",
			r.Workload, r.Inter, r.InterIntra, r.PaperInter, r.PaperBoth)
	}
	return sb.String()
}

// MPIRow is one bar group of Figures 8, 9, or 10 (misses per thousand
// retired instructions, BASELINE vs INTER+INTRA, on the Pentium 4).
type MPIRow struct {
	Workload string
	Baseline float64 // MPI x 1000
	Opt      float64 // MPI x 1000
}

type mpiMetric func(vm.RunStats) float64

func mpiFigure(size workloads.Size, metric mpiMetric) ([]MPIRow, error) {
	all := workloads.All()
	var specs []Spec
	for _, w := range all {
		for _, mode := range []jit.Mode{jit.Baseline, jit.InterIntra} {
			specs = append(specs, Spec{Workload: w.Name, Size: size, Machine: "Pentium4", Mode: mode, HeapBytes: w.HeapBytes})
		}
	}
	stats, err := runBatch(specs)
	if err != nil {
		return nil, err
	}
	rows := make([]MPIRow, len(all))
	for i, w := range all {
		rows[i] = MPIRow{w.Name, 1000 * metric(stats[2*i]), 1000 * metric(stats[2*i+1])}
	}
	return rows, nil
}

// Figure8 regenerates the L1 cache load MPI comparison.
func Figure8(size workloads.Size) ([]MPIRow, error) {
	return mpiFigure(size, vm.RunStats.L1LoadMPI)
}

// Figure9 regenerates the L2 cache load MPI comparison.
func Figure9(size workloads.Size) ([]MPIRow, error) {
	return mpiFigure(size, vm.RunStats.L2LoadMPI)
}

// Figure10 regenerates the DTLB load MPI comparison.
func Figure10(size workloads.Size) ([]MPIRow, error) {
	return mpiFigure(size, vm.RunStats.DTLBLoadMPI)
}

// FormatMPI renders an MPI figure as a text table.
func FormatMPI(title string, rows []MPIRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (misses per 1000 instructions, Pentium 4)\n", title)
	fmt.Fprintf(&sb, "%-11s %12s %12s %9s\n", "benchmark", "BASELINE", "INTER+INTRA", "change")
	for _, r := range rows {
		change := "-"
		if r.Baseline > 0 {
			change = fmt.Sprintf("%+.1f%%", 100*(r.Opt-r.Baseline)/r.Baseline)
		}
		fmt.Fprintf(&sb, "%-11s %12.3f %12.3f %9s\n", r.Workload, r.Baseline, r.Opt, change)
	}
	return sb.String()
}

// CompileRow is one bar group of Figure 11.
type CompileRow struct {
	Workload string
	// PrefetchOfJITPct is the additional compilation time of the
	// prefetching algorithm over the total JIT compilation time (left
	// bars; paper: < 3.0%).
	PrefetchOfJITPct float64
	// JITOfTotalPct is the total JIT compilation time over the total
	// execution time (right bars; paper: < 13%).
	JITOfTotalPct float64
}

// Figure11 regenerates the compilation-time overhead figure
// (INTER+INTRA on the Pentium 4).
func Figure11(size workloads.Size) ([]CompileRow, error) {
	all := workloads.All()
	specs := make([]Spec, len(all))
	for i, w := range all {
		specs[i] = Spec{Workload: w.Name, Size: size, Machine: "Pentium4", Mode: jit.InterIntra, HeapBytes: w.HeapBytes}
	}
	stats, err := runBatch(specs)
	if err != nil {
		return nil, err
	}
	rows := make([]CompileRow, len(all))
	for i, w := range all {
		s := stats[i]
		var pj, jt float64
		if s.JITUnits > 0 {
			pj = 100 * float64(s.PrefetchUnits) / float64(s.JITUnits)
		}
		if s.Cycles > 0 {
			jt = 100 * float64(s.JITUnits) / float64(s.Cycles)
		}
		rows[i] = CompileRow{w.Name, pj, jt}
	}
	return rows, nil
}

// FormatCompile renders Figure 11 as a text table.
func FormatCompile(rows []CompileRow) string {
	var sb strings.Builder
	sb.WriteString("Figure 11: compilation time overhead (INTER+INTRA, Pentium 4)\n")
	fmt.Fprintf(&sb, "%-11s %22s %22s\n", "benchmark", "prefetch/total JIT (%)", "JIT/total exec (%)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-11s %21.2f%% %21.2f%%\n", r.Workload, r.PrefetchOfJITPct, r.JITOfTotalPct)
	}
	sb.WriteString("paper: prefetch phase < 3.0% of JIT time; JIT time < 13% of execution\n")
	return sb.String()
}

// Table1 regenerates the annotated load dependence graph of
// findInMemory (Table 1 / Figure 5 of the paper) by compiling the jess
// analog with INTER+INTRA on the Pentium 4 and dumping the compiler's
// graphs for the method.
func Table1() (string, error) {
	w, err := workloads.ByName("jess")
	if err != nil {
		return "", err
	}
	prog := w.Build(workloads.SizeSmall)
	v := vm.New(prog, vm.Config{Machine: arch.Pentium4(), Mode: jit.InterIntra})
	if _, err := v.Measure(nil, 1); err != nil {
		return "", err
	}
	m := prog.MethodByName("::findInMemory")
	c := v.CompiledFor(m)
	if c == nil {
		return "", fmt.Errorf("harness: findInMemory was not JIT-compiled")
	}
	var sb strings.Builder
	sb.WriteString("Table 1 / Figure 5: load instructions of findInMemory and their\n")
	sb.WriteString("load dependence graph, annotated with discovered stride patterns\n\n")
	for _, g := range c.Graphs {
		sb.WriteString(g.String())
	}
	fmt.Fprintf(&sb, "\nprefetch generation: %+v\n", c.Prefetch)
	return sb.String(), nil
}

// Table2 renders the machine parameters (Table 2 of the paper).
func Table2() string {
	var sb strings.Builder
	sb.WriteString("Table 2: parameters related to prefetching\n")
	fmt.Fprintf(&sb, "%-10s %8s %9s %8s %9s %7s %10s %8s\n",
		"Processor", "L1 size", "L1 line", "L2 size", "L2 line", "#DTLB", "pf target", "guarded")
	for _, m := range arch.Machines() {
		fmt.Fprintf(&sb, "%-10s %7dK %8dB %7dK %8dB %7d %10s %8v\n",
			m.Name, m.L1D.SizeBytes>>10, m.L1D.LineBytes,
			m.L2U.SizeBytes>>10, m.L2U.LineBytes, m.DTLB.Entries,
			m.PrefetchTarget, m.GuardedIntraPrefetch)
	}
	return sb.String()
}

// Table3Row is one row of Table 3.
type Table3Row struct {
	Workload         string
	Suite            string
	Description      string
	CompiledPct      float64 // measured
	PaperCompiledPct float64
}

// Table3 regenerates the benchmark descriptions and compiled-code
// fractions (BASELINE, Pentium 4).
func Table3(size workloads.Size) ([]Table3Row, error) {
	all := workloads.All()
	specs := make([]Spec, len(all))
	for i, w := range all {
		specs[i] = Spec{Workload: w.Name, Size: size, Machine: "Pentium4", Mode: jit.Baseline, HeapBytes: w.HeapBytes}
	}
	stats, err := runBatch(specs)
	if err != nil {
		return nil, err
	}
	rows := make([]Table3Row, len(all))
	for i, w := range all {
		rows[i] = Table3Row{
			Workload:         w.Name,
			Suite:            w.Suite,
			Description:      w.Description,
			CompiledPct:      100 * stats[i].CompiledFraction(),
			PaperCompiledPct: w.PaperCompiledPct,
		}
	}
	return rows, nil
}

// FormatTable3 renders Table 3 as text.
func FormatTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("Table 3: benchmark descriptions and compiled-code fractions\n")
	fmt.Fprintf(&sb, "%-11s %-10s %-38s %9s %9s\n", "program", "suite", "description", "compiled", "paper")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-11s %-10s %-38s %8.1f%% %8.1f%%\n",
			r.Workload, r.Suite, r.Description, r.CompiledPct, r.PaperCompiledPct)
	}
	return sb.String()
}
