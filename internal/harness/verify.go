package harness

import (
	"strider/internal/heap"
	"strider/internal/ir"
	"strider/internal/oracle"
	"strider/internal/workloads"
)

// Verify runs the named workload through the differential oracle: the
// prefetch-blind reference interpreter's architectural fingerprint must
// be reproduced by the full JIT+memsim stack under every prefetching
// configuration on both machines, with inspection-leak and memory-model
// invariants asserted. Verification always executes fresh programs — it
// never reads or populates the result cache.
func Verify(workload string, size workloads.Size, gc heap.GCMode) (*oracle.Report, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	build := func() *ir.Program { return w.Build(size) }
	return oracle.Verify(build, oracle.Options{HeapBytes: w.HeapBytes, GC: gc})
}
