package harness

import (
	"fmt"
	"math"
	"strings"
)

// BarGroup is one labelled group of bars in an ASCII chart.
type BarGroup struct {
	Label string
	Bars  []Bar
}

// Bar is one bar: a series name and a value.
type Bar struct {
	Series string
	Value  float64
}

// RenderBars renders grouped horizontal bars (the text rendition of the
// paper's figures). Negative values extend left of the axis. width is the
// number of character cells for the largest magnitude.
func RenderBars(title, unit string, groups []BarGroup, width int) string {
	if width <= 0 {
		width = 40
	}
	maxAbs := 0.0
	maxSeries := 0
	anyNeg := false
	for _, g := range groups {
		for _, b := range g.Bars {
			if a := math.Abs(b.Value); a > maxAbs {
				maxAbs = a
			}
			if len(b.Series) > maxSeries {
				maxSeries = len(b.Series)
			}
			if b.Value < 0 {
				anyNeg = true
			}
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	// Bars on both sides share one scale (width cells = maxAbs), so the
	// left field must be able to hold a full-scale negative bar; a narrower
	// field would overflow and push the axis column out of alignment.
	negField := 0
	if anyNeg {
		negField = width
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (unit: %s, full bar = %.2f)\n", title, unit, maxAbs)
	for _, g := range groups {
		fmt.Fprintf(&sb, "%s\n", g.Label)
		for _, b := range g.Bars {
			n := int(math.Round(math.Abs(b.Value) / maxAbs * float64(width)))
			if n > width {
				n = width
			}
			neg := ""
			if b.Value < 0 {
				neg = strings.Repeat("▒", n)
			}
			pos := ""
			if b.Value >= 0 {
				pos = strings.Repeat("█", n)
			}
			fmt.Fprintf(&sb, "  %-*s %*s|%-*s %8.2f\n",
				maxSeries, b.Series, negField, neg, width, pos, b.Value)
		}
	}
	return sb.String()
}

// SpeedupChart renders a speedup figure as grouped bars.
func SpeedupChart(title string, rows []SpeedupRow) string {
	groups := make([]BarGroup, len(rows))
	for i, r := range rows {
		groups[i] = BarGroup{
			Label: r.Workload,
			Bars: []Bar{
				{Series: "INTER", Value: r.Inter},
				{Series: "INTER+INTRA", Value: r.InterIntra},
				{Series: "paper I+I", Value: r.PaperBoth},
			},
		}
	}
	return RenderBars(title, "% speedup over BASELINE", groups, 40)
}

// MPIChart renders an MPI figure as grouped bars.
func MPIChart(title string, rows []MPIRow) string {
	groups := make([]BarGroup, len(rows))
	for i, r := range rows {
		groups[i] = BarGroup{
			Label: r.Workload,
			Bars: []Bar{
				{Series: "BASELINE", Value: r.Baseline},
				{Series: "INTER+INTRA", Value: r.Opt},
			},
		}
	}
	return RenderBars(title, "misses per 1000 instructions", groups, 40)
}
