package harness

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"strider/internal/core/jit"
	"strider/internal/workloads"
)

// TestConcurrentRunSingleflight hammers one spec from many goroutines and
// asserts the engine performed exactly one underlying VM execution, with
// every caller observing the identical result. Run under -race in CI.
func TestConcurrentRunSingleflight(t *testing.T) {
	ClearCache()
	spec := Spec{Workload: "search", Size: workloads.SizeSmall, Machine: "Pentium4", Mode: jit.Baseline}

	const n = 16
	var wg sync.WaitGroup
	results := make([]struct {
		cycles   uint64
		checksum uint64
		err      error
	}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := Run(spec)
			results[i].cycles = s.Cycles
			results[i].checksum = uint64(s.Checksum)
			results[i].err = err
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if r.err != nil {
			t.Fatalf("caller %d: %v", i, r.err)
		}
		if r.cycles != results[0].cycles || r.checksum != results[0].checksum {
			t.Errorf("caller %d observed a different result: cycles %d vs %d",
				i, r.cycles, results[0].cycles)
		}
	}
	c := EngineCounters()
	if c.Executions != 1 {
		t.Errorf("executions = %d, want exactly 1 (singleflight)", c.Executions)
	}
	if c.DedupHits+c.CacheHits != n-1 {
		t.Errorf("dedup+cache hits = %d+%d, want %d", c.DedupHits, c.CacheHits, n-1)
	}
}

// TestGridRunOrderAndDedup checks that Grid returns results in spec order
// and that duplicate cells within one grid collapse onto one execution.
func TestGridRunOrderAndDedup(t *testing.T) {
	ClearCache()
	a := Spec{Workload: "search", Size: workloads.SizeSmall, Machine: "Pentium4", Mode: jit.Baseline}
	b := Spec{Workload: "search", Size: workloads.SizeSmall, Machine: "AthlonMP", Mode: jit.Baseline}
	specs := []Spec{a, b, a, b, a}

	var mu sync.Mutex
	calls := 0
	results := Grid{Specs: specs, Parallel: 4, Progress: func(done, total int, r Result) {
		mu.Lock()
		calls++
		mu.Unlock()
		if total != len(specs) {
			t.Errorf("progress total = %d, want %d", total, len(specs))
		}
	}}.Run()

	if len(results) != len(specs) {
		t.Fatalf("results = %d, want %d", len(results), len(specs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("cell %d: %v", i, r.Err)
		}
		if r.Spec.Machine != specs[i].Machine {
			t.Errorf("cell %d out of order: %s", i, r.Spec.Machine)
		}
	}
	if results[0].Stats.Cycles != results[2].Stats.Cycles || results[2].Stats.Cycles != results[4].Stats.Cycles {
		t.Error("duplicate cells returned different results")
	}
	if calls != len(specs) {
		t.Errorf("progress callbacks = %d, want %d", calls, len(specs))
	}
	if c := EngineCounters(); c.Executions != 2 {
		t.Errorf("executions = %d, want 2 (one per distinct cell)", c.Executions)
	}
}

// exclusiveLineWriter fails the test if two Write calls overlap in time or
// if any Write is not one complete newline-terminated progress line — the
// two symptoms of unserialized progress printing.
type exclusiveLineWriter struct {
	t      *testing.T
	busy   atomic.Bool
	lines  atomic.Int64
	racing atomic.Bool
	torn   atomic.Bool
}

func (w *exclusiveLineWriter) Write(p []byte) (int, error) {
	if !w.busy.CompareAndSwap(false, true) {
		w.racing.Store(true)
	}
	s := string(p)
	if !strings.HasSuffix(s, "\n") || strings.Count(s, "\n") != 1 {
		w.torn.Store(true)
	}
	w.lines.Add(1)
	w.busy.Store(false)
	return len(p), nil
}

// TestProgressNoInterleaving runs several grids concurrently, each with its
// own wide worker pool, all sharing one progress writer — the differ and
// nested figure batches do exactly this. Every progress line must reach the
// writer as one exclusive, complete Write. Run under -race in CI: the
// pre-fix per-Run progress mutex also made concurrent grids race on the
// writer itself.
func TestProgressNoInterleaving(t *testing.T) {
	ClearCache()
	w := &exclusiveLineWriter{t: t}
	SetProgress(w)
	defer SetProgress(nil)

	mkSpecs := func(machine string) []Spec {
		var specs []Spec
		for _, mode := range []jit.Mode{jit.Baseline, jit.Inter, jit.InterIntra} {
			specs = append(specs, Spec{Workload: "search", Size: workloads.SizeSmall, Machine: machine, Mode: mode})
		}
		return specs
	}

	const grids = 4
	var wg sync.WaitGroup
	for i := 0; i < grids; i++ {
		machine := "Pentium4"
		if i%2 == 1 {
			machine = "AthlonMP"
		}
		wg.Add(1)
		go func(machine string) {
			defer wg.Done()
			for _, r := range (Grid{Specs: mkSpecs(machine), Parallel: 3}.Run()) {
				if r.Err != nil {
					t.Errorf("cell %s: %v", r.Spec.String(), r.Err)
				}
			}
		}(machine)
	}
	wg.Wait()

	if w.racing.Load() {
		t.Error("progress writer saw overlapping Write calls (interleaving)")
	}
	if w.torn.Load() {
		t.Error("progress writer received a torn or multi-line Write")
	}
	if got, want := w.lines.Load(), int64(grids*3); got != want {
		t.Errorf("progress lines = %d, want %d", got, want)
	}
}

func TestGridErrorReporting(t *testing.T) {
	ClearCache()
	specs := []Spec{
		{Workload: "search", Size: workloads.SizeSmall, Machine: "Pentium4", Mode: jit.Baseline},
		{Workload: "no-such-workload"},
	}
	results, err := RunAll(specs)
	if err == nil {
		t.Fatal("RunAll must surface the cell error")
	}
	if results[0].Err != nil || results[1].Err == nil {
		t.Error("per-cell errors misattributed")
	}
}

func TestRunAllEmpty(t *testing.T) {
	results, err := RunAll(nil)
	if err != nil || len(results) != 0 {
		t.Errorf("empty batch: %v, %d results", err, len(results))
	}
}

// TestSerialParallelDeterminism asserts the acceptance criterion of the
// parallel engine: a figure regenerated serially and with a wide worker
// pool is byte-identical — per-run isolation means scheduling order can
// not leak into results.
func TestSerialParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many workloads twice")
	}
	render := func() string {
		rows, err := Figure6(workloads.SizeSmall)
		if err != nil {
			t.Fatal(err)
		}
		t3, err := Table3(workloads.SizeSmall)
		if err != nil {
			t.Fatal(err)
		}
		return FormatSpeedups("Figure 6", rows) + FormatTable3(t3)
	}

	SetParallelism(1)
	ClearCache()
	serial := render()

	SetParallelism(8)
	ClearCache()
	parallel := render()
	SetParallelism(0)
	ClearCache()

	if serial != parallel {
		t.Errorf("serial and parallel tables differ:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "db") {
		t.Error("table content missing")
	}
}
