package harness

import (
	"fmt"
	"sync"

	"strider/internal/static"
)

// The PGO profile cache: one profiling run per dynamic-equivalent cell,
// shared by every PGO execution of that cell (the cross-run profile reuse
// the execution server leans on). Entries live until ClearCache.
var (
	profMu     sync.Mutex
	profiles   = map[string]*static.Profile{}
	profFlight = map[string]*profCall{}
)

type profCall struct {
	done chan struct{}
	p    *static.Profile
	err  error
}

// ProfileFor returns the PGO profile for the spec's dynamic-equivalent
// cell, building and caching it with one dynamic profiling run on first
// use. Concurrent callers for the same cell share a single profiling run
// (singleflight); a shared or cached profile counts as a profile hit, a
// profiling run as a miss.
func ProfileFor(s Spec) (*static.Profile, error) {
	sd := s.withDefaults()
	sd.Predict = "dynamic"
	k := sd.key()
	profMu.Lock()
	if p, ok := profiles[k]; ok {
		counters.profileHits.Add(1)
		profMu.Unlock()
		return p, nil
	}
	if c, ok := profFlight[k]; ok {
		counters.profileHits.Add(1)
		profMu.Unlock()
		<-c.done
		return c.p, c.err
	}
	c := &profCall{done: make(chan struct{})}
	profFlight[k] = c
	profMu.Unlock()

	counters.profileMisses.Add(1)
	c.p, c.err = buildProfile(sd, k)

	profMu.Lock()
	if c.err == nil {
		profiles[k] = c.p
	}
	delete(profFlight, k)
	profMu.Unlock()
	close(c.done)
	return c.p, c.err
}

// buildProfile executes the cell dynamically once — warmup plus measured
// run, the same shape as a normal execution, so every method crosses the
// compile threshold — with profile recording enabled.
func buildProfile(sd Spec, cell string) (*static.Profile, error) {
	v, err := NewVM(sd, nil)
	if err != nil {
		return nil, err
	}
	p := static.NewProfile(cell)
	v.JITOpts.RecordProfile = p
	if _, err := v.Measure(nil, sd.Warmups); err != nil {
		return nil, fmt.Errorf("harness: pgo profiling %s/%s/%s: %w",
			sd.Workload, sd.Machine, sd.Mode, err)
	}
	return p, nil
}
