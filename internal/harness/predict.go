package harness

import (
	"fmt"
	"strings"

	"strider/internal/core/jit"
	"strider/internal/workloads"
)

// PredictRow is one (machine, workload) group of the prediction-source
// comparison: the INTER+INTRA speedup over BASELINE under each source of
// stride predictions, with the emitted-prefetch counts that explain the
// gaps. The match columns answer the experiment's question directly —
// where does offline prediction reproduce dynamic inspection's decisions,
// and where does it fail.
type PredictRow struct {
	Machine  string
	Workload string

	BaselineCycles uint64
	DynamicPct     float64 // INTER+INTRA speedup, dynamic inspection
	StaticPct      float64 // INTER+INTRA speedup, offline static analyzer
	PGOPct         float64 // INTER+INTRA speedup, PGO profile replay

	// Emitted prefetch instructions (spec_loads included) per source.
	DynamicEmits int
	StaticEmits  int

	// StaticMatch: the static analyzer arrived at the dynamic run's exact
	// outcome (same emitted prefetches, same cycle count). PGOMatch: the
	// profile replay reproduced the dynamic run cycle for cycle — its
	// correctness contract, so "!=" here is a bug, not a finding.
	StaticMatch bool
	PGOMatch    bool
}

// PredictCross measures the prediction-source comparison: every workload
// on both machines under BASELINE and INTER+INTRA with dynamic, static,
// and PGO prediction. All cells run as one batch across the worker pool.
func PredictCross(size workloads.Size) ([]PredictRow, error) {
	machines := []string{"Pentium4", "AthlonMP"}
	predicts := []string{"dynamic", "static", "pgo"}

	var specs []Spec
	for _, machine := range machines {
		for _, w := range workloads.All() {
			specs = append(specs, Spec{
				Workload: w.Name, Size: size, Machine: machine,
				Mode: jit.Baseline, HeapBytes: w.HeapBytes,
			})
			for _, p := range predicts {
				specs = append(specs, Spec{
					Workload: w.Name, Size: size, Machine: machine,
					Mode: jit.InterIntra, HeapBytes: w.HeapBytes, Predict: p,
				})
			}
		}
	}
	stats, err := runBatch(specs)
	if err != nil {
		return nil, err
	}

	var rows []PredictRow
	i := 0
	for _, machine := range machines {
		for _, w := range workloads.All() {
			base, dyn, st, pgo := stats[i], stats[i+1], stats[i+2], stats[i+3]
			i += 4
			rows = append(rows, PredictRow{
				Machine:        machine,
				Workload:       w.Name,
				BaselineCycles: base.Cycles,
				DynamicPct:     SpeedupPct(base, dyn),
				StaticPct:      SpeedupPct(base, st),
				PGOPct:         SpeedupPct(base, pgo),
				DynamicEmits:   dyn.Prefetch.Total(),
				StaticEmits:    st.Prefetch.Total(),
				StaticMatch:    st.Prefetch == dyn.Prefetch && st.Cycles == dyn.Cycles,
				PGOMatch:       pgo.Prefetch == dyn.Prefetch && pgo.Cycles == dyn.Cycles,
			})
		}
	}
	return rows, nil
}

// FormatPredictCross renders the comparison as one table per machine.
func FormatPredictCross(rows []PredictRow) string {
	var sb strings.Builder
	sb.WriteString("Static vs dynamic prediction\n")
	sb.WriteString("(INTER+INTRA speedup over BASELINE per prediction source; emits are\n")
	sb.WriteString(" inserted prefetch instructions; match compares decisions and cycles\n")
	sb.WriteString(" against the dynamic run — PGO must always match)\n")
	machine := ""
	for _, r := range rows {
		if r.Machine != machine {
			machine = r.Machine
			fmt.Fprintf(&sb, "\n%s\n", machine)
			fmt.Fprintf(&sb, "%-11s %14s %9s %9s %9s %10s %10s %7s %6s\n",
				"benchmark", "base cycles", "DYNAMIC", "STATIC", "PGO",
				"dyn emits", "st emits", "static", "pgo")
		}
		fmt.Fprintf(&sb, "%-11s %14d %+8.2f%% %+8.2f%% %+8.2f%% %10d %10d %7s %6s\n",
			r.Workload, r.BaselineCycles, r.DynamicPct, r.StaticPct, r.PGOPct,
			r.DynamicEmits, r.StaticEmits, matchMark(r.StaticMatch), matchMark(r.PGOMatch))
	}
	return sb.String()
}

func matchMark(ok bool) string {
	if ok {
		return "="
	}
	return "!="
}
