package harness

import (
	"strings"
	"testing"

	"strider/internal/core/jit"
	"strider/internal/vm"
	"strider/internal/workloads"
)

func TestRunAndCache(t *testing.T) {
	ClearCache()
	spec := Spec{Workload: "search", Size: workloads.SizeSmall, Machine: "Pentium4", Mode: jit.Baseline}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Checksum != b.Checksum {
		t.Error("cached result differs")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Spec{Workload: "nope"}); err == nil {
		t.Error("unknown workload must error")
	}
	if _, err := Run(Spec{Workload: "search", Machine: "VAX"}); err == nil {
		t.Error("unknown machine must error")
	}
}

func TestSpeedupPct(t *testing.T) {
	var base, opt vm.RunStats
	base.Cycles, opt.Cycles = 110, 100
	if got := SpeedupPct(base, opt); got < 9.9 || got > 10.1 {
		t.Errorf("speedup = %f, want ~10", got)
	}
	if SpeedupPct(base, vm.RunStats{}) != 0 {
		t.Error("zero-cycle guard")
	}
}

func TestSpecKeyDistinguishesJITOptions(t *testing.T) {
	a := Spec{Workload: "db", Machine: "Pentium4"}.withDefaults()
	o := jit.DefaultOptions(nil, jit.InterIntra)
	o.C = 3
	b := a
	b.JIT = &o
	if a.key() == b.key() {
		t.Error("JIT overrides must change the cache key")
	}
}

func TestTable1Content(t *testing.T) {
	s, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"load dependence graph", "findInMemory", "11 nodes", "inter=+4", "intra=+8",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestTable2Content(t *testing.T) {
	s := Table2()
	for _, want := range []string{"Pentium4", "AthlonMP", "128B", "256"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, s)
		}
	}
}

func TestFiguresSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all workloads")
	}
	rows6, err := Figure6(workloads.SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows6) != 12 {
		t.Fatalf("Figure 6 rows = %d", len(rows6))
	}
	byName := map[string]SpeedupRow{}
	for _, r := range rows6 {
		byName[r.Workload] = r
	}
	if byName["db"].InterIntra <= 0 {
		t.Error("db INTER+INTRA must be positive")
	}
	if byName["db"].Inter != 0 {
		t.Errorf("db INTER must be ~0, got %f", byName["db"].Inter)
	}
	if byName["compress"].InterIntra != 0 {
		t.Error("compress must be unchanged")
	}
	txt := FormatSpeedups("Figure 6", rows6)
	if !strings.Contains(txt, "db") || !strings.Contains(txt, "paper") {
		t.Error("formatted figure incomplete")
	}

	rows8, err := Figure8(workloads.SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows8) != 12 {
		t.Error("Figure 8 rows")
	}
	var db MPIRow
	for _, r := range rows8 {
		if r.Workload == "db" {
			db = r
		}
	}
	if db.Opt >= db.Baseline {
		t.Errorf("db L1 MPI must drop: %.3f -> %.3f", db.Baseline, db.Opt)
	}
	if s := FormatMPI("Figure 8", rows8); !strings.Contains(s, "BASELINE") {
		t.Error("MPI formatting")
	}

	rows11, err := Figure11(workloads.SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows11 {
		if r.PrefetchOfJITPct < 0 || r.PrefetchOfJITPct > 25 {
			t.Errorf("%s: prefetch compile share %.1f%% implausible", r.Workload, r.PrefetchOfJITPct)
		}
	}
	if s := FormatCompile(rows11); !strings.Contains(s, "paper") {
		t.Error("Figure 11 formatting")
	}

	t3, err := Table3(workloads.SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3) != 12 {
		t.Error("Table 3 rows")
	}
	for _, r := range t3 {
		if r.CompiledPct <= 0 || r.CompiledPct > 100 {
			t.Errorf("%s compiled%% = %f", r.Workload, r.CompiledPct)
		}
	}
	if s := FormatTable3(t3); !strings.Contains(s, "SPECjvm98") {
		t.Error("Table 3 formatting")
	}
}
