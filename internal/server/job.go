// Package server is the strider execution service: a long-running HTTP/JSON
// front end over the harness engine. Jobs — experiment cells in the
// harness.Spec vocabulary, or progfuzz seed programs — are validated up
// front (the CLI's exit-2 contract, rendered as 4xx responses with
// machine-readable bodies), scheduled across per-core worker shards with
// bounded queues and explicit backpressure (429 + Retry-After), served from
// a sharded singleflight result cache, and executed on pooled VMs whose
// cheap reset (the lazy-backing heap) amortizes program build and JIT
// compilation across requests.
//
// Determinism is the service's contract: a cell's response is byte-identical
// whether it was computed fresh, on a recycled VM, served from the cache,
// or joined to an execution already in flight — the integration suite pins
// service responses against a serial harness.RunAll of the same cells.
package server

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"strider/internal/arch"
	"strider/internal/core/jit"
	"strider/internal/harness"
	"strider/internal/heap"
	"strider/internal/memsim"
	"strider/internal/vm"
	"strider/internal/workloads"
)

// FuzzPrefix marks a job workload as a progfuzz seed program instead of a
// registered benchmark analog: "fuzz:<seed>" with a decimal or 0x-hex seed.
const FuzzPrefix = "fuzz:"

// Job is one submitted execution cell. The field vocabulary mirrors
// harness.Spec; enumerated fields take the CLI flag spellings
// (mode "inter+intra", size "small", gc "compact", hw "ipstride").
type Job struct {
	// Workload is a registered benchmark analog ("jess", "db", ...) or a
	// progfuzz seed program ("fuzz:0x7"). Required.
	Workload string `json:"workload"`
	// Size is "small" (default) or "full".
	Size string `json:"size,omitempty"`
	// Machine is "Pentium4" (default) or "AthlonMP".
	Machine string `json:"machine,omitempty"`
	// Mode is "baseline", "inter", or "inter+intra" (default).
	Mode string `json:"mode,omitempty"`
	// GC is "compact" (default) or "freelist".
	GC string `json:"gc,omitempty"`
	// HW selects the simulated hardware-prefetcher model; empty uses the
	// machine's own model (the stream detector).
	HW string `json:"hw,omitempty"`
	// Predict selects the prediction source feeding prefetch decisions:
	// "dynamic" (default — run-time object inspection), "static" (the
	// offline analyzer), or "pgo" (replay of a recorded profile; the
	// service builds and caches one profiling run per cell).
	Predict string `json:"predict,omitempty"`
	// Exec selects the execution backend for JIT-compiled methods:
	// "interp" (default — the step loop) or "compiled" (the threaded-code
	// tier). Both backends produce byte-identical responses; the axis is
	// part of the cell key because pooled VMs are backend-specific.
	Exec string `json:"exec,omitempty"`
	// Warmups is the number of discarded runs before the measured run
	// (default 1, the harness default).
	Warmups int `json:"warmups,omitempty"`
	// HeapBytes overrides the workload's simulated heap size when non-zero.
	HeapBytes uint32 `json:"heap_bytes,omitempty"`
}

// Error is the machine-readable 4xx body: what was wrong, which field, and
// the valid values — the service rendering of the CLI's exit-2 contract.
type Error struct {
	Err   string   `json:"error"`
	Field string   `json:"field,omitempty"`
	Got   string   `json:"got,omitempty"`
	Valid []string `json:"valid,omitempty"`
}

func (e *Error) Error() string { return e.Err }

func fieldError(field, got string, valid []string) *Error {
	return &Error{
		Err:   fmt.Sprintf("unknown %s %q (valid: %s)", field, got, strings.Join(valid, ", ")),
		Field: field,
		Got:   got,
		Valid: valid,
	}
}

// validWorkloads enumerates the accepted workload spellings: every
// registered analog plus the fuzz:<seed> form.
func validWorkloads() []string {
	names := workloads.Names()
	sort.Strings(names)
	return append(names, FuzzPrefix+"<seed>")
}

var (
	validSizes = []string{"small", "full"}
	validModes = []string{"baseline", "inter", "inter+intra"}
	validGCs   = []string{"compact", "freelist"}
)

func machineNames() []string {
	var names []string
	for _, m := range arch.Machines() {
		names = append(names, m.Name)
	}
	return names
}

// FuzzSeed reports whether the job is a progfuzz program and, if so, its
// seed. An unparsable seed is reported by Validate, not here.
func (j Job) FuzzSeed() (uint64, bool) {
	if !strings.HasPrefix(j.Workload, FuzzPrefix) {
		return 0, false
	}
	seed, err := strconv.ParseUint(strings.TrimPrefix(j.Workload, FuzzPrefix), 0, 64)
	if err != nil {
		return 0, false
	}
	return seed, true
}

// Validate checks every enumerated field up front and returns a
// machine-readable *Error naming the offending field and the valid set —
// nothing is scheduled for an invalid job.
func (j Job) Validate() *Error {
	if j.Workload == "" {
		return &Error{Err: "missing workload", Field: "workload", Valid: validWorkloads()}
	}
	if strings.HasPrefix(j.Workload, FuzzPrefix) {
		if _, ok := j.FuzzSeed(); !ok {
			return &Error{
				Err:   fmt.Sprintf("bad fuzz seed %q (want %s<decimal or 0x-hex uint64>)", j.Workload, FuzzPrefix),
				Field: "workload",
				Got:   j.Workload,
				Valid: validWorkloads(),
			}
		}
	} else if _, err := workloads.ByName(j.Workload); err != nil {
		return fieldError("workload", j.Workload, validWorkloads())
	}
	switch j.Size {
	case "", "small", "full":
	default:
		return fieldError("size", j.Size, validSizes)
	}
	if j.Machine != "" && arch.ByName(j.Machine) == nil {
		return fieldError("machine", j.Machine, machineNames())
	}
	switch j.Mode {
	case "", "baseline", "inter", "inter+intra":
	default:
		return fieldError("mode", j.Mode, validModes)
	}
	switch j.GC {
	case "", "compact", "freelist":
	default:
		return fieldError("gc", j.GC, validGCs)
	}
	if !memsim.ValidHWModel(j.HW) {
		return fieldError("hw", j.HW, memsim.HWModels())
	}
	if _, err := jit.ParsePredict(j.Predict); err != nil {
		return fieldError("predict", j.Predict, jit.PredictSources())
	}
	if _, err := vm.ParseExec(j.Exec); err != nil {
		return fieldError("exec", j.Exec, vm.ExecNames())
	}
	if j.Warmups < 0 {
		return &Error{
			Err:   fmt.Sprintf("negative warmups %d", j.Warmups),
			Field: "warmups",
			Got:   strconv.Itoa(j.Warmups),
		}
	}
	return nil
}

// Spec converts a validated job into the harness cell it names, defaults
// applied. For fuzz jobs the Workload field carries the fuzz:<seed> form —
// the executor resolves the program, but the spec still provides the
// canonical cell key and the machine/mode/heap configuration.
func (j Job) Spec() harness.Spec {
	s := harness.Spec{
		Workload:  j.Workload,
		Machine:   j.Machine,
		HW:        j.HW,
		Predict:   j.Predict,
		Exec:      j.Exec,
		Warmups:   j.Warmups,
		HeapBytes: j.HeapBytes,
	}
	if j.Size == "full" {
		s.Size = workloads.SizeFull
	}
	switch j.Mode {
	case "baseline":
		s.Mode = jit.Baseline
	case "inter":
		s.Mode = jit.Inter
	default:
		s.Mode = jit.InterIntra
	}
	if j.GC == "freelist" {
		s.GC = heap.GCMarkSweepFreeList
	}
	if _, ok := j.FuzzSeed(); ok && s.HeapBytes == 0 {
		// Fuzz programs carry no workload heap hint; pin the differ's
		// default so the cell is fully determined by its key.
		s.HeapBytes = fuzzHeapBytes
	}
	return s
}

// fuzzHeapBytes is the default simulated heap for fuzz-seed jobs.
const fuzzHeapBytes = 16 << 20

// Key returns the canonical cell identity of the job — the harness engine
// key the cache, pool, and shard scheduler all hash.
func (j Job) Key() string { return j.Spec().Key() }
