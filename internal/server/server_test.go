package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"strider/internal/harness"
)

// postJob submits a job body to the test server and decodes the response.
func postJob(t *testing.T, ts *httptest.Server, path string, jb Job) (int, Response) {
	t.Helper()
	body, err := json.Marshal(jb)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out Response
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode, out
}

// sameDeterministic compares the deterministic payload of two responses,
// dereferencing Stats (a pointer, so decoded responses never share it).
func sameDeterministic(a, b Response) bool {
	da, db := a.Deterministic(), b.Deterministic()
	if (da.Stats == nil) != (db.Stats == nil) {
		return false
	}
	if da.Stats != nil && *da.Stats != *db.Stats {
		return false
	}
	da.Stats, db.Stats = nil, nil
	return da == db
}

func getStats(t *testing.T, ts *httptest.Server) Stats {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRunBasic pins the fundamental serving contract on one cell: a fresh
// execution, then a cache hit, both byte-identical to the harness engine's
// own result for the same cell.
func TestRunBasic(t *testing.T) {
	srv := New(Config{Shards: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	jb := Job{Workload: "jess", Size: "small", Machine: "Pentium4", Mode: "inter+intra"}
	code, first := postJob(t, ts, "/run", jb)
	if code != http.StatusOK {
		t.Fatalf("first submit: status %d", code)
	}
	if first.Cached {
		t.Error("first response claims cached")
	}
	if first.Stats == nil || first.Trap != "" {
		t.Fatalf("first response missing stats: %+v", first)
	}

	harness.ClearCache()
	want, err := harness.Run(jb.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Checksum != want.Checksum || first.Stats.Cycles != want.Cycles {
		t.Errorf("server result diverges from harness: %+v vs %+v", *first.Stats, want)
	}

	code, second := postJob(t, ts, "/run", jb)
	if code != http.StatusOK {
		t.Fatalf("second submit: status %d", code)
	}
	if !second.Cached {
		t.Error("second response not served from cache")
	}
	if !sameDeterministic(second, first) {
		t.Errorf("cached response differs from fresh: %+v vs %+v", second, first)
	}

	st := getStats(t, ts)
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("cache counters: %+v", st.Cache)
	}
	if st.Completed != 1 || st.Accepted != 1 {
		t.Errorf("request counters: %+v", st)
	}
}

// TestRunPooled pins the pooled path: nocache re-submissions of one cell
// must reuse the parked VM and reproduce the fresh response exactly.
func TestRunPooled(t *testing.T) {
	srv := New(Config{Shards: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	jb := Job{Workload: "search", Mode: "baseline"}
	_, first := postJob(t, ts, "/run?nocache=1", jb)
	if first.Pooled {
		t.Error("first execution cannot be pooled")
	}
	for i := 0; i < 3; i++ {
		_, again := postJob(t, ts, "/run?nocache=1", jb)
		if !again.Pooled {
			t.Errorf("re-submission %d did not reuse the pooled VM", i)
		}
		if !sameDeterministic(again, first) {
			t.Errorf("pooled response %d differs from fresh:\n%+v\nvs\n%+v", i, again, first)
		}
		if again.Stats == nil || first.Stats == nil || *again.Stats != *first.Stats {
			t.Errorf("pooled stats %d differ from fresh", i)
		}
	}
	st := getStats(t, ts)
	if st.Pool.Hits != 3 || st.Pool.Poisoned != 0 {
		t.Errorf("pool counters: %+v", st.Pool)
	}
}

// TestExplain pins ?explain=1: a fresh uncached run whose decision log
// matches harness.Explain for the same cell.
func TestExplain(t *testing.T) {
	srv := New(Config{Shards: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	jb := Job{Workload: "jess"}
	code, resp := postJob(t, ts, "/run?explain=1", jb)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Explain == "" {
		t.Fatal("no decision trace in explain response")
	}
	want, err := harness.Explain(jb.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Explain != want {
		t.Errorf("explain log diverges from harness.Explain (%d vs %d bytes)", len(resp.Explain), len(want))
	}
	if resp.Cached {
		t.Error("explain responses must not be cached")
	}
	// Explain bypasses the cache entirely: a subsequent plain run executes.
	_, plain := postJob(t, ts, "/run", jb)
	if plain.Cached {
		t.Error("explain run leaked into the result cache")
	}
	if plain.Explain != "" {
		t.Error("plain run carries an explain log")
	}
}

// TestHealthzAndDrain pins the drain lifecycle: healthy, then draining
// (503 + Retry-After on /run and /healthz), with queued work completing.
func TestHealthzAndDrain(t *testing.T) {
	srv := New(Config{Shards: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d", resp.StatusCode)
	}

	srv.Drain()
	if !srv.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}

	code, _ := postJob(t, ts, "/run", Job{Workload: "jess"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", code)
	}
	srv.Close()
}

// TestFuzzJobs pins the fuzz:<seed> program source, including a trapping
// cell (tiny heap forces the oracle's out-of-memory trap class).
func TestFuzzJobs(t *testing.T) {
	srv := New(Config{Shards: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, ok := postJob(t, ts, "/run", Job{Workload: "fuzz:0x3"})
	if code != http.StatusOK || ok.Trap != "" || ok.Stats == nil {
		t.Fatalf("fuzz:0x3: code %d resp %+v", code, ok)
	}

	code, trap := postJob(t, ts, "/run", Job{Workload: "fuzz:0x7", HeapBytes: 4096})
	if code != http.StatusOK {
		t.Fatalf("trap cell: status %d", code)
	}
	if trap.Trap != "out-of-memory" || !strings.Contains(trap.Err, "out of memory") {
		t.Fatalf("trap cell: %+v", trap)
	}
	if trap.Stats != nil || trap.Checksum != "" {
		t.Error("trapped response carries success stats")
	}
}

// TestJobSpecRoundTrip pins that a Response's cell fields parse back into
// a Job naming the same cell.
func TestJobSpecRoundTrip(t *testing.T) {
	e := &executor{pool: newVMPool(0)}
	for _, jb := range []Job{
		{Workload: "db"},
		{Workload: "euler", Size: "small", Machine: "AthlonMP", Mode: "inter", GC: "freelist", HW: "ipstride"},
		{Workload: "fuzz:17", Mode: "baseline"},
	} {
		resp := e.run(jb.Spec().Canonical(), false)
		back := Job{
			Workload: resp.Workload, Size: resp.Size, Machine: resp.Machine,
			Mode: resp.Mode, GC: resp.GC, HW: resp.HW,
		}
		if verr := back.Validate(); verr != nil {
			t.Fatalf("response fields do not re-validate: %+v: %v", back, verr)
		}
		if back.Workload != jb.Workload {
			t.Errorf("round trip changed workload: %q vs %q", back.Workload, jb.Workload)
		}
	}
}
