package server

import (
	"fmt"

	"strider/internal/arch"
	"strider/internal/core/jit"
	"strider/internal/harness"
	"strider/internal/heap"
	"strider/internal/memsim"
	"strider/internal/oracle"
	"strider/internal/progfuzz"
	"strider/internal/static"
	"strider/internal/telemetry"
	"strider/internal/vm"
)

// Response is the /run result body. Everything except the per-request
// fields (Cached, Pooled, WallNs, Explain) is a deterministic function of
// the cell: the integration suite pins it byte-identical across fresh,
// pooled, cached, and deduplicated serving paths against a serial
// harness.RunAll.
type Response struct {
	// The canonical cell, echoed in the request vocabulary (a Response's
	// cell fields round-trip as a Job).
	Workload string `json:"workload"`
	Size     string `json:"size"`
	Machine  string `json:"machine"`
	Mode     string `json:"mode"`
	GC       string `json:"gc"`
	// HW is the hardware-prefetcher model actually simulated (the
	// machine's own model when the job left hw empty).
	HW string `json:"hw"`
	// Predict is the prediction source the cell ran under. Omitted for the
	// dynamic default so responses on the classic serving path stay
	// byte-for-byte (and allocation-for-allocation) what they always were;
	// present as "static" or "pgo" when the job opted in.
	Predict string `json:"predict,omitempty"`
	// Exec is the execution backend the cell ran under. Omitted for the
	// interpreted default, mirroring Predict, so pre-existing serving
	// paths stay byte-for-byte identical; present as "compiled" when the
	// job opted in.
	Exec string `json:"exec,omitempty"`
	// Key is the engine's canonical cell key (cache/pool/shard identity).
	Key string `json:"key"`

	// Checksum is the run's result checksum (%016x), present on success.
	Checksum string `json:"checksum,omitempty"`
	// Stats is the measured run's full statistics, present on success.
	Stats *vm.RunStats `json:"stats,omitempty"`
	// Trap and Err describe a deterministic program trap (the job executed;
	// the simulated program faulted). Trap is the oracle's trap class.
	Trap string `json:"trap,omitempty"`
	Err  string `json:"error,omitempty"`

	// Explain is the decision-trace log, present only with ?explain=1.
	Explain string `json:"explain,omitempty"`

	// Per-request serving metadata — excluded from determinism comparisons.
	Cached bool  `json:"cached"`
	Pooled bool  `json:"pooled"`
	WallNs int64 `json:"wall_ns"`
}

// Deterministic returns the response with per-request serving metadata
// zeroed — the part of the payload that must be byte-identical however
// the cell was served.
func (r Response) Deterministic() Response {
	r.Cached, r.Pooled, r.WallNs, r.Explain = false, false, 0, ""
	return r
}

// executor runs jobs on fresh or recycled VMs.
type executor struct {
	pool *vmPool
}

// modeSpelling maps jit.Mode strings back to the request vocabulary.
func modeSpelling(s harness.Spec) string {
	switch s.Mode.String() {
	case "BASELINE":
		return "baseline"
	case "INTER":
		return "inter"
	}
	return "inter+intra"
}

func gcSpelling(s harness.Spec) string {
	if s.GC == heap.GCMarkSweepFreeList {
		return "freelist"
	}
	return "compact"
}

// predictSpelling resolves the prediction source stamped on a response:
// empty for the dynamic default (the field is omitted entirely), the
// job's own spelling otherwise.
func predictSpelling(s harness.Spec) string {
	if s.Predict == "dynamic" {
		return ""
	}
	return s.Predict
}

// execSpelling resolves the execution backend stamped on a response:
// empty for the interpreted default (the field is omitted entirely), the
// canonical spelling otherwise.
func execSpelling(s harness.Spec) string {
	if s.Exec == "interp" {
		return ""
	}
	return s.Exec
}

// hwSpelling resolves the model a cell simulates: the spec's explicit
// selection, else the machine's own default.
func hwSpelling(s harness.Spec) string {
	if s.HW != "" {
		return s.HW
	}
	if m := arch.ByName(s.Machine); m != nil && m.HWPrefetcher != "" {
		return m.HWPrefetcher
	}
	return memsim.DefaultHWModel
}

// newVM builds the fresh VM one execution of the cell uses: the harness
// path for registered workloads, the progfuzz generator for fuzz seeds.
func newVM(spec harness.Spec, rec telemetry.Recorder) (*vm.VM, error) {
	seed, ok := Job{Workload: spec.Workload}.FuzzSeed()
	if !ok {
		return harness.NewVM(spec, rec)
	}
	m := arch.ByName(spec.Machine)
	if m == nil {
		return nil, fmt.Errorf("server: unknown machine %q", spec.Machine)
	}
	if spec.HW != "" {
		mc := *m
		mc.HWPrefetcher = spec.HW
		m = &mc
	}
	jo, err := fuzzJITOpts(seed, m, spec)
	if err != nil {
		return nil, err
	}
	xb, err := vm.ParseExec(spec.Exec)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	return vm.New(progfuzz.Program(seed), vm.Config{
		Machine:   m,
		Mode:      spec.Mode,
		HeapBytes: spec.HeapBytes,
		GC:        spec.GC,
		Exec:      xb,
		JIT:       jo,
		Recorder:  rec,
	}), nil
}

// fuzzJITOpts threads the prediction source through to fuzz-seed cells,
// which bypass harness.NewVM. Dynamic prediction keeps the VM defaults
// (nil options). PGO jobs get their profile from one inline dynamic
// profiling run of the same program — fuzz programs are not registered
// workloads, so they sit outside the harness profile cache.
func fuzzJITOpts(seed uint64, m *arch.Machine, spec harness.Spec) (*jit.Options, error) {
	ps, err := jit.ParsePredict(spec.Predict)
	if err != nil || ps == jit.PredictDynamic {
		return nil, err
	}
	o := jit.DefaultOptions(m, spec.Mode)
	o.Predict = ps
	if ps == jit.PredictPGO {
		prof := static.NewProfile(spec.Key())
		pv := vm.New(progfuzz.Program(seed), vm.Config{
			Machine:   m,
			Mode:      spec.Mode,
			HeapBytes: spec.HeapBytes,
			GC:        spec.GC,
		})
		pv.JITOpts.RecordProfile = prof
		if _, err := pv.Measure(nil, spec.Warmups); err != nil {
			return nil, fmt.Errorf("server: pgo profiling %s: %w", spec.Workload, err)
		}
		o.Profile = prof
	}
	return &o, nil
}

// run executes one cell and renders its deterministic response. The
// serving-path metadata (Pooled) is stamped here; Cached/WallNs belong to
// the layer above.
func (e *executor) run(spec harness.Spec, explain bool) *Response {
	resp := &Response{
		Workload: spec.Workload,
		Size:     spec.Size.String(),
		Machine:  spec.Machine,
		Mode:     modeSpelling(spec),
		GC:       gcSpelling(spec),
		HW:       hwSpelling(spec),
		Predict:  predictSpelling(spec),
		Exec:     execSpelling(spec),
		Key:      spec.Key(),
	}

	if explain {
		// Explain runs bypass the pool: the decision trace needs the
		// compile-time events, which a recycled VM already spent.
		tr := telemetry.NewTrace()
		v, err := newVM(spec, tr)
		if err != nil {
			return respondError(resp, err)
		}
		stats, err := v.Measure(nil, spec.Warmups)
		v.FlushTelemetry()
		if err != nil {
			resp.Explain = tr.DecisionLog()
			return respondError(resp, err)
		}
		resp.Explain = tr.DecisionLog()
		return respondStats(resp, stats)
	}

	if pv := e.pool.get(resp.Key); pv != nil {
		pv.v.ResetRun()
		stats, err := pv.v.Run(nil)
		pv.v.FlushTelemetry()
		if e.guard(resp.Key, pv, stats, err) {
			resp.Pooled = true
			if err != nil {
				return respondError(resp, err)
			}
			return respondStats(resp, stats)
		}
		// Poisoned: the recycled VM did not reproduce the cell's canonical
		// outcome. Fall through to a fresh execution.
	}

	v, err := newVM(spec, nil)
	if err != nil {
		return respondError(resp, err)
	}
	stats, err := v.Measure(nil, spec.Warmups)
	v.FlushTelemetry()
	if err != nil {
		e.pool.put(resp.Key, &pooledVM{v: v, errText: err.Error()})
		return respondError(resp, err)
	}
	e.pool.put(resp.Key, &pooledVM{v: v, checksum: stats.Checksum})
	return respondStats(resp, stats)
}

// guard is the reset-correctness check: a recycled VM must reproduce the
// cell's canonical checksum (or, for trap cells, the canonical error).
// On success the VM goes back in the pool; on mismatch it is discarded
// and the poisoning is counted.
func (e *executor) guard(key string, pv *pooledVM, stats vm.RunStats, err error) bool {
	ok := false
	if err != nil {
		ok = pv.errText != "" && err.Error() == pv.errText
	} else {
		ok = pv.errText == "" && stats.Checksum == pv.checksum
	}
	if !ok {
		e.pool.poisoned.Add(1)
		return false
	}
	e.pool.put(key, pv)
	return true
}

func respondStats(resp *Response, stats vm.RunStats) *Response {
	s := stats
	resp.Stats = &s
	resp.Checksum = fmt.Sprintf("%016x", stats.Checksum)
	resp.HW = stats.HWModel
	return resp
}

func respondError(resp *Response, err error) *Response {
	resp.Err = err.Error()
	resp.Trap = oracle.TrapClass(err)
	return resp
}
