package server

import (
	"sync"
	"sync/atomic"

	"strider/internal/vm"
)

// pooledVM is a parked, already-warm VM for one cell key, together with
// the cell's canonical outcome — the reset-correctness guard every reuse
// is checked against.
type pooledVM struct {
	v *vm.VM
	// checksum is the cell's canonical result checksum (successful runs);
	// errText is the canonical runtime-error text (trapping runs). A
	// recycled VM that reproduces neither is poisoned: its reset failed to
	// restore the pre-run state, so it is discarded and the cell re-runs
	// on a fresh VM.
	checksum uint64
	errText  string
}

// vmPool parks at most one steady VM per cell key. A VM enters the pool
// after completing a full measured execution (warmups + measured run);
// because every run after the first is byte-identical on a correctly
// reset VM (the fresh-vs-pooled suite pins this), a recycled VM's next
// run reproduces the cell's canonical stats exactly while skipping the
// program build and all JIT compilation.
//
// Cell keys are sharded onto workers by hash, so a key's executions are
// already serialized; the mutex makes the pool safe regardless of the
// scheduling topology above it.
type vmPool struct {
	mu      sync.Mutex
	byKey   map[string]*pooledVM
	maxKeys int

	hits     atomic.Uint64 // get() served a parked VM
	misses   atomic.Uint64 // get() had nothing parked for the key
	returns  atomic.Uint64 // put() parked a VM
	drops    atomic.Uint64 // put() discarded a VM (pool full or disabled)
	poisoned atomic.Uint64 // recycled VM failed the reset-correctness guard
}

func newVMPool(maxKeys int) *vmPool {
	return &vmPool{byKey: make(map[string]*pooledVM), maxKeys: maxKeys}
}

// get removes and returns the parked VM for key, or nil.
func (p *vmPool) get(key string) *pooledVM {
	p.mu.Lock()
	pv := p.byKey[key]
	if pv != nil {
		delete(p.byKey, key)
	}
	p.mu.Unlock()
	if pv == nil {
		p.misses.Add(1)
		return nil
	}
	p.hits.Add(1)
	return pv
}

// put parks a VM for key, unless the pool already holds one for the key
// or is at its key capacity.
func (p *vmPool) put(key string, pv *pooledVM) {
	p.mu.Lock()
	_, dup := p.byKey[key]
	if dup || p.maxKeys <= 0 || (len(p.byKey) >= p.maxKeys) {
		p.mu.Unlock()
		p.drops.Add(1)
		return
	}
	p.byKey[key] = pv
	p.mu.Unlock()
	p.returns.Add(1)
}

// size returns the number of parked VMs.
func (p *vmPool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.byKey)
}

// PoolStats is the /stats rendering of the VM pool.
type PoolStats struct {
	Parked   int    `json:"parked"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Returns  uint64 `json:"returns"`
	Drops    uint64 `json:"drops"`
	Poisoned uint64 `json:"poisoned"`
}

func (p *vmPool) stats() PoolStats {
	return PoolStats{
		Parked:   p.size(),
		Hits:     p.hits.Load(),
		Misses:   p.misses.Load(),
		Returns:  p.returns.Load(),
		Drops:    p.drops.Load(),
		Poisoned: p.poisoned.Load(),
	}
}
