package server

import (
	"fmt"
	"io"
	"net/http/httptest"
	"sync"
	"testing"

	"strider/internal/harness"
)

// pgoCells picks cells with real prefetch activity on both machines —
// loops the dynamic inspector accepts, so a PGO replay has decisions to
// reproduce — plus one quiet cell (no emits) as a control.
func pgoCells() []Job {
	return []Job{
		{Workload: "jess", Machine: "Pentium4"},
		{Workload: "db", Machine: "Pentium4"},
		{Workload: "euler", Machine: "AthlonMP"},
		{Workload: "mtrt", Machine: "AthlonMP"},
		{Workload: "compress", Machine: "Pentium4"}, // control: zero emits
	}
}

// TestPGOHammerMatchesDynamic is the profile-cache workout under the race
// detector: the PGO profile cache is warmed once per cell, then many
// goroutines hammer the service with PGO jobs on both serving paths
// (cached and ?nocache=1) while a /stats poller runs concurrently. Every
// PGO response must reproduce the architectural outcome of a nocache
// dynamic run of the same cell — checksum, cycles, instructions, and
// prefetch statistics; the accounting fields (inspection steps, JIT
// units) legitimately differ, which is the point of profile reuse — and
// /stats must report the warmup as profile misses and everything after
// as hits.
func TestPGOHammerMatchesDynamic(t *testing.T) {
	harness.ClearCache()
	jobs := pgoCells()

	srv := New(Config{Shards: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Dynamic ground truth, forced down the execution path (no result
	// cache) so the comparison is simulation against simulation.
	type truth struct{ resp Response }
	dynamic := make(map[string]truth, len(jobs))
	for _, jb := range jobs {
		code, resp := postJob(t, ts, "/run?nocache=1", jb)
		if code != 200 || resp.Stats == nil {
			t.Fatalf("dynamic %s/%s: status %d, %+v", jb.Workload, jb.Machine, code, resp)
		}
		dynamic[jb.Workload+"/"+jb.Machine] = truth{resp}
	}

	// Warm the profile cache: exactly one dynamic profiling run per cell.
	before := harness.EngineCounters()
	for _, jb := range jobs {
		pj := jb
		pj.Predict = "pgo"
		if _, err := harness.ProfileFor(pj.Spec()); err != nil {
			t.Fatalf("warm %s/%s: %v", jb.Workload, jb.Machine, err)
		}
	}
	warmed := harness.EngineCounters()
	if got := warmed.ProfileMisses - before.ProfileMisses; got != uint64(len(jobs)) {
		t.Fatalf("warmup built %d profiles, want %d", got, len(jobs))
	}

	// The hammer: every goroutine drives the full cell set through both
	// serving paths; each response is checked on the spot.
	const goroutines = 8
	var (
		submitters sync.WaitGroup
		poller     sync.WaitGroup
	)
	errs := make(chan error, goroutines*2*len(jobs))
	stop := make(chan struct{})

	poller.Add(1)
	go func() { // concurrent /stats poller: must never race with workers
		defer poller.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := ts.Client().Get(ts.URL + "/stats")
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	for g := 0; g < goroutines; g++ {
		submitters.Add(1)
		go func(g int) {
			defer submitters.Done()
			for i, jb := range jobs {
				path := "/run"
				if (g+i)%2 == 1 {
					path = "/run?nocache=1"
				}
				pj := jb
				pj.Predict = "pgo"
				code, resp := postJob(t, ts, path, pj)
				if code != 200 || resp.Stats == nil {
					errs <- fmt.Errorf("pgo %s %s/%s: status %d, %+v", path, jb.Workload, jb.Machine, code, resp)
					continue
				}
				if resp.Predict != "pgo" {
					errs <- fmt.Errorf("%s/%s: response predict %q, want pgo", jb.Workload, jb.Machine, resp.Predict)
				}
				dyn := dynamic[jb.Workload+"/"+jb.Machine].resp
				if resp.Key == dyn.Key {
					errs <- fmt.Errorf("%s/%s: pgo cell key %q collides with the dynamic cell", jb.Workload, jb.Machine, resp.Key)
				}
				// The architectural contract: profile replay is invisible to
				// the simulated machine.
				ds, ps := dyn.Stats, resp.Stats
				if resp.Checksum != dyn.Checksum {
					errs <- fmt.Errorf("%s/%s: checksum %s, dynamic %s", jb.Workload, jb.Machine, resp.Checksum, dyn.Checksum)
				}
				if ps.Cycles != ds.Cycles || ps.Instructions != ds.Instructions || ps.Prefetch != ds.Prefetch {
					errs <- fmt.Errorf("%s/%s: pgo run diverged from dynamic:\ncycles %d vs %d\ninstructions %d vs %d\nprefetch %+v vs %+v",
						jb.Workload, jb.Machine, ps.Cycles, ds.Cycles,
						ps.Instructions, ds.Instructions, ps.Prefetch, ds.Prefetch)
				}
				// Profile reuse must actually skip re-inspection.
				if ps.InspectSteps != 0 {
					errs <- fmt.Errorf("%s/%s: pgo run inspected %d steps; profile replay must skip inspection",
						jb.Workload, jb.Machine, ps.InspectSteps)
				}
			}
		}(g)
	}
	submitters.Wait()
	close(stop)
	poller.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	after := harness.EngineCounters()
	if after.ProfileMisses != warmed.ProfileMisses {
		t.Errorf("hammer re-profiled %d cells; the warmed cache must serve every PGO job",
			after.ProfileMisses-warmed.ProfileMisses)
	}
	if after.ProfileHits == warmed.ProfileHits {
		t.Error("hammer recorded no profile hits")
	}
	st := srv.StatsSnapshot()
	if st.Profiles.Misses != after.ProfileMisses || st.Profiles.Hits != after.ProfileHits {
		t.Errorf("/stats profiles %+v out of step with engine counters hits=%d misses=%d",
			st.Profiles, after.ProfileHits, after.ProfileMisses)
	}
	if st.Accepted != st.Completed {
		t.Errorf("accepted %d != completed %d", st.Accepted, st.Completed)
	}
}
