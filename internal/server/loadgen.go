package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LoadOptions configures a load run against a running strider service.
type LoadOptions struct {
	// URL is the service base URL, e.g. "http://127.0.0.1:8120".
	URL string
	// Jobs are the cells to submit, cycled round-robin by request index —
	// a fixed request count therefore submits a deterministic multiset of
	// cells regardless of scheduling.
	Jobs []Job
	// Concurrency is the number of client workers (default 8).
	Concurrency int
	// Requests is the total number of submissions (default 256 when
	// Duration is unset).
	Requests int
	// Duration, when non-zero, bounds the run by wall clock instead of by
	// request count.
	Duration time.Duration
	// NoCache submits with ?nocache=1, forcing every request to execute
	// (on a pooled VM after the first) instead of hitting the result cache.
	NoCache bool
	// Verify maps cell keys to expected checksums ("%016x"); responses
	// whose checksum differs are counted in LoadStats.Mismatches.
	Verify map[string]string
	// Client overrides the HTTP client (default: a dedicated client).
	Client *http.Client
}

// LoadStats is the outcome of a load run.
type LoadStats struct {
	Requests     uint64 // submissions attempted
	OK           uint64 // 200 responses
	Backpressure uint64 // 429/503 responses (documented overload outcomes)
	Traps        uint64 // 200 responses reporting a deterministic trap
	Errors       uint64 // transport failures and undocumented statuses
	Mismatches   uint64 // OK responses whose checksum failed Verify
	// Checksum is a wraparound sum of every OK response's result checksum —
	// order-independent, so a deterministic request multiset yields a
	// deterministic fold however the requests interleave.
	Checksum uint64
	Elapsed  time.Duration

	latencies []time.Duration
}

// Rate returns completed submissions per second.
func (s LoadStats) Rate() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Requests) / s.Elapsed.Seconds()
}

// Percentile returns the p-th latency percentile (0 < p <= 100) over all
// submissions, or 0 when nothing was recorded.
func (s LoadStats) Percentile(p float64) time.Duration {
	if len(s.latencies) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(s.latencies))
	copy(sorted, s.latencies)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p/100*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// RunLoad drives a strider service with concurrent submissions and
// tallies the outcome. It is the engine behind both the striderload CLI
// and the server/throughput bench entry.
func RunLoad(opts LoadOptions) (LoadStats, error) {
	if opts.URL == "" {
		return LoadStats{}, errors.New("loadgen: no service URL")
	}
	if len(opts.Jobs) == 0 {
		return LoadStats{}, errors.New("loadgen: no jobs")
	}
	workers := opts.Concurrency
	if workers <= 0 {
		workers = 8
	}
	total := opts.Requests
	if total <= 0 && opts.Duration <= 0 {
		total = 256
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	path := "/run"
	if opts.NoCache {
		path = "/run?nocache=1"
	}

	bodies := make([][]byte, len(opts.Jobs))
	for i, jb := range opts.Jobs {
		b, err := json.Marshal(jb)
		if err != nil {
			return LoadStats{}, fmt.Errorf("loadgen: encode job %d: %w", i, err)
		}
		bodies[i] = b
	}

	var (
		next     atomic.Int64
		deadline time.Time
		start    = time.Now()

		mu    sync.Mutex
		stats LoadStats
	)
	if opts.Duration > 0 {
		deadline = start.Add(opts.Duration)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if total > 0 && int(i) >= total {
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(opts.URL+path, "application/json",
					bytes.NewReader(bodies[int(i)%len(bodies)]))
				lat := time.Since(t0)

				mu.Lock()
				stats.Requests++
				stats.latencies = append(stats.latencies, lat)
				if err != nil {
					stats.Errors++
					mu.Unlock()
					continue
				}
				mu.Unlock()

				var out Response
				decodeErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()

				mu.Lock()
				switch {
				case resp.StatusCode == http.StatusOK && decodeErr == nil:
					if out.Trap != "" || out.Err != "" {
						stats.Traps++
					} else {
						stats.OK++
						var sum uint64
						fmt.Sscanf(out.Checksum, "%016x", &sum)
						stats.Checksum += sum
						if want, ok := opts.Verify[out.Key]; ok && out.Checksum != want {
							stats.Mismatches++
						}
					}
				case resp.StatusCode == http.StatusTooManyRequests,
					resp.StatusCode == http.StatusServiceUnavailable:
					stats.Backpressure++
				default:
					stats.Errors++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	stats.Elapsed = time.Since(start)
	return stats, nil
}

// SerialBaseline executes each distinct job serially in-process on fresh
// VMs — no cache, no pool — and returns the cell-key → checksum map that
// RunLoad's Verify option compares service responses against.
func SerialBaseline(jobs []Job) (map[string]string, error) {
	e := &executor{pool: newVMPool(0)}
	want := make(map[string]string)
	for _, jb := range jobs {
		spec := jb.Spec().Canonical()
		key := spec.Key()
		if _, done := want[key]; done {
			continue
		}
		resp := e.run(spec, false)
		if resp.Err != "" {
			return nil, fmt.Errorf("loadgen: serial baseline for %s: %s", key, resp.Err)
		}
		want[key] = resp.Checksum
	}
	return want, nil
}
