package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"strider/internal/telemetry"
)

// gateRecorder blocks the worker at the end of each execution until the
// gate opens — a deterministic way to hold a shard busy so its queue can
// be saturated without racing the worker.
type gateRecorder struct {
	telemetry.Nop
	gate chan struct{}
}

func (g *gateRecorder) Cell(telemetry.CellEvent) { <-g.gate }

// TestBackpressure saturates a single shard with queue capacity 1 and pins
// the overload contract: the overflowing submit gets 429 + Retry-After,
// previously accepted jobs all complete, and a later submit succeeds.
func TestBackpressure(t *testing.T) {
	gate := &gateRecorder{gate: make(chan struct{})}
	srv := New(Config{Shards: 1, QueueDepth: 1, RetryAfter: 2 * time.Second, Recorder: gate})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Job A executes; the worker then blocks in the recorder while A's
	// response is already written.
	codeA, _ := postJob(t, ts, "/run?nocache=1", Job{Workload: "fuzz:0x1"})
	if codeA != http.StatusOK {
		t.Fatalf("job A: status %d", codeA)
	}

	// Job B fills the only queue slot behind the blocked worker.
	bDone := make(chan Response, 1)
	go func() {
		_, resp := postJob(t, ts, "/run?nocache=1", Job{Workload: "fuzz:0x2"})
		bDone <- resp
	}()
	waitFor(t, func() bool { return srv.StatsSnapshot().Accepted == 2 })

	// Job C overflows: 429 with a Retry-After hint, nothing enqueued.
	resp, err := ts.Client().Post(ts.URL+"/run?nocache=1", "application/json",
		strings.NewReader(`{"workload":"fuzz:0x3"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After %q, want %q", ra, "2")
	}

	// The cacheable path propagates the same backpressure and cleans up its
	// singleflight slot so the cell can be retried later.
	codeD, _ := postJob(t, ts, "/run", Job{Workload: "fuzz:0x4"})
	if codeD != http.StatusTooManyRequests {
		t.Fatalf("cacheable overflow submit: status %d, want 429", codeD)
	}

	// Open the gate: job B completes successfully; nothing accepted was lost.
	close(gate.gate)
	respB := <-bDone
	if respB.Stats == nil || respB.Err != "" {
		t.Fatalf("job B after gate: %+v", respB)
	}

	// The previously rejected cell is accepted now.
	codeD2, respD := postJob(t, ts, "/run", Job{Workload: "fuzz:0x4"})
	if codeD2 != http.StatusOK || respD.Stats == nil {
		t.Fatalf("retry after backpressure: status %d resp %+v", codeD2, respD)
	}

	srv.Close()
	st := srv.StatsSnapshot()
	if st.Accepted != st.Completed {
		t.Errorf("accepted %d != completed %d", st.Accepted, st.Completed)
	}
	if st.Rejected.QueueFull < 2 {
		t.Errorf("queue-full rejections %d, want >= 2", st.Rejected.QueueFull)
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight %d after close", st.InFlight)
	}
}

// waitFor polls cond for up to ~2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}
