package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"strider/internal/harness"
	"strider/internal/telemetry"
)

// Config sizes the service. The zero value is a sensible single-box
// deployment: one worker shard per core, bounded queues, caching and VM
// pooling on.
type Config struct {
	// Shards is the number of worker shards (default GOMAXPROCS). Each
	// shard owns one worker goroutine and one bounded queue; cells hash
	// onto shards by key, so one cell's executions never contend.
	Shards int
	// QueueDepth is the per-shard queue capacity (default 64). A full
	// queue is explicit backpressure: 429 + Retry-After.
	QueueDepth int
	// CacheEntries caps the completed results cached per cache shard
	// (default 1024; negative disables result caching).
	CacheEntries int
	// PoolKeys caps the number of distinct cells with a parked VM
	// (default 256; negative disables VM pooling).
	PoolKeys int
	// MaxBodyBytes caps the request body (default 64 KiB) — jobs are a
	// few hundred bytes; anything larger is rejected with 413.
	MaxBodyBytes int64
	// RetryAfter is the client backoff hint stamped on 429/503 responses
	// (default 1s, rounded up to whole seconds).
	RetryAfter time.Duration
	// Recorder, when non-nil, receives one telemetry.CellEvent per
	// executed job (cache hits and dedup joins are not re-recorded, like
	// the grid engine's dedup behaviour). Must be concurrency-safe.
	Recorder telemetry.Recorder
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.PoolKeys == 0 {
		c.PoolKeys = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 10
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// task is one accepted execution travelling through a shard queue.
type task struct {
	spec    harness.Spec
	key     string
	explain bool
	// entry is the cache slot this execution publishes into (nil for
	// nocache and explain runs).
	entry *cacheEntry
	// resp is set by the worker before done is closed.
	resp *Response
	done chan struct{}
}

// cacheEntry is one cell's slot in the sharded result cache. Until done
// is closed it represents an execution in flight — concurrent submitters
// of the same cell wait on it instead of queueing their own run
// (singleflight). resp stays nil if the execution was never enqueued
// (backpressure) so joiners can fail the same way the submitter did.
type cacheEntry struct {
	done chan struct{}
	resp *Response
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}

// shard is one worker: a bounded queue and its utilization counters.
type shard struct {
	queue     chan *task
	processed atomic.Uint64
	busyNs    atomic.Int64
	busy      atomic.Bool
}

// Server is the strider execution service. Create with New, mount via
// Handler (or pass directly to http.Server), stop with Drain/Close.
type Server struct {
	cfg    Config
	exec   *executor
	shards []*shard
	cache  []*cacheShard
	mux    *http.ServeMux
	start  time.Time

	// drainMu orders request acceptance against Drain: acceptors hold the
	// read side while checking the flag and registering with jobs.
	drainMu  sync.RWMutex
	draining bool
	jobs     sync.WaitGroup
	stopOnce sync.Once

	inFlight   atomic.Int64
	accepted   atomic.Uint64
	completed  atomic.Uint64
	traps      atomic.Uint64
	cacheHits  atomic.Uint64
	cacheMiss  atomic.Uint64
	dedupJoins atomic.Uint64
	evictions  atomic.Uint64
	rejectFull atomic.Uint64
	rejectGone atomic.Uint64 // rejected because draining
	rejectBad  atomic.Uint64 // validation / protocol rejections
}

// New creates a started server: worker shards are running and the handler
// is ready to serve.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		exec:   &executor{pool: newVMPool(poolCap(cfg.PoolKeys))},
		shards: make([]*shard, cfg.Shards),
		cache:  make([]*cacheShard, cfg.Shards),
		start:  time.Now(),
	}
	for i := range s.shards {
		s.shards[i] = &shard{queue: make(chan *task, cfg.QueueDepth)}
		s.cache[i] = &cacheShard{m: make(map[string]*cacheEntry)}
		go s.worker(s.shards[i])
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux = mux
	return s
}

func poolCap(n int) int {
	if n < 0 {
		return 0
	}
	return n
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP makes the Server itself mountable.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain stops accepting new jobs (503 + Retry-After) and blocks until
// every accepted job has completed — queued and executing work is never
// abandoned. Safe to call more than once.
func (s *Server) Drain() {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	s.jobs.Wait()
}

// Draining reports whether the server has begun (or finished) draining.
func (s *Server) Draining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// Close drains the server and stops its workers.
func (s *Server) Close() {
	s.Drain()
	s.stopOnce.Do(func() {
		for _, sh := range s.shards {
			close(sh.queue)
		}
	})
}

// shardFor hashes a cell key onto its shard index.
func (s *Server) shardFor(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// worker drains one shard's queue.
func (s *Server) worker(sh *shard) {
	for t := range sh.queue {
		sh.busy.Store(true)
		start := time.Now()
		resp := s.exec.run(t.spec, t.explain)
		wall := time.Since(start)
		resp.WallNs = wall.Nanoseconds()
		t.resp = resp
		if t.entry != nil {
			t.entry.resp = resp
			s.publish(t.key, t.entry)
		}
		close(t.done)
		if resp.Trap != "" || resp.Err != "" {
			s.traps.Add(1)
		}
		s.completed.Add(1)
		s.inFlight.Add(-1)
		if rec := s.cfg.Recorder; rec != nil {
			ev := telemetry.CellEvent{Cell: t.spec.String(), Wall: wall}
			if resp.Err != "" {
				ev.Err = resp.Err
			}
			rec.Cell(ev)
		}
		sh.busyNs.Add(wall.Nanoseconds())
		sh.busy.Store(false)
		sh.processed.Add(1)
		s.jobs.Done()
	}
}

// publish installs a completed entry in the cache, evicting an arbitrary
// completed entry when the shard is over capacity. In-flight entries are
// never evicted — waiters hold them.
func (s *Server) publish(key string, e *cacheEntry) {
	if s.cfg.CacheEntries < 0 {
		return
	}
	cs := s.cache[s.shardFor(key)]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if len(cs.m) < s.cfg.CacheEntries {
		return // entry was installed at submit time; still within capacity
	}
	for k, old := range cs.m {
		if k == key {
			continue
		}
		select {
		case <-old.done:
			delete(cs.m, k)
			s.evictions.Add(1)
			return
		default:
		}
	}
}

// errorResponse writes a machine-readable error body.
func writeError(w http.ResponseWriter, status int, e *Error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(e)
}

func (s *Server) retryAfterSeconds() string {
	secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Server) writeBackpressure(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Retry-After", s.retryAfterSeconds())
	writeError(w, status, &Error{Err: msg})
}

// handleRun is POST /run: decode, validate, serve from cache, join an
// in-flight execution, or schedule on the cell's shard — rejecting with
// 429 + Retry-After when the shard's queue is full.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.rejectBad.Add(1)
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, &Error{Err: "method " + r.Method + " not allowed on /run (use POST)"})
		return
	}
	var jb Job
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jb); err != nil {
		s.rejectBad.Add(1)
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, &Error{
				Err: fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes),
			})
			return
		}
		writeError(w, http.StatusBadRequest, &Error{Err: "invalid JSON: " + err.Error()})
		return
	}
	if e := jb.Validate(); e != nil {
		s.rejectBad.Add(1)
		writeError(w, http.StatusBadRequest, e)
		return
	}
	explain := r.URL.Query().Get("explain") == "1"
	nocache := explain || r.URL.Query().Get("nocache") == "1"
	spec := jb.Spec().Canonical()
	key := spec.Key()

	// Cache fast path (and singleflight join) — no queue slot consumed.
	if !nocache && s.cfg.CacheEntries >= 0 {
		cs := s.cache[s.shardFor(key)]
		cs.mu.Lock()
		e, ok := cs.m[key]
		if !ok {
			e = &cacheEntry{done: make(chan struct{})}
			cs.m[key] = e
		}
		cs.mu.Unlock()
		if ok {
			select {
			case <-e.done:
				if e.resp == nil {
					// The execution this request would have joined was never
					// enqueued (backpressure); fail the same way.
					s.rejectFull.Add(1)
					s.writeBackpressure(w, http.StatusTooManyRequests, "shard queue full")
					return
				}
				s.cacheHits.Add(1)
				s.writeResponse(w, e.resp, true)
			default:
				s.dedupJoins.Add(1)
				s.waitAndRespond(w, r, e.done, func() *Response { return e.resp })
			}
			return
		}
		s.cacheMiss.Add(1)
		// The task shares the entry's done channel: the worker's close
		// releases the submitter and every singleflight joiner at once.
		t := &task{spec: spec, key: key, entry: e, done: e.done}
		if !s.enqueue(w, t) {
			// Unblock joiners with the backpressure outcome, then forget
			// the cell so a later submit can try again.
			cs.mu.Lock()
			delete(cs.m, key)
			cs.mu.Unlock()
			close(e.done)
			return
		}
		s.waitAndRespond(w, r, t.done, func() *Response { return t.resp })
		return
	}

	t := &task{spec: spec, key: key, explain: explain, done: make(chan struct{})}
	if !s.enqueue(w, t) {
		return
	}
	s.waitAndRespond(w, r, t.done, func() *Response { return t.resp })
}

// enqueue accepts a task onto its shard's queue, writing the 503/429
// rejection itself when the server is draining or the queue is full.
func (s *Server) enqueue(w http.ResponseWriter, t *task) bool {
	s.drainMu.RLock()
	if s.draining {
		s.drainMu.RUnlock()
		s.rejectGone.Add(1)
		s.writeBackpressure(w, http.StatusServiceUnavailable, "server draining")
		return false
	}
	s.jobs.Add(1)
	s.drainMu.RUnlock()

	sh := s.shards[s.shardFor(t.key)]
	select {
	case sh.queue <- t:
		s.accepted.Add(1)
		s.inFlight.Add(1)
		return true
	default:
		s.jobs.Done()
		s.rejectFull.Add(1)
		s.writeBackpressure(w, http.StatusTooManyRequests, "shard queue full")
		return false
	}
}

// waitAndRespond blocks until the execution completes (or the client goes
// away — the execution itself always finishes and publishes).
func (s *Server) waitAndRespond(w http.ResponseWriter, r *http.Request, done <-chan struct{}, resp func() *Response) {
	select {
	case <-done:
	case <-r.Context().Done():
		// The client hung up; the job still completes and (if cacheable)
		// publishes. Nothing useful can be written.
		return
	}
	rp := resp()
	if rp == nil {
		s.rejectFull.Add(1)
		s.writeBackpressure(w, http.StatusTooManyRequests, "shard queue full")
		return
	}
	s.writeResponse(w, rp, false)
}

// writeResponse renders a response, stamping the per-request serving
// metadata on a copy so the cached canonical value stays immutable.
func (s *Server) writeResponse(w http.ResponseWriter, rp *Response, cached bool) {
	out := *rp
	out.Cached = cached
	if cached {
		out.Pooled = false
		out.WallNs = 0
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(&out)
}

// ShardStats is one worker shard's /stats row.
type ShardStats struct {
	QueueLen    int     `json:"queue_len"`
	QueueCap    int     `json:"queue_cap"`
	Processed   uint64  `json:"processed"`
	Busy        bool    `json:"busy"`
	Utilization float64 `json:"utilization"`
}

// CacheStats is the sharded result cache's /stats section.
type CacheStats struct {
	Entries    int     `json:"entries"`
	Hits       uint64  `json:"hits"`
	Misses     uint64  `json:"misses"`
	DedupJoins uint64  `json:"dedup_joins"`
	Evictions  uint64  `json:"evictions"`
	HitRate    float64 `json:"hit_rate"`
}

// ProfileStats is the PGO profile cache's /stats section. The counters
// come from the harness engine (the cache is engine-wide, shared with
// in-process harness callers): a hit is a PGO job served from a cached or
// in-flight profile, a miss is one that paid a dynamic profiling run.
type ProfileStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// Stats is the GET /stats body.
type Stats struct {
	Draining  bool         `json:"draining"`
	UptimeNs  int64        `json:"uptime_ns"`
	InFlight  int64        `json:"in_flight"`
	Accepted  uint64       `json:"accepted"`
	Completed uint64       `json:"completed"`
	Traps     uint64       `json:"traps"`
	Rejected  RejectStats  `json:"rejected"`
	Shards    []ShardStats `json:"shards"`
	Cache     CacheStats   `json:"cache"`
	Pool      PoolStats    `json:"pool"`
	Profiles  ProfileStats `json:"profiles"`
}

// RejectStats breaks down refused requests.
type RejectStats struct {
	QueueFull uint64 `json:"queue_full"`
	Draining  uint64 `json:"draining"`
	Invalid   uint64 `json:"invalid"`
}

// StatsSnapshot assembles the current Stats (also used by tests without
// going through HTTP).
func (s *Server) StatsSnapshot() Stats {
	uptime := time.Since(s.start)
	st := Stats{
		Draining:  s.Draining(),
		UptimeNs:  uptime.Nanoseconds(),
		InFlight:  s.inFlight.Load(),
		Accepted:  s.accepted.Load(),
		Completed: s.completed.Load(),
		Traps:     s.traps.Load(),
		Rejected: RejectStats{
			QueueFull: s.rejectFull.Load(),
			Draining:  s.rejectGone.Load(),
			Invalid:   s.rejectBad.Load(),
		},
		Pool: s.exec.pool.stats(),
	}
	ec := harness.EngineCounters()
	st.Profiles = ProfileStats{Hits: ec.ProfileHits, Misses: ec.ProfileMisses}
	for _, sh := range s.shards {
		util := 0.0
		if uptime > 0 {
			util = float64(sh.busyNs.Load()) / float64(uptime.Nanoseconds())
		}
		st.Shards = append(st.Shards, ShardStats{
			QueueLen:    len(sh.queue),
			QueueCap:    cap(sh.queue),
			Processed:   sh.processed.Load(),
			Busy:        sh.busy.Load(),
			Utilization: util,
		})
	}
	entries := 0
	for _, cs := range s.cache {
		cs.mu.Lock()
		entries += len(cs.m)
		cs.mu.Unlock()
	}
	hits, misses, joins := s.cacheHits.Load(), s.cacheMiss.Load(), s.dedupJoins.Load()
	rate := 0.0
	if hits+misses+joins > 0 {
		rate = float64(hits) / float64(hits+misses+joins)
	}
	st.Cache = CacheStats{
		Entries:    entries,
		Hits:       hits,
		Misses:     misses,
		DedupJoins: joins,
		Evictions:  s.evictions.Load(),
		HitRate:    rate,
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.rejectBad.Add(1)
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, &Error{Err: "method " + r.Method + " not allowed on /stats (use GET)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.StatsSnapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.rejectBad.Add(1)
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, &Error{Err: "method " + r.Method + " not allowed on /healthz (use GET)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if s.Draining() {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"status": "draining"})
		return
	}
	json.NewEncoder(w).Encode(map[string]any{"status": "ok"})
}
