package server

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"strider/internal/harness"
	"strider/internal/workloads"
)

// fullCellSet is the complete experiment grid in job vocabulary: every
// registered workload on both machines under all three software modes,
// small size.
func fullCellSet() []Job {
	var jobs []Job
	for _, w := range workloads.Names() {
		for _, machine := range []string{"Pentium4", "AthlonMP"} {
			for _, mode := range []string{"baseline", "inter", "inter+intra"} {
				jobs = append(jobs, Job{Workload: w, Size: "small", Machine: machine, Mode: mode})
			}
		}
	}
	return jobs
}

// TestServiceMatchesSerialHarness is the end-to-end determinism pin: the
// full experiment cell set submitted to a running service concurrently —
// twice, once cacheable and once with ?nocache=1 to force the pooled
// execution path — must reproduce a serial harness grid byte-for-byte.
func TestServiceMatchesSerialHarness(t *testing.T) {
	jobs := fullCellSet()

	// Serial ground truth: one worker, fresh engine cache.
	harness.ClearCache()
	specs := make([]harness.Spec, len(jobs))
	for i, jb := range jobs {
		specs[i] = jb.Spec()
	}
	serial := harness.Grid{Specs: specs, Parallel: 1}.Run()
	want := make(map[string]harness.Result, len(serial))
	for _, r := range serial {
		if r.Err != nil {
			t.Fatalf("serial cell %s failed: %v", r.Spec.Key(), r.Err)
		}
		want[r.Spec.Key()] = r
	}

	srv := New(Config{Shards: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, path := range []string{"/run", "/run?nocache=1"} {
		var wg sync.WaitGroup
		errs := make(chan error, len(jobs))
		for _, jb := range jobs {
			wg.Add(1)
			go func(jb Job) {
				defer wg.Done()
				code, resp := postJob(t, ts, path, jb)
				if code != 200 {
					errs <- fmt.Errorf("%s %v: status %d", path, jb, code)
					return
				}
				w, ok := want[resp.Key]
				if !ok {
					errs <- fmt.Errorf("%s %v: response key %q not in serial grid", path, jb, resp.Key)
					return
				}
				if resp.Stats == nil {
					errs <- fmt.Errorf("%s %v: no stats: %+v", path, jb, resp)
					return
				}
				if *resp.Stats != w.Stats {
					errs <- fmt.Errorf("%s %v: stats diverge from serial harness:\n%+v\nvs\n%+v",
						path, jb, *resp.Stats, w.Stats)
					return
				}
				if resp.Checksum != fmt.Sprintf("%016x", w.Stats.Checksum) {
					errs <- fmt.Errorf("%s %v: checksum %s vs %016x", path, jb, resp.Checksum, w.Stats.Checksum)
				}
			}(jb)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		if t.Failed() {
			break
		}
	}

	st := srv.StatsSnapshot()
	if st.InFlight != 0 {
		t.Errorf("in-flight not zero after quiescence: %+v", st)
	}
	if st.Accepted != st.Completed {
		t.Errorf("accepted %d != completed %d", st.Accepted, st.Completed)
	}
}
