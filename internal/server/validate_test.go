package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestAPIValidation is the table-driven protocol suite: every malformed
// request class maps to a documented 4xx with a machine-readable Error
// body naming the offending field and the valid values.
func TestAPIValidation(t *testing.T) {
	srv := New(Config{Shards: 1, MaxBodyBytes: 256})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		name      string
		method    string
		path      string
		body      string
		status    int
		field     string // expected Error.Field, "" = don't care
		wantValid string // a value that must appear in Error.Valid
		errSubstr string // substring of Error.Err
	}{
		{name: "malformed JSON", method: "POST", path: "/run",
			body: `{"workload":`, status: 400, errSubstr: "invalid JSON"},
		{name: "unknown JSON field", method: "POST", path: "/run",
			body: `{"workload":"jess","bogus":1}`, status: 400, errSubstr: "invalid JSON"},
		{name: "missing workload", method: "POST", path: "/run",
			body: `{}`, status: 400, field: "workload", errSubstr: "missing workload"},
		{name: "unknown workload", method: "POST", path: "/run",
			body: `{"workload":"zork"}`, status: 400, field: "workload", wantValid: "jess"},
		{name: "bad fuzz seed", method: "POST", path: "/run",
			body: `{"workload":"fuzz:xyz"}`, status: 400, field: "workload", errSubstr: "bad fuzz seed"},
		{name: "unknown size", method: "POST", path: "/run",
			body: `{"workload":"jess","size":"huge"}`, status: 400, field: "size", wantValid: "full"},
		{name: "unknown machine", method: "POST", path: "/run",
			body: `{"workload":"jess","machine":"Itanium"}`, status: 400, field: "machine", wantValid: "Pentium4"},
		{name: "unknown mode", method: "POST", path: "/run",
			body: `{"workload":"jess","mode":"turbo"}`, status: 400, field: "mode", wantValid: "inter+intra"},
		{name: "unknown gc", method: "POST", path: "/run",
			body: `{"workload":"jess","gc":"generational"}`, status: 400, field: "gc", wantValid: "compact"},
		{name: "unknown hw model", method: "POST", path: "/run",
			body: `{"workload":"jess","hw":"oracle"}`, status: 400, field: "hw", wantValid: "stream"},
		{name: "unknown predict source", method: "POST", path: "/run",
			body: `{"workload":"jess","predict":"psychic"}`, status: 400, field: "predict", wantValid: "static"},
		{name: "negative warmups", method: "POST", path: "/run",
			body: `{"workload":"jess","warmups":-1}`, status: 400, field: "warmups", errSubstr: "negative warmups"},
		{name: "oversize body", method: "POST", path: "/run",
			body: `{"workload":"` + strings.Repeat("x", 512) + `"}`, status: 413, errSubstr: "exceeds"},
		{name: "GET /run", method: "GET", path: "/run",
			status: 405, errSubstr: "use POST"},
		{name: "DELETE /run", method: "DELETE", path: "/run",
			status: 405, errSubstr: "use POST"},
		{name: "POST /stats", method: "POST", path: "/stats",
			status: 405, errSubstr: "use GET"},
		{name: "POST /healthz", method: "POST", path: "/healthz",
			status: 405, errSubstr: "use GET"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.status)
			}
			if resp.StatusCode == http.StatusMethodNotAllowed && resp.Header.Get("Allow") == "" {
				t.Error("405 without Allow header")
			}
			var e Error
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("error body is not machine-readable JSON: %v", err)
			}
			if e.Err == "" {
				t.Error("empty error message")
			}
			if tc.field != "" && e.Field != tc.field {
				t.Errorf("error field %q, want %q (%+v)", e.Field, tc.field, e)
			}
			if tc.errSubstr != "" && !strings.Contains(e.Err, tc.errSubstr) {
				t.Errorf("error %q does not mention %q", e.Err, tc.errSubstr)
			}
			if tc.wantValid != "" {
				found := false
				for _, v := range e.Valid {
					if v == tc.wantValid {
						found = true
					}
				}
				if !found {
					t.Errorf("valid set %v does not list %q", e.Valid, tc.wantValid)
				}
			}
		})
	}

	// Rejections are visible in /stats and nothing was ever scheduled.
	st := srv.StatsSnapshot()
	if st.Rejected.Invalid != uint64(len(cases)) {
		t.Errorf("invalid-reject counter %d, want %d", st.Rejected.Invalid, len(cases))
	}
	if st.Accepted != 0 || st.Completed != 0 {
		t.Errorf("invalid requests reached the scheduler: %+v", st)
	}
}
