package server

import (
	"reflect"
	"testing"
)

// freshVsPooled runs one cell twice on the same executor and returns both
// responses: the first builds a fresh VM, the second must reuse it from
// the pool.
func freshVsPooled(t *testing.T, e *executor, jb Job) (fresh, pooled *Response) {
	t.Helper()
	spec := jb.Spec().Canonical()
	fresh = e.run(spec, false)
	if fresh.Pooled {
		t.Fatalf("%v: first run claims pooled", jb)
	}
	pooled = e.run(spec, false)
	if !pooled.Pooled {
		t.Fatalf("%v: second run did not reuse the parked VM", jb)
	}
	return fresh, pooled
}

// TestPooledVMReproducesFresh is the VM-pool reset-correctness regression:
// for plain cells, fuzz programs, and a deterministically trapping job, a
// recycled VM must produce a response deeply equal to the fresh VM's.
func TestPooledVMReproducesFresh(t *testing.T) {
	for _, jb := range []Job{
		{Workload: "jess"},
		{Workload: "search", Mode: "baseline", Machine: "AthlonMP"},
		{Workload: "db", GC: "freelist", HW: "ipstride"},
		{Workload: "fuzz:0x3"},
		{Workload: "fuzz:0x9"},
	} {
		e := &executor{pool: newVMPool(16)}
		fresh, pooled := freshVsPooled(t, e, jb)
		if !reflect.DeepEqual(fresh.Deterministic(), pooled.Deterministic()) {
			t.Errorf("%v: pooled response diverges from fresh:\n%+v\nvs\n%+v", jb, fresh, pooled)
		}
		if n := e.pool.poisoned.Load(); n != 0 {
			t.Errorf("%v: healthy reuse counted as poisoned (%d)", jb, n)
		}
	}
}

// TestPooledVMReproducesTrap pins recycling across a trapping execution:
// a job that traps parks its VM with the canonical error text, and the
// recycled VM traps identically — the pool never converts a deterministic
// trap into a different outcome.
func TestPooledVMReproducesTrap(t *testing.T) {
	e := &executor{pool: newVMPool(16)}
	jb := Job{Workload: "fuzz:0x7", HeapBytes: 4096}
	fresh, pooled := freshVsPooled(t, e, jb)
	if fresh.Trap != "out-of-memory" {
		t.Fatalf("trap cell did not trap: %+v", fresh)
	}
	if !reflect.DeepEqual(fresh.Deterministic(), pooled.Deterministic()) {
		t.Errorf("pooled trap diverges from fresh:\n%+v\nvs\n%+v", fresh, pooled)
	}
	if n := e.pool.poisoned.Load(); n != 0 {
		t.Errorf("identical trap counted as poisoned (%d)", n)
	}

	// After the trap, an unrelated healthy cell is unaffected.
	ok := e.run(Job{Workload: "fuzz:0x3"}.Spec().Canonical(), false)
	if ok.Trap != "" || ok.Stats == nil {
		t.Errorf("healthy cell after trap cell: %+v", ok)
	}
}

// TestPoolPoisoningGuard pins the guard itself: a parked VM whose recorded
// canonical outcome does not match what the recycled run produces is
// discarded and counted, and the request silently falls back to a fresh
// execution with the correct result.
func TestPoolPoisoningGuard(t *testing.T) {
	e := &executor{pool: newVMPool(16)}
	jb := Job{Workload: "jess"}
	spec := jb.Spec().Canonical()
	fresh := e.run(spec, false)
	if fresh.Stats == nil {
		t.Fatalf("fresh run failed: %+v", fresh)
	}

	// Corrupt the parked VM's canonical checksum so the guard must fire.
	key := spec.Key()
	pv := e.pool.get(key)
	if pv == nil {
		t.Fatal("no VM parked after fresh run")
	}
	pv.checksum ^= 0xdeadbeef
	e.pool.put(key, pv)

	resp := e.run(spec, false)
	if resp.Pooled {
		t.Error("poisoned VM served a response")
	}
	if n := e.pool.poisoned.Load(); n != 1 {
		t.Errorf("poisoned counter = %d, want 1", n)
	}
	if !reflect.DeepEqual(fresh.Deterministic(), resp.Deterministic()) {
		t.Errorf("fallback response diverges from canonical:\n%+v\nvs\n%+v", fresh, resp)
	}
	// The discarded VM is gone; the fallback's fresh VM is parked instead
	// and serves the next request.
	again := e.run(spec, false)
	if !again.Pooled {
		t.Error("fresh fallback VM was not re-parked")
	}
	if !reflect.DeepEqual(fresh.Deterministic(), again.Deterministic()) {
		t.Error("re-parked VM diverges from canonical")
	}
}

// TestPoolCapacityAndDisable pins the pool's bounds: capacity 0 disables
// pooling entirely; a full pool drops returns instead of growing.
func TestPoolCapacityAndDisable(t *testing.T) {
	off := &executor{pool: newVMPool(0)}
	spec := Job{Workload: "jess"}.Spec().Canonical()
	off.run(spec, false)
	r := off.run(spec, false)
	if r.Pooled {
		t.Error("disabled pool served a recycled VM")
	}
	if off.pool.size() != 0 {
		t.Error("disabled pool parked a VM")
	}

	one := &executor{pool: newVMPool(1)}
	one.run(Job{Workload: "jess"}.Spec().Canonical(), false)
	one.run(Job{Workload: "db"}.Spec().Canonical(), false)
	if one.pool.size() != 1 {
		t.Errorf("pool size %d, want 1 (capacity)", one.pool.size())
	}
	if one.pool.drops.Load() == 0 {
		t.Error("over-capacity return was not counted as a drop")
	}
}
