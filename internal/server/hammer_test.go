package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRaceHammer is the race-detector workout (the CI -race job runs this
// package): many goroutines submitting a mix of cacheable, nocache, explain,
// fuzz, and invalid jobs, a concurrent /stats poller, and a drain initiated
// mid-stream. Every accepted job must complete; every response must be one
// of the documented statuses.
func TestRaceHammer(t *testing.T) {
	srv := New(Config{Shards: 4, QueueDepth: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cells := []struct {
		path string
		body string
	}{
		{"/run", `{"workload":"jess"}`},
		{"/run", `{"workload":"search","mode":"baseline"}`},
		{"/run?nocache=1", `{"workload":"db","machine":"AthlonMP"}`},
		{"/run?explain=1", `{"workload":"euler"}`},
		{"/run", `{"workload":"fuzz:0x3"}`},
		{"/run", `{"workload":"fuzz:0x7","heap_bytes":4096}`}, // deterministic trap
		{"/run", `{"workload":"no-such-workload"}`},           // 400
	}

	const (
		goroutines = 8
		perG       = 20
	)
	var (
		wg      sync.WaitGroup
		stop    = make(chan struct{})
		started = make(chan struct{})
		badCode atomic.Int64
	)

	// Concurrent /stats poller: must never race with workers or drain.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := ts.Client().Get(ts.URL + "/stats")
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	var submitters sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		submitters.Add(1)
		go func(g int) {
			defer submitters.Done()
			for i := 0; i < perG; i++ {
				if g == 0 && i == perG/2 {
					close(started) // trigger the mid-stream drain
				}
				c := cells[(g*perG+i)%len(cells)]
				resp, err := ts.Client().Post(ts.URL+c.path, "application/json",
					bytes.NewReader([]byte(c.body)))
				if err != nil {
					continue // drain may close keep-alive conns; not a failure
				}
				switch resp.StatusCode {
				case http.StatusOK, http.StatusBadRequest,
					http.StatusTooManyRequests, http.StatusServiceUnavailable:
				default:
					badCode.Add(1)
					t.Errorf("unexpected status %d for %s %s", resp.StatusCode, c.path, c.body)
				}
				if resp.StatusCode == http.StatusOK {
					var out Response
					if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
						t.Errorf("bad response body: %v", err)
					}
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(g)
	}

	// Mid-stream drain: the service must refuse new work with 503 while
	// finishing everything already accepted.
	<-started
	srv.Drain()

	submitters.Wait()
	close(stop)
	wg.Wait()
	srv.Close()

	st := srv.StatsSnapshot()
	if !st.Draining {
		t.Error("stats do not report draining")
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight not zero after drain: %d", st.InFlight)
	}
	if st.Accepted != st.Completed {
		t.Errorf("accepted %d != completed %d after drain", st.Accepted, st.Completed)
	}
	for i, sh := range st.Shards {
		if sh.QueueLen != 0 {
			t.Errorf("shard %d queue not drained: %+v", i, sh)
		}
	}
	if badCode.Load() > 0 {
		t.Errorf("%d responses outside the documented status set", badCode.Load())
	}
}
