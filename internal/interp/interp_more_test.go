package interp

import (
	"testing"

	"strider/internal/classfile"
	"strider/internal/ir"
	"strider/internal/value"
)

func TestLongArithmeticProgram(t *testing.T) {
	p := ir.NewProgram(emptyUniverse())
	b := ir.NewBuilder(p, nil, "main", value.KindLong)
	x := b.ConstLong(1 << 40)
	y := b.ConstLong(3)
	z := b.Arith(ir.OpMul, value.KindLong, x, y)
	w := b.Arith(ir.OpShr, value.KindLong, z, b.ConstLong(2))
	b.Return(w)
	p.Entry = b.Finish()
	e := newEngine(p, interpOnly{})
	got, err := e.Run(p.Entry, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Long() != (3<<40)>>2 {
		t.Errorf("long math = %v", got)
	}
}

func TestLongFieldsAndArrays(t *testing.T) {
	u := emptyUniverse()
	c := u.MustDefineClass("W", nil,
		classfile.FieldSpec{Name: "l", Kind: value.KindLong},
	)
	p := ir.NewProgram(u)
	b := ir.NewBuilder(p, nil, "main", value.KindLong)
	o := b.New(c)
	v := b.ConstLong(0x1122334455667788)
	b.PutField(o, c.FieldByName("l"), v)
	three := b.ConstInt(3)
	arr := b.NewArray(value.KindLong, three)
	one := b.ConstInt(1)
	back := b.GetField(o, c.FieldByName("l"))
	b.ArrayStore(value.KindLong, arr, one, back)
	out := b.ArrayLoad(value.KindLong, arr, one)
	b.Return(out)
	p.Entry = b.Finish()
	e := newEngine(p, interpOnly{})
	got, err := e.Run(p.Entry, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Long() != 0x1122334455667788 {
		t.Errorf("long roundtrip through heap = %x", got.Long())
	}
}

func TestConversionChain(t *testing.T) {
	p := ir.NewProgram(emptyUniverse())
	b := ir.NewBuilder(p, nil, "main", value.KindInt)
	d := b.ConstDouble(3.75)
	f := b.Conv(value.KindFloat, d)
	l := b.Conv(value.KindLong, f)
	i := b.Conv(value.KindInt, l)
	b.Return(i)
	p.Entry = b.Finish()
	e := newEngine(p, interpOnly{})
	got, err := e.Run(p.Entry, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 3 {
		t.Errorf("conversion chain = %v", got)
	}
}

func TestStaticsThroughProgram(t *testing.T) {
	u := emptyUniverse()
	c := u.MustDefineClass("G", nil,
		classfile.FieldSpec{Name: "counter", Kind: value.KindInt, Static: true},
	)
	fCnt := c.FieldByName("counter")
	p := ir.NewProgram(u)
	b := ir.NewBuilder(p, nil, "main", value.KindInt)
	ten := b.ConstInt(10)
	i, end := func() (ir.Reg, func()) {
		i := b.ConstInt(0)
		cond := b.NewLabel()
		body := b.NewLabel()
		b.Goto(cond)
		b.Bind(body)
		return i, func() {
			b.IncInt(i, 1)
			b.Bind(cond)
			b.Br(value.KindInt, ir.CondLT, i, ten, body)
		}
	}()
	_ = i
	cur := b.GetStatic(fCnt)
	two := b.ConstInt(2)
	n2 := b.Arith(ir.OpAdd, value.KindInt, cur, two)
	b.PutStatic(fCnt, n2)
	end()
	out := b.GetStatic(fCnt)
	b.Return(out)
	p.Entry = b.Finish()
	e := newEngine(p, interpOnly{})
	got, err := e.Run(p.Entry, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 20 {
		t.Errorf("static accumulation = %v", got)
	}
}

func TestVirtualDispatchUnknownMethodTraps(t *testing.T) {
	u := emptyUniverse()
	c := u.MustDefineClass("X", nil)
	p := ir.NewProgram(u)
	b := ir.NewBuilder(p, nil, "main", value.KindInt)
	o := b.New(c)
	r := b.CallVirt("nosuch", true, o)
	b.Return(r)
	p.Entry = b.Finish()
	e := newEngine(p, interpOnly{})
	if _, err := e.Run(p.Entry, nil); err == nil {
		t.Error("dispatch to a missing method must trap")
	}
}

func TestPrefetchInstructionsAreCheap(t *testing.T) {
	// A loop with prefetches retires more instructions than one without,
	// but each prefetch costs only issue cycles.
	u := emptyUniverse()
	p := ir.NewProgram(u)
	mk := func(name string, withPrefetch bool) *ir.Method {
		b := ir.NewBuilder(p, nil, name, value.KindInt, value.KindRef, value.KindInt)
		arr, n := b.Param(0), b.Param(1)
		acc := b.ConstInt(0)
		i := b.ConstInt(0)
		cond := b.NewLabel()
		body := b.NewLabel()
		b.Goto(cond)
		b.Bind(body)
		v := b.ArrayLoad(value.KindInt, arr, i)
		b.ArithTo(acc, ir.OpAdd, value.KindInt, acc, v)
		if withPrefetch {
			b.Self().Code = append(b.Self().Code, ir.Instr{
				Op:   ir.OpPrefetch,
				Addr: ir.AddrExpr{Base: arr, Index: i, Scale: 4, Disp: 16 + 256},
			})
		}
		b.IncInt(i, 1)
		b.Bind(cond)
		b.Br(value.KindInt, ir.CondLT, i, n, body)
		b.Return(acc)
		return b.Finish()
	}
	plain := mk("plain", false)
	pf := mk("pf", true)

	run := func(m *ir.Method) Stats {
		e := newEngine(p, interpOnly{})
		arr, err := e.Heap.AllocArray(value.KindInt, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(m, []value.Value{value.Ref(arr), value.Int(4096)}); err != nil {
			t.Fatal(err)
		}
		return e.S
	}
	s1 := run(plain)
	s2 := run(pf)
	if s2.Instructions <= s1.Instructions {
		t.Error("prefetch instructions must be retired")
	}
	// Issue overhead only: per-instruction cost of the extra prefetches is
	// bounded by interp cost + issue.
	extra := s2.Instructions - s1.Instructions
	maxPer := newEngine(p, interpOnly{}).Machine.IssueCycles + newEngine(p, interpOnly{}).Machine.InterpPenalty
	if s2.Cycles > s1.Cycles+extra*(maxPer+1) {
		t.Errorf("prefetches too expensive: %d vs %d (+%d instrs)", s2.Cycles, s1.Cycles, extra)
	}
}

func TestSinkAllKinds(t *testing.T) {
	p := ir.NewProgram(emptyUniverse())
	b := ir.NewBuilder(p, nil, "main", value.KindInt)
	b.Sink(b.ConstInt(1))
	b.Sink(b.ConstLong(2))
	b.Sink(b.ConstDouble(2.5))
	b.Sink(b.ConstNull())
	z := b.ConstInt(0)
	b.Return(z)
	p.Entry = b.Finish()
	e := newEngine(p, interpOnly{})
	if _, err := e.Run(p.Entry, nil); err != nil {
		t.Fatal(err)
	}
	if e.S.Checksum == 0 {
		t.Error("sink of mixed kinds produced no checksum")
	}
}
