// Package interp is the execution engine of the simulated VM. It executes
// IR — baseline or prefetch-augmented — over the simulated heap, routing
// every memory access through the machine's memory-system model and
// accounting cycles with the machine's timing model.
//
// The engine runs both interpreted and JIT-compiled activations (the
// dispatcher decides per invocation); interpreted instructions pay the
// machine's interpretation penalty, which is how the mixed-mode
// compiled-code fractions of Table 3 arise.
package interp

import (
	"errors"
	"fmt"
	"os"

	"sort"

	"strider/internal/arch"
	"strider/internal/classfile"
	"strider/internal/heap"
	"strider/internal/ir"
	"strider/internal/memsim"
	"strider/internal/telemetry"
	"strider/internal/value"
)

// MemModel is the memory-hierarchy interface the engine drives
// (implemented by memsim.Memory). LoadAt carries the load-site pc —
// (method index << 16) | instruction index — which pc-indexed hardware
// prefetchers key their prediction tables on; stores and software
// prefetches do not train those tables and carry no site. Prefetch
// reports what became of the request so outcomes can be attributed to the
// emitting site.
type MemModel interface {
	LoadAt(addr, size uint32, now uint64, pc uint64) uint64
	Store(addr, size uint32, now uint64) uint64
	Prefetch(addr uint32, guarded bool, now uint64) telemetry.PrefetchOutcome
}

// Code is an executable method body as chosen by the dispatcher.
type Code struct {
	Instrs   []ir.Instr
	NumRegs  int
	Compiled bool

	// Threaded, when non-nil, is the method's pre-decoded micro-op stream
	// (built by internal/compile at JIT compile time). Run steps it in
	// place of the interpreter loop; Instrs stays authoritative for trap
	// attribution and for frames that predate the artifact.
	Threaded ThreadedCode
}

// ThreadedCode executes activations of one method from a pre-decoded
// representation. Step has the exact contract of the interpreter's step:
// execute the top frame f until it returns (done=true with the return
// value), calls (a new frame pushed, done=false), or traps (err non-nil
// with f.PC at the faulting instruction, so Run's RuntimeError wrapping
// attributes it identically).
type ThreadedCode interface {
	Step(e *Engine, f *Frame) (value.Value, bool, error)
}

// Dispatcher resolves each invocation to executable code, JIT-compiling as
// it sees fit. It receives the actual argument values — the hook that
// makes object inspection possible.
type Dispatcher interface {
	Invoke(m *ir.Method, args []value.Value) *Code
}

// RuntimeError is a trap raised by executing IR (null dereference, bounds,
// division by zero, out of memory, ...).
type RuntimeError struct {
	Method *ir.Method
	PC     int
	Err    error
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("runtime error in %s@%d: %v", e.Method.QName(), e.PC, e.Err)
}

func (e *RuntimeError) Unwrap() error { return e.Err }

// Execution trap causes.
var (
	ErrNullDeref     = errors.New("null dereference")
	ErrBounds        = errors.New("array index out of bounds")
	ErrNegativeSize  = errors.New("negative array size")
	ErrStackOverflow = errors.New("call stack overflow")
	ErrNoMethod      = errors.New("virtual dispatch failed")
	ErrBudget        = errors.New("instruction budget exhausted")
	ErrBadValue      = errors.New("operand has wrong kind")
)

// MaxFrames bounds recursion depth.
const MaxFrames = 1024

// DefaultMaxInstructions bounds runaway programs.
const DefaultMaxInstructions = 4_000_000_000

// Frame is one activation record. Its fields are exported so the compiled
// execution tier (internal/compile) can run activations of the same stack;
// VM-internal invariants (fixed backing array, register reuse) are owned by
// push and Run.
type Frame struct {
	M        *ir.Method
	Code     []ir.Instr
	Compiled bool
	PC       int
	Regs     []value.Value
	RetReg   ir.Reg // caller register receiving the return value

	// threaded is the frame's pre-decoded micro-op executor, set at push
	// time when the dispatched Code carries one; Run steps it instead of
	// the interpreter loop.
	threaded ThreadedCode
}

// Stats is the engine's cycle and event accounting for one run.
type Stats struct {
	Cycles               uint64
	Instructions         uint64
	CompiledCycles       uint64
	CompiledInstructions uint64
	GCs                  uint64
	GCCycles             uint64
	AllocBytes           uint64
	Checksum             uint64
}

// Engine executes programs.
type Engine struct {
	Prog    *ir.Program
	Heap    *heap.Heap
	Mem     MemModel
	Disp    Dispatcher
	Machine *arch.Machine

	// MaxInstructions bounds one Run (defaults to DefaultMaxInstructions).
	MaxInstructions uint64
	// ChargeGC adds a modelled GC cost to the cycle count (1 cycle per 4
	// live bytes plus a per-collection constant).
	ChargeGC bool

	// Rec, when non-nil, enables per-site memory attribution: the engine
	// aggregates prefetch outcomes (keyed by the instruction's Site, the
	// emitting load) and demand-load stalls (keyed by pc), and FlushSites
	// emits the aggregate. A nil Rec costs one pointer test per memory
	// instruction and zero allocations.
	Rec telemetry.Recorder

	S Stats

	// ExecScratch is opaque per-engine scratch storage for a ThreadedCode
	// implementation. The compiled tier parks its reusable thread state
	// here so steady-state Step calls allocate nothing; the engine never
	// reads it.
	ExecScratch any

	// fastMem pins Mem's concrete type when it is the standard simulator,
	// enabling the devirtualized inline-probe hit lane at the engine's
	// memory-access sites (and the compiled tier's, via FastMem): probe
	// memsim.LoadHit/StoreHit inline, fall into the full access as a
	// direct — not interface — call. nil routes every access through the
	// MemModel interface: any other model (oracle taps, test doubles, flat
	// memory), a configuration FastLaneOK excludes, or the
	// STRIDER_NO_FASTLANE escape hatch. Derived by SetMem; the lane choice
	// is made once at wiring, never per access.
	fastMem *memsim.Memory

	// frames is the activation stack. It is a value slice with capacity
	// MaxFrames fixed at creation, so frame pointers handed to step stay
	// valid across pushes and popped frames keep their register slices for
	// reuse — the steady-state call path allocates nothing.
	frames []Frame
	// argbuf is the scratch buffer call argument values are staged in
	// before they are copied into the callee frame.
	argbuf []value.Value
	sites  map[siteKey]*siteAgg
}

// siteKey identifies one attribution site within a method.
type siteKey struct {
	m        *ir.Method
	site     int
	prefetch bool
}

type siteAgg struct {
	issued, useless, dropped uint64
	count, stall             uint64
}

// New creates an engine.
func New(prog *ir.Program, h *heap.Heap, mem MemModel, disp Dispatcher, m *arch.Machine) *Engine {
	e := &Engine{
		Prog: prog, Heap: h, Disp: disp, Machine: m,
		MaxInstructions: DefaultMaxInstructions,
		ChargeGC:        true,
		frames:          make([]Frame, 0, MaxFrames),
	}
	e.SetMem(mem)
	return e
}

// SetMem installs the memory model and re-derives the fast-lane pinning.
// Every reassignment of the engine's memory model must go through here —
// writing the Mem field directly would leave a previously pinned backend
// receiving the hot-path accesses behind the new model's back.
func (e *Engine) SetMem(m MemModel) {
	e.Mem = m
	e.fastMem = nil
	if fm, ok := m.(*memsim.Memory); ok && fm.FastLaneOK() && !fastLaneDisabled() {
		e.fastMem = fm
	}
}

// FastMem returns the pinned concrete memory simulator, or nil when
// accesses must take the MemModel interface path. The compiled tier
// routes its memory micro-ops through it exactly like step does.
func (e *Engine) FastMem() *memsim.Memory { return e.fastMem }

// fastLaneDisabled reports the STRIDER_NO_FASTLANE escape hatch: any
// non-empty value forces every access through the fully general interface
// path. Read at SetMem time — once per engine wiring — so tests can flip
// it with t.Setenv and CI can prove lane choice is unobservable by
// diffing a forced-slow full experiments pass against the committed
// outputs.
func fastLaneDisabled() bool { return os.Getenv("STRIDER_NO_FASTLANE") != "" }

// ResetStats clears the per-run statistics and the site attribution.
func (e *Engine) ResetStats() {
	e.S = Stats{}
	e.sites = nil
}

// notePrefetch attributes one prefetch outcome to its emitting site.
func (e *Engine) notePrefetch(m *ir.Method, site int, out telemetry.PrefetchOutcome) {
	a := e.siteAggFor(siteKey{m: m, site: site, prefetch: true})
	a.issued++
	switch out {
	case telemetry.PrefetchUseless:
		a.useless++
	case telemetry.PrefetchDroppedTLB, telemetry.PrefetchDroppedQueue:
		a.dropped++
	}
}

// noteLoad attributes one demand load's stall cycles to its pc.
func (e *Engine) noteLoad(m *ir.Method, pc int, stall uint64) {
	a := e.siteAggFor(siteKey{m: m, site: pc})
	a.count++
	a.stall += stall
}

func (e *Engine) siteAggFor(k siteKey) *siteAgg {
	if e.sites == nil {
		e.sites = make(map[siteKey]*siteAgg)
	}
	a := e.sites[k]
	if a == nil {
		a = &siteAgg{}
		e.sites[k] = a
	}
	return a
}

// FlushSites emits the aggregated site attribution as SiteEvents in a
// deterministic order (method name, prefetch sites before load sites,
// site index) and clears the aggregation.
func (e *Engine) FlushSites() {
	if e.Rec == nil || len(e.sites) == 0 {
		e.sites = nil
		return
	}
	keys := make([]siteKey, 0, len(e.sites))
	for k := range e.sites {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if an, bn := a.m.QName(), b.m.QName(); an != bn {
			return an < bn
		}
		if a.prefetch != b.prefetch {
			return a.prefetch
		}
		return a.site < b.site
	})
	for _, k := range keys {
		a := e.sites[k]
		ev := telemetry.SiteEvent{Method: k.m.QName(), Site: k.site}
		if k.prefetch {
			ev.Kind = "prefetch"
			ev.Issued, ev.Useless, ev.Dropped = a.issued, a.useless, a.dropped
		} else {
			ev.Kind = "load"
			ev.Count, ev.StallCycles = a.count, a.stall
		}
		e.Rec.Site(ev)
	}
	e.sites = nil
}

// lineBytes returns the allocation-touch granule.
func (e *Engine) lineBytes() uint32 { return e.Machine.L1D.LineBytes }

func (e *Engine) push(m *ir.Method, args []value.Value, retReg ir.Reg) error {
	n := len(e.frames)
	if n >= MaxFrames {
		return ErrStackOverflow
	}
	code := e.Disp.Invoke(m, args)
	e.frames = e.frames[:n+1]
	f := &e.frames[n]
	f.M = m
	f.Code = code.Instrs
	f.Compiled = code.Compiled
	f.threaded = code.Threaded
	f.PC = 0
	f.RetReg = retReg
	if cap(f.Regs) >= code.NumRegs {
		f.Regs = f.Regs[:code.NumRegs]
	} else {
		f.Regs = make([]value.Value, code.NumRegs)
	}
	na := copy(f.Regs, args)
	// A reused register slice carries the previous activation's values;
	// clear the non-argument registers so GC roots and def-before-use
	// behaviour match a freshly zeroed frame.
	tail := f.Regs[na:]
	for i := range tail {
		tail[i] = value.Value{}
	}
	return nil
}

// roots enumerates all reference slots in live frames for the collector.
func (e *Engine) roots(visit func(*value.Value)) {
	for fi := range e.frames {
		regs := e.frames[fi].Regs
		for i := range regs {
			if regs[i].K == value.KindRef {
				visit(&regs[i])
			}
		}
	}
}

// collect runs a GC and charges its modelled cost.
func (e *Engine) collect() {
	live := e.Heap.Collect(e.roots)
	e.S.GCs++
	if e.ChargeGC {
		cost := 50_000 + live/4
		e.S.GCCycles += cost
		e.S.Cycles += cost
	}
}

// allocObject allocates with GC-on-demand and charges allocation traffic.
func (e *Engine) allocObject(c *classfile.Class) (uint32, error) {
	addr, err := e.Heap.AllocObject(c)
	if err != nil {
		e.collect()
		addr, err = e.Heap.AllocObject(c)
		if err != nil {
			return 0, err
		}
	}
	e.touchAlloc(addr, c.InstanceSize)
	return addr, nil
}

func (e *Engine) allocArray(k value.Kind, n uint32) (uint32, error) {
	addr, err := e.Heap.AllocArray(k, n)
	if err != nil {
		e.collect()
		addr, err = e.Heap.AllocArray(k, n)
		if err != nil {
			return 0, err
		}
	}
	e.touchAlloc(addr, e.Heap.ObjectSize(addr))
	return addr, nil
}

// touchAlloc models the zeroing writes of allocation: one store per cache
// line of the new object. Line-stepping writes miss the single-line memo
// on every step, so only the first store of each line can complete in the
// hit lane — the probe still saves the interface dispatch on it.
func (e *Engine) touchAlloc(addr, size uint32) {
	e.S.AllocBytes += uint64(size)
	line := e.lineBytes()
	fm := e.fastMem
	for off := uint32(0); off < size; off += line {
		var stall uint64
		if fm != nil {
			var hit bool
			if stall, hit = fm.StoreHit(addr+off, e.S.Cycles); !hit {
				stall = fm.Store(addr+off, 4, e.S.Cycles)
			}
		} else {
			stall = e.Mem.Store(addr+off, 4, e.S.Cycles)
		}
		e.S.Cycles += stall
	}
}

// sink folds a value into the run checksum (FNV-1a over the payload).
func (e *Engine) sink(v value.Value) {
	h := e.S.Checksum
	if h == 0 {
		h = 1469598103934665603
	}
	for i := 0; i < 8; i++ {
		h ^= (v.B >> (8 * i)) & 0xFF
		h *= 1099511628211
	}
	e.S.Checksum = h
}

// Run executes the entry method to completion and returns its result.
func (e *Engine) Run(entry *ir.Method, args []value.Value) (value.Value, error) {
	if len(args) != len(entry.Params) {
		return value.Value{}, fmt.Errorf("interp: entry %s wants %d args, got %d",
			entry.QName(), len(entry.Params), len(args))
	}
	e.frames = e.frames[:0]
	if err := e.push(entry, args, ir.NoReg); err != nil {
		return value.Value{}, err
	}
	var result value.Value
	for len(e.frames) > 0 {
		f := &e.frames[len(e.frames)-1]
		var (
			v    value.Value
			done bool
			err  error
		)
		if f.threaded != nil {
			v, done, err = f.threaded.Step(e, f)
		} else {
			v, done, err = e.step(f)
		}
		if err != nil {
			// A threaded Step may have pushed into deeper compiled frames
			// without returning here; the faulting frame is whatever is on
			// top now (for the interpreter loop that is always f itself).
			ft := &e.frames[len(e.frames)-1]
			return value.Value{}, &RuntimeError{Method: ft.M, PC: ft.PC, Err: err}
		}
		if done {
			e.frames = e.frames[:len(e.frames)-1]
			if len(e.frames) == 0 {
				result = v
			} else if f.RetReg != ir.NoReg {
				e.frames[len(e.frames)-1].Regs[f.RetReg] = v
			}
		}
	}
	return result, nil
}

// charge accounts one retired instruction.
func (e *Engine) charge(compiled bool, extra uint64) {
	cost := e.Machine.IssueCycles + extra
	if !compiled {
		cost += e.Machine.InterpPenalty
	}
	e.S.Cycles += cost
	e.S.Instructions++
	if compiled {
		e.S.CompiledCycles += cost
		e.S.CompiledInstructions++
	}
}

// step executes instructions of the top frame until it returns, calls, or
// traps. Returning done=true with a value pops the frame.
//
// The loop is the hot path of every simulation: per-instruction state
// (pc, issue cost, interpretation penalty, telemetry presence) lives in
// locals hoisted out of the loop, the dense Op switch compiles to a jump
// table, and the common int arithmetic/branch ops are evaluated inline
// instead of going through the ir.EvalBinary/EvalCond kind-dispatch
// chains. f.PC is synchronized on every exit so trap attribution
// (RuntimeError.PC) is identical to the straightforward implementation.
func (e *Engine) step(f *Frame) (value.Value, bool, error) {
	code := f.Code
	regs := f.Regs
	pc := f.PC
	compiled := f.Compiled
	// siteBase makes load-site pcs globally unique and deterministic:
	// (method index + 1) << 16 keeps pc 0 reserved for "no stable site"
	// and gives each method a private 64K instruction-index window.
	siteBase := uint64(f.M.Index()+1) << 16
	maxInstr := e.MaxInstructions
	perInstr := e.Machine.IssueCycles
	if !compiled {
		perInstr += e.Machine.InterpPenalty
	}
	rec := e.Rec != nil
	// fm != nil routes the memory ops below through the inline-probe hit
	// lane with a devirtualized fallback; nil is the fully general
	// interface path. See the fastMem field.
	fm := e.fastMem

	// fail synchronizes the faulting pc and returns the trap.
	fail := func(err error) (value.Value, bool, error) {
		f.PC = pc
		return value.Value{}, false, err
	}
	// charge accounts one retired instruction at cost perInstr+extra.
	charge := func(extra uint64) {
		cost := perInstr + extra
		e.S.Cycles += cost
		e.S.Instructions++
		if compiled {
			e.S.CompiledCycles += cost
			e.S.CompiledInstructions++
		}
	}

	for {
		if e.S.Instructions >= maxInstr {
			return fail(ErrBudget)
		}
		in := &code[pc]
		next := pc + 1
		var memStall uint64

		switch in.Op {
		case ir.OpNop:
		case ir.OpConst:
			regs[in.Dst] = constValue(in)
		case ir.OpMove:
			regs[in.Dst] = regs[in.A]
		case ir.OpAdd:
			if in.Kind == value.KindInt {
				regs[in.Dst] = value.Int(regs[in.A].Int() + regs[in.B].Int())
			} else {
				v, err := ir.EvalBinary(in.Op, in.Kind, regs[in.A], regs[in.B])
				if err != nil {
					return fail(err)
				}
				regs[in.Dst] = v
			}
		case ir.OpSub:
			if in.Kind == value.KindInt {
				regs[in.Dst] = value.Int(regs[in.A].Int() - regs[in.B].Int())
			} else {
				v, err := ir.EvalBinary(in.Op, in.Kind, regs[in.A], regs[in.B])
				if err != nil {
					return fail(err)
				}
				regs[in.Dst] = v
			}
		case ir.OpMul:
			if in.Kind == value.KindInt {
				regs[in.Dst] = value.Int(regs[in.A].Int() * regs[in.B].Int())
			} else {
				v, err := ir.EvalBinary(in.Op, in.Kind, regs[in.A], regs[in.B])
				if err != nil {
					return fail(err)
				}
				regs[in.Dst] = v
			}
		case ir.OpDiv, ir.OpRem, ir.OpAnd, ir.OpOr,
			ir.OpXor, ir.OpShl, ir.OpShr, ir.OpUshr:
			v, err := ir.EvalBinary(in.Op, in.Kind, regs[in.A], regs[in.B])
			if err != nil {
				return fail(err)
			}
			regs[in.Dst] = v
		case ir.OpNeg:
			v, err := ir.EvalUnary(in.Op, in.Kind, regs[in.A])
			if err != nil {
				return fail(err)
			}
			regs[in.Dst] = v
		case ir.OpConv:
			v, err := ir.Convert(in.Kind, regs[in.A])
			if err != nil {
				return fail(err)
			}
			regs[in.Dst] = v

		case ir.OpGoto:
			next = in.Target
		case ir.OpBr:
			var taken bool
			if in.Kind == value.KindInt {
				x, y := regs[in.A].Int(), regs[in.B].Int()
				switch in.Cond {
				case ir.CondEQ:
					taken = x == y
				case ir.CondNE:
					taken = x != y
				case ir.CondLT:
					taken = x < y
				case ir.CondLE:
					taken = x <= y
				case ir.CondGT:
					taken = x > y
				case ir.CondGE:
					taken = x >= y
				default:
					return fail(ir.ErrBadOperand)
				}
			} else {
				var err error
				taken, err = ir.EvalCond(in.Cond, in.Kind, regs[in.A], regs[in.B])
				if err != nil {
					return fail(err)
				}
			}
			if taken {
				next = in.Target
			}
		case ir.OpReturn:
			charge(0)
			f.PC = pc
			if in.A == ir.NoReg {
				return value.Value{}, true, nil
			}
			return regs[in.A], true, nil

		case ir.OpGetField:
			obj := regs[in.A]
			if !obj.IsRef() {
				return fail(ErrBadValue)
			}
			if obj.IsNull() {
				return fail(ErrNullDeref)
			}
			addr := obj.Ref() + in.Field.Offset
			if fm != nil {
				var hit bool
				if memStall, hit = fm.LoadHit(addr, e.S.Cycles); !hit {
					memStall = fm.LoadAt(addr, in.Field.Kind.Size(), e.S.Cycles, siteBase|uint64(pc))
				}
			} else {
				memStall = e.Mem.LoadAt(addr, in.Field.Kind.Size(), e.S.Cycles, siteBase|uint64(pc))
			}
			regs[in.Dst] = e.loadHeap(in.Field.Kind, addr)
		case ir.OpPutField:
			obj := regs[in.A]
			if !obj.IsRef() {
				return fail(ErrBadValue)
			}
			if obj.IsNull() {
				return fail(ErrNullDeref)
			}
			addr := obj.Ref() + in.Field.Offset
			if fm != nil {
				var hit bool
				if memStall, hit = fm.StoreHit(addr, e.S.Cycles); !hit {
					memStall = fm.Store(addr, in.Field.Kind.Size(), e.S.Cycles)
				}
			} else {
				memStall = e.Mem.Store(addr, in.Field.Kind.Size(), e.S.Cycles)
			}
			e.storeHeap(addr, regs[in.B])
		case ir.OpGetStatic:
			regs[in.Dst] = e.Prog.Universe.GetStatic(in.Field)
		case ir.OpPutStatic:
			e.Prog.Universe.SetStatic(in.Field, regs[in.A])

		case ir.OpArrayLoad:
			addr, err := e.elemAddr(regs[in.A], regs[in.B])
			if err != nil {
				return fail(err)
			}
			if fm != nil {
				var hit bool
				if memStall, hit = fm.LoadHit(addr, e.S.Cycles); !hit {
					memStall = fm.LoadAt(addr, in.Kind.Size(), e.S.Cycles, siteBase|uint64(pc))
				}
			} else {
				memStall = e.Mem.LoadAt(addr, in.Kind.Size(), e.S.Cycles, siteBase|uint64(pc))
			}
			regs[in.Dst] = e.loadHeap(in.Kind, addr)
		case ir.OpArrayStore:
			addr, err := e.elemAddr(regs[in.A], regs[in.B])
			if err != nil {
				return fail(err)
			}
			if fm != nil {
				var hit bool
				if memStall, hit = fm.StoreHit(addr, e.S.Cycles); !hit {
					memStall = fm.Store(addr, in.Kind.Size(), e.S.Cycles)
				}
			} else {
				memStall = e.Mem.Store(addr, in.Kind.Size(), e.S.Cycles)
			}
			e.storeHeap(addr, regs[in.C])
		case ir.OpArrayLen:
			arr := regs[in.A]
			if !arr.IsRef() {
				return fail(ErrBadValue)
			}
			if arr.IsNull() {
				return fail(ErrNullDeref)
			}
			addr := arr.Ref() + classfile.AuxOffset
			if fm != nil {
				var hit bool
				if memStall, hit = fm.LoadHit(addr, e.S.Cycles); !hit {
					memStall = fm.LoadAt(addr, 4, e.S.Cycles, siteBase|uint64(pc))
				}
			} else {
				memStall = e.Mem.LoadAt(addr, 4, e.S.Cycles, siteBase|uint64(pc))
			}
			regs[in.Dst] = value.Int(int32(e.Heap.Load4(addr)))

		case ir.OpNew:
			addr, err := e.allocObject(in.Class)
			if err != nil {
				return fail(err)
			}
			regs[in.Dst] = value.Ref(addr)
		case ir.OpNewArray:
			n := regs[in.A]
			if n.K != value.KindInt {
				return fail(ErrBadValue)
			}
			if n.Int() < 0 {
				return fail(ErrNegativeSize)
			}
			addr, err := e.allocArray(in.Kind, uint32(n.Int()))
			if err != nil {
				return fail(err)
			}
			regs[in.Dst] = value.Ref(addr)

		case ir.OpCall, ir.OpCallVirt:
			callee := in.Callee
			if in.Op == ir.OpCallVirt {
				recv := regs[in.Args[0]]
				if !recv.IsRef() {
					return fail(ErrBadValue)
				}
				if recv.IsNull() {
					return fail(ErrNullDeref)
				}
				c := e.Heap.ClassOf(recv.Ref())
				callee = e.Prog.LookupVirtual(c, in.Name)
				if callee == nil {
					return fail(fmt.Errorf("%w: %s on %s", ErrNoMethod, in.Name, c.Name))
				}
			}
			charge(4) // call overhead
			if cap(e.argbuf) < len(in.Args) {
				e.argbuf = make([]value.Value, len(in.Args))
			}
			args := e.argbuf[:len(in.Args)]
			for i, r := range in.Args {
				args[i] = regs[r]
			}
			f.PC = next
			if err := e.push(callee, args, in.Dst); err != nil {
				return value.Value{}, false, err
			}
			return value.Value{}, false, nil

		case ir.OpSink:
			e.sink(regs[in.A])

		case ir.OpPrefetch:
			if addr, ok := e.prefetchAddr(regs, in.Addr); ok {
				out := e.Mem.Prefetch(addr, in.Guarded, e.S.Cycles)
				if rec {
					e.notePrefetch(f.M, int(in.Site), out)
				}
			}
		case ir.OpSpecLoad:
			// The guarded speculative load: never faults; fills the DTLB
			// and caches like a (non-blocking) load; architecturally
			// yields the loaded word, or null when out of bounds. The word
			// is a maybe-pointer (KindSpecRef, not KindRef): it must never
			// become a GC root, or a stale/garbage word pins or crashes
			// the collector.
			if addr, ok := e.prefetchAddr(regs, in.Addr); ok {
				out := e.Mem.Prefetch(addr, true, e.S.Cycles)
				if rec {
					e.notePrefetch(f.M, int(in.Site), out)
				}
				regs[in.Dst] = value.SpecRef(e.Heap.Load4(addr))
			} else {
				regs[in.Dst] = value.SpecRef(0)
			}
		default:
			return fail(fmt.Errorf("interp: unimplemented op %s", in.Op))
		}

		if rec && memStall != 0 {
			switch in.Op {
			case ir.OpGetField, ir.OpArrayLoad, ir.OpArrayLen:
				e.noteLoad(f.M, pc, memStall)
			}
		}
		charge(memStall)
		pc = next
	}
}

// prefetchAddr evaluates an address expression; ok is false when the base
// is not a valid in-heap reference (the software guard of Sec. 3.3). The
// base may be a real reference or a spec_load result (a maybe-pointer).
func (e *Engine) prefetchAddr(regs []value.Value, a ir.AddrExpr) (uint32, bool) {
	base := regs[a.Base]
	if (!base.IsRef() && !base.IsSpecRef()) || base.B == 0 {
		return 0, false
	}
	addr := int64(base.Ref()) + int64(a.Disp)
	if a.Index != ir.NoReg {
		idx := regs[a.Index]
		if idx.K != value.KindInt {
			return 0, false
		}
		addr += int64(idx.Int()) * int64(a.Scale)
	}
	if addr < 0 || addr > int64(^uint32(0)) {
		return 0, false
	}
	u := uint32(addr)
	if !e.Heap.Valid(u, 4) {
		return 0, false
	}
	return u, true
}

func (e *Engine) elemAddr(arr, idx value.Value) (uint32, error) {
	if !arr.IsRef() || idx.K != value.KindInt {
		return 0, ErrBadValue
	}
	if arr.IsNull() {
		return 0, ErrNullDeref
	}
	a := arr.Ref()
	n := e.Heap.ArrayLen(a)
	i := idx.Int()
	if i < 0 || uint32(i) >= n {
		return 0, fmt.Errorf("%w: %d of %d", ErrBounds, i, n)
	}
	c := e.Heap.ClassOf(a)
	return a + classfile.HeaderBytes + uint32(i)*c.ElemSize, nil
}

func (e *Engine) loadHeap(k value.Kind, addr uint32) value.Value {
	switch k {
	case value.KindLong, value.KindDouble:
		return value.Value{K: k, B: e.Heap.Load8(addr)}
	default:
		return value.Value{K: k, B: uint64(e.Heap.Load4(addr))}
	}
}

func (e *Engine) storeHeap(addr uint32, v value.Value) {
	switch v.K {
	case value.KindLong, value.KindDouble:
		e.Heap.Store8(addr, v.B)
	default:
		e.Heap.Store4(addr, v.Bits())
	}
}

func constValue(in *ir.Instr) value.Value {
	switch in.Kind {
	case value.KindInt:
		return value.Int(int32(in.Imm))
	case value.KindLong:
		return value.Long(in.Imm)
	case value.KindFloat:
		return value.Float(float32(in.F))
	case value.KindDouble:
		return value.Double(in.F)
	case value.KindRef:
		return value.Null
	}
	return value.Value{}
}

// ---------------------------------------------------------------------------
// Exported execution primitives for the compiled tier.
//
// The compiled tier (internal/compile) executes the same semantics from a
// pre-decoded representation. Everything with subtle invariants — frame
// management, allocation + GC interplay, the prefetch address guard, site
// attribution — stays defined here, single-sourced, and is reached through
// these thin exports.

// PushCall dispatches and pushes an activation of m, counting the
// invocation through the Dispatcher exactly like an interpreted call.
func (e *Engine) PushCall(m *ir.Method, args []value.Value, retReg ir.Reg) error {
	return e.push(m, args, retReg)
}

// TopFrame returns the current top activation. The pointer is only valid
// until the next PushCall (the frame stack may grow and move).
func (e *Engine) TopFrame() *Frame { return &e.frames[len(e.frames)-1] }

// PopFrame pops the top activation and delivers its return value to the
// caller's return register — exactly the Run loop's frame retirement.
// The caller must ensure at least one frame remains below.
func (e *Engine) PopFrame(v value.Value) {
	f := &e.frames[len(e.frames)-1]
	retReg := f.RetReg
	e.frames = e.frames[:len(e.frames)-1]
	if retReg != ir.NoReg {
		e.frames[len(e.frames)-1].Regs[retReg] = v
	}
}

// Threaded exposes the frame's pre-decoded executor so the compiled tier
// can decide whether a callee can be run without yielding to Run.
func (f *Frame) Threaded() ThreadedCode { return f.threaded }

// ArgBuf returns the shared call-argument staging buffer, sized to n.
func (e *Engine) ArgBuf(n int) []value.Value {
	if cap(e.argbuf) < n {
		e.argbuf = make([]value.Value, n)
	}
	return e.argbuf[:n]
}

// AllocObject allocates an instance of c with GC-on-demand, charging
// allocation traffic (and GC cost, when one runs) to e.S.Cycles directly.
func (e *Engine) AllocObject(c *classfile.Class) (uint32, error) { return e.allocObject(c) }

// AllocArray allocates a k[n] array with GC-on-demand; see AllocObject.
func (e *Engine) AllocArray(k value.Kind, n uint32) (uint32, error) { return e.allocArray(k, n) }

// Sink folds v into the run checksum.
func (e *Engine) Sink(v value.Value) { e.sink(v) }

// PrefetchAddr evaluates a prefetch address expression under the software
// guard of Sec. 3.3.
func (e *Engine) PrefetchAddr(regs []value.Value, a ir.AddrExpr) (uint32, bool) {
	return e.prefetchAddr(regs, a)
}

// ElemAddr resolves an array element address with full null/kind/bounds
// checking.
func (e *Engine) ElemAddr(arr, idx value.Value) (uint32, error) { return e.elemAddr(arr, idx) }

// NotePrefetch attributes one prefetch outcome to its emitting site.
// Callers guard on e.Rec != nil.
func (e *Engine) NotePrefetch(m *ir.Method, site int, out telemetry.PrefetchOutcome) {
	e.notePrefetch(m, site, out)
}

// NoteLoad attributes one demand load's stall cycles to its pc. Callers
// guard on e.Rec != nil.
func (e *Engine) NoteLoad(m *ir.Method, pc int, stall uint64) { e.noteLoad(m, pc, stall) }

// ConstValue materializes an OpConst instruction's value.
func ConstValue(in *ir.Instr) value.Value { return constValue(in) }
