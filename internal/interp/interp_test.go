package interp

import (
	"errors"
	"testing"

	"strider/internal/arch"
	"strider/internal/classfile"
	"strider/internal/heap"
	"strider/internal/ir"
	"strider/internal/memsim"
	"strider/internal/value"
)

// passthrough dispatcher: always interpret the original code.
type interpOnly struct{}

func (interpOnly) Invoke(m *ir.Method, args []value.Value) *Code {
	return &Code{Instrs: m.Code, NumRegs: m.NumRegs, Compiled: false}
}

// compiledOnly marks everything as compiled (for cycle accounting tests).
type compiledOnly struct{}

func (compiledOnly) Invoke(m *ir.Method, args []value.Value) *Code {
	return &Code{Instrs: m.Code, NumRegs: m.NumRegs, Compiled: true}
}

func newEngine(p *ir.Program, disp Dispatcher) *Engine {
	machine := arch.Pentium4()
	h := heap.New(1<<20, p.Universe)
	mem := memsim.New(machine)
	return New(p, h, mem, disp, machine)
}

func emptyUniverse() *classfile.Universe { return classfile.NewUniverse() }

func TestArithmeticProgram(t *testing.T) {
	p := ir.NewProgram(emptyUniverse())
	b := ir.NewBuilder(p, nil, "main", value.KindInt)
	x := b.ConstInt(6)
	y := b.ConstInt(7)
	z := b.Arith(ir.OpMul, value.KindInt, x, y)
	b.Return(z)
	p.Entry = b.Finish()
	e := newEngine(p, interpOnly{})
	got, err := e.Run(p.Entry, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 42 {
		t.Errorf("6*7 = %v", got)
	}
	if e.S.Instructions != 4 {
		t.Errorf("retired %d instructions, want 4", e.S.Instructions)
	}
}

func TestRecursionFactorial(t *testing.T) {
	p := ir.NewProgram(emptyUniverse())
	b := ir.NewBuilder(p, nil, "fact", value.KindInt, value.KindInt)
	n := b.Param(0)
	one := b.ConstInt(1)
	base := b.NewLabel()
	b.Br(value.KindInt, ir.CondLE, n, one, base)
	nm1 := b.Arith(ir.OpSub, value.KindInt, n, one)
	sub := b.Call(b.Self(), nm1)
	r := b.Arith(ir.OpMul, value.KindInt, n, sub)
	b.Return(r)
	b.Bind(base)
	b.Return(one)
	fact := b.Finish()
	p.Entry = fact
	e := newEngine(p, interpOnly{})
	got, err := e.Run(fact, []value.Value{value.Int(10)})
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 3628800 {
		t.Errorf("10! = %v", got)
	}
}

func TestHeapObjectsAndArrays(t *testing.T) {
	u := emptyUniverse()
	c := u.MustDefineClass("Box", nil,
		classfile.FieldSpec{Name: "v", Kind: value.KindDouble},
		classfile.FieldSpec{Name: "arr", Kind: value.KindRef},
	)
	p := ir.NewProgram(u)
	b := ir.NewBuilder(p, nil, "main", value.KindDouble)
	box := b.New(c)
	pi := b.ConstDouble(3.25)
	b.PutField(box, c.FieldByName("v"), pi)
	ten := b.ConstInt(10)
	arr := b.NewArray(value.KindDouble, ten)
	b.PutField(box, c.FieldByName("arr"), arr)
	two := b.ConstInt(2)
	b.ArrayStore(value.KindDouble, arr, two, pi)
	arr2 := b.GetField(box, c.FieldByName("arr"))
	back := b.ArrayLoad(value.KindDouble, arr2, two)
	v := b.GetField(box, c.FieldByName("v"))
	sum := b.Arith(ir.OpAdd, value.KindDouble, back, v)
	ln := b.ArrayLen(arr2)
	lnd := b.Conv(value.KindDouble, ln)
	sum2 := b.Arith(ir.OpAdd, value.KindDouble, sum, lnd)
	b.Return(sum2)
	p.Entry = b.Finish()
	e := newEngine(p, interpOnly{})
	got, err := e.Run(p.Entry, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Double() != 3.25+3.25+10 {
		t.Errorf("result = %v", got)
	}
}

func TestVirtualDispatch(t *testing.T) {
	u := emptyUniverse()
	base := u.MustDefineClass("Base", nil)
	sub := u.MustDefineClass("Sub", base)
	p := ir.NewProgram(u)

	bb := ir.NewBuilder(p, base, "tag", value.KindInt, value.KindRef)
	one := bb.ConstInt(1)
	bb.Return(one)
	bb.Finish()
	sb := ir.NewBuilder(p, sub, "tag", value.KindInt, value.KindRef)
	two := sb.ConstInt(2)
	sb.Return(two)
	sb.Finish()

	b := ir.NewBuilder(p, nil, "main", value.KindInt)
	o1 := b.New(base)
	o2 := b.New(sub)
	t1 := b.CallVirt("tag", true, o1)
	t2 := b.CallVirt("tag", true, o2)
	ten := b.ConstInt(10)
	hi := b.Arith(ir.OpMul, value.KindInt, t1, ten)
	r := b.Arith(ir.OpAdd, value.KindInt, hi, t2)
	b.Return(r)
	p.Entry = b.Finish()
	e := newEngine(p, interpOnly{})
	got, err := e.Run(p.Entry, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 12 {
		t.Errorf("dispatch result = %v, want 12", got)
	}
}

func runExpectError(t *testing.T, build func(b *ir.Builder), want error) {
	t.Helper()
	p := ir.NewProgram(emptyUniverse())
	b := ir.NewBuilder(p, nil, "main", value.KindInt)
	build(b)
	p.Entry = b.Finish()
	e := newEngine(p, interpOnly{})
	_, err := e.Run(p.Entry, nil)
	if err == nil {
		t.Fatal("expected a trap")
	}
	var re *RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("not a RuntimeError: %v", err)
	}
	if want != nil && !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestTrapNullDeref(t *testing.T) {
	u := emptyUniverse()
	c := u.MustDefineClass("Box", nil, classfile.FieldSpec{Name: "v", Kind: value.KindInt})
	p := ir.NewProgram(u)
	b := ir.NewBuilder(p, nil, "main", value.KindInt)
	null := b.ConstNull()
	v := b.GetField(null, c.FieldByName("v"))
	b.Return(v)
	p.Entry = b.Finish()
	e := newEngine(p, interpOnly{})
	if _, err := e.Run(p.Entry, nil); !errors.Is(err, ErrNullDeref) {
		t.Errorf("err = %v", err)
	}
}

func TestTrapBounds(t *testing.T) {
	runExpectError(t, func(b *ir.Builder) {
		three := b.ConstInt(3)
		arr := b.NewArray(value.KindInt, three)
		five := b.ConstInt(5)
		v := b.ArrayLoad(value.KindInt, arr, five)
		b.Return(v)
	}, ErrBounds)
}

func TestTrapNegativeArraySize(t *testing.T) {
	runExpectError(t, func(b *ir.Builder) {
		neg := b.ConstInt(-2)
		arr := b.NewArray(value.KindInt, neg)
		ln := b.ArrayLen(arr)
		b.Return(ln)
	}, ErrNegativeSize)
}

func TestTrapDivZero(t *testing.T) {
	runExpectError(t, func(b *ir.Builder) {
		one := b.ConstInt(1)
		zero := b.ConstInt(0)
		q := b.Arith(ir.OpDiv, value.KindInt, one, zero)
		b.Return(q)
	}, ir.ErrDivZero)
}

func TestTrapStackOverflow(t *testing.T) {
	p := ir.NewProgram(emptyUniverse())
	b := ir.NewBuilder(p, nil, "rec", value.KindInt, value.KindInt)
	r := b.Call(b.Self(), b.Param(0))
	b.Return(r)
	rec := b.Finish()
	p.Entry = rec
	e := newEngine(p, interpOnly{})
	if _, err := e.Run(rec, []value.Value{value.Int(0)}); !errors.Is(err, ErrStackOverflow) {
		t.Errorf("err = %v", err)
	}
}

func TestInstructionBudget(t *testing.T) {
	p := ir.NewProgram(emptyUniverse())
	b := ir.NewBuilder(p, nil, "spin", value.KindInt)
	head := b.Here()
	b.Goto(head)
	p.Entry = b.Finish()
	e := newEngine(p, interpOnly{})
	e.MaxInstructions = 1000
	if _, err := e.Run(p.Entry, nil); !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v", err)
	}
}

func TestChecksumDeterministic(t *testing.T) {
	build := func() *ir.Program {
		p := ir.NewProgram(emptyUniverse())
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		i := b.ConstInt(0)
		ten := b.ConstInt(10)
		cond := b.NewLabel()
		body := b.NewLabel()
		b.Goto(cond)
		b.Bind(body)
		b.Sink(i)
		b.IncInt(i, 1)
		b.Bind(cond)
		b.Br(value.KindInt, ir.CondLT, i, ten, body)
		b.Return(i)
		p.Entry = b.Finish()
		return p
	}
	var sums []uint64
	for k := 0; k < 2; k++ {
		p := build()
		e := newEngine(p, interpOnly{})
		if _, err := e.Run(p.Entry, nil); err != nil {
			t.Fatal(err)
		}
		sums = append(sums, e.S.Checksum)
	}
	if sums[0] == 0 || sums[0] != sums[1] {
		t.Errorf("checksums: %x vs %x", sums[0], sums[1])
	}
}

func TestGCDuringExecution(t *testing.T) {
	u := emptyUniverse()
	p := ir.NewProgram(u)
	// Allocate 1000 x 4KB arrays, keeping none: needs GC in a 1MB heap.
	b := ir.NewBuilder(p, nil, "churn", value.KindInt)
	i := b.ConstInt(0)
	n := b.ConstInt(1000)
	sz := b.ConstInt(1024)
	cond := b.NewLabel()
	body := b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	arr := b.NewArray(value.KindInt, sz)
	zero := b.ConstInt(0)
	b.ArrayStore(value.KindInt, arr, zero, i)
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	b.Return(i)
	p.Entry = b.Finish()
	e := newEngine(p, interpOnly{})
	got, err := e.Run(p.Entry, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 1000 {
		t.Errorf("result = %v", got)
	}
	if e.S.GCs == 0 {
		t.Error("expected collections in a 1MB heap")
	}
	if e.S.GCCycles == 0 {
		t.Error("GC cycles must be charged")
	}
}

func TestGCKeepsFrameRootsAlive(t *testing.T) {
	u := emptyUniverse()
	c := u.MustDefineClass("Box", nil, classfile.FieldSpec{Name: "v", Kind: value.KindInt})
	p := ir.NewProgram(u)
	b := ir.NewBuilder(p, nil, "main", value.KindInt)
	box := b.New(c)
	v77 := b.ConstInt(77)
	b.PutField(box, c.FieldByName("v"), v77)
	// Churn to force GC while box is live in a register.
	i := b.ConstInt(0)
	n := b.ConstInt(600)
	sz := b.ConstInt(1024)
	cond := b.NewLabel()
	body := b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	b.NewArray(value.KindInt, sz)
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	out := b.GetField(box, c.FieldByName("v"))
	b.Return(out)
	p.Entry = b.Finish()
	e := newEngine(p, interpOnly{})
	got, err := e.Run(p.Entry, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.S.GCs == 0 {
		t.Fatal("test needs at least one GC")
	}
	if got.Int() != 77 {
		t.Errorf("live object lost across GC: %v", got)
	}
}

func TestSpecLoadNeverFaults(t *testing.T) {
	u := emptyUniverse()
	p := ir.NewProgram(u)
	m := &ir.Method{
		Name: "spec", NumRegs: 3,
		Code: []ir.Instr{
			{Op: ir.OpConst, Kind: value.KindRef, Dst: 0},                                             // null base
			{Op: ir.OpSpecLoad, Dst: 1, Addr: ir.AddrExpr{Base: 0, Index: ir.NoReg, Disp: 0x7FFF000}}, // far out of heap
			{Op: ir.OpPrefetch, Addr: ir.AddrExpr{Base: 0, Index: ir.NoReg, Disp: -4}},
			{Op: ir.OpReturn, A: 1},
		},
	}
	if err := ir.Validate(m); err != nil {
		t.Fatal(err)
	}
	p.Define(m)
	p.Entry = m
	e := newEngine(p, interpOnly{})
	got, err := e.Run(m, nil)
	if err != nil {
		t.Fatalf("spec_load/prefetch must never trap: %v", err)
	}
	// The result must be a speculative maybe-pointer, not a real
	// reference: a KindRef here would become a GC root and a stale or
	// garbage word could crash or perturb the collector.
	if !got.IsSpecRef() || got.B != 0 {
		t.Errorf("guarded out-of-bounds spec_load must yield a zero specref, got %v", got)
	}
}

// TestSpecLoadResultInvisibleToGC is the regression test for the GC-root
// hazard: a spec_load result that happens to hold a non-pointer word must
// not be treated as a root when a later allocation triggers a collection.
// Before the KindSpecRef fix the collector panicked on the garbage root.
func TestSpecLoadResultInvisibleToGC(t *testing.T) {
	u := emptyUniverse()
	box := u.MustDefineClass("Box", nil, classfile.FieldSpec{Name: "v", Kind: value.KindInt})
	fv := box.FieldByName("v")
	p := ir.NewProgram(u)
	// Hand-assembled (the builder has no spec_load form): create a Box,
	// store 13, speculatively load the int field — the loaded word (13)
	// is not a valid heap address — then allocate in a loop until the
	// heap fills and collections run with the specref register live.
	m := &ir.Method{
		Name: "main", NumRegs: 8,
		Code: []ir.Instr{
			{Op: ir.OpNew, Class: box, Dst: 0},
			{Op: ir.OpConst, Kind: value.KindInt, Dst: 6, Imm: 13},
			{Op: ir.OpPutField, A: 0, B: 6, Field: fv},
			{Op: ir.OpSpecLoad, Dst: 1, Addr: ir.AddrExpr{Base: 0, Index: ir.NoReg, Disp: int32(fv.Offset)}},
			{Op: ir.OpConst, Kind: value.KindInt, Dst: 2, Imm: 0},
			{Op: ir.OpConst, Kind: value.KindInt, Dst: 3, Imm: 4096},
			{Op: ir.OpConst, Kind: value.KindInt, Dst: 7, Imm: 1},
			{Op: ir.OpGoto, Target: 10},
			{Op: ir.OpNew, Class: box, Dst: 4},
			{Op: ir.OpAdd, Kind: value.KindInt, Dst: 2, A: 2, B: 7},
			{Op: ir.OpBr, Kind: value.KindInt, Cond: ir.CondLT, A: 2, B: 3, Target: 8},
			{Op: ir.OpGetField, Dst: 5, A: 0, Field: fv},
			{Op: ir.OpReturn, A: 5},
		},
	}
	if err := ir.Validate(m); err != nil {
		t.Fatal(err)
	}
	p.Define(m)
	p.Entry = m

	e := newEngine(p, interpOnly{})
	e.Heap = heap.New(1<<16, u) // small heap: force collections
	got, err := e.Run(p.Entry, nil)
	if err != nil {
		t.Fatalf("run with spec_load result live across GC: %v", err)
	}
	if e.S.GCs == 0 {
		t.Fatal("test needs at least one GC while the specref is live")
	}
	if got.Int() != 13 {
		t.Errorf("field corrupted: got %v, want 13", got)
	}
}

func TestCompiledVsInterpretedCycles(t *testing.T) {
	build := func() *ir.Program {
		p := ir.NewProgram(emptyUniverse())
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		i := b.ConstInt(0)
		n := b.ConstInt(1000)
		cond := b.NewLabel()
		body := b.NewLabel()
		b.Goto(cond)
		b.Bind(body)
		b.IncInt(i, 1)
		b.Bind(cond)
		b.Br(value.KindInt, ir.CondLT, i, n, body)
		b.Return(i)
		p.Entry = b.Finish()
		return p
	}
	p1 := build()
	e1 := newEngine(p1, interpOnly{})
	e1.Run(p1.Entry, nil)
	p2 := build()
	e2 := newEngine(p2, compiledOnly{})
	e2.Run(p2.Entry, nil)
	if e1.S.Cycles <= e2.S.Cycles {
		t.Errorf("interpreted (%d cycles) must be slower than compiled (%d)", e1.S.Cycles, e2.S.Cycles)
	}
	if e2.S.CompiledCycles != e2.S.Cycles {
		t.Error("all-compiled run must attribute all cycles to compiled code")
	}
	if e1.S.CompiledCycles != 0 {
		t.Error("all-interpreted run must have no compiled cycles")
	}
}

func TestWrongArgCount(t *testing.T) {
	p := ir.NewProgram(emptyUniverse())
	b := ir.NewBuilder(p, nil, "f", value.KindInt, value.KindInt)
	b.Return(b.Param(0))
	m := b.Finish()
	p.Entry = m
	e := newEngine(p, interpOnly{})
	if _, err := e.Run(m, nil); err == nil {
		t.Error("arity mismatch must fail")
	}
}
