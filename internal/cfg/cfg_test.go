package cfg

import (
	"testing"

	"strider/internal/ir"
	"strider/internal/value"
)

// buildDoubleLoop assembles the canonical doubly nested counted loop shape
// used throughout the workloads (bottom-test loops entered via goto):
//
//	i = 0; goto outerCond
//	outerBody: j = 0; goto innerCond
//	innerBody: j++
//	innerCond: if j < P1 goto innerBody
//	i++
//	outerCond: if i < P0 goto outerBody
//	return i
func buildDoubleLoop(t *testing.T) *ir.Method {
	t.Helper()
	p := ir.NewProgram(nil)
	b := ir.NewBuilder(p, nil, "m", value.KindInt, value.KindInt, value.KindInt)
	i := b.ConstInt(0)
	j := b.NewReg()
	outerCond := b.NewLabel()
	outerBody := b.NewLabel()
	innerCond := b.NewLabel()
	innerBody := b.NewLabel()
	b.Goto(outerCond)
	b.Bind(outerBody)
	b.SetInt(j, 0)
	b.Goto(innerCond)
	b.Bind(innerBody)
	b.IncInt(j, 1)
	b.Bind(innerCond)
	b.Br(value.KindInt, ir.CondLT, j, b.Param(1), innerBody)
	b.IncInt(i, 1)
	b.Bind(outerCond)
	b.Br(value.KindInt, ir.CondLT, i, b.Param(0), outerBody)
	b.Return(i)
	return b.Finish()
}

func TestBlockPartition(t *testing.T) {
	m := buildDoubleLoop(t)
	g := Build(m)
	// Every instruction belongs to exactly one block, blocks tile the code.
	covered := 0
	prevEnd := 0
	for _, b := range g.Blocks {
		if b.Start != prevEnd {
			t.Fatalf("block %d starts at %d, want %d", b.ID, b.Start, prevEnd)
		}
		covered += b.End - b.Start
		prevEnd = b.End
		for i := b.Start; i < b.End; i++ {
			if g.BlockOf(i) != b {
				t.Fatalf("BlockOf(%d) wrong", i)
			}
		}
	}
	if covered != len(m.Code) {
		t.Fatalf("blocks cover %d of %d instructions", covered, len(m.Code))
	}
}

func TestEdgesConsistent(t *testing.T) {
	m := buildDoubleLoop(t)
	g := Build(m)
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, p := range g.Blocks[s].Preds {
				if p == b.ID {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge B%d->B%d missing pred backlink", b.ID, s)
			}
		}
	}
	// Return blocks have no successors.
	last := g.BlockOf(len(m.Code) - 1)
	if len(last.Succs) != 0 {
		t.Error("return block must have no successors")
	}
}

func TestDominators(t *testing.T) {
	m := buildDoubleLoop(t)
	g := Build(m)
	// Entry dominates everything reachable.
	for _, b := range g.Blocks {
		if g.Reachable(b.ID) && !g.Dominates(0, b.ID) {
			t.Errorf("entry must dominate B%d", b.ID)
		}
	}
	// Dominance is reflexive and antisymmetric (except self).
	for _, a := range g.Blocks {
		if !g.Reachable(a.ID) {
			continue
		}
		if !g.Dominates(a.ID, a.ID) {
			t.Errorf("B%d must dominate itself", a.ID)
		}
		for _, b := range g.Blocks {
			if a.ID != b.ID && g.Reachable(b.ID) &&
				g.Dominates(a.ID, b.ID) && g.Dominates(b.ID, a.ID) {
				t.Errorf("B%d and B%d dominate each other", a.ID, b.ID)
			}
		}
	}
	// Idom chains terminate at entry.
	for _, b := range g.Blocks {
		if !g.Reachable(b.ID) {
			continue
		}
		x := b.ID
		for steps := 0; x != 0; steps++ {
			if steps > len(g.Blocks) {
				t.Fatalf("idom chain from B%d does not reach entry", b.ID)
			}
			x = g.Idom(x)
		}
	}
}

func TestLoopForest(t *testing.T) {
	m := buildDoubleLoop(t)
	g := Build(m)
	f := BuildLoops(g)
	if len(f.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(f.Loops))
	}
	if len(f.Roots) != 1 {
		t.Fatalf("found %d root loops, want 1", len(f.Roots))
	}
	outer := f.Roots[0]
	if len(outer.Children) != 1 {
		t.Fatalf("outer loop has %d children, want 1", len(outer.Children))
	}
	inner := outer.Children[0]
	if inner.Parent != outer {
		t.Error("inner.Parent wrong")
	}
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Errorf("depths = %d, %d", outer.Depth, inner.Depth)
	}
	if !outer.IsAncestorOf(inner) || !outer.IsAncestorOf(outer) {
		t.Error("IsAncestorOf broken")
	}
	if inner.IsAncestorOf(outer) {
		t.Error("inner is not an ancestor of outer")
	}
	// The inner loop's blocks are a subset of the outer's.
	for b := range inner.Blocks {
		if !outer.Blocks[b] {
			t.Errorf("inner block B%d not in outer loop", b)
		}
	}
	// Back edges target the headers.
	for _, l := range f.Loops {
		if len(l.BackEdges) == 0 {
			t.Error("loop without back edges")
		}
		for _, e := range l.BackEdges {
			if e.To != l.Header {
				t.Error("back edge not targeting header")
			}
			if !l.Blocks[e.From] {
				t.Error("back edge source outside loop")
			}
		}
		if len(l.ExitEdges) == 0 {
			t.Error("natural loops here must have exits")
		}
		for _, e := range l.ExitEdges {
			if !l.Blocks[e.From] || l.Blocks[e.To] {
				t.Error("exit edge endpoints wrong")
			}
		}
	}
}

func TestPostorder(t *testing.T) {
	m := buildDoubleLoop(t)
	g := Build(m)
	f := BuildLoops(g)
	post := f.Postorder()
	if len(post) != 2 {
		t.Fatalf("postorder length %d", len(post))
	}
	if post[0].Depth != 2 || post[1].Depth != 1 {
		t.Error("postorder must visit inner loops before their parents")
	}
}

func TestInnermostAt(t *testing.T) {
	m := buildDoubleLoop(t)
	g := Build(m)
	f := BuildLoops(g)
	inner := f.Postorder()[0]
	outer := f.Postorder()[1]
	// The inner increment instruction lives in the inner loop.
	foundInner := false
	for i := range m.Code {
		l := f.InnermostAt(i)
		if l == inner {
			foundInner = true
			if !outer.ContainsInstr(g, i) {
				t.Error("inner instruction must also be in outer loop")
			}
		}
	}
	if !foundInner {
		t.Error("no instruction attributed to the inner loop")
	}
	if f.InnermostAt(0) != nil {
		t.Error("entry instruction is in no loop")
	}
}

func TestStraightLineNoLoops(t *testing.T) {
	p := ir.NewProgram(nil)
	b := ir.NewBuilder(p, nil, "s", value.KindInt)
	x := b.ConstInt(1)
	y := b.ConstInt(2)
	z := b.AddInt(x, y)
	b.Return(z)
	m := b.Finish()
	g := Build(m)
	f := BuildLoops(g)
	if len(f.Loops) != 0 {
		t.Error("straight-line code has no loops")
	}
	if g.NumBlocks() != 1 {
		t.Errorf("straight-line code is one block, got %d", g.NumBlocks())
	}
}

func TestIfDiamond(t *testing.T) {
	p := ir.NewProgram(nil)
	b := ir.NewBuilder(p, nil, "d", value.KindInt, value.KindInt)
	x := b.ConstInt(0)
	els := b.NewLabel()
	done := b.NewLabel()
	b.Br(value.KindInt, ir.CondLT, b.Param(0), x, els)
	b.SetInt(x, 1)
	b.Goto(done)
	b.Bind(els)
	b.SetInt(x, 2)
	b.Bind(done)
	b.Return(x)
	m := b.Finish()
	g := Build(m)
	if BuildLoops(g).Loops != nil {
		t.Error("diamond has no loops")
	}
	// The join block is dominated by the branch block but not by either arm.
	join := g.BlockOf(len(m.Code) - 1)
	branch := g.BlockOf(0)
	if !g.Dominates(branch.ID, join.ID) {
		t.Error("branch must dominate join")
	}
	for _, arm := range join.Preds {
		if arm != branch.ID && g.Dominates(arm, join.ID) {
			t.Error("arm must not dominate join")
		}
	}
}

func TestUnreachableCode(t *testing.T) {
	p := ir.NewProgram(nil)
	b := ir.NewBuilder(p, nil, "u", value.KindInt)
	x := b.ConstInt(1)
	b.Return(x)
	dead := b.ConstInt(2) // unreachable
	b.Return(dead)
	m := b.Finish()
	g := Build(m)
	deadBlk := g.BlockOf(2)
	if g.Reachable(deadBlk.ID) {
		t.Error("code after return must be unreachable")
	}
	if g.Dominates(deadBlk.ID, 0) || g.Dominates(0, deadBlk.ID) {
		t.Error("unreachable blocks participate in no dominance")
	}
}

// TestFallthroughBackEdge covers the bottom-test shape where the back edge
// is a conditional branch and the loop is entered by fallthrough.
func TestFallthroughBackEdge(t *testing.T) {
	p := ir.NewProgram(nil)
	b := ir.NewBuilder(p, nil, "f", value.KindInt, value.KindInt)
	i := b.ConstInt(0)
	head := b.Here()
	b.IncInt(i, 1)
	b.Br(value.KindInt, ir.CondLT, i, b.Param(0), head)
	b.Return(i)
	m := b.Finish()
	g := Build(m)
	f := BuildLoops(g)
	if len(f.Loops) != 1 {
		t.Fatalf("want one loop, got %d", len(f.Loops))
	}
	l := f.Loops[0]
	if g.Blocks[l.Header].Start != 1 {
		t.Errorf("loop header starts at %d", g.Blocks[l.Header].Start)
	}
}
