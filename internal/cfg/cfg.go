// Package cfg builds control-flow graphs, dominator trees, and the loop
// nesting forest for IR methods.
//
// The paper's prefetching algorithm "first attempts to identify loops,
// constructing a loop nesting forest. The algorithm then traverses the
// loops in each tree in a postorder traversal, walking the trees in the
// program order." (Sec. 3). LoopForest.Postorder provides exactly that
// traversal order.
package cfg

import (
	"fmt"
	"sort"
	"strings"

	"strider/internal/ir"
)

// Block is a basic block: the half-open instruction range [Start, End).
type Block struct {
	ID    int
	Start int
	End   int
	Succs []int
	Preds []int
}

// Graph is the control-flow graph of one method.
type Graph struct {
	Method *ir.Method
	Blocks []*Block

	blockOf []int // instruction index -> block ID

	// idom[b] is the immediate dominator of block b (idom[0] == 0).
	idom []int

	rpo      []int // reverse postorder of block IDs
	rpoIndex []int // block ID -> position in rpo, -1 if unreachable
}

// Build constructs the CFG, dominator tree, and reverse postorder.
func Build(m *ir.Method) *Graph {
	n := len(m.Code)
	leader := make([]bool, n)
	leader[0] = true
	for i := range m.Code {
		in := &m.Code[i]
		switch in.Op {
		case ir.OpGoto:
			leader[in.Target] = true
			if i+1 < n {
				leader[i+1] = true
			}
		case ir.OpBr:
			leader[in.Target] = true
			if i+1 < n {
				leader[i+1] = true
			}
		case ir.OpReturn:
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}
	g := &Graph{Method: m, blockOf: make([]int, n)}
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || leader[i] {
			b := &Block{ID: len(g.Blocks), Start: start, End: i}
			g.Blocks = append(g.Blocks, b)
			for j := start; j < i; j++ {
				g.blockOf[j] = b.ID
			}
			start = i
		}
	}
	// Edges.
	for _, b := range g.Blocks {
		last := &m.Code[b.End-1]
		switch last.Op {
		case ir.OpGoto:
			g.addEdge(b.ID, g.blockOf[last.Target])
		case ir.OpBr:
			g.addEdge(b.ID, g.blockOf[last.Target])
			if b.End < n {
				g.addEdge(b.ID, g.blockOf[b.End])
			}
		case ir.OpReturn:
			// no successors
		default:
			if b.End < n {
				g.addEdge(b.ID, g.blockOf[b.End])
			}
		}
	}
	g.computeRPO()
	g.computeDominators()
	return g
}

func (g *Graph) addEdge(from, to int) {
	g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
	g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
}

// BlockOf returns the block containing instruction index i.
func (g *Graph) BlockOf(i int) *Block { return g.Blocks[g.blockOf[i]] }

// NumBlocks returns the block count.
func (g *Graph) NumBlocks() int { return len(g.Blocks) }

func (g *Graph) computeRPO() {
	seen := make([]bool, len(g.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	g.rpo = make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		g.rpo = append(g.rpo, post[i])
	}
	g.rpoIndex = make([]int, len(g.Blocks))
	for i := range g.rpoIndex {
		g.rpoIndex[i] = -1
	}
	for i, b := range g.rpo {
		g.rpoIndex[b] = i
	}
}

// computeDominators is the Cooper-Harvey-Kennedy iterative algorithm.
func (g *Graph) computeDominators() {
	const undef = -1
	idom := make([]int, len(g.Blocks))
	for i := range idom {
		idom[i] = undef
	}
	idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for g.rpoIndex[a] > g.rpoIndex[b] {
				a = idom[a]
			}
			for g.rpoIndex[b] > g.rpoIndex[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.rpo {
			if b == 0 {
				continue
			}
			newIdom := undef
			for _, p := range g.Blocks[b].Preds {
				if g.rpoIndex[p] < 0 || idom[p] == undef {
					continue
				}
				if newIdom == undef {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != undef && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	g.idom = idom
}

// Dominates reports whether block a dominates block b. Unreachable blocks
// dominate nothing and are dominated by nothing.
func (g *Graph) Dominates(a, b int) bool {
	if g.rpoIndex[a] < 0 || g.rpoIndex[b] < 0 {
		return false
	}
	for {
		if b == a {
			return true
		}
		if b == 0 {
			return a == 0
		}
		b = g.idom[b]
	}
}

// Idom returns the immediate dominator of block b.
func (g *Graph) Idom(b int) int { return g.idom[b] }

// Reachable reports whether block b is reachable from the entry.
func (g *Graph) Reachable(b int) bool { return g.rpoIndex[b] >= 0 }

// String renders the CFG for diagnostics.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "B%d [%d,%d) -> %v\n", b.ID, b.Start, b.End, b.Succs)
	}
	return sb.String()
}

// Edge is a CFG edge.
type Edge struct{ From, To int }

// Loop is a natural loop.
type Loop struct {
	ID       int
	Header   int          // header block ID
	Blocks   map[int]bool // member block IDs (including header)
	Parent   *Loop
	Children []*Loop
	Depth    int // 1 for outermost

	BackEdges []Edge // edges u->Header with Header dominating u
	ExitEdges []Edge // edges from a member block to a non-member block
}

// Contains reports whether block b belongs to the loop.
func (l *Loop) Contains(b int) bool { return l.Blocks[b] }

// ContainsInstr reports whether instruction i belongs to the loop.
func (l *Loop) ContainsInstr(g *Graph, i int) bool { return l.Blocks[g.blockOf[i]] }

// IsAncestorOf reports whether l is o or encloses o.
func (l *Loop) IsAncestorOf(o *Loop) bool {
	for x := o; x != nil; x = x.Parent {
		if x == l {
			return true
		}
	}
	return false
}

// LoopForest is the loop nesting forest of a method.
type LoopForest struct {
	Graph *Graph
	Loops []*Loop // all loops, outermost-first program order
	Roots []*Loop // top-level loops in program order

	loopOfBlock []*Loop // innermost loop containing each block, or nil
}

// BuildLoops identifies natural loops (merging loops that share a header)
// and nests them into a forest.
func BuildLoops(g *Graph) *LoopForest {
	byHeader := map[int]*Loop{}
	// Find back edges.
	for _, b := range g.Blocks {
		if !g.Reachable(b.ID) {
			continue
		}
		for _, s := range b.Succs {
			if g.Dominates(s, b.ID) {
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[int]bool{s: true}}
					byHeader[s] = l
				}
				l.BackEdges = append(l.BackEdges, Edge{b.ID, s})
				// Natural loop body: nodes reaching the back edge source
				// without passing through the header.
				stack := []int{b.ID}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if l.Blocks[x] {
						continue
					}
					l.Blocks[x] = true
					for _, p := range g.Blocks[x].Preds {
						if !l.Blocks[p] && g.Reachable(p) {
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	f := &LoopForest{Graph: g, loopOfBlock: make([]*Loop, len(g.Blocks))}
	for _, l := range byHeader {
		f.Loops = append(f.Loops, l)
	}
	// Sort by size descending so parents precede children; tie-break on
	// header order for determinism.
	sort.Slice(f.Loops, func(i, j int) bool {
		a, b := f.Loops[i], f.Loops[j]
		if len(a.Blocks) != len(b.Blocks) {
			return len(a.Blocks) > len(b.Blocks)
		}
		return a.Header < b.Header
	})
	// Nest: parent = smallest strictly-containing loop.
	for i, l := range f.Loops {
		l.ID = i
		var parent *Loop
		for j := i - 1; j >= 0; j-- {
			cand := f.Loops[j]
			if cand != l && cand.Blocks[l.Header] && len(cand.Blocks) > len(l.Blocks) {
				if parent == nil || len(cand.Blocks) < len(parent.Blocks) {
					parent = cand
				}
			}
		}
		l.Parent = parent
		if parent != nil {
			parent.Children = append(parent.Children, l)
		} else {
			f.Roots = append(f.Roots, l)
		}
	}
	for _, l := range f.Loops {
		l.Depth = 1
		for p := l.Parent; p != nil; p = p.Parent {
			l.Depth++
		}
		// Exit edges.
		blocks := make([]int, 0, len(l.Blocks))
		for b := range l.Blocks {
			blocks = append(blocks, b)
		}
		sort.Ints(blocks)
		for _, b := range blocks {
			for _, s := range g.Blocks[b].Succs {
				if !l.Blocks[s] {
					l.ExitEdges = append(l.ExitEdges, Edge{b, s})
				}
			}
		}
	}
	// Program order for roots and children (by header start).
	headerStart := func(l *Loop) int { return g.Blocks[l.Header].Start }
	sort.Slice(f.Roots, func(i, j int) bool { return headerStart(f.Roots[i]) < headerStart(f.Roots[j]) })
	for _, l := range f.Loops {
		ch := l.Children
		sort.Slice(ch, func(i, j int) bool { return headerStart(ch[i]) < headerStart(ch[j]) })
	}
	// Innermost loop per block.
	for _, l := range f.Loops { // outermost first (sorted by size desc)
		for b := range l.Blocks {
			if f.loopOfBlock[b] == nil || len(f.loopOfBlock[b].Blocks) > len(l.Blocks) {
				f.loopOfBlock[b] = l
			}
		}
	}
	return f
}

// InnermostAt returns the innermost loop containing instruction i, or nil.
func (f *LoopForest) InnermostAt(i int) *Loop {
	return f.loopOfBlock[f.Graph.blockOf[i]]
}

// LoopOfBlock returns the innermost loop containing block b, or nil.
func (f *LoopForest) LoopOfBlock(b int) *Loop { return f.loopOfBlock[b] }

// Postorder returns the loops of each tree in postorder, walking the trees
// in program order — the traversal the paper's algorithm uses (Sec. 3).
func (f *LoopForest) Postorder() []*Loop {
	var out []*Loop
	var walk func(*Loop)
	walk = func(l *Loop) {
		for _, c := range l.Children {
			walk(c)
		}
		out = append(out, l)
	}
	for _, r := range f.Roots {
		walk(r)
	}
	return out
}

// IsBackEdgeInstr reports whether the branch instruction at index i is the
// source of a back edge of loop l, i.e. it can jump to l's header.
func (f *LoopForest) IsBackEdgeInstr(l *Loop, i int) bool {
	from := f.Graph.blockOf[i]
	for _, e := range l.BackEdges {
		if e.From == from {
			return true
		}
	}
	return false
}
