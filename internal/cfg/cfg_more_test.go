package cfg

import (
	"testing"

	"strider/internal/ir"
	"strider/internal/value"
)

// buildTripleLoop nests three counted loops.
func buildTripleLoop(t *testing.T) *ir.Method {
	t.Helper()
	p := ir.NewProgram(nil)
	b := ir.NewBuilder(p, nil, "t3", value.KindInt, value.KindInt)
	n := b.Param(0)
	acc := b.ConstInt(0)
	var ends []func()
	for d := 0; d < 3; d++ {
		i := b.ConstInt(0)
		cond := b.NewLabel()
		body := b.NewLabel()
		b.Goto(cond)
		b.Bind(body)
		ends = append(ends, func() {
			b.IncInt(i, 1)
			b.Bind(cond)
			b.Br(value.KindInt, ir.CondLT, i, n, body)
		})
	}
	b.IncInt(acc, 1)
	for k := len(ends) - 1; k >= 0; k-- {
		ends[k]()
	}
	b.Return(acc)
	return b.Finish()
}

func TestTripleNesting(t *testing.T) {
	m := buildTripleLoop(t)
	g := Build(m)
	f := BuildLoops(g)
	if len(f.Loops) != 3 {
		t.Fatalf("loops = %d", len(f.Loops))
	}
	post := f.Postorder()
	if post[0].Depth != 3 || post[1].Depth != 2 || post[2].Depth != 1 {
		t.Errorf("postorder depths: %d %d %d", post[0].Depth, post[1].Depth, post[2].Depth)
	}
	if !post[2].IsAncestorOf(post[0]) || post[0].Parent.Parent != post[2] {
		t.Error("nesting chain broken")
	}
}

// TestSiblingLoops: two sequential top-level loops stay separate trees in
// program order.
func TestSiblingLoops(t *testing.T) {
	p := ir.NewProgram(nil)
	b := ir.NewBuilder(p, nil, "sib", value.KindInt, value.KindInt)
	n := b.Param(0)
	for k := 0; k < 2; k++ {
		i := b.ConstInt(0)
		cond := b.NewLabel()
		body := b.NewLabel()
		b.Goto(cond)
		b.Bind(body)
		b.IncInt(i, 1)
		b.Bind(cond)
		b.Br(value.KindInt, ir.CondLT, i, n, body)
	}
	z := b.ConstInt(0)
	b.Return(z)
	m := b.Finish()
	f := BuildLoops(Build(m))
	if len(f.Roots) != 2 {
		t.Fatalf("roots = %d", len(f.Roots))
	}
	// Program order: first loop's header starts earlier.
	g := f.Graph
	if g.Blocks[f.Roots[0].Header].Start >= g.Blocks[f.Roots[1].Header].Start {
		t.Error("roots out of program order")
	}
	if f.Roots[0].IsAncestorOf(f.Roots[1]) || f.Roots[1].IsAncestorOf(f.Roots[0]) {
		t.Error("siblings are not ancestors of each other")
	}
}

// TestMultiExitLoop: a loop with a break-style second exit records both
// exit edges.
func TestMultiExitLoop(t *testing.T) {
	p := ir.NewProgram(nil)
	b := ir.NewBuilder(p, nil, "me", value.KindInt, value.KindInt, value.KindInt)
	n, lim := b.Param(0), b.Param(1)
	i := b.ConstInt(0)
	brk := b.NewLabel()
	cond := b.NewLabel()
	body := b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	b.Br(value.KindInt, ir.CondGT, i, lim, brk) // break
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	b.Bind(brk)
	b.Return(i)
	m := b.Finish()
	f := BuildLoops(Build(m))
	if len(f.Loops) != 1 {
		t.Fatalf("loops = %d", len(f.Loops))
	}
	if len(f.Loops[0].ExitEdges) < 2 {
		t.Errorf("exit edges = %d, want >= 2", len(f.Loops[0].ExitEdges))
	}
}
