// Package dataflow computes reaching definitions and use-def chains over an
// IR method's CFG. The load dependence graph (paper Sec. 3.1) is built from
// these chains: "We can construct the graph, for instance, by utilizing the
// use-def chains built for the method containing the loop."
package dataflow

import (
	"strider/internal/cfg"
	"strider/internal/ir"
)

// bitset is a simple fixed-width bitset over definition indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) orInto(o bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

func (b bitset) copyFrom(o bitset) {
	copy(b, o)
}

// Defs is the reaching-definitions analysis result for one method.
type Defs struct {
	Method *ir.Method
	Graph  *cfg.Graph

	// defSites[i] is the instruction index of definition i; definitions
	// are exactly the instructions with a destination register.
	defSites []int
	defIndex []int // instruction index -> def index, -1 if none
	defsOf   [][]int

	// in[b] = definitions reaching block b entry.
	in []bitset
}

// Reach computes reaching definitions for the method. Parameters are
// modelled as pseudo-definitions at index -1 and are not included in
// use-def chains (a use reached only by a parameter has no defining
// instruction).
func Reach(g *cfg.Graph) *Defs {
	m := g.Method
	d := &Defs{Method: m, Graph: g}
	d.defIndex = make([]int, len(m.Code))
	d.defsOf = make([][]int, m.NumRegs)
	for i := range d.defIndex {
		d.defIndex[i] = -1
	}
	for i := range m.Code {
		if r := m.Code[i].Defs(); r != ir.NoReg {
			d.defIndex[i] = len(d.defSites)
			d.defsOf[r] = append(d.defsOf[r], len(d.defSites))
			d.defSites = append(d.defSites, i)
		}
	}
	nd := len(d.defSites)
	nb := g.NumBlocks()
	gen := make([]bitset, nb)
	killReg := make([][]ir.Reg, nb) // registers fully redefined in block (last def wins)
	d.in = make([]bitset, nb)
	out := make([]bitset, nb)
	for b := 0; b < nb; b++ {
		gen[b] = newBitset(nd)
		d.in[b] = newBitset(nd)
		out[b] = newBitset(nd)
		blk := g.Blocks[b]
		lastDef := map[ir.Reg]int{}
		for i := blk.Start; i < blk.End; i++ {
			if r := m.Code[i].Defs(); r != ir.NoReg {
				lastDef[r] = d.defIndex[i]
			}
		}
		for r, di := range lastDef {
			gen[b].set(di)
			killReg[b] = append(killReg[b], r)
		}
	}
	// Iterate to fixpoint.
	tmp := newBitset(nd)
	for changed := true; changed; {
		changed = false
		for b := 0; b < nb; b++ {
			blk := g.Blocks[b]
			for _, p := range blk.Preds {
				if d.in[b].orInto(out[p]) {
					changed = true
				}
			}
			// out = gen ∪ (in − kill)
			tmp.copyFrom(d.in[b])
			for _, r := range killReg[b] {
				for _, di := range d.defsOf[r] {
					tmp.clear(di)
				}
			}
			tmp.orInto(gen[b])
			if !equal(out[b], tmp) {
				out[b].copyFrom(tmp)
				changed = true
			}
		}
	}
	return d
}

func equal(a, b bitset) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ReachingDefs returns the instruction indices of the definitions of reg
// that reach instruction i (as a use site). The result is in ascending
// instruction order.
func (d *Defs) ReachingDefs(i int, reg ir.Reg) []int {
	blk := d.Graph.BlockOf(i)
	// Walk the block from the top, tracking the most recent def of reg.
	local := -1
	for j := blk.Start; j < i; j++ {
		if d.Method.Code[j].Defs() == reg {
			local = j
		}
	}
	if local >= 0 {
		return []int{local}
	}
	var out []int
	for _, di := range d.defsOf[reg] {
		if d.in[blk.ID].has(di) {
			out = append(out, d.defSites[di])
		}
	}
	return out
}

// UniqueReachingDef returns the single definition of reg reaching use site
// i, or -1 if there are zero or several.
func (d *Defs) UniqueReachingDef(i int, reg ir.Reg) int {
	defs := d.ReachingDefs(i, reg)
	if len(defs) == 1 {
		return defs[0]
	}
	return -1
}

// UseCount returns the number of instruction operands that use the value
// defined at instruction di (i.e. uses of its destination register reached
// by this definition). The paper's profitability analysis requires at
// least one data-dependent instruction (Sec. 3.3).
func (d *Defs) UseCount(di int) int {
	reg := d.Method.Code[di].Defs()
	if reg == ir.NoReg {
		return 0
	}
	count := 0
	var buf []ir.Reg
	for i := range d.Method.Code {
		buf = d.Method.Code[i].Uses(buf[:0])
		for _, r := range buf {
			if r != reg {
				continue
			}
			for _, def := range d.ReachingDefs(i, reg) {
				if def == di {
					count++
					break
				}
			}
		}
	}
	return count
}
