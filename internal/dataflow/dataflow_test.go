package dataflow

import (
	"testing"

	"strider/internal/cfg"
	"strider/internal/ir"
	"strider/internal/value"
)

func TestStraightLineUseDef(t *testing.T) {
	p := ir.NewProgram(nil)
	b := ir.NewBuilder(p, nil, "s", value.KindInt)
	x := b.ConstInt(1) // @0
	y := b.ConstInt(2) // @1
	z := b.AddInt(x, y)
	b.Return(z)
	m := b.Finish()
	g := cfg.Build(m)
	d := Reach(g)

	addIdx := 2
	if defs := d.ReachingDefs(addIdx, x); len(defs) != 1 || defs[0] != 0 {
		t.Errorf("defs of x at add = %v", defs)
	}
	if got := d.UniqueReachingDef(addIdx, y); got != 1 {
		t.Errorf("unique def of y = %d", got)
	}
}

func TestRedefinitionKills(t *testing.T) {
	p := ir.NewProgram(nil)
	b := ir.NewBuilder(p, nil, "k", value.KindInt)
	x := b.ConstInt(1) // @0
	b.SetInt(x, 2)     // @1 kills @0
	y := b.AddInt(x, x)
	b.Return(y)
	m := b.Finish()
	g := cfg.Build(m)
	d := Reach(g)
	if defs := d.ReachingDefs(2, x); len(defs) != 1 || defs[0] != 1 {
		t.Errorf("redefinition not killing: %v", defs)
	}
}

func TestMergeBothDefsReach(t *testing.T) {
	p := ir.NewProgram(nil)
	b := ir.NewBuilder(p, nil, "m", value.KindInt, value.KindInt)
	x := b.ConstInt(0) // @0
	els := b.NewLabel()
	done := b.NewLabel()
	b.Br(value.KindInt, ir.CondLT, b.Param(0), x, els) // @1
	b.SetInt(x, 1)                                     // @2
	b.Goto(done)                                       // @3
	b.Bind(els)
	b.SetInt(x, 2) // @4
	b.Bind(done)
	b.Return(x) // @5
	m := b.Finish()
	g := cfg.Build(m)
	d := Reach(g)
	defs := d.ReachingDefs(5, x)
	if len(defs) != 2 {
		t.Fatalf("at the join both defs must reach, got %v", defs)
	}
	if d.UniqueReachingDef(5, x) != -1 {
		t.Error("UniqueReachingDef must be -1 at a join")
	}
}

func TestLoopCarriedDef(t *testing.T) {
	// i defined before the loop and redefined inside: at the loop header
	// use, both definitions reach.
	p := ir.NewProgram(nil)
	b := ir.NewBuilder(p, nil, "l", value.KindInt, value.KindInt)
	i := b.ConstInt(0) // @0
	head := b.Here()
	one := b.ConstInt(1)                                // @1
	b.ArithTo(i, ir.OpAdd, value.KindInt, i, one)       // @2
	b.Br(value.KindInt, ir.CondLT, i, b.Param(0), head) // @3
	b.Return(i)                                         // @4
	m := b.Finish()
	g := cfg.Build(m)
	d := Reach(g)
	defs := d.ReachingDefs(2, i) // the use of i inside the loop body
	if len(defs) != 2 {
		t.Fatalf("loop-carried defs = %v, want both @0 and @2", defs)
	}
}

func TestUseCount(t *testing.T) {
	p := ir.NewProgram(nil)
	b := ir.NewBuilder(p, nil, "u", value.KindInt)
	x := b.ConstInt(3)  // @0: used twice below
	y := b.AddInt(x, x) // @1
	z := b.ConstInt(9)  // @2: dead
	_ = z
	b.Return(y)
	m := b.Finish()
	g := cfg.Build(m)
	d := Reach(g)
	if got := d.UseCount(0); got != 2 {
		t.Errorf("UseCount(@0) = %d, want 2", got)
	}
	if got := d.UseCount(2); got != 0 {
		t.Errorf("UseCount(dead) = %d, want 0", got)
	}
	// Instructions that define nothing have no uses to count.
	if got := d.UseCount(3); got != 0 {
		t.Errorf("UseCount(return) = %d", got)
	}
}

func TestParamsHaveNoDefiningInstruction(t *testing.T) {
	p := ir.NewProgram(nil)
	b := ir.NewBuilder(p, nil, "p", value.KindInt, value.KindInt)
	y := b.AddInt(b.Param(0), b.Param(0)) // @0
	b.Return(y)
	m := b.Finish()
	g := cfg.Build(m)
	d := Reach(g)
	if defs := d.ReachingDefs(0, b.Param(0)); len(defs) != 0 {
		t.Errorf("parameter use must have no defining instruction, got %v", defs)
	}
}
