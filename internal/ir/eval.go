package ir

import (
	"errors"
	"math"

	"strider/internal/value"
)

// ErrDivZero reports an integer division or remainder by zero.
var ErrDivZero = errors.New("ir: integer division by zero")

// ErrBadOperand reports an arithmetic operation on a mistyped operand.
var ErrBadOperand = errors.New("ir: operand kind mismatch")

// EvalBinary evaluates a two-operand arithmetic or logic op of the given
// kind. Both the execution engine and the object-inspection interpreter
// use it, so the two necessarily agree on semantics.
func EvalBinary(op Op, k value.Kind, a, b value.Value) (value.Value, error) {
	switch k {
	case value.KindInt:
		x, y := a.Int(), b.Int()
		switch op {
		case OpAdd:
			return value.Int(x + y), nil
		case OpSub:
			return value.Int(x - y), nil
		case OpMul:
			return value.Int(x * y), nil
		case OpDiv:
			if y == 0 {
				return value.Value{}, ErrDivZero
			}
			return value.Int(x / y), nil
		case OpRem:
			if y == 0 {
				return value.Value{}, ErrDivZero
			}
			return value.Int(x % y), nil
		case OpAnd:
			return value.Int(x & y), nil
		case OpOr:
			return value.Int(x | y), nil
		case OpXor:
			return value.Int(x ^ y), nil
		case OpShl:
			return value.Int(x << (uint32(y) & 31)), nil
		case OpShr:
			return value.Int(x >> (uint32(y) & 31)), nil
		case OpUshr:
			return value.Int(int32(uint32(x) >> (uint32(y) & 31))), nil
		}
	case value.KindLong:
		x, y := a.Long(), b.Long()
		switch op {
		case OpAdd:
			return value.Long(x + y), nil
		case OpSub:
			return value.Long(x - y), nil
		case OpMul:
			return value.Long(x * y), nil
		case OpDiv:
			if y == 0 {
				return value.Value{}, ErrDivZero
			}
			return value.Long(x / y), nil
		case OpRem:
			if y == 0 {
				return value.Value{}, ErrDivZero
			}
			return value.Long(x % y), nil
		case OpAnd:
			return value.Long(x & y), nil
		case OpOr:
			return value.Long(x | y), nil
		case OpXor:
			return value.Long(x ^ y), nil
		case OpShl:
			return value.Long(x << (uint64(y) & 63)), nil
		case OpShr:
			return value.Long(x >> (uint64(y) & 63)), nil
		case OpUshr:
			return value.Long(int64(uint64(x) >> (uint64(y) & 63))), nil
		}
	case value.KindFloat:
		x, y := a.Float(), b.Float()
		switch op {
		case OpAdd:
			return value.Float(x + y), nil
		case OpSub:
			return value.Float(x - y), nil
		case OpMul:
			return value.Float(x * y), nil
		case OpDiv:
			return value.Float(x / y), nil
		}
	case value.KindDouble:
		x, y := a.Double(), b.Double()
		switch op {
		case OpAdd:
			return value.Double(x + y), nil
		case OpSub:
			return value.Double(x - y), nil
		case OpMul:
			return value.Double(x * y), nil
		case OpDiv:
			return value.Double(x / y), nil
		}
	}
	return value.Value{}, ErrBadOperand
}

// EvalUnary evaluates OpNeg.
func EvalUnary(op Op, k value.Kind, a value.Value) (value.Value, error) {
	if op != OpNeg {
		return value.Value{}, ErrBadOperand
	}
	switch k {
	case value.KindInt:
		return value.Int(-a.Int()), nil
	case value.KindLong:
		return value.Long(-a.Long()), nil
	case value.KindFloat:
		return value.Float(-a.Float()), nil
	case value.KindDouble:
		return value.Double(-a.Double()), nil
	}
	return value.Value{}, ErrBadOperand
}

// Convert converts a to kind k (numeric conversions; ref-to-ref is the
// identity).
func Convert(k value.Kind, a value.Value) (value.Value, error) {
	if a.K == k {
		return a, nil
	}
	var d float64
	switch a.K {
	case value.KindInt:
		d = float64(a.Int())
	case value.KindLong:
		d = float64(a.Long())
	case value.KindFloat:
		d = float64(a.Float())
	case value.KindDouble:
		d = a.Double()
	default:
		return value.Value{}, ErrBadOperand
	}
	switch k {
	case value.KindInt:
		return value.Int(int32(int64(d))), nil
	case value.KindLong:
		return value.Long(int64(d)), nil
	case value.KindFloat:
		return value.Float(float32(d)), nil
	case value.KindDouble:
		return value.Double(d), nil
	}
	return value.Value{}, ErrBadOperand
}

// EvalCond evaluates a branch comparison of the given kind.
func EvalCond(cond Cond, k value.Kind, a, b value.Value) (bool, error) {
	var c int // -1, 0, 1
	switch k {
	case value.KindInt:
		c = cmp(int64(a.Int()), int64(b.Int()))
	case value.KindLong:
		c = cmp(a.Long(), b.Long())
	case value.KindFloat:
		x, y := float64(a.Float()), float64(b.Float())
		if math.IsNaN(x) || math.IsNaN(y) {
			return cond == CondNE, nil // NaN: only != holds (Java semantics)
		}
		c = cmpF(x, y)
	case value.KindDouble:
		x, y := a.Double(), b.Double()
		if math.IsNaN(x) || math.IsNaN(y) {
			return cond == CondNE, nil
		}
		c = cmpF(x, y)
	case value.KindRef:
		c = cmp(int64(a.Ref()), int64(b.Ref()))
	default:
		return false, ErrBadOperand
	}
	switch cond {
	case CondEQ:
		return c == 0, nil
	case CondNE:
		return c != 0, nil
	case CondLT:
		return c < 0, nil
	case CondLE:
		return c <= 0, nil
	case CondGT:
		return c > 0, nil
	case CondGE:
		return c >= 0, nil
	}
	return false, ErrBadOperand
}

func cmp(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0 // NaN is filtered by the caller
}
