package ir

import (
	"fmt"
	"strings"

	"strider/internal/classfile"
	"strider/internal/value"
)

// Reg is a virtual register index within a method frame.
type Reg uint16

// NoReg marks an absent register operand.
const NoReg Reg = 0xFFFF

// String renders the register as rN.
func (r Reg) String() string {
	if r == NoReg {
		return "_"
	}
	return fmt.Sprintf("r%d", uint16(r))
}

// AddrExpr is an IA-32-style address expression Base + Index*Scale + Disp
// used by the JIT-inserted OpPrefetch and OpSpecLoad instructions. Base
// holds a reference; Index (optional) holds an int.
type AddrExpr struct {
	Base  Reg
	Index Reg // NoReg when absent
	Scale uint8
	Disp  int32
}

// String renders the address expression.
func (a AddrExpr) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	sb.WriteString(a.Base.String())
	if a.Index != NoReg {
		fmt.Fprintf(&sb, "+%s*%d", a.Index, a.Scale)
	}
	if a.Disp != 0 {
		fmt.Fprintf(&sb, "%+d", a.Disp)
	}
	sb.WriteByte(']')
	return sb.String()
}

// Instr is one IR instruction. Which fields are meaningful depends on Op;
// see the opcode comments in op.go.
type Instr struct {
	Op   Op
	Kind value.Kind

	Dst Reg
	A   Reg
	B   Reg
	C   Reg

	Imm int64
	F   float64

	Cond   Cond
	Target int

	Field  *classfile.Field
	Class  *classfile.Class
	Callee *Method
	Name   string
	Args   []Reg

	Addr    AddrExpr
	Guarded bool

	// Site, on JIT-inserted OpPrefetch/OpSpecLoad instructions, is the
	// original (pre-insertion) instruction index of the source load Lx.
	// The telemetry layer joins runtime prefetch outcomes back to the
	// compile-time decision that emitted them through this key.
	Site int32
}

// Defs returns the register the instruction defines, or NoReg.
func (in *Instr) Defs() Reg {
	switch in.Op {
	case OpConst, OpMove, OpAdd, OpSub, OpMul, OpDiv, OpRem, OpNeg, OpAnd,
		OpOr, OpXor, OpShl, OpShr, OpUshr, OpConv, OpGetField, OpGetStatic,
		OpArrayLoad, OpArrayLen, OpNew, OpNewArray, OpSpecLoad:
		return in.Dst
	case OpCall, OpCallVirt:
		return in.Dst // may be NoReg for void calls
	}
	return NoReg
}

// Uses appends the registers the instruction reads to buf and returns it.
func (in *Instr) Uses(buf []Reg) []Reg {
	add := func(r Reg) {
		if r != NoReg {
			buf = append(buf, r)
		}
	}
	switch in.Op {
	case OpMove, OpNeg, OpConv, OpArrayLen, OpPutStatic, OpReturn, OpSink, OpNewArray:
		add(in.A)
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpUshr, OpBr:
		add(in.A)
		add(in.B)
	case OpGetField:
		add(in.A)
	case OpPutField:
		add(in.A)
		add(in.B)
	case OpArrayLoad:
		add(in.A)
		add(in.B)
	case OpArrayStore:
		add(in.A)
		add(in.B)
		add(in.C)
	case OpCall, OpCallVirt:
		for _, r := range in.Args {
			add(r)
		}
	case OpPrefetch, OpSpecLoad:
		add(in.Addr.Base)
		add(in.Addr.Index)
	}
	return buf
}

// String disassembles the instruction.
func (in *Instr) String() string {
	switch in.Op {
	case OpNop:
		return "nop"
	case OpConst:
		switch in.Kind {
		case value.KindFloat, value.KindDouble:
			return fmt.Sprintf("%s = const.%s %g", in.Dst, in.Kind, in.F)
		case value.KindRef:
			return fmt.Sprintf("%s = const.null", in.Dst)
		default:
			return fmt.Sprintf("%s = const.%s %d", in.Dst, in.Kind, in.Imm)
		}
	case OpMove:
		return fmt.Sprintf("%s = %s", in.Dst, in.A)
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpUshr:
		return fmt.Sprintf("%s = %s.%s %s, %s", in.Dst, in.Op, in.Kind, in.A, in.B)
	case OpNeg:
		return fmt.Sprintf("%s = neg.%s %s", in.Dst, in.Kind, in.A)
	case OpConv:
		return fmt.Sprintf("%s = conv.%s %s", in.Dst, in.Kind, in.A)
	case OpGoto:
		return fmt.Sprintf("goto @%d", in.Target)
	case OpBr:
		return fmt.Sprintf("br.%s %s %s, %s @%d", in.Kind, in.Cond, in.A, in.B, in.Target)
	case OpReturn:
		if in.A == NoReg {
			return "return"
		}
		return fmt.Sprintf("return %s", in.A)
	case OpGetField:
		return fmt.Sprintf("%s = getfield %s.%s", in.Dst, in.A, in.Field.QName())
	case OpPutField:
		return fmt.Sprintf("putfield %s.%s = %s", in.A, in.Field.QName(), in.B)
	case OpGetStatic:
		return fmt.Sprintf("%s = getstatic %s", in.Dst, in.Field.QName())
	case OpPutStatic:
		return fmt.Sprintf("putstatic %s = %s", in.Field.QName(), in.A)
	case OpArrayLoad:
		return fmt.Sprintf("%s = %s[%s] (%s)", in.Dst, in.A, in.B, in.Kind)
	case OpArrayStore:
		return fmt.Sprintf("%s[%s] = %s (%s)", in.A, in.B, in.C, in.Kind)
	case OpArrayLen:
		return fmt.Sprintf("%s = arraylen %s", in.Dst, in.A)
	case OpNew:
		return fmt.Sprintf("%s = new %s", in.Dst, in.Class.Name)
	case OpNewArray:
		return fmt.Sprintf("%s = new %s[%s]", in.Dst, in.Kind, in.A)
	case OpCall:
		return fmt.Sprintf("%s = call %s(%s)", in.Dst, in.Callee.QName(), regList(in.Args))
	case OpCallVirt:
		return fmt.Sprintf("%s = callvirt .%s(%s)", in.Dst, in.Name, regList(in.Args))
	case OpSink:
		return fmt.Sprintf("sink %s", in.A)
	case OpPrefetch:
		g := ""
		if in.Guarded {
			g = ".guarded"
		}
		return fmt.Sprintf("prefetch%s %s", g, in.Addr)
	case OpSpecLoad:
		return fmt.Sprintf("%s = specload %s", in.Dst, in.Addr)
	}
	return fmt.Sprintf("?%s", in.Op)
}

func regList(rs []Reg) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = r.String()
	}
	return strings.Join(parts, ", ")
}
