package ir

import (
	"fmt"
	"strings"

	"strider/internal/classfile"
	"strider/internal/value"
)

// Method is an IR method. Parameters occupy registers 0..len(Params)-1 on
// entry; for instance methods register 0 is the receiver by convention.
type Method struct {
	Class   *classfile.Class // nil for free functions
	Name    string
	Params  []value.Kind
	Returns value.Kind // KindInvalid for void
	NumRegs int
	Code    []Instr

	// index is the method's position in its program's definition order,
	// assigned by Program.Define. It gives every load site a stable,
	// deterministic identity (method index, instruction index) across runs
	// and configurations — pointer values would not be.
	index int
}

// Index returns the method's definition-order position in its program
// (0 for a method never registered with Define).
func (m *Method) Index() int { return m.index }

// QName returns "Class::name" or "::name".
func (m *Method) QName() string {
	if m.Class != nil {
		return m.Class.Name + "::" + m.Name
	}
	return "::" + m.Name
}

// Disassemble renders the whole method.
func (m *Method) Disassemble() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "method %s(%d params, %d regs)\n", m.QName(), len(m.Params), m.NumRegs)
	for i := range m.Code {
		fmt.Fprintf(&sb, "  %4d: %s\n", i, m.Code[i].String())
	}
	return sb.String()
}

// Program is a complete IR program: a class universe plus its methods.
type Program struct {
	Universe *classfile.Universe
	Entry    *Method

	methods  []*Method
	byKey    map[string]*Method
	virtuals map[virtKey]*Method
}

type virtKey struct {
	class *classfile.Class
	name  string
}

// NewProgram creates an empty program over a universe.
func NewProgram(u *classfile.Universe) *Program {
	return &Program{
		Universe: u,
		byKey:    make(map[string]*Method),
		virtuals: make(map[virtKey]*Method),
	}
}

// Define registers a method. Defining two methods with the same qualified
// name panics: programs are built by trusted workload code.
func (p *Program) Define(m *Method) *Method {
	key := m.QName()
	if _, dup := p.byKey[key]; dup {
		panic("ir: duplicate method " + key)
	}
	p.byKey[key] = m
	m.index = len(p.methods)
	p.methods = append(p.methods, m)
	if m.Class != nil {
		p.virtuals[virtKey{m.Class, m.Name}] = m
	}
	return m
}

// Methods returns all methods in definition order.
func (p *Program) Methods() []*Method { return p.methods }

// MethodByName returns the method with the given qualified name, or nil.
func (p *Program) MethodByName(qname string) *Method { return p.byKey[qname] }

// LookupVirtual resolves a virtual call on a receiver of dynamic class c,
// walking the superclass chain. Returns nil if unresolved.
func (p *Program) LookupVirtual(c *classfile.Class, name string) *Method {
	for k := c; k != nil; k = k.Super {
		if m, ok := p.virtuals[virtKey{k, name}]; ok {
			return m
		}
	}
	return nil
}

// Validate validates every method in the program.
func (p *Program) Validate() error {
	if p.Entry == nil {
		return fmt.Errorf("ir: program has no entry method")
	}
	for _, m := range p.methods {
		if err := Validate(m); err != nil {
			return err
		}
	}
	return nil
}
