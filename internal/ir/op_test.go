package ir

import "testing"

func TestOpStrings(t *testing.T) {
	// Every defined opcode must have a mnemonic.
	for op := OpNop; op < opCount; op++ {
		s := op.String()
		if s == "" || s[0] == 'o' && len(s) > 3 && s[:3] == "op(" {
			t.Errorf("opcode %d has no mnemonic", uint8(op))
		}
	}
	if Op(200).String() != "op(200)" {
		t.Error("unknown opcode rendering")
	}
}

func TestOpClassification(t *testing.T) {
	branches := map[Op]bool{OpGoto: true, OpBr: true, OpReturn: true}
	for op := OpNop; op < opCount; op++ {
		if op.IsBranch() != branches[op] {
			t.Errorf("%s IsBranch = %v", op, op.IsBranch())
		}
	}
	heapLoads := map[Op]bool{OpGetField: true, OpArrayLoad: true, OpArrayLen: true, OpSpecLoad: true}
	for op := OpNop; op < opCount; op++ {
		if op.IsHeapLoad() != heapLoads[op] {
			t.Errorf("%s IsHeapLoad = %v", op, op.IsHeapLoad())
		}
	}
	// LDG candidates per Sec. 3.1: getfield, getstatic, array loads,
	// arraylength. Not spec_load (JIT-inserted), not stores.
	ldg := map[Op]bool{OpGetField: true, OpGetStatic: true, OpArrayLoad: true, OpArrayLen: true}
	for op := OpNop; op < opCount; op++ {
		if op.IsLDGCandidate() != ldg[op] {
			t.Errorf("%s IsLDGCandidate = %v", op, op.IsLDGCandidate())
		}
	}
}

func TestRegString(t *testing.T) {
	if Reg(3).String() != "r3" || NoReg.String() != "_" {
		t.Error("register rendering")
	}
}

func TestAddrExprString(t *testing.T) {
	a := AddrExpr{Base: 1, Index: NoReg, Disp: 0}
	if a.String() != "[r1]" {
		t.Errorf("plain base = %q", a.String())
	}
	a = AddrExpr{Base: 1, Index: 2, Scale: 8, Disp: -16}
	if a.String() != "[r1+r2*8-16]" {
		t.Errorf("full form = %q", a.String())
	}
}
