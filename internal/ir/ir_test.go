package ir

import (
	"strings"
	"testing"

	"strider/internal/classfile"
	"strider/internal/value"
)

func newProg(t *testing.T) (*Program, *classfile.Class) {
	t.Helper()
	u := classfile.NewUniverse()
	c := u.MustDefineClass("C", nil,
		classfile.FieldSpec{Name: "x", Kind: value.KindInt},
		classfile.FieldSpec{Name: "r", Kind: value.KindRef},
		classfile.FieldSpec{Name: "s", Kind: value.KindInt, Static: true},
	)
	return NewProgram(u), c
}

func TestBuilderSimpleMethod(t *testing.T) {
	p, _ := newProg(t)
	b := NewBuilder(p, nil, "addOne", value.KindInt, value.KindInt)
	one := b.ConstInt(1)
	r := b.AddInt(b.Param(0), one)
	b.Return(r)
	m := b.Finish()

	if m.NumRegs != 3 {
		t.Errorf("NumRegs = %d, want 3", m.NumRegs)
	}
	if len(m.Code) != 3 {
		t.Errorf("len(Code) = %d, want 3", len(m.Code))
	}
	if p.MethodByName("::addOne") != m {
		t.Error("method not registered")
	}
}

func TestBuilderLabels(t *testing.T) {
	p, _ := newProg(t)
	b := NewBuilder(p, nil, "loop", value.KindInt, value.KindInt)
	i := b.ConstInt(0)
	cond := b.NewLabel()
	body := b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, CondLT, i, b.Param(0), body)
	b.Return(i)
	m := b.Finish()

	// The goto must point at the bound position of cond.
	if m.Code[1].Op != OpGoto {
		t.Fatal("expected goto at index 1")
	}
	tgt := m.Code[1].Target
	if m.Code[tgt].Op != OpConst { // first instr of cond block is the const of IncInt? no: cond binds before Br's const
		// cond binds right before the Br comparison; just verify in range
		// and that executing from there reaches the branch.
		if tgt < 0 || tgt >= len(m.Code) {
			t.Fatalf("goto target %d out of range", tgt)
		}
	}
}

func TestBuilderUnboundLabelPanics(t *testing.T) {
	p, _ := newProg(t)
	b := NewBuilder(p, nil, "bad", value.KindInvalid)
	l := b.NewLabel()
	b.Goto(l)
	defer func() {
		if recover() == nil {
			t.Error("Finish with unbound label must panic")
		}
	}()
	b.Finish()
}

func TestBuilderDoubleBindPanics(t *testing.T) {
	p, _ := newProg(t)
	b := NewBuilder(p, nil, "bad", value.KindInvalid)
	l := b.NewLabel()
	b.Bind(l)
	defer func() {
		if recover() == nil {
			t.Error("double Bind must panic")
		}
	}()
	b.Bind(l)
}

func TestDuplicateMethodPanics(t *testing.T) {
	p, _ := newProg(t)
	mk := func() {
		b := NewBuilder(p, nil, "dup", value.KindInvalid)
		b.ReturnVoid()
		b.Finish()
	}
	mk()
	defer func() {
		if recover() == nil {
			t.Error("duplicate method must panic")
		}
	}()
	mk()
}

func TestValidateRejects(t *testing.T) {
	p, c := newProg(t)
	fx := c.FieldByName("x")
	fs := c.FieldByName("s")
	cases := []struct {
		name string
		m    *Method
	}{
		{"empty", &Method{Name: "m"}},
		{"no terminator", &Method{Name: "m", NumRegs: 1, Code: []Instr{
			{Op: OpConst, Kind: value.KindInt, Dst: 0},
		}}},
		{"bad branch target", &Method{Name: "m", NumRegs: 1, Code: []Instr{
			{Op: OpGoto, Target: 99},
			{Op: OpReturn, A: NoReg},
		}}},
		{"source reg out of range", &Method{Name: "m", NumRegs: 1, Code: []Instr{
			{Op: OpMove, Dst: 0, A: 5},
			{Op: OpReturn, A: NoReg},
		}}},
		{"missing dst", &Method{Name: "m", NumRegs: 1, Code: []Instr{
			{Op: OpConst, Kind: value.KindInt, Dst: NoReg},
			{Op: OpReturn, A: NoReg},
		}}},
		{"getfield without field", &Method{Name: "m", NumRegs: 2, Code: []Instr{
			{Op: OpGetField, Dst: 0, A: 1},
			{Op: OpReturn, A: NoReg},
		}}},
		{"getstatic on instance field", &Method{Name: "m", NumRegs: 1, Code: []Instr{
			{Op: OpGetStatic, Dst: 0, Field: fx},
			{Op: OpReturn, A: NoReg},
		}}},
		{"getfield on static field", &Method{Name: "m", NumRegs: 2, Code: []Instr{
			{Op: OpGetField, Dst: 0, A: 1, Field: fs},
			{Op: OpReturn, A: NoReg},
		}}},
		{"call arity", &Method{Name: "m", NumRegs: 1, Code: []Instr{
			{Op: OpCall, Dst: NoReg, Callee: &Method{Name: "f", Params: []value.Kind{value.KindInt}}},
			{Op: OpReturn, A: NoReg},
		}}},
		{"new of array class", &Method{Name: "m", NumRegs: 1, Code: []Instr{
			{Op: OpNew, Dst: 0, Class: p.Universe.ArrayClass(value.KindInt)},
			{Op: OpReturn, A: NoReg},
		}}},
		{"callvirt without name", &Method{Name: "m", NumRegs: 1, Code: []Instr{
			{Op: OpCallVirt, Dst: NoReg, Args: []Reg{0}},
			{Op: OpReturn, A: NoReg},
		}}},
	}
	for _, tc := range cases {
		if err := Validate(tc.m); err == nil {
			t.Errorf("%s: validation must fail", tc.name)
		}
	}
}

func TestDefsAndUses(t *testing.T) {
	in := Instr{Op: OpArrayStore, Kind: value.KindInt, A: 1, B: 2, C: 3}
	uses := in.Uses(nil)
	if len(uses) != 3 {
		t.Errorf("arraystore uses = %v", uses)
	}
	if in.Defs() != NoReg {
		t.Error("arraystore defines no register")
	}
	ld := Instr{Op: OpGetField, Dst: 4, A: 1}
	if ld.Defs() != 4 {
		t.Error("getfield must define Dst")
	}
	pf := Instr{Op: OpPrefetch, Addr: AddrExpr{Base: 2, Index: 3, Scale: 4}}
	uses = pf.Uses(nil)
	if len(uses) != 2 {
		t.Errorf("prefetch with index uses = %v", uses)
	}
	call := Instr{Op: OpCall, Dst: NoReg, Args: []Reg{1, 2}}
	if call.Defs() != NoReg {
		t.Error("void call defines nothing")
	}
}

func TestDisassembly(t *testing.T) {
	p, c := newProg(t)
	fx := c.FieldByName("x")
	b := NewBuilder(p, c, "show", value.KindInt, value.KindRef)
	v := b.GetField(b.Param(0), fx)
	b.Return(v)
	m := b.Finish()
	dis := m.Disassemble()
	for _, want := range []string{"method C::show", "getfield r0.C.x", "return r1"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
	// Spot-check prefetch/specload rendering.
	in := Instr{Op: OpPrefetch, Guarded: true, Addr: AddrExpr{Base: 1, Index: NoReg, Disp: -8}}
	if got := in.String(); got != "prefetch.guarded [r1-8]" {
		t.Errorf("prefetch string = %q", got)
	}
	in = Instr{Op: OpSpecLoad, Dst: 2, Addr: AddrExpr{Base: 1, Index: 3, Scale: 4, Disp: 16}}
	if got := in.String(); got != "r2 = specload [r1+r3*4+16]" {
		t.Errorf("specload string = %q", got)
	}
}

func TestVirtualLookup(t *testing.T) {
	p, _ := newProg(t)
	u := p.Universe
	base := u.MustDefineClass("Base", nil)
	sub := u.MustDefineClass("Sub", base)

	bb := NewBuilder(p, base, "f", value.KindInt, value.KindRef)
	one := bb.ConstInt(1)
	bb.Return(one)
	mBase := bb.Finish()

	if p.LookupVirtual(sub, "f") != mBase {
		t.Error("virtual lookup must walk superclasses")
	}
	if p.LookupVirtual(sub, "g") != nil {
		t.Error("unknown virtual must be nil")
	}

	sb := NewBuilder(p, sub, "f", value.KindInt, value.KindRef)
	two := sb.ConstInt(2)
	sb.Return(two)
	mSub := sb.Finish()
	if p.LookupVirtual(sub, "f") != mSub {
		t.Error("override must win")
	}
	if p.LookupVirtual(base, "f") != mBase {
		t.Error("base lookup changed")
	}
}

func TestProgramValidate(t *testing.T) {
	p, _ := newProg(t)
	if err := p.Validate(); err == nil {
		t.Error("program without entry must fail validation")
	}
	b := NewBuilder(p, nil, "main", value.KindInt)
	z := b.ConstInt(0)
	b.Return(z)
	p.Entry = b.Finish()
	if err := p.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func TestCondNegate(t *testing.T) {
	pairs := map[Cond]Cond{
		CondEQ: CondNE, CondNE: CondEQ, CondLT: CondGE,
		CondGE: CondLT, CondGT: CondLE, CondLE: CondGT,
	}
	for c, n := range pairs {
		if c.Negate() != n {
			t.Errorf("%s.Negate() = %s, want %s", c, c.Negate(), n)
		}
	}
}

func TestSelfRecursion(t *testing.T) {
	p, _ := newProg(t)
	b := NewBuilder(p, nil, "fact", value.KindInt, value.KindInt)
	n := b.Param(0)
	one := b.ConstInt(1)
	base := b.NewLabel()
	b.Br(value.KindInt, CondLE, n, one, base)
	nm1 := b.Arith(OpSub, value.KindInt, n, one)
	sub := b.Call(b.Self(), nm1)
	r := b.Arith(OpMul, value.KindInt, n, sub)
	b.Return(r)
	b.Bind(base)
	b.Return(one)
	m := b.Finish()
	for i := range m.Code {
		if m.Code[i].Op == OpCall && m.Code[i].Callee != m {
			t.Error("self call not wired to the method")
		}
	}
}
