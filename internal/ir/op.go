// Package ir defines the register-based typed intermediate representation
// the simulated VM executes and the JIT compiler optimizes.
//
// The IR plays the role Java bytecode plays in the paper: it has explicit
// field loads (OpGetField/OpGetStatic), array loads (OpArrayLoad,
// OpArrayLen) and reference-typed operands, which is all the load
// dependence graph construction needs (paper Sec. 3.1). Being
// register-based rather than stack-based makes use-def chains direct.
//
// Two pseudo-instructions exist only in JIT-compiled code, never in source
// programs: OpPrefetch and OpSpecLoad, the paper's `prefetch` and
// `spec_load` (Sec. 3.3).
package ir

import "fmt"

// Op is an IR opcode.
type Op uint8

// The opcodes.
const (
	OpNop Op = iota

	// Data movement.
	OpConst // Dst = immediate (Imm for int/long/ref-null, F for float/double)
	OpMove  // Dst = A

	// Arithmetic and logic, typed by Kind.
	OpAdd  // Dst = A + B
	OpSub  // Dst = A - B
	OpMul  // Dst = A * B
	OpDiv  // Dst = A / B
	OpRem  // Dst = A % B (int/long only)
	OpNeg  // Dst = -A
	OpAnd  // Dst = A & B (int/long)
	OpOr   // Dst = A | B (int/long)
	OpXor  // Dst = A ^ B (int/long)
	OpShl  // Dst = A << (B & 31|63) (int/long)
	OpShr  // Dst = A >> B, arithmetic (int/long)
	OpUshr // Dst = A >>> B, logical (int/long)
	OpConv // Dst = convert A to Kind

	// Control flow.
	OpGoto   // goto Target
	OpBr     // if A <Cond> B (Kind) goto Target
	OpReturn // return A (A == NoReg for void)

	// Heap access (the loads below are load-dependence-graph candidates).
	OpGetField   // Dst = (A: objref).Field
	OpPutField   // (A: objref).Field = B
	OpGetStatic  // Dst = static Field
	OpPutStatic  // static Field = A
	OpArrayLoad  // Dst = (A: arrayref)[B], element kind = Kind
	OpArrayStore // (A: arrayref)[B] = C, element kind = Kind
	OpArrayLen   // Dst = length of (A: arrayref)

	// Allocation.
	OpNew      // Dst = new Class
	OpNewArray // Dst = new Kind[A]

	// Calls.
	OpCall     // Dst = Callee(Args...), direct
	OpCallVirt // Dst = virtual Name(Args...), receiver = Args[0]

	// Observable output: folds A into the run checksum. Used instead of
	// I/O so that semantics preservation is a testable invariant.
	OpSink

	// JIT-inserted prefetching (paper Sec. 3.3).
	OpPrefetch // prefetch Addr; Guarded selects the guarded-load mapping
	OpSpecLoad // Dst = speculative 4-byte load of Addr (never faults)

	opCount
)

var opNames = [opCount]string{
	OpNop:        "nop",
	OpConst:      "const",
	OpMove:       "move",
	OpAdd:        "add",
	OpSub:        "sub",
	OpMul:        "mul",
	OpDiv:        "div",
	OpRem:        "rem",
	OpNeg:        "neg",
	OpAnd:        "and",
	OpOr:         "or",
	OpXor:        "xor",
	OpShl:        "shl",
	OpShr:        "shr",
	OpUshr:       "ushr",
	OpConv:       "conv",
	OpGoto:       "goto",
	OpBr:         "br",
	OpReturn:     "return",
	OpGetField:   "getfield",
	OpPutField:   "putfield",
	OpGetStatic:  "getstatic",
	OpPutStatic:  "putstatic",
	OpArrayLoad:  "arrayload",
	OpArrayStore: "arraystore",
	OpArrayLen:   "arraylen",
	OpNew:        "new",
	OpNewArray:   "newarray",
	OpCall:       "call",
	OpCallVirt:   "callvirt",
	OpSink:       "sink",
	OpPrefetch:   "prefetch",
	OpSpecLoad:   "specload",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsBranch reports whether the op transfers control (conditionally or not).
func (o Op) IsBranch() bool { return o == OpGoto || o == OpBr || o == OpReturn }

// IsHeapLoad reports whether the op reads simulated heap memory.
func (o Op) IsHeapLoad() bool {
	switch o {
	case OpGetField, OpArrayLoad, OpArrayLen, OpSpecLoad:
		return true
	}
	return false
}

// IsLDGCandidate reports whether the op can be a node of a load dependence
// graph: "Each node of the graph is a load instruction using a reference as
// an operand" plus getstatic, which the paper lists as a possible (non-leaf)
// node (Sec. 3.1).
func (o Op) IsLDGCandidate() bool {
	switch o {
	case OpGetField, OpGetStatic, OpArrayLoad, OpArrayLen:
		return true
	}
	return false
}

// Cond is a comparison condition for OpBr.
type Cond uint8

// The branch conditions.
const (
	CondEQ Cond = iota
	CondNE
	CondLT
	CondLE
	CondGT
	CondGE
)

var condNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

// String returns the condition mnemonic.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Negate returns the opposite condition.
func (c Cond) Negate() Cond {
	switch c {
	case CondEQ:
		return CondNE
	case CondNE:
		return CondEQ
	case CondLT:
		return CondGE
	case CondLE:
		return CondGT
	case CondGT:
		return CondLE
	default:
		return CondLT
	}
}
