package ir

import (
	"fmt"

	"strider/internal/value"
)

// Validate performs a structural check of a method: register indices in
// range, branch targets in range, field references present, the method
// ends in a terminator, and every instruction's operand shape matches its
// opcode. It does not type-check dataflow (the simulated VM is dynamically
// checked), but it catches the assembly mistakes that matter in practice.
func Validate(m *Method) error {
	n := len(m.Code)
	if n == 0 {
		return fmt.Errorf("empty method")
	}
	if m.NumRegs < len(m.Params) {
		return fmt.Errorf("NumRegs %d < %d params", m.NumRegs, len(m.Params))
	}
	if m.NumRegs > int(NoReg) {
		return fmt.Errorf("too many registers: %d", m.NumRegs)
	}
	checkReg := func(i int, r Reg, what string) error {
		if r == NoReg {
			return fmt.Errorf("@%d: missing %s register", i, what)
		}
		if int(r) >= m.NumRegs {
			return fmt.Errorf("@%d: %s register %s out of range (%d regs)", i, what, r, m.NumRegs)
		}
		return nil
	}
	var buf []Reg
	for i := range m.Code {
		in := &m.Code[i]
		// Uses must be valid.
		buf = in.Uses(buf[:0])
		for _, r := range buf {
			if err := checkReg(i, r, "source"); err != nil {
				return err
			}
		}
		// Defs must be valid where mandatory.
		if d := in.Defs(); d != NoReg {
			if err := checkReg(i, d, "destination"); err != nil {
				return err
			}
		} else if in.Op != OpCall && in.Op != OpCallVirt {
			switch in.Op {
			case OpConst, OpMove, OpAdd, OpSub, OpMul, OpDiv, OpRem, OpNeg,
				OpAnd, OpOr, OpXor, OpShl, OpShr, OpUshr, OpConv, OpGetField,
				OpGetStatic, OpArrayLoad, OpArrayLen, OpNew, OpNewArray, OpSpecLoad:
				return fmt.Errorf("@%d: %s requires a destination", i, in.Op)
			}
		}
		switch in.Op {
		case OpGoto, OpBr:
			if in.Target < 0 || in.Target >= n {
				return fmt.Errorf("@%d: branch target %d out of range", i, in.Target)
			}
		case OpGetField, OpPutField, OpGetStatic, OpPutStatic:
			if in.Field == nil {
				return fmt.Errorf("@%d: %s without field", i, in.Op)
			}
			static := in.Op == OpGetStatic || in.Op == OpPutStatic
			if static != in.Field.Static {
				return fmt.Errorf("@%d: %s on field %s with Static=%v", i, in.Op, in.Field.QName(), in.Field.Static)
			}
		case OpNew:
			if in.Class == nil || in.Class.IsArray {
				return fmt.Errorf("@%d: new requires an object class", i)
			}
		case OpNewArray:
			switch in.Kind {
			case value.KindInt, value.KindLong, value.KindFloat, value.KindDouble, value.KindRef:
			default:
				return fmt.Errorf("@%d: newarray of kind %s", i, in.Kind)
			}
		case OpCall:
			if in.Callee == nil {
				return fmt.Errorf("@%d: call without callee", i)
			}
			if len(in.Args) != len(in.Callee.Params) {
				return fmt.Errorf("@%d: call %s with %d args, want %d",
					i, in.Callee.QName(), len(in.Args), len(in.Callee.Params))
			}
		case OpCallVirt:
			if in.Name == "" || len(in.Args) == 0 {
				return fmt.Errorf("@%d: callvirt needs a name and a receiver", i)
			}
		case OpArrayLoad, OpArrayStore:
			if !in.Kind.IsNumeric() && in.Kind != value.KindRef {
				return fmt.Errorf("@%d: array access of kind %s", i, in.Kind)
			}
		case OpPrefetch, OpSpecLoad:
			if in.Addr.Index != NoReg && in.Addr.Scale == 0 {
				return fmt.Errorf("@%d: indexed address with zero scale", i)
			}
		}
	}
	// Fallthrough off the end of the method is invalid: the final
	// instruction must be a terminator.
	last := &m.Code[n-1]
	if last.Op != OpReturn && last.Op != OpGoto {
		return fmt.Errorf("method does not end in a terminator (ends with %s)", last.Op)
	}
	return nil
}
