package ir

import (
	"fmt"

	"strider/internal/classfile"
	"strider/internal/value"
)

// Label is a forward-referencable code position used while building.
type Label int

// Builder assembles one method. All emit methods return the builder's
// destination register where applicable so call sites stay compact.
// Labels are created with NewLabel, placed with Bind, and referenced by
// branches before or after being bound; Finish resolves all fixups and
// validates the method.
type Builder struct {
	prog   *Program
	m      *Method
	labels []int   // label -> instruction index, -1 if unbound
	fixups []fixup // branch instructions awaiting label resolution
}

type fixup struct {
	instr int
	label Label
}

// NewBuilder starts a method. params lists the parameter kinds; they occupy
// registers 0..len(params)-1.
func NewBuilder(p *Program, class *classfile.Class, name string, returns value.Kind, params ...value.Kind) *Builder {
	m := &Method{
		Class:   class,
		Name:    name,
		Params:  params,
		Returns: returns,
		NumRegs: len(params),
	}
	return &Builder{prog: p, m: m}
}

// Self returns the method under construction, so recursive methods can
// emit calls to themselves before Finish.
func (b *Builder) Self() *Method { return b.m }

// Param returns the register holding parameter i.
func (b *Builder) Param(i int) Reg {
	if i < 0 || i >= len(b.m.Params) {
		panic(fmt.Sprintf("ir: method %s has no parameter %d", b.m.Name, i))
	}
	return Reg(i)
}

// NewReg allocates a fresh virtual register.
func (b *Builder) NewReg() Reg {
	r := Reg(b.m.NumRegs)
	b.m.NumRegs++
	return r
}

// NewLabel creates an unbound label.
func (b *Builder) NewLabel() Label {
	b.labels = append(b.labels, -1)
	return Label(len(b.labels) - 1)
}

// Bind places a label at the next emitted instruction.
func (b *Builder) Bind(l Label) {
	if b.labels[l] != -1 {
		panic("ir: label bound twice")
	}
	b.labels[l] = len(b.m.Code)
}

// Here creates a label bound at the current position.
func (b *Builder) Here() Label {
	l := b.NewLabel()
	b.Bind(l)
	return l
}

func (b *Builder) emit(in Instr) int {
	b.m.Code = append(b.m.Code, in)
	return len(b.m.Code) - 1
}

func (b *Builder) emitBranch(in Instr, l Label) {
	idx := b.emit(in)
	b.fixups = append(b.fixups, fixup{idx, l})
}

// --- constants and moves ---------------------------------------------------

// ConstInt emits Dst = int immediate and returns a fresh register.
func (b *Builder) ConstInt(v int32) Reg {
	d := b.NewReg()
	b.emit(Instr{Op: OpConst, Kind: value.KindInt, Dst: d, Imm: int64(v)})
	return d
}

// ConstLong emits a long constant.
func (b *Builder) ConstLong(v int64) Reg {
	d := b.NewReg()
	b.emit(Instr{Op: OpConst, Kind: value.KindLong, Dst: d, Imm: v})
	return d
}

// ConstFloat emits a float constant.
func (b *Builder) ConstFloat(v float32) Reg {
	d := b.NewReg()
	b.emit(Instr{Op: OpConst, Kind: value.KindFloat, Dst: d, F: float64(v)})
	return d
}

// ConstDouble emits a double constant.
func (b *Builder) ConstDouble(v float64) Reg {
	d := b.NewReg()
	b.emit(Instr{Op: OpConst, Kind: value.KindDouble, Dst: d, F: v})
	return d
}

// ConstNull emits a null-reference constant.
func (b *Builder) ConstNull() Reg {
	d := b.NewReg()
	b.emit(Instr{Op: OpConst, Kind: value.KindRef, Dst: d})
	return d
}

// MoveTo emits dst = src into an existing register.
func (b *Builder) MoveTo(dst, src Reg) {
	b.emit(Instr{Op: OpMove, Dst: dst, A: src})
}

// SetInt emits dst = int immediate into an existing register.
func (b *Builder) SetInt(dst Reg, v int32) {
	b.emit(Instr{Op: OpConst, Kind: value.KindInt, Dst: dst, Imm: int64(v)})
}

// SetDouble emits dst = double immediate into an existing register.
func (b *Builder) SetDouble(dst Reg, v float64) {
	b.emit(Instr{Op: OpConst, Kind: value.KindDouble, Dst: dst, F: v})
}

// --- arithmetic --------------------------------------------------------------

// Arith emits dst = a <op> b of the given kind into a fresh register.
func (b *Builder) Arith(op Op, k value.Kind, a, c Reg) Reg {
	d := b.NewReg()
	b.emit(Instr{Op: op, Kind: k, Dst: d, A: a, B: c})
	return d
}

// ArithTo emits dst = a <op> b into an existing register.
func (b *Builder) ArithTo(dst Reg, op Op, k value.Kind, a, c Reg) {
	b.emit(Instr{Op: op, Kind: k, Dst: dst, A: a, B: c})
}

// AddInt emits dst = a + b (int) into a fresh register.
func (b *Builder) AddInt(a, c Reg) Reg { return b.Arith(OpAdd, value.KindInt, a, c) }

// IncInt emits r = r + imm.
func (b *Builder) IncInt(r Reg, imm int32) {
	t := b.ConstInt(imm)
	b.ArithTo(r, OpAdd, value.KindInt, r, t)
}

// Neg emits dst = -a.
func (b *Builder) Neg(k value.Kind, a Reg) Reg {
	d := b.NewReg()
	b.emit(Instr{Op: OpNeg, Kind: k, Dst: d, A: a})
	return d
}

// Conv emits dst = convert a to kind k.
func (b *Builder) Conv(k value.Kind, a Reg) Reg {
	d := b.NewReg()
	b.emit(Instr{Op: OpConv, Kind: k, Dst: d, A: a})
	return d
}

// --- control flow ------------------------------------------------------------

// Goto emits an unconditional jump to l.
func (b *Builder) Goto(l Label) {
	b.emitBranch(Instr{Op: OpGoto}, l)
}

// Br emits "if a cond c (kind) goto l".
func (b *Builder) Br(k value.Kind, cond Cond, a, c Reg, l Label) {
	b.emitBranch(Instr{Op: OpBr, Kind: k, Cond: cond, A: a, B: c}, l)
}

// BrIntZero emits "if a cond 0 goto l" for ints.
func (b *Builder) BrIntZero(cond Cond, a Reg, l Label) {
	z := b.ConstInt(0)
	b.Br(value.KindInt, cond, a, z, l)
}

// Return emits a value return.
func (b *Builder) Return(a Reg) {
	b.emit(Instr{Op: OpReturn, A: a})
}

// ReturnVoid emits a void return.
func (b *Builder) ReturnVoid() {
	b.emit(Instr{Op: OpReturn, A: NoReg})
}

// --- heap access ---------------------------------------------------------------

// GetField emits dst = obj.f into a fresh register.
func (b *Builder) GetField(obj Reg, f *classfile.Field) Reg {
	d := b.NewReg()
	b.emit(Instr{Op: OpGetField, Kind: f.Kind, Dst: d, A: obj, Field: f})
	return d
}

// GetFieldTo emits dst = obj.f into an existing register.
func (b *Builder) GetFieldTo(dst, obj Reg, f *classfile.Field) {
	b.emit(Instr{Op: OpGetField, Kind: f.Kind, Dst: dst, A: obj, Field: f})
}

// PutField emits obj.f = src.
func (b *Builder) PutField(obj Reg, f *classfile.Field, src Reg) {
	b.emit(Instr{Op: OpPutField, Kind: f.Kind, A: obj, B: src, Field: f})
}

// GetStatic emits dst = static f.
func (b *Builder) GetStatic(f *classfile.Field) Reg {
	d := b.NewReg()
	b.emit(Instr{Op: OpGetStatic, Kind: f.Kind, Dst: d, Field: f})
	return d
}

// PutStatic emits static f = src.
func (b *Builder) PutStatic(f *classfile.Field, src Reg) {
	b.emit(Instr{Op: OpPutStatic, Kind: f.Kind, A: src, Field: f})
}

// ArrayLoad emits dst = arr[idx] of element kind k.
func (b *Builder) ArrayLoad(k value.Kind, arr, idx Reg) Reg {
	d := b.NewReg()
	b.emit(Instr{Op: OpArrayLoad, Kind: k, Dst: d, A: arr, B: idx})
	return d
}

// ArrayLoadTo emits dst = arr[idx] into an existing register.
func (b *Builder) ArrayLoadTo(dst Reg, k value.Kind, arr, idx Reg) {
	b.emit(Instr{Op: OpArrayLoad, Kind: k, Dst: dst, A: arr, B: idx})
}

// ArrayStore emits arr[idx] = src of element kind k.
func (b *Builder) ArrayStore(k value.Kind, arr, idx, src Reg) {
	b.emit(Instr{Op: OpArrayStore, Kind: k, A: arr, B: idx, C: src})
}

// ArrayLen emits dst = len(arr).
func (b *Builder) ArrayLen(arr Reg) Reg {
	d := b.NewReg()
	b.emit(Instr{Op: OpArrayLen, Kind: value.KindInt, Dst: d, A: arr})
	return d
}

// New emits dst = new c.
func (b *Builder) New(c *classfile.Class) Reg {
	d := b.NewReg()
	b.emit(Instr{Op: OpNew, Kind: value.KindRef, Dst: d, Class: c})
	return d
}

// NewArray emits dst = new k[lenReg].
func (b *Builder) NewArray(k value.Kind, lenReg Reg) Reg {
	d := b.NewReg()
	b.emit(Instr{Op: OpNewArray, Kind: k, Dst: d, A: lenReg})
	return d
}

// --- calls -----------------------------------------------------------------------

// Call emits a direct call and returns the result register (NoReg-backed
// fresh register even for void, unused then).
func (b *Builder) Call(callee *Method, args ...Reg) Reg {
	d := NoReg
	if callee.Returns != value.KindInvalid {
		d = b.NewReg()
	}
	b.emit(Instr{Op: OpCall, Dst: d, Callee: callee, Args: append([]Reg(nil), args...)})
	return d
}

// CallVirt emits a virtual call dispatched on args[0]'s dynamic class.
// hasResult controls whether a result register is allocated.
func (b *Builder) CallVirt(name string, hasResult bool, args ...Reg) Reg {
	d := NoReg
	if hasResult {
		d = b.NewReg()
	}
	b.emit(Instr{Op: OpCallVirt, Dst: d, Name: name, Args: append([]Reg(nil), args...)})
	return d
}

// Sink folds a into the run checksum.
func (b *Builder) Sink(a Reg) {
	b.emit(Instr{Op: OpSink, A: a})
}

// --- finishing --------------------------------------------------------------------

// Finish resolves labels, validates, and registers the method with the
// program. It panics on malformed code: builders are driven by trusted
// workload definitions, so an assembly error is a bug, not an input error.
func (b *Builder) Finish() *Method {
	for _, fx := range b.fixups {
		tgt := b.labels[fx.label]
		if tgt < 0 {
			panic(fmt.Sprintf("ir: method %s: unbound label %d", b.m.Name, fx.label))
		}
		b.m.Code[fx.instr].Target = tgt
	}
	if err := Validate(b.m); err != nil {
		panic(fmt.Sprintf("ir: method %s invalid: %v\n%s", b.m.Name, err, b.m.Disassemble()))
	}
	return b.prog.Define(b.m)
}
