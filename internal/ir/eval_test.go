package ir

import (
	"math"
	"testing"
	"testing/quick"

	"strider/internal/value"
)

func TestEvalBinaryInt(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int32
		want int32
	}{
		{OpAdd, 3, 4, 7},
		{OpSub, 3, 4, -1},
		{OpMul, -3, 4, -12},
		{OpDiv, 7, 2, 3},
		{OpDiv, -7, 2, -3},
		{OpRem, 7, 3, 1},
		{OpRem, -7, 3, -1},
		{OpAnd, 0b1100, 0b1010, 0b1000},
		{OpOr, 0b1100, 0b1010, 0b1110},
		{OpXor, 0b1100, 0b1010, 0b0110},
		{OpShl, 1, 4, 16},
		{OpShl, 1, 33, 2}, // shift count masked to 5 bits
		{OpShr, -8, 1, -4},
		{OpUshr, -8, 1, 0x7FFFFFFC},
	}
	for _, c := range cases {
		got, err := EvalBinary(c.op, value.KindInt, value.Int(c.a), value.Int(c.b))
		if err != nil {
			t.Fatalf("%s(%d,%d): %v", c.op, c.a, c.b, err)
		}
		if got.Int() != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.op, c.a, c.b, got.Int(), c.want)
		}
	}
}

func TestEvalBinaryDivZero(t *testing.T) {
	for _, op := range []Op{OpDiv, OpRem} {
		for _, k := range []value.Kind{value.KindInt, value.KindLong} {
			var z value.Value
			if k == value.KindInt {
				z = value.Int(0)
			} else {
				z = value.Long(0)
			}
			var seven value.Value
			if k == value.KindInt {
				seven = value.Int(7)
			} else {
				seven = value.Long(7)
			}
			if _, err := EvalBinary(op, k, seven, z); err != ErrDivZero {
				t.Errorf("%s.%s by zero: err = %v, want ErrDivZero", op, k, err)
			}
		}
	}
	// Float division by zero is Inf, not an error.
	got, err := EvalBinary(OpDiv, value.KindDouble, value.Double(1), value.Double(0))
	if err != nil || !math.IsInf(got.Double(), 1) {
		t.Errorf("1.0/0.0 = %v, %v", got, err)
	}
}

func TestEvalBinaryLong(t *testing.T) {
	got, err := EvalBinary(OpShl, value.KindLong, value.Long(1), value.Long(40))
	if err != nil || got.Long() != 1<<40 {
		t.Errorf("long shl = %v (%v)", got, err)
	}
	got, _ = EvalBinary(OpUshr, value.KindLong, value.Long(-1), value.Long(60))
	if got.Long() != 15 {
		t.Errorf("long ushr = %d", got.Long())
	}
}

func TestEvalBinaryFloat(t *testing.T) {
	got, err := EvalBinary(OpMul, value.KindFloat, value.Float(1.5), value.Float(2))
	if err != nil || got.Float() != 3 {
		t.Errorf("float mul = %v (%v)", got, err)
	}
	if _, err := EvalBinary(OpAnd, value.KindFloat, value.Float(1), value.Float(2)); err == nil {
		t.Error("float AND must be rejected")
	}
}

func TestEvalBadKind(t *testing.T) {
	if _, err := EvalBinary(OpAdd, value.KindRef, value.Ref(1), value.Ref(2)); err == nil {
		t.Error("ref arithmetic must be rejected")
	}
	if _, err := EvalUnary(OpNeg, value.KindRef, value.Ref(1)); err == nil {
		t.Error("ref negation must be rejected")
	}
	if _, err := EvalUnary(OpAdd, value.KindInt, value.Int(1)); err == nil {
		t.Error("EvalUnary with non-neg op must be rejected")
	}
}

func TestEvalUnary(t *testing.T) {
	got, _ := EvalUnary(OpNeg, value.KindInt, value.Int(5))
	if got.Int() != -5 {
		t.Error("int neg broken")
	}
	got, _ = EvalUnary(OpNeg, value.KindDouble, value.Double(2.5))
	if got.Double() != -2.5 {
		t.Error("double neg broken")
	}
}

func TestConvert(t *testing.T) {
	cases := []struct {
		to   value.Kind
		in   value.Value
		want value.Value
	}{
		{value.KindDouble, value.Int(3), value.Double(3)},
		{value.KindInt, value.Double(3.9), value.Int(3)},
		{value.KindInt, value.Double(-3.9), value.Int(-3)},
		{value.KindLong, value.Int(-2), value.Long(-2)},
		{value.KindFloat, value.Double(0.5), value.Float(0.5)},
		{value.KindInt, value.Int(9), value.Int(9)}, // identity
	}
	for _, c := range cases {
		got, err := Convert(c.to, c.in)
		if err != nil {
			t.Fatalf("Convert(%s, %v): %v", c.to, c.in, err)
		}
		if !got.Equal(c.want) {
			t.Errorf("Convert(%s, %v) = %v, want %v", c.to, c.in, got, c.want)
		}
	}
	if _, err := Convert(value.KindInt, value.Ref(4)); err == nil {
		t.Error("ref conversion must fail")
	}
}

func TestEvalCond(t *testing.T) {
	type tc struct {
		cond Cond
		k    value.Kind
		a, b value.Value
		want bool
	}
	cases := []tc{
		{CondEQ, value.KindInt, value.Int(2), value.Int(2), true},
		{CondNE, value.KindInt, value.Int(2), value.Int(2), false},
		{CondLT, value.KindInt, value.Int(-1), value.Int(0), true},
		{CondGE, value.KindLong, value.Long(5), value.Long(5), true},
		{CondGT, value.KindDouble, value.Double(2.5), value.Double(2), true},
		{CondLE, value.KindFloat, value.Float(1), value.Float(1), true},
		{CondEQ, value.KindRef, value.Ref(8), value.Ref(8), true},
		{CondNE, value.KindRef, value.Null, value.Ref(8), true},
	}
	for _, c := range cases {
		got, err := EvalCond(c.cond, c.k, c.a, c.b)
		if err != nil {
			t.Fatalf("EvalCond(%s): %v", c.cond, err)
		}
		if got != c.want {
			t.Errorf("EvalCond(%s, %v, %v) = %v", c.cond, c.a, c.b, got)
		}
	}
}

func TestEvalCondNaN(t *testing.T) {
	nan := value.Double(math.NaN())
	for _, cond := range []Cond{CondLT, CondLE, CondGT, CondGE, CondEQ} {
		got, err := EvalCond(cond, value.KindDouble, nan, value.Double(1))
		if err != nil {
			t.Fatal(err)
		}
		if got {
			t.Errorf("NaN %s 1 must be false", cond)
		}
	}
	got, _ := EvalCond(CondNE, value.KindDouble, nan, value.Double(1))
	if !got {
		t.Error("NaN != 1 must be true")
	}
}

// Property: integer EvalBinary matches Go's arithmetic for total ops.
func TestQuickIntSemantics(t *testing.T) {
	check := func(op Op, ref func(a, b int32) int32) {
		if err := quick.Check(func(a, b int32) bool {
			got, err := EvalBinary(op, value.KindInt, value.Int(a), value.Int(b))
			return err == nil && got.Int() == ref(a, b)
		}, nil); err != nil {
			t.Errorf("%s: %v", op, err)
		}
	}
	check(OpAdd, func(a, b int32) int32 { return a + b })
	check(OpSub, func(a, b int32) int32 { return a - b })
	check(OpMul, func(a, b int32) int32 { return a * b })
	check(OpXor, func(a, b int32) int32 { return a ^ b })
	check(OpShl, func(a, b int32) int32 { return a << (uint32(b) & 31) })
}

// Property: comparisons are a total order on ints: exactly one of
// LT/EQ/GT holds.
func TestQuickCondTrichotomy(t *testing.T) {
	if err := quick.Check(func(a, b int32) bool {
		lt, _ := EvalCond(CondLT, value.KindInt, value.Int(a), value.Int(b))
		eq, _ := EvalCond(CondEQ, value.KindInt, value.Int(a), value.Int(b))
		gt, _ := EvalCond(CondGT, value.KindInt, value.Int(a), value.Int(b))
		n := 0
		for _, x := range []bool{lt, eq, gt} {
			if x {
				n++
			}
		}
		return n == 1
	}, nil); err != nil {
		t.Error(err)
	}
}
