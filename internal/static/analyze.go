// Package static is the offline side of the paper's core comparison: it
// predicts stride patterns and co-allocation purely from IR/CFG/dataflow
// structure — no execution — emitting the same candidate vocabulary the
// prefetch code generator consumes. It models the pre-paper state of the
// art (OOPredictor-style static prediction of object-oriented access
// patterns): array walks get their stride from induction-variable steps,
// and reference chases get the classic allocation-order assumption that
// the next object of a class sits InstanceSize bytes after the current
// one. Where those assumptions fail — phased strides, data-dependent
// layouts, lists traversed against allocation order — is exactly what the
// experiments' prediction-source table measures.
//
// The package also holds the PGO profile store (profile.go): a versioned
// serialization of one run's dynamic inspection results, so later runs
// replay the recorded annotations and skip re-inspection entirely.
package static

import (
	"strider/internal/cfg"
	"strider/internal/classfile"
	"strider/internal/core/ldg"
	"strider/internal/dataflow"
	"strider/internal/ir"
	"strider/internal/telemetry"
	"strider/internal/value"
)

// Source is the telemetry marker stamped on statically predicted events.
const Source = "static"

// Annotate writes statically predicted stride patterns onto a loop's load
// dependence graph, in the same node-then-edge order the dynamic
// annotator uses. Candidates without a structural prediction are reported
// to the recorder as FILTER_NO_PATTERN, marked with the static source.
// The return value is the modelled compile-time cost of the analysis in
// work units (the Figure 11 ledger's currency).
func Annotate(g *cfg.Graph, df *dataflow.Defs, lg *ldg.Graph, rec telemetry.Recorder) uint64 {
	m := lg.Method
	loop := lg.Loop
	qname := m.QName()
	var units uint64

	noPattern := func(instr, pair int, op ir.Op) {
		if rec == nil {
			return
		}
		rec.Decision(telemetry.DecisionEvent{
			Method: qname, Loop: loop.Header, Instr: instr, Pair: pair,
			Op: op.String(), Reason: telemetry.FilterNoPattern, Src: Source,
		})
	}

	for _, n := range lg.Nodes {
		units += 3
		d, ok := predictInter(m, g, df, loop, n)
		n.HasInter, n.Inter, n.RawInter = ok, 0, d
		n.InterRatio, n.InterSamples = 0, 0
		if ok {
			n.Inter = d
		} else {
			noPattern(n.Instr, -1, n.Op)
		}
	}
	for _, n := range lg.Nodes {
		for _, e := range n.Succs {
			units += 2
			s, ok := predictIntra(m, df, e)
			e.HasIntra, e.Intra, e.RawIntra = ok, 0, s
			e.IntraRatio, e.IntraSamples = 0, 0
			if ok {
				e.Intra = s
			} else {
				noPattern(e.From.Instr, e.To.Instr, e.To.Op)
			}
		}
	}
	return units
}

// predictInter predicts a load's inter-iteration stride from structure
// alone:
//
//   - an array load whose index is an induction variable advances by
//     step * element size each iteration;
//   - a getfield whose base reference is produced by an in-loop load (a
//     reference chase) is assumed to walk objects laid out in allocation
//     order, i.e. to advance by the declaring class's instance size;
//   - everything else (invariant bases, array lengths, statics) has no
//     predictable inter-iteration stride.
func predictInter(m *ir.Method, g *cfg.Graph, df *dataflow.Defs, loop *cfg.Loop, n *ldg.Node) (int64, bool) {
	in := &m.Code[n.Instr]
	switch in.Op {
	case ir.OpArrayLoad:
		step, ok := inductionStep(m, g, df, loop, n.Instr, in.B, 0)
		if !ok || step == 0 {
			return 0, false
		}
		elem := int64(4)
		if in.Kind.Size() == 8 {
			elem = 8
		}
		return step * elem, true
	case ir.OpGetField:
		if !loopVariantRef(m, g, df, loop, n.Instr, in.A, 0) {
			return 0, false
		}
		cls := in.Field.Class
		if cls == nil || cls.InstanceSize == 0 {
			return 0, false
		}
		// The allocation-order assumption: consecutive objects of the
		// class are InstanceSize bytes apart. Lists built in reverse, GC
		// reordering, and interleaved allocation all break it — dynamically
		// measurable, statically invisible.
		return int64(cls.InstanceSize), true
	}
	return 0, false
}

// predictIntra predicts the within-iteration stride of a dependent load
// pair. Two structural shapes are recognized, both rooted at a getfield
// parent (array elements and statics give no usable base address):
//
//   - recurrent chase (the value flows to the dependent load through
//     register copies across the back edge, `cur = cur.next`): both loads
//     read the same object, so the stride is the field-offset difference;
//   - same-iteration dereference (the dependent load consumes the value
//     directly): the child object is assumed co-allocated right after its
//     parent, so the stride is the parent's remaining size plus the
//     dependent load's displacement.
func predictIntra(m *ir.Method, df *dataflow.Defs, e *ldg.Edge) (int64, bool) {
	from := &m.Code[e.From.Instr]
	if from.Op != ir.OpGetField {
		return 0, false
	}
	offFrom := int64(from.Field.Offset)
	to := &m.Code[e.To.Instr]
	var offTo int64
	switch to.Op {
	case ir.OpGetField:
		offTo = int64(to.Field.Offset)
	case ir.OpArrayLen:
		offTo = int64(classfile.AuxOffset)
	case ir.OpArrayLoad:
		offTo = int64(classfile.HeaderBytes)
	default:
		return 0, false
	}

	direct := false
	for _, d := range df.ReachingDefs(e.To.Instr, to.A) {
		if d == e.From.Instr {
			direct = true
			break
		}
	}
	var s int64
	if direct {
		cls := from.Field.Class
		if cls == nil || cls.InstanceSize == 0 {
			return 0, false
		}
		s = int64(cls.InstanceSize) - offFrom + offTo
	} else {
		s = offTo - offFrom
	}
	if s == 0 {
		// Mirrors the dynamic zero-stride rejection: the pair shares a
		// cache line by construction, so the parent's prefetch covers it.
		return 0, false
	}
	return s, true
}

// inductionStep resolves the per-iteration step of a register at a use
// site: every in-loop reaching definition must be a copy chain ending in
// an add/subtract of a compile-time constant, and all paths must agree on
// the step. No in-loop definition means the register is loop-invariant
// (step unknown/zero); disagreeing paths — a phased stride — defeat the
// analysis, exactly as they defeat real static stride predictors.
func inductionStep(m *ir.Method, g *cfg.Graph, df *dataflow.Defs, loop *cfg.Loop, use int, reg ir.Reg, depth int) (int64, bool) {
	if depth > 4 {
		return 0, false
	}
	var step int64
	found := false
	for _, d := range df.ReachingDefs(use, reg) {
		if !loop.ContainsInstr(g, d) {
			continue
		}
		in := &m.Code[d]
		var s int64
		switch in.Op {
		case ir.OpMove:
			ms, ok := inductionStep(m, g, df, loop, d, in.A, depth+1)
			if !ok {
				return 0, false
			}
			s = ms
		case ir.OpAdd, ir.OpSub:
			c, ok := constOperand(m, df, d, in)
			if !ok {
				return 0, false
			}
			s = c
		default:
			return 0, false
		}
		if found && s != step {
			return 0, false
		}
		step, found = s, true
	}
	return step, found
}

// constOperand resolves the constant operand of an add/subtract, looking
// through the (unique) reaching definition of each source register.
func constOperand(m *ir.Method, df *dataflow.Defs, at int, in *ir.Instr) (int64, bool) {
	if c, ok := constOf(m, df, at, in.B); ok {
		if in.Op == ir.OpSub {
			return -c, true
		}
		return c, true
	}
	if in.Op == ir.OpAdd {
		if c, ok := constOf(m, df, at, in.A); ok {
			return c, true
		}
	}
	return 0, false
}

func constOf(m *ir.Method, df *dataflow.Defs, at int, reg ir.Reg) (int64, bool) {
	d := df.UniqueReachingDef(at, reg)
	if d < 0 || m.Code[d].Op != ir.OpConst {
		return 0, false
	}
	return m.Code[d].Imm, true
}

// loopVariantRef reports whether a reference register is redefined inside
// the loop by a ref-producing load (possibly through register copies) —
// the structural signature of a reference chase or an object-per-iteration
// walk, as opposed to repeated loads off a loop-invariant base.
func loopVariantRef(m *ir.Method, g *cfg.Graph, df *dataflow.Defs, loop *cfg.Loop, use int, reg ir.Reg, depth int) bool {
	if depth > 4 {
		return false
	}
	for _, d := range df.ReachingDefs(use, reg) {
		if !loop.ContainsInstr(g, d) {
			continue
		}
		in := &m.Code[d]
		switch in.Op {
		case ir.OpMove:
			if loopVariantRef(m, g, df, loop, d, in.A, depth+1) {
				return true
			}
		case ir.OpGetField, ir.OpGetStatic:
			if in.Field.Kind == value.KindRef {
				return true
			}
		case ir.OpArrayLoad:
			if in.Kind == value.KindRef {
				return true
			}
		}
	}
	return false
}
