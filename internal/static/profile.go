package static

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"

	"strider/internal/core/ldg"
	"strider/internal/telemetry"
)

// PGOSource is the telemetry marker stamped on profile-replayed events.
const PGOSource = "pgo"

// Version is the profile format version. Load rejects any other.
const Version = 1

// Typed load failures: each is an exit-2-class configuration error for
// the CLI layers, and every one of them means "fall back to dynamic".
var (
	// ErrCorrupt reports a profile whose framing, checksum, or payload
	// does not parse.
	ErrCorrupt = errors.New("static: corrupt profile")
	// ErrVersion reports a profile written by a different format version.
	ErrVersion = errors.New("static: profile version mismatch")
	// ErrStale reports a profile recorded for a different cell than the
	// one trying to consume it.
	ErrStale = errors.New("static: stale profile")
)

// NodeRecord is one LDG node's recorded inter-iteration annotation. Inter
// is the dominant stride of the inspected trace whether or not it
// qualified (HasInter carries the verdict), so a replay reproduces the
// rejected candidates' diagnostics too.
type NodeRecord struct {
	Instr    int     `json:"instr"`
	HasInter bool    `json:"has,omitempty"`
	Inter    int64   `json:"inter,omitempty"`
	Ratio    float64 `json:"ratio,omitempty"`
	Samples  int     `json:"samples,omitempty"`
}

// EdgeRecord is one LDG edge's recorded intra-iteration annotation.
type EdgeRecord struct {
	From     int     `json:"from"`
	To       int     `json:"to"`
	HasIntra bool    `json:"has,omitempty"`
	Intra    int64   `json:"intra,omitempty"`
	Ratio    float64 `json:"ratio,omitempty"`
	Samples  int     `json:"samples,omitempty"`
}

// LoopProfile is one loop's recorded inspection outcome: the verdict, the
// observed trip behaviour, and (for accepted loops) the full stride
// annotations of its load dependence graph.
type LoopProfile struct {
	Verdict     telemetry.Reason `json:"verdict"`
	Trips       int              `json:"trips,omitempty"`
	NaturalExit bool             `json:"natural_exit,omitempty"`
	Nodes       []NodeRecord     `json:"nodes,omitempty"`
	Edges       []EdgeRecord     `json:"edges,omitempty"`
}

// Profile is the PGO store: one dynamic run's per-loop inspection results,
// keyed by method qualified name and loop header block. A Profile is
// written by a single profiling run and read-only afterwards, so any
// number of PGO compilations may share it concurrently.
type Profile struct {
	// Cell is the canonical cell key of the run that produced the profile
	// (the staleness guard: LoadFor rejects a profile recorded under a
	// different cell).
	Cell string

	methods map[string]map[int]*LoopProfile
}

// NewProfile returns an empty profile for the named cell.
func NewProfile(cell string) *Profile {
	return &Profile{Cell: cell, methods: map[string]map[int]*LoopProfile{}}
}

// Record stores one loop's outcome (last write wins; each loop is
// recorded once per compilation).
func (p *Profile) Record(method string, header int, lp *LoopProfile) {
	loops, ok := p.methods[method]
	if !ok {
		loops = map[int]*LoopProfile{}
		p.methods[method] = loops
	}
	loops[header] = lp
}

// Loop returns the recorded outcome for a loop, or nil when the profile
// has no entry (including on a nil Profile — a missing profile is all
// misses).
func (p *Profile) Loop(method string, header int) *LoopProfile {
	if p == nil {
		return nil
	}
	return p.methods[method][header]
}

// Len returns the number of recorded loops.
func (p *Profile) Len() int {
	n := 0
	for _, loops := range p.methods {
		n += len(loops)
	}
	return n
}

// RecordLoop captures an annotated graph (plus its inspection verdict) as
// a loop profile. The Raw strides are recorded so rejected candidates
// replay with their diagnostics intact.
func RecordLoop(lg *ldg.Graph, verdict telemetry.Reason, trips int, naturalExit bool) *LoopProfile {
	lp := &LoopProfile{Verdict: verdict, Trips: trips, NaturalExit: naturalExit}
	for _, n := range lg.Nodes {
		lp.Nodes = append(lp.Nodes, NodeRecord{
			Instr: n.Instr, HasInter: n.HasInter, Inter: n.RawInter,
			Ratio: n.InterRatio, Samples: n.InterSamples,
		})
	}
	for _, n := range lg.Nodes {
		for _, e := range n.Succs {
			lp.Edges = append(lp.Edges, EdgeRecord{
				From: e.From.Instr, To: e.To.Instr, HasIntra: e.HasIntra,
				Intra: e.RawIntra, Ratio: e.IntraRatio, Samples: e.IntraSamples,
			})
		}
	}
	return lp
}

// Apply writes a recorded loop's annotations back onto a freshly built
// graph and replays the rejected candidates' FILTER_NO_PATTERN decisions
// (marked with the pgo source), in the dynamic annotator's order. It
// returns false — and leaves the graph untouched — when the graph's
// structure no longer matches the record; the caller treats that as a
// profile miss and falls back to dynamic inspection.
func Apply(lg *ldg.Graph, lp *LoopProfile, rec telemetry.Recorder) bool {
	if lp == nil || lp.Verdict != telemetry.LoopAccepted || len(lp.Nodes) != len(lg.Nodes) {
		return false
	}
	edges := 0
	for _, n := range lg.Nodes {
		edges += len(n.Succs)
	}
	if edges != len(lp.Edges) {
		return false
	}
	nodeRec := make(map[int]NodeRecord, len(lp.Nodes))
	for _, r := range lp.Nodes {
		nodeRec[r.Instr] = r
	}
	type pair struct{ from, to int }
	edgeRec := make(map[pair]EdgeRecord, len(lp.Edges))
	for _, r := range lp.Edges {
		edgeRec[pair{r.From, r.To}] = r
	}
	for _, n := range lg.Nodes {
		if _, ok := nodeRec[n.Instr]; !ok {
			return false
		}
		for _, e := range n.Succs {
			if _, ok := edgeRec[pair{e.From.Instr, e.To.Instr}]; !ok {
				return false
			}
		}
	}

	qname := lg.Method.QName()
	noPattern := func(instr, pair, samples int, stride int64, ratio float64, op string) {
		if rec == nil {
			return
		}
		rec.Decision(telemetry.DecisionEvent{
			Method: qname, Loop: lg.Loop.Header, Instr: instr, Pair: pair,
			Op: op, Stride: stride, Ratio: ratio, Samples: samples,
			Reason: telemetry.FilterNoPattern, Src: PGOSource,
		})
	}
	for _, n := range lg.Nodes {
		r := nodeRec[n.Instr]
		n.HasInter, n.RawInter = r.HasInter, r.Inter
		n.InterRatio, n.InterSamples = r.Ratio, r.Samples
		n.Inter = 0
		if r.HasInter {
			n.Inter = r.Inter
		} else {
			noPattern(n.Instr, -1, r.Samples, r.Inter, r.Ratio, n.Op.String())
		}
	}
	for _, n := range lg.Nodes {
		for _, e := range n.Succs {
			r := edgeRec[pair{e.From.Instr, e.To.Instr}]
			e.HasIntra, e.RawIntra = r.HasIntra, r.Intra
			e.IntraRatio, e.IntraSamples = r.Ratio, r.Samples
			e.Intra = 0
			if r.HasIntra {
				e.Intra = r.Intra
			} else {
				noPattern(e.From.Instr, e.To.Instr, r.Samples, r.Intra, r.Ratio, e.To.Op.String())
			}
		}
	}
	return true
}

// profileJSON is the deterministic serialization shape: maps flattened to
// sorted slices so identical profiles marshal to identical bytes.
type profileJSON struct {
	Cell    string       `json:"cell"`
	Methods []methodJSON `json:"methods"`
}

type methodJSON struct {
	Name  string     `json:"name"`
	Loops []loopJSON `json:"loops"`
}

type loopJSON struct {
	Header int `json:"header"`
	*LoopProfile
}

// Save writes the profile in its versioned on-disk format: a header line
// `striderpgo <version> <fnv64a payload checksum>` followed by a
// deterministic JSON payload.
func (p *Profile) Save(w io.Writer) error {
	body, err := p.marshal()
	if err != nil {
		return err
	}
	h := fnv.New64a()
	h.Write(body)
	if _, err := fmt.Fprintf(w, "striderpgo %d %016x\n", Version, h.Sum64()); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

func (p *Profile) marshal() ([]byte, error) {
	out := profileJSON{Cell: p.Cell}
	names := make([]string, 0, len(p.methods))
	for name := range p.methods {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mj := methodJSON{Name: name}
		headers := make([]int, 0, len(p.methods[name]))
		for h := range p.methods[name] {
			headers = append(headers, h)
		}
		sort.Ints(headers)
		for _, h := range headers {
			mj.Loops = append(mj.Loops, loopJSON{Header: h, LoopProfile: p.methods[name][h]})
		}
		out.Methods = append(out.Methods, mj)
	}
	return json.Marshal(out)
}

// Load reads a profile written by Save, verifying the version and the
// payload checksum. Errors wrap ErrVersion or ErrCorrupt.
func Load(r io.Reader) (*Profile, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	fields := strings.Fields(strings.TrimSuffix(header, "\n"))
	if len(fields) != 3 || fields[0] != "striderpgo" {
		return nil, fmt.Errorf("%w: not a strider PGO profile", ErrCorrupt)
	}
	var version int
	if _, err := fmt.Sscanf(fields[1], "%d", &version); err != nil {
		return nil, fmt.Errorf("%w: bad version field %q", ErrCorrupt, fields[1])
	}
	if version != Version {
		return nil, fmt.Errorf("%w: profile is v%d, this build reads v%d", ErrVersion, version, Version)
	}
	var sum uint64
	if _, err := fmt.Sscanf(fields[2], "%016x", &sum); err != nil {
		return nil, fmt.Errorf("%w: bad checksum field %q", ErrCorrupt, fields[2])
	}
	body, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
	}
	var in profileJSON
	if err := json.Unmarshal(body, &in); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	p := NewProfile(in.Cell)
	for _, mj := range in.Methods {
		for _, lj := range mj.Loops {
			if lj.LoopProfile == nil {
				return nil, fmt.Errorf("%w: loop entry without a profile body", ErrCorrupt)
			}
			p.Record(mj.Name, lj.Header, lj.LoopProfile)
		}
	}
	return p, nil
}

// LoadFor is Load plus the staleness guard: the profile must have been
// recorded for exactly the given cell. Errors wrap ErrStale in addition
// to Load's failure modes.
func LoadFor(r io.Reader, cell string) (*Profile, error) {
	p, err := Load(r)
	if err != nil {
		return nil, err
	}
	if p.Cell != cell {
		return nil, fmt.Errorf("%w: profile is for cell %q, want %q", ErrStale, p.Cell, cell)
	}
	return p, nil
}
