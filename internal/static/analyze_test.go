package static_test

import (
	"testing"

	"strider/internal/cfg"
	"strider/internal/classfile"
	"strider/internal/core/ldg"
	"strider/internal/dataflow"
	"strider/internal/ir"
	"strider/internal/static"
	"strider/internal/telemetry"
	"strider/internal/value"
)

// decisionLog captures per-candidate decisions for assertion.
type decisionLog struct {
	telemetry.Nop
	decisions []telemetry.DecisionEvent
}

func (l *decisionLog) Decision(e telemetry.DecisionEvent) { l.decisions = append(l.decisions, e) }

// annotateOuter builds the CFG/dataflow/LDG pipeline for the method's
// outermost loop and runs the static analyzer over it.
func annotateOuter(t *testing.T, m *ir.Method, rec telemetry.Recorder) (*ldg.Graph, uint64) {
	t.Helper()
	g := cfg.Build(m)
	f := cfg.BuildLoops(g)
	if len(f.Loops) == 0 {
		t.Fatal("fixture method has no loops")
	}
	loop := f.Loops[0]
	for _, l := range f.Loops {
		if len(l.Blocks) > len(loop.Blocks) {
			loop = l
		}
	}
	df := dataflow.Reach(g)
	lg := ldg.Build(m, g, df, loop, nil)
	units := static.Annotate(g, df, lg, rec)
	return lg, units
}

// chain defines the test universe's list-node class: an int payload, a ref
// to a co-allocated child, and a next pointer.
func chain(t *testing.T) (*ir.Program, *classfile.Class) {
	t.Helper()
	u := classfile.NewUniverse()
	c := u.MustDefineClass("Node", nil,
		classfile.FieldSpec{Name: "val", Kind: value.KindInt},
		classfile.FieldSpec{Name: "child", Kind: value.KindRef},
		classfile.FieldSpec{Name: "next", Kind: value.KindRef},
	)
	return ir.NewProgram(u), c
}

func nodeAt(t *testing.T, lg *ldg.Graph, op ir.Op) *ldg.Node {
	t.Helper()
	for _, n := range lg.Nodes {
		if n.Op == op {
			return n
		}
	}
	t.Fatalf("no %s node in graph:\n%s", op, lg)
	return nil
}

// TestArrayWalkStride: an array load whose index advances by a constant
// step each iteration is predicted to stride by step * element size.
func TestArrayWalkStride(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind value.Kind
		step int32
		want int64
	}{
		{"int-step1", value.KindInt, 1, 4},
		{"int-step3", value.KindInt, 3, 12},
		{"long-step1", value.KindLong, 1, 8},
		{"backward", value.KindInt, -1, -4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, _ := chain(t)
			b := ir.NewBuilder(p, nil, "walk", value.KindInt, value.KindRef, value.KindInt)
			arr, n := b.Param(0), b.Param(1)
			i := b.ConstInt(0)
			cond, body := b.NewLabel(), b.NewLabel()
			b.Goto(cond)
			b.Bind(body)
			v := b.ArrayLoad(tc.kind, arr, i)
			b.Sink(v)
			b.IncInt(i, tc.step)
			b.Bind(cond)
			b.Br(value.KindInt, ir.CondLT, i, n, body)
			b.Return(i)
			lg, units := annotateOuter(t, b.Finish(), nil)

			al := nodeAt(t, lg, ir.OpArrayLoad)
			if !al.HasInter || al.Inter != tc.want {
				t.Errorf("arrayload inter = (%d,%v), want %d", al.Inter, al.HasInter, tc.want)
			}
			if al.InterRatio != 0 || al.InterSamples != 0 {
				t.Error("static predictions carry no dominance statistics")
			}
			if units == 0 {
				t.Error("the analysis must charge the compile-time ledger")
			}
		})
	}
}

// TestPhasedStrideDefeatsAnalysis: an index advanced by different steps on
// different paths has no single compile-time stride — the analyzer must
// refuse to predict (the failure dynamic inspection does not share).
func TestPhasedStrideDefeatsAnalysis(t *testing.T) {
	p, _ := chain(t)
	b := ir.NewBuilder(p, nil, "phased", value.KindInt, value.KindRef, value.KindInt, value.KindInt)
	arr, n, flag := b.Param(0), b.Param(1), b.Param(2)
	i := b.ConstInt(0)
	cond, body, odd, step := b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	v := b.ArrayLoad(value.KindInt, arr, i)
	b.Sink(v)
	b.BrIntZero(ir.CondNE, flag, odd)
	b.IncInt(i, 1)
	b.Goto(step)
	b.Bind(odd)
	b.IncInt(i, 3)
	b.Bind(step)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	b.Return(i)

	rec := &decisionLog{}
	lg, _ := annotateOuter(t, b.Finish(), rec)
	al := nodeAt(t, lg, ir.OpArrayLoad)
	if al.HasInter {
		t.Errorf("phased stride must not be predicted, got inter=%d", al.Inter)
	}
	found := false
	for _, d := range rec.decisions {
		if d.Instr == al.Instr && d.Pair == -1 {
			found = true
			if d.Reason != telemetry.FilterNoPattern || d.Src != static.Source {
				t.Errorf("decision = %s src=%q, want FILTER_NO_PATTERN src=static", d.Reason, d.Src)
			}
		}
	}
	if !found {
		t.Error("rejected candidate must be reported to the recorder")
	}
}

// TestInvariantIndexNoPrediction: a loop-invariant index gives the array
// load no inter-iteration stride.
func TestInvariantIndexNoPrediction(t *testing.T) {
	p, _ := chain(t)
	b := ir.NewBuilder(p, nil, "inv", value.KindInt, value.KindRef, value.KindInt)
	arr, n := b.Param(0), b.Param(1)
	j := b.ConstInt(7)
	i := b.ConstInt(0)
	cond, body := b.NewLabel(), b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	v := b.ArrayLoad(value.KindInt, arr, j)
	b.Sink(v)
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	b.Return(i)
	lg, _ := annotateOuter(t, b.Finish(), nil)
	if al := nodeAt(t, lg, ir.OpArrayLoad); al.HasInter {
		t.Errorf("invariant index predicted inter=%d", al.Inter)
	}
}

// TestRefChasePredictsAllocationOrder: a getfield whose base is reloaded
// each iteration (cur = cur.next) is predicted to advance by the class's
// instance size — the allocation-order assumption. The recurrent
// next -> val edge is the field-offset difference; the zero-stride
// self-edge next -> next is rejected.
func TestRefChasePredictsAllocationOrder(t *testing.T) {
	p, cls := chain(t)
	fVal, fNext := cls.FieldByName("val"), cls.FieldByName("next")
	b := ir.NewBuilder(p, nil, "chase", value.KindInt, value.KindRef, value.KindInt)
	n := b.Param(1)
	cur := b.NewReg()
	b.MoveTo(cur, b.Param(0))
	i := b.ConstInt(0)
	cond, body := b.NewLabel(), b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	v := b.GetField(cur, fVal)
	b.Sink(v)
	nxt := b.GetField(cur, fNext)
	b.MoveTo(cur, nxt)
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	b.Return(i)
	lg, _ := annotateOuter(t, b.Finish(), nil)

	size := int64(cls.InstanceSize)
	for _, n := range lg.Nodes {
		if !n.HasInter || n.Inter != size {
			t.Errorf("@%d %s inter = (%d,%v), want instance size %d",
				n.Instr, n.Op, n.Inter, n.HasInter, size)
		}
	}
	wantIntra := int64(fVal.Offset) - int64(fNext.Offset)
	for _, n := range lg.Nodes {
		for _, e := range n.Succs {
			if e.To.Instr == e.From.Instr {
				if e.HasIntra {
					t.Errorf("zero-stride self edge must be rejected, got %d", e.Intra)
				}
				continue
			}
			if !e.HasIntra || e.Intra != wantIntra {
				t.Errorf("recurrent edge intra = (%d,%v), want %d", e.Intra, e.HasIntra, wantIntra)
			}
		}
	}
}

// TestDirectDerefPredictsCoAllocation: a dependent load consuming the
// parent getfield's value in the same iteration is predicted co-allocated:
// parent size minus parent offset plus child displacement.
func TestDirectDerefPredictsCoAllocation(t *testing.T) {
	p, cls := chain(t)
	fVal, fChild, fNext := cls.FieldByName("val"), cls.FieldByName("child"), cls.FieldByName("next")
	b := ir.NewBuilder(p, nil, "deref", value.KindInt, value.KindRef, value.KindInt)
	n := b.Param(1)
	cur := b.NewReg()
	b.MoveTo(cur, b.Param(0))
	i := b.ConstInt(0)
	cond, body := b.NewLabel(), b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	child := b.GetField(cur, fChild)
	v := b.GetField(child, fVal)
	b.Sink(v)
	nxt := b.GetField(cur, fNext)
	b.MoveTo(cur, nxt)
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	b.Return(i)
	lg, _ := annotateOuter(t, b.Finish(), nil)

	want := int64(cls.InstanceSize) - int64(fChild.Offset) + int64(fVal.Offset)
	found := false
	for _, n := range lg.Nodes {
		for _, e := range n.Succs {
			if e.From.Op == ir.OpGetField && e.To.Op == ir.OpGetField &&
				lg.Method.Code[e.From.Instr].Field == fChild && lg.Method.Code[e.To.Instr].Field == fVal {
				found = true
				if !e.HasIntra || e.Intra != want {
					t.Errorf("deref edge intra = (%d,%v), want %d", e.Intra, e.HasIntra, want)
				}
			}
		}
	}
	if !found {
		t.Fatalf("child -> val edge missing:\n%s", lg)
	}
}

// TestIndexProvenance walks the induction-step resolver's recognizers: a
// copied index still resolves; an index stepped by a subtract or by a
// constant in the left operand resolves; an index stepped by a register
// amount, produced by a load, or copied through too many registers does
// not.
func TestIndexProvenance(t *testing.T) {
	build := func(f func(b *ir.Builder, arr, i ir.Reg)) *ir.Method {
		p, _ := chain(t)
		b := ir.NewBuilder(p, nil, "prov", value.KindInt, value.KindRef, value.KindInt, value.KindInt)
		arr, n := b.Param(0), b.Param(1)
		i := b.ConstInt(0)
		cond, body := b.NewLabel(), b.NewLabel()
		b.Goto(cond)
		b.Bind(body)
		f(b, arr, i)
		b.Bind(cond)
		b.Br(value.KindInt, ir.CondLT, i, n, body)
		b.Return(i)
		return b.Finish()
	}
	for _, tc := range []struct {
		name string
		body func(b *ir.Builder, arr, i ir.Reg)
		want int64 // 0 = no prediction
	}{
		{"copied-index", func(b *ir.Builder, arr, i ir.Reg) {
			j := b.NewReg()
			b.MoveTo(j, i)
			b.Sink(b.ArrayLoad(value.KindInt, arr, j))
			b.IncInt(i, 2)
		}, 8},
		{"sub-step", func(b *ir.Builder, arr, i ir.Reg) {
			b.Sink(b.ArrayLoad(value.KindInt, arr, i))
			two := b.ConstInt(2)
			b.ArithTo(i, ir.OpSub, value.KindInt, i, two)
		}, -8},
		{"const-on-left", func(b *ir.Builder, arr, i ir.Reg) {
			b.Sink(b.ArrayLoad(value.KindInt, arr, i))
			five := b.ConstInt(5)
			b.ArithTo(i, ir.OpAdd, value.KindInt, five, i)
		}, 20}, // i = 5 + i still steps by 5
		{"register-step", func(b *ir.Builder, arr, i ir.Reg) {
			b.Sink(b.ArrayLoad(value.KindInt, arr, i))
			b.ArithTo(i, ir.OpAdd, value.KindInt, i, b.Param(2))
		}, 0},
		{"loaded-index", func(b *ir.Builder, arr, i ir.Reg) {
			j := b.ArrayLoad(value.KindInt, arr, i)
			b.Sink(b.ArrayLoad(value.KindInt, arr, j))
			b.IncInt(i, 1)
		}, 0}, // only asserts on the load consuming j below
		{"deep-copy-chain", func(b *ir.Builder, arr, i ir.Reg) {
			j := i
			for k := 0; k < 6; k++ {
				nj := b.NewReg()
				b.MoveTo(nj, j)
				j = nj
			}
			b.Sink(b.ArrayLoad(value.KindInt, arr, j))
			b.IncInt(i, 1)
		}, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := build(tc.body)
			lg, _ := annotateOuter(t, m, nil)
			// Assert on the last arrayload in the body (the consumer).
			var al *ldg.Node
			for _, n := range lg.Nodes {
				if n.Op == ir.OpArrayLoad {
					al = n
				}
			}
			if al == nil {
				t.Fatal("no arrayload node")
			}
			if tc.want == 0 {
				if al.HasInter {
					t.Errorf("predicted inter=%d, want none", al.Inter)
				}
			} else if !al.HasInter || al.Inter != tc.want {
				t.Errorf("inter = (%d,%v), want %d", al.Inter, al.HasInter, tc.want)
			}
		})
	}
}

// TestArrayOfRefsChase: a getfield whose base is loaded from a ref array
// each iteration is an object-per-iteration walk — predicted to advance by
// the instance size; the arrayload -> getfield edge is not a getfield root
// and gets no intra prediction.
func TestArrayOfRefsChase(t *testing.T) {
	p, cls := chain(t)
	fVal := cls.FieldByName("val")
	b := ir.NewBuilder(p, nil, "refs", value.KindInt, value.KindRef, value.KindInt)
	arr, n := b.Param(0), b.Param(1)
	i := b.ConstInt(0)
	cond, body := b.NewLabel(), b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	o := b.ArrayLoad(value.KindRef, arr, i)
	b.Sink(b.GetField(o, fVal))
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	b.Return(i)
	lg, _ := annotateOuter(t, b.Finish(), nil)

	if gf := nodeAt(t, lg, ir.OpGetField); !gf.HasInter || gf.Inter != int64(cls.InstanceSize) {
		t.Errorf("getfield inter = (%d,%v), want %d", gf.Inter, gf.HasInter, cls.InstanceSize)
	}
	for _, n := range lg.Nodes {
		for _, e := range n.Succs {
			if e.From.Op == ir.OpArrayLoad && e.HasIntra {
				t.Errorf("arrayload-rooted edge predicted intra=%d", e.Intra)
			}
		}
	}
}

// TestUnresolvedClassMetadata: a getfield against a field with no class
// layout (metadata the analyzer cannot size) gets no prediction, on nodes
// and on direct-deref edges alike.
func TestUnresolvedClassMetadata(t *testing.T) {
	p, cls := chain(t)
	fChild, fNext := cls.FieldByName("child"), cls.FieldByName("next")
	b := ir.NewBuilder(p, nil, "ghost", value.KindInt, value.KindRef, value.KindInt)
	n := b.Param(1)
	cur := b.NewReg()
	b.MoveTo(cur, b.Param(0))
	i := b.ConstInt(0)
	cond, body := b.NewLabel(), b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	child := b.GetField(cur, fChild)
	v := b.GetField(child, fChild)
	b.Sink(v)
	nxt := b.GetField(cur, fNext)
	b.MoveTo(cur, nxt)
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	b.Return(i)
	m := b.Finish()

	// Sever the class layout on every getfield: the shape of a field whose
	// declaring class was never resolved.
	ghost := &classfile.Field{Name: "ghost", Kind: value.KindRef}
	for i := range m.Code {
		if m.Code[i].Op == ir.OpGetField {
			m.Code[i].Field = ghost
		}
	}
	lg, _ := annotateOuter(t, m, nil)
	for _, n := range lg.Nodes {
		if n.HasInter {
			t.Errorf("@%d predicted inter=%d without class layout", n.Instr, n.Inter)
		}
		// All offsets collapse to zero without a layout, so recurrent edges
		// reject as zero-stride and direct derefs reject for want of a size.
		for _, e := range n.Succs {
			if e.HasIntra {
				t.Errorf("@%d->@%d predicted intra=%d without class layout",
					e.From.Instr, e.To.Instr, e.Intra)
			}
		}
	}
}

// TestForeignEdgeShapeRejected: an edge pointing at a load kind outside
// the intra vocabulary (a getstatic spliced in as a dependent) gets no
// prediction — the analyzer's default arm, unreachable through ldg.Build.
func TestForeignEdgeShapeRejected(t *testing.T) {
	u := classfile.NewUniverse()
	cls := u.MustDefineClass("H", nil,
		classfile.FieldSpec{Name: "p", Kind: value.KindRef},
		classfile.FieldSpec{Name: "root", Kind: value.KindRef, Static: true},
	)
	fP, fRoot := cls.FieldByName("p"), cls.FieldByName("root")
	p := ir.NewProgram(u)
	b := ir.NewBuilder(p, nil, "foreign", value.KindInt, value.KindRef, value.KindInt)
	h, n := b.Param(0), b.Param(1)
	i := b.ConstInt(0)
	cond, body := b.NewLabel(), b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	q := b.GetField(h, fP)
	b.Sink(q)
	b.Sink(b.GetStatic(fRoot))
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	b.Return(i)
	m := b.Finish()

	g := cfg.Build(m)
	f := cfg.BuildLoops(g)
	df := dataflow.Reach(g)
	lg := ldg.Build(m, g, df, f.Loops[0], nil)
	var gf, gs *ldg.Node
	for _, n := range lg.Nodes {
		switch n.Op {
		case ir.OpGetField:
			gf = n
		case ir.OpGetStatic:
			gs = n
		}
	}
	if gf == nil || gs == nil {
		t.Fatalf("fixture nodes missing:\n%s", lg)
	}
	e := &ldg.Edge{From: gf, To: gs}
	gf.Succs = append(gf.Succs, e)
	gs.Preds = append(gs.Preds, e)
	static.Annotate(g, df, lg, nil)
	if e.HasIntra {
		t.Errorf("getfield -> getstatic edge predicted intra=%d", e.Intra)
	}
}

// TestNoPredictionShapes: candidates with no structural prediction — an
// invariant-base getfield, a getstatic, an arraylen, and edges rooted at a
// non-getfield — are all reported as FILTER_NO_PATTERN with the static
// source marker.
func TestNoPredictionShapes(t *testing.T) {
	u := classfile.NewUniverse()
	cls := u.MustDefineClass("Holder", nil,
		classfile.FieldSpec{Name: "arr", Kind: value.KindRef},
		classfile.FieldSpec{Name: "root", Kind: value.KindRef, Static: true},
	)
	fArr, fRoot := cls.FieldByName("arr"), cls.FieldByName("root")
	p := ir.NewProgram(u)
	b := ir.NewBuilder(p, nil, "shapes", value.KindInt, value.KindRef, value.KindInt)
	h, n := b.Param(0), b.Param(1)
	i := b.ConstInt(0)
	cond, body := b.NewLabel(), b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	root := b.GetStatic(fRoot)
	b.Sink(root)
	arr := b.GetField(h, fArr) // invariant base: same holder every iteration
	length := b.ArrayLen(arr)
	v := b.ArrayLoad(value.KindInt, arr, i) // index variant, base a predicted-less getfield
	b.Sink(length)
	b.Sink(v)
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	b.Return(i)

	rec := &decisionLog{}
	lg, units := annotateOuter(t, b.Finish(), rec)

	if gf := nodeAt(t, lg, ir.OpGetField); gf.HasInter {
		t.Errorf("invariant-base getfield predicted inter=%d", gf.Inter)
	}
	if gs := nodeAt(t, lg, ir.OpGetStatic); gs.HasInter {
		t.Errorf("getstatic predicted inter=%d", gs.Inter)
	}
	if al := nodeAt(t, lg, ir.OpArrayLen); al.HasInter {
		t.Errorf("arraylen predicted inter=%d", al.Inter)
	}
	// The induction analysis still sees through to the i++ step for the
	// array element load itself.
	if el := nodeAt(t, lg, ir.OpArrayLoad); !el.HasInter || el.Inter != 4 {
		t.Errorf("arrayload inter = (%d,%v), want 4", el.Inter, el.HasInter)
	}

	// getfield -> arraylen and getfield -> arrayload edges are direct
	// derefs: co-allocation places the array right after the holder, with
	// the aux and header displacements on top.
	edges := 0
	for _, nd := range lg.Nodes {
		for _, e := range nd.Succs {
			edges++
			if e.From.Op != ir.OpGetField {
				if e.HasIntra {
					t.Errorf("edge from %s must have no intra prediction", e.From.Op)
				}
				continue
			}
			base := int64(cls.InstanceSize) - int64(fArr.Offset)
			var want int64
			switch e.To.Op {
			case ir.OpArrayLen:
				want = base + int64(classfile.AuxOffset)
			case ir.OpArrayLoad:
				want = base + int64(classfile.HeaderBytes)
			default:
				continue
			}
			if want == 0 {
				continue
			}
			if !e.HasIntra || e.Intra != want {
				t.Errorf("getfield -> %s intra = (%d,%v), want %d", e.To.Op, e.Intra, e.HasIntra, want)
			}
		}
	}
	if want := uint64(3*len(lg.Nodes) + 2*edges); units != want {
		t.Errorf("units = %d, want 3/node + 2/edge = %d", units, want)
	}

	for _, d := range rec.decisions {
		if d.Src != static.Source || d.Reason != telemetry.FilterNoPattern {
			t.Errorf("decision %+v: want FILTER_NO_PATTERN with src=static", d)
		}
	}
	if len(rec.decisions) == 0 {
		t.Error("unpredicted candidates must be reported")
	}
}
