package static_test

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"reflect"
	"strings"
	"testing"

	"strider/internal/arch"
	"strider/internal/cfg"
	"strider/internal/classfile"
	"strider/internal/core/jit"
	"strider/internal/core/ldg"
	"strider/internal/dataflow"
	"strider/internal/heap"
	"strider/internal/ir"
	"strider/internal/static"
	"strider/internal/telemetry"
	"strider/internal/value"
)

// heapFixture is the jit-style fixture: a ref array of clustered objects
// whose scan loop dynamic inspection accepts, so a profiling run records a
// LOOP_ACCEPTED entry with real annotations.
type heapFixture struct {
	p    *ir.Program
	h    *heap.Heap
	m    *ir.Method
	args []value.Value
}

func newHeapFixture(t *testing.T, n uint32) *heapFixture {
	t.Helper()
	u := classfile.NewUniverse()
	specs := make([]classfile.FieldSpec, 0, 11)
	for i := 0; i < 10; i++ {
		specs = append(specs, classfile.FieldSpec{Name: fmt.Sprintf("pad%d", i), Kind: value.KindLong})
	}
	specs = append(specs, classfile.FieldSpec{Name: "val", Kind: value.KindInt})
	obj := u.MustDefineClass("Obj", nil, specs...)
	fVal := obj.FieldByName("val")
	h := heap.New(1<<20, u)
	arr, err := h.AllocArray(value.KindRef, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < n; i++ {
		o, _ := h.AllocObject(obj)
		h.Store4(o+fVal.Offset, i)
		h.Store4(h.ElemAddr(arr, i), o)
	}
	p := ir.NewProgram(u)
	b := ir.NewBuilder(p, nil, "scan", value.KindInt, value.KindRef, value.KindInt)
	arrR, nR := b.Param(0), b.Param(1)
	acc := b.ConstInt(0)
	i := b.ConstInt(0)
	cond, body := b.NewLabel(), b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	o := b.ArrayLoad(value.KindRef, arrR, i)
	v := b.GetField(o, fVal)
	b.ArithTo(acc, ir.OpAdd, value.KindInt, acc, v)
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, nR, body)
	b.Return(acc)
	m := b.Finish()
	return &heapFixture{p: p, h: h, m: m,
		args: []value.Value{value.Ref(arr), value.Int(int32(n))}}
}

// normalizeSrc strips the source marker so dynamic and replayed decision
// streams compare on substance.
func normalizeSrc(ds []telemetry.DecisionEvent) []telemetry.DecisionEvent {
	out := make([]telemetry.DecisionEvent, len(ds))
	for i, d := range ds {
		d.Src = ""
		out[i] = d
	}
	return out
}

// TestProfileRoundTrip is the satellite property: record a dynamic run's
// profile, serialize it, load it back, and the PGO compilation must make
// byte-identical prefetch decisions — same generated code, same stats,
// same decision stream — without a single inspection step.
func TestProfileRoundTrip(t *testing.T) {
	fx := newHeapFixture(t, 64)
	opts := jit.DefaultOptions(arch.Pentium4(), jit.InterIntra)
	prof := static.NewProfile("cell")
	opts.RecordProfile = prof
	dynRec := &decisionLog{}
	opts.Rec = dynRec
	dyn := jit.Compile(fx.p, fx.h, fx.m, fx.args, opts)
	if prof.Len() == 0 {
		t.Fatal("profiling run recorded nothing")
	}

	var buf bytes.Buffer
	if err := prof.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()
	loaded, err := static.LoadFor(bytes.NewReader(saved), "cell")
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saved, buf2.Bytes()) {
		t.Error("save -> load -> save must be byte-identical")
	}

	pgoOpts := jit.DefaultOptions(arch.Pentium4(), jit.InterIntra)
	pgoOpts.Predict = jit.PredictPGO
	pgoOpts.Profile = loaded
	pgoRec := &decisionLog{}
	pgoOpts.Rec = pgoRec
	pgo := jit.Compile(fx.p, fx.h, fx.m, fx.args, pgoOpts)

	if !reflect.DeepEqual(dyn.Code, pgo.Code) {
		t.Error("PGO replay must generate byte-identical code")
	}
	if dyn.Prefetch != pgo.Prefetch {
		t.Errorf("prefetch stats diverge: dyn %+v, pgo %+v", dyn.Prefetch, pgo.Prefetch)
	}
	if pgo.InspectSteps != 0 {
		t.Errorf("PGO replay ran %d inspection steps, want 0", pgo.InspectSteps)
	}
	if dyn.InspectSteps == 0 {
		t.Error("the dynamic run must have paid for inspection")
	}
	if !reflect.DeepEqual(normalizeSrc(dynRec.decisions), normalizeSrc(pgoRec.decisions)) {
		t.Errorf("decision streams diverge:\ndyn %+v\npgo %+v", dynRec.decisions, pgoRec.decisions)
	}
	for _, d := range pgoRec.decisions {
		if d.Src != static.PGOSource {
			t.Errorf("replayed decision %+v lacks the pgo source marker", d)
		}
	}
}

// TestProfileMissFallsBackToDynamic: with no usable profile entry the
// compiler emits LOOP_PGO_MISS and pays for dynamic inspection, ending at
// the same decisions a first run makes.
func TestProfileMissFallsBackToDynamic(t *testing.T) {
	fx := newHeapFixture(t, 64)
	dyn := jit.Compile(fx.p, fx.h, fx.m, fx.args, jit.DefaultOptions(arch.Pentium4(), jit.InterIntra))

	opts := jit.DefaultOptions(arch.Pentium4(), jit.InterIntra)
	opts.Predict = jit.PredictPGO
	opts.Profile = static.NewProfile("cell") // empty: every loop misses
	rec := &loopLog{}
	opts.Rec = rec
	pgo := jit.Compile(fx.p, fx.h, fx.m, fx.args, opts)

	if !reflect.DeepEqual(dyn.Code, pgo.Code) || dyn.Prefetch != pgo.Prefetch {
		t.Error("a full profile miss must reproduce the dynamic compilation")
	}
	if pgo.InspectSteps == 0 {
		t.Error("the fallback must pay for inspection")
	}
	misses := 0
	for _, e := range rec.loops {
		if e.Verdict == telemetry.LoopPGOMiss {
			misses++
			if e.Src != static.PGOSource {
				t.Errorf("miss event src = %q, want pgo", e.Src)
			}
		}
	}
	if misses == 0 {
		t.Error("no LOOP_PGO_MISS emitted")
	}
}

type loopLog struct {
	telemetry.Nop
	loops []telemetry.LoopEvent
}

func (l *loopLog) Loop(e telemetry.LoopEvent) { l.loops = append(l.loops, e) }

// TestLoadRejections is the table of bad inputs: corrupt framing, foreign
// payloads, version skew, and staleness all fail with their typed error
// and leave the caller to fall back to dynamic prediction.
func TestLoadRejections(t *testing.T) {
	var buf bytes.Buffer
	p := static.NewProfile("cellA")
	p.Record("m", 2, &static.LoopProfile{Verdict: telemetry.LoopSmallTrip, Trips: 3})
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	// A syntactically valid frame around a payload Load must reject.
	frame := func(body string) string {
		h := fnv.New64a()
		h.Write([]byte(body))
		return fmt.Sprintf("striderpgo %d %016x\n%s", static.Version, h.Sum64(), body)
	}

	flipped := []byte(good)
	flipped[len(flipped)-2] ^= 0xff

	for _, tc := range []struct {
		name string
		in   string
		want error
	}{
		{"empty", "", static.ErrCorrupt},
		{"no-newline", "striderpgo", static.ErrCorrupt},
		{"wrong-magic", "notaprofile 1 0000000000000000\n{}", static.ErrCorrupt},
		{"missing-fields", "striderpgo 1\n{}", static.ErrCorrupt},
		{"bad-version-field", "striderpgo one 0000000000000000\n{}", static.ErrCorrupt},
		{"future-version", strings.Replace(good, "striderpgo 1", "striderpgo 99", 1), static.ErrVersion},
		{"bad-checksum-field", "striderpgo 1 xyz\n{}", static.ErrCorrupt},
		{"checksum-mismatch", string(flipped), static.ErrCorrupt},
		{"payload-not-json", frame("not json"), static.ErrCorrupt},
		{"loop-without-body", frame(`{"cell":"c","methods":[{"name":"m","loops":[{"header":2}]}]}`), static.ErrCorrupt},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := static.Load(strings.NewReader(tc.in))
			if !errors.Is(err, tc.want) {
				t.Errorf("Load = %v, want %v", err, tc.want)
			}
		})
	}

	t.Run("stale-cell", func(t *testing.T) {
		if _, err := static.LoadFor(strings.NewReader(good), "cellB"); !errors.Is(err, static.ErrStale) {
			t.Errorf("LoadFor = %v, want ErrStale", err)
		}
		if _, err := static.LoadFor(strings.NewReader(good), "cellA"); err != nil {
			t.Errorf("matching cell must load: %v", err)
		}
	})

	t.Run("body-read-error", func(t *testing.T) {
		r := io.MultiReader(strings.NewReader("striderpgo 1 0000000000000000\n"), &errReader{})
		if _, err := static.Load(r); !errors.Is(err, static.ErrCorrupt) {
			t.Errorf("Load = %v, want ErrCorrupt", err)
		}
	})

	t.Run("load-error-propagates", func(t *testing.T) {
		if _, err := static.LoadFor(strings.NewReader("garbage"), "cellA"); !errors.Is(err, static.ErrCorrupt) {
			t.Errorf("LoadFor = %v, want ErrCorrupt", err)
		}
	})
}

// errReader fails every read, exercising Load's body-read error path.
type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, errors.New("io failure") }

// failWriter errors after a byte budget, exercising Save's error paths.
type failWriter struct{ budget int }

func (w *failWriter) Write(p []byte) (int, error) {
	if len(p) > w.budget {
		return 0, errors.New("disk full")
	}
	w.budget -= len(p)
	return len(p), nil
}

func TestSaveWriteFailure(t *testing.T) {
	p := static.NewProfile("c")
	p.Record("m", 2, &static.LoopProfile{Verdict: telemetry.LoopAccepted})
	if err := p.Save(&failWriter{budget: 0}); err == nil {
		t.Error("header write failure must surface")
	}
	if err := p.Save(&failWriter{budget: 40}); err == nil {
		t.Error("payload write failure must surface")
	}
}

// TestProfileStore covers the in-memory map semantics.
func TestProfileStore(t *testing.T) {
	p := static.NewProfile("c")
	if p.Len() != 0 || p.Loop("m", 1) != nil {
		t.Error("empty profile must be all misses")
	}
	var nilP *static.Profile
	if nilP.Loop("m", 1) != nil {
		t.Error("nil profile must be all misses")
	}
	a := &static.LoopProfile{Verdict: telemetry.LoopIncomplete}
	b := &static.LoopProfile{Verdict: telemetry.LoopAccepted}
	p.Record("m", 1, a)
	p.Record("m", 1, b) // last write wins
	p.Record("m", 7, a)
	p.Record("n", 1, a)
	if p.Len() != 3 {
		t.Errorf("Len = %d, want 3", p.Len())
	}
	if p.Loop("m", 1) != b || p.Loop("m", 7) != a || p.Loop("n", 1) != a {
		t.Error("lookups must return the recorded entries")
	}
	if p.Loop("m", 2) != nil || p.Loop("x", 1) != nil {
		t.Error("absent loops must be nil")
	}
}

// TestApplyStructureGuard: Apply refuses — leaving the graph untouched —
// whenever the recorded structure no longer matches the rebuilt graph, and
// only a LOOP_ACCEPTED record can be replayed.
func TestApplyStructureGuard(t *testing.T) {
	fx := newHeapFixture(t, 64)
	g := cfg.Build(fx.m)
	f := cfg.BuildLoops(g)
	df := dataflow.Reach(g)
	build := func() *ldg.Graph { return ldg.Build(fx.m, g, df, f.Loops[0], nil) }

	// A faithful record of the graph, hand-annotated with one accepted and
	// one rejected node so the replay exercises both arms; the edge carries
	// an accepted intra stride.
	lg := build()
	for i, n := range lg.Nodes {
		if i == 0 {
			n.HasInter, n.RawInter = false, 2 // dominant stride that failed the majority
			n.InterRatio, n.InterSamples = 0.4, 19
			continue
		}
		n.HasInter, n.Inter, n.RawInter = true, 96, 96
		n.InterRatio, n.InterSamples = 1, 19
	}
	for _, n := range lg.Nodes {
		for _, e := range n.Succs {
			e.HasIntra, e.Intra, e.RawIntra = true, 80, 80
			e.IntraRatio, e.IntraSamples = 1, 19
		}
	}
	good := static.RecordLoop(lg, telemetry.LoopAccepted, 20, false)

	mutate := func(f func(*static.LoopProfile)) *static.LoopProfile {
		cp := *good
		cp.Nodes = append([]static.NodeRecord(nil), good.Nodes...)
		cp.Edges = append([]static.EdgeRecord(nil), good.Edges...)
		f(&cp)
		return &cp
	}
	for _, tc := range []struct {
		name string
		lp   *static.LoopProfile
	}{
		{"nil", nil},
		{"wrong-verdict", mutate(func(lp *static.LoopProfile) { lp.Verdict = telemetry.LoopSmallTrip })},
		{"node-count", mutate(func(lp *static.LoopProfile) { lp.Nodes = lp.Nodes[1:] })},
		{"edge-count", mutate(func(lp *static.LoopProfile) { lp.Edges = append(lp.Edges, static.EdgeRecord{From: 98, To: 99}) })},
		{"node-instr", mutate(func(lp *static.LoopProfile) { lp.Nodes[0].Instr = 1000 })},
		{"edge-pair", mutate(func(lp *static.LoopProfile) { lp.Edges[0].From = 1000 })},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fresh := build()
			if static.Apply(fresh, tc.lp, nil) {
				t.Fatal("Apply must refuse a mismatched record")
			}
			for _, n := range fresh.Nodes {
				if n.HasInter || n.Inter != 0 {
					t.Error("a refused Apply must leave the graph untouched")
				}
			}
		})
	}

	t.Run("match", func(t *testing.T) {
		fresh := build()
		rec := &decisionLog{}
		if !static.Apply(fresh, good, rec) {
			t.Fatal("faithful record must apply")
		}
		for i, n := range fresh.Nodes {
			if i == 0 {
				if n.HasInter || n.Inter != 0 || n.RawInter != 2 || n.InterSamples != 19 {
					t.Errorf("rejected node %d not replayed: %+v", n.Instr, n)
				}
				continue
			}
			if !n.HasInter || n.Inter != 96 || n.RawInter != 96 || n.InterSamples != 19 {
				t.Errorf("node %d annotations not replayed: %+v", n.Instr, n)
			}
		}
		edges := 0
		for _, n := range fresh.Nodes {
			for _, e := range n.Succs {
				edges++
				if !e.HasIntra || e.Intra != 80 || e.RawIntra != 80 {
					t.Errorf("edge annotations not replayed: %+v", e)
				}
			}
		}
		if edges == 0 {
			t.Fatal("fixture graph must have an edge")
		}
		// The rejected node replays its FILTER_NO_PATTERN diagnostic — raw
		// stride and statistics intact — marked with the pgo source.
		if len(rec.decisions) != 1 {
			t.Fatalf("decisions = %+v, want exactly the rejected node's", rec.decisions)
		}
		d := rec.decisions[0]
		if d.Src != static.PGOSource || d.Reason != telemetry.FilterNoPattern ||
			d.Stride != 2 || d.Samples != 19 || d.Pair != -1 {
			t.Errorf("replayed decision %+v: want FILTER_NO_PATTERN src=pgo stride=2", d)
		}
	})

	t.Run("match-nil-recorder", func(t *testing.T) {
		if !static.Apply(build(), good, nil) {
			t.Error("a nil recorder must not change the verdict")
		}
	})
}
