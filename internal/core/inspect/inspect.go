// Package inspect implements object inspection, the paper's
// ultra-lightweight dynamic-profiling technique (Sec. 3.2):
//
//	"When invoked for a method containing one or more loops, the JIT
//	compiler partially interprets the method with the actual values of
//	the method's parameters and without generating any side effects,
//	executing each loop a small number of times to discover the stride
//	patterns."
//
// Side-effect freedom is achieved exactly as the paper describes: the
// inspector works on a copy of the stack frame; stores into objects are
// recorded in a hash table consulted by subsequent loads; object-creating
// instructions allocate from a private heap; method invocations are
// skipped with an unknown result (unless the interprocedural extension is
// enabled); loops preceding the target loop are interpreted only once; and
// any instruction with an unknown operand produces an unknown result.
package inspect

import (
	"strider/internal/cfg"
	"strider/internal/classfile"
	"strider/internal/core/stride"
	"strider/internal/heap"
	"strider/internal/ir"
	"strider/internal/value"
)

// Config controls one inspection run.
type Config struct {
	// Iterations is how many target-loop iterations to observe (paper: 20).
	Iterations int
	// InnerCap bounds back-edge takes per entry of a loop nested inside
	// the target, so a large inner loop cannot blow the budget.
	InnerCap int
	// StepBudget bounds the total number of interpreted instructions;
	// object inspection must stay ultra-lightweight.
	StepBudget int
	// Interprocedural steps into direct (non-virtual) calls instead of
	// skipping them — the extension the paper leaves as a trade-off.
	Interprocedural bool
	// MaxCallDepth bounds interprocedural nesting.
	MaxCallDepth int
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{Iterations: 20, InnerCap: 64, StepBudget: 100000, MaxCallDepth: 2}
}

// TripStat records observed iteration counts for a nested loop.
type TripStat struct {
	Entries int
	Iters   int
}

// Mean returns the average iterations per entry (0 when never entered).
func (t TripStat) Mean() float64 {
	if t.Entries == 0 {
		return 0
	}
	return float64(t.Iters) / float64(t.Entries)
}

// Result is the outcome of inspecting one target loop.
type Result struct {
	// Traces maps an instruction index (an LDG node) to its recorded
	// executions.
	Traces map[int][]stride.Rec
	// TargetTrips is the number of target-loop iterations started (header
	// entries). For a loop exiting from its header test this is the real
	// trip count plus one (the final, failing test); for a loop exiting
	// mid-body it equals the trip count. The off-by-one is immaterial for
	// both consumers (the small-trip-count rule and the iteration cap).
	TargetTrips int
	// NaturalExit is true when the loop exited by its own condition before
	// the iteration cap — the signal for a small trip count.
	NaturalExit bool
	// NestedTrips has per-nested-loop trip statistics.
	NestedTrips map[*cfg.Loop]TripStat
	// Steps is the number of instructions interpreted (the dominant term
	// of the prefetch phase's compile-time cost).
	Steps int
	// Completed is true when the target loop was reached and at least two
	// iterations were observed.
	Completed bool
}

type inspector struct {
	cfg     Config
	prog    *ir.Program
	heap    *heap.Heap
	graph   *cfg.Graph
	forest  *cfg.LoopForest
	target  *cfg.Loop
	record  map[int]bool // instruction indices to trace
	res     *Result
	steps   int
	aborted bool

	// calleeCFG caches per-method control-flow views for interprocedural
	// frames. Callee pcs must never index the target method's graph: block
	// and loop queries inside a callee go through its own view.
	calleeCFG map[*ir.Method]*frameView

	// Side-effect isolation.
	writes   map[uint32]value.Value // store hash table (paper Sec. 3.2)
	priv     []byte                 // private heap backing
	privBase uint32
	privTop  uint32

	// Per-loop back-edge counters, reset on loop entry.
	backCount map[*cfg.Loop]int

	curIter int // current target-loop iteration, -1 before entry
}

// Inspect partially interprets method m (whose CFG and loop forest are
// given) with the actual argument values args, observing the loads listed
// in record within the target loop. The heap is never written.
func Inspect(prog *ir.Program, h *heap.Heap, g *cfg.Graph, f *cfg.LoopForest,
	target *cfg.Loop, record []int, args []value.Value, cfgn Config) *Result {

	ins := &inspector{
		cfg:       cfgn,
		prog:      prog,
		heap:      h,
		graph:     g,
		forest:    f,
		target:    target,
		record:    make(map[int]bool, len(record)),
		writes:    make(map[uint32]value.Value),
		privBase:  (h.Size() + 0xFFF) &^ 0xFFF,
		backCount: make(map[*cfg.Loop]int),
		curIter:   -1,
		res: &Result{
			Traces:      make(map[int][]stride.Rec),
			NestedTrips: make(map[*cfg.Loop]TripStat),
		},
	}
	ins.privTop = ins.privBase
	for _, i := range record {
		ins.record[i] = true
	}

	m := g.Method
	regs := make([]value.Value, m.NumRegs)
	for i := range regs {
		regs[i] = value.Unknown
	}
	for i, a := range args {
		if i < len(regs) {
			regs[i] = a
		}
	}
	ins.run(m, regs, 0)
	ins.res.Steps = ins.steps
	ins.res.Completed = ins.res.TargetTrips >= 2
	return ins.res
}

// --- memory model -----------------------------------------------------------

func (ins *inspector) isPrivate(addr uint32) bool { return addr >= ins.privBase }

// loadRaw reads a 32-bit word through the inspection memory model:
// the store hash table first, then the private heap, then the real heap.
func (ins *inspector) loadRaw(addr uint32) (uint32, bool) {
	if v, ok := ins.writes[addr]; ok {
		return v.Bits(), true
	}
	if ins.isPrivate(addr) {
		off := addr - ins.privBase
		if int(off)+4 > len(ins.priv) {
			return 0, false
		}
		b := ins.priv[off : off+4]
		return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, true
	}
	if !ins.heap.Valid(addr, 4) {
		return 0, false
	}
	return ins.heap.Load4(addr), true
}

// loadValue reads a value of the given kind at addr. Wide kinds read the
// hash table by their base address, so mixed-width aliasing is not
// modelled — fields never overlap, which is all we need.
func (ins *inspector) loadValue(k value.Kind, addr uint32) value.Value {
	if v, ok := ins.writes[addr]; ok {
		if v.K == k {
			return v
		}
		return value.Unknown
	}
	switch k {
	case value.KindLong, value.KindDouble:
		lo, ok1 := ins.loadRaw(addr)
		hi, ok2 := ins.loadRaw(addr + 4)
		if !ok1 || !ok2 {
			return value.Unknown
		}
		return value.Value{K: k, B: uint64(lo) | uint64(hi)<<32}
	default:
		w, ok := ins.loadRaw(addr)
		if !ok {
			return value.Unknown
		}
		return value.Value{K: k, B: uint64(w)}
	}
}

// storeValue records a store in the hash table ("we interpret each store
// instruction into an object by recording the updated address and the
// value in a hash table").
func (ins *inspector) storeValue(addr uint32, v value.Value) {
	ins.writes[addr] = v
}

// classAt resolves the class header word of the object at addr through the
// inspection memory model.
func (ins *inspector) classAt(addr uint32) *classfile.Class {
	w, ok := ins.loadRaw(addr + classfile.ClassIDOffset)
	if !ok {
		return nil
	}
	return ins.prog.Universe.ByID(w)
}

func (ins *inspector) arrayLenAt(addr uint32) (uint32, bool) {
	return ins.loadRaw(addr + classfile.AuxOffset)
}

// allocPrivate allocates size bytes in the private heap and stamps the
// header directly into the private backing store.
func (ins *inspector) allocPrivate(classID, aux, size uint32) uint32 {
	addr := ins.privTop
	ins.privTop += size
	need := int(ins.privTop - ins.privBase)
	for len(ins.priv) < need {
		ins.priv = append(ins.priv, make([]byte, need-len(ins.priv)+4096)...)
	}
	off := addr - ins.privBase
	put := func(o, v uint32) {
		b := ins.priv[off+o : off+o+4]
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	put(classfile.ClassIDOffset, classID)
	put(classfile.AuxOffset, aux)
	return addr
}

// --- execution ---------------------------------------------------------------

// frameView is the control-flow view of one activation's method: its own
// graph and loop forest, so loop bounding in interprocedural callees
// reasons about the callee's loops, not the caller's.
type frameView struct {
	graph  *cfg.Graph
	forest *cfg.LoopForest
}

// viewOf returns the control-flow view for method m, building and caching
// it for callees. The target method reuses the analysis the compiler
// already ran.
func (ins *inspector) viewOf(m *ir.Method) *frameView {
	if m == ins.graph.Method {
		return &frameView{graph: ins.graph, forest: ins.forest}
	}
	if v, ok := ins.calleeCFG[m]; ok {
		return v
	}
	g := cfg.Build(m)
	v := &frameView{graph: g, forest: cfg.BuildLoops(g)}
	if ins.calleeCFG == nil {
		ins.calleeCFG = make(map[*ir.Method]*frameView)
	}
	ins.calleeCFG[m] = v
	return v
}

// loopEntered updates per-loop entry bookkeeping when control moves from
// block `from` to block `to`.
func (ins *inspector) noteTransition(from, to int) {
	toLoop := ins.forest.LoopOfBlock(to)
	for l := toLoop; l != nil; l = l.Parent {
		if from < 0 || !l.Contains(from) {
			// Entering loop l afresh.
			ins.backCount[l] = 0
			if l != ins.target && ins.target.Contains(l.Header) {
				st := ins.res.NestedTrips[l]
				st.Entries++
				st.Iters++ // entering executes the first iteration
				ins.res.NestedTrips[l] = st
			}
		}
	}
}

// run interprets one method activation. depth > 0 only in interprocedural
// mode. It returns the return value (possibly unknown) and whether the
// inspection should continue in the caller.
func (ins *inspector) run(m *ir.Method, regs []value.Value, depth int) value.Value {
	isTargetFrame := m == ins.graph.Method && depth == 0
	fv := ins.viewOf(m)
	pc := 0
	curBlock := -1
	n := len(m.Code)
	for pc >= 0 && pc < n {
		if ins.steps >= ins.cfg.StepBudget {
			ins.aborted = true
			return value.Unknown
		}
		ins.steps++

		if isTargetFrame {
			blk := ins.graph.BlockOf(pc).ID
			if blk != curBlock {
				ins.noteTransition(curBlock, blk)
				// First arrival at the target loop header starts iteration 0.
				if blk == ins.target.Header && ins.curIter < 0 {
					ins.curIter = 0
					ins.res.TargetTrips = 1
				}
				curBlock = blk
			}
		}

		in := &m.Code[pc]
		next := pc + 1
		switch in.Op {
		case ir.OpNop:
		case ir.OpConst:
			regs[in.Dst] = constValue(in)
		case ir.OpMove:
			regs[in.Dst] = regs[in.A]
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpAnd, ir.OpOr,
			ir.OpXor, ir.OpShl, ir.OpShr, ir.OpUshr:
			a, b := regs[in.A], regs[in.B]
			if a.K != in.Kind || b.K != in.Kind {
				regs[in.Dst] = value.Unknown
			} else if v, err := ir.EvalBinary(in.Op, in.Kind, a, b); err != nil {
				regs[in.Dst] = value.Unknown
			} else {
				regs[in.Dst] = v
			}
		case ir.OpNeg:
			if a := regs[in.A]; a.K == in.Kind {
				v, err := ir.EvalUnary(in.Op, in.Kind, a)
				if err != nil {
					v = value.Unknown
				}
				regs[in.Dst] = v
			} else {
				regs[in.Dst] = value.Unknown
			}
		case ir.OpConv:
			if a := regs[in.A]; a.K.IsNumeric() {
				v, err := ir.Convert(in.Kind, a)
				if err != nil {
					v = value.Unknown
				}
				regs[in.Dst] = v
			} else {
				regs[in.Dst] = value.Unknown
			}

		case ir.OpGoto:
			next = in.Target
		case ir.OpBr:
			a, b := regs[in.A], regs[in.B]
			if a.IsUnknown() || b.IsUnknown() || a.K != b.K {
				next = ins.unknownBranch(m, isTargetFrame, pc, in.Target)
			} else if taken, err := ir.EvalCond(in.Cond, in.Kind, a, b); err != nil {
				next = ins.unknownBranch(m, isTargetFrame, pc, in.Target)
			} else if taken {
				next = in.Target
			}
		case ir.OpReturn:
			// Returning while inside the target loop is a natural exit of
			// the loop (e.g. a successful search) — the small-trip-count
			// signal must fire for such loops too.
			if isTargetFrame && ins.curIter >= 0 {
				ins.res.NaturalExit = true
			}
			if in.A == ir.NoReg {
				return value.Unknown
			}
			return regs[in.A]

		case ir.OpGetField:
			regs[in.Dst] = ins.getField(isTargetFrame, pc, in, regs[in.A])
		case ir.OpPutField:
			if obj := regs[in.A]; obj.IsRef() && !obj.IsNull() {
				ins.storeValue(obj.Ref()+in.Field.Offset, regs[in.B])
			}
		case ir.OpGetStatic:
			// Statics live outside the simulated heap; read the real slot
			// unless shadowed by an inspected putstatic (keyed by a
			// synthetic address derived from the field identity).
			regs[in.Dst] = ins.prog.Universe.GetStatic(in.Field)
		case ir.OpPutStatic:
			// Suppressed: inspection must not change statics, and loads of
			// statics are rare enough that shadowing them is not worth a
			// second table. The result read by a later getstatic is the
			// pre-inspection value, which is safe (just less precise).
		case ir.OpArrayLoad:
			regs[in.Dst] = ins.arrayLoad(isTargetFrame, pc, in, regs[in.A], regs[in.B])
		case ir.OpArrayStore:
			ins.arrayStore(in, regs[in.A], regs[in.B], regs[in.C])
		case ir.OpArrayLen:
			arr := regs[in.A]
			if arr.IsRef() && !arr.IsNull() {
				addr := arr.Ref() + classfile.AuxOffset
				ins.recordLoad(isTargetFrame, pc, addr)
				if l, ok := ins.arrayLenAt(arr.Ref()); ok {
					regs[in.Dst] = value.Int(int32(l))
					break
				}
			}
			regs[in.Dst] = value.Unknown

		case ir.OpNew:
			addr := ins.allocPrivate(in.Class.ID, 0, in.Class.InstanceSize)
			regs[in.Dst] = value.Ref(addr)
		case ir.OpNewArray:
			ln := regs[in.A]
			if ln.K != value.KindInt || ln.Int() < 0 || ln.Int() > 1<<20 {
				regs[in.Dst] = value.Unknown
				break
			}
			c := ins.prog.Universe.ArrayClass(in.Kind)
			addr := ins.allocPrivate(c.ID, uint32(ln.Int()), c.ArraySize(uint32(ln.Int())))
			regs[in.Dst] = value.Ref(addr)

		case ir.OpCall:
			regs2 := ins.callArgs(in.Callee.NumRegs, in.Args, regs)
			if ins.cfg.Interprocedural && depth < ins.cfg.MaxCallDepth && regs2 != nil {
				ret := ins.run(in.Callee, regs2, depth+1)
				if in.Dst != ir.NoReg {
					regs[in.Dst] = ret
				}
			} else if in.Dst != ir.NoReg {
				// "We interpret a method invocation by simply skipping it
				// and assuming that the return value, if any, is unknown."
				regs[in.Dst] = value.Unknown
			}
		case ir.OpCallVirt:
			// In interprocedural mode a virtual call can still be stepped
			// into when the receiver is a known object: its dynamic class
			// is read from the (inspected) header — dynamically inspecting
			// the object resolves the dispatch.
			var resolved *ir.Method
			if recv := regs[in.Args[0]]; recv.IsRef() && !recv.IsNull() {
				if c := ins.classAt(recv.Ref()); c != nil {
					resolved = ins.prog.LookupVirtual(c, in.Name)
				}
			}
			if ins.cfg.Interprocedural && depth < ins.cfg.MaxCallDepth && resolved != nil {
				ret := ins.run(resolved, ins.callArgs(resolved.NumRegs, in.Args, regs), depth+1)
				if in.Dst != ir.NoReg {
					regs[in.Dst] = ret
				}
			} else if in.Dst != ir.NoReg {
				regs[in.Dst] = value.Unknown
			}
		case ir.OpSink:
			// Observable output — suppressed during inspection.
		case ir.OpPrefetch, ir.OpSpecLoad:
			// Source programs never contain these; compiled code is not
			// re-inspected. Treat defensively as no-ops.
			if in.Op == ir.OpSpecLoad && in.Dst != ir.NoReg {
				regs[in.Dst] = value.Unknown
			}
		}
		if next >= 0 && next < n {
			next = ins.transfer(fv, isTargetFrame, pc, next)
		}
		if ins.aborted || next < 0 {
			return value.Unknown
		}
		pc = next
	}
	return value.Unknown
}

func constValue(in *ir.Instr) value.Value {
	switch in.Kind {
	case value.KindInt:
		return value.Int(int32(in.Imm))
	case value.KindLong:
		return value.Long(in.Imm)
	case value.KindFloat:
		return value.Float(float32(in.F))
	case value.KindDouble:
		return value.Double(in.F)
	case value.KindRef:
		return value.Null
	}
	return value.Unknown
}

// callArgs builds a callee frame; nil when any frame can't be built.
func (ins *inspector) callArgs(numRegs int, args []ir.Reg, regs []value.Value) []value.Value {
	out := make([]value.Value, numRegs)
	for i := range out {
		out[i] = value.Unknown
	}
	for i, r := range args {
		out[i] = regs[r]
	}
	return out
}

func (ins *inspector) getField(isTarget bool, pc int, in *ir.Instr, obj value.Value) value.Value {
	if !obj.IsRef() || obj.IsNull() {
		return value.Unknown
	}
	addr := obj.Ref() + in.Field.Offset
	ins.recordLoad(isTarget, pc, addr)
	return ins.loadValue(in.Field.Kind, addr)
}

func (ins *inspector) arrayLoad(isTarget bool, pc int, in *ir.Instr, arr, idx value.Value) value.Value {
	if !arr.IsRef() || arr.IsNull() || idx.K != value.KindInt {
		return value.Unknown
	}
	c := ins.classAt(arr.Ref())
	if c == nil || !c.IsArray {
		return value.Unknown
	}
	ln, ok := ins.arrayLenAt(arr.Ref())
	if !ok || idx.Int() < 0 || uint32(idx.Int()) >= ln {
		return value.Unknown
	}
	addr := arr.Ref() + classfile.HeaderBytes + uint32(idx.Int())*c.ElemSize
	ins.recordLoad(isTarget, pc, addr)
	return ins.loadValue(in.Kind, addr)
}

func (ins *inspector) arrayStore(in *ir.Instr, arr, idx, src value.Value) {
	if !arr.IsRef() || arr.IsNull() || idx.K != value.KindInt {
		return
	}
	c := ins.classAt(arr.Ref())
	if c == nil || !c.IsArray {
		return
	}
	ln, ok := ins.arrayLenAt(arr.Ref())
	if !ok || idx.Int() < 0 || uint32(idx.Int()) >= ln {
		return
	}
	ins.storeValue(arr.Ref()+classfile.HeaderBytes+uint32(idx.Int())*c.ElemSize, src)
}

// recordLoad appends an address sample for an observed LDG node.
func (ins *inspector) recordLoad(isTarget bool, pc int, addr uint32) {
	if !isTarget || ins.curIter < 0 || !ins.record[pc] {
		return
	}
	ins.res.Traces[pc] = append(ins.res.Traces[pc], stride.Rec{Iter: ins.curIter, Addr: addr})
}

// --- loop-aware branching -----------------------------------------------------

// transfer applies the loop protocol to every control transfer — explicit
// branches and block fallthroughs alike — from instruction pc to
// instruction next, returning the adjusted next pc (or -1 to stop the
// inspection). pc and next index fv's method; all block and loop queries
// go through fv so callee frames never consult the target's graph.
func (ins *inspector) transfer(fv *frameView, isTargetFrame bool, pc, next int) int {
	fromBlk := fv.graph.BlockOf(pc).ID
	toBlk := fv.graph.BlockOf(next).ID
	if fromBlk == toBlk {
		return next
	}
	l := ins.backEdgeLoop(fv.forest, fromBlk, toBlk)
	if !isTargetFrame {
		// Inside an interprocedural callee: bound every loop by InnerCap.
		if l != nil {
			ins.backCount[l]++
			if ins.backCount[l] >= ins.cfg.InnerCap {
				return ins.exitOf(fv.graph, l)
			}
		}
		return next
	}
	if l == nil {
		// Not a back edge. Exiting the target loop ends the inspection.
		if ins.curIter >= 0 && !ins.target.Contains(toBlk) {
			ins.res.NaturalExit = true
			return -1
		}
		return next
	}
	switch {
	case l == ins.target:
		if ins.curIter+1 >= ins.cfg.Iterations {
			// Observed enough; stop (forced exit) without starting
			// another iteration.
			return -1
		}
		ins.curIter++
		ins.res.TargetTrips = ins.curIter + 1
		return next
	case ins.curIter < 0:
		// A loop preceding the target: "we interpret the body of such a
		// loop only once" — never take its back edge.
		return ins.exitOf(fv.graph, l)
	default:
		// A loop nested inside the target loop.
		st := ins.res.NestedTrips[l]
		st.Iters++
		ins.res.NestedTrips[l] = st
		ins.backCount[l]++
		if ins.backCount[l] >= ins.cfg.InnerCap {
			out := ins.exitOf(fv.graph, l)
			if out >= 0 && !ins.target.ContainsInstr(ins.graph, out) {
				return -1 // forced exit left the target loop: stop quietly
			}
			return out
		}
		return next
	}
}

// backEdgeLoop returns the loop (in forest f) for which the block transfer
// from->to is a back edge, or nil: `to` must be the loop's header and
// `from` one of its member blocks.
func (ins *inspector) backEdgeLoop(f *cfg.LoopForest, from, to int) *cfg.Loop {
	l := f.LoopOfBlock(to)
	for ; l != nil; l = l.Parent {
		if l.Header == to {
			break
		}
	}
	if l == nil || !l.Contains(from) {
		return nil
	}
	return l
}

// unknownBranch picks a successor for a branch whose condition is unknown
// (typically the result of a skipped method invocation). The choice aims
// to maximize the number of target-loop iterations observed:
//
//  1. prefer the edge that stays inside the target loop;
//  2. when both stay inside and the branch sits in a loop nested within
//     the target, prefer the edge that exits the nested loop — such
//     branches usually guard early exits of small scanning loops, and
//     leaving them advances the target iteration;
//  3. otherwise prefer the target loop's back edge, then fall through.
func (ins *inspector) unknownBranch(m *ir.Method, isTargetFrame bool, pc, target int) int {
	fall := pc + 1
	if !isTargetFrame || ins.curIter < 0 {
		return fall
	}
	inT := func(i int) bool {
		return i < len(m.Code) && ins.target.ContainsInstr(ins.graph, i)
	}
	takenIn, fallIn := inT(target), inT(fall)
	choose := fall
	switch {
	case takenIn && !fallIn:
		choose = target
	case !takenIn && fallIn:
		choose = fall
	case takenIn && fallIn:
		inner := ins.forest.InnermostAt(pc)
		if inner != nil && inner != ins.target && ins.target.IsAncestorOf(inner) {
			takenExits := !inner.ContainsInstr(ins.graph, target)
			fallExits := !inner.ContainsInstr(ins.graph, fall)
			if takenExits != fallExits {
				if takenExits {
					choose = target
				}
				break
			}
		}
		// Prefer the target loop's back edge to keep iterating.
		if ins.backEdgeLoop(ins.forest, ins.graph.BlockOf(pc).ID, ins.graph.BlockOf(target).ID) == ins.target {
			choose = target
		}
	}
	return choose
}

// exitOf returns the destination instruction of the loop's first exit
// edge in graph g, or -1 when the loop has no exit (inspection then
// stops).
func (ins *inspector) exitOf(g *cfg.Graph, l *cfg.Loop) int {
	if len(l.ExitEdges) == 0 {
		return -1
	}
	return g.Blocks[l.ExitEdges[0].To].Start
}
