package inspect

import (
	"testing"

	"strider/internal/cfg"
	"strider/internal/classfile"
	"strider/internal/core/stride"
	"strider/internal/heap"
	"strider/internal/ir"
	"strider/internal/value"
)

// fixture builds a universe with Obj{val int, child ref} / Child{x int},
// a heap holding an Obj[] array of n clustered objects (Obj then Child
// co-allocated), and returns everything needed to inspect methods.
type fixture struct {
	u        *classfile.Universe
	h        *heap.Heap
	p        *ir.Program
	objClass *classfile.Class
	chClass  *classfile.Class
	fVal     *classfile.Field
	fChild   *classfile.Field
	fX       *classfile.Field
	arr      uint32
	n        uint32
}

func newFixture(t *testing.T, n uint32) *fixture {
	t.Helper()
	u := classfile.NewUniverse()
	obj := u.MustDefineClass("Obj", nil,
		classfile.FieldSpec{Name: "val", Kind: value.KindInt},
		classfile.FieldSpec{Name: "child", Kind: value.KindRef},
	)
	ch := u.MustDefineClass("Child", nil,
		classfile.FieldSpec{Name: "x", Kind: value.KindInt},
	)
	h := heap.New(1<<20, u)
	arr, err := h.AllocArray(value.KindRef, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < n; i++ {
		o, _ := h.AllocObject(obj)
		c, _ := h.AllocObject(ch)
		h.Store4(o+obj.FieldByName("val").Offset, i*7)
		h.Store4(o+obj.FieldByName("child").Offset, c)
		h.Store4(c+ch.FieldByName("x").Offset, i*100)
		h.Store4(h.ElemAddr(arr, i), o)
	}
	return &fixture{
		u: u, h: h, p: ir.NewProgram(u),
		objClass: obj, chClass: ch,
		fVal:   obj.FieldByName("val"),
		fChild: obj.FieldByName("child"),
		fX:     ch.FieldByName("x"),
		arr:    arr, n: n,
	}
}

// analyze prepares cfg/loops/dataflow and the record list (all LDG
// candidates in the method).
func analyze(t *testing.T, m *ir.Method) (*cfg.Graph, *cfg.LoopForest, []int) {
	t.Helper()
	g := cfg.Build(m)
	f := cfg.BuildLoops(g)
	var record []int
	for i := range m.Code {
		if m.Code[i].Op.IsLDGCandidate() {
			record = append(record, i)
		}
	}
	return g, f, record
}

func heapSnapshot(h *heap.Heap) []byte {
	out := make([]byte, h.Top())
	for i := uint32(16); i+4 <= h.Top(); i += 4 {
		w := h.Load4(i)
		out[i] = byte(w)
		out[i+1] = byte(w >> 8)
		out[i+2] = byte(w >> 16)
		out[i+3] = byte(w >> 24)
	}
	return out
}

// scanMethod: for i in 0..n-1 { o = arr[i]; v = o.val; c = o.child; x = c.x }
func scanMethod(fx *fixture) (*ir.Method, map[string]int) {
	b := ir.NewBuilder(fx.p, nil, "scan", value.KindInt, value.KindRef, value.KindInt)
	arr, n := b.Param(0), b.Param(1)
	acc := b.ConstInt(0)
	idx := map[string]int{}
	i, end := func() (ir.Reg, func()) {
		i := b.ConstInt(0)
		cond := b.NewLabel()
		body := b.NewLabel()
		b.Goto(cond)
		b.Bind(body)
		return i, func() {
			b.IncInt(i, 1)
			b.Bind(cond)
			b.Br(value.KindInt, ir.CondLT, i, n, body)
		}
	}()
	o := b.ArrayLoad(value.KindRef, arr, i)
	idx["aaload"] = len(fx.p.Methods())*0 + lastIdx(b)
	v := b.GetField(o, fx.fVal)
	idx["val"] = lastIdx(b)
	c := b.GetField(o, fx.fChild)
	idx["child"] = lastIdx(b)
	x := b.GetField(c, fx.fX)
	idx["x"] = lastIdx(b)
	b.ArithTo(acc, ir.OpAdd, value.KindInt, acc, v)
	b.ArithTo(acc, ir.OpAdd, value.KindInt, acc, x)
	end()
	b.Return(acc)
	return b.Finish(), idx
}

// lastIdx returns the index of the most recently emitted instruction.
func lastIdx(b *ir.Builder) int { return len(b.Self().Code) - 1 }

func TestTracesAndStrides(t *testing.T) {
	fx := newFixture(t, 64)
	m, idx := scanMethod(fx)
	g, f, record := analyze(t, m)
	args := []value.Value{value.Ref(fx.arr), value.Int(int32(fx.n))}
	res := Inspect(fx.p, fx.h, g, f, f.Loops[0], record, args, DefaultConfig())

	if !res.Completed {
		t.Fatal("inspection did not complete")
	}
	if res.TargetTrips != DefaultConfig().Iterations {
		t.Errorf("trips = %d, want %d", res.TargetTrips, DefaultConfig().Iterations)
	}
	// aaload: stride 4.
	d, ok := stride.Inter(res.Traces[idx["aaload"]], stride.DefaultThreshold)
	if !ok || d != 4 {
		t.Errorf("aaload stride = (%d,%v)", d, ok)
	}
	// obj loads: cluster stride = Obj + Child size.
	cluster := int64(fx.objClass.InstanceSize + fx.chClass.InstanceSize)
	d, ok = stride.Inter(res.Traces[idx["val"]], stride.DefaultThreshold)
	if !ok || d != cluster {
		t.Errorf("val stride = (%d,%v), want %d", d, ok, cluster)
	}
	// Intra pair (child getfield, child.x): constant distance.
	s, ok := stride.Intra(res.Traces[idx["child"]], res.Traces[idx["x"]], stride.DefaultThreshold)
	if !ok {
		t.Error("co-allocated child must show an intra-iteration stride")
	}
	wantS := int64(fx.objClass.InstanceSize) + int64(fx.fX.Offset) - int64(fx.fChild.Offset)
	if s != wantS {
		t.Errorf("intra stride = %d, want %d", s, wantS)
	}
	// First recorded address must be the real first element address.
	tr := res.Traces[idx["aaload"]]
	if tr[0].Addr != fx.h.ElemAddr(fx.arr, 0) {
		t.Errorf("first aaload addr = %#x", tr[0].Addr)
	}
}

func TestSideEffectFreedom(t *testing.T) {
	fx := newFixture(t, 16)
	// Method that stores into every object and allocates.
	b := ir.NewBuilder(fx.p, nil, "mutate", value.KindInt, value.KindRef, value.KindInt)
	arr, n := b.Param(0), b.Param(1)
	i := b.ConstInt(0)
	cond := b.NewLabel()
	body := b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	o := b.ArrayLoad(value.KindRef, arr, i)
	b.PutField(o, fx.fVal, i)                  // heap store
	fresh := b.New(fx.objClass)                // allocation
	b.ArrayStore(value.KindRef, arr, i, fresh) // array store
	st := fx.objClass.FieldByName("val")
	b.PutField(fresh, st, i)
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	b.Return(i)
	m := b.Finish()
	g, f, record := analyze(t, m)

	before := heapSnapshot(fx.h)
	topBefore := fx.h.Top()
	args := []value.Value{value.Ref(fx.arr), value.Int(int32(fx.n))}
	Inspect(fx.p, fx.h, g, f, f.Loops[0], record, args, DefaultConfig())

	if fx.h.Top() != topBefore {
		t.Error("inspection allocated on the real heap")
	}
	after := heapSnapshot(fx.h)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("heap byte %#x changed: inspection has side effects", i)
		}
	}
}

func TestStoreHashTableReadBack(t *testing.T) {
	fx := newFixture(t, 8)
	// Store 42 into o.val, then load it back: the inspected load must see
	// the store through the hash table, not the real heap value.
	b := ir.NewBuilder(fx.p, nil, "rw", value.KindInt, value.KindRef, value.KindInt)
	arr, n := b.Param(0), b.Param(1)
	i := b.ConstInt(0)
	c42 := b.ConstInt(42)
	acc := b.ConstInt(0)
	cond := b.NewLabel()
	body := b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	o := b.ArrayLoad(value.KindRef, arr, i)
	b.PutField(o, fx.fVal, c42)
	v := b.GetField(o, fx.fVal)
	loadIdx := len(b.Self().Code) - 1
	b.ArithTo(acc, ir.OpAdd, value.KindInt, acc, v)
	// Exit if the loaded value is not 42 (would return early, shrinking
	// the trip count, which the assertion below would catch).
	exit := b.NewLabel()
	b.Br(value.KindInt, ir.CondNE, v, c42, exit)
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	b.Bind(exit)
	b.Return(acc)
	m := b.Finish()
	g, f, record := analyze(t, m)
	args := []value.Value{value.Ref(fx.arr), value.Int(int32(fx.n))}
	res := Inspect(fx.p, fx.h, g, f, f.Loops[0], record, args, DefaultConfig())
	if res.TargetTrips < 8 {
		t.Errorf("store hash table not consulted: loop exited after %d trips", res.TargetTrips)
	}
	if len(res.Traces[loadIdx]) < 8 {
		t.Error("read-back load not traced")
	}
	// And the real heap still holds the original values.
	o0 := fx.h.Load4(fx.h.ElemAddr(fx.arr, 0))
	if got := fx.h.Load4(o0 + fx.fVal.Offset); got != 0 {
		t.Errorf("real heap modified: val = %d", got)
	}
}

func TestPrivateHeapAllocation(t *testing.T) {
	fx := newFixture(t, 4)
	// Allocate an object, store through it, read back.
	b := ir.NewBuilder(fx.p, nil, "alloc", value.KindInt, value.KindInt)
	n := b.Param(0)
	i := b.ConstInt(0)
	acc := b.ConstInt(0)
	cond := b.NewLabel()
	body := b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	o := b.New(fx.objClass)
	b.PutField(o, fx.fVal, i)
	v := b.GetField(o, fx.fVal)
	b.ArithTo(acc, ir.OpAdd, value.KindInt, acc, v)
	// Arrays from the private heap work too.
	three := b.ConstInt(3)
	a := b.NewArray(value.KindInt, three)
	ln := b.ArrayLen(a)
	b.ArithTo(acc, ir.OpAdd, value.KindInt, acc, ln)
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	b.Return(acc)
	m := b.Finish()
	g, f, record := analyze(t, m)
	topBefore := fx.h.Top()
	res := Inspect(fx.p, fx.h, g, f, f.Loops[0], record, []value.Value{value.Int(50)}, DefaultConfig())
	if fx.h.Top() != topBefore {
		t.Error("private allocation leaked into the real heap")
	}
	if !res.Completed {
		t.Error("inspection with private allocations did not complete")
	}
	// The arraylen of the private array must have been readable (it is an
	// LDG candidate, so it was traced with a real private address).
	found := false
	for idx, tr := range res.Traces {
		if m.Code[idx].Op == ir.OpArrayLen && len(tr) > 0 {
			found = true
			if tr[0].Addr < fx.h.Size() {
				t.Error("private array traced at a real-heap address")
			}
		}
	}
	if !found {
		t.Error("arraylen of private array not traced")
	}
}

func TestPrecedingLoopInterpretedOnce(t *testing.T) {
	fx := newFixture(t, 32)
	// A warmup loop increments `start` n times; the target loop scans
	// arr[start+i]. With the preceding loop interpreted once, start == 1.
	b := ir.NewBuilder(fx.p, nil, "pre", value.KindInt, value.KindRef, value.KindInt)
	arr, n := b.Param(0), b.Param(1)
	start := b.ConstInt(0)
	w := b.ConstInt(0)
	wCond := b.NewLabel()
	wBody := b.NewLabel()
	b.Goto(wCond)
	b.Bind(wBody)
	b.IncInt(start, 1)
	b.IncInt(w, 1)
	b.Bind(wCond)
	b.Br(value.KindInt, ir.CondLT, w, n, wBody)

	i := b.ConstInt(0)
	acc := b.ConstInt(0)
	cond := b.NewLabel()
	body := b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	k := b.AddInt(start, i)
	o := b.ArrayLoad(value.KindRef, arr, k)
	loadIdx := len(b.Self().Code) - 1
	v := b.GetField(o, fx.fVal)
	b.ArithTo(acc, ir.OpAdd, value.KindInt, acc, v)
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	b.Return(acc)
	m := b.Finish()

	g, f, record := analyze(t, m)
	// Target = the second loop (program order: Roots[1]).
	if len(f.Roots) != 2 {
		t.Fatalf("expected two top-level loops, got %d", len(f.Roots))
	}
	target := f.Roots[1]
	args := []value.Value{value.Ref(fx.arr), value.Int(int32(fx.n))}
	res := Inspect(fx.p, fx.h, g, f, target, record, args, DefaultConfig())
	tr := res.Traces[loadIdx]
	if len(tr) == 0 {
		t.Fatal("no trace for target loop load")
	}
	// start must be 1 (the preceding loop body ran exactly once).
	want := fx.h.ElemAddr(fx.arr, 1)
	if tr[0].Addr != want {
		t.Errorf("first address %#x, want %#x (preceding loop must run once)", tr[0].Addr, want)
	}
}

func TestSmallTripCountDetected(t *testing.T) {
	fx := newFixture(t, 4)
	m, _ := scanMethod(fx)
	g, f, record := analyze(t, m)
	args := []value.Value{value.Ref(fx.arr), value.Int(4)}
	res := Inspect(fx.p, fx.h, g, f, f.Loops[0], record, args, DefaultConfig())
	if !res.NaturalExit {
		t.Error("loop bounded at 4 must exit naturally")
	}
	// Header entries: 4 iterations plus the final failing test.
	if res.TargetTrips != 5 {
		t.Errorf("trips = %d, want 5", res.TargetTrips)
	}
}

func TestSkippedCallYieldsUnknown(t *testing.T) {
	fx := newFixture(t, 32)
	// callee returns 0; the caller uses it as a base index. Skipping the
	// call makes the index unknown, so the loads cannot be traced.
	cb := ir.NewBuilder(fx.p, nil, "callee", value.KindInt)
	z := cb.ConstInt(0)
	cb.Return(z)
	callee := cb.Finish()

	b := ir.NewBuilder(fx.p, nil, "caller", value.KindInt, value.KindRef, value.KindInt)
	arr, n := b.Param(0), b.Param(1)
	i := b.ConstInt(0)
	acc := b.ConstInt(0)
	cond := b.NewLabel()
	body := b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	base := b.Call(callee)
	k := b.AddInt(base, i)
	o := b.ArrayLoad(value.KindRef, arr, k)
	loadIdx := len(b.Self().Code) - 1
	b.Sink(o)
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	b.Return(acc)
	m := b.Finish()
	g, f, record := analyze(t, m)
	args := []value.Value{value.Ref(fx.arr), value.Int(int32(fx.n))}

	res := Inspect(fx.p, fx.h, g, f, f.Loops[0], record, args, DefaultConfig())
	if len(res.Traces[loadIdx]) != 0 {
		t.Error("load with unknown index must not be traced when calls are skipped")
	}

	// Interprocedural mode steps into the callee and recovers the trace.
	cfgIP := DefaultConfig()
	cfgIP.Interprocedural = true
	res = Inspect(fx.p, fx.h, g, f, f.Loops[0], record, args, cfgIP)
	if len(res.Traces[loadIdx]) == 0 {
		t.Error("interprocedural inspection must trace through the callee")
	}
}

func TestStepBudget(t *testing.T) {
	fx := newFixture(t, 64)
	m, _ := scanMethod(fx)
	g, f, record := analyze(t, m)
	cfgB := DefaultConfig()
	cfgB.StepBudget = 8
	args := []value.Value{value.Ref(fx.arr), value.Int(int32(fx.n))}
	res := Inspect(fx.p, fx.h, g, f, f.Loops[0], record, args, cfgB)
	if res.Steps > 8 {
		t.Errorf("budget exceeded: %d steps", res.Steps)
	}
	if res.Completed {
		t.Error("an 8-step inspection of this loop cannot complete")
	}
}

func TestNestedTripStats(t *testing.T) {
	fx := newFixture(t, 32)
	// outer over n, inner fixed 3 iterations.
	b := ir.NewBuilder(fx.p, nil, "nest", value.KindInt, value.KindRef, value.KindInt)
	arr, n := b.Param(0), b.Param(1)
	i := b.ConstInt(0)
	acc := b.ConstInt(0)
	j := b.NewReg()
	three := b.ConstInt(3)
	oCond, oBody := b.NewLabel(), b.NewLabel()
	iCond, iBody := b.NewLabel(), b.NewLabel()
	b.Goto(oCond)
	b.Bind(oBody)
	o := b.ArrayLoad(value.KindRef, arr, i)
	b.SetInt(j, 0)
	b.Goto(iCond)
	b.Bind(iBody)
	v := b.GetField(o, fx.fVal)
	b.ArithTo(acc, ir.OpAdd, value.KindInt, acc, v)
	b.IncInt(j, 1)
	b.Bind(iCond)
	b.Br(value.KindInt, ir.CondLT, j, three, iBody)
	b.IncInt(i, 1)
	b.Bind(oCond)
	b.Br(value.KindInt, ir.CondLT, i, n, oBody)
	b.Return(acc)
	m := b.Finish()

	g, f, record := analyze(t, m)
	post := f.Postorder()
	inner, outer := post[0], post[1]
	args := []value.Value{value.Ref(fx.arr), value.Int(int32(fx.n))}
	res := Inspect(fx.p, fx.h, g, f, outer, record, args, DefaultConfig())
	st, ok := res.NestedTrips[inner]
	if !ok {
		t.Fatal("nested loop trip stats missing")
	}
	// Header-entry counting: 3 iterations plus the failing test = 4.
	if st.Mean() < 3.5 || st.Mean() > 4.5 {
		t.Errorf("inner mean trips = %.1f, want ~4", st.Mean())
	}
	if st.Entries < 10 {
		t.Errorf("inner entries = %d", st.Entries)
	}
}
