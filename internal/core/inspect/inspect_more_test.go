package inspect

import (
	"testing"

	"strider/internal/classfile"
	"strider/internal/ir"
	"strider/internal/value"
)

// TestUnknownBranchPrefersStayingInTargetLoop: a branch on a skipped
// call's result whose taken edge leaves the loop must fall through so the
// inspection keeps iterating.
func TestUnknownBranchPrefersStayingInTargetLoop(t *testing.T) {
	fx := newFixture(t, 32)

	cb := ir.NewBuilder(fx.p, nil, "oracle", value.KindInt)
	z := cb.ConstInt(0)
	cb.Return(z)
	oracle := cb.Finish()

	b := ir.NewBuilder(fx.p, nil, "m", value.KindInt, value.KindRef, value.KindInt)
	arr, n := b.Param(0), b.Param(1)
	i := b.ConstInt(0)
	out := b.NewLabel()
	cond := b.NewLabel()
	body := b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	o := b.ArrayLoad(value.KindRef, arr, i)
	loadIdx := len(b.Self().Code) - 1
	b.Sink(o)
	c := b.Call(oracle)
	one := b.ConstInt(1)
	b.Br(value.KindInt, ir.CondEQ, c, one, out) // unknown: taken leaves the loop
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	b.Bind(out)
	b.Return(i)
	m := b.Finish()
	g, f, record := analyze(t, m)
	args := []value.Value{value.Ref(fx.arr), value.Int(int32(fx.n))}
	res := Inspect(fx.p, fx.h, g, f, f.Loops[0], record, args, DefaultConfig())
	if !res.Completed {
		t.Fatal("unknown early-exit branch must not end the inspection")
	}
	if len(res.Traces[loadIdx]) < 10 {
		t.Errorf("only %d samples collected", len(res.Traces[loadIdx]))
	}
}

// TestUnknownBranchExitsNestedScanLoop: the jess shape — inside a nested
// loop, a branch on an unknown value whose taken edge leaves the nested
// loop (continue of the outer loop) must be taken, so the outer iteration
// advances.
func TestUnknownBranchExitsNestedScanLoop(t *testing.T) {
	fx := newFixture(t, 32)

	cb := ir.NewBuilder(fx.p, nil, "check", value.KindInt)
	z := cb.ConstInt(0)
	cb.Return(z)
	check := cb.Finish()

	b := ir.NewBuilder(fx.p, nil, "m", value.KindInt, value.KindRef, value.KindInt)
	arr, n := b.Param(0), b.Param(1)
	i := b.ConstInt(0)
	j := b.NewReg()
	three := b.ConstInt(3)
	oCond, oBody, oCont := b.NewLabel(), b.NewLabel(), b.NewLabel()
	iCond, iBody := b.NewLabel(), b.NewLabel()
	b.Goto(oCond)
	b.Bind(oBody)
	o := b.ArrayLoad(value.KindRef, arr, i)
	loadIdx := len(b.Self().Code) - 1
	b.Sink(o)
	b.SetInt(j, 0)
	b.Goto(iCond)
	b.Bind(iBody)
	c := b.Call(check)
	zero := b.ConstInt(0)
	b.Br(value.KindInt, ir.CondEQ, c, zero, oCont) // unknown: "continue outer"
	b.IncInt(j, 1)
	b.Bind(iCond)
	b.Br(value.KindInt, ir.CondLT, j, three, iBody)
	b.Return(i) // inner completed: found -> return (exits everything)
	b.Bind(oCont)
	b.IncInt(i, 1)
	b.Bind(oCond)
	b.Br(value.KindInt, ir.CondLT, i, n, oBody)
	b.Return(i)
	m := b.Finish()
	g, f, record := analyze(t, m)
	post := f.Postorder()
	outer := post[len(post)-1]
	args := []value.Value{value.Ref(fx.arr), value.Int(int32(fx.n))}
	res := Inspect(fx.p, fx.h, g, f, outer, record, args, DefaultConfig())
	if !res.Completed {
		t.Fatal("outer inspection must complete despite the unknown inner branch")
	}
	if len(res.Traces[loadIdx]) < 10 {
		t.Errorf("outer loop barely iterated: %d samples", len(res.Traces[loadIdx]))
	}
}

// TestPutStaticSuppressed: inspection must not write statics.
func TestPutStaticSuppressed(t *testing.T) {
	fx := newFixture(t, 8)
	sc := fx.u.MustDefineClass("S", nil,
		classfile.FieldSpec{Name: "counter", Kind: value.KindInt, Static: true})
	fCnt := sc.FieldByName("counter")
	fx.u.SetStatic(fCnt, value.Int(5))

	b := ir.NewBuilder(fx.p, nil, "m", value.KindInt, value.KindRef, value.KindInt)
	arr, n := b.Param(0), b.Param(1)
	i := b.ConstInt(0)
	cond := b.NewLabel()
	body := b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	o := b.ArrayLoad(value.KindRef, arr, i)
	b.Sink(o)
	cnt := b.GetStatic(fCnt)
	one := b.ConstInt(1)
	c2 := b.Arith(ir.OpAdd, value.KindInt, cnt, one)
	b.PutStatic(fCnt, c2)
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	b.Return(i)
	m := b.Finish()
	g, f, record := analyze(t, m)
	args := []value.Value{value.Ref(fx.arr), value.Int(int32(fx.n))}
	Inspect(fx.p, fx.h, g, f, f.Loops[0], record, args, DefaultConfig())
	if got := fx.u.GetStatic(fCnt); got.Int() != 5 {
		t.Errorf("inspection wrote a static: %v", got)
	}
}

// TestInterproceduralVirtualResolution: in interprocedural mode a virtual
// call with a known receiver resolves through the inspected object's
// class header (dynamically inspecting the object).
func TestInterproceduralVirtualResolution(t *testing.T) {
	fx := newFixture(t, 32)

	// Obj::index() -> this.val (a virtual method).
	vb := ir.NewBuilder(fx.p, fx.objClass, "index", value.KindInt, value.KindRef)
	v := vb.GetField(vb.Param(0), fx.fVal)
	vb.Return(v)
	vb.Finish()

	// m: base = arr[0].index(); loop loads arr[base + i].
	b := ir.NewBuilder(fx.p, nil, "m", value.KindInt, value.KindRef, value.KindInt)
	arr, n := b.Param(0), b.Param(1)
	zero := b.ConstInt(0)
	first := b.ArrayLoad(value.KindRef, arr, zero)
	base0 := b.CallVirt("index", true, first)
	seven := b.ConstInt(7)
	base := b.Arith(ir.OpRem, value.KindInt, base0, seven)
	i := b.ConstInt(0)
	cond := b.NewLabel()
	body := b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	k := b.AddInt(base, i)
	o := b.ArrayLoad(value.KindRef, arr, k)
	loadIdx := len(b.Self().Code) - 1
	b.Sink(o)
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	b.Return(i)
	m := b.Finish()
	g, f, record := analyze(t, m)
	args := []value.Value{value.Ref(fx.arr), value.Int(20)}

	res := Inspect(fx.p, fx.h, g, f, f.Loops[0], record, args, DefaultConfig())
	if len(res.Traces[loadIdx]) != 0 {
		t.Error("without interprocedural mode, the virtual result is unknown")
	}

	cfgIP := DefaultConfig()
	cfgIP.Interprocedural = true
	res = Inspect(fx.p, fx.h, g, f, f.Loops[0], record, args, cfgIP)
	if len(res.Traces[loadIdx]) == 0 {
		t.Error("interprocedural inspection must resolve the virtual call via the object header")
	}
}
