package jit

import (
	"testing"

	"strider/internal/arch"
	"strider/internal/classfile"
	"strider/internal/heap"
	"strider/internal/ir"
	"strider/internal/value"
)

// fixture: heap with a ref array of clustered Obj+Child pairs and a
// doubly nested scan method (inner loop over a small fact-like array).
type fixture struct {
	p     *ir.Program
	h     *heap.Heap
	m     *ir.Method
	args  []value.Value
	objSz int64
}

func newFixture(t *testing.T, n uint32) *fixture {
	t.Helper()
	u := classfile.NewUniverse()
	obj := u.MustDefineClass("Obj", nil,
		classfile.FieldSpec{Name: "pad0", Kind: value.KindLong},
		classfile.FieldSpec{Name: "pad1", Kind: value.KindLong},
		classfile.FieldSpec{Name: "pad2", Kind: value.KindLong},
		classfile.FieldSpec{Name: "pad3", Kind: value.KindLong},
		classfile.FieldSpec{Name: "pad4", Kind: value.KindLong},
		classfile.FieldSpec{Name: "pad5", Kind: value.KindLong},
		classfile.FieldSpec{Name: "pad6", Kind: value.KindLong},
		classfile.FieldSpec{Name: "pad7", Kind: value.KindLong},
		classfile.FieldSpec{Name: "pad8", Kind: value.KindLong},
		classfile.FieldSpec{Name: "pad9", Kind: value.KindLong},
		classfile.FieldSpec{Name: "val", Kind: value.KindInt},
	) // > 64 bytes so the inter stride passes the line filter
	fVal := obj.FieldByName("val")
	h := heap.New(1<<20, u)
	arr, err := h.AllocArray(value.KindRef, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < n; i++ {
		o, _ := h.AllocObject(obj)
		h.Store4(o+fVal.Offset, i)
		h.Store4(h.ElemAddr(arr, i), o)
	}
	p := ir.NewProgram(u)
	b := ir.NewBuilder(p, nil, "scan", value.KindInt, value.KindRef, value.KindInt)
	arrR, nR := b.Param(0), b.Param(1)
	acc := b.ConstInt(0)
	i := b.ConstInt(0)
	cond := b.NewLabel()
	body := b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	o := b.ArrayLoad(value.KindRef, arrR, i)
	v := b.GetField(o, fVal)
	b.ArithTo(acc, ir.OpAdd, value.KindInt, acc, v)
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, nR, body)
	b.Return(acc)
	m := b.Finish()
	return &fixture{
		p: p, h: h, m: m,
		args:  []value.Value{value.Ref(arr), value.Int(int32(n))},
		objSz: int64(obj.InstanceSize),
	}
}

func TestBaselineModeIsIdentity(t *testing.T) {
	fx := newFixture(t, 64)
	c := Compile(fx.p, fx.h, fx.m, fx.args, DefaultOptions(arch.Pentium4(), Baseline))
	if &c.Code[0] != &fx.m.Code[0] {
		t.Error("baseline must share the original code")
	}
	if c.PrefetchUnits != 0 {
		t.Error("baseline has no prefetch phase")
	}
	if c.BaseUnits == 0 {
		t.Error("baseline compilation still costs time")
	}
}

func TestInterModeFindsPatternAndGeneratesCode(t *testing.T) {
	fx := newFixture(t, 64)
	c := Compile(fx.p, fx.h, fx.m, fx.args, DefaultOptions(arch.Pentium4(), Inter))
	if len(c.Graphs) != 1 {
		t.Fatalf("graphs = %d", len(c.Graphs))
	}
	// The getfield over clustered objects has inter stride = object size.
	found := false
	for _, n := range c.Graphs[0].Nodes {
		if n.Op == ir.OpGetField {
			if !n.HasInter || n.Inter != fx.objSz {
				t.Errorf("getfield inter = (%d,%v), want %d", n.Inter, n.HasInter, fx.objSz)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("getfield node missing")
	}
	if c.Prefetch.InterPrefetches == 0 {
		t.Errorf("no inter prefetch generated: %+v", c.Prefetch)
	}
	if len(c.Code) <= len(fx.m.Code) {
		t.Error("compiled code must contain insertions")
	}
	if c.InspectSteps == 0 || c.PrefetchUnits == 0 {
		t.Error("prefetch-phase ledger empty")
	}
	m2 := &ir.Method{Name: "x", Params: fx.m.Params, NumRegs: c.NumRegs, Code: c.Code}
	if err := ir.Validate(m2); err != nil {
		t.Fatalf("compiled code invalid: %v", err)
	}
}

func TestMethodWithoutLoops(t *testing.T) {
	fx := newFixture(t, 4)
	b := ir.NewBuilder(fx.p, nil, "leaf", value.KindInt, value.KindInt)
	one := b.ConstInt(1)
	r := b.Arith(ir.OpAdd, value.KindInt, b.Param(0), one)
	b.Return(r)
	m := b.Finish()
	c := Compile(fx.p, fx.h, m, []value.Value{value.Int(1)}, DefaultOptions(arch.Pentium4(), InterIntra))
	if len(c.Graphs) != 0 || c.Prefetch.Total() != 0 {
		t.Error("loop-free method must get no prefetching")
	}
	if c.InspectSteps != 0 {
		t.Error("no loops, no inspection")
	}
}

func TestUnknownArgsNoPatterns(t *testing.T) {
	fx := newFixture(t, 64)
	// Compiling with unknown arguments (e.g. a method whose caller is not
	// yet executing): inspection cannot trace, no prefetches.
	c := Compile(fx.p, fx.h, fx.m, []value.Value{value.Unknown, value.Unknown},
		DefaultOptions(arch.Pentium4(), InterIntra))
	if c.Prefetch.Total() != 0 {
		t.Errorf("unknown args must produce no prefetches: %+v", c.Prefetch)
	}
}

func TestSmallTripLoopNotInstrumented(t *testing.T) {
	fx := newFixture(t, 4) // trip count 4 <= SmallTrip
	c := Compile(fx.p, fx.h, fx.m, fx.args, DefaultOptions(arch.Pentium4(), InterIntra))
	if len(c.Graphs) != 0 {
		t.Error("a small-trip top-level loop must not be instrumented")
	}
	if c.Prefetch.Total() != 0 {
		t.Error("no prefetches for small-trip loops")
	}
}

func TestModeString(t *testing.T) {
	if Baseline.String() != "BASELINE" || Inter.String() != "INTER" || InterIntra.String() != "INTER+INTRA" {
		t.Error("mode names must match the paper")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode must render")
	}
}

func TestDefaultOptionsMatchPaper(t *testing.T) {
	o := DefaultOptions(arch.Pentium4(), InterIntra)
	if o.C != 1 {
		t.Error("scheduling distance fixed at one iteration (Sec. 4)")
	}
	if o.Threshold != 0.75 {
		t.Error("majority threshold is 75% (Sec. 3.2)")
	}
	if o.Inspect.Iterations != 20 {
		t.Error("20 inspected iterations (Sec. 4)")
	}
}
