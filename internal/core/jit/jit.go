// Package jit is the compilation pipeline: it drives the paper's
// prefetching algorithm (Sec. 3) when a method is compiled at invocation
// time, with the actual argument values in hand:
//
//  1. identify loops (loop nesting forest), traverse each tree postorder;
//  2. per loop, build the load dependence graph (promoting loads from
//     nested loops already found to have small trip counts);
//  3. run object inspection to collect address traces;
//  4. annotate the graph with inter- and intra-iteration stride patterns;
//  5. generate prefetching code, subject to the profitability analysis.
//
// The package also keeps the compile-time ledger behind Figure 11: the
// work units of the baseline compilation versus the additional work of the
// prefetch phases.
package jit

import (
	"fmt"

	"strider/internal/arch"
	"strider/internal/cfg"
	"strider/internal/core/inspect"
	"strider/internal/core/ldg"
	"strider/internal/core/prefetch"
	"strider/internal/core/stride"
	"strider/internal/dataflow"
	"strider/internal/heap"
	"strider/internal/ir"
	"strider/internal/static"
	"strider/internal/telemetry"
	"strider/internal/value"
)

// Mode selects the prefetching configuration of Sec. 4.
type Mode uint8

// The evaluation configurations.
const (
	// Baseline disables stride prefetching entirely.
	Baseline Mode = iota
	// Inter enables only inter-iteration stride prefetching — the paper's
	// limited emulation of Wu's stride prefetching.
	Inter
	// InterIntra enables inter- and intra-iteration stride prefetching —
	// the paper's full algorithm.
	InterIntra
)

// String returns the paper's name for the configuration.
func (m Mode) String() string {
	switch m {
	case Baseline:
		return "BASELINE"
	case Inter:
		return "INTER"
	case InterIntra:
		return "INTER+INTRA"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// baseUnitsPerInstr models the work of the JIT's non-prefetch phases
// (a production JIT runs dozens of optimization passes per instruction);
// it is the denominator scale of Figure 11's left-hand bars.
const baseUnitsPerInstr = 250

// Options configures compilation.
type Options struct {
	Mode    Mode
	Machine *arch.Machine

	// C is the prefetch scheduling distance in iterations (paper: 1).
	C int
	// Threshold is the dominant-stride majority requirement (paper: 0.75).
	Threshold float64
	// SmallTrip is the trip count at or below which a nested loop's loads
	// are promoted into its parent's graph (and the loop itself is not
	// instrumented).
	SmallTrip int
	// AdaptiveC derives a per-loop scheduling distance from the loop body
	// size and the machine's memory latency instead of using the fixed C
	// — the extension Sec. 3.3 sketches ("the actual value for the
	// scheduling distance c depends on the processor's cache parameters
	// and the amount of computation ... in the loop body").
	AdaptiveC bool
	// Inspect configures object inspection.
	Inspect inspect.Config
	// Predict selects where stride predictions come from: dynamic object
	// inspection (the paper's algorithm and the default), the offline
	// static analyzer, or a recorded PGO profile.
	Predict PredictSource
	// Profile is the recorded profile PredictPGO replays; loops without a
	// matching entry fall back to dynamic inspection. Ignored by the
	// other sources.
	Profile *static.Profile
	// RecordProfile, when non-nil, captures every dynamically inspected
	// loop's outcome into the given profile (the PGO profiling run).
	RecordProfile *static.Profile
	// Rec, when non-nil, receives the compile-time telemetry: per-loop
	// inspection verdicts and per-candidate filter decisions. A nil
	// recorder is free.
	Rec telemetry.Recorder
}

// DefaultOptions returns the paper's parameter values for a machine/mode.
func DefaultOptions(m *arch.Machine, mode Mode) Options {
	return Options{
		Mode:      mode,
		Machine:   m,
		C:         1,
		Threshold: stride.DefaultThreshold,
		SmallTrip: 8,
		Inspect:   inspect.DefaultConfig(),
	}
}

// Compiled is the result of compiling one method.
type Compiled struct {
	Method  *ir.Method
	Code    []ir.Instr // executable code (shared with Method when unmodified)
	NumRegs int

	// Graphs are the annotated load dependence graphs of the processed
	// loops (diagnostics; Table 1 / Figure 5).
	Graphs []*ldg.Graph

	Prefetch     prefetch.Stats
	InspectSteps int

	// Compile-time ledger (Figure 11).
	BaseUnits     uint64
	PrefetchUnits uint64
}

// TotalUnits returns the method's total modelled compile time.
func (c *Compiled) TotalUnits() uint64 { return c.BaseUnits + c.PrefetchUnits }

// Compile compiles a method. args are the actual argument values of the
// invocation that triggered compilation — the inputs object inspection
// feeds on. The heap is read, never written.
func Compile(prog *ir.Program, h *heap.Heap, m *ir.Method, args []value.Value, opts Options) *Compiled {
	out := &Compiled{
		Method:    m,
		Code:      m.Code,
		NumRegs:   m.NumRegs,
		BaseUnits: uint64(len(m.Code)) * baseUnitsPerInstr,
	}
	if opts.Mode == Baseline {
		return out
	}

	g := cfg.Build(m)
	f := cfg.BuildLoops(g)
	out.PrefetchUnits += uint64(len(m.Code)) // loop detection pass
	if len(f.Loops) == 0 {
		return out
	}
	df := dataflow.Reach(g)
	out.PrefetchUnits += uint64(len(m.Code)) // use-def chains

	small := make(map[*cfg.Loop]bool)
	var graphs []*ldg.Graph

	qname := m.QName()
	loopEvent := func(loop *cfg.Loop, verdict telemetry.Reason, res *inspect.Result, nodes int) {
		if opts.Rec == nil {
			return
		}
		e := telemetry.LoopEvent{Method: qname, Loop: loop.Header, Verdict: verdict, Nodes: nodes}
		if res != nil {
			e.Trips = res.TargetTrips
			e.NaturalExit = res.NaturalExit
			e.Steps = res.Steps
		}
		opts.Rec.Loop(e)
	}
	for _, loop := range f.Postorder() {
		promoted := collectSmall(loop.Children, small)

		lg := ldg.Build(m, g, df, loop, promoted)
		out.PrefetchUnits += uint64(len(lg.Nodes) * 2)
		if len(lg.Nodes) == 0 {
			loopEvent(loop, telemetry.LoopNoLoads, nil, 0)
			continue
		}

		if opts.Predict == PredictStatic {
			// Offline prediction: annotate from structure alone. No
			// execution means no trip observation either, so nested loops
			// are never recognized as small and promoted — every loop
			// keeps (and possibly over-prefetches) its own graph, one of
			// the failure modes the dynamic algorithm avoids.
			out.PrefetchUnits += static.Annotate(g, df, lg, opts.Rec)
			lg.Src = static.Source
			if opts.AdaptiveC {
				lg.SchedC = adaptiveC(g, loop, opts.Machine)
			}
			srcEvent(opts.Rec, qname, loop, telemetry.LoopStaticPredicted, len(lg.Nodes), static.Source, 0, false)
			graphs = append(graphs, lg)
			continue
		}

		if opts.Predict == PredictPGO {
			if applied, promotedSmall := applyProfile(lg, g, loop, opts, qname); applied {
				if promotedSmall {
					small[loop] = true
					continue
				}
				if lg.Src == static.PGOSource {
					graphs = append(graphs, lg)
				}
				continue
			}
			srcEvent(opts.Rec, qname, loop, telemetry.LoopPGOMiss, len(lg.Nodes), static.PGOSource, 0, false)
			// Fall through: the profile has nothing usable for this loop,
			// so it pays for dynamic inspection like a first run would.
		}

		record := make([]int, len(lg.Nodes))
		for i, n := range lg.Nodes {
			record[i] = n.Instr
		}
		res := inspect.Inspect(prog, h, g, f, loop, record, args, opts.Inspect)
		out.InspectSteps += res.Steps
		out.PrefetchUnits += uint64(res.Steps)

		// A loop observed to exit naturally with a small trip count is not
		// prefetched itself; its loads are reconsidered in the parent
		// (Sec. 3: "a nested loop with a small trip count is handled in a
		// manner similar to [24]"). Our algorithm detects the small trip
		// count during object inspection, as the paper describes. This
		// check runs before the completeness check: a loop that exited
		// after zero or one iterations has the smallest trip count of all.
		if res.NaturalExit && res.TargetTrips <= opts.SmallTrip {
			small[loop] = true
			if opts.RecordProfile != nil {
				recordLoop(opts, qname, loop, &static.LoopProfile{
					Verdict: telemetry.LoopSmallTrip, Trips: res.TargetTrips, NaturalExit: true,
				})
			}
			loopEvent(loop, telemetry.LoopSmallTrip, res, len(lg.Nodes))
			continue
		}
		if !res.Completed {
			if opts.RecordProfile != nil {
				recordLoop(opts, qname, loop, &static.LoopProfile{
					Verdict: telemetry.LoopIncomplete, Trips: res.TargetTrips, NaturalExit: res.NaturalExit,
				})
			}
			loopEvent(loop, telemetry.LoopIncomplete, res, len(lg.Nodes))
			continue
		}

		annotate(lg, res, opts.Threshold, opts.Rec)
		if opts.AdaptiveC {
			lg.SchedC = adaptiveC(g, loop, opts.Machine)
		}
		if opts.RecordProfile != nil {
			// Guarded here, not just inside recordLoop: RecordLoop snapshots
			// the whole graph (node and edge slices), an allocation the
			// non-profiling hot path must not pay.
			recordLoop(opts, qname, loop, static.RecordLoop(lg, telemetry.LoopAccepted, res.TargetTrips, res.NaturalExit))
		}
		loopEvent(loop, telemetry.LoopAccepted, res, len(lg.Nodes))
		graphs = append(graphs, lg)
	}
	out.Graphs = graphs
	if len(graphs) == 0 {
		return out
	}

	line := opts.Machine.L2U.LineBytes
	if opts.Machine.PrefetchTarget == arch.L1 {
		line = opts.Machine.L1D.LineBytes
	}
	code, regs, stats := prefetch.Generate(m, graphs, prefetch.Options{
		C:            opts.C,
		EnableIntra:  opts.Mode == InterIntra,
		LineBytes:    line,
		PageSize:     opts.Machine.DTLB.PageSize,
		GuardedIntra: opts.Machine.GuardedIntraPrefetch,
		Rec:          opts.Rec,
	})
	out.Prefetch = stats
	out.PrefetchUnits += stats.WorkUnits
	if code != nil {
		out.Code = code
		out.NumRegs = regs
	}
	return out
}

// recordLoop captures one dynamically inspected loop's outcome into the
// profiling run's profile (a nil RecordProfile is free).
func recordLoop(opts Options, qname string, loop *cfg.Loop, lp *static.LoopProfile) {
	if opts.RecordProfile == nil {
		return
	}
	opts.RecordProfile.Record(qname, loop.Header, lp)
}

// srcEvent records a loop verdict carrying a non-dynamic prediction
// source. A plain function (not a closure over the compile state) so the
// dynamic hot path, which never reaches it, pays no allocation for it.
func srcEvent(rec telemetry.Recorder, qname string, loop *cfg.Loop,
	verdict telemetry.Reason, nodes int, src string, trips int, natural bool) {
	if rec == nil {
		return
	}
	rec.Loop(telemetry.LoopEvent{
		Method: qname, Loop: loop.Header, Verdict: verdict, Nodes: nodes,
		Trips: trips, NaturalExit: natural, Src: src,
	})
}

// applyProfile replays one loop's recorded outcome under PredictPGO.
// applied=false means the profile has no usable entry (a miss: the caller
// falls back to dynamic inspection); promotedSmall replays a small-trip
// promotion into the parent graph.
func applyProfile(lg *ldg.Graph, g *cfg.Graph, loop *cfg.Loop, opts Options,
	qname string) (applied, promotedSmall bool) {
	lp := opts.Profile.Loop(lg.Method.QName(), loop.Header)
	if lp == nil {
		return false, false
	}
	switch lp.Verdict {
	case telemetry.LoopSmallTrip:
		srcEvent(opts.Rec, qname, loop, telemetry.LoopSmallTrip, len(lg.Nodes), static.PGOSource, lp.Trips, lp.NaturalExit)
		return true, true
	case telemetry.LoopIncomplete:
		srcEvent(opts.Rec, qname, loop, telemetry.LoopIncomplete, len(lg.Nodes), static.PGOSource, lp.Trips, lp.NaturalExit)
		return true, false
	case telemetry.LoopAccepted:
		if !static.Apply(lg, lp, opts.Rec) {
			// The recorded graph no longer matches the code (a stale or
			// foreign profile): treat it as a miss, not a wrong replay.
			return false, false
		}
		lg.Src = static.PGOSource
		if opts.AdaptiveC {
			lg.SchedC = adaptiveC(g, loop, opts.Machine)
		}
		srcEvent(opts.Rec, qname, loop, telemetry.LoopAccepted, len(lg.Nodes), static.PGOSource, lp.Trips, lp.NaturalExit)
		return true, false
	}
	return false, false
}

// adaptiveC estimates the scheduling distance needed to cover the memory
// latency: roughly MemCycles / (loop body issue cycles), clamped to [1, 8].
func adaptiveC(g *cfg.Graph, loop *cfg.Loop, m *arch.Machine) int {
	body := 0
	for b := range loop.Blocks {
		blk := g.Blocks[b]
		body += blk.End - blk.Start
	}
	if body == 0 {
		return 1
	}
	est := uint64(body) * m.IssueCycles
	c := int((m.MemCycles + est - 1) / est)
	if c < 1 {
		c = 1
	}
	if c > 8 {
		c = 8
	}
	return c
}

// collectSmall gathers the small-trip nested loops to promote: a child is
// promoted if small, and its own small descendants come along with it.
func collectSmall(children []*cfg.Loop, small map[*cfg.Loop]bool) []*cfg.Loop {
	var out []*cfg.Loop
	for _, c := range children {
		if small[c] {
			out = append(out, c)
			out = append(out, collectSmall(c.Children, small)...)
		}
	}
	return out
}

// annotate writes the discovered stride patterns onto the graph: an
// inter-iteration stride per node, an intra-iteration stride per edge,
// each with its dominance statistics. Candidates whose trace shows no
// qualifying pattern are reported to the recorder here (FilterNoPattern);
// candidates with patterns receive their final emit/filter verdict later,
// in the code generator.
func annotate(lg *ldg.Graph, res *inspect.Result, threshold float64, rec telemetry.Recorder) {
	qname := lg.Method.QName()
	loopID := lg.Loop.Header
	for _, n := range lg.Nodes {
		st := stride.InterStat(res.Traces[n.Instr], threshold)
		n.HasInter, n.InterRatio, n.InterSamples = st.OK, st.Ratio, st.Samples
		n.Inter, n.RawInter = 0, st.Stride
		if st.OK {
			n.Inter = st.Stride
		} else if rec != nil {
			rec.Decision(telemetry.DecisionEvent{
				Method: qname, Loop: loopID, Instr: n.Instr, Pair: -1,
				Op: n.Op.String(), Stride: st.Stride, Ratio: st.Ratio,
				Samples: st.Samples, Reason: telemetry.FilterNoPattern,
			})
		}
	}
	for _, n := range lg.Nodes {
		for _, e := range n.Succs {
			from := res.Traces[e.From.Instr]
			to := res.Traces[e.To.Instr]
			st := stride.IntraStat(from, to, threshold)
			e.HasIntra, e.IntraRatio, e.IntraSamples = st.OK, st.Ratio, st.Samples
			e.Intra, e.RawIntra = 0, st.Stride
			if st.OK {
				e.Intra = st.Stride
			} else if rec != nil {
				rec.Decision(telemetry.DecisionEvent{
					Method: qname, Loop: loopID, Instr: e.From.Instr, Pair: e.To.Instr,
					Op: e.To.Op.String(), Stride: st.Stride, Ratio: st.Ratio,
					Samples: st.Samples, Reason: telemetry.FilterNoPattern,
				})
			}
		}
	}
}
