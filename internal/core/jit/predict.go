package jit

import (
	"fmt"
	"strings"
)

// PredictSource selects where a compilation's stride predictions come
// from — the axis behind the paper's core claim that dynamic object
// inspection beats static prediction.
type PredictSource uint8

// The prediction sources.
const (
	// PredictDynamic is the paper's algorithm: object inspection at JIT
	// time with the actual argument values.
	PredictDynamic PredictSource = iota
	// PredictStatic predicts strides and co-allocation offline from
	// IR/CFG/dataflow structure alone — no execution (the OOPredictor-
	// style state of the art the paper argues against).
	PredictStatic
	// PredictPGO replays a recorded profile of a previous dynamic run,
	// skipping re-inspection (the Liu et al. profile-reuse model); loops
	// absent from the profile fall back to dynamic inspection.
	PredictPGO
)

// String returns the flag spelling of the source.
func (p PredictSource) String() string {
	switch p {
	case PredictDynamic:
		return "dynamic"
	case PredictStatic:
		return "static"
	case PredictPGO:
		return "pgo"
	}
	return fmt.Sprintf("predict(%d)", uint8(p))
}

// PredictSources returns the valid flag spellings in declaration order.
func PredictSources() []string { return []string{"dynamic", "static", "pgo"} }

// ParsePredict maps a flag spelling to its PredictSource; empty means
// dynamic. Unknown spellings return an error naming the valid set.
func ParsePredict(s string) (PredictSource, error) {
	switch s {
	case "", "dynamic":
		return PredictDynamic, nil
	case "static":
		return PredictStatic, nil
	case "pgo":
		return PredictPGO, nil
	}
	return 0, fmt.Errorf("jit: unknown prediction source %q (valid: %s)",
		s, strings.Join(PredictSources(), ", "))
}
