package jit

import (
	"testing"

	"strider/internal/arch"
	"strider/internal/cfg"
	"strider/internal/ir"
	"strider/internal/value"
)

func TestAdaptiveCScalesWithBodySize(t *testing.T) {
	fx := newFixture(t, 64)
	g := cfg.Build(fx.m)
	f := cfg.BuildLoops(g)
	loop := f.Postorder()[0]
	machine := arch.Pentium4()

	c := adaptiveC(g, loop, machine)
	// The scan body is ~10 instructions at 3 cycles each: covering a
	// ~220-cycle memory latency needs several iterations of lookahead.
	if c < 2 || c > 8 {
		t.Errorf("adaptive c = %d for a tight loop, want 2..8", c)
	}

	// A loop with a much larger body needs less lookahead.
	b := ir.NewBuilder(fx.p, nil, "fat", value.KindInt, value.KindInt)
	n := b.Param(0)
	acc := b.ConstInt(0)
	i := b.ConstInt(0)
	cond := b.NewLabel()
	body := b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	for k := 0; k < 120; k++ {
		one := b.ConstInt(int32(k))
		b.ArithTo(acc, ir.OpAdd, value.KindInt, acc, one)
	}
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	b.Return(acc)
	fat := b.Finish()
	g2 := cfg.Build(fat)
	f2 := cfg.BuildLoops(g2)
	c2 := adaptiveC(g2, f2.Postorder()[0], machine)
	if c2 != 1 {
		t.Errorf("adaptive c = %d for a 240+-instruction body, want 1", c2)
	}
	if c2 >= c {
		t.Error("bigger bodies must get smaller scheduling distances")
	}
}

func TestAdaptiveCAffectsCompiledCode(t *testing.T) {
	fx := newFixture(t, 64)
	opts := DefaultOptions(arch.Pentium4(), Inter)
	plain := Compile(fx.p, fx.h, fx.m, fx.args, opts)
	opts.AdaptiveC = true
	adaptive := Compile(fx.p, fx.h, fx.m, fx.args, opts)

	disp := func(c *Compiled) (out []int32) {
		for i := range c.Code {
			if c.Code[i].Op == ir.OpPrefetch {
				out = append(out, c.Code[i].Addr.Disp)
			}
		}
		return
	}
	dp, da := disp(plain), disp(adaptive)
	if len(dp) == 0 || len(da) != len(dp) {
		t.Fatalf("prefetch counts: %d vs %d", len(dp), len(da))
	}
	if da[0] <= dp[0] {
		t.Errorf("adaptive displacement %d must exceed fixed-c displacement %d", da[0], dp[0])
	}
}
