package jit

import (
	"testing"

	"strider/internal/arch"
	"strider/internal/classfile"
)

// heapImage snapshots every allocated word of the heap.
func heapImage(t *testing.T, fx *fixture) []uint32 {
	t.Helper()
	top := fx.h.Top()
	img := make([]uint32, 0, (top-classfile.HeaderBytes)/4)
	for addr := uint32(classfile.HeaderBytes); addr < top; addr += 4 {
		img = append(img, fx.h.Load4(addr))
	}
	return img
}

// TestCompileNeverWritesHeap: object inspection is a *read-only* partial
// interpretation of the method over the live heap — Compile's contract
// says "The heap is read, never written". Every mode, both machines,
// interprocedural on and off: the heap image must be byte-identical
// before and after compilation, and the source method's code must be
// untouched (insertions go to a copy).
func TestCompileNeverWritesHeap(t *testing.T) {
	for _, m := range arch.Machines() {
		for _, mode := range []Mode{Baseline, Inter, InterIntra} {
			for _, interproc := range []bool{false, true} {
				fx := newFixture(t, 64)
				before := heapImage(t, fx)
				codeBefore := fx.m.Disassemble()

				opts := DefaultOptions(m, mode)
				opts.Inspect.Interprocedural = interproc
				c := Compile(fx.p, fx.h, fx.m, fx.args, opts)
				if c == nil {
					t.Fatalf("%s/%s: nil compile", m.Name, mode)
				}

				after := heapImage(t, fx)
				if len(before) != len(after) {
					t.Fatalf("%s/%s/ip=%v: compile changed heap top: %d -> %d words",
						m.Name, mode, interproc, len(before), len(after))
				}
				for i := range before {
					if before[i] != after[i] {
						t.Fatalf("%s/%s/ip=%v: compile wrote heap word at %#x: %#x -> %#x",
							m.Name, mode, interproc,
							uint32(classfile.HeaderBytes)+uint32(4*i), before[i], after[i])
					}
				}
				if fx.m.Disassemble() != codeBefore {
					t.Fatalf("%s/%s/ip=%v: compile mutated the source method",
						m.Name, mode, interproc)
				}
			}
		}
	}
}
