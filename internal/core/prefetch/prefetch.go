// Package prefetch generates the prefetching code of Sec. 3.3 from an
// annotated load dependence graph:
//
//   - inter-iteration stride prefetching:
//     prefetch(A(Lx) + d*c)
//   - dereference-based prefetching:
//     a = spec_load(A(Lx) + d*c); prefetch(F[Lx,Ly](a))
//   - intra-iteration stride prefetching:
//     prefetch(F[Lx,Ly](a) + S[Ly,Lz])
//
// and applies the paper's profitability analysis: the load must have at
// least one data-dependent instruction; data apparently sharing a cache
// line with an already-prefetched address is skipped; and a plain
// inter-iteration prefetch requires a stride larger than half a cache line
// (hardware prefetchers already cover small strides).
//
// The hardware mapping follows Sec. 3.3 / Sec. 4: intra-iteration and
// dereference-based prefetches use a guarded load on machines configured
// for TLB priming (the Pentium 4), and any prefetch whose displacement
// from the source address exceeds half a page uses a guarded load so it
// can fill a missing DTLB entry.
package prefetch

import (
	"sort"

	"strider/internal/classfile"
	"strider/internal/core/ldg"
	"strider/internal/ir"
	"strider/internal/telemetry"
)

// Options configures code generation.
type Options struct {
	// C is the scheduling distance in iterations (paper: fixed at 1).
	C int
	// EnableIntra enables dereference-based and intra-iteration
	// prefetching (the INTER+INTRA configuration); when false only plain
	// inter-iteration prefetches are generated (the INTER configuration,
	// the emulation of Wu's stride prefetching).
	EnableIntra bool
	// LineBytes is the cache line size of the prefetch target level,
	// the granule of the profitability analysis.
	LineBytes uint32
	// PageSize drives the guarded-load mapping for far displacements.
	PageSize uint32
	// GuardedIntra maps dereference-based and intra-iteration prefetches
	// to guarded loads (TLB priming; true on the Pentium 4).
	GuardedIntra bool
	// Rec, when non-nil, receives one DecisionEvent per candidate with
	// the emit/filter verdict and its Sec. 3.3 reason code.
	Rec telemetry.Recorder
}

// Stats counts what was generated, for Figure 11-style reporting and tests.
type Stats struct {
	InterPrefetches int // plain inter-iteration prefetch instructions
	SpecLoads       int // spec_load instructions (dereference-based)
	DerefPrefetches int // prefetch(F(a)) instructions
	IntraPrefetches int // prefetch(F(a)+S) instructions
	FilteredLine    int // suppressed: stride not larger than half a line
	FilteredDup     int // suppressed: same line already prefetched
	FilteredUse     int // suppressed: no data-dependent instruction
	WorkUnits       uint64
}

// Total returns the number of instructions inserted.
func (s Stats) Total() int {
	return s.InterPrefetches + s.SpecLoads + s.DerefPrefetches + s.IntraPrefetches
}

// addrExprOf derives the address expression A(L) of a load node, plus an
// extra displacement. Returns false for loads without a heap address
// (getstatic).
func addrExprOf(in *ir.Instr, extra int32) (ir.AddrExpr, bool) {
	switch in.Op {
	case ir.OpGetField:
		return ir.AddrExpr{Base: in.A, Index: ir.NoReg, Disp: int32(in.Field.Offset) + extra}, true
	case ir.OpArrayLoad:
		var scale uint8 = 4
		if k := in.Kind; k.Size() == 8 {
			scale = 8
		}
		return ir.AddrExpr{Base: in.A, Index: in.B, Scale: scale, Disp: int32(classfile.HeaderBytes) + extra}, true
	case ir.OpArrayLen:
		return ir.AddrExpr{Base: in.A, Index: ir.NoReg, Disp: int32(classfile.AuxOffset) + extra}, true
	}
	return ir.AddrExpr{}, false
}

// fieldOffsetOf returns the constant offset F[Lx,Ly] when Ly consumes Lx's
// value through a constant-offset load (getfield or arraylen).
func fieldOffsetOf(in *ir.Instr) (int32, bool) {
	switch in.Op {
	case ir.OpGetField:
		return int32(in.Field.Offset), true
	case ir.OpArrayLen:
		return int32(classfile.AuxOffset), true
	}
	return 0, false
}

// dedup tracks issued prefetch target lines per base expression.
type dedup struct {
	line uint32
	seen map[dedupKey]bool
}

type dedupKey struct {
	base, index ir.Reg
	scale       uint8
	lineDisp    int32
}

func (d *dedup) covers(a ir.AddrExpr) bool {
	k := dedupKey{a.Base, a.Index, a.Scale, a.Disp & ^int32(d.line-1)}
	if d.seen[k] {
		return true
	}
	d.seen[k] = true
	return false
}

// Generate rewrites the method body, inserting prefetch code for every
// annotated graph (one per processed loop). It returns the new code, the
// new register count, and generation statistics. The original method is
// not modified.
func Generate(m *ir.Method, graphs []*ldg.Graph, opts Options) ([]ir.Instr, int, Stats) {
	var stats Stats
	numRegs := m.NumRegs
	inserts := make(map[int][]ir.Instr) // original index -> instructions after it
	ded := &dedup{line: opts.LineBytes, seen: make(map[dedupKey]bool)}
	halfLine := int64(opts.LineBytes / 2)
	halfPage := int64(opts.PageSize / 2)

	guardFor := func(intra bool, disp int64) bool {
		if intra && opts.GuardedIntra {
			return true
		}
		return disp > halfPage || disp < -halfPage
	}

	qname := m.QName()
	decideSrc := func(src string, loop, instr, pair int, op ir.Op, strideV int64, ratio float64, samples int, reason telemetry.Reason) {
		if opts.Rec == nil {
			return
		}
		opts.Rec.Decision(telemetry.DecisionEvent{
			Method: qname, Loop: loop, Instr: instr, Pair: pair,
			Op: op.String(), Stride: strideV, Ratio: ratio, Samples: samples,
			Reason: reason, Src: src,
		})
	}

	for _, g := range graphs {
		c := opts.C
		if g.SchedC > 0 {
			c = g.SchedC
		}
		loopID := g.Loop.Header
		// Decisions carry the graph's prediction source: a method compiled
		// under PGO can mix replayed and dynamically re-inspected loops.
		src := g.Src
		decide := func(loop, instr, pair int, op ir.Op, strideV int64, ratio float64, samples int, reason telemetry.Reason) {
			decideSrc(src, loop, instr, pair, op, strideV, ratio, samples, reason)
		}
		for _, lx := range g.Nodes {
			stats.WorkUnits += uint64(1 + len(lx.Succs))
			if !lx.HasInter {
				continue
			}
			in := &m.Code[lx.Instr]
			d := lx.Inter
			dc := d * int64(c)
			if dc > int64(^uint32(0)>>2) || dc < -int64(^uint32(0)>>2) {
				decide(loopID, lx.Instr, -1, in.Op, d, lx.InterRatio, lx.InterSamples, telemetry.FilterHugeStride)
				continue // implausible stride; never profitable
			}
			// Profitability condition 1: something must depend on Lx.
			if lx.UseCount == 0 {
				stats.FilteredUse++
				decide(loopID, lx.Instr, -1, in.Op, d, lx.InterRatio, lx.InterSamples, telemetry.FilterNoUse)
				continue
			}
			base, ok := addrExprOf(in, int32(dc))
			if !ok {
				decide(loopID, lx.Instr, -1, in.Op, d, lx.InterRatio, lx.InterSamples, telemetry.FilterNoAddr)
				continue
			}

			// Partition the adjacent nodes: dereference-based prefetching
			// applies when some adjacent node lacks an inter pattern.
			var derefTargets []*ldg.Edge
			if opts.EnableIntra {
				for _, e := range lx.Succs {
					if e.To.HasInter {
						continue
					}
					if _, ok := fieldOffsetOf(&m.Code[e.To.Instr]); !ok {
						continue
					}
					if e.To.UseCount == 0 {
						continue
					}
					derefTargets = append(derefTargets, e)
				}
			}

			if len(derefTargets) == 0 {
				// Plain inter-iteration stride prefetching. Profitability
				// condition 3: stride larger than half the line.
				if d <= halfLine && d >= -halfLine {
					stats.FilteredLine++
					decide(loopID, lx.Instr, -1, in.Op, d, lx.InterRatio, lx.InterSamples, telemetry.FilterSmallStride)
					continue
				}
				if ded.covers(base) {
					stats.FilteredDup++
					decide(loopID, lx.Instr, -1, in.Op, d, lx.InterRatio, lx.InterSamples, telemetry.FilterDupLine)
					continue
				}
				inserts[lx.Instr] = append(inserts[lx.Instr], ir.Instr{
					Op:      ir.OpPrefetch,
					Addr:    base,
					Guarded: guardFor(false, dc),
					Site:    int32(lx.Instr),
				})
				stats.InterPrefetches++
				decide(loopID, lx.Instr, -1, in.Op, d, lx.InterRatio, lx.InterSamples, telemetry.EmitInter)
				continue
			}

			// Dereference-based prefetching: one spec_load of the
			// predicted address of Lx's data, then prefetches through it.
			a := ir.Reg(numRegs)
			numRegs++
			inserts[lx.Instr] = append(inserts[lx.Instr], ir.Instr{
				Op:   ir.OpSpecLoad,
				Kind: m.Code[lx.Instr].Kind,
				Dst:  a,
				Addr: base,
				Site: int32(lx.Instr),
			})
			stats.SpecLoads++
			decide(loopID, lx.Instr, -1, in.Op, d, lx.InterRatio, lx.InterSamples, telemetry.EmitSpecLoad)
			for _, e := range derefTargets {
				ly := e.To
				off, _ := fieldOffsetOf(&m.Code[ly.Instr])
				fa := ir.AddrExpr{Base: a, Index: ir.NoReg, Disp: off}
				if !ded.covers(fa) {
					inserts[lx.Instr] = append(inserts[lx.Instr], ir.Instr{
						Op:      ir.OpPrefetch,
						Addr:    fa,
						Guarded: opts.GuardedIntra || guardFor(false, int64(off)),
						Site:    int32(lx.Instr),
					})
					stats.DerefPrefetches++
					decide(loopID, lx.Instr, ly.Instr, m.Code[ly.Instr].Op, int64(off), 0, 0, telemetry.EmitDeref)
				} else {
					stats.FilteredDup++
					decide(loopID, lx.Instr, ly.Instr, m.Code[ly.Instr].Op, int64(off), 0, 0, telemetry.FilterDupLine)
				}
				// Intra-iteration stride prefetching for every node related
				// to Ly by intra edges, directly or transitively. Sorted for
				// deterministic code generation.
				type intraTarget struct {
					n *ldg.Node
					s int64
				}
				var its []intraTarget
				for lz, s := range g.IntraReachable(ly) {
					its = append(its, intraTarget{lz, s})
				}
				sort.Slice(its, func(i, j int) bool { return its[i].n.Instr < its[j].n.Instr })
				for _, it := range its {
					ia := ir.AddrExpr{Base: a, Index: ir.NoReg, Disp: off + int32(it.s)}
					if ded.covers(ia) {
						stats.FilteredDup++
						decide(loopID, ly.Instr, it.n.Instr, m.Code[it.n.Instr].Op, it.s, 0, 0, telemetry.FilterDupLine)
						continue
					}
					inserts[lx.Instr] = append(inserts[lx.Instr], ir.Instr{
						Op:      ir.OpPrefetch,
						Addr:    ia,
						Guarded: guardFor(true, int64(off)+it.s),
						Site:    int32(lx.Instr),
					})
					stats.IntraPrefetches++
					decide(loopID, ly.Instr, it.n.Instr, m.Code[it.n.Instr].Op, it.s, 0, 0, telemetry.EmitIntra)
				}
			}
		}
	}

	if len(inserts) == 0 {
		return nil, m.NumRegs, stats
	}

	// Rebuild the code with insertions, remapping branch targets.
	newIndex := make([]int, len(m.Code))
	size := len(m.Code)
	for _, ins := range inserts {
		size += len(ins)
	}
	out := make([]ir.Instr, 0, size)
	for i := range m.Code {
		newIndex[i] = len(out)
		out = append(out, m.Code[i])
		out = append(out, inserts[i]...)
	}
	for i := range out {
		switch out[i].Op {
		case ir.OpGoto, ir.OpBr:
			out[i].Target = newIndex[out[i].Target]
		}
	}
	stats.WorkUnits += uint64(len(out))
	return out, numRegs, stats
}
