package prefetch

import (
	"testing"

	"strider/internal/cfg"
	"strider/internal/classfile"
	"strider/internal/core/ldg"
	"strider/internal/dataflow"
	"strider/internal/ir"
	"strider/internal/value"
)

// chaseFixture builds the canonical loop
//
//	for i < n { o = arr[i]; c = o.child; x = c.x; acc += x }
//
// and returns the method plus its (unannotated) load dependence graph.
func chaseFixture(t *testing.T) (*ir.Method, *ldg.Graph) {
	t.Helper()
	u := classfile.NewUniverse()
	obj := u.MustDefineClass("Obj", nil,
		classfile.FieldSpec{Name: "val", Kind: value.KindInt},
		classfile.FieldSpec{Name: "child", Kind: value.KindRef},
	)
	ch := u.MustDefineClass("Child", nil,
		classfile.FieldSpec{Name: "x", Kind: value.KindInt},
	)
	p := ir.NewProgram(u)
	b := ir.NewBuilder(p, nil, "scan", value.KindInt, value.KindRef, value.KindInt)
	arr, n := b.Param(0), b.Param(1)
	acc := b.ConstInt(0)
	i := b.ConstInt(0)
	cond := b.NewLabel()
	body := b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	o := b.ArrayLoad(value.KindRef, arr, i)
	c := b.GetField(o, obj.FieldByName("child"))
	x := b.GetField(c, ch.FieldByName("x"))
	b.ArithTo(acc, ir.OpAdd, value.KindInt, acc, x)
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	b.Return(acc)
	m := b.Finish()
	g := cfg.Build(m)
	f := cfg.BuildLoops(g)
	df := dataflow.Reach(g)
	return m, ldg.Build(m, g, df, f.Loops[0], nil)
}

func node(g *ldg.Graph, op ir.Op, nth int) *ldg.Node {
	k := 0
	for _, n := range g.Nodes {
		if n.Op == op {
			if k == nth {
				return n
			}
			k++
		}
	}
	return nil
}

func defaultOpts() Options {
	return Options{C: 1, EnableIntra: true, LineBytes: 64, PageSize: 4096, GuardedIntra: false}
}

func countOps(code []ir.Instr, op ir.Op) int {
	n := 0
	for i := range code {
		if code[i].Op == op {
			n++
		}
	}
	return n
}

func TestNoAnnotationsNoCode(t *testing.T) {
	m, g := chaseFixture(t)
	code, regs, stats := Generate(m, []*ldg.Graph{g}, defaultOpts())
	if code != nil || regs != m.NumRegs || stats.Total() != 0 {
		t.Error("unannotated graph must generate nothing")
	}
}

func TestPlainInterPrefetch(t *testing.T) {
	m, g := chaseFixture(t)
	// Annotate every node with a large inter stride: all adjacent nodes
	// have inter patterns -> plain prefetch per node (modulo line dedup).
	for _, n := range g.Nodes {
		n.HasInter, n.Inter = true, 96
	}
	code, regs, stats := Generate(m, []*ldg.Graph{g}, defaultOpts())
	if code == nil {
		t.Fatal("no code generated")
	}
	if stats.InterPrefetches == 0 || stats.SpecLoads != 0 {
		t.Errorf("want plain inter prefetching only: %+v", stats)
	}
	if regs != m.NumRegs {
		t.Error("plain prefetching must not allocate registers")
	}
	// The rewritten method must still validate.
	m2 := &ir.Method{Name: "x", Params: m.Params, NumRegs: regs, Code: code}
	if err := ir.Validate(m2); err != nil {
		t.Fatalf("rewritten code invalid: %v", err)
	}
	if countOps(code, ir.OpPrefetch) != stats.InterPrefetches {
		t.Error("stats disagree with emitted code")
	}
}

func TestSmallStrideFiltered(t *testing.T) {
	m, g := chaseFixture(t)
	a := node(g, ir.OpArrayLoad, 0)
	a.HasInter, a.Inter = true, 4 // below half a 64-byte line
	_, _, stats := Generate(m, []*ldg.Graph{g}, Options{
		C: 1, EnableIntra: false, LineBytes: 64, PageSize: 4096,
	})
	if stats.InterPrefetches != 0 {
		t.Error("stride 4 must be filtered (profitability condition 3)")
	}
	if stats.FilteredLine != 1 {
		t.Errorf("FilteredLine = %d", stats.FilteredLine)
	}
}

func TestDerefAndIntraGeneration(t *testing.T) {
	m, g := chaseFixture(t)
	a := node(g, ir.OpArrayLoad, 0) // Lx: inter stride 4 (ref array scan)
	b := node(g, ir.OpGetField, 0)  // Ly: no inter (permuted objects)
	c := node(g, ir.OpGetField, 1)  // Lz: intra with Ly
	a.HasInter, a.Inter = true, 4
	for _, e := range b.Succs {
		if e.To == c {
			e.HasIntra, e.Intra = true, 96 // farther than a line
		}
	}
	code, regs, stats := Generate(m, []*ldg.Graph{g}, defaultOpts())
	if stats.SpecLoads != 1 {
		t.Fatalf("want one spec_load, got %+v", stats)
	}
	if stats.DerefPrefetches != 1 {
		t.Errorf("want one dereference prefetch: %+v", stats)
	}
	if stats.IntraPrefetches != 1 {
		t.Errorf("want one intra prefetch: %+v", stats)
	}
	if regs != m.NumRegs+1 {
		t.Error("spec_load needs one fresh register")
	}
	// Validate and check shape: specload followed by prefetches through
	// its destination.
	m2 := &ir.Method{Name: "x", Params: m.Params, NumRegs: regs, Code: code}
	if err := ir.Validate(m2); err != nil {
		t.Fatalf("rewritten code invalid: %v", err)
	}
	si := -1
	for i := range code {
		if code[i].Op == ir.OpSpecLoad {
			si = i
		}
	}
	if si < 0 {
		t.Fatal("no specload in code")
	}
	if code[si+1].Op != ir.OpPrefetch || code[si+1].Addr.Base != code[si].Dst {
		t.Error("dereference prefetch must use the spec_load result")
	}
	// Intra prefetch at F(a)+S.
	if code[si+2].Op != ir.OpPrefetch {
		t.Fatal("intra prefetch missing")
	}
	wantDisp := code[si+1].Addr.Disp + 96
	if code[si+2].Addr.Disp != wantDisp {
		t.Errorf("intra disp = %d, want %d", code[si+2].Addr.Disp, wantDisp)
	}
}

func TestIntraSameLineDeduped(t *testing.T) {
	m, g := chaseFixture(t)
	a := node(g, ir.OpArrayLoad, 0)
	b := node(g, ir.OpGetField, 0)
	c := node(g, ir.OpGetField, 1)
	a.HasInter, a.Inter = true, 4
	for _, e := range b.Succs {
		if e.To == c {
			e.HasIntra, e.Intra = true, 8 // same line as the deref prefetch
		}
	}
	_, _, stats := Generate(m, []*ldg.Graph{g}, defaultOpts())
	if stats.IntraPrefetches != 0 {
		t.Error("intra prefetch within the same line must be deduped (the paper's jess explanation)")
	}
	if stats.FilteredDup == 0 {
		t.Error("dedup filter not counted")
	}
}

func TestInterModeSuppressesDeref(t *testing.T) {
	m, g := chaseFixture(t)
	a := node(g, ir.OpArrayLoad, 0)
	a.HasInter, a.Inter = true, 4
	opts := defaultOpts()
	opts.EnableIntra = false // INTER configuration
	_, _, stats := Generate(m, []*ldg.Graph{g}, opts)
	if stats.SpecLoads != 0 || stats.DerefPrefetches != 0 {
		t.Error("INTER must not generate dereference-based prefetching")
	}
}

func TestUseCountFilter(t *testing.T) {
	m, g := chaseFixture(t)
	a := node(g, ir.OpArrayLoad, 0)
	a.HasInter, a.Inter = true, 96
	a.UseCount = 0 // pretend nothing depends on it
	opts := defaultOpts()
	opts.EnableIntra = false
	_, _, stats := Generate(m, []*ldg.Graph{g}, opts)
	if stats.FilteredUse != 1 || stats.InterPrefetches != 0 {
		t.Errorf("profitability condition 1 not applied: %+v", stats)
	}
}

func TestGuardedMapping(t *testing.T) {
	m, g := chaseFixture(t)
	a := node(g, ir.OpArrayLoad, 0)
	b := node(g, ir.OpGetField, 0)
	c := node(g, ir.OpGetField, 1)
	a.HasInter, a.Inter = true, 4
	for _, e := range b.Succs {
		if e.To == c {
			e.HasIntra, e.Intra = true, 96
		}
	}
	opts := defaultOpts()
	opts.GuardedIntra = true // Pentium 4 policy
	code, _, _ := Generate(m, []*ldg.Graph{g}, opts)
	guarded := 0
	for i := range code {
		if code[i].Op == ir.OpPrefetch && code[i].Guarded {
			guarded++
		}
	}
	if guarded == 0 {
		t.Error("P4 policy must map intra/deref prefetches to guarded loads")
	}
}

func TestFarDisplacementUsesGuard(t *testing.T) {
	m, g := chaseFixture(t)
	a := node(g, ir.OpArrayLoad, 0)
	a.HasInter, a.Inter = true, 4096 // a full page per iteration
	opts := defaultOpts()
	opts.EnableIntra = false
	code, _, _ := Generate(m, []*ldg.Graph{g}, opts)
	found := false
	for i := range code {
		if code[i].Op == ir.OpPrefetch {
			found = true
			if !code[i].Guarded {
				t.Error("stride beyond half a page must use the guarded load (TLB priming)")
			}
		}
	}
	if !found {
		t.Fatal("no prefetch emitted")
	}
}

func TestBranchTargetRemap(t *testing.T) {
	m, g := chaseFixture(t)
	for _, n := range g.Nodes {
		n.HasInter, n.Inter = true, 96
	}
	code, regs, _ := Generate(m, []*ldg.Graph{g}, defaultOpts())
	// Execute-ability proxy: validation plus semantic equivalence of the
	// branch structure — every branch lands on the remapped position of
	// its original target instruction.
	m2 := &ir.Method{Name: "x", Params: m.Params, NumRegs: regs, Code: code}
	if err := ir.Validate(m2); err != nil {
		t.Fatalf("invalid after remap: %v", err)
	}
	// The original non-prefetch instructions appear in order.
	var origOps, newOps []ir.Op
	for i := range m.Code {
		origOps = append(origOps, m.Code[i].Op)
	}
	for i := range code {
		if code[i].Op != ir.OpPrefetch && code[i].Op != ir.OpSpecLoad {
			newOps = append(newOps, code[i].Op)
		}
	}
	if len(origOps) != len(newOps) {
		t.Fatalf("instruction count changed: %d vs %d", len(origOps), len(newOps))
	}
	for i := range origOps {
		if origOps[i] != newOps[i] {
			t.Fatalf("instruction order changed at %d", i)
		}
	}
}

func TestScheduleDistanceScalesDisp(t *testing.T) {
	m, g := chaseFixture(t)
	a := node(g, ir.OpArrayLoad, 0)
	a.HasInter, a.Inter = true, 96
	opts := defaultOpts()
	opts.EnableIntra = false
	var disps []int32
	for _, c := range []int{1, 3} {
		opts.C = c
		code, _, _ := Generate(m, []*ldg.Graph{g}, opts)
		for i := range code {
			if code[i].Op == ir.OpPrefetch {
				disps = append(disps, code[i].Addr.Disp)
			}
		}
	}
	if len(disps) != 2 {
		t.Fatal("expected one prefetch per run")
	}
	if disps[1]-disps[0] != 2*96 {
		t.Errorf("scheduling distance not applied: %v", disps)
	}
}

func TestOriginalMethodUntouched(t *testing.T) {
	m, g := chaseFixture(t)
	orig := len(m.Code)
	for _, n := range g.Nodes {
		n.HasInter, n.Inter = true, 96
	}
	Generate(m, []*ldg.Graph{g}, defaultOpts())
	if len(m.Code) != orig {
		t.Error("Generate must not modify the original method")
	}
	for i := range m.Code {
		if m.Code[i].Op == ir.OpPrefetch {
			t.Fatal("prefetch leaked into the original code")
		}
	}
}
