package ldg

import (
	"strings"
	"testing"

	"strider/internal/cfg"
	"strider/internal/classfile"
	"strider/internal/dataflow"
	"strider/internal/ir"
	"strider/internal/value"
)

// buildChaseMethod assembles a loop with a reference-chasing sequence:
//
//	for i < n { o = arr[i]; f = o.ref; x = f.val; sink }
func buildChaseMethod(t *testing.T) (*ir.Method, *cfg.Graph, *cfg.LoopForest, *dataflow.Defs) {
	t.Helper()
	u := classfile.NewUniverse()
	c := u.MustDefineClass("Obj", nil,
		classfile.FieldSpec{Name: "val", Kind: value.KindInt},
		classfile.FieldSpec{Name: "ref", Kind: value.KindRef},
	)
	fVal := c.FieldByName("val")
	fRef := c.FieldByName("ref")
	p := ir.NewProgram(u)
	b := ir.NewBuilder(p, nil, "chase", value.KindInt, value.KindRef, value.KindInt)
	arr, n := b.Param(0), b.Param(1)
	i := b.ConstInt(0)
	acc := b.ConstInt(0)
	cond := b.NewLabel()
	body := b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	o := b.ArrayLoad(value.KindRef, arr, i) // node A
	f := b.GetField(o, fRef)                // node B (depends on A)
	x := b.GetField(f, fVal)                // node C (depends on B)
	ln := b.ArrayLen(arr)                   // node D (depends on param only)
	b.ArithTo(acc, ir.OpAdd, value.KindInt, acc, x)
	b.ArithTo(acc, ir.OpAdd, value.KindInt, acc, ln)
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, n, body)
	b.Return(acc)
	m := b.Finish()
	g := cfg.Build(m)
	forest := cfg.BuildLoops(g)
	df := dataflow.Reach(g)
	if len(forest.Loops) != 1 {
		t.Fatal("expected one loop")
	}
	return m, g, forest, df
}

func findNode(g *Graph, op ir.Op, nth int) *Node {
	k := 0
	for _, n := range g.Nodes {
		if n.Op == op {
			if k == nth {
				return n
			}
			k++
		}
	}
	return nil
}

func TestBuildNodesAndEdges(t *testing.T) {
	m, g, f, df := buildChaseMethod(t)
	lg := Build(m, g, df, f.Loops[0], nil)
	if len(lg.Nodes) != 4 {
		t.Fatalf("nodes = %d, want 4 (aaload, 2 getfields, arraylen)", len(lg.Nodes))
	}
	a := findNode(lg, ir.OpArrayLoad, 0)
	bNode := findNode(lg, ir.OpGetField, 0)
	cNode := findNode(lg, ir.OpGetField, 1)
	d := findNode(lg, ir.OpArrayLen, 0)
	if a == nil || bNode == nil || cNode == nil || d == nil {
		t.Fatal("missing nodes")
	}
	hasEdge := func(from, to *Node) bool {
		for _, e := range from.Succs {
			if e.To == to {
				return true
			}
		}
		return false
	}
	if !hasEdge(a, bNode) {
		t.Error("missing edge aaload -> getfield(ref)")
	}
	if !hasEdge(bNode, cNode) {
		t.Error("missing edge getfield(ref) -> getfield(val)")
	}
	if hasEdge(a, cNode) {
		t.Error("transitive edge must not be direct")
	}
	if len(d.Preds) != 0 {
		t.Error("arraylen of a parameter has no predecessors")
	}
	// Non-leaf capability: only ref producers have successors.
	if !a.ProducesRef || !bNode.ProducesRef {
		t.Error("ref producers misclassified")
	}
	if cNode.ProducesRef || d.ProducesRef {
		t.Error("int loads cannot be non-leaf nodes")
	}
	// Use counts: every load feeds something.
	for _, n := range lg.Nodes {
		if n.UseCount == 0 {
			t.Errorf("node @%d has no uses", n.Instr)
		}
	}
	if lg.NodeAt(a.Instr) != a {
		t.Error("NodeAt broken")
	}
}

func TestIntraReachableTransitive(t *testing.T) {
	m, g, f, df := buildChaseMethod(t)
	lg := Build(m, g, df, f.Loops[0], nil)
	a := findNode(lg, ir.OpArrayLoad, 0)
	bNode := findNode(lg, ir.OpGetField, 0)
	cNode := findNode(lg, ir.OpGetField, 1)
	// Annotate a chain of intra strides a->b (+24) and b->c (+40).
	for _, e := range a.Succs {
		if e.To == bNode {
			e.HasIntra, e.Intra = true, 24
		}
	}
	for _, e := range bNode.Succs {
		if e.To == cNode {
			e.HasIntra, e.Intra = true, 40
		}
	}
	got := lg.IntraReachable(a)
	if got[bNode] != 24 {
		t.Errorf("direct intra = %d", got[bNode])
	}
	if got[cNode] != 64 {
		t.Errorf("transitive intra must accumulate: %d, want 64", got[cNode])
	}
	if _, ok := got[a]; ok {
		t.Error("start node must not be in its own reachable set")
	}
	// From b, only c.
	gb := lg.IntraReachable(bNode)
	if len(gb) != 1 || gb[cNode] != 40 {
		t.Errorf("IntraReachable(b) = %v", gb)
	}
}

func TestCopyChasedDependence(t *testing.T) {
	// cur = move(load); use of cur must produce an edge from the load.
	u := classfile.NewUniverse()
	c := u.MustDefineClass("N", nil,
		classfile.FieldSpec{Name: "next", Kind: value.KindRef},
	)
	fNext := c.FieldByName("next")
	p := ir.NewProgram(u)
	b := ir.NewBuilder(p, nil, "walk", value.KindInt, value.KindRef)
	cur := b.NewReg()
	b.MoveTo(cur, b.Param(0))
	null := b.ConstNull()
	head := b.Here()
	done := b.NewLabel()
	b.Br(value.KindRef, ir.CondEQ, cur, null, done)
	nx := b.GetField(cur, fNext)
	b.MoveTo(cur, nx)
	b.Goto(head)
	b.Bind(done)
	z := b.ConstInt(0)
	b.Return(z)
	m := b.Finish()
	g := cfg.Build(m)
	f := cfg.BuildLoops(g)
	df := dataflow.Reach(g)
	lg := Build(m, g, df, f.Loops[0], nil)
	if len(lg.Nodes) != 1 {
		t.Fatalf("nodes = %d", len(lg.Nodes))
	}
	n := lg.Nodes[0]
	// The recurrent load must have a self-edge through the move.
	self := false
	for _, e := range n.Succs {
		if e.To == n {
			self = true
		}
	}
	if !self {
		t.Error("recurrent pointer-chasing load needs a self-edge through the copy")
	}
}

func TestPromotedNestedLoopNodes(t *testing.T) {
	// An inner loop's loads appear in the outer graph only when promoted.
	u := classfile.NewUniverse()
	c := u.MustDefineClass("Obj", nil,
		classfile.FieldSpec{Name: "val", Kind: value.KindInt},
	)
	fVal := c.FieldByName("val")
	p := ir.NewProgram(u)
	b := ir.NewBuilder(p, nil, "nested", value.KindInt, value.KindRef, value.KindInt)
	arr, n := b.Param(0), b.Param(1)
	i := b.ConstInt(0)
	acc := b.ConstInt(0)
	oCond, oBody := b.NewLabel(), b.NewLabel()
	iCond, iBody := b.NewLabel(), b.NewLabel()
	j := b.NewReg()
	b.Goto(oCond)
	b.Bind(oBody)
	o := b.ArrayLoad(value.KindRef, arr, i) // outer load
	b.SetInt(j, 0)
	b.Goto(iCond)
	b.Bind(iBody)
	v := b.GetField(o, fVal) // inner load
	b.ArithTo(acc, ir.OpAdd, value.KindInt, acc, v)
	b.IncInt(j, 1)
	b.Bind(iCond)
	three := b.ConstInt(3)
	b.Br(value.KindInt, ir.CondLT, j, three, iBody)
	b.IncInt(i, 1)
	b.Bind(oCond)
	b.Br(value.KindInt, ir.CondLT, i, n, oBody)
	b.Return(acc)
	m := b.Finish()
	g := cfg.Build(m)
	f := cfg.BuildLoops(g)
	df := dataflow.Reach(g)
	post := f.Postorder()
	inner, outer := post[0], post[1]

	without := Build(m, g, df, outer, nil)
	if len(without.Nodes) != 1 {
		t.Fatalf("without promotion: %d nodes, want only the outer aaload", len(without.Nodes))
	}
	with := Build(m, g, df, outer, []*cfg.Loop{inner})
	if len(with.Nodes) != 2 {
		t.Fatalf("with promotion: %d nodes, want 2", len(with.Nodes))
	}
	var promoted *Node
	for _, nd := range with.Nodes {
		if nd.Op == ir.OpGetField {
			promoted = nd
		}
	}
	if promoted == nil || !promoted.FromNestedLoop {
		t.Error("promoted node must be marked FromNestedLoop")
	}
	// The edge aaload -> promoted getfield crosses the loop boundary.
	if len(promoted.Preds) != 1 {
		t.Error("promoted node must depend on the outer aaload")
	}
	// Inner loop's own graph sees only its loads.
	innerG := Build(m, g, df, inner, nil)
	if len(innerG.Nodes) != 1 || innerG.Nodes[0].Op != ir.OpGetField {
		t.Error("inner graph must contain only the inner load")
	}
}

func TestString(t *testing.T) {
	m, g, f, df := buildChaseMethod(t)
	lg := Build(m, g, df, f.Loops[0], nil)
	lg.Nodes[0].HasInter = true
	lg.Nodes[0].Inter = 4
	s := lg.String()
	for _, want := range []string{"load dependence graph", "inter=+4", "->"} {
		if !strings.Contains(s, want) {
			t.Errorf("graph dump missing %q:\n%s", want, s)
		}
	}
}
