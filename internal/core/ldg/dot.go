package ldg

import (
	"fmt"
	"strings"
)

// Dot renders the graph in Graphviz dot format — the rendition of the
// paper's Figure 5. Nodes with inter-iteration stride patterns are drawn
// as boxes annotated with the stride; intra-annotated edges carry their
// stride as the edge label.
func (g *Graph) Dot() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph ldg {\n")
	fmt.Fprintf(&sb, "  label=%q; rankdir=TB;\n", g.Method.QName())
	for _, n := range g.Nodes {
		label := fmt.Sprintf("@%d %s", n.Instr, g.Method.Code[n.Instr].String())
		shape := "ellipse"
		extra := ""
		if n.HasInter {
			shape = "box"
			label += fmt.Sprintf("\\ninter %+d", n.Inter)
		}
		if n.FromNestedLoop {
			extra = ", style=dashed"
		}
		fmt.Fprintf(&sb, "  n%d [label=%q, shape=%s%s];\n", n.Instr, label, shape, extra)
	}
	for _, n := range g.Nodes {
		for _, e := range n.Succs {
			if e.HasIntra {
				fmt.Fprintf(&sb, "  n%d -> n%d [label=\"S=%+d\", penwidth=2];\n",
					e.From.Instr, e.To.Instr, e.Intra)
			} else {
				fmt.Fprintf(&sb, "  n%d -> n%d;\n", e.From.Instr, e.To.Instr)
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
