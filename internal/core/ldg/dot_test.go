package ldg

import (
	"strings"
	"testing"
)

func TestDot(t *testing.T) {
	m, g, f, df := buildChaseMethod(t)
	lg := Build(m, g, df, f.Loops[0], nil)
	lg.Nodes[0].HasInter, lg.Nodes[0].Inter = true, 4
	for _, e := range lg.Nodes[0].Succs {
		e.HasIntra, e.Intra = true, 24
	}
	dot := lg.Dot()
	for _, want := range []string{"digraph ldg", "inter +4", "S=+24", "->", "shape=box"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Error("dot output not closed")
	}
}
