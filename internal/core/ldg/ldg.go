// Package ldg builds the load dependence graph, the structure at the heart
// of the paper's intra-iteration stride discovery (Sec. 3.1):
//
//	"We utilize a directed graph, called a load dependence graph, to
//	capture reference-chasing sequences of load instructions. Each node of
//	the graph is a load instruction using a reference as an operand. A
//	directed edge exists from node L1 to node L2 if and only if L2 is
//	directly data dependent upon L1."
//
// Representing reference-chasing pairs as adjacent nodes limits the number
// of load pairs that must be checked for intra-iteration stride patterns.
package ldg

import (
	"fmt"
	"sort"
	"strings"

	"strider/internal/cfg"
	"strider/internal/dataflow"
	"strider/internal/ir"
	"strider/internal/value"
)

// Node is one load instruction in the loop under consideration.
type Node struct {
	Instr int // instruction index in the method
	Op    ir.Op

	// ProducesRef marks the only ops that can be non-leaf nodes: getfield
	// and getstatic yielding references, and aaload (Sec. 3.1).
	ProducesRef bool

	// FromNestedLoop marks loads that live in a nested loop with a small
	// trip count and were promoted into this (parent) loop's graph.
	FromNestedLoop bool

	Succs []*Edge
	Preds []*Edge

	// Stride annotations, filled by the stride analysis after object
	// inspection. InterRatio/InterSamples keep the dominance statistics
	// behind the verdict for the telemetry layer. RawInter is the
	// dominant (or predicted) stride whether or not it qualified —
	// HasInter carries the verdict, Inter is zero when rejected — so the
	// PGO profile can replay rejected candidates' diagnostics.
	HasInter     bool
	Inter        int64
	RawInter     int64
	InterRatio   float64
	InterSamples int

	// UseCount is the number of instructions data dependent on this load
	// (profitability condition 1, Sec. 3.3).
	UseCount int
}

// Edge is a direct data dependence between two loads, annotated with the
// intra-iteration stride when one was discovered.
type Edge struct {
	From, To *Node

	HasIntra     bool
	Intra        int64
	RawIntra     int64
	IntraRatio   float64
	IntraSamples int
}

// Graph is the load dependence graph of one loop.
type Graph struct {
	Method *ir.Method
	Loop   *cfg.Loop
	Nodes  []*Node

	// SchedC, when positive, overrides the global scheduling distance for
	// this loop (the adaptive-c extension: Sec. 3.3 notes that the right c
	// "depends on the processor's cache parameters and the amount of
	// computation ... in the loop body").
	SchedC int

	// Src marks how the annotations were produced when not by dynamic
	// object inspection ("static" or "pgo", empty for dynamic); the code
	// generator stamps it onto its decision telemetry.
	Src string

	byInstr map[int]*Node
}

// NodeAt returns the node for instruction index i, or nil.
func (g *Graph) NodeAt(i int) *Node { return g.byInstr[i] }

// producesRef reports whether the load yields a reference (non-leaf
// candidate).
func producesRef(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpGetField, ir.OpGetStatic:
		return in.Field.Kind == value.KindRef
	case ir.OpArrayLoad:
		return in.Kind == value.KindRef
	}
	return false
}

// refOperand returns the reference-typed source register whose provenance
// defines the dependence edges, or NoReg for loads without one (getstatic).
func refOperand(in *ir.Instr) ir.Reg {
	switch in.Op {
	case ir.OpGetField, ir.OpArrayLoad, ir.OpArrayLen:
		return in.A
	}
	return ir.NoReg
}

// Build constructs the load dependence graph for a loop. Instructions of
// nested loops listed in promoted are included and marked FromNestedLoop
// (the paper's handling of nested loops with small trip counts, Sec. 3).
func Build(m *ir.Method, g *cfg.Graph, df *dataflow.Defs, loop *cfg.Loop, promoted []*cfg.Loop) *Graph {
	lg := &Graph{Method: m, Loop: loop, byInstr: make(map[int]*Node)}

	inScope := func(i int) (member, nested bool) {
		blk := g.BlockOf(i).ID
		if !loop.Contains(blk) {
			return false, false
		}
		// The instruction is inside this loop; check whether it belongs to
		// one of the promoted nested loops (then it is a promoted node) or
		// to some other nested loop (then it is out of scope).
		for _, p := range promoted {
			if p.Contains(blk) {
				return true, true
			}
		}
		for _, ch := range childrenOf(loop) {
			if ch.Contains(blk) {
				return false, false // nested, not promoted
			}
		}
		return true, false
	}

	for i := range m.Code {
		in := &m.Code[i]
		if !in.Op.IsLDGCandidate() {
			continue
		}
		member, nested := inScope(i)
		if !member {
			continue
		}
		n := &Node{
			Instr:          i,
			Op:             in.Op,
			ProducesRef:    producesRef(in),
			FromNestedLoop: nested,
			UseCount:       df.UseCount(i),
		}
		lg.Nodes = append(lg.Nodes, n)
		lg.byInstr[i] = n
	}
	sort.Slice(lg.Nodes, func(i, j int) bool { return lg.Nodes[i].Instr < lg.Nodes[j].Instr })

	// Edges: To is directly data dependent on From when From is a reaching
	// definition of To's reference operand. Register copies (OpMove) are
	// transparent: a reference that flows through a copy — the usual shape
	// of a recurrent pointer in a chasing loop (`cur = cur.next`) — still
	// produces an edge from the defining load.
	for _, to := range lg.Nodes {
		in := &m.Code[to.Instr]
		reg := refOperand(in)
		if reg == ir.NoReg {
			continue
		}
		seen := map[*Node]bool{}
		for _, def := range loadDefs(m, df, to.Instr, reg, 0) {
			from := lg.byInstr[def]
			if from == nil || !from.ProducesRef || seen[from] {
				continue
			}
			seen[from] = true
			e := &Edge{From: from, To: to}
			from.Succs = append(from.Succs, e)
			to.Preds = append(to.Preds, e)
		}
	}
	return lg
}

// loadDefs returns the load instructions that (possibly through a chain of
// register copies) define reg at use site i.
func loadDefs(m *ir.Method, df *dataflow.Defs, i int, reg ir.Reg, depth int) []int {
	if depth > 4 {
		return nil
	}
	var out []int
	for _, def := range df.ReachingDefs(i, reg) {
		if m.Code[def].Op == ir.OpMove {
			out = append(out, loadDefs(m, df, def, m.Code[def].A, depth+1)...)
			continue
		}
		out = append(out, def)
	}
	return out
}

func childrenOf(l *cfg.Loop) []*cfg.Loop { return l.Children }

// IntraReachable returns the set of nodes related to start by
// intra-iteration stride edges, directly or transitively (paper Sec. 3.3:
// "for each node Lz which has an intra-iteration stride pattern with Ly
// directly or transitively"). The result excludes start itself and maps
// each node to its cumulative stride from start.
func (g *Graph) IntraReachable(start *Node) map[*Node]int64 {
	out := map[*Node]int64{}
	type item struct {
		n *Node
		s int64
	}
	work := []item{{start, 0}}
	seen := map[*Node]bool{start: true}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range it.n.Succs {
			if e.HasIntra && !seen[e.To] {
				seen[e.To] = true
				out[e.To] = it.s + e.Intra
				work = append(work, item{e.To, it.s + e.Intra})
			}
		}
	}
	return out
}

// String renders the graph (nodes with stride annotations, then edges) —
// the representation behind Table 1 / Figure 5 of the paper.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "load dependence graph: %s, loop header B%d, %d nodes\n",
		g.Method.QName(), g.Loop.Header, len(g.Nodes))
	for _, n := range g.Nodes {
		flags := ""
		if n.FromNestedLoop {
			flags += " [nested]"
		}
		if n.HasInter {
			flags += fmt.Sprintf(" inter=%+d", n.Inter)
		}
		fmt.Fprintf(&sb, "  @%-4d %-40s uses=%d%s\n", n.Instr, g.Method.Code[n.Instr].String(), n.UseCount, flags)
	}
	for _, n := range g.Nodes {
		for _, e := range n.Succs {
			intra := ""
			if e.HasIntra {
				intra = fmt.Sprintf("  intra=%+d", e.Intra)
			}
			fmt.Fprintf(&sb, "  @%d -> @%d%s\n", e.From.Instr, e.To.Instr, intra)
		}
	}
	return sb.String()
}
