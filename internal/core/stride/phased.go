package stride

// Phased multiple-stride detection — an extension implementing the second
// of Wu's pattern classes (Sec. 5: "They exploit three stride patterns,
// strong single stride, phased multiple-stride, and weak single stride").
// The paper's own algorithm intentionally restricts itself to single
// strides ("we focus on discovering single stride patterns in in-loop
// loads"); this extension exists for the ablation studies.
//
// A phased pattern is a pair of strides (a, b) that alternate — the
// address stream of, e.g., a loop reading every field of two-field objects
// (deltas: +8, +40, +8, +40, ...). The prefetchable quantity is the phase
// sum a+b, the per-iteration advance.

// Phased describes a detected two-phase stride pattern.
type Phased struct {
	A, B int64 // the alternating strides
}

// Sum returns the per-period advance (the exploitable stride).
func (p Phased) Sum() int64 { return p.A + p.B }

// InterPhased detects a phased two-stride pattern in a load trace: the
// deltas at even positions are dominated by one value and those at odd
// positions by another (both at the given threshold), with different
// values (a uniform stream is a single-stride pattern, not a phased one).
func InterPhased(trace []Rec, threshold float64) (Phased, bool) {
	if len(trace) < 5 {
		return Phased{}, false
	}
	var even, odd []int64
	for i := 1; i < len(trace); i++ {
		d := int64(trace[i].Addr) - int64(trace[i-1].Addr)
		if (i-1)%2 == 0 {
			even = append(even, d)
		} else {
			odd = append(odd, d)
		}
	}
	// One phase may be zero (a pause between advances), so bypass
	// Dominant's zero rejection; a == b covers the all-zero stream, and
	// the sum check below rejects streams that never advance.
	a, okA := dominant(even, threshold)
	b, okB := dominant(odd, threshold)
	if !okA || !okB || a == b {
		return Phased{}, false
	}
	if a+b == 0 {
		return Phased{}, false // ping-pong between two addresses: no advance
	}
	return Phased{A: a, B: b}, true
}
