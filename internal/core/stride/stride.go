// Package stride analyzes the address traces produced by object inspection
// and decides which loads (and which adjacent pairs of loads) exhibit
// stride patterns.
//
// Definitions (paper Sec. 1-2):
//
//   - a load has an inter-iteration stride pattern when the sequence of
//     addresses it accesses over iterations exhibits a (dominant) constant
//     stride;
//   - a pair of loads (Ly, Lz) has an intra-iteration stride pattern when
//     the stride A(Lz) - A(Ly) within one iteration is (dominantly)
//     constant across iterations.
//
// "If the majority (for example, over 75%) of the strides of a load or a
// pair of loads are the same, we recognize that they have stride patterns"
// (Sec. 3.2).
package stride

import "sort"

// Rec is one recorded load execution during object inspection.
type Rec struct {
	Iter int    // target-loop iteration number, starting at 0
	Addr uint32 // memory address accessed
}

// DefaultThreshold is the paper's 75% majority requirement.
const DefaultThreshold = 0.75

// Stat is the full outcome of a dominance analysis: the winning stride,
// the share of samples it covers, the sample count, and whether the
// pattern qualifies under the threshold (including the zero-stride
// rejections the detectors apply). The telemetry layer records Stats so a
// decision log can show *how close* a rejected candidate came.
type Stat struct {
	Stride  int64
	Ratio   float64 // share of samples the winning stride covers
	Samples int
	OK      bool
}

// Dominant returns the dominant value of a delta sequence and whether it
// accounts for at least threshold of the samples. Sequences shorter than 2
// have no pattern; a dominant delta of 0 (loop-invariant address) is
// reported as no pattern — invariant loads need no prefetching.
func Dominant(deltas []int64, threshold float64) (int64, bool) {
	d, ok := dominant(deltas, threshold)
	if d == 0 {
		return 0, false
	}
	return d, ok
}

// dominantStat counts a delta sequence and returns the winner with its
// coverage ratio; OK reflects only the threshold test (zero handling is
// the caller's policy).
func dominantStat(deltas []int64, threshold float64) Stat {
	if len(deltas) < 2 {
		return Stat{Samples: len(deltas)}
	}
	counts := map[int64]int{}
	best, bestN := int64(0), 0
	for _, d := range deltas {
		counts[d]++
		if counts[d] > bestN {
			best, bestN = d, counts[d]
		}
	}
	s := Stat{
		Stride:  best,
		Ratio:   float64(bestN) / float64(len(deltas)),
		Samples: len(deltas),
	}
	s.OK = float64(bestN) >= threshold*float64(len(deltas))
	return s
}

// dominant is Dominant without the zero-value rejection: the phased
// detector needs it, because a zero phase of an alternating pattern is
// exploitable as long as the period still advances.
func dominant(deltas []int64, threshold float64) (int64, bool) {
	s := dominantStat(deltas, threshold)
	if !s.OK {
		return 0, false
	}
	return s.Stride, true
}

// Inter detects an inter-iteration stride for one load from its full trace
// (all executions in order). Using consecutive executions rather than
// per-iteration samples also captures loads in promoted nested loops, whose
// dominant stride is their inner-loop advance — matching how off-line
// stride profiling (Wu) sees the address stream.
func Inter(trace []Rec, threshold float64) (int64, bool) {
	s := InterStat(trace, threshold)
	if !s.OK {
		return 0, false
	}
	return s.Stride, true
}

// InterStat is Inter with the full dominance statistics: the winning
// stride and its coverage ratio even when the pattern is rejected.
func InterStat(trace []Rec, threshold float64) Stat {
	if len(trace) < 3 {
		return Stat{Samples: maxInt(len(trace)-1, 0)}
	}
	deltas := make([]int64, 0, len(trace)-1)
	for i := 1; i < len(trace); i++ {
		deltas = append(deltas, int64(trace[i].Addr)-int64(trace[i-1].Addr))
	}
	s := dominantStat(deltas, threshold)
	if s.Stride == 0 {
		s.OK = false // loop-invariant address: no prefetch needed
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// firstPerIter reduces a trace to the first execution per iteration,
// returning a map iteration -> address.
func firstPerIter(trace []Rec) map[int]uint32 {
	m := make(map[int]uint32, len(trace))
	for _, r := range trace {
		if _, seen := m[r.Iter]; !seen {
			m[r.Iter] = r.Addr
		}
	}
	return m
}

// Intra detects an intra-iteration stride for an adjacent pair (from, to).
// For each iteration where both executed, the sample is
// A(to) - A(from) using each load's first execution in that iteration; the
// pair has a pattern when a dominant non-zero sample covers at least
// threshold of the iterations (paper Sec. 2: "the sequence of the strides
// between them shows a pattern over iterations").
func Intra(from, to []Rec, threshold float64) (int64, bool) {
	s := IntraStat(from, to, threshold)
	if !s.OK {
		return 0, false
	}
	return s.Stride, true
}

// IntraStat is Intra with the full dominance statistics.
func IntraStat(from, to []Rec, threshold float64) Stat {
	fa := firstPerIter(from)
	ta := firstPerIter(to)
	// Walk iterations in order: the winning-stride tie-break (visible in
	// the decision log even for rejected candidates) must be
	// deterministic, not map-ordered.
	iters := make([]int, 0, len(fa))
	for iter := range fa {
		iters = append(iters, iter)
	}
	sort.Ints(iters)
	var samples []int64
	for _, iter := range iters {
		if b, ok := ta[iter]; ok {
			samples = append(samples, int64(b)-int64(fa[iter]))
		}
	}
	// The samples are already strides (not deltas of a sequence), so the
	// shared counting applies directly.
	s := dominantStat(samples, threshold)
	if s.Stride == 0 {
		// A dominant zero stride means both loads hit the same address —
		// and therefore the same cache line — every iteration; a prefetch
		// for the pair would duplicate the one already issued for `from`
		// (the Sec. 3.3 cache-line dedup filter).
		s.OK = false
	}
	return s
}
