// Package stride analyzes the address traces produced by object inspection
// and decides which loads (and which adjacent pairs of loads) exhibit
// stride patterns.
//
// Definitions (paper Sec. 1-2):
//
//   - a load has an inter-iteration stride pattern when the sequence of
//     addresses it accesses over iterations exhibits a (dominant) constant
//     stride;
//   - a pair of loads (Ly, Lz) has an intra-iteration stride pattern when
//     the stride A(Lz) - A(Ly) within one iteration is (dominantly)
//     constant across iterations.
//
// "If the majority (for example, over 75%) of the strides of a load or a
// pair of loads are the same, we recognize that they have stride patterns"
// (Sec. 3.2).
package stride

// Rec is one recorded load execution during object inspection.
type Rec struct {
	Iter int    // target-loop iteration number, starting at 0
	Addr uint32 // memory address accessed
}

// DefaultThreshold is the paper's 75% majority requirement.
const DefaultThreshold = 0.75

// Dominant returns the dominant value of a delta sequence and whether it
// accounts for at least threshold of the samples. Sequences shorter than 2
// have no pattern; a dominant delta of 0 (loop-invariant address) is
// reported as no pattern — invariant loads need no prefetching.
func Dominant(deltas []int64, threshold float64) (int64, bool) {
	d, ok := dominant(deltas, threshold)
	if d == 0 {
		return 0, false
	}
	return d, ok
}

// dominant is Dominant without the zero-value rejection: the phased
// detector needs it, because a zero phase of an alternating pattern is
// exploitable as long as the period still advances.
func dominant(deltas []int64, threshold float64) (int64, bool) {
	if len(deltas) < 2 {
		return 0, false
	}
	counts := map[int64]int{}
	best, bestN := int64(0), 0
	for _, d := range deltas {
		counts[d]++
		if counts[d] > bestN {
			best, bestN = d, counts[d]
		}
	}
	if float64(bestN) < threshold*float64(len(deltas)) {
		return 0, false
	}
	return best, true
}

// Inter detects an inter-iteration stride for one load from its full trace
// (all executions in order). Using consecutive executions rather than
// per-iteration samples also captures loads in promoted nested loops, whose
// dominant stride is their inner-loop advance — matching how off-line
// stride profiling (Wu) sees the address stream.
func Inter(trace []Rec, threshold float64) (int64, bool) {
	if len(trace) < 3 {
		return 0, false
	}
	deltas := make([]int64, 0, len(trace)-1)
	for i := 1; i < len(trace); i++ {
		deltas = append(deltas, int64(trace[i].Addr)-int64(trace[i-1].Addr))
	}
	return Dominant(deltas, threshold)
}

// firstPerIter reduces a trace to the first execution per iteration,
// returning a map iteration -> address.
func firstPerIter(trace []Rec) map[int]uint32 {
	m := make(map[int]uint32, len(trace))
	for _, r := range trace {
		if _, seen := m[r.Iter]; !seen {
			m[r.Iter] = r.Addr
		}
	}
	return m
}

// Intra detects an intra-iteration stride for an adjacent pair (from, to).
// For each iteration where both executed, the sample is
// A(to) - A(from) using each load's first execution in that iteration; the
// pair has a pattern when a dominant non-zero sample covers at least
// threshold of the iterations (paper Sec. 2: "the sequence of the strides
// between them shows a pattern over iterations").
func Intra(from, to []Rec, threshold float64) (int64, bool) {
	fa := firstPerIter(from)
	ta := firstPerIter(to)
	var samples []int64
	for iter, a := range fa {
		if b, ok := ta[iter]; ok {
			samples = append(samples, int64(b)-int64(a))
		}
	}
	if len(samples) < 2 {
		return 0, false
	}
	// Dominant() interprets its input as deltas; here samples are already
	// strides, and all of them must agree, so reuse the same counting.
	counts := map[int64]int{}
	best, bestN := int64(0), 0
	for _, s := range samples {
		counts[s]++
		if counts[s] > bestN {
			best, bestN = s, counts[s]
		}
	}
	if best == 0 {
		// A dominant zero stride means both loads hit the same address —
		// and therefore the same cache line — every iteration; a prefetch
		// for the pair would duplicate the one already issued for `from`
		// (the Sec. 3.3 cache-line dedup filter).
		return 0, false
	}
	if float64(bestN) < threshold*float64(len(samples)) {
		return 0, false
	}
	return best, true
}
