package stride

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func trace(addrs ...uint32) []Rec {
	out := make([]Rec, len(addrs))
	for i, a := range addrs {
		out[i] = Rec{Iter: i, Addr: a}
	}
	return out
}

func TestDominantPerfect(t *testing.T) {
	d, ok := Dominant([]int64{8, 8, 8, 8}, DefaultThreshold)
	if !ok || d != 8 {
		t.Errorf("perfect stride: (%d, %v)", d, ok)
	}
}

func TestDominantMajority(t *testing.T) {
	// 4 of 5 = 80% >= 75%: accepted.
	if d, ok := Dominant([]int64{8, 8, 8, 8, 100}, DefaultThreshold); !ok || d != 8 {
		t.Errorf("80%% majority rejected: (%d, %v)", d, ok)
	}
	// 3 of 5 = 60% < 75%: rejected.
	if _, ok := Dominant([]int64{8, 8, 8, 9, 100}, DefaultThreshold); ok {
		t.Error("60% majority accepted")
	}
}

func TestDominantZeroRejected(t *testing.T) {
	// Loop-invariant addresses (delta 0) are not exploitable patterns.
	if _, ok := Dominant([]int64{0, 0, 0, 0}, DefaultThreshold); ok {
		t.Error("zero stride must not be a pattern")
	}
}

func TestDominantShortSequence(t *testing.T) {
	if _, ok := Dominant([]int64{8}, DefaultThreshold); ok {
		t.Error("a single delta is not a pattern")
	}
	if _, ok := Dominant(nil, DefaultThreshold); ok {
		t.Error("empty deltas are not a pattern")
	}
}

func TestDominantNegativeStride(t *testing.T) {
	d, ok := Dominant([]int64{-208, -208, -208}, DefaultThreshold)
	if !ok || d != -208 {
		t.Error("negative strides are patterns too (backward scans)")
	}
}

func TestInterPerfect(t *testing.T) {
	tr := trace(1000, 1004, 1008, 1012, 1016)
	d, ok := Inter(tr, DefaultThreshold)
	if !ok || d != 4 {
		t.Errorf("Inter = (%d, %v)", d, ok)
	}
}

func TestInterTooShort(t *testing.T) {
	if _, ok := Inter(trace(1000, 1004), DefaultThreshold); ok {
		t.Error("two samples are not a pattern")
	}
	if _, ok := Inter(nil, DefaultThreshold); ok {
		t.Error("empty trace")
	}
}

func TestInterIrregular(t *testing.T) {
	tr := trace(1000, 5000, 1200, 9000, 1400, 12000)
	if _, ok := Inter(tr, DefaultThreshold); ok {
		t.Error("irregular addresses must not show a pattern")
	}
}

func TestInterMultipleExecutionsPerIteration(t *testing.T) {
	// A load in a promoted nested loop executes several times per outer
	// iteration; the dominant delta is the inner advance.
	tr := []Rec{
		{0, 100}, {0, 104}, {0, 108}, {0, 112},
		{1, 200}, {1, 204}, {1, 208}, {1, 212},
		{2, 300}, {2, 304}, {2, 308}, {2, 312},
	}
	d, ok := Inter(tr, DefaultThreshold)
	if !ok || d != 4 {
		t.Errorf("nested-loop trace: (%d, %v)", d, ok)
	}
}

func TestIntraConstantOffset(t *testing.T) {
	// A(Lz) - A(Ly) constant across iterations, although neither load has
	// an inter-iteration stride — the paper's Sec. 2 scenario.
	from := []Rec{{0, 0x1000}, {1, 0x8000}, {2, 0x3000}, {3, 0x9000}}
	to := []Rec{{0, 0x1018}, {1, 0x8018}, {2, 0x3018}, {3, 0x9018}}
	s, ok := Intra(from, to, DefaultThreshold)
	if !ok || s != 0x18 {
		t.Errorf("Intra = (%d, %v)", s, ok)
	}
}

func TestIntraUsesFirstExecutionPerIteration(t *testing.T) {
	from := []Rec{{0, 0x1000}, {0, 0x1100}, {1, 0x2000}, {1, 0x2300}}
	to := []Rec{{0, 0x1020}, {0, 0x1500}, {1, 0x2020}}
	s, ok := Intra(from, to, DefaultThreshold)
	if !ok || s != 0x20 {
		t.Errorf("first-execution sampling broken: (%d, %v)", s, ok)
	}
}

func TestIntraZeroStrideRejected(t *testing.T) {
	// A pair of loads hitting the same address every iteration has a
	// dominant stride of exactly 0: prefetching it would duplicate the
	// cache line already fetched by `from`, which the paper's Sec. 3.3
	// profitability filter forbids. Intra must reject it like Dominant.
	from := []Rec{{0, 0x1000}, {1, 0x2000}, {2, 0x3000}, {3, 0x4000}}
	to := []Rec{{0, 0x1000}, {1, 0x2000}, {2, 0x3000}, {3, 0x4000}}
	if s, ok := Intra(from, to, DefaultThreshold); ok {
		t.Errorf("same-address pair accepted with stride %d; zero intra strides must be rejected", s)
	}
	// A dominant-but-not-unanimous zero must be rejected too.
	to[3].Addr = 0x4018
	if s, ok := Intra(from, to, DefaultThreshold); ok {
		t.Errorf("75%%-dominant zero stride accepted with stride %d", s)
	}
}

func TestIntraMismatchedIterations(t *testing.T) {
	from := []Rec{{0, 0x1000}, {2, 0x3000}}
	to := []Rec{{1, 0x2000}, {3, 0x4000}}
	if _, ok := Intra(from, to, DefaultThreshold); ok {
		t.Error("no common iterations: no pattern")
	}
}

func TestIntraIrregular(t *testing.T) {
	from := []Rec{{0, 0x1000}, {1, 0x2000}, {2, 0x3000}}
	to := []Rec{{0, 0x1010}, {1, 0x2080}, {2, 0x3500}}
	if _, ok := Intra(from, to, DefaultThreshold); ok {
		t.Error("varying pair strides must not be a pattern")
	}
}

func TestThresholdKnob(t *testing.T) {
	deltas := []int64{8, 8, 8, 5, 9} // 60% dominant
	if _, ok := Dominant(deltas, 0.75); ok {
		t.Error("60% fails at 0.75")
	}
	if d, ok := Dominant(deltas, 0.5); !ok || d != 8 {
		t.Error("60% passes at 0.5")
	}
}

// Property: a perfect arithmetic progression of any non-zero stride is
// always detected with exactly that stride.
func TestQuickPerfectStrideAlwaysFound(t *testing.T) {
	f := func(start uint32, stride int16, n uint8) bool {
		if stride == 0 {
			return true
		}
		ln := 3 + int(n%30)
		tr := make([]Rec, ln)
		a := int64(start)
		for i := range tr {
			tr[i] = Rec{Iter: i, Addr: uint32(a)}
			a += int64(stride)
		}
		d, ok := Inter(tr, DefaultThreshold)
		return ok && d == int64(stride)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: uniformly random addresses (almost) never show a pattern.
func TestQuickRandomNoPattern(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := make([]Rec, 20)
		for i := range tr {
			tr[i] = Rec{Iter: i, Addr: rng.Uint32() % (1 << 28)}
		}
		_, ok := Inter(tr, DefaultThreshold)
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
