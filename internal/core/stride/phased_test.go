package stride

import (
	"testing"
	"testing/quick"
)

func phasedTrace(start uint32, a, b int64, n int) []Rec {
	tr := make([]Rec, n)
	addr := int64(start)
	for i := range tr {
		tr[i] = Rec{Iter: i, Addr: uint32(addr)}
		if i%2 == 0 {
			addr += a
		} else {
			addr += b
		}
	}
	return tr
}

func TestInterPhasedDetects(t *testing.T) {
	tr := phasedTrace(0x1000, 8, 40, 12)
	p, ok := InterPhased(tr, DefaultThreshold)
	if !ok {
		t.Fatal("alternating 8/40 not detected")
	}
	if p.A != 8 || p.B != 40 || p.Sum() != 48 {
		t.Errorf("phased = %+v", p)
	}
}

func TestInterPhasedRejectsSingleStride(t *testing.T) {
	tr := phasedTrace(0x1000, 16, 16, 12)
	if _, ok := InterPhased(tr, DefaultThreshold); ok {
		t.Error("a uniform stream is not a phased pattern")
	}
}

func TestInterPhasedRejectsPingPong(t *testing.T) {
	tr := phasedTrace(0x1000, 64, -64, 12)
	if _, ok := InterPhased(tr, DefaultThreshold); ok {
		t.Error("zero-advance alternation is not exploitable")
	}
}

// TestInterPhasedZeroPhase is the regression test for a flaky quick-check
// failure: one phase of an alternating pattern may legitimately be zero
// (advance, pause, advance, ...); only a stream whose period never
// advances (a+b == 0) is unexploitable.
func TestInterPhasedZeroPhase(t *testing.T) {
	tr := phasedTrace(0x1000, -64, 0, 12)
	p, ok := InterPhased(tr, DefaultThreshold)
	if !ok {
		t.Fatal("-64/0 alternation not detected")
	}
	if p.A != -64 || p.B != 0 || p.Sum() != -64 {
		t.Errorf("phased = %+v", p)
	}
}

func TestInterPhasedRejectsShort(t *testing.T) {
	tr := phasedTrace(0x1000, 8, 40, 4)
	if _, ok := InterPhased(tr, DefaultThreshold); ok {
		t.Error("too few samples")
	}
}

func TestInterPhasedRejectsIrregular(t *testing.T) {
	tr := []Rec{{0, 100}, {1, 500}, {2, 900}, {3, 5000}, {4, 100}, {5, 9000}, {6, 200}}
	if _, ok := InterPhased(tr, DefaultThreshold); ok {
		t.Error("irregular stream accepted")
	}
}

func TestInterPhasedNotSeenBySingleStride(t *testing.T) {
	// The motivating case: single-stride detection (the paper's algorithm)
	// misses what the phased detector finds.
	tr := phasedTrace(0x1000, 8, 40, 16)
	if _, ok := Inter(tr, DefaultThreshold); ok {
		t.Fatal("single-stride detector should not accept 8/40 alternation")
	}
	if _, ok := InterPhased(tr, DefaultThreshold); !ok {
		t.Fatal("phased detector must accept it")
	}
}

// Property: any alternation of two distinct strides with non-zero sum is
// detected exactly.
func TestQuickPhased(t *testing.T) {
	f := func(start uint32, a8, b8 int8, n uint8) bool {
		a, b := int64(a8), int64(b8)
		if a == b || a+b == 0 {
			return true
		}
		ln := 6 + int(n%20)
		tr := phasedTrace(start, a, b, ln)
		p, ok := InterPhased(tr, DefaultThreshold)
		return ok && p.A == a && p.B == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
