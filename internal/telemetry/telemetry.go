// Package telemetry is the observability layer of the stack: a
// zero-dependency event vocabulary plus a Recorder interface that the VM,
// the JIT pipeline, the memory simulator, and the experiment harness emit
// into. A nil Recorder costs one pointer comparison per emission site and
// zero allocations, so the layer can stay threaded through the hot paths
// permanently.
//
// The events capture *why* the compiler accepted or rejected every
// prefetch candidate — the Sec. 3.3 profitability filter and the hardware
// mapping are the paper's load-bearing decisions, and end-of-run counters
// cannot explain a moved table cell. Each Reason code names the clause it
// implements, so a decision log reads back against the paper directly.
package telemetry

import "time"

// Reason codes every prefetch-candidate decision with the rule that
// produced it. Emit* codes mean an instruction was generated; Filter*
// codes are per-candidate rejections (the Sec. 3.3 profitability
// analysis); Loop* codes are whole-loop verdicts from object inspection.
type Reason uint8

// The decision vocabulary.
const (
	ReasonNone Reason = iota

	// EmitInter: a plain inter-iteration prefetch(A(Lx)+d*c) was inserted.
	EmitInter
	// EmitSpecLoad: a spec_load of the predicted A(Lx)+d*c was inserted
	// (the root of dereference-based prefetching).
	EmitSpecLoad
	// EmitDeref: a dereference prefetch(F(a)) was inserted for a pair.
	EmitDeref
	// EmitIntra: an intra-iteration prefetch(F(a)+S) was inserted for a
	// pair related by intra-stride edges.
	EmitIntra

	// FilterNoUse: rejected by profitability condition 1 — no instruction
	// is data dependent on the load.
	FilterNoUse
	// FilterDupLine: rejected by profitability condition 2 — the target
	// apparently shares a cache line with an already-prefetched address.
	FilterDupLine
	// FilterSmallStride: rejected by profitability condition 3 — the
	// stride is within half a cache line, so the hardware prefetcher
	// already covers it.
	FilterSmallStride
	// FilterNoPattern: the inspected trace has no qualifying dominant
	// stride — either no delta reached the majority threshold (Sec. 3.2's
	// 75% rule), or the dominant stride is zero (a loop-invariant
	// address, covered by its first access).
	FilterNoPattern
	// FilterHugeStride: the stride times the scheduling distance is
	// implausibly large; never profitable.
	FilterHugeStride
	// FilterNoAddr: the load has no prefetchable address expression
	// (e.g. getstatic).
	FilterNoAddr

	// LoopAccepted: the loop's graph was annotated and sent to codegen.
	LoopAccepted
	// LoopSmallTrip: the loop exited naturally within the small-trip
	// bound; its loads are promoted into the parent's graph instead.
	LoopSmallTrip
	// LoopIncomplete: object inspection never observed two full
	// iterations of the loop.
	LoopIncomplete
	// LoopNoLoads: the loop body contains no loads to consider.
	LoopNoLoads

	// LoopStaticPredicted: the loop's graph was annotated by the offline
	// static analyzer — no object inspection ran (the PredictStatic
	// prediction source).
	LoopStaticPredicted
	// LoopPGOMiss: the PGO profile had no (matching) entry for the loop;
	// the compiler fell back to dynamic inspection.
	LoopPGOMiss
)

var reasonNames = [...]string{
	ReasonNone:          "NONE",
	EmitInter:           "EMIT_INTER",
	EmitSpecLoad:        "EMIT_SPECLOAD",
	EmitDeref:           "EMIT_DEREF",
	EmitIntra:           "EMIT_INTRA",
	FilterNoUse:         "FILTER_NO_USE",
	FilterDupLine:       "FILTER_DUP_LINE",
	FilterSmallStride:   "FILTER_SMALL_STRIDE",
	FilterNoPattern:     "FILTER_NO_PATTERN",
	FilterHugeStride:    "FILTER_HUGE_STRIDE",
	FilterNoAddr:        "FILTER_NO_ADDR",
	LoopAccepted:        "LOOP_ACCEPTED",
	LoopSmallTrip:       "LOOP_SMALL_TRIP",
	LoopIncomplete:      "LOOP_INCOMPLETE",
	LoopNoLoads:         "LOOP_NO_LOADS",
	LoopStaticPredicted: "LOOP_STATIC_PREDICTED",
	LoopPGOMiss:         "LOOP_PGO_MISS",
}

// String returns the stable reason mnemonic used in logs and exports.
func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return "REASON?"
}

// Clause names the paper rule a reason code implements, or "" when the
// code is not tied to a specific clause.
func (r Reason) Clause() string {
	switch r {
	case FilterNoUse:
		return "Sec. 3.3 profitability (1): no data-dependent use"
	case FilterDupLine:
		return "Sec. 3.3 profitability (2): cache line already prefetched"
	case FilterSmallStride:
		return "Sec. 3.3 profitability (3): stride within half a line"
	case FilterNoPattern:
		return "Sec. 3.2: no qualifying dominant stride"
	case LoopSmallTrip:
		return "Sec. 3: small trip count, loads promoted to parent"
	case LoopStaticPredicted:
		return "static analysis: strides predicted without execution"
	case LoopPGOMiss:
		return "PGO: no profile entry, dynamic inspection fallback"
	case EmitInter, EmitSpecLoad, EmitDeref, EmitIntra:
		return "Sec. 3.3 code generation"
	}
	return ""
}

// Emitted reports whether the reason corresponds to generated code.
func (r Reason) Emitted() bool {
	switch r {
	case EmitInter, EmitSpecLoad, EmitDeref, EmitIntra:
		return true
	}
	return false
}

// PrefetchOutcome is what the memory simulator did with one software
// prefetch request (the return value of memsim's Prefetch).
type PrefetchOutcome uint8

// Prefetch outcomes.
const (
	// PrefetchFetched: the line was not at the target level; a fill was
	// started and an in-flight slot consumed.
	PrefetchFetched PrefetchOutcome = iota
	// PrefetchUseless: the line was already present at or above the
	// target level; the request consumed an issue slot for nothing.
	PrefetchUseless
	// PrefetchDroppedTLB: a plain (hardware) prefetch was cancelled on a
	// DTLB miss.
	PrefetchDroppedTLB
	// PrefetchDroppedQueue: the bounded prefetch queue was full.
	PrefetchDroppedQueue
)

// String returns the outcome mnemonic.
func (o PrefetchOutcome) String() string {
	switch o {
	case PrefetchFetched:
		return "fetched"
	case PrefetchUseless:
		return "useless"
	case PrefetchDroppedTLB:
		return "dropped-tlb"
	case PrefetchDroppedQueue:
		return "dropped-queue"
	}
	return "outcome?"
}

// CompileEvent is one JIT compilation: the threshold hit, the loops
// processed, and the compile-time ledger (Figure 11's terms).
type CompileEvent struct {
	Method        string
	Mode          string
	Invocations   int // invocation count that triggered compilation
	Loops         int // loops whose graphs reached annotation
	InspectSteps  int // instructions interpreted by object inspection
	BaseUnits     uint64
	PrefetchUnits uint64
	Prefetches    int // prefetch + spec_load instructions inserted
}

// LoopEvent is the object-inspection verdict for one target loop.
type LoopEvent struct {
	Method      string
	Loop        int // loop header block ID
	Verdict     Reason
	Trips       int // target-loop iterations observed
	NaturalExit bool
	Steps       int // inspection steps spent on this loop
	Nodes       int // load dependence graph nodes
	// Src marks verdicts not produced by dynamic object inspection
	// ("static" or "pgo"; empty for the dynamic path).
	Src string
}

// DecisionEvent is one stride/filter decision for a load (Pair < 0) or a
// load pair (Pair = the dependent load Ly). Instr indices refer to the
// method's original (pre-insertion) code, matching striderun -dot output.
type DecisionEvent struct {
	Method  string
	Loop    int // loop header block ID
	Instr   int // Lx: the load's instruction index
	Pair    int // Ly for pair decisions, -1 otherwise
	Op      string
	Stride  int64   // discovered stride (inter for loads, intra for pairs)
	Ratio   float64 // dominance ratio of the winning stride
	Samples int     // samples behind the ratio
	Reason  Reason
	// Src marks decisions over statically predicted or profile-replayed
	// annotations ("static" or "pgo"; empty for dynamic inspection).
	Src string
}

// SiteEvent is end-of-run memory attribution for one code site: either a
// prefetch site (Kind "prefetch"; Issued/Useless/Dropped filled) or a
// demand-load site (Kind "load"; Count/StallCycles filled). For prefetch
// sites, Site is the original instruction index of the source load Lx —
// the same index DecisionEvents carry — so outcomes join back to the
// decision that emitted them.
type SiteEvent struct {
	Method      string
	Site        int
	Kind        string
	Issued      uint64
	Useless     uint64
	Dropped     uint64
	Count       uint64
	StallCycles uint64
}

// CellEvent is one harness grid cell completing: scheduling telemetry.
type CellEvent struct {
	Cell   string
	Wall   time.Duration
	Shared bool // served from cache or joined an in-flight execution
	Err    string
}

// HWEvent is the end-of-run summary of the simulated hardware prefetcher:
// which model ran and what it did with the reference stream it observed
// (the memsim per-prefetcher statistics of the measured run).
type HWEvent struct {
	Machine string
	Model   string
	// Trains is the number of references the unit observed (demand L1
	// misses plus software prefetches).
	Trains uint64
	// Allocs is the number of new table/tracker entries allocated.
	Allocs uint64
	// Hits is the number of trains whose delta matched the prediction.
	Hits uint64
	// Issued is the number of prefetch fills installed into the L2.
	Issued uint64
	// Suppressed is the number of predicted prefetches withheld at a page
	// boundary or because the line was already cached.
	Suppressed uint64
}

// Recorder receives telemetry events. Implementations must be safe for
// concurrent use: the harness hammers one Recorder from every grid
// worker. Emission sites guard with a nil check, so a nil Recorder is
// free.
type Recorder interface {
	Compile(CompileEvent)
	Loop(LoopEvent)
	Decision(DecisionEvent)
	Site(SiteEvent)
	Cell(CellEvent)
	HW(HWEvent)
}

// Nop is a Recorder that discards everything; embed it to implement only
// the events a test cares about.
type Nop struct{}

// Compile implements Recorder.
func (Nop) Compile(CompileEvent) {}

// Loop implements Recorder.
func (Nop) Loop(LoopEvent) {}

// Decision implements Recorder.
func (Nop) Decision(DecisionEvent) {}

// Site implements Recorder.
func (Nop) Site(SiteEvent) {}

// Cell implements Recorder.
func (Nop) Cell(CellEvent) {}

// HW implements Recorder.
func (Nop) HW(HWEvent) {}
