// Trace: the standard in-memory Recorder, exportable as Chrome
// trace_event JSON (chrome://tracing, Perfetto) and as a flat CSV metric
// table.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Trace collects events in memory. It is safe for concurrent use; event
// order is the serialized arrival order.
type Trace struct {
	mu     sync.Mutex
	start  time.Time
	events []traceEvent
}

type traceEvent struct {
	ts time.Duration // since trace start
	ev any           // one of the *Event structs
}

// NewTrace creates an empty trace; timestamps are relative to this call.
func NewTrace() *Trace {
	return &Trace{start: time.Now()}
}

func (t *Trace) add(ev any) {
	now := time.Since(t.start)
	t.mu.Lock()
	t.events = append(t.events, traceEvent{ts: now, ev: ev})
	t.mu.Unlock()
}

// Compile implements Recorder.
func (t *Trace) Compile(e CompileEvent) { t.add(e) }

// Loop implements Recorder.
func (t *Trace) Loop(e LoopEvent) { t.add(e) }

// Decision implements Recorder.
func (t *Trace) Decision(e DecisionEvent) { t.add(e) }

// Site implements Recorder.
func (t *Trace) Site(e SiteEvent) { t.add(e) }

// Cell implements Recorder.
func (t *Trace) Cell(e CellEvent) { t.add(e) }

// HW implements Recorder.
func (t *Trace) HW(e HWEvent) { t.add(e) }

// Len returns the number of collected events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a snapshot of the collected events in arrival order.
func (t *Trace) Events() []any {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]any, len(t.events))
	for i, e := range t.events {
		out[i] = e.ev
	}
	return out
}

// snapshot copies the raw event list for the exporters.
func (t *Trace) snapshot() []traceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]traceEvent(nil), t.events...)
}

// chromeEvent is one entry of the Chrome trace_event "JSON Array Format";
// ph "i" is an instant event, ph "X" a complete event with a duration.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Ph    string         `json:"ph"`
	TS    int64          `json:"ts"` // microseconds
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the trace in Chrome trace_event JSON object
// format ({"traceEvents": [...]}), loadable by chrome://tracing and
// Perfetto. Grid cells become complete ("X") events spanning their wall
// time; everything else becomes an instant ("i") event carrying its
// payload in args.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	evs := t.snapshot()
	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: make([]chromeEvent, 0, len(evs)), DisplayTimeUnit: "ms"}

	for _, te := range evs {
		ts := te.ts.Microseconds()
		ce := chromeEvent{Ph: "i", TS: ts, PID: 1, TID: 1, Scope: "t"}
		switch e := te.ev.(type) {
		case CompileEvent:
			ce.Name = "compile " + e.Method
			ce.Cat = "jit"
			ce.Args = map[string]any{
				"mode": e.Mode, "invocations": e.Invocations,
				"loops": e.Loops, "inspect_steps": e.InspectSteps,
				"base_units": e.BaseUnits, "prefetch_units": e.PrefetchUnits,
				"prefetches": e.Prefetches,
			}
		case LoopEvent:
			ce.Name = fmt.Sprintf("loop %s@B%d", e.Method, e.Loop)
			ce.Cat = "inspect"
			ce.Args = map[string]any{
				"verdict": e.Verdict.String(), "trips": e.Trips,
				"natural_exit": e.NaturalExit, "steps": e.Steps, "nodes": e.Nodes,
			}
		case DecisionEvent:
			ce.Name = fmt.Sprintf("decision %s@%d", e.Method, e.Instr)
			ce.Cat = "filter"
			ce.Args = map[string]any{
				"op": e.Op, "loop": e.Loop, "pair": e.Pair,
				"stride": e.Stride, "ratio": e.Ratio, "samples": e.Samples,
				"reason": e.Reason.String(), "clause": e.Reason.Clause(),
			}
		case SiteEvent:
			ce.Name = fmt.Sprintf("site %s@%d", e.Method, e.Site)
			ce.Cat = "memsim"
			ce.Args = map[string]any{
				"kind": e.Kind, "issued": e.Issued, "useless": e.Useless,
				"dropped": e.Dropped, "count": e.Count, "stall_cycles": e.StallCycles,
			}
		case HWEvent:
			ce.Name = "hw " + e.Model
			ce.Cat = "memsim"
			ce.Args = map[string]any{
				"machine": e.Machine, "trains": e.Trains, "allocs": e.Allocs,
				"hits": e.Hits, "issued": e.Issued, "suppressed": e.Suppressed,
			}
		case CellEvent:
			ce.Name = e.Cell
			ce.Cat = "grid"
			ce.Ph = "X"
			ce.Scope = ""
			ce.Dur = e.Wall.Microseconds()
			if ce.TS >= ce.Dur {
				ce.TS -= ce.Dur // cells report at completion; span backwards
			}
			ce.TID = 2
			ce.Args = map[string]any{"shared": e.Shared}
			if e.Err != "" {
				ce.Args["error"] = e.Err
			}
		default:
			continue
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// csvColumns is the fixed column superset of the CSV metric export;
// columns not applicable to an event kind are left empty.
var csvColumns = []string{
	"ts_us", "kind", "method", "mode", "loop", "instr", "pair", "op",
	"reason", "clause", "stride", "ratio", "samples", "trips", "steps",
	"nodes", "invocations", "loops", "base_units", "prefetch_units",
	"prefetches", "issued", "useless", "dropped", "count", "stall_cycles",
	"machine", "model", "trains", "allocs", "hits", "suppressed",
	"cell", "wall_us", "shared", "error",
}

// WriteCSV writes one row per event with a fixed column superset, so the
// file loads into any spreadsheet or dataframe without a schema.
func (t *Trace) WriteCSV(w io.Writer) error {
	col := make(map[string]int, len(csvColumns))
	for i, name := range csvColumns {
		col[name] = i
	}
	if err := writeCSVRow(w, csvColumns); err != nil {
		return err
	}
	for _, te := range t.snapshot() {
		row := make([]string, len(csvColumns))
		set := func(name, v string) { row[col[name]] = v }
		set("ts_us", strconv.FormatInt(te.ts.Microseconds(), 10))
		switch e := te.ev.(type) {
		case CompileEvent:
			set("kind", "compile")
			set("method", e.Method)
			set("mode", e.Mode)
			set("invocations", strconv.Itoa(e.Invocations))
			set("loops", strconv.Itoa(e.Loops))
			set("steps", strconv.Itoa(e.InspectSteps))
			set("base_units", strconv.FormatUint(e.BaseUnits, 10))
			set("prefetch_units", strconv.FormatUint(e.PrefetchUnits, 10))
			set("prefetches", strconv.Itoa(e.Prefetches))
		case LoopEvent:
			set("kind", "loop")
			set("method", e.Method)
			set("loop", strconv.Itoa(e.Loop))
			set("reason", e.Verdict.String())
			set("clause", e.Verdict.Clause())
			set("trips", strconv.Itoa(e.Trips))
			set("steps", strconv.Itoa(e.Steps))
			set("nodes", strconv.Itoa(e.Nodes))
		case DecisionEvent:
			set("kind", "decision")
			set("method", e.Method)
			set("loop", strconv.Itoa(e.Loop))
			set("instr", strconv.Itoa(e.Instr))
			if e.Pair >= 0 {
				set("pair", strconv.Itoa(e.Pair))
			}
			set("op", e.Op)
			set("reason", e.Reason.String())
			set("clause", e.Reason.Clause())
			set("stride", strconv.FormatInt(e.Stride, 10))
			set("ratio", strconv.FormatFloat(e.Ratio, 'f', 3, 64))
			set("samples", strconv.Itoa(e.Samples))
		case SiteEvent:
			set("kind", "site")
			set("method", e.Method)
			set("instr", strconv.Itoa(e.Site))
			set("op", e.Kind)
			set("issued", strconv.FormatUint(e.Issued, 10))
			set("useless", strconv.FormatUint(e.Useless, 10))
			set("dropped", strconv.FormatUint(e.Dropped, 10))
			set("count", strconv.FormatUint(e.Count, 10))
			set("stall_cycles", strconv.FormatUint(e.StallCycles, 10))
		case HWEvent:
			set("kind", "hw")
			set("machine", e.Machine)
			set("model", e.Model)
			set("trains", strconv.FormatUint(e.Trains, 10))
			set("allocs", strconv.FormatUint(e.Allocs, 10))
			set("hits", strconv.FormatUint(e.Hits, 10))
			set("issued", strconv.FormatUint(e.Issued, 10))
			set("suppressed", strconv.FormatUint(e.Suppressed, 10))
		case CellEvent:
			set("kind", "cell")
			set("cell", e.Cell)
			set("wall_us", strconv.FormatInt(e.Wall.Microseconds(), 10))
			set("shared", strconv.FormatBool(e.Shared))
			set("error", e.Err)
		default:
			continue
		}
		if err := writeCSVRow(w, row); err != nil {
			return err
		}
	}
	return nil
}

// writeCSVRow joins and quotes a row (only the clause and error columns
// can contain commas; quote defensively everywhere it matters).
func writeCSVRow(w io.Writer, row []string) error {
	for i, f := range row {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if needsQuote(f) {
			f = "\"" + escapeQuotes(f) + "\""
		}
		if _, err := io.WriteString(w, f); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

func needsQuote(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ',', '"', '\n':
			return true
		}
	}
	return false
}

func escapeQuotes(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			out = append(out, '"')
		}
		out = append(out, s[i])
	}
	return string(out)
}
