// DecisionLog renders a trace as the human-readable per-loop decision log
// behind striderun -explain and the golden-trace test suite. The output is
// fully deterministic for a deterministic simulation: events keep their
// (serialized) arrival order per compilation, sites are sorted, and no
// wall-clock values appear.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// DecisionLog formats the collected compile/loop/decision/site events as a
// per-method, per-loop decision log. Grid cell events are summarized at
// the top. Site events are aggregated by (method, site, kind), last event
// winning — so after a warmup+measured sequence the measured run's
// attribution is reported.
func (t *Trace) DecisionLog() string {
	evs := t.Events()
	var b strings.Builder

	// Cells first (usually absent in single-run explain mode).
	for _, ev := range evs {
		if c, ok := ev.(CellEvent); ok {
			note := ""
			if c.Shared {
				note = " (shared)"
			}
			if c.Err != "" {
				note = " ERROR: " + c.Err
			}
			fmt.Fprintf(&b, "cell %s%s\n", c.Cell, note)
		}
	}

	// Group compilation-time events per method in arrival order; one JIT
	// compilation emits its loop and decision events contiguously.
	type loopLog struct {
		ev        LoopEvent
		decisions []DecisionEvent
	}
	type methodLog struct {
		name    string
		compile CompileEvent
		loops   []*loopLog
		orphans []DecisionEvent // decisions with no preceding loop event
	}
	var methods []*methodLog
	byName := map[string]*methodLog{}
	get := func(name string) *methodLog {
		if m, ok := byName[name]; ok {
			return m
		}
		m := &methodLog{name: name}
		byName[name] = m
		methods = append(methods, m)
		return m
	}
	type siteKey struct {
		method string
		site   int
		kind   string
	}
	sites := map[siteKey]SiteEvent{}

	for _, ev := range evs {
		switch e := ev.(type) {
		case CompileEvent:
			m := get(e.Method)
			m.compile = e
		case LoopEvent:
			m := get(e.Method)
			m.loops = append(m.loops, &loopLog{ev: e})
		case DecisionEvent:
			m := get(e.Method)
			// Attach to the loop event of the same header if present
			// (decisions may precede or follow their loop verdict).
			var target *loopLog
			for _, l := range m.loops {
				if l.ev.Loop == e.Loop {
					target = l
				}
			}
			if target != nil {
				target.decisions = append(target.decisions, e)
			} else {
				m.orphans = append(m.orphans, e)
			}
		case SiteEvent:
			sites[siteKey{e.Method, e.Site, e.Kind}] = e
		}
	}

	for _, m := range methods {
		if m.compile.Method != "" {
			c := m.compile
			fmt.Fprintf(&b, "method %s  [%s, compiled at invocation %d]\n",
				c.Method, c.Mode, c.Invocations)
			fmt.Fprintf(&b, "  ledger: base=%d units, prefetch=%d units, inspection=%d steps, %d prefetch instrs\n",
				c.BaseUnits, c.PrefetchUnits, c.InspectSteps, c.Prefetches)
		} else {
			fmt.Fprintf(&b, "method %s\n", m.name)
		}
		for _, l := range m.loops {
			e := l.ev
			verdict := e.Verdict.String()
			if e.Src != "" {
				verdict += " [via " + e.Src + "]"
			}
			switch e.Verdict {
			case LoopNoLoads:
				// No LDG nodes means the loop was never inspected; trip
				// counts would be fabricated.
				fmt.Fprintf(&b, "  loop @B%d: %s", e.Loop, verdict)
				if cl := e.Verdict.Clause(); cl != "" {
					fmt.Fprintf(&b, "  [%s]", cl)
				}
				b.WriteByte('\n')
				continue
			case LoopStaticPredicted:
				// No execution happened, so there is no trip observation to
				// report — only the graph the analyzer annotated.
				fmt.Fprintf(&b, "  loop @B%d: %s — %d LDG nodes, no inspection",
					e.Loop, verdict, e.Nodes)
				if cl := e.Verdict.Clause(); cl != "" {
					fmt.Fprintf(&b, "  [%s]", cl)
				}
				b.WriteByte('\n')
				writeDecisions(&b, l.decisions)
				continue
			case LoopPGOMiss:
				// The dynamic-fallback verdict for the same loop follows
				// as its own event; this line only flags the miss.
				fmt.Fprintf(&b, "  loop @B%d: %s", e.Loop, verdict)
				if cl := e.Verdict.Clause(); cl != "" {
					fmt.Fprintf(&b, "  [%s]", cl)
				}
				b.WriteByte('\n')
				continue
			}
			exit := "capped"
			if e.NaturalExit {
				exit = "natural exit"
			}
			steps := fmt.Sprintf("%d steps", e.Steps)
			if e.Src == "pgo" {
				steps = "replayed from profile"
			}
			fmt.Fprintf(&b, "  loop @B%d: %s — %d trips (%s), %d LDG nodes, %s",
				e.Loop, verdict, e.Trips, exit, e.Nodes, steps)
			if cl := e.Verdict.Clause(); cl != "" {
				fmt.Fprintf(&b, "  [%s]", cl)
			}
			b.WriteByte('\n')
			writeDecisions(&b, l.decisions)
		}
		writeDecisions(&b, m.orphans)

		// Prefetch-site attribution joined back to the emitting load.
		var keys []siteKey
		for k := range sites {
			if k.method == m.name && k.kind == "prefetch" {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].site < keys[j].site })
		for _, k := range keys {
			s := sites[k]
			fmt.Fprintf(&b, "  site L@%d: issued=%d useless=%d dropped=%d\n",
				s.Site, s.Issued, s.Useless, s.Dropped)
		}
	}

	// Demand-load stall attribution, heaviest sites first (stable order:
	// stalls desc, then method/site asc). Sites outside compiled methods
	// appear here too.
	var loads []SiteEvent
	for k, s := range sites {
		if k.kind == "load" && s.StallCycles > 0 {
			loads = append(loads, s)
		}
	}
	sort.Slice(loads, func(i, j int) bool {
		a, b := loads[i], loads[j]
		if a.StallCycles != b.StallCycles {
			return a.StallCycles > b.StallCycles
		}
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		return a.Site < b.Site
	})
	if len(loads) > maxLoadSites {
		loads = loads[:maxLoadSites]
	}
	if len(loads) > 0 {
		fmt.Fprintf(&b, "top load stall sites (measured run)\n")
		for _, s := range loads {
			fmt.Fprintf(&b, "  %s@%d: %d loads, %d stall cycles\n",
				s.Method, s.Site, s.Count, s.StallCycles)
		}
	}
	return b.String()
}

// maxLoadSites bounds the demand-load attribution section of the log.
const maxLoadSites = 10

func writeDecisions(b *strings.Builder, ds []DecisionEvent) {
	for _, d := range ds {
		subject := fmt.Sprintf("L@%d %s", d.Instr, d.Op)
		if d.Pair >= 0 {
			subject = fmt.Sprintf("pair (L@%d, L@%d) %s", d.Instr, d.Pair, d.Op)
		}
		// With samples the stride is a measured pattern (stride 0 means a
		// loop-invariant address); without, it is the displacement a
		// dereference or intra prefetch would use.
		pattern := fmt.Sprintf("disp %+d", d.Stride)
		stat := ""
		if d.Samples > 0 {
			pattern = fmt.Sprintf("stride %+d", d.Stride)
			if d.Stride == 0 {
				pattern = "stride 0 (loop-invariant)"
			}
			stat = fmt.Sprintf(" (ratio %.2f over %d samples)", d.Ratio, d.Samples)
		}
		fmt.Fprintf(b, "    %-28s %s%s -> %s", subject, pattern, stat, d.Reason)
		if d.Src != "" {
			fmt.Fprintf(b, " [via %s]", d.Src)
		}
		if cl := d.Reason.Clause(); cl != "" {
			fmt.Fprintf(b, "  [%s]", cl)
		}
		b.WriteByte('\n')
	}
}
