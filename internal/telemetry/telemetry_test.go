package telemetry

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestReasonStrings(t *testing.T) {
	all := []Reason{
		ReasonNone, EmitInter, EmitSpecLoad, EmitDeref, EmitIntra,
		FilterNoUse, FilterDupLine, FilterSmallStride, FilterNoPattern,
		FilterHugeStride, FilterNoAddr,
		LoopAccepted, LoopSmallTrip, LoopIncomplete, LoopNoLoads,
	}
	seen := map[string]bool{}
	for _, r := range all {
		s := r.String()
		if s == "" || s == "REASON?" {
			t.Errorf("reason %d has no name", r)
		}
		if seen[s] {
			t.Errorf("duplicate reason name %q", s)
		}
		seen[s] = true
	}
	if Reason(200).String() != "REASON?" {
		t.Errorf("out-of-range reason should print REASON?, got %q", Reason(200).String())
	}
}

func TestReasonClauses(t *testing.T) {
	// Every profitability filter must name its Sec. 3.3 clause; the three
	// numbered conditions map to distinct clauses.
	for r, want := range map[Reason]string{
		FilterNoUse:       "profitability (1)",
		FilterDupLine:     "profitability (2)",
		FilterSmallStride: "profitability (3)",
		FilterNoPattern:   "Sec. 3.2",
		LoopSmallTrip:     "Sec. 3",
	} {
		if cl := r.Clause(); !strings.Contains(cl, want) {
			t.Errorf("%s clause %q does not mention %q", r, cl, want)
		}
	}
	for _, r := range []Reason{EmitInter, EmitSpecLoad, EmitDeref, EmitIntra} {
		if !r.Emitted() {
			t.Errorf("%s should be Emitted", r)
		}
		if r.Clause() == "" {
			t.Errorf("%s should have a clause", r)
		}
	}
	for _, r := range []Reason{ReasonNone, FilterNoUse, LoopAccepted} {
		if r.Emitted() {
			t.Errorf("%s should not be Emitted", r)
		}
	}
}

func TestPrefetchOutcomeStrings(t *testing.T) {
	outs := []PrefetchOutcome{PrefetchFetched, PrefetchUseless, PrefetchDroppedTLB, PrefetchDroppedQueue}
	seen := map[string]bool{}
	for _, o := range outs {
		s := o.String()
		if s == "" || seen[s] {
			t.Errorf("outcome %d: bad or duplicate name %q", o, s)
		}
		seen[s] = true
	}
}

// sampleTrace builds a trace with one event of every kind.
func sampleTrace() *Trace {
	tr := NewTrace()
	tr.Compile(CompileEvent{Method: "::findInMemory", Mode: "INTER+INTRA", Invocations: 2,
		Loops: 1, InspectSteps: 462, BaseUnits: 7500, PrefetchUnits: 665, Prefetches: 2})
	tr.Loop(LoopEvent{Method: "::findInMemory", Loop: 10, Verdict: LoopAccepted,
		Trips: 20, NaturalExit: false, Steps: 462, Nodes: 11})
	tr.Decision(DecisionEvent{Method: "::findInMemory", Loop: 10, Instr: 5, Pair: -1,
		Op: "arrayload", Stride: 4, Ratio: 1.0, Samples: 19, Reason: EmitSpecLoad})
	tr.Decision(DecisionEvent{Method: "::findInMemory", Loop: 10, Instr: 5, Pair: 12,
		Op: "getfield", Stride: 20, Reason: EmitDeref})
	tr.Site(SiteEvent{Method: "::findInMemory", Site: 5, Kind: "prefetch",
		Issued: 2615, Useless: 1255})
	tr.Cell(CellEvent{Cell: "jess/small/Pentium4/INTER+INTRA/compact",
		Wall: 120 * time.Millisecond})
	return tr
}

func TestTraceCollectsInOrder(t *testing.T) {
	tr := sampleTrace()
	if tr.Len() != 6 {
		t.Fatalf("Len = %d, want 6", tr.Len())
	}
	evs := tr.Events()
	kinds := make([]string, len(evs))
	for i, ev := range evs {
		switch ev.(type) {
		case CompileEvent:
			kinds[i] = "compile"
		case LoopEvent:
			kinds[i] = "loop"
		case DecisionEvent:
			kinds[i] = "decision"
		case SiteEvent:
			kinds[i] = "site"
		case CellEvent:
			kinds[i] = "cell"
		}
	}
	want := []string{"compile", "loop", "decision", "decision", "site", "cell"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Errorf("event order = %v, want %v", kinds, want)
	}
}

func TestWriteChromeTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("traceEvents = %d, want 6", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "i" && ev.Ph != "X" {
			t.Errorf("event %q: unexpected phase %q", ev.Name, ev.Ph)
		}
		if ev.TS < 0 {
			t.Errorf("event %q: negative timestamp %d", ev.Name, ev.TS)
		}
	}
	last := doc.TraceEvents[5]
	if last.Ph != "X" || last.Cat != "grid" || last.Dur != 120000 {
		t.Errorf("cell event not a complete grid span: %+v", last)
	}
	dec := doc.TraceEvents[2]
	if dec.Cat != "filter" || dec.Args["reason"] != "EMIT_SPECLOAD" {
		t.Errorf("decision event malformed: %+v", dec)
	}
}

func TestWriteCSVStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("not valid CSV: %v", err)
	}
	if len(rows) != 7 { // header + 6 events
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	header := rows[0]
	if len(header) != len(csvColumns) {
		t.Fatalf("header has %d columns, want %d", len(header), len(csvColumns))
	}
	col := map[string]int{}
	for i, name := range header {
		col[name] = i
	}
	for _, name := range []string{"kind", "method", "reason", "clause", "stride", "issued", "cell"} {
		if _, ok := col[name]; !ok {
			t.Fatalf("missing column %q", name)
		}
	}
	for i, row := range rows[1:] {
		if len(row) != len(header) {
			t.Errorf("row %d has %d fields, want %d", i+1, len(row), len(header))
		}
	}
	if got := rows[1][col["kind"]]; got != "compile" {
		t.Errorf("first row kind = %q, want compile", got)
	}
	if got := rows[3][col["reason"]]; got != "EMIT_SPECLOAD" {
		t.Errorf("decision row reason = %q", got)
	}
	// The clause column contains commas; the CSV reader must have
	// reassembled it as one field.
	if got := rows[1][col["clause"]]; got != "" {
		t.Errorf("compile row clause = %q, want empty", got)
	}
}

func TestDecisionLogFormat(t *testing.T) {
	log := sampleTrace().DecisionLog()
	for _, want := range []string{
		"cell jess/small/Pentium4/INTER+INTRA/compact",
		"method ::findInMemory  [INTER+INTRA, compiled at invocation 2]",
		"loop @B10: LOOP_ACCEPTED — 20 trips (capped), 11 LDG nodes, 462 steps",
		"L@5 arrayload",
		"stride +4 (ratio 1.00 over 19 samples) -> EMIT_SPECLOAD",
		"pair (L@5, L@12) getfield",
		"disp +20 -> EMIT_DEREF",
		"site L@5: issued=2615 useless=1255 dropped=0",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("decision log missing %q\n%s", want, log)
		}
	}
}

func TestDecisionLogSiteAggregationLastWins(t *testing.T) {
	tr := NewTrace()
	tr.Compile(CompileEvent{Method: "m", Mode: "INTER"})
	// Warmup flush, then measured-run flush: the log must report the
	// second (measured) numbers only.
	tr.Site(SiteEvent{Method: "m", Site: 3, Kind: "prefetch", Issued: 999, Useless: 999})
	tr.Site(SiteEvent{Method: "m", Site: 3, Kind: "prefetch", Issued: 10, Useless: 2})
	log := tr.DecisionLog()
	if !strings.Contains(log, "site L@3: issued=10 useless=2 dropped=0") {
		t.Errorf("site aggregation not last-wins:\n%s", log)
	}
	if strings.Contains(log, "999") {
		t.Errorf("warmup site numbers leaked into log:\n%s", log)
	}
}

func TestTraceConcurrentUse(t *testing.T) {
	tr := NewTrace()
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				switch i % 3 {
				case 0:
					tr.Compile(CompileEvent{Method: "m", Invocations: i})
				case 1:
					tr.Decision(DecisionEvent{Method: "m", Instr: i, Pair: -1})
				default:
					tr.Cell(CellEvent{Cell: "c"})
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", tr.Len(), workers*per)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("concurrent trace export is not valid JSON")
	}
}

// nopRecorder embeds Nop the way a partial Recorder implementation would.
type nopRecorder struct{ Nop }

func TestNopRecorderImplementsRecorder(t *testing.T) {
	var r Recorder = nopRecorder{}
	r.Compile(CompileEvent{})
	r.Loop(LoopEvent{})
	r.Decision(DecisionEvent{})
	r.Site(SiteEvent{})
	r.Cell(CellEvent{})
}

func TestWriteCSVQuoting(t *testing.T) {
	tr := NewTrace()
	tr.Cell(CellEvent{Cell: "x", Err: `boom, with "quotes"` + "\nand newline"})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	r.FieldsPerRecord = -1
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatalf("quoted CSV does not round-trip: %v\n%s", err, buf.String())
	}
	got := rows[1][len(rows[0])-1]
	if got != `boom, with "quotes"`+"\nand newline" {
		t.Errorf("error field mangled: %q", got)
	}
}

func TestDecisionLogEdgeCases(t *testing.T) {
	tr := NewTrace()
	// A loop with no loads is reported without fabricated trip counts.
	tr.Loop(LoopEvent{Method: "m1", Loop: 2, Verdict: LoopNoLoads})
	// A decision with no matching loop event lands in the orphan section
	// of a method that never had a compile event.
	tr.Decision(DecisionEvent{Method: "m2", Loop: 9, Instr: 4, Pair: -1,
		Op: "getfield", Stride: 128, Ratio: 0.9, Samples: 10, Reason: EmitInter})
	// Load-site attribution caps at maxLoadSites, heaviest first.
	for i := 0; i < maxLoadSites+5; i++ {
		tr.Site(SiteEvent{Method: "m3", Site: i, Kind: "load",
			Count: 1, StallCycles: uint64(1000 - i)})
	}
	log := tr.DecisionLog()

	if !strings.Contains(log, "loop @B2: LOOP_NO_LOADS") {
		t.Errorf("missing no-loads loop line:\n%s", log)
	}
	if strings.Contains(log, "LOOP_NO_LOADS — 0 trips") {
		t.Errorf("no-loads loop reports fabricated trips:\n%s", log)
	}
	if !strings.Contains(log, "method m2\n") {
		t.Errorf("method without compile event missing plain header:\n%s", log)
	}
	if !strings.Contains(log, "L@4 getfield") || !strings.Contains(log, "EMIT_INTER") {
		t.Errorf("orphan decision missing:\n%s", log)
	}
	if n := strings.Count(log, "m3@"); n != maxLoadSites {
		t.Errorf("load stall section has %d sites, want %d", n, maxLoadSites)
	}
	if !strings.Contains(log, "m3@0: 1 loads, 1000 stall cycles") {
		t.Errorf("heaviest stall site not first:\n%s", log)
	}
	if strings.Contains(log, "m3@14") {
		t.Errorf("sites beyond the cap leaked into the log:\n%s", log)
	}
}
