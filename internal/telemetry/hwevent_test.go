// Tests for the hardware-prefetcher run summary event: collection,
// Chrome trace export, and CSV export.
package telemetry

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"testing"
)

func hwSample() HWEvent {
	return HWEvent{
		Machine: "Pentium4", Model: "ipstride",
		Trains: 1000, Allocs: 40, Hits: 700, Issued: 600, Suppressed: 90,
	}
}

func TestTraceCollectsHWEvent(t *testing.T) {
	tr := NewTrace()
	tr.HW(hwSample())
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("Len = %d, want 1", len(evs))
	}
	e, ok := evs[0].(HWEvent)
	if !ok {
		t.Fatalf("event type %T, want HWEvent", evs[0])
	}
	if e != hwSample() {
		t.Fatalf("event = %+v", e)
	}
	// Nop must discard it without side effects.
	Nop{}.HW(hwSample())
}

func TestHWEventChromeExport(t *testing.T) {
	tr := NewTrace()
	tr.HW(hwSample())
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("traceEvents = %d, want 1", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "hw ipstride" || ev.Cat != "memsim" || ev.Ph != "i" {
		t.Fatalf("hw event malformed: %+v", ev)
	}
	if ev.Args["machine"] != "Pentium4" || ev.Args["issued"] != float64(600) {
		t.Fatalf("hw event args malformed: %+v", ev.Args)
	}
}

func TestHWEventCSVExport(t *testing.T) {
	tr := NewTrace()
	tr.HW(hwSample())
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("not valid CSV: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want header + 1", len(rows))
	}
	col := map[string]int{}
	for i, name := range rows[0] {
		col[name] = i
	}
	row := rows[1]
	want := map[string]string{
		"kind": "hw", "machine": "Pentium4", "model": "ipstride",
		"trains": "1000", "allocs": "40", "hits": "700",
		"issued": "600", "suppressed": "90",
	}
	for name, v := range want {
		i, ok := col[name]
		if !ok {
			t.Fatalf("missing column %q", name)
		}
		if row[i] != v {
			t.Errorf("column %q = %q, want %q", name, row[i], v)
		}
	}
}
