package arch

import "testing"

func TestTable2Parameters(t *testing.T) {
	p4 := Pentium4()
	if p4.L1D.SizeBytes != 8<<10 || p4.L1D.LineBytes != 64 {
		t.Errorf("Pentium4 L1 = %d/%d, want 8K/64B (Table 2)", p4.L1D.SizeBytes, p4.L1D.LineBytes)
	}
	if p4.L2U.SizeBytes != 256<<10 || p4.L2U.LineBytes != 128 {
		t.Errorf("Pentium4 L2 = %d/%d, want 256K/128B (Table 2)", p4.L2U.SizeBytes, p4.L2U.LineBytes)
	}
	if p4.DTLB.Entries != 64 {
		t.Errorf("Pentium4 DTLB = %d, want 64 (Table 2)", p4.DTLB.Entries)
	}
	at := AthlonMP()
	if at.L1D.SizeBytes != 64<<10 || at.L1D.LineBytes != 64 {
		t.Errorf("AthlonMP L1 = %d/%d, want 64K/64B (Table 2)", at.L1D.SizeBytes, at.L1D.LineBytes)
	}
	if at.L2U.SizeBytes != 256<<10 || at.L2U.LineBytes != 64 {
		t.Errorf("AthlonMP L2 = %d/%d, want 256K/64B (Table 2)", at.L2U.SizeBytes, at.L2U.LineBytes)
	}
	if at.DTLB.Entries != 256 {
		t.Errorf("AthlonMP DTLB = %d, want 256 (Table 2)", at.DTLB.Entries)
	}
}

func TestPrefetchPolicy(t *testing.T) {
	// Sec. 4: "the target cache levels for software prefetching are the L2
	// cache on the Pentium 4 and the L1 cache on the Athlon MP", and the
	// Pentium 4 uses guarded loads for intra-iteration prefetching.
	if Pentium4().PrefetchTarget != L2 {
		t.Error("Pentium4 must prefetch into L2")
	}
	if AthlonMP().PrefetchTarget != L1 {
		t.Error("AthlonMP must prefetch into L1")
	}
	if !Pentium4().GuardedIntraPrefetch {
		t.Error("Pentium4 must use guarded intra prefetches")
	}
	if AthlonMP().GuardedIntraPrefetch {
		t.Error("AthlonMP must not use guarded intra prefetches")
	}
}

func TestValidate(t *testing.T) {
	for _, m := range Machines() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s invalid: %v", m.Name, err)
		}
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	m := Pentium4()
	m.L1D.LineBytes = 48 // not a power of two
	if err := m.Validate(); err == nil {
		t.Error("48-byte lines must be rejected")
	}
	m = Pentium4()
	m.L1D.Assoc = 3 // 8K/64B/3 not integral sets
	if err := m.Validate(); err == nil {
		t.Error("non-integral set count must be rejected")
	}
	m = Pentium4()
	m.StoreFactor = 0
	if err := m.Validate(); err == nil {
		t.Error("StoreFactor 0 must be rejected")
	}
	m = Pentium4()
	m.PrefetchQueue = 0
	if err := m.Validate(); err == nil {
		t.Error("empty prefetch queue must be rejected")
	}
	m = Pentium4()
	m.DTLB.Entries = 0
	if err := m.Validate(); err == nil {
		t.Error("DTLB without entries must be rejected")
	}
}

func TestSets(t *testing.T) {
	p := CacheParams{SizeBytes: 8 << 10, LineBytes: 64, Assoc: 4}
	if p.Sets() != 32 {
		t.Errorf("8K/64B/4-way = %d sets, want 32", p.Sets())
	}
}

func TestByName(t *testing.T) {
	if ByName("Pentium4") == nil || ByName("AthlonMP") == nil {
		t.Error("ByName must find both machines")
	}
	if ByName("VAX") != nil {
		t.Error("ByName must return nil for unknown machines")
	}
	if len(Machines()) != 2 {
		t.Error("exactly two evaluation machines")
	}
}

// TestSection4MachineTable pins every Table 2 / Sec. 4 machine parameter
// in one table, so a drive-by edit to either description fails loudly
// with the paper reference in the message.
func TestSection4MachineTable(t *testing.T) {
	cases := []struct {
		machine     *Machine
		l1          CacheParams
		l2          CacheParams
		l1Sets      uint32
		l2Sets      uint32
		tlbEntries  uint32
		tlbAssoc    uint32
		tlbPage     uint32
		target      CacheLevel
		guardedLoad bool
	}{
		{
			machine:    Pentium4(),
			l1:         CacheParams{SizeBytes: 8 << 10, LineBytes: 64, Assoc: 4},
			l2:         CacheParams{SizeBytes: 256 << 10, LineBytes: 128, Assoc: 8},
			l1Sets:     32,
			l2Sets:     256,
			tlbEntries: 64, tlbAssoc: 64, tlbPage: 4096, // fully associative
			target:      L2,
			guardedLoad: true,
		},
		{
			machine:    AthlonMP(),
			l1:         CacheParams{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2},
			l2:         CacheParams{SizeBytes: 256 << 10, LineBytes: 64, Assoc: 16},
			l1Sets:     512,
			l2Sets:     256,
			tlbEntries: 256, tlbAssoc: 4, tlbPage: 4096,
			target:      L1,
			guardedLoad: false,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.machine.Name, func(t *testing.T) {
			m := tc.machine
			if m.L1D != tc.l1 {
				t.Errorf("L1D = %+v, want %+v (Table 2)", m.L1D, tc.l1)
			}
			if m.L2U != tc.l2 {
				t.Errorf("L2U = %+v, want %+v (Table 2)", m.L2U, tc.l2)
			}
			if s := m.L1D.Sets(); s != tc.l1Sets {
				t.Errorf("L1 sets = %d, want %d", s, tc.l1Sets)
			}
			if s := m.L2U.Sets(); s != tc.l2Sets {
				t.Errorf("L2 sets = %d, want %d", s, tc.l2Sets)
			}
			if m.DTLB.Entries != tc.tlbEntries || m.DTLB.Assoc != tc.tlbAssoc || m.DTLB.PageSize != tc.tlbPage {
				t.Errorf("DTLB = %d entries/%d-way/%dB pages, want %d/%d/%d (Table 2)",
					m.DTLB.Entries, m.DTLB.Assoc, m.DTLB.PageSize,
					tc.tlbEntries, tc.tlbAssoc, tc.tlbPage)
			}
			if m.PrefetchTarget != tc.target {
				t.Errorf("prefetch target = %s, want %s (Sec. 4)", m.PrefetchTarget, tc.target)
			}
			if m.GuardedIntraPrefetch != tc.guardedLoad {
				t.Errorf("guarded intra prefetch = %v, want %v (Sec. 4)", m.GuardedIntraPrefetch, tc.guardedLoad)
			}
			if err := m.Validate(); err != nil {
				t.Errorf("description invalid: %v", err)
			}
		})
	}
}

func TestCacheLevelString(t *testing.T) {
	if L1.String() != "L1" || L2.String() != "L2" {
		t.Error("CacheLevel.String broken")
	}
}
