// Package arch describes the simulated machines the experiments run on.
//
// The two machine descriptions reproduce Table 2 of the paper (cache and
// DTLB parameters of the Pentium 4 and the Athlon MP) plus the behavioural
// differences Sec. 4 calls out:
//
//   - software prefetch targets the L2 cache on the Pentium 4 and the L1
//     cache on the Athlon MP;
//   - the Pentium 4 has far fewer DTLB entries (64 vs 256), so the paper
//     uses a guarded load for intra-iteration prefetching there in order to
//     prime missing DTLB entries.
//
// The timing-model fields are simulator knobs, not vendor specifications;
// they are chosen so that relative effects (L1 vs L2 vs memory vs DTLB
// costs) have realistic proportions for ~2 GHz-era machines.
package arch

import "fmt"

// CacheLevel identifies a cache level prefetches can target.
type CacheLevel uint8

// Cache levels.
const (
	L1 CacheLevel = iota
	L2
)

// String returns "L1" or "L2".
func (l CacheLevel) String() string {
	if l == L1 {
		return "L1"
	}
	return "L2"
}

// CacheParams describes one cache level.
type CacheParams struct {
	SizeBytes uint32 // total capacity
	LineBytes uint32 // line size
	Assoc     uint32 // associativity (ways)
}

// Sets returns the number of sets.
func (c CacheParams) Sets() uint32 { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Machine is a full machine description: Table 2 parameters, the timing
// model, and the prefetch mapping policy.
type Machine struct {
	Name string

	L1D  CacheParams
	L2U  CacheParams
	DTLB struct {
		Entries  uint32
		PageSize uint32
		Assoc    uint32
	}

	// PrefetchTarget is the cache level a software prefetch instruction
	// fills (paper Sec. 4: L2 on the Pentium 4, L1 on the Athlon MP).
	PrefetchTarget CacheLevel

	// GuardedIntraPrefetch selects a guarded load (which also primes the
	// DTLB) instead of the hardware prefetch instruction for
	// intra-iteration stride prefetching (paper Sec. 4: used on the
	// Pentium 4 because of its small DTLB).
	GuardedIntraPrefetch bool

	// HWPrefetcher names the hardware-prefetcher model the memory system
	// simulates ("" selects memsim's default, the per-page stream
	// detector). Valid names are enumerated by memsim.HWModels; the arch
	// package cannot validate them (it would invert the dependency), so
	// spec and flag layers check with memsim.ValidHWModel.
	HWPrefetcher string

	// Timing model (cycles).
	L1HitCycles    uint64 // access time charged on an L1 hit
	L2HitCycles    uint64 // additional stall on an L1 miss that hits L2
	MemCycles      uint64 // additional stall on an L2 miss
	DTLBMissCycles uint64 // page-walk stall on a DTLB miss
	IssueCycles    uint64 // base cost of one compiled IR instruction
	InterpPenalty  uint64 // extra cycles per instruction when interpreted
	StoreFactor    uint64 // store stalls are charged 1/StoreFactor of loads

	// PrefetchQueue is the number of in-flight prefetches the memory
	// system tracks; further prefetches are dropped (prefetching is not
	// free: Sec. 1, "issued only when memory bandwidth is not fully used").
	PrefetchQueue int
}

// Validate checks that the description is internally consistent.
func (m *Machine) Validate() error {
	for _, c := range []struct {
		name string
		p    CacheParams
	}{{"L1D", m.L1D}, {"L2U", m.L2U}} {
		p := c.p
		if p.LineBytes == 0 || p.LineBytes&(p.LineBytes-1) != 0 {
			return fmt.Errorf("arch %s: %s line size %d not a power of two", m.Name, c.name, p.LineBytes)
		}
		if p.Assoc == 0 || p.SizeBytes%(p.LineBytes*p.Assoc) != 0 {
			return fmt.Errorf("arch %s: %s geometry %d/%d/%d inconsistent", m.Name, c.name, p.SizeBytes, p.LineBytes, p.Assoc)
		}
		if s := p.Sets(); s&(s-1) != 0 {
			return fmt.Errorf("arch %s: %s set count %d not a power of two", m.Name, c.name, s)
		}
	}
	if m.DTLB.Entries == 0 || m.DTLB.PageSize == 0 {
		return fmt.Errorf("arch %s: DTLB unspecified", m.Name)
	}
	if m.DTLB.Assoc == 0 || m.DTLB.Entries%m.DTLB.Assoc != 0 {
		return fmt.Errorf("arch %s: DTLB associativity %d invalid", m.Name, m.DTLB.Assoc)
	}
	if m.StoreFactor == 0 {
		return fmt.Errorf("arch %s: StoreFactor must be >= 1", m.Name)
	}
	if m.PrefetchQueue <= 0 {
		return fmt.Errorf("arch %s: PrefetchQueue must be positive", m.Name)
	}
	return nil
}

// Pentium4 returns the Pentium 4 description from Table 2:
// 8 KB L1 with 64 B lines, 256 KB L2 with 128 B lines, 64 DTLB entries.
func Pentium4() *Machine {
	m := &Machine{
		Name:                 "Pentium4",
		L1D:                  CacheParams{SizeBytes: 8 << 10, LineBytes: 64, Assoc: 4},
		L2U:                  CacheParams{SizeBytes: 256 << 10, LineBytes: 128, Assoc: 8},
		PrefetchTarget:       L2,
		GuardedIntraPrefetch: true,
		L1HitCycles:          2,
		L2HitCycles:          18,
		MemCycles:            220,
		DTLBMissCycles:       55,
		IssueCycles:          3,
		InterpPenalty:        12,
		StoreFactor:          4,
		PrefetchQueue:        8,
	}
	m.DTLB.Entries = 64
	m.DTLB.PageSize = 4096
	m.DTLB.Assoc = 64 // fully associative
	return m
}

// AthlonMP returns the Athlon MP description from Table 2:
// 64 KB L1 with 64 B lines, 256 KB L2 with 64 B lines, 256 DTLB entries.
func AthlonMP() *Machine {
	m := &Machine{
		Name:                 "AthlonMP",
		L1D:                  CacheParams{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2},
		L2U:                  CacheParams{SizeBytes: 256 << 10, LineBytes: 64, Assoc: 16},
		PrefetchTarget:       L1,
		GuardedIntraPrefetch: false,
		L1HitCycles:          3,
		L2HitCycles:          20,
		MemCycles:            160,
		DTLBMissCycles:       25,
		IssueCycles:          3,
		InterpPenalty:        12,
		StoreFactor:          4,
		PrefetchQueue:        8,
	}
	m.DTLB.Entries = 256
	m.DTLB.PageSize = 4096
	m.DTLB.Assoc = 4
	return m
}

// Machines returns the two evaluation machines in paper order.
func Machines() []*Machine { return []*Machine{Pentium4(), AthlonMP()} }

// ByName returns the machine with the given name, or nil.
func ByName(name string) *Machine {
	for _, m := range Machines() {
		if m.Name == name {
			return m
		}
	}
	return nil
}
