// Package value defines the tagged runtime values used throughout the VM,
// the JIT compiler, and the object-inspection partial interpreter.
//
// A Value is a (kind, 64-bit payload) pair. The interpreter only ever
// produces fully known values; the object-inspection interpreter
// additionally uses KindUnknown as the lattice top: any operation with an
// unknown operand yields an unknown result (paper, Sec. 3.2).
package value

import (
	"fmt"
	"math"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The value kinds. KindRef payloads are 32-bit simulated heap addresses
// (0 is null). KindUnknown appears only during object inspection.
const (
	KindInvalid Kind = iota
	KindInt
	KindLong
	KindFloat
	KindDouble
	KindRef
	KindUnknown
	// KindSpecRef is the result of a guarded speculative load (spec_load,
	// Sec. 3.3). The payload is whatever word the load returned — possibly
	// a stale or garbage pointer — so it may be used as a prefetch base
	// but is never a GC root and never flows into ordinary computation.
	KindSpecRef
)

var kindNames = [...]string{
	KindInvalid: "invalid",
	KindInt:     "int",
	KindLong:    "long",
	KindFloat:   "float",
	KindDouble:  "double",
	KindRef:     "ref",
	KindUnknown: "unknown",
	KindSpecRef: "specref",
}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsNumeric reports whether the kind is one of the four arithmetic kinds.
func (k Kind) IsNumeric() bool {
	switch k {
	case KindInt, KindLong, KindFloat, KindDouble:
		return true
	}
	return false
}

// Slots returns the number of 4-byte field slots a value of this kind
// occupies in an object (long and double take two, as on a 32-bit JVM).
func (k Kind) Slots() uint32 {
	if k == KindLong || k == KindDouble {
		return 2
	}
	return 1
}

// Size returns the in-heap byte size of a value of this kind.
func (k Kind) Size() uint32 { return 4 * k.Slots() }

// Value is a tagged runtime value.
type Value struct {
	K Kind
	B uint64
}

// Unknown is the object-inspection lattice top.
var Unknown = Value{K: KindUnknown}

// Null is the null reference.
var Null = Value{K: KindRef, B: 0}

// Int constructs an int value.
func Int(v int32) Value { return Value{K: KindInt, B: uint64(uint32(v))} }

// Long constructs a long value.
func Long(v int64) Value { return Value{K: KindLong, B: uint64(v)} }

// Float constructs a float value.
func Float(v float32) Value { return Value{K: KindFloat, B: uint64(math.Float32bits(v))} }

// Double constructs a double value.
func Double(v float64) Value { return Value{K: KindDouble, B: math.Float64bits(v)} }

// Ref constructs a reference value from a simulated heap address.
func Ref(addr uint32) Value { return Value{K: KindRef, B: uint64(addr)} }

// SpecRef constructs the result of a guarded speculative load: a maybe-
// pointer that can seed a dereference prefetch but is invisible to the
// collector.
func SpecRef(word uint32) Value { return Value{K: KindSpecRef, B: uint64(word)} }

// IsUnknown reports whether the value is the inspection lattice top.
func (v Value) IsUnknown() bool { return v.K == KindUnknown }

// IsRef reports whether the value is a reference.
func (v Value) IsRef() bool { return v.K == KindRef }

// IsSpecRef reports whether the value is a speculative maybe-pointer.
func (v Value) IsSpecRef() bool { return v.K == KindSpecRef }

// IsNull reports whether the value is the null reference.
func (v Value) IsNull() bool { return v.K == KindRef && v.B == 0 }

// Int returns the int payload. The kind must be KindInt.
func (v Value) Int() int32 { return int32(uint32(v.B)) }

// Long returns the long payload. The kind must be KindLong.
func (v Value) Long() int64 { return int64(v.B) }

// Float returns the float payload. The kind must be KindFloat.
func (v Value) Float() float32 { return math.Float32frombits(uint32(v.B)) }

// Double returns the double payload. The kind must be KindDouble.
func (v Value) Double() float64 { return math.Float64frombits(v.B) }

// Ref returns the reference payload (a heap address). The kind must be KindRef.
func (v Value) Ref() uint32 { return uint32(v.B) }

// Bits returns the raw 32-bit heap image of the value for 4-byte kinds and
// the low word for 8-byte kinds.
func (v Value) Bits() uint32 { return uint32(v.B) }

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.K {
	case KindInt:
		return fmt.Sprintf("int:%d", v.Int())
	case KindLong:
		return fmt.Sprintf("long:%d", v.Long())
	case KindFloat:
		return fmt.Sprintf("float:%g", v.Float())
	case KindDouble:
		return fmt.Sprintf("double:%g", v.Double())
	case KindRef:
		if v.B == 0 {
			return "null"
		}
		return fmt.Sprintf("ref:0x%x", v.Ref())
	case KindUnknown:
		return "unknown"
	case KindSpecRef:
		return fmt.Sprintf("specref:0x%x", uint32(v.B))
	}
	return "invalid"
}

// Equal reports exact equality of kind and payload.
func (v Value) Equal(o Value) bool { return v.K == o.K && v.B == o.B }
