package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindInvalid: "invalid",
		KindInt:     "int",
		KindLong:    "long",
		KindFloat:   "float",
		KindDouble:  "double",
		KindRef:     "ref",
		KindUnknown: "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("out-of-range kind = %q", got)
	}
}

func TestKindProperties(t *testing.T) {
	for _, k := range []Kind{KindInt, KindLong, KindFloat, KindDouble} {
		if !k.IsNumeric() {
			t.Errorf("%s should be numeric", k)
		}
	}
	for _, k := range []Kind{KindInvalid, KindRef, KindUnknown} {
		if k.IsNumeric() {
			t.Errorf("%s should not be numeric", k)
		}
	}
	if KindInt.Slots() != 1 || KindRef.Slots() != 1 || KindFloat.Slots() != 1 {
		t.Error("narrow kinds must take one slot")
	}
	if KindLong.Slots() != 2 || KindDouble.Slots() != 2 {
		t.Error("wide kinds must take two slots")
	}
	if KindInt.Size() != 4 || KindDouble.Size() != 8 {
		t.Error("sizes must be 4 bytes per slot")
	}
}

func TestIntRoundtrip(t *testing.T) {
	for _, v := range []int32{0, 1, -1, math.MaxInt32, math.MinInt32, 42, -12345} {
		got := Int(v)
		if got.K != KindInt || got.Int() != v {
			t.Errorf("Int(%d) roundtrip failed: %v", v, got)
		}
	}
}

func TestLongRoundtrip(t *testing.T) {
	for _, v := range []int64{0, -1, math.MaxInt64, math.MinInt64, 1 << 40} {
		got := Long(v)
		if got.K != KindLong || got.Long() != v {
			t.Errorf("Long(%d) roundtrip failed: %v", v, got)
		}
	}
}

func TestFloatRoundtrip(t *testing.T) {
	for _, v := range []float32{0, -0, 1.5, -3.25, math.MaxFloat32} {
		got := Float(v)
		if got.K != KindFloat || got.Float() != v {
			t.Errorf("Float(%g) roundtrip failed: %v", v, got)
		}
	}
	nan := Float(float32(math.NaN()))
	if !math.IsNaN(float64(nan.Float())) {
		t.Error("NaN float did not roundtrip")
	}
}

func TestDoubleRoundtrip(t *testing.T) {
	for _, v := range []float64{0, 2.5, -1e300, math.SmallestNonzeroFloat64} {
		got := Double(v)
		if got.K != KindDouble || got.Double() != v {
			t.Errorf("Double(%g) roundtrip failed: %v", v, got)
		}
	}
}

func TestRefAndNull(t *testing.T) {
	r := Ref(0x1234)
	if !r.IsRef() || r.Ref() != 0x1234 || r.IsNull() {
		t.Errorf("Ref(0x1234) broken: %v", r)
	}
	if !Null.IsNull() || !Null.IsRef() {
		t.Error("Null must be a null reference")
	}
	if Ref(0) != Null {
		t.Error("Ref(0) must equal Null")
	}
}

func TestUnknown(t *testing.T) {
	if !Unknown.IsUnknown() {
		t.Error("Unknown.IsUnknown() = false")
	}
	if Int(0).IsUnknown() || Null.IsUnknown() {
		t.Error("known values report unknown")
	}
}

func TestString(t *testing.T) {
	cases := map[Value]string{
		Int(-7):      "int:-7",
		Long(9):      "long:9",
		Ref(0x10):    "ref:0x10",
		Null:         "null",
		Unknown:      "unknown",
		Double(2.5):  "double:2.5",
		Float(0.25):  "float:0.25",
		{K: 0, B: 0}: "invalid",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", v, got, want)
		}
	}
}

func TestEqual(t *testing.T) {
	if !Int(3).Equal(Int(3)) {
		t.Error("Int(3) != Int(3)")
	}
	if Int(3).Equal(Long(3)) {
		t.Error("kinds must participate in equality")
	}
}

// Property: every int32 and int64 roundtrips through a Value.
func TestQuickRoundtrip(t *testing.T) {
	if err := quick.Check(func(v int32) bool {
		return Int(v).Int() == v
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(v int64) bool {
		return Long(v).Long() == v
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(v uint32) bool {
		return Ref(v).Ref() == v && Ref(v).Bits() == v
	}, nil); err != nil {
		t.Error(err)
	}
}

// Property: non-NaN doubles roundtrip bit-exactly.
func TestQuickDoubleRoundtrip(t *testing.T) {
	if err := quick.Check(func(v float64) bool {
		if math.IsNaN(v) {
			return math.IsNaN(Double(v).Double())
		}
		return Double(v).Double() == v
	}, nil); err != nil {
		t.Error(err)
	}
}
