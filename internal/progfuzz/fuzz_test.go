package progfuzz

import (
	"testing"

	"strider/internal/ir"
	"strider/internal/oracle"
)

// FuzzDifferential is the structure-aware differential fuzzer: each seed
// expands to a deterministic program, which must produce identical
// architectural fingerprints through the reference oracle and through the
// full JIT+memsim stack under every prefetching configuration on both
// machines — including the prediction-source cells, where statically
// mispredicted or profile-replayed prefetches must be architecturally
// invisible — with inspection-leak and memory-model invariants asserted.
//
// The committed corpus (testdata/fuzz/FuzzDifferential) pins one seed per
// scenario plus composed shapes, so plain `go test` already runs the
// whole matrix; `go test -fuzz=FuzzDifferential` explores further seeds.
//
// Each seed verifies twice: once on the default memory fast lane (engines
// pin *memsim.Memory and take the inline L1 hit probes) and once with
// STRIDER_NO_FASTLANE forcing the pure MemModel interface path. Both runs
// must pass, and every cell's fingerprint must be bit-identical across
// the two — the lane is a wiring-time optimisation the whole
// software×hardware matrix must be unable to observe.
func FuzzDifferential(f *testing.F) {
	for seed := uint64(0); seed < NumScenarios; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		build := func() *ir.Program { return Program(seed) }
		// 8 MiB heap: small enough to exercise GC on allocation-heavy
		// shapes, comfortably large for every generated program.
		rep, err := oracle.Verify(build, oracle.Options{HeapBytes: 8 << 20})
		if err != nil {
			t.Fatalf("%s: %v", Describe(seed), err)
		}
		if !rep.OK() {
			t.Fatalf("%s:\n%s", Describe(seed), rep.Summary())
		}
		if rep.Reference.Trap != oracle.TrapNone {
			t.Fatalf("%s: generated program trapped (%s); generator must be trap-free",
				Describe(seed), rep.Reference.Trap)
		}

		t.Setenv("STRIDER_NO_FASTLANE", "1")
		slow, err := oracle.Verify(build, oracle.Options{HeapBytes: 8 << 20})
		if err != nil {
			t.Fatalf("%s (slow lane): %v", Describe(seed), err)
		}
		if !slow.OK() {
			t.Fatalf("%s (slow lane):\n%s", Describe(seed), slow.Summary())
		}
		if len(slow.Cells) != len(rep.Cells) {
			t.Fatalf("%s: %d cells fast vs %d slow", Describe(seed), len(rep.Cells), len(slow.Cells))
		}
		for i := range rep.Cells {
			if rep.Cells[i].Fingerprint != slow.Cells[i].Fingerprint {
				t.Errorf("%s: cell %s fingerprint diverged across lanes:\n fast %+v\n slow %+v",
					Describe(seed), rep.Cells[i].Config,
					rep.Cells[i].Fingerprint, slow.Cells[i].Fingerprint)
			}
		}
	})
}

// TestGeneratorDeterministic: a seed must expand to byte-identical code
// forever — the corpus depends on it.
func TestGeneratorDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 2*NumScenarios; seed++ {
		a, b := Program(seed), Program(seed)
		am, bm := a.Methods(), b.Methods()
		if len(am) != len(bm) {
			t.Fatalf("seed %d: method count %d vs %d", seed, len(am), len(bm))
		}
		for i := range am {
			if am[i].Disassemble() != bm[i].Disassemble() {
				t.Fatalf("seed %d: method %s differs between expansions", seed, am[i].QName())
			}
		}
		if a.Entry == nil {
			t.Fatalf("seed %d: no entry", seed)
		}
	}
}

// TestGeneratedProgramsWellFormed sweeps a wider seed range than the
// corpus through the oracle alone (cheap): everything must validate,
// terminate without a trap, and actually touch memory.
func TestGeneratedProgramsWellFormed(t *testing.T) {
	for seed := uint64(0); seed < 64; seed++ {
		p := Program(seed)
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: validate: %v", Describe(seed), err)
		}
		fp, err := oracle.Run(p, nil, oracle.Config{HeapBytes: 8 << 20})
		if err != nil {
			t.Fatalf("%s: %v", Describe(seed), err)
		}
		if fp.Trap != oracle.TrapNone {
			t.Fatalf("%s: trap %q", Describe(seed), fp.Trap)
		}
		if fp.Loads == 0 {
			t.Fatalf("%s: no demand loads; shape is vacuous", Describe(seed))
		}
	}
}

// TestScenarioCoverage pins the adversarial shapes the issue calls for to
// their seeds, so corpus pruning can't silently drop one.
func TestScenarioCoverage(t *testing.T) {
	want := map[uint64]string{
		1: "list-short-chain", 2: "list-early-exit", 3: "list-alloc-in-loop",
		5: "array-stride-0", 7: "array-line-alias", 8: "nested-small-trip",
		12: "array-phased-stride",
	}
	for seed, name := range want {
		if d := Describe(seed); !contains(d, name) {
			t.Errorf("seed %d: %s does not cover %q", seed, d, name)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
