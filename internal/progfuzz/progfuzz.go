// Package progfuzz generates structured, deterministic IR programs for
// differential fuzzing of the prefetching stack. Every generated program
// is valid, terminating, and trap-free by construction, so any
// disagreement between the reference oracle and the JIT+memsim stack is a
// real semantics bug, never a malformed input.
//
// A seed fully determines the program: the low four bits pick a scenario
// (one per memory-access shape the paper's mechanisms react to, plus
// adversarial variants), and the remaining bits drive a private
// splitmix64 stream for the shape parameters. The shapes deliberately
// include the cases most likely to expose unsound prefetching:
//
//   - linked-list chases, including null-terminated chains shorter than
//     the prefetch distance and loops that exit early mid-chain;
//   - array walks with stride zero (the same address every iteration),
//     unit and large strides, cache-line-aliasing offset pairs, and
//     phased strides that flip per iteration on a data test (the shape
//     that divides dynamic inspection from static prediction);
//   - loop nests whose inner loops have tiny trip counts;
//   - multi-level object-graph dereferences (o.a.b.v);
//   - allocation inside the measured loop (moving the frontier under the
//     prefetcher) and virtual dispatch on mixed receiver classes;
//   - long/float/double arithmetic with conversions.
package progfuzz

import (
	"fmt"

	"strider/internal/classfile"
	"strider/internal/ir"
	"strider/internal/value"
)

// NumScenarios is the number of distinct generator scenarios; seed&0xF
// selects one (values >= NumScenarios compose several shapes).
const NumScenarios = 16

// prng is a splitmix64 stream: tiny, seedable, and stable across Go
// releases — corpus seeds must reproduce the same program forever.
type prng struct{ s uint64 }

func (r *prng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [lo, hi].
func (r *prng) intn(lo, hi int32) int32 {
	if hi <= lo {
		return lo
	}
	return lo + int32(r.next()%uint64(hi-lo+1))
}

// gen carries the shared skeleton every shape emits into.
type gen struct {
	r             *prng
	b             *ir.Builder
	sum           ir.Reg // int accumulator every shape folds into
	node          *classfile.Class
	obj           *classfile.Class
	base, derived *classfile.Class
	fVal, fNext, fData,
	fA, fB, fV, fK *classfile.Field
}

// Describe names the scenario a seed selects, for logs and failure
// reports.
func Describe(seed uint64) string {
	names := []string{
		"list-chase", "list-short-chain", "list-early-exit", "list-alloc-in-loop",
		"array-stride-1", "array-stride-0", "array-stride-large", "array-line-alias",
		"nested-small-trip", "deref-chain", "mixed-kinds", "virtual-dispatch",
		"array-phased-stride", "combo-3", "combo-2", "combo-3",
	}
	return fmt.Sprintf("seed=%#x scenario=%s", seed, names[seed&0xF])
}

// Program deterministically generates the program for a seed.
func Program(seed uint64) *ir.Program {
	u := classfile.NewUniverse()
	node := u.MustDefineClass("Node", nil,
		classfile.FieldSpec{Name: "val", Kind: value.KindInt},
		classfile.FieldSpec{Name: "next", Kind: value.KindRef},
		classfile.FieldSpec{Name: "data", Kind: value.KindRef},
	)
	obj := u.MustDefineClass("Obj", nil,
		classfile.FieldSpec{Name: "a", Kind: value.KindRef},
		classfile.FieldSpec{Name: "b", Kind: value.KindRef},
		classfile.FieldSpec{Name: "v", Kind: value.KindInt},
	)
	base := u.MustDefineClass("Base", nil, classfile.FieldSpec{Name: "k", Kind: value.KindInt})
	derived := u.MustDefineClass("Derived", base)
	fK := base.FieldByName("k")
	p := ir.NewProgram(u)

	// Virtual hierarchy: Base.tag returns k, Derived.tag returns 3k.
	bb := ir.NewBuilder(p, base, "tag", value.KindInt, value.KindRef)
	bb.Return(bb.GetField(bb.Param(0), fK))
	bb.Finish()
	db := ir.NewBuilder(p, derived, "tag", value.KindInt, value.KindRef)
	db.Return(db.Arith(ir.OpMul, value.KindInt, db.GetField(db.Param(0), fK), db.ConstInt(3)))
	db.Finish()

	b := ir.NewBuilder(p, nil, "main", value.KindInt)
	g := &gen{
		r: &prng{s: seed ^ 0xD1B54A32D192ED03}, b: b, node: node, obj: obj,
		base: base, derived: derived,
		fVal: node.FieldByName("val"), fNext: node.FieldByName("next"),
		fData: node.FieldByName("data"),
		fA:    obj.FieldByName("a"), fB: obj.FieldByName("b"), fV: obj.FieldByName("v"),
		fK: fK,
	}
	g.sum = b.ConstInt(0)

	shapes := []func(){
		func() { g.listChase(g.r.intn(40, 160), false, false) },
		func() { g.listChase(g.r.intn(1, 3), false, false) }, // shorter than prefetch distance
		func() { g.listChase(g.r.intn(40, 160), true, false) },
		func() { g.listChase(g.r.intn(30, 90), false, true) },
		func() { g.arrayWalk(g.r.intn(64, 256), 1, 0) },
		func() { g.arrayWalk(g.r.intn(64, 256), 0, 0) }, // zero stride
		func() { g.arrayWalk(g.r.intn(128, 256), g.r.intn(5, 19), g.r.intn(0, 3)) },
		func() { g.lineAlias(g.r.intn(2048, 4096)) },
		func() { g.nested(g.r.intn(16, 48), g.r.intn(1, 3)) },
		func() { g.derefChain(g.r.intn(24, 96)) },
		func() { g.mixedKinds(g.r.intn(48, 128)) },
		func() { g.virtualDispatch(g.r.intn(32, 96)) },
		func() { g.arrayPhased(g.r.intn(96, 224), g.r.intn(1, 3), g.r.intn(5, 11)) },
	}
	switch sc := int(seed & 0xF); {
	case sc < len(shapes):
		shapes[sc]()
	default:
		// Compose several randomly chosen shapes in one program.
		n := 2 + sc%2
		for i := 0; i < n; i++ {
			shapes[int(g.r.next()%uint64(len(shapes)))]()
		}
	}

	b.Sink(g.sum)
	b.Return(g.sum)
	p.Entry = b.Finish()
	return p
}

// addTo folds v into the running checksum register.
func (g *gen) addTo(v ir.Reg) {
	g.b.ArithTo(g.sum, ir.OpAdd, value.KindInt, g.sum, v)
}

// forLoop emits `for i = 0; i < n; i++ { body(i) }` and returns nothing;
// body receives the induction register.
func (g *gen) forLoop(n int32, body func(i ir.Reg)) {
	b := g.b
	i := b.ConstInt(0)
	lim := b.ConstInt(n)
	cond, top := b.NewLabel(), b.NewLabel()
	b.Goto(cond)
	b.Bind(top)
	body(i)
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, lim, top)
}

// buildList emits code building an n-node list (head register returned);
// vals are i*mult. allocExtra attaches a data node per element, churning
// the allocation frontier.
func (g *gen) buildList(n, mult int32, allocExtra bool) ir.Reg {
	b := g.b
	head := b.ConstNull()
	g.forLoop(n, func(i ir.Reg) {
		nd := b.New(g.node)
		v := b.Arith(ir.OpMul, value.KindInt, i, b.ConstInt(mult))
		b.PutField(nd, g.fVal, v)
		b.PutField(nd, g.fNext, head)
		if allocExtra {
			ex := b.New(g.node)
			b.PutField(ex, g.fVal, i)
			b.PutField(nd, g.fData, ex)
		}
		b.MoveTo(head, nd)
	})
	return head
}

// listChase: the paper's core pattern — walk a null-terminated chain,
// optionally exiting early when a value matches, optionally allocating
// inside the traversal loop.
func (g *gen) listChase(n int32, earlyExit, allocInLoop bool) {
	b := g.b
	head := g.buildList(n, g.r.intn(1, 7), false)
	cur := b.NewReg()
	b.MoveTo(cur, head)
	null := b.ConstNull()
	cond, top, done := b.NewLabel(), b.NewLabel(), b.NewLabel()
	b.Goto(cond)
	b.Bind(top)
	v := b.GetField(cur, g.fVal)
	g.addTo(v)
	if earlyExit {
		// Exit mid-chain: everything after the exit must stay untouched
		// even though prefetches for it may already be in flight.
		b.Br(value.KindInt, ir.CondEQ, v, b.ConstInt(g.r.intn(5, 60)), done)
	}
	if allocInLoop {
		ex := b.New(g.node)
		b.PutField(ex, g.fVal, v)
		b.PutField(cur, g.fData, ex)
	}
	nx := b.GetField(cur, g.fNext)
	b.MoveTo(cur, nx)
	b.Bind(cond)
	b.Br(value.KindRef, ir.CondNE, cur, null, top)
	b.Bind(done)
}

// arrayWalk: sum an int array with the given stride. stride 0 reads the
// same element every iteration for a fixed trip count (the degenerate
// stride the detector must not misread); offset shifts the start.
func (g *gen) arrayWalk(n, stride, offset int32) {
	b := g.b
	arr := b.NewArray(value.KindInt, b.ConstInt(n))
	g.forLoop(n, func(i ir.Reg) {
		v := b.Arith(ir.OpXor, value.KindInt, i, b.ConstInt(0x2B))
		b.ArrayStore(value.KindInt, arr, i, v)
	})
	if stride == 0 {
		idx := b.ConstInt(offset % n)
		g.forLoop(g.r.intn(16, 64), func(ir.Reg) {
			v := b.ArrayLoad(value.KindInt, arr, idx)
			g.addTo(v)
		})
		return
	}
	j := b.ConstInt(offset)
	lim := b.ConstInt(n)
	cond, top := b.NewLabel(), b.NewLabel()
	b.Goto(cond)
	b.Bind(top)
	v := b.ArrayLoad(value.KindInt, arr, j)
	g.addTo(v)
	b.ArithTo(j, ir.OpAdd, value.KindInt, j, b.ConstInt(stride))
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, j, lim, top)
}

// arrayPhased: a walk whose stride flips between two values depending on
// a per-iteration data test (index parity) — a phased stride. Dynamic
// inspection sees the blend and judges it against the dominance threshold;
// a static induction analysis sees two disagreeing steps and must predict
// nothing. Either way the prefetches it does or does not get must leave
// the checksum untouched — the static-vs-dynamic divergence adversary.
func (g *gen) arrayPhased(n, strideA, strideB int32) {
	b := g.b
	arr := b.NewArray(value.KindInt, b.ConstInt(n))
	g.forLoop(n, func(i ir.Reg) {
		v := b.Arith(ir.OpXor, value.KindInt, i, b.ConstInt(0x5D))
		b.ArrayStore(value.KindInt, arr, i, v)
	})
	j := b.ConstInt(0)
	lim := b.ConstInt(n)
	cond, top, odd, step := b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel()
	b.Goto(cond)
	b.Bind(top)
	v := b.ArrayLoad(value.KindInt, arr, j)
	g.addTo(v)
	par := b.Arith(ir.OpAnd, value.KindInt, v, b.ConstInt(1))
	b.BrIntZero(ir.CondNE, par, odd)
	b.ArithTo(j, ir.OpAdd, value.KindInt, j, b.ConstInt(strideA))
	b.Goto(step)
	b.Bind(odd)
	b.ArithTo(j, ir.OpAdd, value.KindInt, j, b.ConstInt(strideB))
	b.Bind(step)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, j, lim, top)
}

// lineAlias: two interleaved access streams whose addresses differ by a
// large power-of-two byte offset, so they collide in cache sets while
// their strides are identical — a classic false-sharing-ish adversary for
// prefetch usefulness accounting.
func (g *gen) lineAlias(n int32) {
	b := g.b
	// 1024 ints = 4096 bytes apart: aliases a 4 KiB-way cache set layout.
	gap := int32(1024)
	arr := b.NewArray(value.KindInt, b.ConstInt(n))
	g.forLoop(n, func(i ir.Reg) { b.ArrayStore(value.KindInt, arr, i, i) })
	g.forLoop(n-gap, func(i ir.Reg) {
		lo := b.ArrayLoad(value.KindInt, arr, i)
		hiIdx := b.Arith(ir.OpAdd, value.KindInt, i, b.ConstInt(gap))
		hi := b.ArrayLoad(value.KindInt, arr, hiIdx)
		g.addTo(b.Arith(ir.OpSub, value.KindInt, hi, lo))
	})
}

// nested: an outer loop over a list with a tiny inner array loop — the
// shape the paper's intra-iteration analysis and trip-count heuristics
// carve up.
func (g *gen) nested(outer, innerTrip int32) {
	b := g.b
	head := g.buildList(outer, 3, true)
	arr := b.NewArray(value.KindInt, b.ConstInt(innerTrip))
	g.forLoop(innerTrip, func(i ir.Reg) { b.ArrayStore(value.KindInt, arr, i, i) })
	cur := b.NewReg()
	b.MoveTo(cur, head)
	null := b.ConstNull()
	cond, top := b.NewLabel(), b.NewLabel()
	b.Goto(cond)
	b.Bind(top)
	g.forLoop(innerTrip, func(j ir.Reg) {
		v := b.ArrayLoad(value.KindInt, arr, j)
		w := b.GetField(cur, g.fVal)
		g.addTo(b.Arith(ir.OpAdd, value.KindInt, v, w))
	})
	nx := b.GetField(cur, g.fNext)
	b.MoveTo(cur, nx)
	b.Bind(cond)
	b.Br(value.KindRef, ir.CondNE, cur, null, top)
}

// derefChain: an array of roots each dereferenced two levels deep
// (o.a.b.v), the multi-hop LDG path.
func (g *gen) derefChain(n int32) {
	b := g.b
	roots := b.NewArray(value.KindRef, b.ConstInt(n))
	g.forLoop(n, func(i ir.Reg) {
		leaf := b.New(g.obj)
		b.PutField(leaf, g.fV, i)
		mid := b.New(g.obj)
		b.PutField(mid, g.fB, leaf)
		top := b.New(g.obj)
		b.PutField(top, g.fA, mid)
		b.ArrayStore(value.KindRef, roots, i, top)
	})
	g.forLoop(n, func(i ir.Reg) {
		o := b.ArrayLoad(value.KindRef, roots, i)
		a := b.GetField(o, g.fA)
		bb := b.GetField(a, g.fB)
		g.addTo(b.GetField(bb, g.fV))
	})
}

// mixedKinds: long/double array traffic with conversions folded back to
// the int checksum.
func (g *gen) mixedKinds(n int32) {
	b := g.b
	da := b.NewArray(value.KindDouble, b.ConstInt(n))
	la := b.NewArray(value.KindLong, b.ConstInt(n))
	g.forLoop(n, func(i ir.Reg) {
		d := b.Conv(value.KindDouble, i)
		b.ArrayStore(value.KindDouble, da, i, b.Arith(ir.OpMul, value.KindDouble, d, b.ConstDouble(0.5)))
		l := b.Conv(value.KindLong, i)
		b.ArrayStore(value.KindLong, la, i, b.Arith(ir.OpShl, value.KindLong, l, b.ConstLong(2)))
	})
	facc := b.ConstDouble(0)
	lacc := b.ConstLong(0)
	g.forLoop(n, func(i ir.Reg) {
		b.ArithTo(facc, ir.OpAdd, value.KindDouble, facc, b.ArrayLoad(value.KindDouble, da, i))
		b.ArithTo(lacc, ir.OpAdd, value.KindLong, lacc, b.ArrayLoad(value.KindLong, la, i))
	})
	b.Sink(facc)
	g.addTo(b.Conv(value.KindInt, facc))
	g.addTo(b.Conv(value.KindInt, lacc))
}

// virtualDispatch: mixed receiver classes resolved per element — the
// dispatch itself rides on an inspected header load.
func (g *gen) virtualDispatch(n int32) {
	b := g.b
	arr := b.NewArray(value.KindRef, b.ConstInt(n))
	g.forLoop(n, func(i ir.Reg) {
		rem := b.Arith(ir.OpRem, value.KindInt, i, b.ConstInt(2))
		isOdd, done := b.NewLabel(), b.NewLabel()
		b.BrIntZero(ir.CondNE, rem, isOdd)
		o1 := b.New(g.base)
		b.PutField(o1, g.fK, i)
		b.ArrayStore(value.KindRef, arr, i, o1)
		b.Goto(done)
		b.Bind(isOdd)
		o2 := b.New(g.derived)
		b.PutField(o2, g.fK, i)
		b.ArrayStore(value.KindRef, arr, i, o2)
		b.Bind(done)
	})
	g.forLoop(n, func(i ir.Reg) {
		o := b.ArrayLoad(value.KindRef, arr, i)
		g.addTo(b.CallVirt("tag", true, o))
	})
}
