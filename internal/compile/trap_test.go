// Trap-path differential tests: every fault the interpreter can raise must
// surface from the threaded tier with the same cause, the same pc, and the
// same accounting — including faults reached mid-way through a fused run
// and ops the builder never emits (pre-decoded trap shapes).
package compile_test

import (
	"errors"
	"strings"
	"testing"

	"strider/internal/classfile"
	"strider/internal/interp"
	"strider/internal/ir"
	"strider/internal/value"
)

// trapProg builds one program per faulting shape: a register holding a
// non-ref (or null) flows into each heap-addressed op.
func trapProg(fault string) func() *ir.Program {
	return func() *ir.Program {
		u := classfile.NewUniverse()
		cls := u.MustDefineClass("T", nil,
			classfile.FieldSpec{Name: "i", Kind: value.KindInt},
			classfile.FieldSpec{Name: "l", Kind: value.KindLong},
		)
		fI := cls.FieldByName("i")
		fL := cls.FieldByName("l")
		p := ir.NewProgram(u)
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		null := b.ConstNull()
		num := b.ConstInt(3)
		n := b.ConstInt(4)
		arr := b.NewArray(value.KindInt, n)
		larr := b.NewArray(value.KindLong, n)
		switch fault {
		case "getfield-null":
			b.GetFieldTo(num, null, fI)
		case "getfield8-null":
			b.GetFieldTo(num, null, fL)
		case "getfield-nonref":
			b.GetFieldTo(num, num, fI)
		case "getfield8-nonref":
			b.GetFieldTo(num, num, fL)
		case "putfield-null":
			b.PutField(null, fI, num)
		case "putfield-nonref":
			b.PutField(num, fI, num)
		case "arraylen-null":
			b.ArrayLen(null)
		case "arraylen-nonref":
			b.ArrayLen(num)
		case "arrayload-null":
			b.ArrayLoad(value.KindInt, null, num)
		case "arrayload-nonref":
			b.ArrayLoad(value.KindInt, num, num)
		case "arrayload-badindex":
			b.ArrayLoad(value.KindInt, arr, null)
		case "arrayload-oob":
			b.ArrayLoad(value.KindInt, arr, n)
		case "arrayload8-oob":
			neg := b.ConstInt(-1)
			b.ArrayLoad(value.KindLong, larr, neg)
		case "arraystore-null":
			b.ArrayStore(value.KindInt, null, num, num)
		case "arraystore-oob":
			b.ArrayStore(value.KindInt, arr, n, num)
		case "newarray-negative":
			neg := b.ConstInt(-2)
			b.NewArray(value.KindInt, neg)
		case "newarray-badsize":
			b.NewArray(value.KindInt, null)
		case "callvirt-null":
			b.CallVirt("anything", false, null)
		case "callvirt-nonref":
			b.CallVirt("anything", false, num)
		default:
			panic("unknown fault " + fault)
		}
		b.Return(num)
		p.Entry = b.Finish()
		return p
	}
}

func TestHeapTrapParity(t *testing.T) {
	faults := []string{
		"getfield-null", "getfield8-null", "getfield-nonref", "getfield8-nonref",
		"putfield-null", "putfield-nonref",
		"arraylen-null", "arraylen-nonref",
		"arrayload-null", "arrayload-nonref", "arrayload-badindex",
		"arrayload-oob", "arrayload8-oob",
		"arraystore-null", "arraystore-oob",
		"newarray-negative", "newarray-badsize",
		"callvirt-null", "callvirt-nonref",
	}
	// Every fault shape runs under both memory lanes: traps interleave
	// with memory accesses (a putfield trap follows the object's header
	// loads), so attribution must not depend on which lane served them.
	run := func(t *testing.T) {
		for _, fault := range faults {
			t.Run(fault, func(t *testing.T) {
				_, err := runBoth(t, trapProg(fault), nil)
				if err == nil {
					t.Fatalf("%s did not trap", fault)
				}
			})
		}
	}
	t.Run("fastlane", run)
	t.Run("slowlane", func(t *testing.T) {
		t.Setenv("STRIDER_NO_FASTLANE", "1")
		run(t)
	})
}

func TestBoundsMessageCarriesIndexAndLength(t *testing.T) {
	_, err := runBoth(t, trapProg("arrayload-oob"), nil)
	if !errors.Is(err, interp.ErrBounds) {
		t.Fatalf("err = %v, want ErrBounds", err)
	}
	if !strings.Contains(err.Error(), "4 of 4") {
		t.Errorf("bounds message %q does not carry index and length", err)
	}
}

// TestBudgetTrapSweep runs a loop under every instruction budget from 1 to
// just past the loop's full retirement. Each budget lands the trap on a
// different micro-op — loop-top checks, fused-head overshoots into
// fusedSlow, mid-call boundaries — and interp and compiled must agree on
// the pc, the cause, and the retired counts at every single one.
func TestBudgetTrapSweep(t *testing.T) {
	build := func() *ir.Program {
		u := classfile.NewUniverse()
		cls := u.MustDefineClass("B", nil,
			classfile.FieldSpec{Name: "x", Kind: value.KindInt},
		)
		fX := cls.FieldByName("x")
		p := ir.NewProgram(u)
		var bump *ir.Method
		{
			b := ir.NewBuilder(p, nil, "bump", value.KindInt, value.KindRef)
			obj := b.Param(0)
			v := b.GetField(obj, fX)
			one := b.ConstInt(1)
			nv := b.AddInt(v, one)
			b.PutField(obj, fX, nv)
			b.Return(nv)
			bump = b.Finish()
		}
		{
			b := ir.NewBuilder(p, nil, "main", value.KindInt)
			obj := b.New(cls)
			zero := b.ConstInt(0)
			b.PutField(obj, fX, zero)
			n := b.ConstInt(6)
			i := b.ConstInt(0)
			acc := b.ConstInt(0)
			t1 := b.ConstInt(3)
			cond := b.NewLabel()
			body := b.NewLabel()
			b.Goto(cond)
			b.Bind(body)
			// A fused run inside the loop body...
			s1 := b.AddInt(acc, t1)
			s2 := b.Arith(ir.OpMul, value.KindInt, s1, t1)
			s3 := b.Arith(ir.OpSub, value.KindInt, s2, acc)
			b.MoveTo(acc, s3)
			// ...then a call, so budgets land across frame boundaries too.
			r := b.Call(bump, obj)
			b.ArithTo(acc, ir.OpAdd, value.KindInt, acc, r)
			b.IncInt(i, 1)
			b.Bind(cond)
			b.Br(value.KindInt, ir.CondLT, i, n, body)
			b.Return(acc)
			p.Entry = b.Finish()
		}
		return p
	}

	// Full retirement without a budget first, to size the sweep.
	pFull := build()
	eFull := newEngine(pFull, interpDisp{})
	if _, err := eFull.Run(pFull.Entry, nil); err != nil {
		t.Fatal(err)
	}
	full := eFull.S.Instructions

	// The sweep runs once per memory lane: the default fast lane (the
	// engines pin *memsim.Memory and take the inline L1 hit probes) and,
	// with STRIDER_NO_FASTLANE set, the pure MemModel interface path.
	// Interp and compiled must agree at every budget within each lane,
	// and the per-budget stats recorded by the two sweeps must match
	// across lanes — lane choice is a wiring-time optimisation and must
	// never be observable, least of all mid-trap.
	sweep := func(t *testing.T, wantFast bool) []interp.Stats {
		stats := make([]interp.Stats, 0, full+1)
		for budget := uint64(1); budget <= full+1; budget++ {
			pi := build()
			ei := newEngine(pi, interpDisp{})
			ei.MaxInstructions = budget
			ri, erri := ei.Run(pi.Entry, nil)

			pc := build()
			ec := newEngine(pc, newThreadedDisp(pc.Universe, nil))
			ec.MaxInstructions = budget
			rc, errc := ec.Run(pc.Entry, nil)

			if got := ec.FastMem() != nil; got != wantFast {
				t.Fatalf("budget %d: fast lane pinned = %v, want %v", budget, got, wantFast)
			}
			if ri != rc {
				t.Errorf("budget %d: result diverged: %v vs %v", budget, ri, rc)
			}
			diffErr(t, erri, errc)
			diffStats(t, ei.S, ec.S)
			if budget < full && !errors.Is(errc, interp.ErrBudget) {
				t.Errorf("budget %d: err = %v, want ErrBudget", budget, errc)
			}
			if t.Failed() {
				t.Fatalf("diverged at budget %d of %d", budget, full)
			}
			stats = append(stats, ec.S)
		}
		return stats
	}
	var fast, slow []interp.Stats
	t.Run("fastlane", func(t *testing.T) { fast = sweep(t, true) })
	t.Run("slowlane", func(t *testing.T) {
		t.Setenv("STRIDER_NO_FASTLANE", "1")
		slow = sweep(t, false)
	})
	if t.Failed() {
		return
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Errorf("budget %d: stats diverged across lanes:\n fast %+v\n slow %+v",
				i+1, fast[i], slow[i])
		}
	}
}

// patchedProg reserves a placeholder instruction (a Sink) and overwrites
// it with a raw shape the builder never emits, exercising the pre-decoded
// trap ops and the JIT-spliced prefetch forms.
func patchedProg(patch func(m *ir.Method, at int, scratch []ir.Reg)) func() *ir.Program {
	return func() *ir.Program {
		u := classfile.NewUniverse()
		cls := u.MustDefineClass("P", nil,
			classfile.FieldSpec{Name: "x", Kind: value.KindInt},
		)
		fX := cls.FieldByName("x")
		p := ir.NewProgram(u)
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		obj := b.New(cls)
		val := b.ConstInt(9)
		b.PutField(obj, fX, val)
		idx := b.ConstInt(1)
		spare := b.NewReg()
		b.Sink(val) // placeholder, overwritten by patch (index 4)
		got := b.GetField(obj, fX)
		b.Return(got)
		m := b.Finish()
		p.Entry = m
		patch(m, 4, []ir.Reg{obj, val, idx, spare})
		return p
	}
}

func TestPatchedOpEdges(t *testing.T) {
	cases := map[string]struct {
		patch   func(m *ir.Method, at int, s []ir.Reg)
		wantErr string // substring of the trap cause; empty = must succeed
	}{
		"unknown-op": {
			patch: func(m *ir.Method, at int, s []ir.Reg) {
				m.Code[at] = ir.Instr{Op: ir.Op(250)}
			},
			wantErr: "unimplemented op",
		},
		"unknown-int-cond": {
			patch: func(m *ir.Method, at int, s []ir.Reg) {
				m.Code[at] = ir.Instr{Op: ir.OpBr, Kind: value.KindInt,
					Cond: ir.Cond(250), A: s[1], B: s[1], Target: at + 1}
			},
			wantErr: "", // interp faults lazily; see below
		},
		"ref-cond-lt": {
			patch: func(m *ir.Method, at int, s []ir.Reg) {
				m.Code[at] = ir.Instr{Op: ir.OpBr, Kind: value.KindRef,
					Cond: ir.CondLT, A: s[0], B: s[0], Target: at + 1}
			},
		},
		"prefetch-live": {
			patch: func(m *ir.Method, at int, s []ir.Reg) {
				m.Code[at] = ir.Instr{Op: ir.OpPrefetch,
					Addr: ir.AddrExpr{Base: s[0], Index: ir.NoReg}, Guarded: true}
			},
		},
		"prefetch-dead-base": {
			patch: func(m *ir.Method, at int, s []ir.Reg) {
				m.Code[at] = ir.Instr{Op: ir.OpPrefetch,
					Addr: ir.AddrExpr{Base: s[1], Index: ir.NoReg}}
			},
		},
		"specload-live": {
			patch: func(m *ir.Method, at int, s []ir.Reg) {
				m.Code[at] = ir.Instr{Op: ir.OpSpecLoad, Dst: s[3],
					Addr: ir.AddrExpr{Base: s[0], Index: s[2], Scale: 4}}
			},
		},
		"specload-dead-base": {
			patch: func(m *ir.Method, at int, s []ir.Reg) {
				m.Code[at] = ir.Instr{Op: ir.OpSpecLoad, Dst: s[3],
					Addr: ir.AddrExpr{Base: s[1], Index: ir.NoReg}}
			},
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := runBoth(t, patchedProg(tc.patch), nil)
			if tc.wantErr == "" && name != "unknown-int-cond" {
				if err != nil {
					t.Fatalf("unexpected trap: %v", err)
				}
				return
			}
			if name == "unknown-int-cond" || name == "ref-cond-lt" {
				// Both shapes must trap identically (parity already
				// checked by runBoth); the exact cause is EvalCond's.
				if err == nil {
					t.Fatal("bad condition did not trap")
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}
