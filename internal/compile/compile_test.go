// Differential tests for the compiled execution tier: every program runs
// twice on otherwise identical engines — once through the interpreter loop
// (Compiled code without a threaded artifact) and once through the
// pre-decoded micro-op stream — and the results, traps, and the full
// cycle/instruction accounting must agree bit for bit. This is the
// package-local form of the oracle differ's exec axis, small enough to
// pin each micro-kind and trap path individually.
package compile_test

import (
	"errors"
	"testing"

	"strider/internal/arch"
	"strider/internal/classfile"
	"strider/internal/compile"
	"strider/internal/heap"
	"strider/internal/interp"
	"strider/internal/ir"
	"strider/internal/memsim"
	"strider/internal/telemetry"
	"strider/internal/value"
)

// interpDisp marks every method compiled but supplies no threaded
// artifact, so Run uses the interpreter loop with compiled-tier
// accounting — the exact baseline the threaded tier must reproduce.
type interpDisp struct{}

func (interpDisp) Invoke(m *ir.Method, args []value.Value) *interp.Code {
	return &interp.Code{Instrs: m.Code, NumRegs: m.NumRegs, Compiled: true}
}

// threadedDisp builds (and caches) a compile.Func for methods selected by
// want; a nil want threads everything. Unselected methods interpret.
type threadedDisp struct {
	u     *classfile.Universe
	want  func(*ir.Method) bool
	codes map[*ir.Method]*interp.Code
}

func newThreadedDisp(u *classfile.Universe, want func(*ir.Method) bool) *threadedDisp {
	return &threadedDisp{u: u, want: want, codes: make(map[*ir.Method]*interp.Code)}
}

func (d *threadedDisp) Invoke(m *ir.Method, args []value.Value) *interp.Code {
	if c, ok := d.codes[m]; ok {
		return c
	}
	c := &interp.Code{Instrs: m.Code, NumRegs: m.NumRegs, Compiled: true}
	if d.want == nil || d.want(m) {
		c.Threaded = compile.Build(m, m.Code, d.u)
	}
	d.codes[m] = c
	return c
}

func newEngine(p *ir.Program, disp interp.Dispatcher) *interp.Engine {
	machine := arch.Pentium4()
	return interp.New(p, heap.New(1<<20, p.Universe), memsim.New(machine), disp, machine)
}

// runBoth executes a freshly built program under both execution tiers and
// fails the test on any divergence in result, trap, or accounting. It
// returns the (identical) stats and error for extra assertions.
func runBoth(t *testing.T, build func() *ir.Program, args []value.Value) (interp.Stats, error) {
	t.Helper()
	pi := build()
	ei := newEngine(pi, interpDisp{})
	ri, erri := ei.Run(pi.Entry, args)

	pc := build()
	ec := newEngine(pc, newThreadedDisp(pc.Universe, nil))
	rc, errc := ec.Run(pc.Entry, args)

	if ri != rc {
		t.Errorf("result diverged: interp %v, compiled %v", ri, rc)
	}
	diffErr(t, erri, errc)
	diffStats(t, ei.S, ec.S)
	return ec.S, errc
}

func diffErr(t *testing.T, erri, errc error) {
	t.Helper()
	if (erri == nil) != (errc == nil) {
		t.Fatalf("trap diverged: interp %v, compiled %v", erri, errc)
	}
	if erri == nil {
		return
	}
	var ri, rc *interp.RuntimeError
	if !errors.As(erri, &ri) || !errors.As(errc, &rc) {
		t.Fatalf("non-runtime error: interp %v, compiled %v", erri, errc)
	}
	if ri.Method.QName() != rc.Method.QName() || ri.PC != rc.PC || ri.Err.Error() != rc.Err.Error() {
		t.Errorf("trap attribution diverged:\n interp  %s@%d: %v\n compiled %s@%d: %v",
			ri.Method.QName(), ri.PC, ri.Err, rc.Method.QName(), rc.PC, rc.Err)
	}
}

func diffStats(t *testing.T, a, b interp.Stats) {
	t.Helper()
	if a != b {
		t.Errorf("stats diverged:\n interp   %+v\n compiled %+v", a, b)
	}
}

// --- straight-line arithmetic, fusion, and the generic fallbacks ---

func TestFusedArithmetic(t *testing.T) {
	s, err := runBoth(t, func() *ir.Program {
		p := ir.NewProgram(classfile.NewUniverse())
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		// A maximal fusible run: consts, int arith, a move, a sink.
		x := b.ConstInt(6)
		y := b.ConstInt(7)
		z := b.Arith(ir.OpMul, value.KindInt, x, y)
		w := b.Arith(ir.OpSub, value.KindInt, z, x)
		v := b.AddInt(w, y)
		b.MoveTo(x, v)
		b.Sink(x)
		b.Return(x)
		p.Entry = b.Finish()
		return p
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Instructions != 8 {
		t.Errorf("retired %d instructions, want 8", s.Instructions)
	}
	if s.CompiledInstructions != s.Instructions {
		t.Errorf("compiled tier retired %d of %d instructions", s.CompiledInstructions, s.Instructions)
	}
}

func TestBranchIntoFusedRun(t *testing.T) {
	// The loop header lands in the middle of what fuse() packs into a
	// single dispatch; sub-ops keep their own micro-kinds, so re-entering
	// the run mid-way must execute exactly the tail.
	_, err := runBoth(t, func() *ir.Program {
		p := ir.NewProgram(classfile.NewUniverse())
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		n := b.ConstInt(5)
		i := b.ConstInt(0)
		acc := b.ConstInt(0)
		mid := b.NewLabel()
		b.Bind(mid) // branch target inside the const/add run
		b.ArithTo(acc, ir.OpAdd, value.KindInt, acc, i)
		b.IncInt(i, 1)
		b.Br(value.KindInt, ir.CondLT, i, n, mid)
		b.Return(acc)
		p.Entry = b.Finish()
		return p
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestGenericArithmetic(t *testing.T) {
	_, err := runBoth(t, func() *ir.Program {
		p := ir.NewProgram(classfile.NewUniverse())
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		// Non-int kinds and the non-fused int ops all take the cold
		// opBinGeneric/opNeg/opConv chain.
		l := b.ConstLong(1 << 40)
		l2 := b.Arith(ir.OpAdd, value.KindLong, l, l)
		f := b.ConstFloat(1.5)
		f2 := b.Arith(ir.OpMul, value.KindFloat, f, f)
		d := b.ConstDouble(2.25)
		d2 := b.Arith(ir.OpDiv, value.KindDouble, d, d)
		x := b.ConstInt(1000)
		y := b.ConstInt(7)
		q := b.Arith(ir.OpDiv, value.KindInt, x, y)
		r := b.Arith(ir.OpRem, value.KindInt, x, y)
		a := b.Arith(ir.OpAnd, value.KindInt, x, y)
		o := b.Arith(ir.OpOr, value.KindInt, x, y)
		xo := b.Arith(ir.OpXor, value.KindInt, x, y)
		sl := b.Arith(ir.OpShl, value.KindInt, x, y)
		sr := b.Arith(ir.OpShr, value.KindInt, x, y)
		us := b.Arith(ir.OpUshr, value.KindInt, x, y)
		ng := b.Neg(value.KindInt, x)
		cv := b.Conv(value.KindInt, d2)
		li := b.Conv(value.KindInt, l2)
		fi := b.Conv(value.KindInt, f2)
		for _, reg := range []ir.Reg{q, r, a, o, xo, sl, sr, us, ng, cv, li, fi} {
			b.Sink(reg)
		}
		sum := b.AddInt(q, r)
		b.Return(sum)
		p.Entry = b.Finish()
		return p
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestGenericBranches(t *testing.T) {
	_, err := runBoth(t, func() *ir.Program {
		p := ir.NewProgram(classfile.NewUniverse())
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		// Long and double comparisons dispatch through opBrGeneric.
		x := b.ConstLong(9)
		y := b.ConstLong(10)
		d := b.ConstDouble(1.5)
		e := b.ConstDouble(2.5)
		la := b.NewLabel()
		lb := b.NewLabel()
		miss := b.NewLabel()
		b.Br(value.KindLong, ir.CondLT, x, y, la)
		b.Goto(miss)
		b.Bind(la)
		b.Br(value.KindDouble, ir.CondGT, d, e, miss)
		b.Goto(lb)
		b.Bind(lb)
		one := b.ConstInt(1)
		b.Return(one)
		b.Bind(miss)
		zero := b.ConstInt(0)
		b.Return(zero)
		p.Entry = b.Finish()
		return p
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDivByZeroTrap(t *testing.T) {
	_, err := runBoth(t, func() *ir.Program {
		p := ir.NewProgram(classfile.NewUniverse())
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		x := b.ConstInt(1)
		z := b.ConstInt(0)
		q := b.Arith(ir.OpDiv, value.KindInt, x, z)
		b.Return(q)
		p.Entry = b.Finish()
		return p
	}, nil)
	if err == nil {
		t.Fatal("division by zero did not trap")
	}
}

// --- objects, arrays, and statics ---

// fieldProg defines a class with a narrow and a wide field plus a static,
// and exercises every heap-addressed micro-kind on it.
func fieldProg() *ir.Program {
	u := classfile.NewUniverse()
	cls := u.MustDefineClass("Box", nil,
		classfile.FieldSpec{Name: "i", Kind: value.KindInt},
		classfile.FieldSpec{Name: "l", Kind: value.KindLong},
		classfile.FieldSpec{Name: "g", Kind: value.KindInt, Static: true},
	)
	stat := cls.FieldByName("g")
	fI := cls.FieldByName("i")
	fL := cls.FieldByName("l")

	p := ir.NewProgram(u)
	b := ir.NewBuilder(p, nil, "main", value.KindInt)
	box := b.New(cls)
	seven := b.ConstInt(7)
	big := b.ConstLong(1 << 33)
	b.PutField(box, fI, seven)
	b.PutField(box, fL, big)
	gi := b.GetField(box, fI)
	gl := b.GetField(box, fL)
	b.Sink(gl)
	b.PutStatic(stat, gi)
	gs := b.GetStatic(stat)

	n := b.ConstInt(4)
	arr := b.NewArray(value.KindInt, n)
	larr := b.NewArray(value.KindLong, n)
	idx := b.ConstInt(2)
	b.ArrayStore(value.KindInt, arr, idx, gs)
	b.ArrayStore(value.KindLong, larr, idx, gl)
	ai := b.ArrayLoad(value.KindInt, arr, idx)
	al := b.ArrayLoad(value.KindLong, larr, idx)
	b.Sink(al)
	ln := b.ArrayLen(arr)
	sum := b.AddInt(ai, ln)
	b.Return(sum)
	p.Entry = b.Finish()
	return p
}

func TestFieldsArraysStatics(t *testing.T) {
	s, err := runBoth(t, fieldProg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cycles == 0 || s.Checksum == 0 {
		t.Errorf("degenerate run: %+v", s)
	}
}

// --- calls: compiled-to-compiled, mixed tiers, virtual dispatch ---

func callProg() *ir.Program {
	u := classfile.NewUniverse()
	cls := u.MustDefineClass("C", nil,
		classfile.FieldSpec{Name: "x", Kind: value.KindInt},
	)
	fX := cls.FieldByName("x")
	p := ir.NewProgram(u)

	// C::get(this) -> int
	{
		b := ir.NewBuilder(p, cls, "get", value.KindInt, value.KindRef)
		this := b.Param(0)
		v := b.GetField(this, fX)
		b.Return(v)
		b.Finish()
	}
	// C::bump(this) — void return through the nested path.
	{
		b := ir.NewBuilder(p, cls, "bump", value.KindInvalid, value.KindRef)
		this := b.Param(0)
		v := b.GetField(this, fX)
		one := b.ConstInt(1)
		nv := b.AddInt(v, one)
		b.PutField(this, fX, nv)
		b.ReturnVoid()
		b.Finish()
	}
	// ::fact(n) -> int — direct recursion.
	var fact *ir.Method
	{
		b := ir.NewBuilder(p, nil, "fact", value.KindInt, value.KindInt)
		n := b.Param(0)
		one := b.ConstInt(1)
		base := b.NewLabel()
		b.Br(value.KindInt, ir.CondLE, n, one, base)
		nm1 := b.Arith(ir.OpSub, value.KindInt, n, one)
		sub := b.Call(b.Self(), nm1)
		r := b.Arith(ir.OpMul, value.KindInt, n, sub)
		b.Return(r)
		b.Bind(base)
		b.Return(one)
		fact = b.Finish()
	}
	// ::main
	{
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		obj := b.New(cls)
		five := b.ConstInt(5)
		b.PutField(obj, fX, five)
		b.CallVirt("bump", false, obj)
		got := b.CallVirt("get", true, obj)
		f := b.Call(fact, five)
		sum := b.AddInt(got, f)
		b.Return(sum)
		p.Entry = b.Finish()
	}
	return p
}

func TestCallsNestedCompiled(t *testing.T) {
	s, err := runBoth(t, callProg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Instructions == 0 {
		t.Error("no instructions retired")
	}
}

// TestMixedTiers threads only a subset of methods, so compiled frames call
// into interpreted callees (the ctrlCall yield to Run) and interpreted
// frames call into compiled ones.
func TestMixedTiers(t *testing.T) {
	for name, want := range map[string]func(*ir.Method) bool{
		"threaded-caller": func(m *ir.Method) bool { return m.Name == "main" },
		"threaded-callee": func(m *ir.Method) bool { return m.Name != "main" },
	} {
		t.Run(name, func(t *testing.T) {
			pi := callProg()
			ei := newEngine(pi, interpDisp{})
			ri, erri := ei.Run(pi.Entry, nil)

			pm := callProg()
			em := newEngine(pm, newThreadedDisp(pm.Universe, want))
			rm, errm := em.Run(pm.Entry, nil)

			if ri != rm {
				t.Errorf("result diverged: interp %v, mixed %v", ri, rm)
			}
			diffErr(t, erri, errm)
			diffStats(t, ei.S, em.S)
		})
	}
}

func TestVirtualDispatchFailure(t *testing.T) {
	_, err := runBoth(t, func() *ir.Program {
		u := classfile.NewUniverse()
		cls := u.MustDefineClass("D", nil,
			classfile.FieldSpec{Name: "x", Kind: value.KindInt},
		)
		p := ir.NewProgram(u)
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		obj := b.New(cls)
		r := b.CallVirt("noSuchMethod", true, obj)
		b.Return(r)
		p.Entry = b.Finish()
		return p
	}, nil)
	if !errors.Is(err, interp.ErrNoMethod) {
		t.Fatalf("err = %v, want ErrNoMethod", err)
	}
}

func TestStackOverflow(t *testing.T) {
	_, err := runBoth(t, func() *ir.Program {
		p := ir.NewProgram(classfile.NewUniverse())
		b := ir.NewBuilder(p, nil, "loop", value.KindInt)
		r := b.Call(b.Self())
		b.Return(r)
		p.Entry = b.Finish()
		return p
	}, nil)
	if !errors.Is(err, interp.ErrStackOverflow) {
		t.Fatalf("err = %v, want ErrStackOverflow", err)
	}
}

// --- allocation pressure: GC interleaving and heap exhaustion ---

func TestAllocationChurn(t *testing.T) {
	s, err := runBoth(t, func() *ir.Program {
		p := ir.NewProgram(classfile.NewUniverse())
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		// Allocate far more than the 1 MiB heap holds, keeping nothing
		// live: the compiled tier's flush/reload around AllocArray (and
		// any GC it triggers) must keep accounting identical.
		n := b.ConstInt(4000)
		sz := b.ConstInt(256)
		i := b.ConstInt(0)
		cond := b.NewLabel()
		body := b.NewLabel()
		b.Goto(cond)
		b.Bind(body)
		arr := b.NewArray(value.KindInt, sz)
		zero := b.ConstInt(0)
		b.ArrayStore(value.KindInt, arr, zero, i)
		b.IncInt(i, 1)
		b.Bind(cond)
		b.Br(value.KindInt, ir.CondLT, i, n, body)
		b.Return(i)
		p.Entry = b.Finish()
		return p
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.GCs == 0 {
		t.Skip("heap never filled; GC path not exercised at this size")
	}
}

// --- recorder attribution: NoteLoad / NotePrefetch paths ---

// siteCounter counts Site events flushed by the engine.
type siteCounter struct {
	telemetry.Nop
	sites int
}

func (s *siteCounter) Site(telemetry.SiteEvent) { s.sites++ }

func TestRecorderAttribution(t *testing.T) {
	run := func(threaded bool) (value.Value, interp.Stats, int, error) {
		p := fieldProg()
		var disp interp.Dispatcher = interpDisp{}
		if threaded {
			disp = newThreadedDisp(p.Universe, nil)
		}
		e := newEngine(p, disp)
		rec := &siteCounter{}
		e.Rec = rec
		r, err := e.Run(p.Entry, nil)
		e.FlushSites()
		return r, e.S, rec.sites, err
	}
	ri, si, ni, erri := run(false)
	rc, sc, nc, errc := run(true)
	if erri != nil || errc != nil {
		t.Fatal(erri, errc)
	}
	if ri != rc {
		t.Errorf("result diverged: %v vs %v", ri, rc)
	}
	diffStats(t, si, sc)
	if ni != nc {
		t.Errorf("flushed %d site events interpreted, %d compiled", ni, nc)
	}
}
