// Coverage completions: micro-kinds and error paths the broader
// differential programs do not reach naturally.
package compile_test

import (
	"testing"

	"strider/internal/classfile"
	"strider/internal/interp"
	"strider/internal/ir"
	"strider/internal/value"
)

// TestIntBranchKinds drives every specialized int-branch micro-kind down
// both its taken and fall-through edges.
func TestIntBranchKinds(t *testing.T) {
	for _, cond := range []ir.Cond{ir.CondEQ, ir.CondNE, ir.CondLT, ir.CondLE, ir.CondGT, ir.CondGE} {
		cond := cond
		t.Run(cond.String(), func(t *testing.T) {
			_, err := runBoth(t, func() *ir.Program {
				p := ir.NewProgram(classfile.NewUniverse())
				b := ir.NewBuilder(p, nil, "main", value.KindInt)
				x := b.ConstInt(3)
				y := b.ConstInt(5)
				acc := b.ConstInt(0)
				taken := b.NewLabel()
				after := b.NewLabel()
				b.Br(value.KindInt, cond, x, y, taken)
				b.IncInt(acc, 1)
				b.Goto(after)
				b.Bind(taken)
				b.IncInt(acc, 2)
				b.Bind(after)
				// Same comparison with equal operands flips EQ/NE/LE/GE.
				end := b.NewLabel()
				b.Br(value.KindInt, cond, x, x, end)
				b.IncInt(acc, 4)
				b.Bind(end)
				b.Return(acc)
				p.Entry = b.Finish()
				return p
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUnaryErrorPaths(t *testing.T) {
	for name, emit := range map[string]func(b *ir.Builder, null ir.Reg){
		"neg-of-ref-kind": func(b *ir.Builder, null ir.Reg) { b.Neg(value.KindRef, null) },
		"conv-of-ref":     func(b *ir.Builder, null ir.Reg) { b.Conv(value.KindLong, null) },
	} {
		emit := emit
		t.Run(name, func(t *testing.T) {
			_, err := runBoth(t, func() *ir.Program {
				p := ir.NewProgram(classfile.NewUniverse())
				b := ir.NewBuilder(p, nil, "main", value.KindInt)
				null := b.ConstNull()
				emit(b, null)
				zero := b.ConstInt(0)
				b.Return(zero)
				p.Entry = b.Finish()
				return p
			}, nil)
			if err == nil {
				t.Fatal("kind-mismatched unary op did not trap")
			}
		})
	}
}

func TestNopDispatch(t *testing.T) {
	_, err := runBoth(t, patchedProg(func(m *ir.Method, at int, s []ir.Reg) {
		m.Code[at] = ir.Instr{Op: ir.OpNop}
	}), nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestOutOfMemory exhausts the heap with live objects so AllocObject
// itself fails (GC finds everything reachable), covering the allocation
// trap path with the accumulator flush/reload around it.
func TestOutOfMemory(t *testing.T) {
	_, err := runBoth(t, func() *ir.Program {
		u := classfile.NewUniverse()
		cls := u.MustDefineClass("Fat", nil,
			classfile.FieldSpec{Name: "a", Kind: value.KindLong},
			classfile.FieldSpec{Name: "b", Kind: value.KindLong},
			classfile.FieldSpec{Name: "c", Kind: value.KindLong},
			classfile.FieldSpec{Name: "d", Kind: value.KindLong},
		)
		p := ir.NewProgram(u)
		b := ir.NewBuilder(p, nil, "main", value.KindInt)
		n := b.ConstInt(1 << 16)
		arr := b.NewArray(value.KindRef, n) // keeps every object live
		i := b.ConstInt(0)
		cond := b.NewLabel()
		body := b.NewLabel()
		b.Goto(cond)
		b.Bind(body)
		obj := b.New(cls)
		b.ArrayStore(value.KindRef, arr, i, obj)
		b.IncInt(i, 1)
		b.Bind(cond)
		b.Br(value.KindInt, ir.CondLT, i, n, body)
		b.Return(i)
		p.Entry = b.Finish()
		return p
	}, nil)
	if err == nil {
		t.Fatal("live-heap churn did not exhaust the 1 MiB heap")
	}
}

// TestRecordedPrefetches runs JIT-shaped prefetch and speculative-load
// instructions with a Recorder installed, so the NotePrefetch attribution
// paths execute in both tiers.
func TestRecordedPrefetches(t *testing.T) {
	build := patchedProg(func(m *ir.Method, at int, s []ir.Reg) {
		m.Code[at] = ir.Instr{Op: ir.OpSpecLoad, Dst: s[3],
			Addr: ir.AddrExpr{Base: s[0], Index: ir.NoReg}, Site: 1}
	})
	run := func(threaded bool) (value.Value, interp.Stats, error) {
		p := build()
		var disp interp.Dispatcher = interpDisp{}
		if threaded {
			disp = newThreadedDisp(p.Universe, nil)
		}
		e := newEngine(p, disp)
		e.Rec = &siteCounter{}
		r, err := e.Run(p.Entry, nil)
		e.FlushSites()
		return r, e.S, err
	}
	ri, si, erri := run(false)
	rc, sc, errc := run(true)
	if erri != nil || errc != nil {
		t.Fatal(erri, errc)
	}
	if ri != rc {
		t.Errorf("result diverged: %v vs %v", ri, rc)
	}
	diffStats(t, si, sc)
}
