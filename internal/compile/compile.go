// Package compile is the VM's compiled execution tier: it translates a
// JIT-compiled IR method into a pre-decoded micro-op stream executed by a
// two-level threaded dispatch.
//
// Where the interpreter re-decodes every ir.Instr on every execution —
// operand registers, field offsets, branch targets, static-slot map
// lookups — Build resolves all of that once, at the same
// compile-at-invocation point where object inspection runs (the paper's
// Sec. 3 hook). Every micro-op carries a dense micro-kind specialized for
// one (op, kind, cond) shape; the runner keeps pc, the cycle counter, and
// the retired-instruction counter in locals and dispatches hot kinds
// through a single jump-table switch over a 56-byte hot op record — the
// interpreter walks 136-byte ir.Instr records and re-derives operands
// from them on every visit. The cold tail — calls, allocation, prefetch
// address evaluation, the generic arithmetic fallbacks — is a chain of
// per-op Go functions (the classic threaded-code form) over a parallel
// side table, entered from the same loop. Maximal runs of trap-free
// register-only micro-ops are additionally fused into a single dispatch,
// and array addressing holds a one-entry header memo (length + element
// size) that pure heap reads make unobservable.
//
// Semantics are pinned to the interpreter bit for bit: every memory
// access goes through the same MemModel calls with the same load-site
// pcs and the same `now` cycle counts, prefetch instructions spliced in
// by the JIT execute exactly as the interpreter sees them, traps carry
// the same causes at the same pcs, and cycle/instruction accounting is
// identical (the threaded tier only runs JIT-compiled methods, so every
// retired micro-op is a compiled instruction). The oracle differ and the
// golden decision traces hold this equivalence down to the byte.
//
// Artifacts are arena-style: one Func owns one []uop arena and one
// parallel cold-field arena, each sized 1:1 with the IR, shared immutably
// across pooled VMs, and the per-engine thread state is parked in
// Engine.ExecScratch so the steady-state loop allocates nothing.
package compile

import (
	"fmt"

	"strider/internal/classfile"
	"strider/internal/interp"
	"strider/internal/ir"
	"strider/internal/value"
)

// Control codes returned in place of a next pc.
const (
	ctrlReturn = -1 // frame done; thread.ret holds the value
	ctrlCall   = -2 // callee frame pushed; yield to the engine's Run loop
	ctrlTrap   = -3 // trap; thread.err holds the cause, f.PC the pc
)

// opFn executes one cold micro-op and returns the next pc or a control
// code.
type opFn func(t *thread, u *uop, d *uopCold) int

// Micro-kinds. mkSlow marks the cold tail dispatched through the side
// table's fn; every other kind is handled inline by the Step switch. The
// fusible kinds (trap-free, memory-free, straight-line) come first so
// fuse() can test them with one comparison.
const (
	mkSlow uint8 = iota

	// Fusible kinds — keep contiguous, bounded by mkSink.
	mkNop
	mkConst
	mkMove
	mkAddInt
	mkSubInt
	mkMulInt
	mkSink

	mkFused

	mkGoto
	mkBrEQInt
	mkBrNEInt
	mkBrLTInt
	mkBrLEInt
	mkBrGTInt
	mkBrGEInt
	mkRetVoid
	mkRetVal

	mkGetField4
	mkGetField8
	mkPutField
	mkGetStatic
	mkPutStatic
	mkArrayLoad4
	mkArrayLoad8
	mkArrayStore
	mkArrayLen
)

// fusible reports whether mk belongs to the fused run vocabulary.
func fusible(mk uint8) bool { return mk >= mkNop && mk <= mkSink }

// uop is one pre-decoded micro-op: the hot record the dispatch loop
// walks. It is laid out to fit a cache line (56 bytes); operands the hot
// cases never touch live in the parallel uopCold table. Which fields are
// live depends on mk; pc is always the op's own instruction index (trap
// attribution and load-site identity), next the fall-through successor —
// except for a fusion head, where next is the first pc past the run and
// n the run length. fk preserves a fusion head's own kind so a branch
// into the middle of a run still executes each sub-op exactly.
type uop struct {
	val value.Value // pre-materialized OpConst payload

	next   int32
	target int32
	pc     int32
	sidx   int32 // pre-resolved static slot index

	off  uint32 // field offset
	size uint32 // memory access size
	n    int32  // fusion head: run length

	dst, a, b, c ir.Reg

	mk   uint8
	fk   uint8
	kind value.Kind
}

// uopCold carries the operands only the cold function chain needs:
// call/allocation targets, prefetch address expressions, and the shapes
// of the generic fallbacks.
type uopCold struct {
	fn      opFn
	class   *classfile.Class
	callee  *ir.Method
	name    string
	args    []ir.Reg
	addr    ir.AddrExpr
	site    int
	op      ir.Op
	cond    ir.Cond
	guarded bool
}

// Func is the compiled artifact for one method. It is immutable after
// Build and safe to share across engines and pooled VMs.
type Func struct {
	m        *ir.Method
	ops      []uop
	cold     []uopCold
	siteBase uint64
}

var _ interp.ThreadedCode = (*Func)(nil)

// thread is the per-engine execution state of the compiled tier. One
// lives in Engine.ExecScratch for the engine's lifetime; bind re-points
// it at the current frame, so steady-state Step calls allocate nothing.
//
// cycles/instrs mirror Engine.S.Cycles/S.Instructions in locals; cyc0/ni0
// are the values at the last flush, so flushAcc can add the delta to the
// compiled-tier counters (all threaded code is JIT-compiled code).
type thread struct {
	e    *interp.Engine
	f    *interp.Frame
	regs []value.Value
	ops  []uop
	m    *ir.Method

	siteBase uint64
	perInstr uint64
	max      uint64
	rec      bool

	cycles, instrs uint64
	cyc0, ni0      uint64

	// One-entry array-header memo: length and element size of the last
	// array addressed. Heap header reads are pure, so the memo is
	// unobservable; it is invalidated by load() at every point the heap
	// can move or recycle objects (allocation, GC, frame re-entry).
	memoRef  uint32
	memoLen  uint32
	memoElem uint32

	ret value.Value
	err error
}

// scratch returns the engine's thread, creating it on first use.
func scratch(e *interp.Engine) *thread {
	if t, ok := e.ExecScratch.(*thread); ok {
		return t
	}
	t := &thread{}
	e.ExecScratch = t
	return t
}

// bind points the thread at one activation of c.
func (t *thread) bind(e *interp.Engine, f *interp.Frame, c *Func) {
	t.e = e
	t.f = f
	t.regs = f.Regs
	t.ops = c.ops
	t.m = c.m
	t.siteBase = c.siteBase
	// Threaded code only exists for JIT-compiled methods, so the
	// per-instruction cost never includes the interpretation penalty.
	t.perInstr = e.Machine.IssueCycles
	t.max = e.MaxInstructions
	t.rec = e.Rec != nil
	t.load()
}

// load refreshes the local accumulators from the engine — required after
// any engine call that mutates S.Cycles directly (allocation touch
// traffic, GC cost), which by design is not compiled-tier time. Those are
// also exactly the points where the heap can move or recycle objects, so
// the array memo dies here too.
func (t *thread) load() {
	t.cycles = t.e.S.Cycles
	t.instrs = t.e.S.Instructions
	t.cyc0, t.ni0 = t.cycles, t.instrs
	t.memoRef = 0
}

// flushAcc publishes the local accumulators to the engine, crediting the
// delta since the last flush to the compiled-tier counters.
func (t *thread) flushAcc() {
	s := &t.e.S
	s.Cycles = t.cycles
	s.Instructions = t.instrs
	s.CompiledCycles += t.cycles - t.cyc0
	s.CompiledInstructions += t.instrs - t.ni0
	t.cyc0, t.ni0 = t.cycles, t.instrs
}

// trap records a trap at u's pc. Dispatch sites use its result as the
// next pc.
func (t *thread) trap(u *uop, err error) int {
	t.f.PC = int(u.pc)
	t.err = err
	return ctrlTrap
}

// elemAddr resolves an array element address with the interpreter's exact
// checks, serving the header (length + element size) from the one-entry
// memo when the same array is addressed back to back.
func (t *thread) elemAddr(arr, idx value.Value) (uint32, error) {
	if !arr.IsRef() || idx.K != value.KindInt {
		return 0, interp.ErrBadValue
	}
	if arr.IsNull() {
		return 0, interp.ErrNullDeref
	}
	a := arr.Ref()
	var n, esz uint32
	if a == t.memoRef {
		n, esz = t.memoLen, t.memoElem
	} else {
		h := t.e.Heap
		n = h.ArrayLen(a)
		esz = h.ClassOf(a).ElemSize
		t.memoRef, t.memoLen, t.memoElem = a, n, esz
	}
	i := idx.Int()
	if i < 0 || uint32(i) >= n {
		return 0, fmt.Errorf("%w: %d of %d", interp.ErrBounds, i, n)
	}
	return a + classfile.HeaderBytes + uint32(i)*esz, nil
}

// Step implements interp.ThreadedCode: execute the frame from f.PC until
// it returns, calls, or traps, with the interpreter step's exact
// contract.
//
// The loop is the compiled tier's entire point: pc, the cycle counter,
// and the retired-instruction counter live in registers, the budget check
// is one compare, and each hot micro-kind is a jump-table case over
// pre-decoded operands. The engine's accumulators are only touched at
// yield points (flushAcc) and around engine calls that charge cycles
// themselves.
//
// Calls between compiled methods execute nested inside the same loop:
// the engine's frame stack stays authoritative (PushCall/PopFrame keep
// GC roots and trap attribution exact), but the Run-loop round trip —
// and its per-frame bind/flush — is skipped. Only a call into an
// interpreted (not yet JIT-compiled) method yields to Run.
func (c *Func) Step(e *interp.Engine, f *interp.Frame) (value.Value, bool, error) {
	t := scratch(e)
	t.bind(e, f, c)
	fc := c
	depth := 0
	var (
		ops    = c.ops
		regs   = f.Regs
		pc     = f.PC
		cycles = t.cycles
		instrs = t.instrs
		max    = t.max
		per    = t.perInstr
		// fm != nil routes the memory micro-ops through the inline-probe
		// hit lane with a devirtualized fallback, exactly like the
		// interpreter's step; nil is the fully general interface path.
		fm = e.FastMem()
	)
	for pc >= 0 {
		u := &ops[pc]
		if instrs >= max {
			t.cycles, t.instrs = cycles, instrs
			pc = t.trap(u, interp.ErrBudget)
			break
		}
		switch u.mk {
		case mkNop:
			cycles += per
			instrs++
			pc = int(u.next)
		case mkConst:
			regs[u.dst] = u.val
			cycles += per
			instrs++
			pc = int(u.next)
		case mkMove:
			regs[u.dst] = regs[u.a]
			cycles += per
			instrs++
			pc = int(u.next)
		case mkAddInt:
			regs[u.dst] = value.Int(regs[u.a].Int() + regs[u.b].Int())
			cycles += per
			instrs++
			pc = int(u.next)
		case mkSubInt:
			regs[u.dst] = value.Int(regs[u.a].Int() - regs[u.b].Int())
			cycles += per
			instrs++
			pc = int(u.next)
		case mkMulInt:
			regs[u.dst] = value.Int(regs[u.a].Int() * regs[u.b].Int())
			cycles += per
			instrs++
			pc = int(u.next)
		case mkSink:
			e.Sink(regs[u.a])
			cycles += per
			instrs++
			pc = int(u.next)

		case mkFused:
			if instrs+uint64(u.n) > max {
				t.cycles, t.instrs = cycles, instrs
				pc = fusedSlow(t, u)
				cycles, instrs = t.cycles, t.instrs
				break
			}
			for i := u.pc; i < u.next; i++ {
				v := &ops[i]
				switch v.fk {
				case mkConst:
					regs[v.dst] = v.val
				case mkMove:
					regs[v.dst] = regs[v.a]
				case mkAddInt:
					regs[v.dst] = value.Int(regs[v.a].Int() + regs[v.b].Int())
				case mkSubInt:
					regs[v.dst] = value.Int(regs[v.a].Int() - regs[v.b].Int())
				case mkMulInt:
					regs[v.dst] = value.Int(regs[v.a].Int() * regs[v.b].Int())
				case mkSink:
					e.Sink(regs[v.a])
				}
			}
			cycles += uint64(u.n) * per
			instrs += uint64(u.n)
			pc = int(u.next)

		case mkGoto:
			cycles += per
			instrs++
			pc = int(u.target)
		case mkBrEQInt:
			cycles += per
			instrs++
			if regs[u.a].Int() == regs[u.b].Int() {
				pc = int(u.target)
			} else {
				pc = int(u.next)
			}
		case mkBrNEInt:
			cycles += per
			instrs++
			if regs[u.a].Int() != regs[u.b].Int() {
				pc = int(u.target)
			} else {
				pc = int(u.next)
			}
		case mkBrLTInt:
			cycles += per
			instrs++
			if regs[u.a].Int() < regs[u.b].Int() {
				pc = int(u.target)
			} else {
				pc = int(u.next)
			}
		case mkBrLEInt:
			cycles += per
			instrs++
			if regs[u.a].Int() <= regs[u.b].Int() {
				pc = int(u.target)
			} else {
				pc = int(u.next)
			}
		case mkBrGTInt:
			cycles += per
			instrs++
			if regs[u.a].Int() > regs[u.b].Int() {
				pc = int(u.target)
			} else {
				pc = int(u.next)
			}
		case mkBrGEInt:
			cycles += per
			instrs++
			if regs[u.a].Int() >= regs[u.b].Int() {
				pc = int(u.target)
			} else {
				pc = int(u.next)
			}

		case mkRetVoid:
			cycles += per
			instrs++
			if depth > 0 {
				e.PopFrame(value.Value{})
				f = e.TopFrame()
				fc = f.Threaded().(*Func)
				ops = fc.ops
				regs = f.Regs
				t.f, t.regs, t.m, t.ops, t.siteBase = f, f.Regs, fc.m, fc.ops, fc.siteBase
				pc = f.PC
				depth--
				break
			}
			f.PC = int(u.pc)
			t.ret = value.Value{}
			pc = ctrlReturn
		case mkRetVal:
			cycles += per
			instrs++
			if depth > 0 {
				e.PopFrame(regs[u.a])
				f = e.TopFrame()
				fc = f.Threaded().(*Func)
				ops = fc.ops
				regs = f.Regs
				t.f, t.regs, t.m, t.ops, t.siteBase = f, f.Regs, fc.m, fc.ops, fc.siteBase
				pc = f.PC
				depth--
				break
			}
			f.PC = int(u.pc)
			t.ret = regs[u.a]
			pc = ctrlReturn

		case mkGetField4:
			obj := regs[u.a]
			if !obj.IsRef() {
				t.cycles, t.instrs = cycles, instrs
				pc = t.trap(u, interp.ErrBadValue)
				break
			}
			if obj.IsNull() {
				t.cycles, t.instrs = cycles, instrs
				pc = t.trap(u, interp.ErrNullDeref)
				break
			}
			addr := obj.Ref() + u.off
			var stall uint64
			if fm != nil {
				var hit bool
				if stall, hit = fm.LoadHit(addr, cycles); !hit {
					stall = fm.LoadAt(addr, u.size, cycles, t.siteBase|uint64(u.pc))
				}
			} else {
				stall = e.Mem.LoadAt(addr, u.size, cycles, t.siteBase|uint64(u.pc))
			}
			regs[u.dst] = value.Value{K: u.kind, B: uint64(e.Heap.Load4(addr))}
			if t.rec && stall != 0 {
				e.NoteLoad(t.m, int(u.pc), stall)
			}
			cycles += per + stall
			instrs++
			pc = int(u.next)
		case mkGetField8:
			obj := regs[u.a]
			if !obj.IsRef() {
				t.cycles, t.instrs = cycles, instrs
				pc = t.trap(u, interp.ErrBadValue)
				break
			}
			if obj.IsNull() {
				t.cycles, t.instrs = cycles, instrs
				pc = t.trap(u, interp.ErrNullDeref)
				break
			}
			addr := obj.Ref() + u.off
			var stall uint64
			if fm != nil {
				var hit bool
				if stall, hit = fm.LoadHit(addr, cycles); !hit {
					stall = fm.LoadAt(addr, u.size, cycles, t.siteBase|uint64(u.pc))
				}
			} else {
				stall = e.Mem.LoadAt(addr, u.size, cycles, t.siteBase|uint64(u.pc))
			}
			regs[u.dst] = value.Value{K: u.kind, B: e.Heap.Load8(addr)}
			if t.rec && stall != 0 {
				e.NoteLoad(t.m, int(u.pc), stall)
			}
			cycles += per + stall
			instrs++
			pc = int(u.next)
		case mkPutField:
			obj := regs[u.a]
			if !obj.IsRef() {
				t.cycles, t.instrs = cycles, instrs
				pc = t.trap(u, interp.ErrBadValue)
				break
			}
			if obj.IsNull() {
				t.cycles, t.instrs = cycles, instrs
				pc = t.trap(u, interp.ErrNullDeref)
				break
			}
			addr := obj.Ref() + u.off
			var stall uint64
			if fm != nil {
				var hit bool
				if stall, hit = fm.StoreHit(addr, cycles); !hit {
					stall = fm.Store(addr, u.size, cycles)
				}
			} else {
				stall = e.Mem.Store(addr, u.size, cycles)
			}
			storeHeap(t, addr, regs[u.b])
			cycles += per + stall
			instrs++
			pc = int(u.next)

		case mkGetStatic:
			regs[u.dst] = e.Prog.Universe.StaticAt(int(u.sidx))
			cycles += per
			instrs++
			pc = int(u.next)
		case mkPutStatic:
			e.Prog.Universe.SetStaticAt(int(u.sidx), regs[u.a])
			cycles += per
			instrs++
			pc = int(u.next)

		case mkArrayLoad4:
			addr, err := t.elemAddr(regs[u.a], regs[u.b])
			if err != nil {
				t.cycles, t.instrs = cycles, instrs
				pc = t.trap(u, err)
				break
			}
			var stall uint64
			if fm != nil {
				var hit bool
				if stall, hit = fm.LoadHit(addr, cycles); !hit {
					stall = fm.LoadAt(addr, u.size, cycles, t.siteBase|uint64(u.pc))
				}
			} else {
				stall = e.Mem.LoadAt(addr, u.size, cycles, t.siteBase|uint64(u.pc))
			}
			regs[u.dst] = value.Value{K: u.kind, B: uint64(e.Heap.Load4(addr))}
			if t.rec && stall != 0 {
				e.NoteLoad(t.m, int(u.pc), stall)
			}
			cycles += per + stall
			instrs++
			pc = int(u.next)
		case mkArrayLoad8:
			addr, err := t.elemAddr(regs[u.a], regs[u.b])
			if err != nil {
				t.cycles, t.instrs = cycles, instrs
				pc = t.trap(u, err)
				break
			}
			var stall uint64
			if fm != nil {
				var hit bool
				if stall, hit = fm.LoadHit(addr, cycles); !hit {
					stall = fm.LoadAt(addr, u.size, cycles, t.siteBase|uint64(u.pc))
				}
			} else {
				stall = e.Mem.LoadAt(addr, u.size, cycles, t.siteBase|uint64(u.pc))
			}
			regs[u.dst] = value.Value{K: u.kind, B: e.Heap.Load8(addr)}
			if t.rec && stall != 0 {
				e.NoteLoad(t.m, int(u.pc), stall)
			}
			cycles += per + stall
			instrs++
			pc = int(u.next)
		case mkArrayStore:
			addr, err := t.elemAddr(regs[u.a], regs[u.b])
			if err != nil {
				t.cycles, t.instrs = cycles, instrs
				pc = t.trap(u, err)
				break
			}
			var stall uint64
			if fm != nil {
				var hit bool
				if stall, hit = fm.StoreHit(addr, cycles); !hit {
					stall = fm.Store(addr, u.size, cycles)
				}
			} else {
				stall = e.Mem.Store(addr, u.size, cycles)
			}
			storeHeap(t, addr, regs[u.c])
			cycles += per + stall
			instrs++
			pc = int(u.next)
		case mkArrayLen:
			arr := regs[u.a]
			if !arr.IsRef() {
				t.cycles, t.instrs = cycles, instrs
				pc = t.trap(u, interp.ErrBadValue)
				break
			}
			if arr.IsNull() {
				t.cycles, t.instrs = cycles, instrs
				pc = t.trap(u, interp.ErrNullDeref)
				break
			}
			addr := arr.Ref() + classfile.AuxOffset
			var stall uint64
			if fm != nil {
				var hit bool
				if stall, hit = fm.LoadHit(addr, cycles); !hit {
					stall = fm.LoadAt(addr, 4, cycles, t.siteBase|uint64(u.pc))
				}
			} else {
				stall = e.Mem.LoadAt(addr, 4, cycles, t.siteBase|uint64(u.pc))
			}
			regs[u.dst] = value.Int(int32(e.Heap.Load4(addr)))
			if t.rec && stall != 0 {
				e.NoteLoad(t.m, int(u.pc), stall)
			}
			cycles += per + stall
			instrs++
			pc = int(u.next)

		default: // mkSlow: the cold function chain.
			d := &fc.cold[pc]
			t.cycles, t.instrs = cycles, instrs
			npc := d.fn(t, u, d)
			cycles, instrs = t.cycles, t.instrs
			if npc == ctrlCall {
				nf := e.TopFrame()
				if nfc, ok := nf.Threaded().(*Func); ok {
					// Compiled callee: keep executing in this loop.
					f = nf
					fc = nfc
					ops = fc.ops
					regs = f.Regs
					t.f, t.regs, t.m, t.ops, t.siteBase = f, f.Regs, fc.m, fc.ops, fc.siteBase
					pc = f.PC
					depth++
					break
				}
			}
			pc = npc
		}
	}
	t.cycles, t.instrs = cycles, instrs
	t.flushAcc()
	t.f = nil
	t.regs = nil
	switch pc {
	case ctrlReturn:
		r := t.ret
		t.ret = value.Value{}
		return r, true, nil
	case ctrlCall:
		return value.Value{}, false, nil
	}
	err := t.err
	t.err = nil
	return value.Value{}, false, err
}

// Build translates a JIT-compiled method body into its threaded form.
// The hot []uop arena and its parallel cold table are the only
// allocations proportional to code size; operand decoding (field
// offsets, access sizes, static slots, constant values, branch shapes)
// happens here, once.
func Build(m *ir.Method, code []ir.Instr, u *classfile.Universe) *Func {
	c := &Func{
		m:        m,
		ops:      make([]uop, len(code)),
		cold:     make([]uopCold, len(code)),
		siteBase: uint64(m.Index()+1) << 16,
	}
	for i := range code {
		decode(&c.ops[i], &c.cold[i], &code[i], i, u)
	}
	fuse(c.ops)
	return c
}

// decode pre-resolves one instruction into ops[i] and cold[i].
func decode(o *uop, d *uopCold, in *ir.Instr, pc int, u *classfile.Universe) {
	o.pc = int32(pc)
	o.next = int32(pc + 1)
	o.kind = in.Kind
	o.dst, o.a, o.b, o.c = in.Dst, in.A, in.B, in.C
	d.op = in.Op

	switch in.Op {
	case ir.OpNop:
		o.mk = mkNop
	case ir.OpConst:
		o.val = interp.ConstValue(in)
		o.mk = mkConst
	case ir.OpMove:
		o.mk = mkMove
	case ir.OpAdd:
		if in.Kind == value.KindInt {
			o.mk = mkAddInt
		} else {
			d.fn = opBinGeneric
		}
	case ir.OpSub:
		if in.Kind == value.KindInt {
			o.mk = mkSubInt
		} else {
			d.fn = opBinGeneric
		}
	case ir.OpMul:
		if in.Kind == value.KindInt {
			o.mk = mkMulInt
		} else {
			d.fn = opBinGeneric
		}
	case ir.OpDiv, ir.OpRem, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpUshr:
		d.fn = opBinGeneric
	case ir.OpNeg:
		d.fn = opNeg
	case ir.OpConv:
		d.fn = opConv

	case ir.OpGoto:
		o.target = int32(in.Target)
		o.mk = mkGoto
	case ir.OpBr:
		o.target = int32(in.Target)
		d.cond = in.Cond
		if in.Kind == value.KindInt {
			switch in.Cond {
			case ir.CondEQ:
				o.mk = mkBrEQInt
			case ir.CondNE:
				o.mk = mkBrNEInt
			case ir.CondLT:
				o.mk = mkBrLTInt
			case ir.CondLE:
				o.mk = mkBrLEInt
			case ir.CondGT:
				o.mk = mkBrGTInt
			case ir.CondGE:
				o.mk = mkBrGEInt
			default:
				// The interpreter faults an unknown int condition at
				// run time, before charging; the shape is static, so
				// the trap can be pre-decoded.
				d.fn = opBadCond
			}
		} else {
			d.fn = opBrGeneric
		}
	case ir.OpReturn:
		if in.A == ir.NoReg {
			o.mk = mkRetVoid
		} else {
			o.mk = mkRetVal
		}

	case ir.OpGetField:
		o.off = in.Field.Offset
		o.kind = in.Field.Kind
		o.size = in.Field.Kind.Size()
		if wide(o.kind) {
			o.mk = mkGetField8
		} else {
			o.mk = mkGetField4
		}
	case ir.OpPutField:
		o.off = in.Field.Offset
		o.size = in.Field.Kind.Size()
		o.mk = mkPutField
	case ir.OpGetStatic:
		o.sidx = int32(u.StaticIndex(in.Field))
		o.mk = mkGetStatic
	case ir.OpPutStatic:
		o.sidx = int32(u.StaticIndex(in.Field))
		o.mk = mkPutStatic

	case ir.OpArrayLoad:
		o.size = in.Kind.Size()
		if wide(o.kind) {
			o.mk = mkArrayLoad8
		} else {
			o.mk = mkArrayLoad4
		}
	case ir.OpArrayStore:
		o.size = in.Kind.Size()
		o.mk = mkArrayStore
	case ir.OpArrayLen:
		o.mk = mkArrayLen

	case ir.OpNew:
		d.class = in.Class
		d.fn = opNew
	case ir.OpNewArray:
		d.fn = opNewArray

	case ir.OpCall:
		d.callee = in.Callee
		d.args = in.Args
		d.fn = opCall
	case ir.OpCallVirt:
		d.name = in.Name
		d.args = in.Args
		d.fn = opCallVirt

	case ir.OpSink:
		o.mk = mkSink

	case ir.OpPrefetch:
		d.addr = in.Addr
		d.guarded = in.Guarded
		d.site = int(in.Site)
		d.fn = opPrefetch
	case ir.OpSpecLoad:
		d.addr = in.Addr
		d.site = int(in.Site)
		d.fn = opSpecLoad

	default:
		d.fn = opBadOp
	}
	o.fk = o.mk
}

// wide reports whether k occupies 8 heap bytes.
func wide(k value.Kind) bool { return k == value.KindLong || k == value.KindDouble }

// fuse replaces the head of every maximal run (length ≥ 2) of fusible
// micro-ops with a single fused dispatch. Sub-ops keep their own
// micro-kinds (fk mirrors mk for them), so a branch into the middle of a
// run executes correctly — fusion needs no leader analysis to be exact.
func fuse(ops []uop) {
	for i := 0; i < len(ops); {
		if !fusible(ops[i].mk) {
			i++
			continue
		}
		j := i
		for j < len(ops) && fusible(ops[j].mk) {
			j++
		}
		if j-i >= 2 {
			h := &ops[i]
			h.n = int32(j - i)
			h.next = int32(j)
			h.mk = mkFused
		}
		i = j
	}
}

// ---------------------------------------------------------------------------
// Cold-tail op funcs — the function-threaded chain for calls, allocation,
// prefetching, and the generic arithmetic/branch fallbacks. Each executes
// with the thread accumulators synchronized by the dispatch loop (which
// has already performed the budget check), then retires at perInstr plus
// any memory stall — the interpreter's charge(), on locals.

func opBinGeneric(t *thread, u *uop, d *uopCold) int {
	v, err := ir.EvalBinary(d.op, u.kind, t.regs[u.a], t.regs[u.b])
	if err != nil {
		return t.trap(u, err)
	}
	t.regs[u.dst] = v
	t.cycles += t.perInstr
	t.instrs++
	return int(u.next)
}

func opNeg(t *thread, u *uop, d *uopCold) int {
	v, err := ir.EvalUnary(d.op, u.kind, t.regs[u.a])
	if err != nil {
		return t.trap(u, err)
	}
	t.regs[u.dst] = v
	t.cycles += t.perInstr
	t.instrs++
	return int(u.next)
}

func opConv(t *thread, u *uop, d *uopCold) int {
	v, err := ir.Convert(u.kind, t.regs[u.a])
	if err != nil {
		return t.trap(u, err)
	}
	t.regs[u.dst] = v
	t.cycles += t.perInstr
	t.instrs++
	return int(u.next)
}

func opBadCond(t *thread, u *uop, d *uopCold) int {
	return t.trap(u, ir.ErrBadOperand)
}

func opBrGeneric(t *thread, u *uop, d *uopCold) int {
	taken, err := ir.EvalCond(d.cond, u.kind, t.regs[u.a], t.regs[u.b])
	if err != nil {
		return t.trap(u, err)
	}
	t.cycles += t.perInstr
	t.instrs++
	if taken {
		return int(u.target)
	}
	return int(u.next)
}

// storeHeap widens by the stored value's kind, exactly like the
// interpreter — the field's declared kind only sizes the simulated
// memory access.
func storeHeap(t *thread, addr uint32, v value.Value) {
	if wide(v.K) {
		t.e.Heap.Store8(addr, v.B)
	} else {
		t.e.Heap.Store4(addr, v.Bits())
	}
}

func opNew(t *thread, u *uop, d *uopCold) int {
	// Allocation (and a GC it may trigger) charges S.Cycles directly —
	// publish the accumulators, then refresh them.
	t.flushAcc()
	addr, err := t.e.AllocObject(d.class)
	t.load()
	if err != nil {
		return t.trap(u, err)
	}
	t.regs[u.dst] = value.Ref(addr)
	t.cycles += t.perInstr
	t.instrs++
	return int(u.next)
}

func opNewArray(t *thread, u *uop, d *uopCold) int {
	n := t.regs[u.a]
	if n.K != value.KindInt {
		return t.trap(u, interp.ErrBadValue)
	}
	if n.Int() < 0 {
		return t.trap(u, interp.ErrNegativeSize)
	}
	t.flushAcc()
	addr, err := t.e.AllocArray(u.kind, uint32(n.Int()))
	t.load()
	if err != nil {
		return t.trap(u, err)
	}
	t.regs[u.dst] = value.Ref(addr)
	t.cycles += t.perInstr
	t.instrs++
	return int(u.next)
}

func opCall(t *thread, u *uop, d *uopCold) int {
	return callTo(t, u, d, d.callee)
}

func opCallVirt(t *thread, u *uop, d *uopCold) int {
	recv := t.regs[d.args[0]]
	if !recv.IsRef() {
		return t.trap(u, interp.ErrBadValue)
	}
	if recv.IsNull() {
		return t.trap(u, interp.ErrNullDeref)
	}
	c := t.e.Heap.ClassOf(recv.Ref())
	callee := t.e.Prog.LookupVirtual(c, d.name)
	if callee == nil {
		return t.trap(u, fmt.Errorf("%w: %s on %s", interp.ErrNoMethod, d.name, c.Name))
	}
	return callTo(t, u, d, callee)
}

// callTo retires the call (issue + overhead), stages the arguments,
// advances the frame past the call, and pushes the callee, yielding to
// the engine's Run loop. A failed push (stack overflow) traps with the
// call already charged and f.PC already advanced — the interpreter's
// exact attribution.
func callTo(t *thread, u *uop, d *uopCold, callee *ir.Method) int {
	t.cycles += t.perInstr + 4 // call overhead
	t.instrs++
	args := t.e.ArgBuf(len(d.args))
	regs := t.regs
	for i, r := range d.args {
		args[i] = regs[r]
	}
	t.f.PC = int(u.next)
	t.flushAcc()
	if err := t.e.PushCall(callee, args, u.dst); err != nil {
		t.err = err
		return ctrlTrap
	}
	t.load()
	return ctrlCall
}

func opPrefetch(t *thread, u *uop, d *uopCold) int {
	if addr, ok := t.e.PrefetchAddr(t.regs, d.addr); ok {
		out := t.e.Mem.Prefetch(addr, d.guarded, t.cycles)
		if t.rec {
			t.e.NotePrefetch(t.m, d.site, out)
		}
	}
	t.cycles += t.perInstr
	t.instrs++
	return int(u.next)
}

func opSpecLoad(t *thread, u *uop, d *uopCold) int {
	if addr, ok := t.e.PrefetchAddr(t.regs, d.addr); ok {
		out := t.e.Mem.Prefetch(addr, true, t.cycles)
		if t.rec {
			t.e.NotePrefetch(t.m, d.site, out)
		}
		t.regs[u.dst] = value.SpecRef(t.e.Heap.Load4(addr))
	} else {
		t.regs[u.dst] = value.SpecRef(0)
	}
	t.cycles += t.perInstr
	t.instrs++
	return int(u.next)
}

func opBadOp(t *thread, u *uop, d *uopCold) int {
	return t.trap(u, fmt.Errorf("interp: unimplemented op %s", d.op))
}

// fusedSlow is the fused run's budget-edge path: per-op budget checks so
// the trap lands on exactly the micro-op the interpreter would fault.
func fusedSlow(t *thread, u *uop) int {
	ops := t.ops
	regs := t.regs
	for i := u.pc; i < u.next; i++ {
		v := &ops[i]
		if t.instrs >= t.max {
			return t.trap(v, interp.ErrBudget)
		}
		switch v.fk {
		case mkConst:
			regs[v.dst] = v.val
		case mkMove:
			regs[v.dst] = regs[v.a]
		case mkAddInt:
			regs[v.dst] = value.Int(regs[v.a].Int() + regs[v.b].Int())
		case mkSubInt:
			regs[v.dst] = value.Int(regs[v.a].Int() - regs[v.b].Int())
		case mkMulInt:
			regs[v.dst] = value.Int(regs[v.a].Int() * regs[v.b].Int())
		case mkSink:
			t.e.Sink(regs[v.a])
		}
		t.cycles += t.perInstr
		t.instrs++
	}
	return int(u.next)
}
