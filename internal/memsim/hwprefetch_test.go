// Tests for the hardware-prefetcher zoo: the model registry, the
// page-geometry bugfixes, per-model behavioural properties (no fill ever
// crosses a page, no model except nextline reacts to pointer chasing),
// statistics conservation through CheckInvariants, and determinism of
// Reset across every model.
package memsim

import (
	"reflect"
	"strings"
	"testing"

	"strider/internal/arch"
)

// fakePort is a minimal HWPort for driving models directly: it records
// every fill and serves presence from the recorded set.
type fakePort struct {
	lineShift uint
	pageShift uint
	fills     []uint64
	present   map[uint64]bool
}

func newFakePort(lineShift, pageShift uint) *fakePort {
	return &fakePort{lineShift: lineShift, pageShift: pageShift, present: map[uint64]bool{}}
}

func (f *fakePort) ProbeL2(addr uint64) bool { return f.present[addr>>f.lineShift] }
func (f *fakePort) FillL2(addr uint64, now uint64) {
	f.fills = append(f.fills, addr)
	f.present[addr>>f.lineShift] = true
}
func (f *fakePort) LineShift() uint { return f.lineShift }
func (f *fakePort) PageShift() uint { return f.pageShift }

func TestHWModelRegistry(t *testing.T) {
	models := HWModels()
	if len(models) == 0 {
		t.Fatal("no models registered")
	}
	// The returned slice is a copy: mutating it must not corrupt the registry.
	models[0] = "corrupted"
	if HWModels()[0] == "corrupted" {
		t.Fatal("HWModels returns the registry's backing array")
	}
	for _, name := range HWModels() {
		if !ValidHWModel(name) {
			t.Errorf("registered model %q not valid", name)
		}
		p := newHWPrefetcher(name, newFakePort(7, 12))
		if p.Name() != name {
			t.Errorf("newHWPrefetcher(%q).Name() = %q", name, p.Name())
		}
	}
	if !ValidHWModel("") {
		t.Error("empty selector (the default) must be valid")
	}
	if ValidHWModel("sdram") {
		t.Error("unknown model accepted")
	}
	if got := newHWPrefetcher("", newFakePort(7, 12)).Name(); got != DefaultHWModel {
		t.Errorf("empty selector constructs %q, want %q", got, DefaultHWModel)
	}
	defer func() {
		if recover() == nil {
			t.Error("newHWPrefetcher with unknown name did not panic")
		}
	}()
	newHWPrefetcher("sdram", newFakePort(7, 12))
}

// smallPageMachine is a Pentium4 variant with 1 KiB pages — a geometry on
// which the old hardcoded `pageShift = 12` differs from the machine's
// actual page size.
func smallPageMachine() *arch.Machine {
	m := *arch.Pentium4()
	m.Name = "SmallPage"
	m.DTLB.PageSize = 1024
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return &m
}

// TestHWRespectsConfiguredPageSize is the regression test for the
// hardcoded-page-shift bug: on a 1 KiB-page machine, the stream detector
// trained on an ascending walk up to the last line of page 0 must NOT
// prefetch into page 1 (the old code derived the page from a 4 KiB shift,
// so both sides of the 1 KiB boundary looked like one page and the
// prefetch crossed it).
func TestHWRespectsConfiguredPageSize(t *testing.T) {
	mem := New(smallPageMachine())
	if got := mem.PageShift(); got != 10 {
		t.Fatalf("PageShift() = %d, want 10 (1 KiB pages)", got)
	}
	// L2 lines are 128 B: page 0 is lines 0..7. Walk them in order; from
	// the third reference on, the detector prefetches line+1, and the
	// reference to line 7 predicts line 8 = address 1024 = page 1.
	now := uint64(0)
	for line := uint64(0); line < 8; line++ {
		now += mem.LoadAt(uint32(line*128), 4, now, 1)
	}
	if mem.ProbeL2(1024) {
		t.Fatal("hardware prefetch crossed the 1 KiB page boundary (line 8 present in L2)")
	}
	hw := mem.HWStats()
	if hw.Suppressed == 0 {
		t.Fatalf("page-crossing prediction was not suppressed: %+v", hw)
	}
	if hw.Issued == 0 {
		t.Fatalf("no in-page prefetches issued; the walk never trained: %+v", hw)
	}
}

// driveHW exercises a Memory with a stream the whole zoo reacts to:
// pc-attributed strided walks (several sites, several strides), a
// pointer-ish noise site, stores, and software prefetches.
func driveHW(mem *Memory) {
	now := uint64(0)
	seed := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < 12_000; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		switch i % 6 {
		case 0: // dense ascending walk, site 1
			now += mem.LoadAt(uint32(64*(i%6000)), 4, now, 1)
		case 1: // stride-2-lines walk, site 2
			now += mem.LoadAt(uint32(1<<22+256*(i%4000)), 4, now, 2)
		case 2: // alternating compound stride (+1, +3 lines), site 3
			step := uint32(i % 4000)
			now += mem.LoadAt(uint32(1<<23)+128*(step+2*(step/2)), 4, now, 3)
		case 3: // pointer-ish noise, site 4
			now += mem.LoadAt(uint32(16+(seed>>33)%(1<<22)), 4, now, 4)
		case 4:
			now += mem.Store(uint32(seed>>40), 4, now)
		case 5:
			mem.Prefetch(uint32(64*(i%6000))^0x40, i%2 == 0, now)
		}
		now++
	}
}

// machineWithModel clones a machine with the named hardware prefetcher.
func machineWithModel(base *arch.Machine, model string) *arch.Machine {
	m := *base
	m.HWPrefetcher = model
	return &m
}

// TestHWStatsConservation drives every model through the full Memory on
// both machines and asserts the counter algebra (including the
// per-prefetcher relations) holds.
func TestHWStatsConservation(t *testing.T) {
	for _, base := range arch.Machines() {
		for _, model := range HWModels() {
			base, model := base, model
			t.Run(base.Name+"/"+model, func(t *testing.T) {
				mem := New(machineWithModel(base, model))
				mem.EnableSelfCheck()
				driveHW(mem)
				if v := append(mem.Violations(), mem.CheckInvariants()...); len(v) > 0 {
					t.Fatalf("violations: %v", v)
				}
				hw := mem.HWStats()
				if hw.Trains == 0 {
					t.Fatal("model observed no references")
				}
				if mem.C.HWPrefetches != hw.Issued {
					t.Fatalf("HWPrefetches %d != issued %d", mem.C.HWPrefetches, hw.Issued)
				}
			})
		}
	}
}

// TestHWNeverCrossesPage drives each model directly through a fake port
// and asserts that every fill lands in the page of the reference that
// triggered it — the defining constraint of a hardware prefetcher.
func TestHWNeverCrossesPage(t *testing.T) {
	for _, model := range HWModels() {
		model := model
		t.Run(model, func(t *testing.T) {
			port := newFakePort(7, 12)
			p := newHWPrefetcher(model, port)
			seed := uint64(12345)
			now := uint64(0)
			for i := 0; i < 8_000; i++ {
				seed = seed*6364136223846793005 + 1442695040888963407
				var addr uint64
				switch i % 3 {
				case 0: // ascending dense stream
					addr = uint64(128 * i)
				case 1: // strided stream near page ends
					addr = uint64(1<<30) + uint64(i/3)*4096 + 3968
				case 2: // random
					addr = seed >> 20
				}
				pc := uint64(1 + i%7)
				before := len(port.fills)
				p.Train(addr, pc, now)
				for _, f := range port.fills[before:] {
					if f>>12 != addr>>12 {
						t.Fatalf("train(0x%x) filled 0x%x in a different page", addr, f)
					}
				}
				now += 4
			}
		})
	}
}

// TestHWIgnoresPointerChasing feeds every model an address walk whose
// line deltas are all distinct (a pointer-chase signature: no delta ever
// repeats). No model may predict anything from it — zero prefetches
// issued or attempted. nextline is exempt by design: its prediction is
// unconditional, which is exactly why it generates useless traffic on
// linked structures.
func TestHWIgnoresPointerChasing(t *testing.T) {
	for _, model := range HWModels() {
		if model == "nextline" {
			continue
		}
		model := model
		t.Run(model, func(t *testing.T) {
			port := newFakePort(7, 12)
			p := newHWPrefetcher(model, port)
			// line i^2: consecutive deltas 2i+1 are strictly increasing, so
			// no stride ever repeats and no period can establish.
			for i := uint64(1); i < 400; i++ {
				p.Train((i*i)<<7, 1, i)
			}
			s := p.Stats()
			if s.Issued+s.Suppressed != 0 {
				t.Fatalf("model predicted on a pointer chase: %+v (fills %v)", s, port.fills)
			}
		})
	}
}

// TestHWResetDeterminism runs the same reference stream twice around a
// Reset on the full Memory and requires identical hardware-prefetcher
// statistics — trained state, victim choices, and use ticks must all
// return to their initial values.
func TestHWResetDeterminism(t *testing.T) {
	for _, model := range HWModels() {
		model := model
		t.Run(model, func(t *testing.T) {
			mem := New(machineWithModel(arch.Pentium4(), model))
			driveHW(mem)
			first := mem.HWStats()
			firstC := mem.C
			mem.Reset()
			driveHW(mem)
			if got := mem.HWStats(); got != first {
				t.Fatalf("stats diverged after Reset: %+v vs %+v", got, first)
			}
			if mem.C != firstC {
				t.Fatalf("counters diverged after Reset: %+v vs %+v", mem.C, firstC)
			}
		})
	}
}

// TestResetBitIdentical is the regression test for the reset-state bug:
// for every model, a Memory that ran a workload and was Reset must be
// deeply equal to a freshly constructed one — including the prefetcher's
// internal use ticks, which the old code leaked across Reset.
func TestResetBitIdentical(t *testing.T) {
	for _, model := range HWModels() {
		model := model
		t.Run(model, func(t *testing.T) {
			m := machineWithModel(arch.Pentium4(), model)
			fresh := New(m)
			used := New(m)
			driveHW(used)
			used.Reset()
			if !reflect.DeepEqual(fresh, used) {
				t.Fatalf("reset Memory differs from fresh one\nfresh hw: %#v\nused hw:  %#v",
					fresh.hw, used.hw)
			}
		})
	}
}

// TestClearStatsKeepsTrainedState checks the warmup contract: clearing
// statistics between runs must not forget the trained tables (the
// ipstride entry stays Steady and issues on the very next reference).
func TestClearStatsKeepsTrainedState(t *testing.T) {
	port := newFakePort(7, 12)
	p := newHWPrefetcher("ipstride", port)
	// Establish a steady stride-1 stream on pc 1 within one page.
	for i := uint64(0); i < 4; i++ {
		p.Train(i<<7, 1, i)
	}
	if p.Stats().Issued == 0 {
		t.Fatal("stream never reached Steady")
	}
	p.ClearStats()
	if s := p.Stats(); s != (HWStats{}) {
		t.Fatalf("ClearStats left %+v", s)
	}
	p.Train(4<<7, 1, 10)
	if s := p.Stats(); s.Issued != 1 || s.Hits != 1 {
		t.Fatalf("trained state lost across ClearStats: %+v", s)
	}
}

// TestCheckInvariantsDetectsHWCorruption tampers with the per-prefetcher
// statistic relations and expects the matching violations.
func TestCheckInvariantsDetectsHWCorruption(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Memory)
		want string
	}{
		{"fills!=issued", func(m *Memory) { m.C.HWPrefetches = 5 }, "HWPrefetches"},
		{"hits>trains", func(m *Memory) { m.hw.(*streamPrefetcher).stats.Hits = 1 }, "hw hits"},
		{"allocs>trains", func(m *Memory) { m.hw.(*streamPrefetcher).stats.Allocs = 1 }, "hw allocs"},
		{"degree", func(m *Memory) {
			s := &m.hw.(*streamPrefetcher).stats
			s.Trains = 1
			s.Hits = 1
			s.Suppressed = maxHWDegree + 1
		}, "suppressed"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mem := New(arch.Pentium4())
			tc.mut(mem)
			v := mem.CheckInvariants()
			found := false
			for _, s := range v {
				if strings.Contains(s, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("violations %v do not mention %q", v, tc.want)
			}
		})
	}
}

// TestMultistrideCompoundPattern drives the compound-stride model with an
// alternating +1/+3-line pattern (period 2) that defeats single-stride
// detectors, and expects it to start replaying the pattern.
func TestMultistrideCompoundPattern(t *testing.T) {
	port := newFakePort(7, 20) // huge pages so the pattern never crosses one
	p := newHWPrefetcher("multistride", port)
	single := newHWPrefetcher("ipstride", newFakePort(7, 20))
	line := uint64(0)
	for i := 0; i < 32; i++ {
		if i%2 == 0 {
			line += 1
		} else {
			line += 3
		}
		p.Train(line<<7, 1, uint64(i))
		single.Train(line<<7, 1, uint64(i))
	}
	if s := p.Stats(); s.Issued == 0 {
		t.Fatalf("multistride never detected the period-2 pattern: %+v", s)
	}
	if s := single.Stats(); s.Issued != 0 {
		t.Fatalf("ipstride issued %d on an alternating stride (should stay unconfirmed)", s.Issued)
	}
}

// TestTrackerDequeEviction fills the tracker deque past capacity and
// checks LRU eviction: the oldest site is forgotten (re-training it
// allocates again), the freshest still predicts.
func TestTrackerDequeEviction(t *testing.T) {
	port := newFakePort(7, 20)
	p := newHWPrefetcher("tracker", port).(*trackerPrefetcher)
	// One more site than capacity; each trains once.
	for pc := uint64(1); pc <= trackerEntries+1; pc++ {
		p.Train(pc<<16, pc, pc)
	}
	if len(p.deque) != trackerEntries {
		t.Fatalf("deque length %d, want %d", len(p.deque), trackerEntries)
	}
	allocs := p.Stats().Allocs
	p.Train(1<<16, 1, 100) // site 1 was evicted: allocates a fresh tracker
	if got := p.Stats().Allocs; got != allocs+1 {
		t.Fatalf("evicted site did not re-allocate (allocs %d -> %d)", allocs, got)
	}
}
