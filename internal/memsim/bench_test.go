package memsim

import (
	"testing"

	"strider/internal/arch"
)

func BenchmarkLoadHit(b *testing.B) {
	m := New(arch.Pentium4())
	m.Load(0x10000, 4, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Load(0x10000, 4, uint64(i)+1000)
	}
}

// BenchmarkProbeHit drives the same steady single-line hit stream as
// BenchmarkLoadHit through the inline hit lane (probe + full-path
// fallback, the exact shape a specialized engine compiles) — the pair's
// ratio is the per-access saving the fast lane buys on an L1 memo hit.
func BenchmarkProbeHit(b *testing.B) {
	m := New(arch.Pentium4())
	m.Load(0x10000, 4, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.LoadHit(0x10000, uint64(i)+1000); !ok {
			m.LoadAt(0x10000, 4, uint64(i)+1000, 0)
		}
	}
}

func BenchmarkLoadStreamMiss(b *testing.B) {
	m := New(arch.AthlonMP())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Load(uint32(i)*64, 4, uint64(i)*100)
	}
}

func BenchmarkPrefetch(b *testing.B) {
	m := New(arch.AthlonMP())
	m.Load(0x10000, 4, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Prefetch(0x10000+uint32(i%60)*64, false, uint64(i)*100)
	}
}
