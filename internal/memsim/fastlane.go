// The inline-probe hit lane. LoadAt/Store are the per-access entry points
// of every simulation, and ~41% of engine dispatches reach them through
// the interp.MemModel interface (EXPERIMENTS.md, "ceiling math"). The two
// probes below split off the overwhelmingly common case — another access
// to the line and page the hierarchy touched last, already arrived — into
// call-free code small enough for the Go inliner (the budget is ~80
// nodes; one probe costs ~55, and a single nested call would add ~57), so
// a type-specialized engine pays a few loads and compares instead of an
// interface dispatch plus the full access path. Accesses the probe bails
// on — a different line (even an L1 MRU-hint hit), a line still in
// flight, a TLB memo miss — take the full LoadAt/Store, devirtualized to
// a direct call by the same type specialization.
//
// # Equivalence argument
//
// A probe either completes the access or bails with ok=false, and it is
// exact in both outcomes because it commits nothing until the access is
// decided:
//
//   - The presence checks are the caches' memo comparisons, and memo hits
//     are precisely the lookups that commit no state (no useTick advance,
//     no lastUse write, no mru write — see the memo elision argument in
//     memsim.go). A completed probe therefore performs the identical
//     (empty) LRU transition the full path would have performed.
//   - A bail touches neither counters nor LRU state, so the caller's
//     fallback LoadAt/Store runs against the exact state a direct call
//     would have seen.
//
// On the completed path the counter algebra is LoadAt/Store's verbatim:
// an arrived L1 hit behind a TLB hit charges exactly L1HitCycles on a
// load (extraWait is zero once readyAt <= now) and exactly zero on a
// store (the L1-hit store stall is extraWait/StoreFactor = 0), so
// CheckInvariants sees identical numbers whichever lane ran.
//
// # Hardware-prefetcher contract audit
//
// The hit lane never hides a reference from any HWPrefetcher model:
// Memory trains the unit only on demand L1 *misses* (LoadAt's miss path)
// and on software prefetches (Prefetch) — L1 hits are architecturally
// invisible to every model behind the interface, and stores never train
// at all. ipstride, tracker, and multistride key on the load-site pc, but
// they too observe only the miss stream, which the probes by construction
// never intercept. A hypothetical model that must observe L1 hits cannot
// be expressed through HWPrefetcher.Train today; if one is added it must
// implement perAccessTrainer so FastLaneOK excludes it — engines consult
// that once at wiring time (interp.Engine.SetMem), never per access.
package memsim

// LoadHit is the demand-load hit lane: a TLB-memo hit plus an L1-memo hit
// whose line has arrived completes the load for exactly L1HitCycles;
// anything else returns ok=false with no state touched, and the caller
// must issue the full LoadAt with the same arguments. pc is not a
// parameter because completed hits never train the hardware prefetcher
// (see the package comment's audit); the fallback call carries it.
func (mem *Memory) LoadHit(addr uint32, now uint64) (uint64, bool) {
	t := mem.tlb
	if t.memoLine == nil || t.memoTag != uint64(addr)>>t.lineShift {
		return 0, false
	}
	c := mem.l1
	l := c.memoLine
	if l == nil || c.memoTag != uint64(addr)>>c.lineShift || l.readyAt > now {
		return 0, false
	}
	mem.C.Loads++
	mem.C.LoadStallCycles += mem.l1Hit
	return mem.l1Hit, true
}

// StoreHit is the demand-store hit lane; same structure and bail
// conditions as LoadHit. A completed store behind a TLB hit and an
// arrived L1 line stalls zero cycles (extraWait/StoreFactor of nothing),
// so only Stores advances.
func (mem *Memory) StoreHit(addr uint32, now uint64) (uint64, bool) {
	t := mem.tlb
	if t.memoLine == nil || t.memoTag != uint64(addr)>>t.lineShift {
		return 0, false
	}
	c := mem.l1
	l := c.memoLine
	if l == nil || c.memoTag != uint64(addr)>>c.lineShift || l.readyAt > now {
		return 0, false
	}
	mem.C.Stores++
	return 0, true
}

// perAccessTrainer is the opt-out hook for a hardware-prefetcher model
// that needs to observe L1 hits (none of the zoo does — Train is defined
// on the miss/prefetch stream). Implementing it with TrainsOnHit() true
// makes FastLaneOK exclude the configuration from the hit lane.
type perAccessTrainer interface {
	TrainsOnHit() bool
}

// FastLaneOK reports whether this Memory's configuration permits the
// LoadHit/StoreHit bypass. Engines must consult it once when they pin the
// concrete backend (at reset/wiring), never per access, so lane choice is
// a configuration property rather than runtime behaviour.
func (mem *Memory) FastLaneOK() bool {
	if t, ok := mem.hw.(perAccessTrainer); ok && t.TrainsOnHit() {
		return false
	}
	return true
}
