// Package memsim simulates the memory hierarchy of the evaluation machines:
// an L1 data cache, a unified L2, and a data TLB, all set-associative with
// LRU replacement, plus the software-prefetch semantics the paper relies on
// (Sec. 3.3 and 4):
//
//   - a hardware prefetch instruction is cancelled when it would miss the
//     DTLB (so it cannot prime TLB entries);
//   - a prefetch fills the machine's target level — L2 on the Pentium 4,
//     L1 (and L2, inclusively) on the Athlon MP;
//   - a guarded load ("TLB priming") behaves like a non-blocking load: it
//     fills the DTLB and both cache levels;
//   - prefetched lines have an arrival time; a demand access that arrives
//     before the line does stalls for the remainder, so prefetching too
//     late helps only partially, and prefetching uselessly still costs
//     issue slots and queue capacity;
//   - the number of in-flight prefetches is bounded; overflow drops.
package memsim

import (
	"fmt"

	"strider/internal/arch"
	"strider/internal/telemetry"
)

// Counters accumulates the events the paper reports (MPIs are computed by
// the harness as misses / retired instructions).
type Counters struct {
	Loads  uint64
	Stores uint64

	L1LoadMisses   uint64
	L2LoadMisses   uint64
	DTLBLoadMisses uint64

	L1StoreMisses   uint64
	L2StoreMisses   uint64
	DTLBStoreMisses uint64

	HWPrefetches      uint64
	PrefetchesIssued  uint64
	PrefetchesGuarded uint64
	PrefetchesDropped uint64 // DTLB-cancelled or queue-full
	PrefetchesUseless uint64 // line already present at or above target level

	LoadStallCycles  uint64
	StoreStallCycles uint64
}

type line struct {
	tag     uint64
	valid   bool
	readyAt uint64
	lastUse uint64
}

// cache stores its lines in one flat slice — set s occupies the window
// lines[s*assoc : (s+1)*assoc] — so a set lookup is a scan of adjacent
// memory with no per-set slice header indirection. The set count is a
// power of two (Table 2 machines), so indexing is a mask.
type cache struct {
	lines     []line
	assoc     uint64
	lineShift uint
	setMask   uint64
	useTick   uint64
	// mru[s] is the most-recently-hit way of set s — a pure lookup
	// accelerator. Sequential access patterns hit the same line many times
	// in a row, so checking this way first skips the associative scan;
	// Table 2's fully-associative 64-entry Pentium 4 DTLB would otherwise
	// pay a 64-way scan on every access. The hint never changes which line
	// is returned, filled, or evicted.
	mru []uint32
	// memoTag/memoLine short-circuit a lookup of the same line as the most
	// recent lookup hit or fill, skipping set indexing, the tick increment,
	// and the lastUse write. Eliding those updates is unobservable: while
	// the memo is live no other line's lastUse changes (any other hit or
	// fill replaces the memo), and the memo line already holds the maximal
	// lastUse in its set, so every future eviction decision (min lastUse)
	// orders the set identically with or without the elided updates.
	// useTick values are never compared across resets, only relatively, so
	// the slower tick advance is equally unobservable. probe neither sets
	// nor consults the memo — it never updates LRU state, so a memo set by
	// it would wrongly stand in for a lookup's lastUse update.
	memoTag  uint64
	memoLine *line
	// idx maps tag → flat line index for high-associativity geometries
	// (the fully associative 64-entry Pentium 4 DTLB, the 16-way Athlon MP
	// L2), where the associative scan dominates lookup cost. It mirrors the
	// (valid, tag) pairs exactly — lines change only in fill and flush, and
	// both maintain it — so presence, LRU updates, and victim choice are
	// bit-identical to the scan; only the search is O(1). nil for low
	// associativity, where the adjacent-memory scan is already cheaper than
	// hashing.
	idx *tagMap
}

// tagMap is a fixed-capacity open-addressing hash table (linear probing,
// backward-shift deletion) from line tag to flat line index. A built-in map
// is not used because delete/insert churn makes it rehash — an allocation
// on the simulation hot path, which the bench suite gates at zero.
type tagMap struct {
	entries []tagEntry
	mask    uint64
}

type tagEntry struct {
	tag uint64
	val uint32
}

// tagEmpty marks a vacant slot; line indices never reach it (caches are
// far smaller than 4G lines).
const tagEmpty = ^uint32(0)

func newTagMap(lines int) *tagMap {
	cap := uint64(4)
	for cap < 2*uint64(lines) { // ≤50% load keeps probe chains short
		cap <<= 1
	}
	m := &tagMap{entries: make([]tagEntry, cap), mask: cap - 1}
	m.clear()
	return m
}

func (m *tagMap) clear() {
	for i := range m.entries {
		m.entries[i] = tagEntry{val: tagEmpty}
	}
}

func (m *tagMap) slot(tag uint64) uint64 {
	// Fibonacci hashing; line tags are dense low-entropy integers.
	return (tag * 0x9E3779B97F4A7C15) >> 32 & m.mask
}

func (m *tagMap) get(tag uint64) (uint32, bool) {
	for i := m.slot(tag); ; i = (i + 1) & m.mask {
		e := m.entries[i]
		if e.val == tagEmpty {
			return 0, false
		}
		if e.tag == tag {
			return e.val, true
		}
	}
}

// put inserts a tag not currently present (every fill is preceded by a
// miss, so duplicates cannot occur).
func (m *tagMap) put(tag uint64, val uint32) {
	i := m.slot(tag)
	for m.entries[i].val != tagEmpty {
		i = (i + 1) & m.mask
	}
	m.entries[i] = tagEntry{tag: tag, val: val}
}

// del removes a present tag, backward-shifting the probe chain so lookups
// never cross a stale vacancy.
func (m *tagMap) del(tag uint64) {
	i := m.slot(tag)
	for m.entries[i].tag != tag || m.entries[i].val == tagEmpty {
		i = (i + 1) & m.mask
	}
	for {
		m.entries[i].val = tagEmpty
		j := i
		for {
			j = (j + 1) & m.mask
			e := m.entries[j]
			if e.val == tagEmpty {
				return
			}
			// e may move into the vacancy only if its home slot lies
			// cyclically at or before the vacancy.
			if (j-m.slot(e.tag))&m.mask >= (j-i)&m.mask {
				m.entries[i] = e
				i = j
				break
			}
		}
	}
}

// idxMinAssoc is the associativity at which lookup switches from the
// linear way scan to the tag index map.
const idxMinAssoc = 16

func newCache(p arch.CacheParams) *cache {
	c := &cache{
		lines:   make([]line, uint64(p.Sets())*uint64(p.Assoc)),
		assoc:   uint64(p.Assoc),
		setMask: uint64(p.Sets() - 1),
		mru:     make([]uint32, p.Sets()),
	}
	for s := uint32(1); s < p.LineBytes; s <<= 1 {
		c.lineShift++
	}
	if p.Assoc >= idxMinAssoc {
		c.idx = newTagMap(len(c.lines))
	}
	return c
}

func (c *cache) index(addr uint64) (set uint64, tag uint64) {
	lineAddr := addr >> c.lineShift
	return lineAddr & c.setMask, lineAddr
}

// lookup returns the line if present (updating LRU), else nil.
func (c *cache) lookup(addr uint64) *line {
	tag := addr >> c.lineShift
	if h := c.memoLine; h != nil && c.memoTag == tag {
		return h
	}
	c.useTick++
	if c.idx != nil {
		gi, ok := c.idx.get(tag)
		if !ok {
			return nil
		}
		h := &c.lines[gi]
		h.lastUse = c.useTick
		c.memoTag, c.memoLine = tag, h
		return h
	}
	set := tag & c.setMask
	base := set * c.assoc
	if h := &c.lines[base+uint64(c.mru[set])]; h.valid && h.tag == tag {
		h.lastUse = c.useTick
		c.memoTag, c.memoLine = tag, h
		return h
	}
	ways := c.lines[base : base+c.assoc]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lastUse = c.useTick
			c.mru[set] = uint32(i)
			c.memoTag, c.memoLine = tag, &ways[i]
			return &ways[i]
		}
	}
	return nil
}

// probe is lookup without LRU update (used by prefetch presence checks).
func (c *cache) probe(addr uint64) *line {
	set, tag := c.index(addr)
	if c.idx != nil {
		if gi, ok := c.idx.get(tag); ok {
			return &c.lines[gi]
		}
		return nil
	}
	base := set * c.assoc
	if h := &c.lines[base+uint64(c.mru[set])]; h.valid && h.tag == tag {
		return h
	}
	ways := c.lines[base : base+c.assoc]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			c.mru[set] = uint32(i)
			return &ways[i]
		}
	}
	return nil
}

// fill installs addr's line with the given arrival time, evicting LRU.
func (c *cache) fill(addr uint64, readyAt uint64) *line {
	set, tag := c.index(addr)
	c.useTick++
	ways := c.lines[set*c.assoc : (set+1)*c.assoc]
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lastUse < ways[victim].lastUse {
			victim = i
		}
	}
	if c.idx != nil {
		if ways[victim].valid {
			c.idx.del(ways[victim].tag)
		}
		c.idx.put(tag, uint32(set*c.assoc)+uint32(victim))
	}
	ways[victim] = line{tag: tag, valid: true, readyAt: readyAt, lastUse: c.useTick}
	c.mru[set] = uint32(victim)
	// The fill may have evicted the memo line's tag; repointing the memo at
	// the freshly filled line keeps it truthful without a separate check.
	c.memoTag, c.memoLine = tag, &ways[victim]
	return &ways[victim]
}

func (c *cache) flush() {
	clear(c.lines)
	clear(c.mru)
	c.useTick = 0
	c.memoTag, c.memoLine = 0, nil
	if c.idx != nil {
		c.idx.clear()
	}
}

// Memory is the simulated memory hierarchy of one machine.
type Memory struct {
	Arch *arch.Machine

	l1, l2 *cache
	tlb    *cache // reuses the cache structure with page-size lines

	C Counters

	// inflight holds arrival times of outstanding prefetches (a small
	// ring; entries with readyAt <= now are reclaimed lazily).
	inflight []uint64

	// hw is the machine's hardware prefetch unit (Arch.HWPrefetcher; the
	// per-page stream detector by default). It trains on the demand-miss
	// and software-prefetch reference stream and fills the L2 through the
	// HWPort methods below.
	hw HWPrefetcher
	// stream is inline storage for the default model: New points hw at it
	// instead of heap-allocating, so constructing a default Memory costs
	// no more allocations than before the prefetcher became pluggable
	// (the bench suite gates allocs/op at zero growth).
	stream streamPrefetcher
	// pageShift is log2 of Arch.DTLB.PageSize — the page geometry every
	// hardware prefetcher must respect.
	pageShift uint
	// l1Hit caches Arch.L1HitCycles one pointer hop closer for the inline
	// hit lane (fastlane.go), which budgets every load it makes.
	l1Hit uint64

	// selfCheck enables fill-time structural invariant checking (see
	// EnableSelfCheck). Off by default: zero cost, identical behaviour.
	selfCheck  bool
	violations []string
}

// New creates the memory system for a machine. The machine's HWPrefetcher
// field selects the hardware-prefetch model ("" = the default stream
// detector); an unknown model name panics — validate with ValidHWModel at
// the flag/spec boundary.
func New(m *arch.Machine) *Memory {
	tlbParams := arch.CacheParams{
		SizeBytes: m.DTLB.Entries * m.DTLB.PageSize,
		LineBytes: m.DTLB.PageSize,
		Assoc:     m.DTLB.Assoc,
	}
	mem := &Memory{
		Arch:     m,
		l1:       newCache(m.L1D),
		l2:       newCache(m.L2U),
		tlb:      newCache(tlbParams),
		inflight: make([]uint64, 0, m.PrefetchQueue),
		l1Hit:    m.L1HitCycles,
	}
	for s := uint32(1); s < m.DTLB.PageSize; s <<= 1 {
		mem.pageShift++
	}
	if m.HWPrefetcher == "" || m.HWPrefetcher == DefaultHWModel {
		mem.stream.port = mem
		mem.hw = &mem.stream
	} else {
		mem.hw = newHWPrefetcher(m.HWPrefetcher, mem)
	}
	return mem
}

// Reset clears all cache, TLB, counter, and hardware-prefetcher state; a
// reset Memory is bit-identical to a freshly constructed one.
func (mem *Memory) Reset() {
	mem.l1.flush()
	mem.l2.flush()
	mem.tlb.flush()
	mem.C = Counters{}
	mem.inflight = mem.inflight[:0]
	mem.hw.Reset()
}

// HWModel returns the name of the active hardware-prefetcher model.
func (mem *Memory) HWModel() string { return mem.hw.Name() }

// HWStats returns the hardware prefetcher's statistics for the current
// counter window.
func (mem *Memory) HWStats() HWStats { return mem.hw.Stats() }

// ProbeL2 implements HWPort.
func (mem *Memory) ProbeL2(addr uint64) bool { return mem.l2.probe(addr) != nil }

// FillL2 implements HWPort: install a hardware-prefetched line with full
// memory latency and count it.
func (mem *Memory) FillL2(addr uint64, now uint64) {
	mem.C.HWPrefetches++
	mem.l2.fill(addr, now+mem.Arch.L2HitCycles+mem.Arch.MemCycles)
}

// LineShift implements HWPort (the L2 line granule the units train on).
func (mem *Memory) LineShift() uint { return mem.l2.lineShift }

// PageShift implements HWPort.
func (mem *Memory) PageShift() uint { return mem.pageShift }

// ResetCounters clears counters but keeps cache contents and trained
// prefetcher state (used between a warmup run and a measured run); the
// hardware prefetcher's statistics are cleared with the counters so
// C.HWPrefetches and HWStats().Issued stay in lockstep.
func (mem *Memory) ResetCounters() {
	mem.C = Counters{}
	mem.hw.ClearStats()
}

// EnableSelfCheck turns on fill-time invariant checking: every L1 fill
// verifies that the line is simultaneously present in the L2 (the
// inclusion property of the model — on the Athlon MP the paper relies on
// it: prefetches fill "L1 (and L2, inclusively)"). Violations are
// recorded, never fatal; simulation results are unaffected (the check
// uses a probe, which does not touch LRU state).
func (mem *Memory) EnableSelfCheck() { mem.selfCheck = true }

// Violations returns the recorded self-check violations.
func (mem *Memory) Violations() []string { return mem.violations }

// fillL1 installs a line in the L1, checking fill-time L2 inclusion when
// self-checking is enabled.
func (mem *Memory) fillL1(addr uint64, readyAt uint64) {
	mem.l1.fill(addr, readyAt)
	if mem.selfCheck && mem.l2.probe(addr) == nil {
		mem.violations = append(mem.violations,
			fmt.Sprintf("%s: L1 fill of 0x%x without an L2 copy (inclusion broken at fill time)",
				mem.Arch.Name, addr))
	}
}

// CheckInvariants validates the counter algebra of one run and returns
// any violations: miss counters must be conserved down the hierarchy, the
// prefetch outcome counters must partition the issue counter, stall
// totals must respect the machine's latency bounds, and the in-flight
// prefetch window must respect the queue bound. It reads only counters
// and configuration, so it can run inside the differ after every cell
// without perturbing the simulation.
func (mem *Memory) CheckInvariants() []string {
	var v []string
	c, a := mem.C, mem.Arch
	bad := func(format string, args ...interface{}) {
		v = append(v, fmt.Sprintf("%s: ", a.Name)+fmt.Sprintf(format, args...))
	}
	if c.L1LoadMisses > c.Loads {
		bad("L1 load misses %d > loads %d", c.L1LoadMisses, c.Loads)
	}
	if c.L2LoadMisses > c.L1LoadMisses {
		bad("L2 load misses %d > L1 load misses %d", c.L2LoadMisses, c.L1LoadMisses)
	}
	if c.DTLBLoadMisses > c.Loads {
		bad("DTLB load misses %d > loads %d", c.DTLBLoadMisses, c.Loads)
	}
	if c.L1StoreMisses > c.Stores {
		bad("L1 store misses %d > stores %d", c.L1StoreMisses, c.Stores)
	}
	if c.L2StoreMisses > c.L1StoreMisses {
		bad("L2 store misses %d > L1 store misses %d", c.L2StoreMisses, c.L1StoreMisses)
	}
	if c.DTLBStoreMisses > c.Stores {
		bad("DTLB store misses %d > stores %d", c.DTLBStoreMisses, c.Stores)
	}
	if c.PrefetchesGuarded > c.PrefetchesIssued {
		bad("guarded prefetches %d > issued %d", c.PrefetchesGuarded, c.PrefetchesIssued)
	}
	if c.PrefetchesDropped+c.PrefetchesUseless > c.PrefetchesIssued {
		bad("dropped %d + useless %d > issued %d",
			c.PrefetchesDropped, c.PrefetchesUseless, c.PrefetchesIssued)
	}
	// Stall bounds. The worst per-load stall is a cold full miss plus the
	// discounted wait for a chained in-flight line; 2*(L2+Mem) safely
	// dominates every path through Load. Stores are charged at most the
	// same before the StoreFactor discount.
	maxLoad := a.L1HitCycles + a.DTLBMissCycles + 2*(a.L2HitCycles+a.MemCycles)
	if c.LoadStallCycles > c.Loads*maxLoad {
		bad("load stall cycles %d exceed %d loads * %d bound", c.LoadStallCycles, c.Loads, maxLoad)
	}
	if c.LoadStallCycles < c.Loads*a.L1HitCycles {
		bad("load stall cycles %d below %d loads * L1 hit %d", c.LoadStallCycles, c.Loads, a.L1HitCycles)
	}
	maxStore := a.DTLBMissCycles + 2*(a.L2HitCycles+a.MemCycles)
	if c.StoreStallCycles > c.Stores*maxStore {
		bad("store stall cycles %d exceed %d stores * %d bound", c.StoreStallCycles, c.Stores, maxStore)
	}
	if len(mem.inflight) > a.PrefetchQueue {
		bad("in-flight prefetches %d exceed queue %d", len(mem.inflight), a.PrefetchQueue)
	}
	// Per-prefetcher statistics must agree with the run counters and with
	// each other: every hardware fill is an Issued, a prediction can only
	// hit on a train, and no model issues more than maxHWDegree prefetches
	// (issued or suppressed) per train.
	hw := mem.hw.Stats()
	if c.HWPrefetches != hw.Issued {
		bad("HWPrefetches %d != %s prefetcher issued %d", c.HWPrefetches, mem.hw.Name(), hw.Issued)
	}
	if hw.Hits > hw.Trains {
		bad("hw hits %d > trains %d", hw.Hits, hw.Trains)
	}
	if hw.Allocs > hw.Trains {
		bad("hw allocs %d > trains %d", hw.Allocs, hw.Trains)
	}
	if hw.Issued+hw.Suppressed > maxHWDegree*hw.Trains {
		bad("hw issued %d + suppressed %d > %d * trains %d",
			hw.Issued, hw.Suppressed, maxHWDegree, hw.Trains)
	}
	return v
}

func (mem *Memory) tlbAccess(addr uint64, fill bool) (miss bool) {
	if mem.tlb.lookup(addr) != nil {
		return false
	}
	if fill {
		mem.tlb.fill(addr, 0)
	}
	return true
}

// overlapDiv discounts the visible wait for a line that is present but
// still in flight: the out-of-order core overlaps an *anticipated* miss
// (one with a prefetch or an earlier demand fill already outstanding) far
// better than a cold stall, since independent work keeps issuing while the
// line arrives. Cold misses are charged in full; in-flight remainders are
// charged at 1/overlapDiv.
const overlapDiv = 4

// extraWait returns the visible remaining wait if the line is present but
// still arriving.
func extraWait(l *line, now uint64) uint64 {
	if l.readyAt > now {
		return (l.readyAt - now) / overlapDiv
	}
	return 0
}

// Load simulates a demand load with no load-site identity (pc 0); see
// LoadAt. It exists for callers that have no static load instruction to
// name — memsim's own tests and synthetic sweeps. pc 0 is not neutral: a
// miss still trains the pc-blind hardware models (nextline, stream) and
// still counts in HWStats.Trains under every model, but the pc-indexed
// models (ipstride, tracker, multistride) cannot index the reference and
// learn nothing from it. Engine-driven loads must go through LoadAt with
// a real site pc, or those models silently under-train.
func (mem *Memory) Load(addr uint32, size uint32, now uint64) uint64 {
	return mem.LoadAt(addr, size, now, 0)
}

// LoadAt simulates a demand load of `size` bytes at addr issued at cycle
// `now` by the load site `pc` and returns the stall cycles. pc identifies
// the static load instruction (pc-indexed hardware prefetchers key their
// tables on it; 0 means "no stable site"). Accesses are assumed not to
// cross line boundaries (the VM's objects are 4/8-byte aligned and lines
// are >= 64 bytes).
func (mem *Memory) LoadAt(addr uint32, size uint32, now uint64, pc uint64) uint64 {
	mem.C.Loads++
	a := mem.Arch
	stall := a.L1HitCycles
	if mem.tlbAccess(uint64(addr), true) {
		mem.C.DTLBLoadMisses++
		stall += a.DTLBMissCycles
	}
	if l := mem.l1.lookup(uint64(addr)); l != nil {
		stall += extraWait(l, now)
		mem.C.LoadStallCycles += stall
		return stall
	}
	mem.C.L1LoadMisses++
	mem.hw.Train(uint64(addr), pc, now)
	if l := mem.l2.lookup(uint64(addr)); l != nil {
		stall += a.L2HitCycles + extraWait(l, now)
		mem.fillL1(uint64(addr), now+stall)
		mem.C.LoadStallCycles += stall
		return stall
	}
	mem.C.L2LoadMisses++
	stall += a.L2HitCycles + a.MemCycles
	mem.l2.fill(uint64(addr), now+stall)
	mem.fillL1(uint64(addr), now+stall)
	mem.C.LoadStallCycles += stall
	return stall
}

// Store simulates a demand store. Write-allocate, write-back; store misses
// stall 1/StoreFactor of the corresponding load penalty (store buffers hide
// most of it).
func (mem *Memory) Store(addr uint32, size uint32, now uint64) uint64 {
	mem.C.Stores++
	a := mem.Arch
	var stall uint64
	if mem.tlbAccess(uint64(addr), true) {
		mem.C.DTLBStoreMisses++
		stall += a.DTLBMissCycles
	}
	if l := mem.l1.lookup(uint64(addr)); l != nil {
		stall += extraWait(l, now)
		stall /= a.StoreFactor
		mem.C.StoreStallCycles += stall
		return stall
	}
	mem.C.L1StoreMisses++
	if l := mem.l2.lookup(uint64(addr)); l != nil {
		stall += a.L2HitCycles + extraWait(l, now)
		mem.fillL1(uint64(addr), now+stall)
		stall /= a.StoreFactor
		mem.C.StoreStallCycles += stall
		return stall
	}
	mem.C.L2StoreMisses++
	stall += a.L2HitCycles + a.MemCycles
	mem.l2.fill(uint64(addr), now+stall)
	mem.fillL1(uint64(addr), now+stall)
	stall /= a.StoreFactor
	mem.C.StoreStallCycles += stall
	return stall
}

// queueFull reports whether the prefetch queue is saturated at `now`,
// reclaiming completed entries.
func (mem *Memory) queueFull(now uint64) bool {
	live := mem.inflight[:0]
	for _, t := range mem.inflight {
		if t > now {
			live = append(live, t)
		}
	}
	mem.inflight = live
	return len(mem.inflight) >= mem.Arch.PrefetchQueue
}

// Prefetch simulates a software prefetch issued at cycle `now` and
// reports what became of it (the telemetry layer attributes outcomes to
// the emitting prefetch site through the return value).
//
// guarded selects the guarded-load mapping: it fills the DTLB (TLB priming,
// paper Sec. 3.3) and installs the line into both cache levels. A plain
// hardware prefetch is cancelled on a DTLB miss and fills only the
// machine's target level. No stall is charged — prefetches are
// asynchronous; their cost is modelled by the instruction issue cycles the
// engine charges plus queue occupancy.
func (mem *Memory) Prefetch(addr uint32, guarded bool, now uint64) telemetry.PrefetchOutcome {
	a := mem.Arch
	mem.C.PrefetchesIssued++
	if guarded {
		mem.C.PrefetchesGuarded++
	}
	if !guarded && mem.tlbAccess(uint64(addr), false) {
		// Hardware prefetch cancelled on DTLB miss.
		mem.C.PrefetchesDropped++
		return telemetry.PrefetchDroppedTLB
	}
	if mem.queueFull(now) {
		mem.C.PrefetchesDropped++
		return telemetry.PrefetchDroppedQueue
	}
	if guarded {
		mem.tlbAccess(uint64(addr), true)
	}
	// The hardware prefetcher trains on the L2 reference stream, which
	// includes software prefetch requests — the two mechanisms cooperate
	// (software prefetches of a dense object stream keep the hardware
	// stream alive, covering the lines the compile-time line-dedup filter
	// skipped). Software prefetches carry no load-site pc.
	mem.hw.Train(uint64(addr), 0, now)
	target := a.PrefetchTarget
	if guarded {
		target = arch.L1 // a real load fills L1
	}
	// Determine where the data currently lives to compute arrival time.
	inL1 := mem.l1.probe(uint64(addr)) != nil
	l2line := mem.l2.probe(uint64(addr))
	switch {
	case target == arch.L1 && inL1, target == arch.L2 && (l2line != nil || inL1):
		mem.C.PrefetchesUseless++
		return telemetry.PrefetchUseless
	}
	var lat uint64
	if l2line != nil {
		lat = a.L2HitCycles
		if l2line.readyAt > now {
			// The L2 copy is itself still in flight; data cannot reach the
			// L1 before it arrives.
			lat += l2line.readyAt - now
		}
	} else {
		lat = a.L2HitCycles + a.MemCycles
	}
	ready := now + lat
	if l2line == nil {
		mem.l2.fill(uint64(addr), ready)
	}
	if target == arch.L1 {
		mem.fillL1(uint64(addr), ready)
	}
	mem.inflight = append(mem.inflight, ready)
	return telemetry.PrefetchFetched
}

// LineSize returns the L1 line size (the profitability analysis granule).
func (mem *Memory) LineSize() uint32 { return mem.Arch.L1D.LineBytes }
