package memsim

import (
	"testing"
	"testing/quick"

	"strider/internal/arch"
)

func freshP4() *Memory { return New(arch.Pentium4()) }
func freshAt() *Memory { return New(arch.AthlonMP()) }

func TestColdMissThenHit(t *testing.T) {
	m := freshP4()
	a := m.Arch
	cold := m.Load(0x10000, 4, 0)
	wantCold := a.L1HitCycles + a.DTLBMissCycles + a.L2HitCycles + a.MemCycles
	if cold != wantCold {
		t.Errorf("cold miss stall = %d, want %d", cold, wantCold)
	}
	if m.C.L1LoadMisses != 1 || m.C.L2LoadMisses != 1 || m.C.DTLBLoadMisses != 1 {
		t.Errorf("miss counters: %+v", m.C)
	}
	// Second access: everything hits (readyAt passed).
	hit := m.Load(0x10000, 4, 1_000_000)
	if hit != a.L1HitCycles {
		t.Errorf("warm hit stall = %d, want %d", hit, a.L1HitCycles)
	}
	if m.C.L1LoadMisses != 1 {
		t.Error("hit counted as miss")
	}
}

func TestSameLineSharing(t *testing.T) {
	m := freshP4()
	m.Load(0x20000, 4, 0)
	// Same 64-byte L1 line -> L1 hit (after arrival).
	stall := m.Load(0x20000+60, 4, 1_000_000)
	if stall != m.Arch.L1HitCycles {
		t.Errorf("same-line access stalled %d", stall)
	}
}

func TestL2HitPath(t *testing.T) {
	m := freshP4()
	a := m.Arch
	// Fill a line, then evict it from L1 (4-way, 32 sets, 64B lines:
	// same set repeats every 2048 bytes) while keeping it in L2.
	m.Load(0x40000, 4, 0)
	for i := uint32(1); i <= 8; i++ {
		m.Load(0x40000+i*2048, 4, 1_000_000)
	}
	l2m := m.C.L2LoadMisses
	stall := m.Load(0x40000, 4, 2_000_000)
	if m.C.L2LoadMisses != l2m {
		t.Fatal("expected an L2 hit, counted an L2 miss")
	}
	if stall != a.L1HitCycles+a.L2HitCycles {
		t.Errorf("L2 hit stall = %d", stall)
	}
}

func TestDTLBCapacity(t *testing.T) {
	m := freshP4() // 64 entries
	// Touch 65 distinct pages twice; the second round must still miss on
	// at least one (capacity), whereas 10 pages fit.
	for i := uint32(0); i < 65; i++ {
		m.Load(i*4096, 4, 0)
	}
	base := m.C.DTLBLoadMisses
	for i := uint32(0); i < 65; i++ {
		m.Load(i*4096, 4, 1_000_000_0)
	}
	if m.C.DTLBLoadMisses == base {
		t.Error("65 pages must not fit a 64-entry DTLB")
	}

	m2 := freshP4()
	for round := 0; round < 2; round++ {
		for i := uint32(0); i < 10; i++ {
			m2.Load(i*4096, 4, 1_000_000)
		}
	}
	if m2.C.DTLBLoadMisses != 10 {
		t.Errorf("10 pages should miss exactly once each, got %d", m2.C.DTLBLoadMisses)
	}
}

func TestPrefetchCancelledOnDTLBMiss(t *testing.T) {
	m := freshP4()
	m.Prefetch(0x50000, false, 0)
	if m.C.PrefetchesDropped != 1 {
		t.Fatal("hardware prefetch must be cancelled on a DTLB miss (Sec. 3.3)")
	}
	// The line must not have been installed.
	stall := m.Load(0x50000, 4, 1_000_000)
	if stall < m.Arch.MemCycles {
		t.Error("cancelled prefetch must not install the line")
	}
}

func TestGuardedPrefetchPrimesTLBAndL1(t *testing.T) {
	m := freshP4()
	a := m.Arch
	m.Prefetch(0x60000, true, 0)
	if m.C.PrefetchesDropped != 0 {
		t.Fatal("guarded load must not be cancelled by a DTLB miss")
	}
	if m.C.PrefetchesGuarded != 1 {
		t.Error("guarded counter")
	}
	// Later access: TLB primed, line in L1 (guarded loads fill L1).
	stall := m.Load(0x60000, 4, 1_000_000)
	if stall != a.L1HitCycles {
		t.Errorf("after guarded prefetch, stall = %d, want %d", stall, a.L1HitCycles)
	}
	if m.C.DTLBLoadMisses != 0 {
		t.Error("TLB priming failed")
	}
}

func TestPlainPrefetchTargetsL2OnP4(t *testing.T) {
	m := freshP4()
	a := m.Arch
	m.Load(0x71000, 4, 0) // prime the TLB page
	// 0x71080 is a different 128-byte L2 line than 0x71000.
	m.Prefetch(0x71080, false, 100)
	stall := m.Load(0x71080, 4, 1_000_000)
	if stall != a.L1HitCycles+a.L2HitCycles {
		t.Errorf("P4 prefetch must fill L2 only: stall = %d", stall)
	}
}

func TestPlainPrefetchTargetsL1OnAthlon(t *testing.T) {
	m := freshAt()
	a := m.Arch
	m.Load(0x71000, 4, 0)
	m.Prefetch(0x71040, false, 100)
	stall := m.Load(0x71040, 4, 1_000_000)
	if stall != a.L1HitCycles {
		t.Errorf("Athlon prefetch must fill L1: stall = %d", stall)
	}
}

func TestLatePrefetchPartialBenefit(t *testing.T) {
	m := freshAt()
	m.Load(0x80000, 4, 0) // prime TLB
	m.Prefetch(0x81000>>0, false, 0)
	_ = m
	m2 := freshAt()
	m2.Load(0x90000, 4, 0)
	m2.Prefetch(0x90040, false, 1000)
	// Demand just 10 cycles later: the line is in flight; the visible
	// stall must be less than a cold miss but more than a hit.
	stall := m2.Load(0x90040, 4, 1010)
	cold := m2.Arch.L1HitCycles + m2.Arch.L2HitCycles + m2.Arch.MemCycles
	if stall >= cold {
		t.Errorf("late prefetch gave no benefit: %d >= %d", stall, cold)
	}
	if stall <= m2.Arch.L1HitCycles {
		t.Errorf("immediately-used prefetch cannot be free: %d", stall)
	}
}

func TestPrefetchQueueOverflow(t *testing.T) {
	m := freshAt()
	// Prime pages so prefetches are not TLB-cancelled.
	for i := uint32(0); i < 4; i++ {
		m.Load(0xA0000+i*4096, 4, 0)
	}
	issued := 0
	for i := uint32(0); i < 32; i++ {
		m.Prefetch(0xA0000+512+i*64, false, 100)
		issued++
	}
	if m.C.PrefetchesDropped == 0 {
		t.Error("32 simultaneous prefetches must overflow the queue")
	}
	if int(m.C.PrefetchesIssued) != issued {
		t.Error("issue counter wrong")
	}
}

func TestUselessPrefetchCounted(t *testing.T) {
	m := freshAt()
	m.Load(0xB0000, 4, 0)
	m.Prefetch(0xB0000, false, 1_000_000)
	if m.C.PrefetchesUseless != 1 {
		t.Error("prefetch of a resident line must count as useless")
	}
}

func TestStoreCheaperThanLoad(t *testing.T) {
	m := freshP4()
	st := m.Store(0xC0000, 4, 0)
	m2 := freshP4()
	ld := m2.Load(0xC0000, 4, 0)
	if st >= ld {
		t.Errorf("store stall %d must be below load stall %d", st, ld)
	}
	if m.C.L1StoreMisses != 1 || m.C.L2StoreMisses != 1 {
		t.Error("store miss counters")
	}
}

func TestHWPrefetcherCoversSequentialStream(t *testing.T) {
	m := freshAt()
	// Stream 64 consecutive lines within one page; after training, later
	// lines should hit L2 thanks to the hardware prefetcher.
	now := uint64(0)
	for i := uint32(0); i < 64; i++ {
		now += 500
		m.Load(0xD0000+i*64, 4, now)
	}
	if m.C.HWPrefetches == 0 {
		t.Fatal("hardware prefetcher never trained on a sequential stream")
	}
	if m.C.L2LoadMisses >= 60 {
		t.Errorf("L2 misses = %d; hardware prefetching should cover most of the stream", m.C.L2LoadMisses)
	}
}

func TestHWPrefetcherStopsAtPageBoundary(t *testing.T) {
	m := freshAt()
	now := uint64(0)
	// Train a stream running into the end of a page (all accesses within
	// the page; the last trained prefetch target would be the next page).
	for i := uint32(0); i < 6; i++ {
		now += 500
		m.Load(0xE0000+0xE80+i*64, 4, now)
	}
	hw := m.C.HWPrefetches
	if hw == 0 {
		t.Fatal("stream should have trained")
	}
	// The next line starts a new page; the prefetcher must not have
	// crossed into it.
	stall := m.Load(0xE1000, 4, now+100_000)
	if stall < m.Arch.MemCycles {
		t.Errorf("line beyond page boundary was prefetched (stall %d, hw %d)", stall, hw)
	}
}

func TestHWPrefetcherIgnoresPointerChasing(t *testing.T) {
	m := freshAt()
	// Random-looking deltas within a page: no training.
	addrs := []uint32{0xF0000, 0xF0340, 0xF0080, 0xF0740, 0xF0180, 0xF0500}
	now := uint64(0)
	for _, a := range addrs {
		now += 500
		m.Load(a, 4, now)
	}
	if m.C.HWPrefetches != 0 {
		t.Errorf("hardware prefetcher trained on irregular deltas: %d", m.C.HWPrefetches)
	}
}

func TestResetAndResetCounters(t *testing.T) {
	m := freshP4()
	m.Load(0x10000, 4, 0)
	m.ResetCounters()
	if m.C.Loads != 0 {
		t.Error("ResetCounters failed")
	}
	// Cache contents kept: the reload hits.
	if stall := m.Load(0x10000, 4, 1_000_000); stall != m.Arch.L1HitCycles {
		t.Error("ResetCounters must keep cache contents")
	}
	m.Reset()
	if stall := m.Load(0x10000, 4, 2_000_000); stall <= m.Arch.L1HitCycles {
		t.Error("Reset must flush caches")
	}
}

func TestLineSize(t *testing.T) {
	if freshP4().LineSize() != 64 {
		t.Error("LineSize must report the L1 line")
	}
}

// Property: miss counters never exceed access counters, and a repeated
// access sequence (far enough apart in time) has at most one cold miss per
// distinct line within capacity.
func TestQuickCounterSanity(t *testing.T) {
	f := func(raw []uint16) bool {
		m := freshAt()
		now := uint64(0)
		for _, r := range raw {
			now += 1000
			addr := 0x10000 + uint32(r)*8
			m.Load(addr, 4, now)
		}
		c := m.C
		return c.L1LoadMisses <= c.Loads &&
			c.L2LoadMisses <= c.L1LoadMisses &&
			c.DTLBLoadMisses <= c.Loads
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: LRU keeps a working set no larger than one set's associativity
// permanently resident.
func TestLRUWithinSet(t *testing.T) {
	m := freshAt() // L1: 64K, 2-way, 64B lines -> set stride 32K
	// Two lines mapping to the same set fit (2 ways); touching them
	// repeatedly must produce exactly 2 misses.
	for i := 0; i < 10; i++ {
		m.Load(0x10000, 4, uint64(i)*1000+1000)
		m.Load(0x10000+32768, 4, uint64(i)*1000+1500)
	}
	if m.C.L1LoadMisses != 2 {
		t.Errorf("2-way set with 2 lines: misses = %d, want 2", m.C.L1LoadMisses)
	}
	// A third same-set line causes continual eviction.
	m2 := freshAt()
	for i := 0; i < 5; i++ {
		m2.Load(0x10000, 4, uint64(i)*3000+1000)
		m2.Load(0x10000+32768, 4, uint64(i)*3000+2000)
		m2.Load(0x10000+65536, 4, uint64(i)*3000+2500)
	}
	if m2.C.L1LoadMisses <= 3 {
		t.Errorf("3 lines in a 2-way set must thrash, misses = %d", m2.C.L1LoadMisses)
	}
}
