package memsim

import (
	"testing"

	"strider/internal/arch"
)

// TestInFlightOverlapDiscount: a demand access to a line that is present
// but still arriving is charged the discounted remainder, not the full
// wait — the out-of-order overlap model.
func TestInFlightOverlapDiscount(t *testing.T) {
	m := freshAt()
	a := m.Arch
	m.Load(0x50000, 4, 0) // prime the page
	m.Prefetch(0x50400, false, 1000)
	full := a.L2HitCycles + a.MemCycles // the line's flight time
	// Demand halfway through the flight.
	stall := m.Load(0x50400, 4, 1000+full/2)
	remainder := full - full/2
	want := a.L1HitCycles + remainder/overlapDiv
	if stall != want {
		t.Errorf("overlap-discounted stall = %d, want %d", stall, want)
	}
}

// TestPrefetchOfInFlightL2Line: prefetching into L1 a line whose L2 copy
// is still arriving cannot make the data available before the L2 copy
// lands.
func TestPrefetchOfInFlightL2Line(t *testing.T) {
	m := freshAt()
	m.Load(0x60000, 4, 0)
	// A demand miss at t=1000 puts the line in flight (arrives ~1180).
	m.Load(0x61000>>0, 4, 0) // prime second page
	m.Load(0x60040, 4, 1000) // in-flight fill of L1+L2
	// Evict nothing; prefetch the same line again at t=1010: useless.
	m.Prefetch(0x60040, false, 1010)
	if m.C.PrefetchesUseless == 0 {
		t.Error("prefetch of an already-present line must be useless")
	}
}

// TestGuardedPrefetchOnAthlonActsLikeL1Fill: on the Athlon the plain
// prefetch already targets L1, so guarded and plain differ only in TLB
// behaviour.
func TestGuardedPrefetchOnAthlonActsLikeL1Fill(t *testing.T) {
	plain := freshAt()
	plain.Load(0x70000, 4, 0) // prime page
	plain.Prefetch(0x70400, false, 100)
	s1 := plain.Load(0x70400, 4, 1_000_000)

	guarded := freshAt()
	guarded.Load(0x70000, 4, 0)
	guarded.Prefetch(0x70400, true, 100)
	s2 := guarded.Load(0x70400, 4, 1_000_000)
	if s1 != s2 {
		t.Errorf("same-page guarded vs plain on Athlon: %d vs %d", s1, s2)
	}
	// On a cold page only the guarded form survives.
	coldPlain := freshAt()
	coldPlain.Prefetch(0x90000, false, 0)
	if coldPlain.C.PrefetchesDropped != 1 {
		t.Error("plain prefetch on cold page must be cancelled")
	}
	coldGuarded := freshAt()
	coldGuarded.Prefetch(0x90000, true, 0)
	if coldGuarded.C.PrefetchesDropped != 0 {
		t.Error("guarded prefetch must survive a cold page")
	}
}

// TestStoreAfterPrefetchHitsL1 exercises the store path against prefetched
// lines.
func TestStoreAfterPrefetchHitsL1(t *testing.T) {
	m := freshAt()
	m.Load(0x80000, 4, 0)
	m.Prefetch(0x80040, false, 10)
	st := m.Store(0x80040, 4, 1_000_000)
	if st > m.Arch.L1HitCycles {
		t.Errorf("store to prefetched line stalled %d", st)
	}
	if m.C.L1StoreMisses != 0 {
		t.Error("store to prefetched line must not miss")
	}
}

// TestInclusionOnDemandFill: demand misses fill both levels, so a line
// evicted from L1 by capacity still hits in L2.
func TestInclusionOnDemandFill(t *testing.T) {
	m := New(arch.Pentium4())
	m.Load(0xA0000, 4, 0)
	// Evict from tiny P4 L1 (8K): stream 16K.
	for i := uint32(1); i <= 256; i++ {
		m.Load(0xA0000+i*64, 4, uint64(i)*1000)
	}
	l2m := m.C.L2LoadMisses
	m.Load(0xA0000, 4, 10_000_000)
	if m.C.L2LoadMisses != l2m {
		t.Error("line evicted from L1 must still hit L2 (inclusive fill)")
	}
}

// TestHWPrefetcherBackwardStream: descending scans train too.
func TestHWPrefetcherBackwardStream(t *testing.T) {
	m := freshAt()
	now := uint64(0)
	for i := 0; i < 20; i++ {
		now += 500
		m.Load(uint32(0xB0F00-i*64), 4, now)
	}
	if m.C.HWPrefetches == 0 {
		t.Error("hardware prefetcher must follow descending streams")
	}
}

// TestCounterAccumulation sanity-checks the aggregate counters.
func TestCounterAccumulation(t *testing.T) {
	m := freshP4()
	for i := uint32(0); i < 10; i++ {
		m.Load(0xC0000+i*256, 4, uint64(i)*1000)
		m.Store(0xC8000+i*256, 4, uint64(i)*1000+500)
	}
	if m.C.Loads != 10 || m.C.Stores != 10 {
		t.Errorf("access counters: %+v", m.C)
	}
	if m.C.LoadStallCycles == 0 || m.C.StoreStallCycles == 0 {
		t.Error("stall accounting missing")
	}
}
