// Property and invariant tests for the memory simulator: LRU replacement
// correctness against a shadow model, and counter conservation laws over
// fuzzed access streams on both evaluation machines.
package memsim

import (
	"math/rand"
	"testing"

	"strider/internal/arch"
	"strider/internal/telemetry"
)

// TestLRUNeverEvictsMRU fills one set to capacity, touches a line to make
// it most recently used, then forces an eviction: the MRU line must
// survive and the least recently used line must be the victim.
func TestLRUNeverEvictsMRU(t *testing.T) {
	// 2 sets x 4 ways x 64-byte lines. Addresses addr(i) = i*2*64 all map
	// to set 0 with distinct tags.
	c := newCache(arch.CacheParams{SizeBytes: 512, LineBytes: 64, Assoc: 4})
	addr := func(i uint64) uint64 { return i * 2 * 64 }

	for i := uint64(0); i < 4; i++ {
		c.fill(addr(i), 0)
	}
	if c.lookup(addr(0)) == nil {
		t.Fatal("line 0 missing right after fill")
	}
	// LRU order is now 1, 2, 3, 0. The next conflicting fill must evict
	// line 1 and leave the MRU line 0 alone.
	c.fill(addr(4), 0)
	if c.probe(addr(0)) == nil {
		t.Error("MRU line was evicted")
	}
	if c.probe(addr(1)) != nil {
		t.Error("LRU line survived the eviction")
	}
	for _, i := range []uint64{2, 3, 4} {
		if c.probe(addr(i)) == nil {
			t.Errorf("line %d unexpectedly evicted", i)
		}
	}
}

// TestLRUMatchesShadowModel fuzzes fill/lookup sequences against a plain
// recency-list model of every set.
func TestLRUMatchesShadowModel(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		rng := rand.New(rand.NewSource(seed))
		p := arch.CacheParams{SizeBytes: 1024, LineBytes: 64, Assoc: 4}
		c := newCache(p)
		sets := int(p.Sets())
		assoc := int(p.Assoc)

		// shadow[s] holds the tags of set s, most recent first.
		shadow := make([][]uint64, sets)
		touch := func(s int, tag uint64, insert bool) {
			list := shadow[s]
			for i, v := range list {
				if v == tag {
					shadow[s] = append([]uint64{tag}, append(list[:i:i], list[i+1:]...)...)
					return
				}
			}
			if !insert {
				return
			}
			list = append([]uint64{tag}, list...)
			if len(list) > assoc {
				list = list[:assoc]
			}
			shadow[s] = list
		}
		contains := func(s int, tag uint64) bool {
			for _, v := range shadow[s] {
				if v == tag {
					return true
				}
			}
			return false
		}

		for op := 0; op < 4000; op++ {
			// 16 distinct lines per set guarantee conflict pressure.
			tagIdx := uint64(rng.Intn(16))
			set := rng.Intn(sets)
			addr := (tagIdx*uint64(sets) + uint64(set)) * 64
			wantSet, wantTag := c.index(addr)
			if int(wantSet) != set {
				t.Fatalf("seed %d: address construction wrong: set %d != %d", seed, wantSet, set)
			}
			if rng.Intn(2) == 0 {
				got := c.lookup(addr) != nil
				want := contains(set, wantTag)
				if got != want {
					t.Fatalf("seed %d op %d: lookup(set %d, tag %d) = %v, shadow says %v",
						seed, op, set, wantTag, got, want)
				}
				if got {
					touch(set, wantTag, false)
				}
			} else {
				if contains(set, wantTag) {
					// The simulator never fills a resident line (every caller
					// probes first), so model this case as a recency touch.
					c.lookup(addr)
					touch(set, wantTag, false)
				} else {
					c.fill(addr, 0)
					touch(set, wantTag, true)
				}
			}
			// The shadow set and the real set must agree exactly.
			for _, tag := range shadow[set] {
				if c.probe(tag<<c.lineShift) == nil {
					t.Fatalf("seed %d op %d: shadow tag %d missing from cache set %d",
						seed, op, tag, set)
				}
			}
		}
	}
}

// TestCounterConservation runs fuzzed access streams on both machines and
// checks the conservation laws that must hold between the counters, and
// between the counters and the per-call Prefetch outcomes.
func TestCounterConservation(t *testing.T) {
	for _, m := range arch.Machines() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			for _, seed := range []int64{3, 99, 2026} {
				mem := New(m)
				rng := rand.New(rand.NewSource(seed))
				var outcomes [4]uint64 // indexed by PrefetchOutcome
				now := uint64(0)
				addr := func() uint32 {
					if rng.Intn(2) == 0 {
						// Strided stream: realistic for the prefetcher paths.
						return uint32(rng.Intn(64))*4096 + uint32(rng.Intn(64))*64
					}
					return uint32(rng.Intn(1 << 22))
				}
				for op := 0; op < 20000; op++ {
					now += uint64(rng.Intn(10)) + 1
					switch rng.Intn(10) {
					case 0, 1, 2, 3, 4:
						mem.Load(addr(), 4, now)
					case 5, 6:
						mem.Store(addr(), 4, now)
					default:
						out := mem.Prefetch(addr(), rng.Intn(2) == 0, now)
						outcomes[out]++
					}
				}
				c := mem.C

				le := func(a, b uint64, name string) {
					if a > b {
						t.Errorf("seed %d: %s violated: %d > %d", seed, name, a, b)
					}
				}
				le(c.L1LoadMisses, c.Loads, "L1LoadMisses <= Loads")
				le(c.L2LoadMisses, c.L1LoadMisses, "L2LoadMisses <= L1LoadMisses")
				le(c.DTLBLoadMisses, c.Loads, "DTLBLoadMisses <= Loads")
				le(c.L1StoreMisses, c.Stores, "L1StoreMisses <= Stores")
				le(c.L2StoreMisses, c.L1StoreMisses, "L2StoreMisses <= L1StoreMisses")
				le(c.DTLBStoreMisses, c.Stores, "DTLBStoreMisses <= Stores")
				le(c.PrefetchesGuarded, c.PrefetchesIssued, "Guarded <= Issued")
				le(c.PrefetchesDropped+c.PrefetchesUseless, c.PrefetchesIssued,
					"Dropped+Useless <= Issued")

				// The per-call outcomes must tally exactly with the counters.
				total := outcomes[telemetry.PrefetchFetched] +
					outcomes[telemetry.PrefetchUseless] +
					outcomes[telemetry.PrefetchDroppedTLB] +
					outcomes[telemetry.PrefetchDroppedQueue]
				if total != c.PrefetchesIssued {
					t.Errorf("seed %d: outcome total %d != PrefetchesIssued %d",
						seed, total, c.PrefetchesIssued)
				}
				if outcomes[telemetry.PrefetchUseless] != c.PrefetchesUseless {
					t.Errorf("seed %d: useless outcomes %d != PrefetchesUseless %d",
						seed, outcomes[telemetry.PrefetchUseless], c.PrefetchesUseless)
				}
				dropped := outcomes[telemetry.PrefetchDroppedTLB] + outcomes[telemetry.PrefetchDroppedQueue]
				if dropped != c.PrefetchesDropped {
					t.Errorf("seed %d: dropped outcomes %d != PrefetchesDropped %d",
						seed, dropped, c.PrefetchesDropped)
				}
			}
		})
	}
}
