// Hardware-prefetcher zoo. Both evaluation machines "provide ... software
// and hardware prefetching mechanisms" (Sec. 4), and the profitability
// analysis exists because "prefetching for such a load instruction will
// not be profitable, especially on processors with hardware prefetching"
// (Sec. 3.3) — so whether dynamic object inspection still wins depends on
// how strong the hardware unit is. This file makes the hardware unit a
// pluggable axis: every model trains on the demand-miss/prefetch reference
// stream through one interface and issues fills into the L2 through a
// narrow port, and none of them may cross a page boundary or follow a
// pointer — the limits the paper's software approach exists to beat.
package memsim

import "fmt"

// HWStats counts what one hardware prefetcher did during a run. The
// counters obey (and CheckInvariants asserts): Hits <= Trains,
// Allocs <= Trains, and Issued+Suppressed <= maxHWDegree*Trains.
type HWStats struct {
	// Trains counts Train calls (demand L1 misses plus software-prefetch
	// references — the reference stream the unit observes).
	Trains uint64
	// Allocs counts new table/tracker entries allocated for previously
	// untracked streams.
	Allocs uint64
	// Hits counts trains whose observed delta matched the predicted one.
	Hits uint64
	// Issued counts prefetch fills actually installed into the L2.
	Issued uint64
	// Suppressed counts predicted prefetches withheld because the target
	// crossed a page boundary or was already present in the L2.
	Suppressed uint64
}

// maxHWDegree bounds how many prefetches any model may issue per train
// (the multi-stride model issues up to one period, capped at 4 lines).
const maxHWDegree = 4

// HWPort is the narrow window a hardware prefetcher gets into the memory
// system: probe and fill the L2, and read the machine's line and page
// geometry. Memory implements it; FillL2 accounts the fill in the run's
// HWPrefetches counter.
type HWPort interface {
	// ProbeL2 reports whether addr's line is already present in the L2
	// (without touching LRU state).
	ProbeL2(addr uint64) bool
	// FillL2 installs addr's line into the L2 with a full memory-latency
	// arrival time and counts it as a hardware prefetch.
	FillL2(addr uint64, now uint64)
	// LineShift is log2 of the L2 line size (the training granule).
	LineShift() uint
	// PageShift is log2 of the machine's DTLB page size (the boundary no
	// hardware prefetcher may cross).
	PageShift() uint
}

// HWPrefetcher is one pluggable hardware prefetch unit. Train observes one
// reference (a demand L1 miss or a software prefetch) and may issue fills
// through the port; pc is the load-site identifier for pc-indexed models
// (0 when the reference has no stable site, e.g. software prefetches —
// pc-indexed models must not corrupt their tables on it). Reset returns
// the unit to its just-constructed state, statistics included, so a reset
// Memory is bit-identical to a fresh one.
type HWPrefetcher interface {
	Name() string
	Train(addr uint64, pc uint64, now uint64)
	Reset()
	Stats() HWStats
	// ClearStats zeroes the statistics while keeping the trained state
	// (used between a warmup run and a measured run).
	ClearStats()
}

// DefaultHWModel is the model used when a machine does not name one: the
// per-page stream detector the simulator has always had.
const DefaultHWModel = "stream"

// hwModels lists the zoo in documentation order.
var hwModels = []string{"none", "nextline", "stream", "ipstride", "tracker", "multistride"}

// HWModels returns the names of every available hardware-prefetcher model.
func HWModels() []string {
	out := make([]string, len(hwModels))
	copy(out, hwModels)
	return out
}

// ValidHWModel reports whether name selects a model ("" selects the
// default).
func ValidHWModel(name string) bool {
	if name == "" {
		return true
	}
	for _, m := range hwModels {
		if m == name {
			return true
		}
	}
	return false
}

// newHWPrefetcher constructs the named model over a port. Callers validate
// names at the flag/spec boundary; an unknown name here is a programming
// error.
func newHWPrefetcher(name string, port HWPort) HWPrefetcher {
	switch name {
	case "", DefaultHWModel:
		return newStreamPrefetcher(port)
	case "none":
		return &nonePrefetcher{}
	case "nextline":
		return &nextlinePrefetcher{port: port}
	case "ipstride":
		return &ipstridePrefetcher{port: port}
	case "tracker":
		return newTrackerPrefetcher(port)
	case "multistride":
		return &multistridePrefetcher{port: port}
	}
	panic(fmt.Sprintf("memsim: unknown hardware-prefetcher model %q (valid: %v)", name, hwModels))
}

// issue fills addr's next line unless it crosses out of page or is already
// cached, updating stats accordingly. Shared by every model.
func issueHW(port HWPort, stats *HWStats, nextLine int64, page uint64, now uint64) {
	nextAddr := uint64(nextLine) << port.LineShift()
	if nextAddr>>port.PageShift() != page {
		stats.Suppressed++
		return // hardware prefetchers stop at page boundaries
	}
	if port.ProbeL2(nextAddr) {
		stats.Suppressed++
		return
	}
	stats.Issued++
	port.FillL2(nextAddr, now)
}

// ---------------------------------------------------------------------------
// none: no hardware prefetching (the software-only ablation point).

type nonePrefetcher struct {
	stats HWStats
}

func (p *nonePrefetcher) Name() string               { return "none" }
func (p *nonePrefetcher) Train(addr, pc, now uint64) { p.stats.Trains++ }
func (p *nonePrefetcher) Reset()                     { p.stats = HWStats{} }
func (p *nonePrefetcher) Stats() HWStats             { return p.stats }
func (p *nonePrefetcher) ClearStats()                { p.stats = HWStats{} }

// ---------------------------------------------------------------------------
// nextline: one-block-lookahead — fetch line n+1 on every reference to
// line n (Smith's classic sequential prefetch). No confidence, no
// direction detection; the weakest real unit and the strongest generator
// of useless traffic.

type nextlinePrefetcher struct {
	port  HWPort
	stats HWStats
}

func (p *nextlinePrefetcher) Name() string { return "nextline" }

func (p *nextlinePrefetcher) Train(addr, pc, now uint64) {
	p.stats.Trains++
	p.stats.Hits++ // the prediction is unconditional
	line := int64(addr >> p.port.LineShift())
	issueHW(p.port, &p.stats, line+1, addr>>p.port.PageShift(), now)
}

func (p *nextlinePrefetcher) Reset()         { p.stats = HWStats{} }
func (p *nextlinePrefetcher) Stats() HWStats { return p.stats }
func (p *nextlinePrefetcher) ClearStats()    { p.stats = HWStats{} }

// ---------------------------------------------------------------------------
// stream: the simulator's original per-page stream detector — trains on
// two same-delta references within a page, then prefetches one line ahead
// for near-sequential streams. Kept behaviourally identical to the
// pre-refactor hwTrain (the default model's outputs are golden).

// hwStream is one tracked stream of the stream detector.
type hwStream struct {
	page     uint64
	lastLine uint64
	delta    int64
	conf     int8
	lastUse  uint64
	valid    bool
}

const hwStreams = 16

type streamPrefetcher struct {
	port    HWPort
	streams [hwStreams]hwStream
	// lastStream is the index of the stream Train matched most recently —
	// a scan-skipping hint (misses of one page cluster in time), never a
	// behaviour change.
	lastStream int
	useTick    uint64
	stats      HWStats
}

func newStreamPrefetcher(port HWPort) *streamPrefetcher {
	return &streamPrefetcher{port: port}
}

func (p *streamPrefetcher) Name() string { return "stream" }

func (p *streamPrefetcher) Train(addr, pc, now uint64) {
	p.stats.Trains++
	page := addr >> p.port.PageShift()
	line := addr >> p.port.LineShift()
	p.useTick++

	var s *hwStream
	if h := &p.streams[p.lastStream]; h.valid && h.page == page {
		s = h
	} else {
		victim := 0
		for i := range p.streams {
			e := &p.streams[i]
			if e.valid && e.page == page {
				s = e
				p.lastStream = i
				break
			}
			if !e.valid {
				victim = i
			} else if p.streams[victim].valid && e.lastUse < p.streams[victim].lastUse {
				victim = i
			}
		}
		if s == nil {
			p.streams[victim] = hwStream{page: page, lastLine: line, lastUse: p.useTick, valid: true}
			p.lastStream = victim
			p.stats.Allocs++
			return
		}
	}
	s.lastUse = p.useTick
	d := int64(line) - int64(s.lastLine)
	s.lastLine = line
	if d == 0 {
		return
	}
	if d == s.delta {
		if s.conf < 4 {
			s.conf++
		}
		p.stats.Hits++
	} else {
		s.delta = d
		s.conf = 1
		return
	}
	if s.conf < 2 || s.delta > 2 || s.delta < -2 {
		return // only near-sequential streams, after confirmation
	}
	// Prefetch one line ahead along the stream, within the page.
	issueHW(p.port, &p.stats, int64(line)+s.delta, page, now)
}

func (p *streamPrefetcher) Reset() {
	p.streams = [hwStreams]hwStream{}
	p.lastStream = 0
	p.useTick = 0
	p.stats = HWStats{}
}

func (p *streamPrefetcher) Stats() HWStats { return p.stats }
func (p *streamPrefetcher) ClearStats()    { p.stats = HWStats{} }

// ---------------------------------------------------------------------------
// ipstride: the Baer–Chen reference prediction table — a pc-indexed,
// direct-mapped table of (last address, stride, state) entries with the
// four-state Initial/Transient/Steady/NoPred confidence machine. Prefetch
// is issued only from Steady, so one wrong delta silences a stream until
// the stride re-confirms. (After Baer & Chen 1991; cf. the RPT models in
// SNIPPETS 1 and 3.)

type rptState uint8

const (
	rptInitial rptState = iota
	rptTransient
	rptSteady
	rptNoPred
)

const rptEntries = 64 // direct-mapped; indexed by pc & (rptEntries-1)

type rptEntry struct {
	pc       uint64
	lastAddr uint64
	stride   int64 // byte stride: RPTs predict addresses, not lines
	state    rptState
	valid    bool
}

type ipstridePrefetcher struct {
	port  HWPort
	table [rptEntries]rptEntry
	stats HWStats
}

func (p *ipstridePrefetcher) Name() string { return "ipstride" }

func (p *ipstridePrefetcher) Train(addr, pc, now uint64) {
	p.stats.Trains++
	if pc == 0 {
		return // reference without a stable load site; nothing to index
	}
	e := &p.table[pc&(rptEntries-1)]
	if !e.valid || e.pc != pc {
		*e = rptEntry{pc: pc, lastAddr: addr, state: rptInitial, valid: true}
		p.stats.Allocs++
		return
	}
	d := int64(addr) - int64(e.lastAddr)
	e.lastAddr = addr
	correct := d == e.stride
	switch e.state {
	case rptInitial:
		if correct {
			e.state = rptSteady
		} else {
			e.stride = d
			e.state = rptTransient
		}
	case rptTransient:
		if correct {
			e.state = rptSteady
		} else {
			e.stride = d
			e.state = rptNoPred
		}
	case rptSteady:
		if !correct {
			e.state = rptInitial
		}
	case rptNoPred:
		if correct {
			e.state = rptTransient
		} else {
			e.stride = d
		}
	}
	if correct {
		p.stats.Hits++
	}
	if e.state == rptSteady && e.stride != 0 {
		// Predict the next byte address; prefetching is still per line, so
		// a sub-line stride that stays on the current line is covered by
		// the demand fetch already in flight.
		predLine := (int64(addr) + e.stride) >> p.port.LineShift()
		if predLine == int64(addr>>p.port.LineShift()) {
			p.stats.Suppressed++
		} else {
			issueHW(p.port, &p.stats, predLine, addr>>p.port.PageShift(), now)
		}
	}
}

func (p *ipstridePrefetcher) Reset() {
	p.table = [rptEntries]rptEntry{}
	p.stats = HWStats{}
}

func (p *ipstridePrefetcher) Stats() HWStats { return p.stats }
func (p *ipstridePrefetcher) ClearStats()    { p.stats = HWStats{} }

// ---------------------------------------------------------------------------
// tracker: a small LRU deque of per-pc trackers (after Hermes' stride
// prefetcher, SNIPPET 2): each tracker remembers the last byte address and
// last byte stride for one load site; two consecutive equal nonzero strides
// issue degree-2 prefetches along the predicted addresses. Unlike the RPT
// it has no confidence decay — capacity pressure on the deque is what
// forgets cold sites.

const (
	trackerEntries = 16
	trackerDegree  = 2
)

type trackerEntry struct {
	pc         uint64
	lastAddr   uint64
	lastStride int64 // byte stride
}

type trackerPrefetcher struct {
	port HWPort
	// deque order: front (index 0) is the eviction candidate, back is the
	// most recently used tracker.
	deque []trackerEntry
	stats HWStats
}

func newTrackerPrefetcher(port HWPort) *trackerPrefetcher {
	return &trackerPrefetcher{port: port, deque: make([]trackerEntry, 0, trackerEntries)}
}

func (p *trackerPrefetcher) Name() string { return "tracker" }

func (p *trackerPrefetcher) Train(addr, pc, now uint64) {
	p.stats.Trains++
	if pc == 0 {
		return
	}
	hit := -1
	for i := range p.deque {
		if p.deque[i].pc == pc {
			hit = i
			break
		}
	}
	if hit < 0 {
		if len(p.deque) == trackerEntries {
			copy(p.deque, p.deque[1:]) // evict the front (LRU)
			p.deque = p.deque[:trackerEntries-1]
		}
		p.deque = append(p.deque, trackerEntry{pc: pc, lastAddr: addr})
		p.stats.Allocs++
		return
	}
	t := p.deque[hit]
	// Move the matched tracker to the back (MRU).
	copy(p.deque[hit:], p.deque[hit+1:])
	p.deque[len(p.deque)-1] = t
	t2 := &p.deque[len(p.deque)-1]
	stride := int64(addr) - int64(t.lastAddr)
	t2.lastAddr = addr
	if stride != 0 && stride == t.lastStride {
		p.stats.Hits++
		page := addr >> p.port.PageShift()
		line := int64(addr >> p.port.LineShift())
		// Walk the predicted byte addresses; per-line fetch means a target
		// still on a previously covered line is counted suppressed (the
		// ProbeL2 check in issueHW dedupes the just-filled ones).
		prev := line
		for i := int64(1); i <= trackerDegree; i++ {
			tl := (int64(addr) + i*stride) >> p.port.LineShift()
			if tl == prev {
				p.stats.Suppressed++
				continue
			}
			issueHW(p.port, &p.stats, tl, page, now)
			prev = tl
		}
	}
	t2.lastStride = stride
}

func (p *trackerPrefetcher) Reset() {
	p.deque = p.deque[:0]
	p.stats = HWStats{}
}

func (p *trackerPrefetcher) Stats() HWStats { return p.stats }
func (p *trackerPrefetcher) ClearStats()    { p.stats = HWStats{} }

// ---------------------------------------------------------------------------
// multistride: compound-pattern detection after Blom et al. 2024
// ("Multi-Strided Access Patterns to Boost Hardware Prefetching"): a
// per-pc ring of recent line deltas is scanned for a periodic pattern of
// period 1..4 (each period seen at least twice); on detection the next
// period's deltas are replayed ahead of the access, covering loops that
// alternate between several constant strides (e.g. row-walks with a
// gap every k elements) that defeat single-stride units.

const (
	msEntries   = 32 // direct-mapped by pc
	msHistory   = 8  // delta ring depth
	msMaxPeriod = 4
)

type msEntry struct {
	pc       uint64
	lastLine uint64
	deltas   [msHistory]int64
	n        int // deltas recorded (saturates at msHistory)
	valid    bool
}

type multistridePrefetcher struct {
	port  HWPort
	table [msEntries]msEntry
	stats HWStats
}

func (p *multistridePrefetcher) Name() string { return "multistride" }

func (p *multistridePrefetcher) Train(addr, pc, now uint64) {
	p.stats.Trains++
	if pc == 0 {
		return
	}
	line := addr >> p.port.LineShift()
	e := &p.table[pc&(msEntries-1)]
	if !e.valid || e.pc != pc {
		*e = msEntry{pc: pc, lastLine: line, valid: true}
		p.stats.Allocs++
		return
	}
	d := int64(line) - int64(e.lastLine)
	e.lastLine = line
	// Shift the delta ring (newest at the end).
	copy(e.deltas[:], e.deltas[1:])
	e.deltas[msHistory-1] = d
	if e.n < msHistory {
		e.n++
	}
	period := e.period()
	if period == 0 {
		return
	}
	p.stats.Hits++
	// Replay the next period of deltas ahead of the current line.
	page := addr >> p.port.PageShift()
	next := int64(line)
	for i := 0; i < period; i++ {
		next += e.deltas[msHistory-period+i]
		issueHW(p.port, &p.stats, next, page, now)
	}
}

// period returns the shortest period p in 1..msMaxPeriod such that the
// last 2p recorded deltas are p-periodic and not all zero, or 0 when no
// compound pattern is established.
func (e *msEntry) period() int {
	for p := 1; p <= msMaxPeriod; p++ {
		if e.n < 2*p {
			return 0 // longer periods need history we don't have yet
		}
		periodic := true
		nonzero := false
		for i := msHistory - p; i < msHistory; i++ {
			if e.deltas[i] != e.deltas[i-p] {
				periodic = false
				break
			}
			if e.deltas[i] != 0 {
				nonzero = true
			}
		}
		if periodic && nonzero {
			return p
		}
	}
	return 0
}

func (p *multistridePrefetcher) Reset() {
	p.table = [msEntries]msEntry{}
	p.stats = HWStats{}
}

func (p *multistridePrefetcher) Stats() HWStats { return p.stats }
func (p *multistridePrefetcher) ClearStats()    { p.stats = HWStats{} }
