package memsim

import (
	"testing"

	"strider/internal/arch"
)

// TestHotPathZeroAllocs pins the allocation-free property of the
// simulation hot path: after construction, Load/Store/Prefetch perform no
// Go heap allocations regardless of hit/miss mix — all cache, TLB, stream,
// and in-flight state is preallocated in New.
func TestHotPathZeroAllocs(t *testing.T) {
	for _, m := range arch.Machines() {
		t.Run(m.Name, func(t *testing.T) {
			mem := New(m)
			var now uint64
			addr := uint32(64)
			allocs := testing.AllocsPerRun(5, func() {
				for i := 0; i < 10_000; i++ {
					now += mem.Load(addr, 4, now)
					if i%4 == 0 {
						now += mem.Store(addr+16, 4, now)
					}
					if i%8 == 0 {
						mem.Prefetch(addr+512, i%16 == 0, now)
					}
					addr += 72
					if addr >= 1<<22 {
						addr = 64
					}
				}
			})
			if allocs != 0 {
				t.Errorf("hot path allocates %.1f objects/run, want 0", allocs)
			}
		})
	}
}
