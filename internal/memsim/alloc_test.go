package memsim

import (
	"testing"

	"strider/internal/arch"
)

// TestHotPathZeroAllocs pins the allocation-free property of the
// simulation hot path: after construction, Load/Store/Prefetch perform no
// Go heap allocations regardless of hit/miss mix — all cache, TLB,
// hardware-prefetcher, and in-flight state is preallocated in New. Every
// hardware model is covered: each trainer runs on the L1-miss path, so an
// allocating trainer would tax every simulated miss.
func TestHotPathZeroAllocs(t *testing.T) {
	for _, base := range arch.Machines() {
		for _, hw := range HWModels() {
			m := *base
			m.HWPrefetcher = hw
			t.Run(m.Name+"/"+hw, func(t *testing.T) {
				mem := New(&m)
				var now uint64
				addr := uint32(64)
				allocs := testing.AllocsPerRun(5, func() {
					for i := 0; i < 10_000; i++ {
						now += mem.LoadAt(addr, 4, now, uint64(i%7))
						if i%4 == 0 {
							now += mem.Store(addr+16, 4, now)
						}
						if i%8 == 0 {
							mem.Prefetch(addr+512, i%16 == 0, now)
						}
						addr += 72
						if addr >= 1<<22 {
							addr = 64
						}
					}
				})
				if allocs != 0 {
					t.Errorf("hot path allocates %.1f objects/run, want 0", allocs)
				}
			})
		}
	}
}
