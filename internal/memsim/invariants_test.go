// Tests for the runtime invariant layer the differential suite leans on:
// the fill-time inclusion self-check and the counter-algebra check.
package memsim

import (
	"strings"
	"testing"

	"strider/internal/arch"
)

// driveMixed runs a deterministic mixed access stream: strided and
// pointer-ish loads, stores, guarded and unguarded prefetches.
func driveMixed(mem *Memory) {
	now := uint64(0)
	seed := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < 20_000; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		addr := uint32(16 + (seed>>33)%(1<<22))
		switch i % 5 {
		case 0, 1:
			now += mem.Load(addr, 4, now)
		case 2:
			now += mem.Store(addr, 4, now)
		case 3:
			mem.Prefetch(addr^0x40, i%2 == 0, now)
		case 4:
			now += mem.Load(addr&^63, 8, now)
		}
		now++
	}
}

func TestSelfCheckCleanOnBothMachines(t *testing.T) {
	for _, m := range arch.Machines() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			mem := New(m)
			mem.EnableSelfCheck()
			driveMixed(mem)
			if v := mem.Violations(); len(v) > 0 {
				t.Fatalf("self-check violations: %v", v)
			}
			if v := mem.CheckInvariants(); len(v) > 0 {
				t.Fatalf("invariant violations: %v", v)
			}
			// Reset keeps diagnostics but must leave a consistent machine.
			mem.Reset()
			driveMixed(mem)
			if v := append(mem.Violations(), mem.CheckInvariants()...); len(v) > 0 {
				t.Fatalf("post-reset violations: %v", v)
			}
		})
	}
}

// TestSelfCheckDetectsInclusionBreak corrupts the hierarchy directly: an
// L1 fill without the L2 copy must be flagged, and only when enabled.
func TestSelfCheckDetectsInclusionBreak(t *testing.T) {
	mem := New(arch.AthlonMP())
	mem.fillL1(1<<18, 0) // silent: self-check off
	if len(mem.Violations()) != 0 {
		t.Fatalf("violations recorded while disabled: %v", mem.Violations())
	}
	mem.EnableSelfCheck()
	mem.fillL1(1<<19, 0)
	v := mem.Violations()
	if len(v) != 1 || !strings.Contains(v[0], "inclusion") {
		t.Fatalf("violations = %v, want one inclusion break", v)
	}
}

// TestCheckInvariantsDetectsCorruption tampers with each counter relation
// and expects the matching violation.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Memory)
		want string
	}{
		{"l1>loads", func(m *Memory) { m.C.Loads = 5; m.C.L1LoadMisses = 6 }, "L1 load misses"},
		{"l2>l1", func(m *Memory) { m.C.L1LoadMisses = 1; m.C.L2LoadMisses = 2 }, "L2 load misses"},
		{"dtlb>loads", func(m *Memory) { m.C.DTLBLoadMisses = 1 }, "DTLB load misses"},
		{"l1s>stores", func(m *Memory) { m.C.L1StoreMisses = 1 }, "L1 store misses"},
		{"l2s>l1s", func(m *Memory) { m.C.L1StoreMisses = 0; m.C.L2StoreMisses = 3; m.C.Stores = 0 }, "L2 store misses"},
		{"dtlbs>stores", func(m *Memory) { m.C.DTLBStoreMisses = 2 }, "DTLB store misses"},
		{"guarded>issued", func(m *Memory) { m.C.PrefetchesGuarded = 1 }, "guarded prefetches"},
		{"outcomes>issued", func(m *Memory) { m.C.PrefetchesDropped = 1; m.C.PrefetchesUseless = 1 }, "dropped"},
		{"load stall high", func(m *Memory) { m.C.Loads = 1; m.C.LoadStallCycles = 1 << 40 }, "load stall cycles"},
		{"load stall low", func(m *Memory) { m.C.Loads = 100; m.C.LoadStallCycles = 0 }, "below"},
		{"store stall high", func(m *Memory) { m.C.Stores = 1; m.C.StoreStallCycles = 1 << 40 }, "store stall cycles"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mem := New(arch.Pentium4())
			tc.mut(mem)
			v := mem.CheckInvariants()
			if len(v) == 0 {
				t.Fatalf("corruption not detected")
			}
			found := false
			for _, s := range v {
				if strings.Contains(s, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("violations %v do not mention %q", v, tc.want)
			}
		})
	}
	// And a healthy machine reports nothing.
	if v := New(arch.Pentium4()).CheckInvariants(); len(v) != 0 {
		t.Fatalf("fresh machine violates: %v", v)
	}
}
