package heap

import (
	"testing"

	"strider/internal/classfile"
	"strider/internal/value"
)

func benchUniverse() (*classfile.Universe, *classfile.Class) {
	u := classfile.NewUniverse()
	node := u.MustDefineClass("Node", nil,
		classfile.FieldSpec{Name: "val", Kind: value.KindInt},
		classfile.FieldSpec{Name: "next", Kind: value.KindRef},
	)
	return u, node
}

func BenchmarkAllocObject(b *testing.B) {
	u, node := benchUniverse()
	h := New(64<<20, u)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.AllocObject(node); err != nil {
			h.Reset()
		}
	}
}

func BenchmarkCollectCompacting(b *testing.B) {
	u, node := benchUniverse()
	fNext := node.FieldByName("next")
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := New(8<<20, u)
		var head uint32
		for k := 0; k < 20000; k++ {
			a, _ := h.AllocObject(node)
			h.Store4(a+fNext.Offset, head)
			head = a
			h.AllocArray(value.KindInt, 4) // garbage
		}
		root := value.Ref(head)
		b.StartTimer()
		h.Collect(func(visit func(*value.Value)) { visit(&root) })
	}
}
