package heap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"strider/internal/classfile"
	"strider/internal/value"
)

func testUniverse(t *testing.T) (*classfile.Universe, *classfile.Class) {
	t.Helper()
	u := classfile.NewUniverse()
	node := u.MustDefineClass("Node", nil,
		classfile.FieldSpec{Name: "val", Kind: value.KindInt},
		classfile.FieldSpec{Name: "next", Kind: value.KindRef},
	)
	return u, node
}

func TestAllocObject(t *testing.T) {
	u, node := testUniverse(t)
	h := New(1<<20, u)
	a, err := h.AllocObject(node)
	if err != nil {
		t.Fatal(err)
	}
	if a == 0 {
		t.Fatal("allocated at null")
	}
	if h.ClassOf(a) != node {
		t.Error("header class wrong")
	}
	if h.ObjectSize(a) != node.InstanceSize {
		t.Error("object size wrong")
	}
	// Consecutive allocations are contiguous (the property strides rely on).
	b, _ := h.AllocObject(node)
	if b != a+node.InstanceSize {
		t.Errorf("bump allocation not contiguous: %#x then %#x", a, b)
	}
}

func TestAllocArray(t *testing.T) {
	u, _ := testUniverse(t)
	h := New(1<<20, u)
	a, err := h.AllocArray(value.KindInt, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.ArrayLen(a) != 10 {
		t.Errorf("array len = %d", h.ArrayLen(a))
	}
	if !h.ClassOf(a).IsArray {
		t.Error("array class flag lost")
	}
	if h.ElemAddr(a, 3) != a+classfile.HeaderBytes+12 {
		t.Error("ElemAddr wrong")
	}
	for i := uint32(0); i < 10; i++ {
		if h.Load4(h.ElemAddr(a, i)) != 0 {
			t.Fatal("array not zeroed")
		}
	}
}

func TestLoadStoreRoundtrip(t *testing.T) {
	u, _ := testUniverse(t)
	h := New(1<<16, u)
	a, _ := h.AllocArray(value.KindLong, 4)
	h.Store4(a+classfile.HeaderBytes, 0xDEADBEEF)
	if h.Load4(a+classfile.HeaderBytes) != 0xDEADBEEF {
		t.Error("Store4/Load4 roundtrip failed")
	}
	h.Store8(a+classfile.HeaderBytes+8, 0x0123456789ABCDEF)
	if h.Load8(a+classfile.HeaderBytes+8) != 0x0123456789ABCDEF {
		t.Error("Store8/Load8 roundtrip failed")
	}
}

func TestValid(t *testing.T) {
	u, _ := testUniverse(t)
	h := New(1<<12, u)
	if h.Valid(0, 4) {
		t.Error("null page must be invalid")
	}
	if h.Valid(h.Size()-2, 4) {
		t.Error("out-of-bounds range must be invalid")
	}
	if !h.Valid(16, 4) {
		t.Error("heap base must be valid")
	}
}

func TestOutOfMemory(t *testing.T) {
	u, node := testUniverse(t)
	h := New(1024, u)
	var err error
	for i := 0; i < 100; i++ {
		if _, err = h.AllocObject(node); err != nil {
			break
		}
	}
	if err != ErrOutOfMemory {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
}

// buildList allocates a linked list of n nodes and returns the head.
func buildList(t *testing.T, h *Heap, node *classfile.Class, n int) uint32 {
	t.Helper()
	fVal := node.FieldByName("val")
	fNext := node.FieldByName("next")
	var head uint32
	for i := 0; i < n; i++ {
		a, err := h.AllocObject(node)
		if err != nil {
			t.Fatal(err)
		}
		h.Store4(a+fVal.Offset, uint32(i))
		h.Store4(a+fNext.Offset, head)
		head = a
	}
	return head
}

func listVals(h *Heap, node *classfile.Class, head uint32) []uint32 {
	fVal := node.FieldByName("val")
	fNext := node.FieldByName("next")
	var out []uint32
	for a := head; a != 0; a = h.Load4(a + fNext.Offset) {
		out = append(out, h.Load4(a+fVal.Offset))
	}
	return out
}

func TestGCPreservesLiveGraph(t *testing.T) {
	u, node := testUniverse(t)
	h := New(1<<20, u)

	head := value.Ref(buildList(t, h, node, 50))
	// Garbage between and after.
	for i := 0; i < 100; i++ {
		if _, err := h.AllocArray(value.KindInt, 8); err != nil {
			t.Fatal(err)
		}
	}
	before := listVals(h, node, head.Ref())

	live := h.Collect(func(visit func(*value.Value)) { visit(&head) })
	if live == 0 {
		t.Fatal("no live bytes after GC with live roots")
	}
	after := listVals(h, node, head.Ref())
	if len(after) != len(before) {
		t.Fatalf("list length changed: %d -> %d", len(before), len(after))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("list content changed at %d", i)
		}
	}
	if h.Stats().Collections != 1 {
		t.Error("collection not counted")
	}
}

func TestGCReclaimsGarbage(t *testing.T) {
	u, node := testUniverse(t)
	h := New(1<<16, u)
	head := value.Ref(buildList(t, h, node, 10))
	for i := 0; i < 50; i++ {
		h.AllocArray(value.KindInt, 16)
	}
	topBefore := h.Top()
	h.Collect(func(visit func(*value.Value)) { visit(&head) })
	if h.Top() >= topBefore {
		t.Errorf("compaction did not reclaim: top %d -> %d", topBefore, h.Top())
	}
	// All live objects now packed at the bottom.
	want := uint64(10 * node.InstanceSize)
	if h.Stats().LiveAfterLast != want {
		t.Errorf("live bytes = %d, want %d", h.Stats().LiveAfterLast, want)
	}
}

func TestSlidingCompactionPreservesOrderAndStrides(t *testing.T) {
	// The property the paper relies on (Sec. 4): sliding compaction does
	// not change the relative order of live objects, so equal-sized
	// co-allocated objects keep constant strides after GC.
	u, node := testUniverse(t)
	h := New(1<<20, u)

	var addrs []value.Value
	for i := 0; i < 40; i++ {
		a, _ := h.AllocObject(node)
		addrs = append(addrs, value.Ref(a))
		// interleaved garbage of varying size
		h.AllocArray(value.KindInt, uint32(1+i%7))
	}
	h.Collect(func(visit func(*value.Value)) {
		for i := range addrs {
			visit(&addrs[i])
		}
	})
	stride := int64(addrs[1].Ref()) - int64(addrs[0].Ref())
	if stride != int64(node.InstanceSize) {
		t.Errorf("post-GC stride = %d, want %d", stride, node.InstanceSize)
	}
	for i := 1; i < len(addrs); i++ {
		d := int64(addrs[i].Ref()) - int64(addrs[i-1].Ref())
		if d != stride {
			t.Fatalf("stride broken at %d: %d vs %d", i, d, stride)
		}
	}
}

func TestGCUpdatesInteriorReferences(t *testing.T) {
	u, node := testUniverse(t)
	h := New(1<<20, u)
	fNext := node.FieldByName("next")

	// a -> b with garbage between them.
	b, _ := h.AllocObject(node)
	h.AllocArray(value.KindInt, 32)
	a, _ := h.AllocObject(node)
	h.Store4(a+fNext.Offset, b)
	root := value.Ref(a)
	h.Collect(func(visit func(*value.Value)) { visit(&root) })
	na := root.Ref()
	nb := h.Load4(na + fNext.Offset)
	if h.ClassOf(nb) != node {
		t.Fatal("interior reference not updated to moved object")
	}
	if h.Load4(nb+fNext.Offset) != 0 {
		t.Error("b.next should still be null")
	}
}

func TestGCRefArrays(t *testing.T) {
	u, node := testUniverse(t)
	h := New(1<<20, u)
	arr, _ := h.AllocArray(value.KindRef, 5)
	for i := uint32(0); i < 5; i++ {
		h.AllocArray(value.KindInt, 3) // garbage
		o, _ := h.AllocObject(node)
		h.Store4(o+node.FieldByName("val").Offset, i+100)
		h.Store4(h.ElemAddr(arr, i), o)
	}
	root := value.Ref(arr)
	h.Collect(func(visit func(*value.Value)) { visit(&root) })
	for i := uint32(0); i < 5; i++ {
		o := h.Load4(h.ElemAddr(root.Ref(), i))
		if got := h.Load4(o + node.FieldByName("val").Offset); got != i+100 {
			t.Fatalf("element %d lost: val=%d", i, got)
		}
	}
}

func TestGCStaticsAsRoots(t *testing.T) {
	u := classfile.NewUniverse()
	node := u.MustDefineClass("Node", nil,
		classfile.FieldSpec{Name: "val", Kind: value.KindInt},
		classfile.FieldSpec{Name: "next", Kind: value.KindRef},
		classfile.FieldSpec{Name: "theHead", Kind: value.KindRef, Static: true},
	)
	h := New(1<<16, u)
	o, _ := h.AllocObject(node)
	h.Store4(o+node.FieldByName("val").Offset, 77)
	u.SetStatic(node.FieldByName("theHead"), value.Ref(o))
	h.Collect(func(func(*value.Value)) {}) // no frame roots
	no := u.GetStatic(node.FieldByName("theHead"))
	if no.IsNull() {
		t.Fatal("static root dropped")
	}
	if h.Load4(no.Ref()+node.FieldByName("val").Offset) != 77 {
		t.Error("static-rooted object corrupted")
	}
}

func TestFreeListMode(t *testing.T) {
	u, node := testUniverse(t)
	h := New(1<<16, u)
	h.SetGCMode(GCMarkSweepFreeList)

	// Live survivors with garbage between them.
	var roots []value.Value
	for i := 0; i < 10; i++ {
		o, _ := h.AllocObject(node)
		roots = append(roots, value.Ref(o))
		h.AllocArray(value.KindInt, 8)
	}
	positions := make([]uint32, len(roots))
	for i := range roots {
		positions[i] = roots[i].Ref()
	}
	h.Collect(func(visit func(*value.Value)) {
		for i := range roots {
			visit(&roots[i])
		}
	})
	// Non-moving: survivors keep their addresses.
	for i := range roots {
		if roots[i].Ref() != positions[i] {
			t.Fatal("free-list GC must not move objects")
		}
	}
	// New allocations reuse the holes (addresses below the old top).
	topBefore := h.Top()
	o, err := h.AllocArray(value.KindInt, 8)
	if err != nil {
		t.Fatal(err)
	}
	if o >= topBefore {
		t.Errorf("allocation at %#x did not reuse a hole below %#x", o, topBefore)
	}
	// Heap walk must remain well-formed over filler spans.
	count := 0
	h.Walk(func(addr, size uint32, c *classfile.Class) bool {
		count++
		return true
	})
	if count == 0 {
		t.Error("walk found nothing")
	}
}

func TestReset(t *testing.T) {
	u, node := testUniverse(t)
	h := New(1<<16, u)
	h.AllocObject(node)
	h.Reset()
	if h.Top() != 16 {
		t.Error("Reset must rewind the bump pointer")
	}
	if h.Stats().Allocations != 0 {
		t.Error("Reset must clear stats")
	}
}

// Property: after building a random object forest and collecting with a
// random subset as roots, every rooted value is reachable with identical
// content, and live bytes equal the traced closure's size.
func TestQuickGCPreservesReachableContent(t *testing.T) {
	u, node := testUniverse(t)
	fVal := node.FieldByName("val")
	fNext := node.FieldByName("next")

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(1<<20, u)
		n := 20 + rng.Intn(60)
		addrs := make([]uint32, n)
		for i := 0; i < n; i++ {
			a, err := h.AllocObject(node)
			if err != nil {
				return false
			}
			h.Store4(a+fVal.Offset, uint32(i)*3+1)
			if i > 0 && rng.Intn(2) == 0 {
				h.Store4(a+fNext.Offset, addrs[rng.Intn(i)])
			}
			addrs[i] = a
			if rng.Intn(3) == 0 {
				h.AllocArray(value.KindInt, uint32(rng.Intn(16)))
			}
		}
		// Pick root subset.
		var roots []value.Value
		for _, a := range addrs {
			if rng.Intn(3) == 0 {
				roots = append(roots, value.Ref(a))
			}
		}
		// Record expected val sequences per root (follow next chains).
		chase := func(start uint32) []uint32 {
			var out []uint32
			for a, steps := start, 0; a != 0 && steps < 1000; steps++ {
				out = append(out, h.Load4(a+fVal.Offset))
				a = h.Load4(a + fNext.Offset)
			}
			return out
		}
		var want [][]uint32
		for _, r := range roots {
			want = append(want, chase(r.Ref()))
		}
		h.Collect(func(visit func(*value.Value)) {
			for i := range roots {
				visit(&roots[i])
			}
		})
		for i, r := range roots {
			got := chase(r.Ref())
			if len(got) != len(want[i]) {
				return false
			}
			for j := range got {
				if got[j] != want[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
