// Package heap implements the simulated Java-style heap: a flat
// byte-addressable memory with bump allocation and a mark-and-sweep garbage
// collector using sliding compaction.
//
// Sliding compaction preserves the relative order (and, for equal-sized
// co-allocated objects, the relative distances) of live objects — the
// property the paper relies on: "Live objects are packed by sliding
// compaction, which does not change their internal order on the heap. Thus,
// the garbage collector usually preserves constant strides among the live
// objects." (Sec. 4). A non-compacting mode exists for the ablation bench.
//
// Addresses are 32-bit offsets into the heap; 0 is the null reference. The
// first allocation starts at 16 so that no object overlaps address 0.
package heap

import (
	"errors"
	"fmt"

	"strider/internal/classfile"
	"strider/internal/value"
)

// ErrOutOfMemory is returned when an allocation cannot be satisfied even
// after a GC would run.
var ErrOutOfMemory = errors.New("heap: out of memory")

const heapBase = 16 // first object address; 0..15 reserved (null page)

// GCMode selects the collector behaviour.
type GCMode uint8

// GC modes.
const (
	// GCSlidingCompact is the paper's collector: mark, then slide live
	// objects toward the heap base preserving order.
	GCSlidingCompact GCMode = iota
	// GCMarkSweepFreeList marks, then rebuilds a free list without moving
	// objects. Used by the compaction ablation: allocation order — and
	// hence stride patterns — degrade as the heap fragments.
	GCMarkSweepFreeList
)

// Stats accumulates allocator and collector counters.
type Stats struct {
	Allocations   uint64
	BytesAlloc    uint64
	Collections   uint64
	LiveAfterLast uint64
	Moved         uint64
}

// Heap is a simulated heap.
//
// The backing store is materialized lazily: `size` is the configured
// (logical) capacity — the address space Valid accepts and allocation is
// bounded by — while `mem` holds only the physically-touched prefix and
// grows on demand. Most workloads configure tens of megabytes and touch a
// fraction of them, so eagerly zeroing the full capacity on New/Reset
// dominated VM construction cost. Reads of valid-but-untouched addresses
// (the guarded speculative loads of Sec. 3.3 can reach any heap address)
// return zero, exactly as the eagerly-zeroed backing did.
type Heap struct {
	mem      []byte
	size     uint32 // logical capacity; len(mem) <= size
	top      uint32 // bump pointer (next free address in compact mode)
	hwm      uint32 // high-water mark of top: the dirty prefix Reset zeroes
	universe *classfile.Universe
	mode     GCMode
	stats    Stats

	// free list for GCMarkSweepFreeList mode: sorted, coalesced spans.
	free []span

	// marks is a side bitmap, one bit per 8 heap bytes (physical prefix).
	marks []uint64

	// markStack is the mark-phase worklist, reused across collections.
	markStack []uint32
}

type span struct{ addr, size uint32 }

// initialPhys bounds the physical backing allocated up front.
const initialPhys = 1 << 20

// New creates a heap of the given size bound to a class universe.
func New(size uint32, u *classfile.Universe) *Heap {
	if size < 1024 {
		size = 1024
	}
	size = (size + 7) &^ 7
	phys := size
	if phys > initialPhys {
		phys = initialPhys
	}
	return &Heap{
		mem:      make([]byte, phys),
		size:     size,
		top:      heapBase,
		hwm:      heapBase,
		universe: u,
		marks:    make([]uint64, (phys/8+63)/64),
	}
}

// ensure grows the physical backing to cover at least `need` bytes.
// Growth doubles (bounded by the logical size) to amortize the copy; the
// fresh tail make() returns is already zero, preserving the all-zero
// invariant for never-allocated memory.
func (h *Heap) ensure(need uint64) {
	if need <= uint64(len(h.mem)) {
		return
	}
	phys := uint64(len(h.mem))
	for phys < need {
		phys *= 2
	}
	if phys > uint64(h.size) {
		phys = uint64(h.size)
	}
	mem := make([]byte, phys)
	copy(mem, h.mem)
	h.mem = mem
	marks := make([]uint64, (phys/8+63)/64)
	copy(marks, h.marks)
	h.marks = marks
}

// SetGCMode selects the collector (default GCSlidingCompact).
func (h *Heap) SetGCMode(m GCMode) { h.mode = m }

// Size returns the heap capacity in bytes.
func (h *Heap) Size() uint32 { return h.size }

// Top returns the bump pointer (useful in tests).
func (h *Heap) Top() uint32 { return h.top }

// Stats returns a copy of the accumulated statistics.
func (h *Heap) Stats() Stats { return h.stats }

// Universe returns the bound class universe.
func (h *Heap) Universe() *classfile.Universe { return h.universe }

// Reset discards all objects and statistics. Only the dirty prefix (up to
// the allocation high-water mark) is re-zeroed; memory beyond it was never
// written.
func (h *Heap) Reset() {
	b := h.mem[:h.hwm]
	for i := range b {
		b[i] = 0
	}
	h.top = heapBase
	h.hwm = heapBase
	h.free = h.free[:0]
	h.stats = Stats{}
}

// --- raw access -----------------------------------------------------------

// Valid reports whether [addr, addr+size) lies within the heap's logical
// address space (which may extend beyond the materialized backing).
func (h *Heap) Valid(addr, size uint32) bool {
	return addr >= heapBase && uint64(addr)+uint64(size) <= uint64(h.size)
}

// Load4 reads a 32-bit little-endian word. Valid addresses beyond the
// materialized backing read as zero — they have never been written.
func (h *Heap) Load4(addr uint32) uint32 {
	if uint64(addr)+4 > uint64(len(h.mem)) {
		return 0
	}
	b := h.mem[addr : addr+4 : addr+4]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Store4 writes a 32-bit little-endian word, materializing backing as
// needed (stores normally land inside allocated objects, which allocRaw
// already materialized).
func (h *Heap) Store4(addr uint32, v uint32) {
	if uint64(addr)+4 > uint64(len(h.mem)) {
		h.ensure(uint64(addr) + 4)
	}
	if addr+4 > h.hwm {
		h.hwm = addr + 4
	}
	b := h.mem[addr : addr+4 : addr+4]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// Load8 reads a 64-bit little-endian word.
func (h *Heap) Load8(addr uint32) uint64 {
	return uint64(h.Load4(addr)) | uint64(h.Load4(addr+4))<<32
}

// Store8 writes a 64-bit little-endian word.
func (h *Heap) Store8(addr uint32, v uint64) {
	h.Store4(addr, uint32(v))
	h.Store4(addr+4, uint32(v>>32))
}

// --- object model ---------------------------------------------------------

// ClassOf returns the class of the object at addr.
func (h *Heap) ClassOf(addr uint32) *classfile.Class {
	return h.universe.ByID(h.Load4(addr + classfile.ClassIDOffset))
}

// ArrayLen returns the length of the array object at addr.
func (h *Heap) ArrayLen(addr uint32) uint32 { return h.Load4(addr + classfile.AuxOffset) }

// ObjectSize returns the total heap size of the object at addr.
func (h *Heap) ObjectSize(addr uint32) uint32 {
	c := h.ClassOf(addr)
	if c == nil {
		panic(fmt.Sprintf("heap: no class for object at 0x%x", addr))
	}
	if c.IsArray {
		return c.ArraySize(h.ArrayLen(addr))
	}
	return c.InstanceSize
}

// ElemAddr returns the address of element i of the array at addr.
// It does not bounds-check; callers do.
func (h *Heap) ElemAddr(arr uint32, i uint32) uint32 {
	c := h.ClassOf(arr)
	return arr + classfile.HeaderBytes + i*c.ElemSize
}

// --- allocation -----------------------------------------------------------

// AllocObject allocates a zeroed instance of class c.
func (h *Heap) AllocObject(c *classfile.Class) (uint32, error) {
	if c.IsArray {
		return 0, fmt.Errorf("heap: AllocObject on array class %s", c.Name)
	}
	addr, err := h.allocRaw(c.InstanceSize)
	if err != nil {
		return 0, err
	}
	h.Store4(addr+classfile.ClassIDOffset, c.ID)
	return addr, nil
}

// AllocArray allocates a zeroed array of the given element kind and length.
func (h *Heap) AllocArray(elem value.Kind, length uint32) (uint32, error) {
	c := h.universe.ArrayClass(elem)
	size := c.ArraySize(length)
	addr, err := h.allocRaw(size)
	if err != nil {
		return 0, err
	}
	h.Store4(addr+classfile.ClassIDOffset, c.ID)
	h.Store4(addr+classfile.AuxOffset, length)
	return addr, nil
}

func (h *Heap) allocRaw(size uint32) (uint32, error) {
	if size == 0 || size&7 != 0 {
		return 0, fmt.Errorf("heap: bad allocation size %d", size)
	}
	// Free-list mode: first fit. A span is only split when the remainder
	// can hold a filler header (>= HeaderBytes), so the linear heap walk
	// stays well-formed.
	if h.mode == GCMarkSweepFreeList {
		for i, s := range h.free {
			switch {
			case s.size == size:
				h.free = append(h.free[:i], h.free[i+1:]...)
			case s.size >= size+classfile.HeaderBytes:
				rest := span{s.addr + size, s.size - size}
				h.free[i] = rest
				h.stampFiller(rest.addr, rest.size)
			default:
				continue
			}
			h.zero(s.addr, size)
			h.stats.Allocations++
			h.stats.BytesAlloc += uint64(size)
			return s.addr, nil
		}
	}
	if uint64(h.top)+uint64(size) > uint64(h.size) {
		return 0, ErrOutOfMemory
	}
	h.ensure(uint64(h.top) + uint64(size))
	addr := h.top
	h.top += size
	if h.top > h.hwm {
		h.hwm = h.top
	}
	h.zero(addr, size)
	h.stats.Allocations++
	h.stats.BytesAlloc += uint64(size)
	return addr, nil
}

func (h *Heap) zero(addr, size uint32) {
	b := h.mem[addr : addr+size]
	for i := range b {
		b[i] = 0
	}
}

// --- garbage collection ----------------------------------------------------

// RootSet enumerates the mutator's reference slots. Each callback argument
// points at a Value the collector may read and update in place; slots whose
// kind is not KindRef are ignored.
type RootSet func(visit func(*value.Value))

func (h *Heap) mark(addr uint32) bool {
	w, b := addr/8/64, (addr/8)%64
	old := h.marks[w]
	h.marks[w] = old | 1<<b
	return old&(1<<b) != 0
}

func (h *Heap) marked(addr uint32) bool {
	w, b := addr/8/64, (addr/8)%64
	return h.marks[w]&(1<<b) != 0
}

func (h *Heap) clearMarks() {
	for i := range h.marks {
		h.marks[i] = 0
	}
}

// Collect runs a full garbage collection with the given roots. It returns
// the number of live bytes after collection.
func (h *Heap) Collect(roots RootSet) uint64 {
	h.stats.Collections++
	h.clearMarks()

	// Mark phase: iterative DFS over reference fields/elements. The
	// worklist buffer is retained on the heap across collections so a
	// steady-state mutator does not allocate to collect.
	stack := h.markStack[:0]
	defer func() { h.markStack = stack[:0] }()
	push := func(ref uint32) {
		if ref == 0 {
			return
		}
		if !h.Valid(ref, classfile.HeaderBytes) {
			panic(fmt.Sprintf("heap: root/edge to invalid address 0x%x", ref))
		}
		if !h.mark(ref) {
			stack = append(stack, ref)
		}
	}
	roots(func(v *value.Value) {
		if v.K == value.KindRef {
			push(v.Ref())
		}
	})
	h.universe.StaticRoots(func(v *value.Value) { push(v.Ref()) })
	for len(stack) > 0 {
		obj := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c := h.ClassOf(obj)
		if c == nil {
			panic(fmt.Sprintf("heap: marked object at 0x%x has no class", obj))
		}
		if c.IsArray {
			if c.Elem == value.KindRef {
				n := h.ArrayLen(obj)
				base := obj + classfile.HeaderBytes
				for i := uint32(0); i < n; i++ {
					push(h.Load4(base + i*4))
				}
			}
			continue
		}
		for _, off := range c.RefOffsets {
			push(h.Load4(obj + off))
		}
	}

	if h.mode == GCMarkSweepFreeList {
		return h.sweepFreeList(roots)
	}
	return h.slideCompact(roots)
}

// slideCompact implements LISP-2 sliding compaction: compute forwarding
// addresses in the fwd header word, update all references, then move.
func (h *Heap) slideCompact(roots RootSet) uint64 {
	// Pass 1: forwarding addresses in allocation order.
	newTop := uint32(heapBase)
	for addr := uint32(heapBase); addr < h.top; {
		size := h.ObjectSize(addr)
		if h.marked(addr) {
			h.Store4(addr+classfile.FwdOffset, newTop)
			newTop += size
		}
		addr += size
	}

	fwd := func(ref uint32) uint32 {
		if ref == 0 {
			return 0
		}
		return h.Load4(ref + classfile.FwdOffset)
	}

	// Pass 2: update roots, statics, and heap references.
	roots(func(v *value.Value) {
		if v.K == value.KindRef && v.B != 0 {
			*v = value.Ref(fwd(v.Ref()))
		}
	})
	h.universe.StaticRoots(func(v *value.Value) {
		if v.B != 0 {
			*v = value.Ref(fwd(v.Ref()))
		}
	})
	for addr := uint32(heapBase); addr < h.top; {
		size := h.ObjectSize(addr)
		if h.marked(addr) {
			c := h.ClassOf(addr)
			if c.IsArray {
				if c.Elem == value.KindRef {
					n := h.ArrayLen(addr)
					base := addr + classfile.HeaderBytes
					for i := uint32(0); i < n; i++ {
						h.Store4(base+i*4, fwd(h.Load4(base+i*4)))
					}
				}
			} else {
				for _, off := range c.RefOffsets {
					h.Store4(addr+off, fwd(h.Load4(addr+off)))
				}
			}
		}
		addr += size
	}

	// Pass 3: slide. Objects move only toward lower addresses, so a
	// forward scan with copy is safe.
	live := uint64(0)
	for addr := uint32(heapBase); addr < h.top; {
		size := h.ObjectSize(addr)
		next := addr + size
		if h.marked(addr) {
			dst := h.Load4(addr + classfile.FwdOffset)
			h.Store4(addr+classfile.FwdOffset, 0)
			if dst != addr {
				copy(h.mem[dst:dst+size], h.mem[addr:addr+size])
				h.stats.Moved++
			}
			live += uint64(size)
		}
		addr = next
	}
	// Zero the reclaimed tail so stale headers cannot confuse later walks.
	h.zero(newTop, h.top-newTop)
	h.top = newTop
	h.stats.LiveAfterLast = live
	return live
}

// sweepFreeList rebuilds the free list without moving objects.
func (h *Heap) sweepFreeList(RootSet) uint64 {
	h.free = h.free[:0]
	live := uint64(0)
	var cur *span
	for addr := uint32(heapBase); addr < h.top; {
		size := h.ObjectSize(addr)
		if h.marked(addr) {
			live += uint64(size)
			cur = nil
		} else {
			if cur != nil && cur.addr+cur.size == addr {
				cur.size += size
			} else {
				h.free = append(h.free, span{addr, size})
				cur = &h.free[len(h.free)-1]
			}
			h.zero(addr, size)
			// Re-stamp a dead span header so ObjectSize keeps walking: use
			// an int[] filler of exactly this size.
			h.stampFiller(cur.addr, cur.size)
		}
		addr += size
	}
	h.stats.LiveAfterLast = live
	return live
}

// stampFiller writes an int-array header covering [addr, addr+size) so the
// linear heap walk remains well-formed over free spans.
func (h *Heap) stampFiller(addr, size uint32) {
	c := h.universe.ArrayClass(value.KindInt)
	h.Store4(addr+classfile.ClassIDOffset, c.ID)
	h.Store4(addr+classfile.AuxOffset, (size-classfile.HeaderBytes)/4)
}

// Walk calls fn for every object currently in the allocated region, in
// address order, with its address and size. Free-list filler spans are
// included (fn can identify them by class).
func (h *Heap) Walk(fn func(addr, size uint32, c *classfile.Class) bool) {
	for addr := uint32(heapBase); addr < h.top; {
		c := h.ClassOf(addr)
		if c == nil {
			panic(fmt.Sprintf("heap: walk hit headerless memory at 0x%x", addr))
		}
		size := h.ObjectSize(addr)
		if !fn(addr, size, c) {
			return
		}
		addr += size
	}
}
