package heap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"strider/internal/classfile"
	"strider/internal/value"
)

// TestFreeListSplitKeepsWalkable: carving a hole must leave a stamped
// filler for the remainder.
func TestFreeListSplitKeepsWalkable(t *testing.T) {
	u, node := testUniverse(t)
	h := New(1<<16, u)
	h.SetGCMode(GCMarkSweepFreeList)
	// One live object, one large dead array.
	o, _ := h.AllocObject(node)
	root := value.Ref(o)
	h.AllocArray(value.KindInt, 64) // 272 bytes of garbage
	h.Collect(func(visit func(*value.Value)) { visit(&root) })
	// Carve a small piece out of the hole.
	if _, err := h.AllocObject(node); err != nil {
		t.Fatal(err)
	}
	// The heap walk must still terminate and cover everything.
	seen := 0
	h.Walk(func(addr, size uint32, c *classfile.Class) bool {
		seen++
		if seen > 1000 {
			t.Fatal("walk does not terminate")
		}
		return true
	})
}

// TestFreeListTooSmallHoleSkipped: a hole that cannot hold the remainder
// filler is not split.
func TestFreeListTooSmallHoleSkipped(t *testing.T) {
	u, _ := testUniverse(t)
	h := New(4096, u)
	h.SetGCMode(GCMarkSweepFreeList)
	// Dead 24-byte array between live markers.
	a, _ := h.AllocArray(value.KindInt, 2) // 24 bytes
	_ = a
	live1, _ := h.AllocArray(value.KindInt, 4)
	r1 := value.Ref(live1)
	h.Collect(func(visit func(*value.Value)) { visit(&r1) })
	// A 16-byte allocation fits the 24-byte hole only without a filler
	// remainder (24-16=8 < HeaderBytes): the allocator must either take
	// the whole hole or bump — never corrupt the walk.
	if _, err := h.AllocObject(u.ByName("Node")); err != nil {
		// Node is 24 bytes: exact fit, must succeed from the hole.
		t.Fatal(err)
	}
	h.Walk(func(addr, size uint32, c *classfile.Class) bool { return true })
}

// Property: in free-list mode, any interleaving of allocations and
// collections keeps the heap walkable and never loses rooted data.
func TestQuickFreeListChurn(t *testing.T) {
	u, node := testUniverse(t)
	fVal := node.FieldByName("val")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(1<<16, u)
		h.SetGCMode(GCMarkSweepFreeList)
		var roots []value.Value
		var vals []uint32
		for step := 0; step < 200; step++ {
			switch rng.Intn(4) {
			case 0: // live object
				o, err := h.AllocObject(node)
				if err != nil {
					return true // heap full is acceptable
				}
				v := rng.Uint32()
				h.Store4(o+fVal.Offset, v)
				roots = append(roots, value.Ref(o))
				vals = append(vals, v)
			case 1: // garbage
				h.AllocArray(value.KindInt, uint32(rng.Intn(32)))
			case 2: // garbage object
				h.AllocObject(node)
			case 3: // collect
				h.Collect(func(visit func(*value.Value)) {
					for i := range roots {
						visit(&roots[i])
					}
				})
			}
		}
		h.Collect(func(visit func(*value.Value)) {
			for i := range roots {
				visit(&roots[i])
			}
		})
		for i, r := range roots {
			if h.Load4(r.Ref()+fVal.Offset) != vals[i] {
				return false
			}
		}
		// Walk must terminate.
		n := 0
		h.Walk(func(addr, size uint32, c *classfile.Class) bool {
			n++
			return n < 100000
		})
		return n < 100000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: sliding compaction is idempotent — collecting twice with the
// same roots moves nothing the second time.
func TestQuickCompactionIdempotent(t *testing.T) {
	u, node := testUniverse(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(1<<18, u)
		var roots []value.Value
		for i := 0; i < 50; i++ {
			o, err := h.AllocObject(node)
			if err != nil {
				return false
			}
			if rng.Intn(2) == 0 {
				roots = append(roots, value.Ref(o))
			}
			h.AllocArray(value.KindInt, uint32(rng.Intn(8)))
		}
		rs := func(visit func(*value.Value)) {
			for i := range roots {
				visit(&roots[i])
			}
		}
		h.Collect(rs)
		moved1 := h.Stats().Moved
		top1 := h.Top()
		h.Collect(rs)
		return h.Stats().Moved == moved1 && h.Top() == top1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
