package vm_test

import (
	"testing"

	"strider/internal/arch"
	"strider/internal/core/jit"
	"strider/internal/vm"
	"strider/internal/workloads"
)

// TestSteadyStateRunZeroAllocs is the hard form of the nil-Recorder
// guarantee: once the JIT has reached steady state, a full reset-and-rerun
// of a workload — the interpreter loop, the memory simulation, the GC, and
// the mixed-mode dispatcher together — performs zero Go heap allocations.
// Frame slots, register files, the GC mark stack, dispatch artifacts, and
// cache metadata are all preallocated or pooled, so simulation speed cannot
// degrade with allocator or GC pressure.
// The compiled execution tier holds the same bar: its artifacts are built
// once at JIT time and its thread state lives in Engine.ExecScratch, so
// the threaded-code loop is as allocation-free as the interpreter's.
func TestSteadyStateRunZeroAllocs(t *testing.T) {
	for _, mode := range []jit.Mode{jit.Baseline, jit.InterIntra} {
		for _, exec := range []vm.Exec{vm.ExecInterp, vm.ExecCompiled} {
			mode, exec := mode, exec
			t.Run(mode.String()+"/"+exec.String(), func(t *testing.T) {
				w, err := workloads.ByName("search")
				if err != nil {
					t.Fatal(err)
				}
				prog := w.Build(workloads.SizeSmall)
				v := vm.New(prog, vm.Config{Machine: arch.Pentium4(), Mode: mode, HeapBytes: w.HeapBytes, Exec: exec})
				// Two warmup runs: the first compiles methods as they cross the
				// invocation threshold; the second settles pooled capacities
				// (frame regs, heap high-water mark, inflight queue).
				for i := 0; i < 2; i++ {
					if _, err := v.Run(nil); err != nil {
						t.Fatal(err)
					}
					v.ResetRun()
				}
				allocs := testing.AllocsPerRun(3, func() {
					v.ResetRun()
					if _, err := v.Run(nil); err != nil {
						t.Fatal(err)
					}
				})
				if allocs != 0 {
					t.Errorf("steady-state run allocates %.1f objects/run, want 0", allocs)
				}
			})
		}
	}
}
