package vm_test

import (
	"testing"

	"strider/internal/arch"
	"strider/internal/core/jit"
	"strider/internal/vm"
	"strider/internal/workloads"
)

func runOnce(t *testing.T, name string, machine *arch.Machine, mode jit.Mode) vm.RunStats {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog := w.Build(workloads.SizeSmall)
	if err := prog.Validate(); err != nil {
		t.Fatalf("%s: invalid program: %v", name, err)
	}
	v := vm.New(prog, vm.Config{Machine: machine, Mode: mode, HeapBytes: 32 << 20})
	stats, err := v.Measure(nil, 1)
	if err != nil {
		t.Fatalf("%s/%s/%s: %v", name, machine.Name, mode, err)
	}
	return stats
}

// TestJessEndToEnd exercises the full pipeline on the paper's motivating
// example: compile with object inspection, find the patterns of Table 1,
// emit dereference-based prefetching, and preserve program semantics.
func TestJessEndToEnd(t *testing.T) {
	p4 := arch.Pentium4()
	base := runOnce(t, "jess", p4, jit.Baseline)
	inter := runOnce(t, "jess", p4, jit.Inter)
	both := runOnce(t, "jess", p4, jit.InterIntra)

	if base.Checksum == 0 {
		t.Fatal("baseline produced empty checksum; workload sinks nothing")
	}
	if inter.Checksum != base.Checksum || both.Checksum != base.Checksum {
		t.Fatalf("prefetching changed semantics: base=%x inter=%x both=%x",
			base.Checksum, inter.Checksum, both.Checksum)
	}
	// The paper reports that for jess only L4 has an inter-iteration
	// stride and its stride (4 bytes) is below half a cache line, so the
	// INTER configuration generates no effective prefetch for the hot
	// query loop, while INTER+INTRA generates dereference-based
	// prefetching.
	if inter.Prefetch.InterPrefetches != 0 {
		t.Errorf("INTER: want 0 plain prefetches in jess (stride 4 < line/2), got %d",
			inter.Prefetch.InterPrefetches)
	}
	if both.Prefetch.SpecLoads == 0 || both.Prefetch.DerefPrefetches == 0 {
		t.Errorf("INTER+INTRA: want dereference-based prefetching, got %+v", both.Prefetch)
	}
	if both.Mem.PrefetchesIssued == 0 {
		t.Error("INTER+INTRA: no prefetches executed at run time")
	}
	t.Logf("baseline cycles=%d, inter=%d, inter+intra=%d (speedup %.2f%%)",
		base.Cycles, inter.Cycles, both.Cycles,
		100*(float64(base.Cycles)/float64(both.Cycles)-1))
	t.Logf("prefetch stats: %+v", both.Prefetch)
	t.Logf("mem: %+v", both.Mem)
}
