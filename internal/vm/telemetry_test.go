package vm_test

import (
	"testing"

	"strider/internal/arch"
	"strider/internal/classfile"
	"strider/internal/core/jit"
	"strider/internal/ir"
	"strider/internal/telemetry"
	"strider/internal/value"
	"strider/internal/vm"
)

// arraySumProgram: main builds an int array of length n, then calls
// sum(arr) `calls` times; sum's loop loads every `step`-th element — the
// execution path where per-instruction telemetry checks must be free. A
// step of 32 ints (128 bytes) clears the half-line profitability filter
// on both machines, so INTER+INTRA emits real prefetches.
func arraySumProgram(calls, n, step int32) *ir.Program {
	u := classfile.NewUniverse()
	p := ir.NewProgram(u)

	sb := ir.NewBuilder(p, nil, "sum", value.KindInt, value.KindRef)
	arr := sb.Param(0)
	ln := sb.ArrayLen(arr)
	i := sb.ConstInt(0)
	total := sb.ConstInt(0)
	cond := sb.NewLabel()
	body := sb.NewLabel()
	sb.Goto(cond)
	sb.Bind(body)
	v := sb.ArrayLoad(value.KindInt, arr, i)
	sb.ArithTo(total, ir.OpAdd, value.KindInt, total, v)
	sb.IncInt(i, step)
	sb.Bind(cond)
	sb.Br(value.KindInt, ir.CondLT, i, ln, body)
	sb.Return(total)
	sum := sb.Finish()

	b := ir.NewBuilder(p, nil, "main", value.KindInt)
	nn := b.ConstInt(n)
	arr2 := b.NewArray(value.KindInt, nn)
	j := b.ConstInt(0)
	fcond := b.NewLabel()
	fbody := b.NewLabel()
	b.Goto(fcond)
	b.Bind(fbody)
	b.ArrayStore(value.KindInt, arr2, j, j)
	b.IncInt(j, 1)
	b.Bind(fcond)
	b.Br(value.KindInt, ir.CondLT, j, nn, fbody)

	acc := b.ConstInt(0)
	c := b.ConstInt(0)
	cc := b.ConstInt(calls)
	scond := b.NewLabel()
	sbody := b.NewLabel()
	b.Goto(scond)
	b.Bind(sbody)
	r := b.Call(sum, arr2)
	b.ArithTo(acc, ir.OpAdd, value.KindInt, acc, r)
	b.IncInt(c, 1)
	b.Bind(scond)
	b.Br(value.KindInt, ir.CondLT, c, cc, sbody)
	b.Sink(acc)
	b.Return(acc)
	p.Entry = b.Finish()
	return p
}

// TestNilRecorderAddsNoAllocsToHotLoop proves the telemetry hooks cost
// nothing when disabled: steady-state run allocations must not grow with
// the iteration count, i.e. the per-instruction paths (prefetch outcome
// and load-stall attribution) allocate only when a Recorder is installed.
func TestNilRecorderAddsNoAllocsToHotLoop(t *testing.T) {
	measure := func(n int32) float64 {
		p := arraySumProgram(4, n, 1)
		v := vm.New(p, vm.Config{Machine: arch.Pentium4(), Mode: jit.InterIntra})
		if _, err := v.Measure(nil, 1); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(10, func() {
			v.ResetRun()
			if _, err := v.Run(nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := measure(100)
	large := measure(3000)
	// 29x the loop iterations must not change the per-run allocation
	// count: whatever fixed cost a run has (frames, result), the hot loop
	// itself contributes zero.
	if large > small {
		t.Errorf("hot loop allocates with nil Recorder: %v allocs at n=100, %v at n=3000",
			small, large)
	}
}

// TestRecorderSeesCompileAndSiteEvents wires a Trace through vm.Config and
// checks the compile event and the post-flush site attribution appear.
func TestRecorderSeesCompileAndSiteEvents(t *testing.T) {
	tr := telemetry.NewTrace()
	p := arraySumProgram(4, 4096, 32)
	v := vm.New(p, vm.Config{Machine: arch.Pentium4(), Mode: jit.InterIntra, Recorder: tr})
	if _, err := v.Measure(nil, 1); err != nil {
		t.Fatal(err)
	}
	v.FlushTelemetry()

	var compiles, sites, loops int
	for _, ev := range tr.Events() {
		switch e := ev.(type) {
		case telemetry.CompileEvent:
			compiles++
			if e.Method == "::sum" && e.Prefetches == 0 {
				t.Error("sum compiled without prefetches under INTER+INTRA")
			}
		case telemetry.SiteEvent:
			sites++
			if e.Kind == "prefetch" && e.Issued == 0 {
				t.Errorf("prefetch site %s@%d flushed with zero issues", e.Method, e.Site)
			}
		case telemetry.LoopEvent:
			loops++
		}
	}
	if compiles < 2 {
		t.Errorf("compile events = %d, want >= 2 (sum and main)", compiles)
	}
	if loops == 0 {
		t.Error("no loop verdict events recorded")
	}
	if sites == 0 {
		t.Error("no site attribution events flushed")
	}
}
