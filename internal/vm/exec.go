package vm

import "fmt"

// Exec selects the execution backend for JIT-compiled code: the
// interpreter's step loop (the default), or the threaded-code tier
// (internal/compile), which pre-decodes each compiled method into a
// micro-op stream at the same compile-at-invocation point. The two are
// semantically identical — same traps, same cycle accounting, same
// memory-system traffic — and differ only in host-side speed.
type Exec int

// The execution backends.
const (
	ExecInterp Exec = iota
	ExecCompiled
)

// String returns the backend's canonical spelling.
func (x Exec) String() string {
	if x == ExecCompiled {
		return "compiled"
	}
	return "interp"
}

// ParseExec parses an -exec flag value. The empty string means the
// default (interpreted) backend.
func ParseExec(s string) (Exec, error) {
	switch s {
	case "", "interp":
		return ExecInterp, nil
	case "compiled":
		return ExecCompiled, nil
	}
	return ExecInterp, fmt.Errorf("unknown exec backend %q (valid: %v)", s, ExecNames())
}

// ExecNames lists the valid -exec spellings.
func ExecNames() []string { return []string{"interp", "compiled"} }
