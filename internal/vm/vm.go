// Package vm assembles the full simulated runtime: heap, memory system,
// execution engine, and the mixed-mode JIT dispatcher. Methods start out
// interpreted; when a method's invocation count reaches the compile
// threshold it is JIT-compiled *at that invocation, with the actual
// argument values* — the contract object inspection depends on (paper
// Sec. 3: "the JIT compiler is invoked for a method when the method is
// about to be executed ... actual values for the parameters are available
// at compile time").
package vm

import (
	"strider/internal/arch"
	"strider/internal/compile"
	"strider/internal/core/jit"
	"strider/internal/core/prefetch"
	"strider/internal/heap"
	"strider/internal/interp"
	"strider/internal/ir"
	"strider/internal/memsim"
	"strider/internal/telemetry"
	"strider/internal/value"
)

// Config configures a VM instance.
type Config struct {
	Machine *arch.Machine
	Mode    jit.Mode

	// HeapBytes sizes the simulated heap (default 64 MiB).
	HeapBytes uint32
	// CompileThreshold is the invocation count that triggers JIT
	// compilation (default 2: first invocation interpreted, second
	// compiled — a minimal mixed mode).
	CompileThreshold int
	// GC selects the collector (default: sliding compaction, as in the
	// paper's JVM).
	GC heap.GCMode
	// Exec selects the execution backend for JIT-compiled methods
	// (default: the interpreter's step loop; ExecCompiled runs them as
	// threaded code).
	Exec Exec

	// JIT optionally overrides the paper-default jit.Options; leave the
	// zero value to use jit.DefaultOptions(Machine, Mode).
	JIT *jit.Options

	// Recorder, when non-nil, receives the VM's telemetry: JIT compile
	// events, per-loop inspection verdicts, per-candidate filter
	// decisions, and (after FlushSites) per-site memory attribution. A
	// nil Recorder adds no allocations to the execution hot loop.
	Recorder telemetry.Recorder
}

func (c Config) withDefaults() Config {
	if c.Machine == nil {
		c.Machine = arch.Pentium4()
	}
	if c.HeapBytes == 0 {
		c.HeapBytes = 64 << 20
	}
	if c.CompileThreshold == 0 {
		c.CompileThreshold = 2
	}
	return c
}

// RunStats is the outcome of one VM run.
type RunStats struct {
	Checksum     uint64
	Result       value.Value
	Cycles       uint64
	Instructions uint64

	CompiledCycles       uint64
	CompiledInstructions uint64
	GCs                  uint64
	GCCycles             uint64

	Mem memsim.Counters

	// HWModel names the hardware-prefetcher model the memory simulator ran
	// ("stream" unless the machine selects otherwise); HW holds its
	// per-prefetcher statistics.
	HWModel string
	HW      memsim.HWStats

	// Cumulative JIT ledger for the VM (Figure 11).
	JITUnits        uint64
	PrefetchUnits   uint64
	CompiledMethods int
	Prefetch        prefetch.Stats
	InspectSteps    int
}

// L1LoadMPI returns L1 load misses per retired instruction.
func (r RunStats) L1LoadMPI() float64 { return mpi(r.Mem.L1LoadMisses, r.Instructions) }

// L2LoadMPI returns L2 load misses per retired instruction.
func (r RunStats) L2LoadMPI() float64 { return mpi(r.Mem.L2LoadMisses, r.Instructions) }

// DTLBLoadMPI returns DTLB load misses per retired instruction.
func (r RunStats) DTLBLoadMPI() float64 { return mpi(r.Mem.DTLBLoadMisses, r.Instructions) }

// CompiledFraction returns the share of cycles spent in compiled code.
func (r RunStats) CompiledFraction() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.CompiledCycles) / float64(r.Cycles)
}

func mpi(misses, instrs uint64) float64 {
	if instrs == 0 {
		return 0
	}
	return float64(misses) / float64(instrs)
}

// VM is a simulated Java-style virtual machine with a JIT compiler.
type VM struct {
	Config  Config
	Prog    *ir.Program
	Heap    *heap.Heap
	Mem     *memsim.Memory
	Engine  *interp.Engine
	JITOpts jit.Options

	compiled map[*ir.Method]*jit.Compiled
	counts   map[*ir.Method]int
	// codes caches the dispatch artifact per method in its current tier
	// (interpreted until the threshold, then the compiled body), so the
	// steady-state Invoke path is a single map hit with no allocation.
	codes map[*ir.Method]*interp.Code

	jitUnits      uint64
	prefetchUnits uint64
	inspectSteps  int
	prefetchStats prefetch.Stats
}

// New creates a VM for a program.
func New(prog *ir.Program, cfg Config) *VM {
	cfg = cfg.withDefaults()
	h := heap.New(cfg.HeapBytes, prog.Universe)
	h.SetGCMode(cfg.GC)
	mem := memsim.New(cfg.Machine)
	v := &VM{
		Config:   cfg,
		Prog:     prog,
		Heap:     h,
		Mem:      mem,
		compiled: make(map[*ir.Method]*jit.Compiled),
		counts:   make(map[*ir.Method]int),
		codes:    make(map[*ir.Method]*interp.Code),
	}
	if cfg.JIT != nil {
		v.JITOpts = *cfg.JIT
	} else {
		v.JITOpts = jit.DefaultOptions(cfg.Machine, cfg.Mode)
	}
	if cfg.Recorder != nil {
		v.JITOpts.Rec = cfg.Recorder
	}
	v.Engine = interp.New(prog, h, mem, v, cfg.Machine)
	v.Engine.Rec = cfg.Recorder
	return v
}

// Invoke implements interp.Dispatcher: mixed-mode dispatch with
// compile-at-threshold using the live argument values.
func (v *VM) Invoke(m *ir.Method, args []value.Value) *interp.Code {
	if code, ok := v.codes[m]; ok && code.Compiled {
		return code
	}
	v.counts[m]++
	if v.counts[m] < v.Config.CompileThreshold {
		code, ok := v.codes[m]
		if !ok {
			code = &interp.Code{Instrs: m.Code, NumRegs: m.NumRegs, Compiled: false}
			v.codes[m] = code
		}
		return code
	}
	c := jit.Compile(v.Prog, v.Heap, m, args, v.JITOpts)
	v.compiled[m] = c
	v.jitUnits += c.TotalUnits()
	v.prefetchUnits += c.PrefetchUnits
	v.inspectSteps += c.InspectSteps
	addStats(&v.prefetchStats, c.Prefetch)
	if r := v.Config.Recorder; r != nil {
		r.Compile(telemetry.CompileEvent{
			Method:        m.QName(),
			Mode:          v.JITOpts.Mode.String(),
			Invocations:   v.counts[m],
			Loops:         len(c.Graphs),
			InspectSteps:  c.InspectSteps,
			BaseUnits:     c.BaseUnits,
			PrefetchUnits: c.PrefetchUnits,
			Prefetches:    c.Prefetch.Total(),
		})
	}
	code := &interp.Code{Instrs: c.Code, NumRegs: c.NumRegs, Compiled: true}
	if v.Config.Exec == ExecCompiled {
		code.Threaded = compile.Build(m, c.Code, v.Prog.Universe)
	}
	v.codes[m] = code
	return code
}

func addStats(dst *prefetch.Stats, s prefetch.Stats) {
	dst.InterPrefetches += s.InterPrefetches
	dst.SpecLoads += s.SpecLoads
	dst.DerefPrefetches += s.DerefPrefetches
	dst.IntraPrefetches += s.IntraPrefetches
	dst.FilteredLine += s.FilteredLine
	dst.FilteredDup += s.FilteredDup
	dst.FilteredUse += s.FilteredUse
	dst.WorkUnits += s.WorkUnits
}

// CompiledFor returns the JIT artifact for a method, or nil. Diagnostics
// (Table 1) use it to show annotated load dependence graphs.
func (v *VM) CompiledFor(m *ir.Method) *jit.Compiled { return v.compiled[m] }

// ResetRun prepares the VM for a fresh run of the program while keeping
// JIT state (compiled code and invocation counts), mirroring the paper's
// "best run under continuous execution" methodology: after the warmup run,
// the measured run executes mostly compiled code and no JIT activity.
func (v *VM) ResetRun() {
	v.Heap.Reset()
	v.Prog.Universe.ResetStatics()
	v.Mem.Reset()
	v.Engine.ResetStats()
}

// Run executes the program's entry method once and returns the run's
// statistics.
func (v *VM) Run(args []value.Value) (RunStats, error) {
	res, err := v.Engine.Run(v.Prog.Entry, args)
	s := v.Engine.S
	stats := RunStats{
		Checksum:             s.Checksum,
		Result:               res,
		Cycles:               s.Cycles,
		Instructions:         s.Instructions,
		CompiledCycles:       s.CompiledCycles,
		CompiledInstructions: s.CompiledInstructions,
		GCs:                  s.GCs,
		GCCycles:             s.GCCycles,
		Mem:                  v.Mem.C,
		HWModel:              v.Mem.HWModel(),
		HW:                   v.Mem.HWStats(),
		JITUnits:             v.jitUnits,
		PrefetchUnits:        v.prefetchUnits,
		CompiledMethods:      len(v.compiled),
		Prefetch:             v.prefetchStats,
		InspectSteps:         v.inspectSteps,
	}
	return stats, err
}

// FlushTelemetry emits the engine's per-site memory attribution (prefetch
// outcomes per emitting site, demand-load stalls per pc) to the
// configured Recorder and clears it, followed by the hardware
// prefetcher's run summary. Call it after the run of interest — ResetRun
// clears the aggregation, so after Measure the flushed sites cover
// exactly the measured run.
func (v *VM) FlushTelemetry() {
	v.Engine.FlushSites()
	if r := v.Config.Recorder; r != nil {
		hw := v.Mem.HWStats()
		r.HW(telemetry.HWEvent{
			Machine:    v.Config.Machine.Name,
			Model:      v.Mem.HWModel(),
			Trains:     hw.Trains,
			Allocs:     hw.Allocs,
			Hits:       hw.Hits,
			Issued:     hw.Issued,
			Suppressed: hw.Suppressed,
		})
	}
}

// Measure runs the program warmups+1 times, resetting between runs, and
// returns the statistics of the final (steady-state) run.
func (v *VM) Measure(args []value.Value, warmups int) (RunStats, error) {
	for i := 0; i < warmups; i++ {
		if _, err := v.Run(args); err != nil {
			return RunStats{}, err
		}
		v.ResetRun()
	}
	return v.Run(args)
}
